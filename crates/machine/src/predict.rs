//! Per-algorithm phase-time predictions on the modeled machine.
//!
//! Each predictor mirrors the phase structure of the corresponding
//! implementation in `mttkrp-core` and fills the same [`Breakdown`]
//! categories, so the harness can print modeled Figure 5/6/8 series
//! next to measured ones.

use mttkrp_core::{AlgoChoice, Breakdown, MttkrpPlanSet};
use mttkrp_parallel::ThreadPool;
use mttkrp_tensor::DimInfo;

use crate::Machine;

/// Modeled time of the paper's plotted "Baseline": one MKL-style DGEMM
/// of the MTTKRP shape (`I_n × I≠n` · `I≠n × C`), excluding reorder and
/// KRP time.
pub fn predict_baseline(m: &Machine, dims: &[usize], n: usize, c: usize, t: usize) -> f64 {
    let info = DimInfo::new(dims);
    m.gemm_time(info.dim(n), c, info.i_neq(n), t, true)
}

/// Modeled Bader–Kolda explicit MTTKRP: reorder + full KRP + DGEMM.
pub fn predict_explicit(m: &Machine, dims: &[usize], n: usize, c: usize, t: usize) -> Breakdown {
    let info = DimInfo::new(dims);
    let mut bd = Breakdown::default();
    // Strided gather/scatter of every entry costs about two STREAM
    // passes (read at stride, write contiguous, TLB-unfriendly).
    bd.reorder = 2.0 * m.stream_time(info.total(), t);
    bd.full_krp = m.krp_time(info.i_neq(n), c, dims.len() - 1, true, t);
    bd.dgemm = m.gemm_time(info.dim(n), c, info.i_neq(n), t, true);
    bd.total = bd.categorized();
    bd
}

/// Modeled 1-step MTTKRP (Algorithm 3).
pub fn predict_1step(m: &Machine, dims: &[usize], n: usize, c: usize, t: usize) -> Breakdown {
    let info = DimInfo::new(dims);
    let nmodes = dims.len();
    let i_n = info.dim(n);
    let i_neq = info.i_neq(n);
    let mut bd = Breakdown::default();

    if n == 0 || n == nmodes - 1 {
        // External: per-thread KRP blocks + one GEMM each + reduction.
        bd.full_krp = m.krp_time(i_neq, c, nmodes - 1, true, t);
        // Column-partitioned GEMM with private outputs: linear thread
        // scaling of compute, shared memory bandwidth.
        let flops = 2.0 * i_n as f64 * c as f64 * i_neq as f64;
        let compute = flops / (m.peak_flops_core * t as f64 * m.gemm_eff(i_n, c));
        let bytes = 8.0 * (i_n as f64 * i_neq as f64 + i_neq as f64 * c as f64);
        bd.dgemm = compute.max(bytes / m.bw(t));
        bd.reduce = m.reduce_time(i_n * c, t, t);
    } else {
        let il = info.i_left(n);
        let ir = info.i_right(n);
        // KL formation (tiny) plus per-block K_t = KR(j,:) ⊙ KL
        // expansion: I≠n·C Hadamard elements total. K_t stays
        // cache-resident when IL_n·C is small; otherwise it also pays
        // bandwidth.
        bd.lr_krp = m.krp_time(il, c, n, true, t);
        let expand_elems = (il * ir * c) as f64;
        let expand_compute = expand_elems * m.hadamard_cost / t as f64;
        let kt_bytes = (il * c * 8) as f64;
        let expand_mem = if kt_bytes > 2.0e6 {
            expand_elems * 16.0 / m.bw(t)
        } else {
            0.0
        };
        bd.lr_krp += expand_compute.max(expand_mem);
        // IR_n block GEMMs of I_n × C × IL_n, block-cyclic across threads.
        let flops = 2.0 * i_n as f64 * c as f64 * (il * ir) as f64;
        let compute = flops / (m.peak_flops_core * t as f64 * m.gemm_eff(i_n, c));
        let bytes = 8.0 * info.total() as f64;
        bd.dgemm = compute.max(bytes / m.bw(t));
        bd.reduce = m.reduce_time(i_n * c, t, t);
    }
    bd.total = bd.categorized();
    bd
}

/// Modeled 2-step MTTKRP (Algorithm 4); external modes degenerate to
/// [`predict_1step`].
pub fn predict_2step(m: &Machine, dims: &[usize], n: usize, c: usize, t: usize) -> Breakdown {
    let nmodes = dims.len();
    if n == 0 || n == nmodes - 1 {
        return predict_1step(m, dims, n, c, t);
    }
    let info = DimInfo::new(dims);
    let i_n = info.dim(n);
    let il = info.i_left(n);
    let ir = info.i_right(n);
    let mut bd = Breakdown {
        lr_krp: m.krp_time(il, c, n, true, t) + m.krp_time(ir, c, nmodes - 1 - n, true, t),
        ..Breakdown::default()
    };
    if il > ir {
        // Left: L = X(0:n−1)ᵀ·KL is (I_n·IR_n) × C ← GEMM k = IL_n.
        bd.dgemm = m.gemm_time(i_n * ir, c, il, t, true);
        bd.dgemv = m.gemv_time(i_n, ir, c, t);
    } else {
        // Right: R = X(0:n)·KR is (IL_n·I_n) × C ← GEMM k = IR_n.
        bd.dgemm = m.gemm_time(il * i_n, c, ir, t, true);
        bd.dgemv = m.gemv_time(i_n, il, c, t);
    }
    bd.total = bd.categorized();
    bd
}

/// Modeled matrix-free fused MTTKRP: one streaming pass over the
/// tensor entries with on-the-fly Hadamard row products, no
/// materialized KRP or unfolding. Memory traffic is exactly one tensor
/// read; compute is the per-entry rank-length fused accumulate plus the
/// prefix-reuse row product — priced with the calibrated
/// [`Machine::fused_cost`] coefficient when the profile measured it,
/// and a 3-flops-per-entry-per-column roofline otherwise.
pub fn predict_fused(m: &Machine, dims: &[usize], n: usize, c: usize, t: usize) -> Breakdown {
    let info = DimInfo::new(dims);
    let total = info.total() as f64;
    let mut bd = Breakdown::default();
    let bytes = 8.0 * total;
    let compute = match m.fused_cost {
        // Measured seconds per entry per rank column; the pass
        // parallelizes over disjoint output rows, so compute divides
        // by the team.
        Some(fc) => total * c as f64 * fc / t as f64,
        // ~3 flops per entry per rank column: the fused x·kl·kr
        // accumulate (2) plus the amortized streaming Hadamard row
        // product (1).
        None => 3.0 * total * c as f64 / (m.peak_flops_core * t as f64),
    };
    bd.fused = compute.max(bytes / m.bw(t));
    let _ = n;
    bd.total = bd.categorized();
    bd
}

/// The machine-model override for plan construction: hand
/// `MttkrpPlan::new` the predicted 1-step and 2-step times of mode `n`
/// at `t` threads, letting it pick the faster kernel for *this* shape on
/// *this* modeled machine instead of the paper's external/internal rule.
pub fn predicted_choice(m: &Machine, dims: &[usize], n: usize, c: usize, t: usize) -> AlgoChoice {
    AlgoChoice::Predicted {
        one_step: predict_1step(m, dims, n, c, t).total,
        two_step: predict_2step(m, dims, n, c, t).total,
    }
}

/// Plan every mode of a `dims` tensor with the machine-model override —
/// the model-driven counterpart of `MttkrpPlanSet::new(...,
/// AlgoChoice::Heuristic)`.
pub fn predicted_plan_set(
    m: &Machine,
    pool: &ThreadPool,
    dims: &[usize],
    c: usize,
) -> MttkrpPlanSet {
    let t = pool.num_threads();
    MttkrpPlanSet::with_choices(pool, dims, c, |n| predicted_choice(m, dims, n, c, t))
}

/// Modeled Algorithm 1 (or naive) KRP time — the Figure 4 series.
pub fn predict_krp(m: &Machine, rows: usize, c: usize, z: usize, reuse: bool, t: usize) -> f64 {
    m.krp_time(rows, c, z, reuse, t)
}

/// Modeled STREAM Scale time over a `rows × c` matrix — Figure 4's
/// bandwidth roofline series.
pub fn predict_stream(m: &Machine, rows: usize, c: usize, t: usize) -> f64 {
    m.stream_time(rows * c, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mttkrp_workloads::equal_dims;

    const C: usize = 25;

    fn machine() -> Machine {
        Machine::sandy_bridge_12core()
    }

    /// The paper's Figure 5 synthetic tensors (≈750M entries).
    fn fig5_dims() -> Vec<Vec<usize>> {
        (3..=6).map(|n| equal_dims(n, 750_000_000)).collect()
    }

    #[test]
    fn sequential_ordering_matches_paper() {
        // §5.3.1: sequentially, 2-step ≤ ~baseline (within -25%/+3%) and
        // 1-step ≤ ~2× baseline, for every internal mode and tensor.
        let m = machine();
        for dims in fig5_dims() {
            for n in 1..dims.len() - 1 {
                let base = predict_baseline(&m, &dims, n, C, 1);
                let one = predict_1step(&m, &dims, n, C, 1).total;
                let two = predict_2step(&m, &dims, n, C, 1).total;
                assert!(
                    two <= base * 1.35,
                    "2-step too slow: {two} vs {base} {dims:?} n={n}"
                );
                assert!(
                    base <= two * 1.45,
                    "2-step unrealistically fast {dims:?} n={n}"
                );
                assert!(
                    one <= base * 2.3,
                    "1-step beyond 2x baseline {dims:?} n={n}"
                );
            }
        }
    }

    #[test]
    fn parallel_speedups_in_paper_bands() {
        // §5.3.1: on 12 threads, 1-step speedup 8–12×, 2-step 6–8×
        // (modeled bands widened by ±25%).
        let m = machine();
        for dims in fig5_dims() {
            for n in 0..dims.len() {
                let s1 = predict_1step(&m, &dims, n, C, 1).total
                    / predict_1step(&m, &dims, n, C, 12).total;
                assert!(s1 > 5.0 && s1 < 14.0, "1-step speedup {s1} {dims:?} n={n}");
                if n > 0 && n < dims.len() - 1 {
                    let s2 = predict_2step(&m, &dims, n, C, 1).total
                        / predict_2step(&m, &dims, n, C, 12).total;
                    // Lower band 3.0: for modes with tiny IL_n (e.g. n=1
                    // of the 6-way tensor) the right-side partial GEMM
                    // has a baseline-like small output and its modeled
                    // MKL scaling stalls, dragging the mode below the
                    // paper's aggregate 6–8× band.
                    assert!(s2 > 3.0 && s2 < 12.0, "2-step speedup {s2} {dims:?} n={n}");
                }
            }
        }
    }

    #[test]
    fn proposed_algorithms_beat_baseline_at_12_threads() {
        // §5.3.1: at 12 threads and N > 3 the speedup over the baseline
        // DGEMM ranges from 2× to 4.7×.
        let m = machine();
        for dims in fig5_dims().into_iter().skip(1) {
            for n in 1..dims.len() - 1 {
                let base = predict_baseline(&m, &dims, n, C, 12);
                let two = predict_2step(&m, &dims, n, C, 12).total;
                let ratio = base / two;
                assert!(
                    ratio > 1.5,
                    "expected >1.5x win, got {ratio} {dims:?} n={n}"
                );
                assert!(ratio < 8.0, "implausible win {ratio} {dims:?} n={n}");
            }
        }
    }

    #[test]
    fn krp_fraction_grows_with_order() {
        // Conclusion: for the 6-way tensor's external modes the KRP is
        // a third to half of 1-step time.
        let m = machine();
        let dims = equal_dims(6, 750_000_000);
        let bd = predict_1step(&m, &dims, 0, C, 1);
        let frac = bd.full_krp / bd.total;
        assert!(frac > 0.25 && frac < 0.6, "KRP fraction {frac}");
        // For the 3-way tensor it is minor.
        let dims3 = equal_dims(3, 750_000_000);
        let bd3 = predict_1step(&m, &dims3, 0, C, 1);
        assert!(bd3.full_krp / bd3.total < 0.15);
    }

    #[test]
    fn stream_tracks_krp_reuse() {
        // Figure 4: Algorithm 1 is competitive with STREAM.
        let m = machine();
        let rows = 20_000_000;
        for t in [1usize, 6, 12] {
            let krp = predict_krp(&m, rows, C, 3, true, t);
            let stream = predict_stream(&m, rows, C, t);
            let ratio = krp / stream;
            assert!(ratio > 0.5 && ratio < 2.0, "t={t} ratio={ratio}");
        }
    }

    #[test]
    fn external_mode_2step_equals_1step() {
        let m = machine();
        let dims = equal_dims(4, 1_000_000);
        let a = predict_1step(&m, &dims, 0, C, 4);
        let b = predict_2step(&m, &dims, 0, C, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn fused_prediction_scales_and_honors_the_calibrated_term() {
        let m = machine();
        let dims = equal_dims(4, 1_000_000);
        let seq = predict_fused(&m, &dims, 1, C, 1);
        let par = predict_fused(&m, &dims, 1, C, 12);
        assert!(seq.total > 0.0 && par.total > 0.0);
        assert!(par.total < seq.total, "fused pass must scale");
        assert_eq!(seq.fused, seq.total, "only the fused phase is timed");
        // A calibrated coefficient replaces the flops roofline: a much
        // slower measured pass must dominate the memory term.
        let mut slow = m;
        slow.fused_cost = Some(1.0e-6);
        let total = dims.iter().product::<usize>() as f64;
        let want = total * C as f64 * 1.0e-6;
        let got = predict_fused(&slow, &dims, 1, C, 1).total;
        assert!((got - want).abs() < 1e-9 * want, "got {got}, want {want}");
    }
}
