//! Analytic performance model of the paper's testbed — a dual-socket
//! 12-core Sandy Bridge Xeon E5-2620 — used to regenerate the *scaling*
//! figures on hosts that lack 12 physical cores.
//!
//! Every kernel class is modeled with a roofline:
//! `time = max(compute, memory)` where compute scales with threads and
//! an efficiency factor, and memory follows a saturating bandwidth
//! curve `BW(T) = BW₁ · T / (1 + (T−1)/θ)` (single-thread bandwidth on
//! Sandy Bridge is concurrency-limited at roughly 1/6 of the socket
//! aggregate, which is why the paper's memory-bound KRP still scales
//! 6.6–8.3×).
//!
//! Two effects the paper highlights are modeled explicitly:
//!
//! * **GEMM shape efficiency** — very rectangular multiplies (tiny `n`,
//!   enormous `k`) run well below peak even sequentially;
//! * **MKL parallel penalty for inner-product shapes** (§5.3.1) — when
//!   the output matrix is small, MKL forgoes the write-conflict
//!   parallelization (thread-private outputs + reduction) that the
//!   paper's algorithms use, so the baseline DGEMM stops scaling. The
//!   penalty decays with output size, which is exactly why the 2-step
//!   algorithm's "more square" partial MTTKRP scales better.
//!
//! Absolute constants default to the E5-2620 (16 GFLOP/s per core);
//! [`Machine::calibrated`] instead measures this host's single-thread
//! GEMM rate and STREAM bandwidth and keeps the paper machine's scaling
//! curves, per the substitution documented in DESIGN.md.

#![deny(missing_docs)]

pub mod predict;

pub use predict::{
    predict_1step, predict_2step, predict_baseline, predict_explicit, predict_fused, predict_krp,
    predict_stream, predicted_choice, predicted_plan_set,
};

use std::sync::OnceLock;

use mttkrp_core::ModeCost;
use mttkrp_parallel::ThreadPool;

/// Roofline machine model (see crate docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Machine {
    /// Physical cores modeled.
    pub cores: usize,
    /// Peak double-precision flop rate per core (flops/s).
    pub peak_flops_core: f64,
    /// Single-thread sustainable bandwidth (bytes/s).
    pub bw1: f64,
    /// Bandwidth saturation parameter θ: `BW(T) = bw1·T/(1+(T−1)/θ)`.
    pub bw_theta: f64,
    /// Best-case GEMM efficiency (fraction of peak) for square shapes.
    pub gemm_eff0: f64,
    /// Seconds per element per Hadamard pass in row-wise KRP code
    /// (single thread).
    pub hadamard_cost: f64,
    /// Strength of the MKL small-output parallel penalty (0 disables).
    pub mkl_penalty: f64,
    /// Efficiency of the parallel private-buffer reduction relative to
    /// raw STREAM bandwidth (1.0 = the paper-machine assumption that a
    /// reduction streams at full `BW(T)`; a calibrated profile measures
    /// the real ratio, which barrier overhead drags below 1).
    pub reduce_scale: f64,
    /// Measured seconds per tensor entry per rank column of the
    /// matrix-free fused streaming pass (single thread). `None` on the
    /// paper machine and on profiles recorded before the fused path
    /// existed: [`predict_fused`] then falls back to a 3-flops/entry
    /// roofline, and the installed cost model leaves
    /// [`ModeCost::fused`] unpriced so a `Tuned` plan never selects an
    /// algorithm the calibration never measured.
    pub fused_cost: Option<f64>,
}

impl Machine {
    /// The paper's machine: 2 × 6-core Sandy Bridge Xeon E5-2620,
    /// 2.0 GHz, 16 GFLOP/s per core, turbo off.
    pub fn sandy_bridge_12core() -> Self {
        Machine {
            cores: 12,
            peak_flops_core: 16.0e9,
            bw1: 5.5e9,
            bw_theta: 12.0,
            gemm_eff0: 0.90,
            hadamard_cost: 3.0e-9,
            mkl_penalty: 0.35,
            reduce_scale: 1.0,
            fused_cost: None,
        }
    }

    /// Model calibrated to this host's measured single-thread GEMM rate
    /// and STREAM bandwidth, retaining the paper machine's core count
    /// and scaling curves. Used so EXPERIMENTS.md can report modeled
    /// times in the same ballpark as host measurements.
    pub fn calibrated(pool: &ThreadPool) -> Self {
        let mut m = Self::sandy_bridge_12core();
        // Measure GEMM rate at a square, cache-friendly size.
        let n = 384;
        let a = vec![1.0f64; n * n];
        let b = vec![1.0f64; n * n];
        let mut c = vec![0.0f64; n * n];
        use mttkrp_blas::{gemm, Layout, MatMut, MatRef};
        let av = MatRef::from_slice(&a, n, n, Layout::ColMajor);
        let bv = MatRef::from_slice(&b, n, n, Layout::ColMajor);
        gemm(
            1.0,
            av,
            bv,
            0.0,
            MatMut::from_slice(&mut c, n, n, Layout::ColMajor),
        );
        let t0 = std::time::Instant::now();
        gemm(
            1.0,
            av,
            bv,
            0.0,
            MatMut::from_slice(&mut c, n, n, Layout::ColMajor),
        );
        let dt = t0.elapsed().as_secs_f64();
        let measured = 2.0 * (n as f64).powi(3) / dt;
        m.peak_flops_core = measured / m.gemm_eff0;

        // Measure single-thread STREAM Scale bandwidth.
        let one = ThreadPool::new(1);
        m.bw1 = mttkrp_blas::stream::measure_scale_bandwidth(&one, 1 << 21, 3);
        let _ = pool;
        m
    }

    /// Saturating bandwidth at `t` threads (bytes/s).
    pub fn bw(&self, t: usize) -> f64 {
        let t = t.max(1) as f64;
        self.bw1 * t / (1.0 + (t - 1.0) / self.bw_theta)
    }

    /// Sequential GEMM efficiency for an `m × n × k` multiply:
    /// penalizes small `m`/`n` register-tile underutilization.
    pub fn gemm_eff(&self, m: usize, n: usize) -> f64 {
        let m = m as f64;
        let n = n as f64;
        self.gemm_eff0 * (n / (n + 8.0)) * (m / (m + 4.0))
    }

    /// Parallel efficiency multiplier for an *MKL-style* GEMM with an
    /// `m × n` output: small outputs (inner-product shapes) stop scaling
    /// (§5.3.1). Our own GEMMs pass `mkl = false` (they parallelize with
    /// private outputs and a reduction, so only bandwidth limits them).
    pub fn gemm_parallel_eff(&self, m: usize, n: usize, t: usize, mkl: bool) -> f64 {
        let t = t.max(1) as f64;
        if !mkl || self.mkl_penalty == 0.0 {
            return t;
        }
        let out = (m * n) as f64;
        let s = self.mkl_penalty * (-out / 5.0e4).exp();
        t / (1.0 + (t - 1.0) * s)
    }

    /// Time of an `m × n × k` GEMM at `t` threads.
    pub fn gemm_time(&self, m: usize, n: usize, k: usize, t: usize, mkl: bool) -> f64 {
        let flops = 2.0 * m as f64 * n as f64 * k as f64;
        let eff_t = self.gemm_parallel_eff(m, n, t, mkl);
        let compute = flops / (self.peak_flops_core * eff_t * self.gemm_eff(m, n));
        let bytes = 8.0 * (m as f64 * k as f64 + k as f64 * n as f64 + 2.0 * m as f64 * n as f64);
        let memory = bytes / self.bw(t);
        compute.max(memory)
    }

    /// Time of `reps` GEMV calls of shape `m × n` at `t` threads
    /// (memory-bound: the matrix is read once per call).
    pub fn gemv_time(&self, m: usize, n: usize, reps: usize, t: usize) -> f64 {
        let flops = 2.0 * (m * n * reps) as f64;
        let compute = flops / (self.peak_flops_core * t as f64 * 0.25);
        let bytes = 8.0 * (m * n * reps) as f64;
        let memory = bytes / self.bw(t);
        compute.max(memory)
    }

    /// Time to produce `rows × c` KRP output with `z` inputs at `t`
    /// threads. `reuse = true` is Algorithm 1 (≈1 Hadamard per row);
    /// `false` is the naive variant (`z−1` Hadamards per row).
    pub fn krp_time(&self, rows: usize, c: usize, z: usize, reuse: bool, t: usize) -> f64 {
        // The naive variant performs z−1 Hadamards per row, but the
        // later passes hit warm caches; an effective 0.75 increment per
        // extra pass matches the paper's measured 1.5–2.5× Reuse gain.
        let hadamards = if reuse || z <= 2 {
            1.0
        } else {
            1.0 + 0.75 * (z - 2) as f64
        };
        let elems = (rows * c) as f64;
        let compute = elems * hadamards * self.hadamard_cost / t as f64;
        // Write + RFO read of the output; factor rows stay cached.
        let memory = elems * 16.0 / self.bw(t);
        compute.max(memory)
    }

    /// STREAM Scale time over `elems` doubles (one read + one write).
    pub fn stream_time(&self, elems: usize, t: usize) -> f64 {
        (elems as f64) * 16.0 / self.bw(t)
    }

    /// Reduction of `t_bufs` private `elems`-sized buffers at `t`
    /// threads (each element read `t_bufs` times, written once), at
    /// the machine's measured reduction efficiency.
    pub fn reduce_time(&self, elems: usize, t_bufs: usize, t: usize) -> f64 {
        if t_bufs <= 1 {
            return 0.0;
        }
        (elems as f64) * 8.0 * (t_bufs as f64 + 1.0) / (self.bw(t) * self.reduce_scale)
    }
}

/// The team size the model recommends for a sparse tree-walk MTTKRP
/// producing `out_elems` output elements from `nnz` nonzeros at rank
/// `c`, at most `t` threads. The walk scales linearly with threads, but
/// every extra thread adds a private `out_elems` accumulator to the
/// final reduction — for hypersparse tensors (tiny `nnz`, huge `I_n`)
/// merging `T` mostly-zero buffers costs more than the walk saves, so
/// the model caps the team where `walk(t') + reduce(t')` is minimized.
/// Ties go to the larger team (the uncapped behavior).
pub fn sparse_team(m: &Machine, out_elems: usize, c: usize, nnz: usize, t: usize) -> usize {
    // Per-nonzero cost of the CSF walk: one `axpy` over a C-row at the
    // leaf plus amortized internal `mul_add`s — about two fused
    // multiply-adds per column, priced with the measured per-element
    // Hadamard cost (the same streamed-FMA kernel family).
    let walk1 = nnz as f64 * c as f64 * 2.0 * m.hadamard_cost;
    let mut best_t = 1usize;
    let mut best = f64::INFINITY;
    for cand in 1..=t.max(1) {
        let cost = walk1 / cand as f64 + m.reduce_time(out_elems, cand, cand);
        if cost <= best {
            best = cost;
            best_t = cand;
        }
    }
    best_t
}

static TUNED_MACHINE: OnceLock<Machine> = OnceLock::new();

/// Install `m` as the process-wide tuned machine model: registers a
/// cost model with `mttkrp-core` (so every later
/// [`mttkrp_core::AlgoChoice::Tuned`] plan prices its mode with
/// [`predict_1step`]/[`predict_2step`] on `m`) and makes `m` available
/// to the sparse planner via [`installed_machine`]. First installation
/// wins; returns `false` (leaving the earlier model in effect) on
/// repeat calls.
pub fn install_machine(m: Machine) -> bool {
    if TUNED_MACHINE.set(m).is_err() {
        return false;
    }
    let m = *TUNED_MACHINE.get().expect("just installed");
    mttkrp_core::install_cost_model(Box::new(move |dims, c, n, t| {
        Some(ModeCost {
            one_step: predict_1step(&m, dims, n, c, t).total,
            two_step: predict_2step(&m, dims, n, c, t).total,
            // Opt-in: only a machine whose calibration measured the
            // fused pass prices it (see `Machine::fused_cost`).
            fused: m.fused_cost.map(|_| predict_fused(&m, dims, n, c, t).total),
        })
    }))
}

/// The machine installed by [`install_machine`], if any. Planners that
/// can exploit calibrated coefficients (e.g. the sparse team-size cap)
/// consult this and fall back to their uncalibrated defaults on `None`.
pub fn installed_machine() -> Option<&'static Machine> {
    TUNED_MACHINE.get()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_saturates() {
        let m = Machine::sandy_bridge_12core();
        assert!((m.bw(1) - m.bw1).abs() < 1.0);
        assert!(m.bw(12) > 5.0 * m.bw1, "12-thread bw should scale ~6x");
        assert!(m.bw(12) < 12.0 * m.bw1);
        assert!(m.bw(6) < m.bw(12));
    }

    #[test]
    fn gemm_eff_penalizes_small_n() {
        let m = Machine::sandy_bridge_12core();
        assert!(m.gemm_eff(900, 900) > m.gemm_eff(900, 25));
        assert!(m.gemm_eff(900, 25) > 0.4);
    }

    #[test]
    fn mkl_penalty_only_for_small_outputs() {
        let m = Machine::sandy_bridge_12core();
        // Baseline MTTKRP output (900 × 25) barely scales.
        let small = m.gemm_parallel_eff(900, 25, 12, true);
        assert!(small < 5.0, "small output should stall: {small}");
        // 2-step partial MTTKRP output (810000 × 25) scales fully.
        let big = m.gemm_parallel_eff(810_000, 25, 12, true);
        assert!(big > 11.0, "big output should scale: {big}");
        // Our own GEMMs never pay the penalty.
        assert_eq!(m.gemm_parallel_eff(900, 25, 12, false), 12.0);
    }

    #[test]
    fn paper_headline_baseline_sequential_time_is_plausible() {
        // N=3, 909³ tensor, C=25: baseline DGEMM ≈ 3–6 s sequentially
        // (Figure 5a shows ~5 s).
        let m = Machine::sandy_bridge_12core();
        let i = 909 * 909 * 909 / 909;
        let t = m.gemm_time(909, 25, i, 1, true);
        assert!(t > 2.0 && t < 8.0, "t = {t}");
    }

    #[test]
    fn krp_reuse_beats_naive_and_is_memory_bound_at_scale() {
        let m = Machine::sandy_bridge_12core();
        let rows = 20_000_000;
        let naive = m.krp_time(rows, 25, 4, false, 1);
        let reuse = m.krp_time(rows, 25, 4, true, 1);
        assert!(naive > reuse, "naive {naive} vs reuse {reuse}");
        let ratio = naive / reuse;
        assert!(
            ratio > 1.3 && ratio < 3.5,
            "Fig 4 reports 1.5–2.5x: {ratio}"
        );
        // Parallel KRP speedup in the paper's observed 6.6–8.3x band.
        let speedup = m.krp_time(rows, 25, 3, true, 1) / m.krp_time(rows, 25, 3, true, 12);
        assert!(speedup > 5.0 && speedup < 9.0, "speedup = {speedup}");
    }

    #[test]
    fn stream_and_reduce_are_positive_and_scale() {
        let m = Machine::sandy_bridge_12core();
        assert!(m.stream_time(1 << 20, 1) > m.stream_time(1 << 20, 12));
        assert_eq!(m.reduce_time(1000, 1, 4), 0.0);
        assert!(m.reduce_time(1000, 12, 12) > 0.0);
    }

    #[test]
    fn calibration_produces_finite_rates() {
        let pool = ThreadPool::new(1);
        let m = Machine::calibrated(&pool);
        assert!(m.peak_flops_core > 1e8 && m.peak_flops_core.is_finite());
        assert!(m.bw1 > 1e7 && m.bw1.is_finite());
        assert_eq!(m.cores, 12);
    }
}
