//! Property tests for the performance model: the predicted times must
//! behave like times (positive, finite, monotone in work, non-increasing
//! in threads up to the core count).

use mttkrp_machine::{predict_1step, predict_2step, predict_baseline, predict_explicit, Machine};
use proptest::prelude::*;

fn dims_strategy() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(4usize..200, 3..=5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn predictions_are_positive_and_finite(dims in dims_strategy(), c in 1usize..64, t in 1usize..=12) {
        let m = Machine::sandy_bridge_12core();
        for n in 0..dims.len() {
            for total in [
                predict_1step(&m, &dims, n, c, t).total,
                predict_2step(&m, &dims, n, c, t).total,
                predict_explicit(&m, &dims, n, c, t).total,
                predict_baseline(&m, &dims, n, c, t),
            ] {
                prop_assert!(total > 0.0 && total.is_finite());
            }
        }
    }

    #[test]
    fn more_threads_never_slower(dims in dims_strategy(), c in 1usize..40) {
        let m = Machine::sandy_bridge_12core();
        for n in 0..dims.len() {
            for t in 1usize..12 {
                let now = predict_1step(&m, &dims, n, c, t).total;
                let next = predict_1step(&m, &dims, n, c, t + 1).total;
                prop_assert!(next <= now * 1.0001, "1-step t={t}: {now} -> {next}");
                let now2 = predict_2step(&m, &dims, n, c, t).total;
                let next2 = predict_2step(&m, &dims, n, c, t + 1).total;
                prop_assert!(next2 <= now2 * 1.0001, "2-step t={t}");
            }
        }
    }

    #[test]
    fn bigger_tensors_take_longer(dims in dims_strategy(), c in 1usize..32, t in 1usize..=12) {
        let m = Machine::sandy_bridge_12core();
        let mut bigger = dims.clone();
        bigger[0] *= 2;
        for n in 0..dims.len() {
            prop_assert!(
                predict_1step(&m, &bigger, n, c, t).total
                    >= predict_1step(&m, &dims, n, c, t).total
            );
            prop_assert!(predict_baseline(&m, &bigger, n, c, t) >= predict_baseline(&m, &dims, n, c, t));
        }
    }

    #[test]
    fn higher_rank_costs_more(dims in dims_strategy(), c in 1usize..32, t in 1usize..=12) {
        let m = Machine::sandy_bridge_12core();
        for n in 0..dims.len() {
            prop_assert!(
                predict_1step(&m, &dims, n, 2 * c, t).total
                    >= predict_1step(&m, &dims, n, c, t).total
            );
        }
    }

    #[test]
    fn breakdown_totals_equal_category_sums(dims in dims_strategy(), c in 1usize..32, t in 1usize..=12) {
        let m = Machine::sandy_bridge_12core();
        for n in 0..dims.len() {
            for bd in [
                predict_1step(&m, &dims, n, c, t),
                predict_2step(&m, &dims, n, c, t),
                predict_explicit(&m, &dims, n, c, t),
            ] {
                prop_assert!((bd.total - bd.categorized()).abs() < 1e-12 * bd.total.max(1.0));
            }
        }
    }

    #[test]
    fn explicit_baseline_dominates_one_step(dims in dims_strategy(), c in 2usize..32, t in 1usize..=12) {
        // The explicit algorithm does everything the 1-step does *plus*
        // a reorder pass (modeled on the same machine), so it can never
        // be predicted faster than half the 1-step (sanity ordering; the
        // full KRP vs block-KRP difference gives some slack).
        let m = Machine::sandy_bridge_12core();
        for n in 0..dims.len() {
            let e = predict_explicit(&m, &dims, n, c, t).total;
            let o = predict_1step(&m, &dims, n, c, 1).total; // seq 1-step
            // Explicit at t threads vs 1-step sequential: only require
            // the explicit reorder overhead to be visible sequentially.
            if t == 1 {
                prop_assert!(e > 0.9 * o - 1e-9, "explicit {e} vs 1-step {o}");
            }
        }
    }
}
