//! Randomized-property tests of the machine model: predictions must
//! behave like times (positive, finite, monotone in work, non-increasing
//! in threads up to the core count). Cases come from a fixed-seed stream.

use mttkrp_machine::{predict_1step, predict_2step, predict_baseline, predict_explicit, Machine};
use mttkrp_rng::Rng64;

fn rand_dims(rng: &mut Rng64) -> Vec<usize> {
    let order = rng.usize_in(3, 6);
    (0..order).map(|_| rng.usize_in(4, 200)).collect()
}

#[test]
fn predictions_are_positive_and_finite() {
    let m = Machine::sandy_bridge_12core();
    let mut rng = Rng64::seed_from_u64(0x3AC8_0001);
    for _ in 0..64 {
        let dims = rand_dims(&mut rng);
        let c = rng.usize_in(1, 64);
        let t = rng.usize_in(1, 13);
        for n in 0..dims.len() {
            for total in [
                predict_1step(&m, &dims, n, c, t).total,
                predict_2step(&m, &dims, n, c, t).total,
                predict_explicit(&m, &dims, n, c, t).total,
                predict_baseline(&m, &dims, n, c, t),
            ] {
                assert!(
                    total > 0.0 && total.is_finite(),
                    "dims {dims:?} n={n} c={c} t={t}"
                );
            }
        }
    }
}

#[test]
fn more_threads_never_slower() {
    let m = Machine::sandy_bridge_12core();
    let mut rng = Rng64::seed_from_u64(0x3AC8_0002);
    for _ in 0..64 {
        let dims = rand_dims(&mut rng);
        let c = rng.usize_in(1, 40);
        for n in 0..dims.len() {
            for t in 1usize..12 {
                let now = predict_1step(&m, &dims, n, c, t).total;
                let next = predict_1step(&m, &dims, n, c, t + 1).total;
                assert!(next <= now * 1.0001, "1-step t={t}: {now} -> {next}");
                let now2 = predict_2step(&m, &dims, n, c, t).total;
                let next2 = predict_2step(&m, &dims, n, c, t + 1).total;
                assert!(next2 <= now2 * 1.0001, "2-step t={t}");
            }
        }
    }
}

#[test]
fn bigger_tensors_take_longer() {
    let m = Machine::sandy_bridge_12core();
    let mut rng = Rng64::seed_from_u64(0x3AC8_0003);
    for _ in 0..64 {
        let dims = rand_dims(&mut rng);
        let c = rng.usize_in(1, 32);
        let t = rng.usize_in(1, 13);
        let mut bigger = dims.clone();
        bigger[0] *= 2;
        for n in 0..dims.len() {
            assert!(
                predict_1step(&m, &bigger, n, c, t).total
                    >= predict_1step(&m, &dims, n, c, t).total
            );
            assert!(predict_baseline(&m, &bigger, n, c, t) >= predict_baseline(&m, &dims, n, c, t));
        }
    }
}

#[test]
fn higher_rank_costs_more() {
    let m = Machine::sandy_bridge_12core();
    let mut rng = Rng64::seed_from_u64(0x3AC8_0004);
    for _ in 0..64 {
        let dims = rand_dims(&mut rng);
        let c = rng.usize_in(1, 32);
        let t = rng.usize_in(1, 13);
        for n in 0..dims.len() {
            assert!(
                predict_1step(&m, &dims, n, 2 * c, t).total
                    >= predict_1step(&m, &dims, n, c, t).total
            );
        }
    }
}

#[test]
fn breakdown_totals_equal_category_sums() {
    let m = Machine::sandy_bridge_12core();
    let mut rng = Rng64::seed_from_u64(0x3AC8_0005);
    for _ in 0..64 {
        let dims = rand_dims(&mut rng);
        let c = rng.usize_in(1, 32);
        let t = rng.usize_in(1, 13);
        for n in 0..dims.len() {
            for bd in [
                predict_1step(&m, &dims, n, c, t),
                predict_2step(&m, &dims, n, c, t),
                predict_explicit(&m, &dims, n, c, t),
            ] {
                assert!((bd.total - bd.categorized()).abs() < 1e-12 * bd.total.max(1.0));
            }
        }
    }
}

#[test]
fn explicit_baseline_dominates_one_step_sequentially() {
    // The explicit algorithm does everything the 1-step does *plus* a
    // reorder pass (modeled on the same machine), so it can never be
    // predicted meaningfully faster than the sequential 1-step.
    let m = Machine::sandy_bridge_12core();
    let mut rng = Rng64::seed_from_u64(0x3AC8_0006);
    for _ in 0..64 {
        let dims = rand_dims(&mut rng);
        let c = rng.usize_in(2, 32);
        for n in 0..dims.len() {
            let e = predict_explicit(&m, &dims, n, c, 1).total;
            let o = predict_1step(&m, &dims, n, c, 1).total;
            assert!(e > 0.9 * o - 1e-9, "explicit {e} vs 1-step {o}");
        }
    }
}
