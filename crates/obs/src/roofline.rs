//! Roofline attribution: fold measured phase timings, byte/flop
//! estimates, and machine roofs into a per-execution [`PerfReport`].
//!
//! This module is deliberately **data-driven**: it knows nothing about
//! tuning profiles, kernel tiers, or MTTKRP algorithms. A caller (the
//! bridge in `mttkrp-tune`) supplies one [`PhaseSample`] per observed
//! phase — measured wall seconds next to the bytes/flops the phase
//! moved and the bandwidth/compute roofs it ran under — and this module
//! computes the attribution: achieved GB/s and GFLOP/s, the modeled
//! roofline time `max(bytes/BW, flops/F)`, the percent of that roof
//! actually sustained, and the dominant [`Bound`] per phase and per
//! mode. Reports render as a human-readable utilization table
//! ([`PerfReport::table`]) and as the self-describing
//! [`PerfReport::SCHEMA`] JSON envelope ([`PerfReport::to_json`],
//! documented in docs/FORMATS.md).
//!
//! Percent-of-roof reads as "how much of the modeled best case did the
//! phase sustain": 100% means the phase ran exactly at its roof, lower
//! means headroom, and values above ~110% mean the traffic model
//! overestimated the phase (e.g. a cache-resident working set priced at
//! DRAM bandwidth) — the sanity bound the acceptance bench asserts.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::export::escape;

/// Which roofline term dominates a phase or mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// The memory term `bytes / BW(T)` is the larger one.
    Bandwidth,
    /// The compute term `flops / F(T)` is the larger one.
    Compute,
}

impl Bound {
    /// Lower-case name used in tables and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Bound::Bandwidth => "bandwidth",
            Bound::Compute => "compute",
        }
    }
}

/// One measured phase plus the model inputs needed to attribute it.
///
/// `bytes`/`flops` cover the **whole** measured interval (all
/// repetitions the caller accumulated into `seconds`). Roofs are
/// absolute rates: `bw_roof` in bytes/s, `flop_roof` in flops/s, both
/// already scaled to the team size the phase ran at. A roof of 0
/// disables that term (the phase is then attributed entirely to the
/// other one).
#[derive(Debug, Clone)]
pub struct PhaseSample {
    /// Phase name (`krp`, `gemm`, `reduce`, …).
    pub name: String,
    /// Measured wall seconds of the phase.
    pub seconds: f64,
    /// Bytes moved over the measured interval (measured counter or
    /// traffic model).
    pub bytes: f64,
    /// Floating-point operations over the measured interval.
    pub flops: f64,
    /// Bandwidth roof in bytes/s at the executing team size.
    pub bw_roof: f64,
    /// Compute roof in flops/s at the executing team size.
    pub flop_roof: f64,
}

/// The computed attribution of one [`PhaseSample`].
#[derive(Debug, Clone)]
pub struct PhaseAttribution {
    /// Phase name.
    pub name: String,
    /// Measured wall seconds.
    pub seconds: f64,
    /// Achieved throughput, GB/s (`bytes / seconds / 1e9`).
    pub achieved_gb_per_s: f64,
    /// Achieved compute rate, GFLOP/s.
    pub achieved_gflop_per_s: f64,
    /// Bandwidth roof, GB/s.
    pub bw_roof_gb_per_s: f64,
    /// Compute roof, GFLOP/s.
    pub flop_roof_gflop_per_s: f64,
    /// Modeled roofline seconds: `max(bytes/BW, flops/F)`.
    pub roof_seconds: f64,
    /// `100 · roof_seconds / seconds` — fraction of the modeled best
    /// case the phase sustained.
    pub pct_of_roof: f64,
    /// The dominant roofline term.
    pub bound: Bound,
    /// The memory term of the roof (seconds), kept for mode rollups.
    pub bw_seconds: f64,
    /// The compute term of the roof (seconds), kept for mode rollups.
    pub flop_seconds: f64,
}

impl PhaseAttribution {
    /// Attribute one sample; `None` when the phase recorded no time.
    pub fn from_sample(s: &PhaseSample) -> Option<PhaseAttribution> {
        if s.seconds <= 0.0 || !s.seconds.is_finite() {
            return None;
        }
        let bw_seconds = if s.bw_roof > 0.0 {
            s.bytes / s.bw_roof
        } else {
            0.0
        };
        let flop_seconds = if s.flop_roof > 0.0 {
            s.flops / s.flop_roof
        } else {
            0.0
        };
        let roof_seconds = bw_seconds.max(flop_seconds);
        Some(PhaseAttribution {
            name: s.name.clone(),
            seconds: s.seconds,
            achieved_gb_per_s: s.bytes / s.seconds / 1e9,
            achieved_gflop_per_s: s.flops / s.seconds / 1e9,
            bw_roof_gb_per_s: s.bw_roof / 1e9,
            flop_roof_gflop_per_s: s.flop_roof / 1e9,
            roof_seconds,
            pct_of_roof: 100.0 * roof_seconds / s.seconds,
            bound: if bw_seconds >= flop_seconds {
                Bound::Bandwidth
            } else {
                Bound::Compute
            },
            bw_seconds,
            flop_seconds,
        })
    }
}

/// All phases of one attributed mode (or of one whole run).
#[derive(Debug, Clone)]
pub struct ModeAttribution {
    /// Display label (`mode 0`, `all modes`, …).
    pub label: String,
    /// The algorithm that ran (`OneStepExternal`, `Fused`, …).
    pub algo: String,
    /// Measured wall seconds of the whole mode.
    pub seconds: f64,
    /// The dominant bound over the mode (larger summed roofline term).
    pub bound: Bound,
    /// `100 · Σ roof_seconds / seconds` over the mode's phases.
    pub pct_of_roof: f64,
    /// Per-phase attributions, in the caller's phase order.
    pub phases: Vec<PhaseAttribution>,
}

/// A per-execution roofline attribution report. Build with
/// [`PerfReport::push_mode`], render with [`PerfReport::table`] /
/// [`PerfReport::to_json`]. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct PerfReport {
    context: Vec<(String, String)>,
    modes: Vec<ModeAttribution>,
    advisory: Option<String>,
}

impl PerfReport {
    /// The schema tag of the JSON envelope (docs/FORMATS.md).
    pub const SCHEMA: &'static str = "mttkrp-perf-v1";

    /// An empty report.
    pub fn new() -> PerfReport {
        PerfReport::default()
    }

    /// Add (or overwrite) a context entry — dims, rank, threads, tier,
    /// the profile's roofs — emitted verbatim in the envelope header.
    pub fn set_context(&mut self, key: &str, value: impl Into<String>) -> &mut Self {
        let value = value.into();
        match self.context.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => self.context.push((key.to_string(), value)),
        }
        self
    }

    /// Attribute `samples` as one mode. Phases that recorded no time
    /// are dropped; the mode's dominant bound is whichever roofline
    /// term sums larger across the surviving phases.
    pub fn push_mode(&mut self, label: &str, algo: &str, seconds: f64, samples: &[PhaseSample]) {
        let phases: Vec<PhaseAttribution> = samples
            .iter()
            .filter_map(PhaseAttribution::from_sample)
            .collect();
        let bw: f64 = phases.iter().map(|p| p.bw_seconds).sum();
        let fl: f64 = phases.iter().map(|p| p.flop_seconds).sum();
        let roof: f64 = phases.iter().map(|p| p.roof_seconds).sum();
        self.modes.push(ModeAttribution {
            label: label.to_string(),
            algo: algo.to_string(),
            seconds,
            bound: if bw >= fl {
                Bound::Bandwidth
            } else {
                Bound::Compute
            },
            pct_of_roof: if seconds > 0.0 {
                100.0 * roof / seconds
            } else {
                0.0
            },
            phases,
        });
    }

    /// Attach (or replace) the advisory line — the model-drift
    /// "recalibrate" recommendation surfaces here.
    pub fn set_advisory(&mut self, advisory: impl Into<String>) {
        self.advisory = Some(advisory.into());
    }

    /// The advisory, if one was attached.
    pub fn advisory(&self) -> Option<&str> {
        self.advisory.as_deref()
    }

    /// The attributed modes, in insertion order.
    pub fn modes(&self) -> &[ModeAttribution] {
        &self.modes
    }

    /// The context entries, in insertion order.
    pub fn context(&self) -> &[(String, String)] {
        &self.context
    }

    /// The human-readable utilization table.
    pub fn table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<22} {:>10} {:>8} {:>9} {:>8} {:>9} {:>6}  bound",
            "phase", "seconds", "GB/s", "GFLOP/s", "bw-roof", "fl-roof", "%roof"
        );
        for m in &self.modes {
            let _ = writeln!(
                s,
                "{} [{}]  {:.3e}s  {:.0}% of roof, {}-bound",
                m.label,
                m.algo,
                m.seconds,
                m.pct_of_roof,
                m.bound.name()
            );
            for p in &m.phases {
                let _ = writeln!(
                    s,
                    "  {:<20} {:>10.3e} {:>8.2} {:>9.2} {:>8.2} {:>9.2} {:>6.0}  {}",
                    p.name,
                    p.seconds,
                    p.achieved_gb_per_s,
                    p.achieved_gflop_per_s,
                    p.bw_roof_gb_per_s,
                    p.flop_roof_gflop_per_s,
                    p.pct_of_roof,
                    p.bound.name()
                );
            }
        }
        if let Some(a) = &self.advisory {
            let _ = writeln!(s, "advisory: {a}");
        }
        s
    }

    /// Render the `mttkrp-perf-v1` JSON envelope.
    pub fn to_json(&self) -> String {
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v:e}")
            } else {
                "null".to_string()
            }
        }
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"schema\": \"{}\",", Self::SCHEMA);
        s.push_str("  \"context\": {");
        for (i, (k, v)) in self.context.iter().enumerate() {
            let comma = if i + 1 < self.context.len() { "," } else { "" };
            let _ = write!(s, "\n    \"{}\": \"{}\"{comma}", escape(k), escape(v));
        }
        s.push_str("\n  },\n");
        match &self.advisory {
            Some(a) => {
                let _ = writeln!(s, "  \"advisory\": \"{}\",", escape(a));
            }
            None => s.push_str("  \"advisory\": null,\n"),
        }
        s.push_str("  \"modes\": [");
        for (i, m) in self.modes.iter().enumerate() {
            let comma = if i + 1 < self.modes.len() { "," } else { "" };
            let _ = write!(
                s,
                "\n    {{\"label\": \"{}\", \"algo\": \"{}\", \"seconds\": {}, \"bound\": \"{}\", \"pct_of_roof\": {}, \"phases\": [",
                escape(&m.label),
                escape(&m.algo),
                num(m.seconds),
                m.bound.name(),
                num(m.pct_of_roof)
            );
            for (j, p) in m.phases.iter().enumerate() {
                let pc = if j + 1 < m.phases.len() { "," } else { "" };
                let _ = write!(
                    s,
                    "\n      {{\"name\": \"{}\", \"seconds\": {}, \"achieved_gb_per_s\": {}, \"achieved_gflop_per_s\": {}, \"bw_roof_gb_per_s\": {}, \"flop_roof_gflop_per_s\": {}, \"pct_of_roof\": {}, \"bound\": \"{}\"}}{pc}",
                    escape(&p.name),
                    num(p.seconds),
                    num(p.achieved_gb_per_s),
                    num(p.achieved_gflop_per_s),
                    num(p.bw_roof_gb_per_s),
                    num(p.flop_roof_gflop_per_s),
                    num(p.pct_of_roof),
                    p.bound.name()
                );
            }
            let _ = write!(s, "\n    ]}}{comma}");
        }
        s.push_str("\n  ]\n}\n");
        s
    }

    /// Write the JSON envelope to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(name: &str, seconds: f64, bytes: f64, flops: f64) -> PhaseSample {
        PhaseSample {
            name: name.to_string(),
            seconds,
            bytes,
            flops,
            bw_roof: 10e9,    // 10 GB/s
            flop_roof: 100e9, // 100 GFLOP/s
        }
    }

    #[test]
    fn bandwidth_bound_phase_is_attributed() {
        // 1 GB in 0.2 s → 5 GB/s achieved, roof time 0.1 s → 50%.
        let p = PhaseAttribution::from_sample(&sample("krp", 0.2, 1e9, 1e9)).unwrap();
        assert_eq!(p.bound, Bound::Bandwidth);
        assert!((p.achieved_gb_per_s - 5.0).abs() < 1e-9);
        assert!((p.pct_of_roof - 50.0).abs() < 1e-6, "pct={}", p.pct_of_roof);
    }

    #[test]
    fn compute_bound_phase_is_attributed() {
        // 100 GFLOP vs 1 GB: compute term 1 s ≫ memory term 0.1 s.
        let p = PhaseAttribution::from_sample(&sample("gemm", 1.25, 1e9, 100e9)).unwrap();
        assert_eq!(p.bound, Bound::Compute);
        assert!((p.pct_of_roof - 80.0).abs() < 1e-6, "pct={}", p.pct_of_roof);
    }

    #[test]
    fn zero_time_phases_are_dropped() {
        assert!(PhaseAttribution::from_sample(&sample("idle", 0.0, 1.0, 1.0)).is_none());
        let mut r = PerfReport::new();
        r.push_mode(
            "mode 0",
            "OneStepExternal",
            0.2,
            &[sample("krp", 0.2, 1e9, 1e9), sample("idle", 0.0, 1.0, 1.0)],
        );
        assert_eq!(r.modes()[0].phases.len(), 1);
        assert_eq!(r.modes()[0].bound, Bound::Bandwidth);
    }

    #[test]
    fn mode_bound_follows_larger_roof_term() {
        let mut r = PerfReport::new();
        r.push_mode(
            "mode 1",
            "TwoStepLeft",
            2.0,
            &[
                sample("krp", 0.2, 1e9, 1e9),     // memory term 0.1
                sample("gemm", 1.25, 1e9, 200e9), // compute term 2.0
            ],
        );
        assert_eq!(r.modes()[0].bound, Bound::Compute);
        assert!(r.modes()[0].pct_of_roof > 0.0);
    }

    #[test]
    fn json_envelope_is_self_describing_and_balanced() {
        let mut r = PerfReport::new();
        r.set_context("dims", "60x50x40").set_context("rank", "8");
        r.set_context("rank", "16"); // overwrite by key
        r.push_mode(
            "mode 0",
            "OneStepExternal",
            0.2,
            &[sample("krp", 0.2, 1e9, 1e9)],
        );
        r.set_advisory("recalibrate: drift \"detected\"");
        let s = r.to_json();
        assert!(s.contains("\"schema\": \"mttkrp-perf-v1\""));
        assert!(s.contains("\"rank\": \"16\""));
        assert!(!s.contains("\"rank\": \"8\""));
        assert!(s.contains("\"bound\": \"bandwidth\""));
        assert!(s.contains("recalibrate: drift \\\"detected\\\""));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn table_renders_every_phase_and_the_advisory() {
        let mut r = PerfReport::new();
        r.push_mode(
            "mode 0",
            "Fused",
            0.2,
            &[sample("fused_stream", 0.2, 1e9, 3e9)],
        );
        r.set_advisory("recalibrate");
        let t = r.table();
        assert!(t.contains("mode 0 [Fused]"), "table:\n{t}");
        assert!(t.contains("fused_stream"), "table:\n{t}");
        assert!(t.contains("advisory: recalibrate"), "table:\n{t}");
    }

    #[test]
    fn empty_report_renders_valid_json() {
        let s = PerfReport::new().to_json();
        assert!(s.contains("\"advisory\": null"));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }
}
