//! Tracing spans: RAII guards recorded into per-thread ring buffers.
//!
//! The recorder is built around two constraints inherited from the rest
//! of the workspace:
//!
//! 1. **The disabled path must be free.** Every hot loop in the MTTKRP
//!    stack carries span guards; when tracing is off the entire cost of
//!    a guard is **one relaxed atomic load** and a branch — no clock
//!    read, no thread-local access, no allocation. The zero-allocation
//!    property tests (`tests/obs_disabled.rs`) pin this.
//! 2. **The enabled path must not allocate in steady state.** Each
//!    thread records into a pre-reserved fixed-capacity buffer
//!    ([`SPAN_CAPACITY`] records) registered on its first span; once
//!    the buffer fills, further records are counted in
//!    [`dropped_spans`] rather than grown, so the allocation-counting
//!    suites pass even under `MTTKRP_TRACE=full`.
//!
//! Records are published with the owning thread's buffer mutex held —
//! the lock is uncontended except while a flush ([`take_spans`]) drains
//! concurrently, so the record path is one clock read, one CAS-backed
//! lock, and a bounds-checked push.
//!
//! Nesting is tracked with a per-thread depth counter maintained by the
//! RAII guards, so drained records are **well-nested per thread**: a
//! record at depth `d+1` closed before its enclosing depth-`d` span,
//! and records appear in closing order (monotone end timestamps per
//! thread). Timestamps share one process-wide [`Instant`] epoch, so
//! spans from different threads (e.g. the OOC prefetch thread vs the
//! compute team) are directly comparable on one timeline.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Per-thread span buffer capacity, in records. A thread that closes
/// more spans than this between flushes drops the excess (counted by
/// [`dropped_spans`]) instead of reallocating.
pub const SPAN_CAPACITY: usize = 16 * 1024;

/// Runtime tracing verbosity, resolved once from `MTTKRP_TRACE`
/// (`off` | `spans` | `full`; unset means `off`) or forced with
/// [`set_trace_level`].
///
/// `Spans` records the coarse timeline (plan construction, per-mode
/// MTTKRP, Gram, solve, sweeps, tile I/O); `Full` adds the per-phase /
/// per-kernel detail spans inside the hot loops (KRP, GEMM, reduce,
/// per-tile waits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum TraceLevel {
    /// No recording; guards cost one relaxed atomic load.
    Off = 0,
    /// Coarse timeline spans.
    Spans = 1,
    /// Coarse spans plus per-phase/per-kernel detail spans.
    Full = 2,
}

impl TraceLevel {
    /// Parse a `MTTKRP_TRACE` value; `None` for unrecognized input.
    pub fn parse(s: &str) -> Option<TraceLevel> {
        match s {
            "off" | "0" | "" => Some(TraceLevel::Off),
            "spans" | "1" => Some(TraceLevel::Spans),
            "full" | "2" => Some(TraceLevel::Full),
            _ => None,
        }
    }

    /// Lower-case name (`off` / `spans` / `full`).
    pub fn name(self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Spans => "spans",
            TraceLevel::Full => "full",
        }
    }
}

const LEVEL_UNINIT: u8 = u8::MAX;
static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNINIT);

/// The process-wide tracing level. First call resolves `MTTKRP_TRACE`;
/// afterwards this is a single relaxed atomic load — the *entire*
/// disabled-path cost of every span site.
#[inline]
pub fn trace_level() -> TraceLevel {
    match LEVEL.load(Ordering::Relaxed) {
        0 => TraceLevel::Off,
        1 => TraceLevel::Spans,
        2 => TraceLevel::Full,
        _ => init_level(),
    }
}

#[cold]
fn init_level() -> TraceLevel {
    let level = match std::env::var("MTTKRP_TRACE") {
        Ok(v) => TraceLevel::parse(&v).unwrap_or_else(|| {
            eprintln!("MTTKRP_TRACE={v:?} not recognized (expected off|spans|full); tracing off");
            TraceLevel::Off
        }),
        Err(_) => TraceLevel::Off,
    };
    LEVEL.store(level as u8, Ordering::Relaxed);
    level
}

/// Force the tracing level, overriding `MTTKRP_TRACE` (CLIs use this
/// for `--trace-out`; tests use it to pin the level regardless of the
/// environment).
pub fn set_trace_level(level: TraceLevel) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// One closed span, drained by [`take_spans`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (`"mttkrp"`, `"gemm"`, `"tile_read"`, …).
    pub name: &'static str,
    /// Category: the crate that recorded it (`"mttkrp-core"`, …).
    pub cat: &'static str,
    /// Optional argument key (`""` when the span carries no argument).
    pub arg_key: &'static str,
    /// Argument value (meaningful only when `arg_key` is non-empty).
    pub arg_val: i64,
    /// Recording thread, indexed by registration order.
    pub tid: u32,
    /// Nesting depth on the recording thread (0 = outermost).
    pub depth: u32,
    /// Start offset from the process trace epoch, nanoseconds.
    pub start_ns: u64,
    /// Span duration, nanoseconds.
    pub dur_ns: u64,
}

impl SpanRecord {
    /// End offset from the trace epoch, nanoseconds.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

struct ThreadBuf {
    tid: u32,
    name: String,
    records: Mutex<Vec<SpanRecord>>,
    dropped: AtomicU64,
}

/// All registered thread buffers. Buffers are leaked (`&'static`): one
/// bounded allocation per recording thread for the process lifetime,
/// which is what lets the record path stay allocation-free.
static THREADS: Mutex<Vec<&'static ThreadBuf>> = Mutex::new(Vec::new());

static TRACE_EPOCH: OnceLock<Instant> = OnceLock::new();

#[inline]
fn now_ns() -> u64 {
    TRACE_EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

thread_local! {
    static LOCAL: Cell<Option<&'static ThreadBuf>> = const { Cell::new(None) };
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

#[cold]
fn register_thread() -> &'static ThreadBuf {
    let mut threads = THREADS.lock().expect("span thread registry poisoned");
    let buf: &'static ThreadBuf = Box::leak(Box::new(ThreadBuf {
        tid: threads.len() as u32,
        name: std::thread::current()
            .name()
            .unwrap_or("unnamed")
            .to_string(),
        records: Mutex::new(Vec::with_capacity(SPAN_CAPACITY)),
        dropped: AtomicU64::new(0),
    }));
    threads.push(buf);
    buf
}

#[inline]
fn local_buf() -> &'static ThreadBuf {
    LOCAL.with(|l| match l.get() {
        Some(b) => b,
        None => {
            let b = register_thread();
            l.set(Some(b));
            b
        }
    })
}

/// RAII span guard: records a [`SpanRecord`] on drop when tracing is at
/// or above the level it was entered with. Construct through the
/// [`span!`](crate::span) / [`span_full!`](crate::span_full) macros,
/// which fill the category with the calling crate's name.
#[must_use = "a span measures the scope holding the guard"]
pub struct SpanGuard {
    name: &'static str,
    cat: &'static str,
    arg_key: &'static str,
    arg_val: i64,
    start_ns: u64,
    active: bool,
}

impl SpanGuard {
    /// Open a span if the current [`trace_level`] is at least
    /// `min_level`. The inactive path performs exactly one relaxed
    /// atomic load.
    #[inline]
    pub fn enter(
        min_level: TraceLevel,
        name: &'static str,
        cat: &'static str,
        arg_key: &'static str,
        arg_val: i64,
    ) -> SpanGuard {
        let active = trace_level() >= min_level;
        let start_ns = if active {
            DEPTH.with(|d| d.set(d.get() + 1));
            now_ns()
        } else {
            0
        };
        SpanGuard {
            name,
            cat,
            arg_key,
            arg_val,
            start_ns,
            active,
        }
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if self.active {
            close_span(self);
        }
    }
}

fn close_span(g: &SpanGuard) {
    let end = now_ns();
    let depth = DEPTH.with(|d| {
        let v = d.get().saturating_sub(1);
        d.set(v);
        v
    });
    let buf = local_buf();
    let rec = SpanRecord {
        name: g.name,
        cat: g.cat,
        arg_key: g.arg_key,
        arg_val: g.arg_val,
        tid: buf.tid,
        depth,
        start_ns: g.start_ns,
        dur_ns: end.saturating_sub(g.start_ns),
    };
    let mut records = buf.records.lock().expect("span buffer poisoned");
    if records.len() < SPAN_CAPACITY {
        records.push(rec);
    } else {
        drop(records);
        buf.dropped.fetch_add(1, Ordering::Relaxed);
    }
}

/// Drain every thread's buffered spans (the "flush"). Buffers keep
/// their reserved capacity, so recording stays allocation-free after a
/// flush. Records are grouped by thread, each group in closing order.
pub fn take_spans() -> Vec<SpanRecord> {
    let threads = THREADS.lock().expect("span thread registry poisoned");
    let mut out = Vec::new();
    for t in threads.iter() {
        let mut records = t.records.lock().expect("span buffer poisoned");
        out.extend(records.drain(..));
    }
    out
}

/// Spans discarded because a thread's buffer was full, since process
/// start. A nonzero value means the trace is truncated (earliest spans
/// per thread are kept).
pub fn dropped_spans() -> u64 {
    let threads = THREADS.lock().expect("span thread registry poisoned");
    threads
        .iter()
        .map(|t| t.dropped.load(Ordering::Relaxed))
        .sum()
}

/// `(tid, thread name)` for every thread that has recorded a span.
pub fn thread_names() -> Vec<(u32, String)> {
    let threads = THREADS.lock().expect("span thread registry poisoned");
    threads.iter().map(|t| (t.tid, t.name.clone())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Level mutations are process-global; every test in this module
    // takes the lock (they run in one binary's test harness).
    static LEVEL_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn parse_covers_all_levels() {
        assert_eq!(TraceLevel::parse("off"), Some(TraceLevel::Off));
        assert_eq!(TraceLevel::parse("spans"), Some(TraceLevel::Spans));
        assert_eq!(TraceLevel::parse("full"), Some(TraceLevel::Full));
        assert_eq!(TraceLevel::parse("2"), Some(TraceLevel::Full));
        assert_eq!(TraceLevel::parse("bogus"), None);
        assert!(TraceLevel::Off < TraceLevel::Spans);
        assert!(TraceLevel::Spans < TraceLevel::Full);
    }

    #[test]
    fn disabled_guard_records_nothing() {
        let _l = LEVEL_LOCK.lock().unwrap();
        let before = set_and_drain(TraceLevel::Off);
        {
            let _g = SpanGuard::enter(TraceLevel::Spans, "noop", "mttkrp-obs", "", 0);
        }
        let spans = take_spans();
        assert!(
            !spans.iter().any(|s| s.name == "noop"),
            "off-level guard must not record (got {spans:?}, pre-drained {before})"
        );
    }

    #[test]
    fn nested_guards_record_depth_and_order() {
        let _l = LEVEL_LOCK.lock().unwrap();
        set_and_drain(TraceLevel::Spans);
        {
            let _outer = SpanGuard::enter(TraceLevel::Spans, "outer_t", "mttkrp-obs", "", 0);
            let _inner = SpanGuard::enter(TraceLevel::Spans, "inner_t", "mttkrp-obs", "mode", 3);
        }
        set_trace_level(TraceLevel::Off);
        let spans: Vec<SpanRecord> = take_spans()
            .into_iter()
            .filter(|s| s.name.ends_with("_t"))
            .collect();
        assert_eq!(spans.len(), 2);
        // Inner closes first, one level deeper, contained in the outer.
        let (inner, outer) = (&spans[0], &spans[1]);
        assert_eq!(inner.name, "inner_t");
        assert_eq!(outer.name, "outer_t");
        assert_eq!(inner.depth, outer.depth + 1);
        assert_eq!((inner.arg_key, inner.arg_val), ("mode", 3));
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.end_ns() <= outer.end_ns());
    }

    #[test]
    fn full_spans_skipped_at_spans_level() {
        let _l = LEVEL_LOCK.lock().unwrap();
        set_and_drain(TraceLevel::Spans);
        {
            let _g = SpanGuard::enter(TraceLevel::Full, "detail_t", "mttkrp-obs", "", 0);
        }
        set_trace_level(TraceLevel::Off);
        assert!(!take_spans().iter().any(|s| s.name == "detail_t"));
    }

    fn set_and_drain(level: TraceLevel) -> usize {
        set_trace_level(level);
        take_spans().len()
    }
}
