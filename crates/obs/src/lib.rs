//! Unified observability for the MTTKRP workspace: tracing spans, a
//! process-wide metrics registry, trace exporters, and the bench
//! trajectory reporter.
//!
//! Everything here is **compiled in and runtime-gated**, with the
//! disabled path costing a single relaxed atomic load per site:
//!
//! * **Spans** ([`trace`]) — `let _s = span!("mttkrp", mode = n);`
//!   opens an RAII guard recorded into a fixed-capacity per-thread
//!   buffer when `MTTKRP_TRACE` (or [`set_trace_level`]) enables
//!   tracing. [`span!`](crate::span) spans form the coarse timeline
//!   (plan construction → per-mode MTTKRP → Gram → solve, OOC tile
//!   reads); [`span_full!`](crate::span_full) adds the per-phase
//!   detail (KRP, GEMM, reduce, tile waits) under `MTTKRP_TRACE=full`.
//! * **Exporters** ([`export`]) — drained spans render as chrome-trace
//!   JSON (load in Perfetto / `chrome://tracing`) or the compact
//!   self-describing `mttkrp-trace-v1` format.
//! * **Metrics** ([`metrics`]) — named counters / gauges / histograms
//!   behind [`registry`], with `&'static` handles cached per call site
//!   by the [`counter!`](crate::counter), [`gauge!`](crate::gauge) and
//!   [`histogram!`](crate::histogram) macros so the record path is a
//!   bare relaxed atomic op.
//! * **Bench reports** ([`report`]) — [`BenchReport`] writes the
//!   schema-versioned `BENCH_pr<N>.json` trajectory files, and
//!   [`BenchDiff`] reads two of them back (through the in-tree
//!   [`json`] parser) and gates on relative regressions — the engine
//!   of the `bench-diff` CLI and the CI `perf-gate` leg.
//! * **Roofline attribution** ([`roofline`]) — [`PerfReport`] folds
//!   measured phase seconds, byte/flop estimates, and machine roofs
//!   into percent-of-roof and bandwidth-vs-compute verdicts per phase
//!   and mode, rendered as a utilization table and the
//!   `mttkrp-perf-v1` envelope. (The model-aware bridge that feeds it
//!   lives in `mttkrp-tune`, which knows the calibrated roofs.)
//! * **Prometheus exposition** ([`metrics::render_prometheus`]) — the
//!   registry rendered in the Prometheus text format, groundwork for
//!   a scraping daemon.
//!
//! The crate has no dependencies (std only) and sits below every other
//! crate in the workspace, so any layer can record without cycles.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod export;
pub mod json;
pub mod metrics;
pub mod report;
pub mod roofline;
pub mod trace;

pub use export::{chrome_trace, compact_trace, write_chrome_trace, write_compact_trace};
pub use json::JsonValue;
pub use metrics::{
    metrics_enabled, registry, render_prometheus, set_metrics_enabled, Counter, Gauge, Histogram,
    Registry,
};
pub use report::{BenchDiff, BenchReport, BenchValue, DiffEntry, MetricClass, RowBuilder};
pub use roofline::{Bound, ModeAttribution, PerfReport, PhaseAttribution, PhaseSample};
pub use trace::{
    dropped_spans, set_trace_level, take_spans, thread_names, trace_level, SpanGuard, SpanRecord,
    TraceLevel,
};

/// Open a coarse-timeline span (recorded at `MTTKRP_TRACE=spans` and
/// above). Expands to a [`SpanGuard`] that must be bound to a local —
/// the span covers the guard's scope. The category is the calling
/// crate's name (via `CARGO_PKG_NAME` at the expansion site).
///
/// ```
/// # use mttkrp_obs::span;
/// let _s = span!("mttkrp");
/// let _t = span!("mttkrp", mode = 2usize); // one integer argument
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter(
            $crate::TraceLevel::Spans,
            $name,
            env!("CARGO_PKG_NAME"),
            "",
            0,
        )
    };
    ($name:expr, $key:ident = $val:expr) => {
        $crate::SpanGuard::enter(
            $crate::TraceLevel::Spans,
            $name,
            env!("CARGO_PKG_NAME"),
            stringify!($key),
            i64::try_from($val).unwrap_or(i64::MAX),
        )
    };
}

/// Open a detail span (recorded only at `MTTKRP_TRACE=full`). Same
/// shape as [`span!`](crate::span); use inside hot loops where the
/// coarse timeline would be too noisy at the `spans` level.
#[macro_export]
macro_rules! span_full {
    ($name:expr) => {
        $crate::SpanGuard::enter(
            $crate::TraceLevel::Full,
            $name,
            env!("CARGO_PKG_NAME"),
            "",
            0,
        )
    };
    ($name:expr, $key:ident = $val:expr) => {
        $crate::SpanGuard::enter(
            $crate::TraceLevel::Full,
            $name,
            env!("CARGO_PKG_NAME"),
            stringify!($key),
            i64::try_from($val).unwrap_or(i64::MAX),
        )
    };
}

/// The counter named by the literal, resolved through [`registry`] once
/// per call site and cached in a local `static` — repeat executions are
/// a single relaxed atomic add away.
///
/// ```
/// # use mttkrp_obs::counter;
/// counter!("core.plans_built").incr();
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::Counter> = ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::registry().counter($name))
    }};
}

/// The gauge named by the literal, cached per call site like
/// [`counter!`](crate::counter).
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::Gauge> = ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::registry().gauge($name))
    }};
}

/// The histogram named by the literal, cached per call site like
/// [`counter!`](crate::counter).
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::registry().histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn metric_macros_cache_per_site() {
        let a = counter!("test.lib_macro_counter");
        a.add(2);
        let b = counter!("test.lib_macro_counter");
        assert!(std::ptr::eq(a, b) || b.value() >= 2);
        gauge!("test.lib_macro_gauge").add(5);
        assert_eq!(gauge!("test.lib_macro_gauge").value(), 5);
        histogram!("test.lib_macro_hist").record(9);
        assert_eq!(histogram!("test.lib_macro_hist").count(), 1);
    }

    #[test]
    fn span_macro_compiles_with_and_without_arg() {
        // Level may be anything here (other tests mutate it); just
        // exercise both expansions.
        let _a = span!("lib_macro_span");
        let _b = span!("lib_macro_span", mode = 1usize);
        let _c = span_full!("lib_macro_detail", bytes = u64::MAX);
    }
}
