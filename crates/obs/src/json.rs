//! A minimal in-tree JSON reader.
//!
//! The workspace has a zero-external-dependency policy, and until now
//! every JSON producer in the tree only ever *wrote* JSON. The
//! bench-diff gate ([`crate::report::BenchDiff`]) needs to read the
//! committed `mttkrp-bench-v1` trajectory files back, so this module
//! provides a small recursive-descent parser over the JSON subset
//! those files (and any RFC 8259 document) use. Objects preserve key
//! order; all numbers are read as `f64` — more than enough precision
//! for benchmark metrics.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, read as `f64`.
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source key order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parse a complete JSON document; trailing garbage is an error.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object member lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The bool, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(members) => Some(members),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            // Combine a UTF-16 surrogate pair when one
                            // follows; lone surrogates become U+FFFD.
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let c =
                                        0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                    char::from_u32(c).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(hi).unwrap_or('\u{FFFD}')
                            };
                            out.push(ch);
                            continue; // hex4 already advanced past the digits
                        }
                        other => {
                            return Err(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|c| c as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (the input is a &str, so
                    // the bytes are valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let ch = s.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end]).map_err(|e| e.to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|e| format!("bad \\u escape: {e}"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        s.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|e| format!("bad number {s:?} at byte {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(
            JsonValue::parse(" -1.5e3 ").unwrap(),
            JsonValue::Num(-1500.0)
        );
        assert_eq!(
            JsonValue::parse("\"a\\\"b\\\\c\\n\"").unwrap(),
            JsonValue::Str("a\"b\\c\n".to_string())
        );
    }

    #[test]
    fn parses_nested_document_preserving_key_order() {
        let doc = JsonValue::parse(
            r#"{"schema": "mttkrp-bench-v1", "pr": 9, "rows": [{"mode": 0, "gb_per_s": 1.25e1, "ok": true}, {"mode": 1, "gb_per_s": 8.0, "ok": false}], "note": null}"#,
        )
        .unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("mttkrp-bench-v1"));
        assert_eq!(doc.get("pr").unwrap().as_f64(), Some(9.0));
        let rows = doc.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].get("gb_per_s").unwrap().as_f64(), Some(8.0));
        assert_eq!(rows[0].get("ok").unwrap().as_bool(), Some(true));
        let keys: Vec<&str> = doc
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["schema", "pr", "rows", "note"]);
    }

    #[test]
    fn decodes_unicode_escapes_and_surrogate_pairs() {
        assert_eq!(
            JsonValue::parse("\"\\u00e9\\u0001\"").unwrap(),
            JsonValue::Str("é\u{1}".to_string())
        );
        assert_eq!(
            JsonValue::parse("\"\\ud83d\\ude00\"").unwrap(),
            JsonValue::Str("😀".to_string())
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(JsonValue::parse("{\"a\": }").is_err());
        assert!(JsonValue::parse("[1, 2").is_err());
        assert!(JsonValue::parse("{} trailing").is_err());
        assert!(JsonValue::parse("\"open").is_err());
        assert!(JsonValue::parse("01x").is_err());
    }

    #[test]
    fn round_trips_a_bench_report() {
        use crate::report::BenchReport;
        let mut r = BenchReport::new(9);
        r.scalar("threads", 8u64);
        r.row("mttkrp")
            .field("dtype", "f64")
            .field("mode", 0u64)
            .field("gb_per_s", 12.5);
        let doc = JsonValue::parse(&r.to_json()).expect("BenchReport output must parse");
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("mttkrp-bench-v1"));
        let rows = doc.get("mttkrp").unwrap().as_arr().unwrap();
        assert_eq!(rows[0].get("gb_per_s").unwrap().as_f64(), Some(12.5));
    }
}
