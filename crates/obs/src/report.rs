//! The bench trajectory reporter: a builder for the per-PR
//! `BENCH_pr<N>.json` records.
//!
//! Every PR's acceptance benchmark persists its numbers at the repo
//! root so the performance trajectory is diffable across PRs. Before
//! this crate each bench hand-rolled its JSON; [`BenchReport`] is the
//! shared writer: scalars (`rank`, `smoke`, `host_threads`, …),
//! row-oriented sections (`"mttkrp": [{...}, ...]`), and an
//! `acceptance` section for the pass/fail summary, emitted under the
//! schema tag [`BenchReport::SCHEMA`] (documented in docs/FORMATS.md).
//!
//! ```
//! use mttkrp_obs::BenchReport;
//!
//! let mut r = BenchReport::new(7);
//! r.scalar("rank", 25u64).scalar("smoke", true);
//! r.row("mttkrp")
//!     .field("algorithm", "1step")
//!     .field("seconds", 1.25e-3);
//! let json = r.to_json();
//! assert!(json.contains("\"schema\": \"mttkrp-bench-v1\""));
//! assert!(json.contains("\"pr\": 7"));
//! ```

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A JSON-serializable bench value.
#[derive(Debug, Clone, PartialEq)]
pub enum BenchValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float, written in exponent form (`null` when non-finite).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl BenchValue {
    fn write_to(&self, s: &mut String) {
        match self {
            BenchValue::U64(v) => {
                let _ = write!(s, "{v}");
            }
            BenchValue::I64(v) => {
                let _ = write!(s, "{v}");
            }
            BenchValue::F64(v) if v.is_finite() => {
                let _ = write!(s, "{v:e}");
            }
            BenchValue::F64(_) => s.push_str("null"),
            BenchValue::Bool(v) => {
                let _ = write!(s, "{v}");
            }
            BenchValue::Str(v) => {
                let _ = write!(s, "\"{}\"", crate::export::escape(v));
            }
        }
    }
}

impl From<u64> for BenchValue {
    fn from(v: u64) -> Self {
        BenchValue::U64(v)
    }
}
impl From<usize> for BenchValue {
    fn from(v: usize) -> Self {
        BenchValue::U64(v as u64)
    }
}
impl From<u32> for BenchValue {
    fn from(v: u32) -> Self {
        BenchValue::U64(u64::from(v))
    }
}
impl From<i64> for BenchValue {
    fn from(v: i64) -> Self {
        BenchValue::I64(v)
    }
}
impl From<f64> for BenchValue {
    fn from(v: f64) -> Self {
        BenchValue::F64(v)
    }
}
impl From<bool> for BenchValue {
    fn from(v: bool) -> Self {
        BenchValue::Bool(v)
    }
}
impl From<&str> for BenchValue {
    fn from(v: &str) -> Self {
        BenchValue::Str(v.to_string())
    }
}
impl From<String> for BenchValue {
    fn from(v: String) -> Self {
        BenchValue::Str(v)
    }
}

type Row = Vec<(String, BenchValue)>;

/// Builder for one `BENCH_pr<N>.json` document. See the module docs.
#[derive(Debug)]
pub struct BenchReport {
    pr: u32,
    scalars: Row,
    sections: Vec<(String, Vec<Row>)>,
}

/// Field-by-field builder for one row of a [`BenchReport`] section.
/// Each [`RowBuilder::field`] call returns the builder, so a row is
/// one method chain; dropping it finishes the row.
pub struct RowBuilder<'a> {
    row: &'a mut Row,
}

impl RowBuilder<'_> {
    /// Add one `key: value` field to the row.
    pub fn field(self, key: &str, value: impl Into<BenchValue>) -> Self {
        self.row.push((key.to_string(), value.into()));
        self
    }
}

impl BenchReport {
    /// The schema tag every report carries; bump when the envelope
    /// (not a section's fields) changes shape.
    pub const SCHEMA: &'static str = "mttkrp-bench-v1";

    /// A report for PR number `pr`.
    pub fn new(pr: u32) -> BenchReport {
        BenchReport {
            pr,
            scalars: Vec::new(),
            sections: Vec::new(),
        }
    }

    /// Add (or overwrite) a top-level scalar field.
    pub fn scalar(&mut self, key: &str, value: impl Into<BenchValue>) -> &mut Self {
        let value = value.into();
        match self.scalars.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => self.scalars.push((key.to_string(), value)),
        }
        self
    }

    /// Append a row to `section` (created on first use, emitted in
    /// first-use order) and return its field builder.
    pub fn row(&mut self, section: &str) -> RowBuilder<'_> {
        let idx = match self.sections.iter().position(|(s, _)| s == section) {
            Some(i) => i,
            None => {
                self.sections.push((section.to_string(), Vec::new()));
                self.sections.len() - 1
            }
        };
        let rows = &mut self.sections[idx].1;
        rows.push(Vec::new());
        RowBuilder {
            row: rows.last_mut().expect("row just pushed"),
        }
    }

    /// Render the document.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"schema\": \"{}\",", Self::SCHEMA);
        let _ = write!(s, "  \"pr\": {}", self.pr);
        for (k, v) in &self.scalars {
            s.push_str(",\n");
            let _ = write!(s, "  \"{}\": ", crate::export::escape(k));
            v.write_to(&mut s);
        }
        for (name, rows) in &self.sections {
            s.push_str(",\n");
            let _ = write!(s, "  \"{}\": [", crate::export::escape(name));
            for (i, row) in rows.iter().enumerate() {
                let comma = if i + 1 < rows.len() { "," } else { "" };
                s.push_str("\n    {");
                for (j, (k, v)) in row.iter().enumerate() {
                    if j > 0 {
                        s.push_str(", ");
                    }
                    let _ = write!(s, "\"{}\": ", crate::export::escape(k));
                    v.write_to(&mut s);
                }
                let _ = write!(s, "}}{comma}");
            }
            s.push_str("\n  ]");
        }
        s.push_str("\n}\n");
        s
    }

    /// Write the document to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// The output path a bench should write to: `MTTKRP_BENCH_OUT` if
    /// set, else `default` (conventionally
    /// `<workspace root>/BENCH_pr<N>.json`).
    pub fn out_path(default: &str) -> String {
        std::env::var("MTTKRP_BENCH_OUT").unwrap_or_else(|_| default.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_scalars_sections_and_schema() {
        let mut r = BenchReport::new(7);
        r.scalar("rank", 25u64)
            .scalar("smoke", false)
            .scalar("label", "dense");
        r.row("mttkrp")
            .field("algorithm", "1step")
            .field("seconds", 0.5)
            .field("mode", 2u64);
        r.row("mttkrp").field("algorithm", "fused");
        r.row("acceptance").field("ok", true);
        let s = r.to_json();
        assert!(s.contains("\"schema\": \"mttkrp-bench-v1\""));
        assert!(s.contains("\"pr\": 7"));
        assert!(s.contains("\"rank\": 25"));
        assert!(s.contains("\"label\": \"dense\""));
        assert!(s.contains("\"algorithm\": \"1step\", \"seconds\": 5e-1, \"mode\": 2"));
        assert!(s.contains("\"acceptance\": ["));
        // Balanced braces/brackets (cheap structural validity check;
        // CI parses the real file with a JSON parser).
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut r = BenchReport::new(1);
        r.scalar("bad", f64::NAN);
        assert!(r.to_json().contains("\"bad\": null"));
    }

    #[test]
    fn scalar_overwrites_by_key() {
        let mut r = BenchReport::new(1);
        r.scalar("x", 1u64).scalar("x", 2u64);
        let s = r.to_json();
        assert!(s.contains("\"x\": 2"));
        assert!(!s.contains("\"x\": 1"));
    }
}
