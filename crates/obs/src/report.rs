//! The bench trajectory reporter: a builder for the per-PR
//! `BENCH_pr<N>.json` records.
//!
//! Every PR's acceptance benchmark persists its numbers at the repo
//! root so the performance trajectory is diffable across PRs. Before
//! this crate each bench hand-rolled its JSON; [`BenchReport`] is the
//! shared writer: scalars (`rank`, `smoke`, `host_threads`, …),
//! row-oriented sections (`"mttkrp": [{...}, ...]`), and an
//! `acceptance` section for the pass/fail summary, emitted under the
//! schema tag [`BenchReport::SCHEMA`] (documented in docs/FORMATS.md).
//!
//! [`BenchDiff`] closes the loop: it reads two of those files back
//! (via the in-tree [`crate::json`] parser), matches records by their
//! identity fields (bench section, `dtype`, `tier`, `algorithm`,
//! `mode`, …), computes relative deltas under per-metric tolerance
//! rules, and emits a pass/fail verdict as text and as the
//! [`BenchDiff::SCHEMA`] JSON envelope — the engine behind the
//! `bench-diff` CLI and the CI `perf-gate` leg.
//!
//! ```
//! use mttkrp_obs::BenchReport;
//!
//! let mut r = BenchReport::new(7);
//! r.scalar("rank", 25u64).scalar("smoke", true);
//! r.row("mttkrp")
//!     .field("algorithm", "1step")
//!     .field("seconds", 1.25e-3);
//! let json = r.to_json();
//! assert!(json.contains("\"schema\": \"mttkrp-bench-v1\""));
//! assert!(json.contains("\"pr\": 7"));
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::json::JsonValue;

/// A JSON-serializable bench value.
#[derive(Debug, Clone, PartialEq)]
pub enum BenchValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float, written in exponent form (`null` when non-finite).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl BenchValue {
    fn write_to(&self, s: &mut String) {
        match self {
            BenchValue::U64(v) => {
                let _ = write!(s, "{v}");
            }
            BenchValue::I64(v) => {
                let _ = write!(s, "{v}");
            }
            BenchValue::F64(v) if v.is_finite() => {
                let _ = write!(s, "{v:e}");
            }
            BenchValue::F64(_) => s.push_str("null"),
            BenchValue::Bool(v) => {
                let _ = write!(s, "{v}");
            }
            BenchValue::Str(v) => {
                let _ = write!(s, "\"{}\"", crate::export::escape(v));
            }
        }
    }
}

impl From<u64> for BenchValue {
    fn from(v: u64) -> Self {
        BenchValue::U64(v)
    }
}
impl From<usize> for BenchValue {
    fn from(v: usize) -> Self {
        BenchValue::U64(v as u64)
    }
}
impl From<u32> for BenchValue {
    fn from(v: u32) -> Self {
        BenchValue::U64(u64::from(v))
    }
}
impl From<i64> for BenchValue {
    fn from(v: i64) -> Self {
        BenchValue::I64(v)
    }
}
impl From<f64> for BenchValue {
    fn from(v: f64) -> Self {
        BenchValue::F64(v)
    }
}
impl From<bool> for BenchValue {
    fn from(v: bool) -> Self {
        BenchValue::Bool(v)
    }
}
impl From<&str> for BenchValue {
    fn from(v: &str) -> Self {
        BenchValue::Str(v.to_string())
    }
}
impl From<String> for BenchValue {
    fn from(v: String) -> Self {
        BenchValue::Str(v)
    }
}

type Row = Vec<(String, BenchValue)>;

/// Builder for one `BENCH_pr<N>.json` document. See the module docs.
#[derive(Debug)]
pub struct BenchReport {
    pr: u32,
    scalars: Row,
    sections: Vec<(String, Vec<Row>)>,
}

/// Field-by-field builder for one row of a [`BenchReport`] section.
/// Each [`RowBuilder::field`] call returns the builder, so a row is
/// one method chain; dropping it finishes the row.
pub struct RowBuilder<'a> {
    row: &'a mut Row,
}

impl RowBuilder<'_> {
    /// Add one `key: value` field to the row.
    pub fn field(self, key: &str, value: impl Into<BenchValue>) -> Self {
        self.row.push((key.to_string(), value.into()));
        self
    }
}

impl BenchReport {
    /// The schema tag every report carries; bump when the envelope
    /// (not a section's fields) changes shape.
    pub const SCHEMA: &'static str = "mttkrp-bench-v1";

    /// A report for PR number `pr`.
    pub fn new(pr: u32) -> BenchReport {
        BenchReport {
            pr,
            scalars: Vec::new(),
            sections: Vec::new(),
        }
    }

    /// Add (or overwrite) a top-level scalar field.
    pub fn scalar(&mut self, key: &str, value: impl Into<BenchValue>) -> &mut Self {
        let value = value.into();
        match self.scalars.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => self.scalars.push((key.to_string(), value)),
        }
        self
    }

    /// Append a row to `section` (created on first use, emitted in
    /// first-use order) and return its field builder.
    pub fn row(&mut self, section: &str) -> RowBuilder<'_> {
        let idx = match self.sections.iter().position(|(s, _)| s == section) {
            Some(i) => i,
            None => {
                self.sections.push((section.to_string(), Vec::new()));
                self.sections.len() - 1
            }
        };
        let rows = &mut self.sections[idx].1;
        rows.push(Vec::new());
        RowBuilder {
            row: rows.last_mut().expect("row just pushed"),
        }
    }

    /// Render the document.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"schema\": \"{}\",", Self::SCHEMA);
        let _ = write!(s, "  \"pr\": {}", self.pr);
        for (k, v) in &self.scalars {
            s.push_str(",\n");
            let _ = write!(s, "  \"{}\": ", crate::export::escape(k));
            v.write_to(&mut s);
        }
        for (name, rows) in &self.sections {
            s.push_str(",\n");
            let _ = write!(s, "  \"{}\": [", crate::export::escape(name));
            for (i, row) in rows.iter().enumerate() {
                let comma = if i + 1 < rows.len() { "," } else { "" };
                s.push_str("\n    {");
                for (j, (k, v)) in row.iter().enumerate() {
                    if j > 0 {
                        s.push_str(", ");
                    }
                    let _ = write!(s, "\"{}\": ", crate::export::escape(k));
                    v.write_to(&mut s);
                }
                let _ = write!(s, "}}{comma}");
            }
            s.push_str("\n  ]");
        }
        s.push_str("\n}\n");
        s
    }

    /// Write the document to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// The output path a bench should write to: `MTTKRP_BENCH_OUT` if
    /// set, else `default` (conventionally
    /// `<workspace root>/BENCH_pr<N>.json`).
    pub fn out_path(default: &str) -> String {
        std::env::var("MTTKRP_BENCH_OUT").unwrap_or_else(|_| default.to_string())
    }
}

/// How one metric is judged when two bench reports are diffed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricClass {
    /// Throughput-like: a drop beyond tolerance is a regression.
    HigherIsBetter,
    /// Latency/error-like: a rise beyond tolerance is a regression.
    LowerIsBetter,
    /// Compared and reported, never gated (config, counts, scalars).
    Informational,
}

/// Classify a numeric metric by its (section-qualified) identity and
/// name, returning the class and a tolerance multiplier.
/// Error/residual metrics get a wide multiplier — they are
/// noise-dominated across runs — while throughput and time metrics
/// gate at 1× the base tolerance. Top-level scalars are always
/// informational. (Boolean fields are classified by type during the
/// diff: any flip gates at 0× tolerance.)
pub fn classify_metric(id: &str, name: &str) -> (MetricClass, f64) {
    if id == "scalars" {
        return (MetricClass::Informational, 1.0);
    }
    let n = name.to_ascii_lowercase();
    let has = |p: &str| n.contains(p);
    if has("per_s")
        || has("gflop")
        || has("speedup")
        || has("throughput")
        || has("agreement")
        || n == "fit"
        || has("final_fit")
    {
        (MetricClass::HigherIsBetter, 1.0)
    } else if has("diff") || has("error") || has("resid") {
        (MetricClass::LowerIsBetter, 20.0)
    } else if has("seconds")
        || has("time")
        || has("overhead")
        || n.ends_with("_ns")
        || n.ends_with("_ms")
        || n.ends_with("_us")
    {
        (MetricClass::LowerIsBetter, 1.0)
    } else {
        (MetricClass::Informational, 1.0)
    }
}

/// One matched metric in a [`BenchDiff`].
#[derive(Debug, Clone)]
pub struct DiffEntry {
    /// Record identity: `section[key=value,…]` (plus `#k` on repeats).
    pub id: String,
    /// Metric name within the record.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Candidate value.
    pub candidate: f64,
    /// Signed relative change in percent (clamped to ±1e6 when the
    /// baseline is zero).
    pub delta_pct: f64,
    /// How the metric is judged.
    pub class: MetricClass,
    /// Tolerance multiplier from [`classify_metric`].
    pub tolerance_mult: f64,
}

impl DiffEntry {
    /// Whether this metric participates in the gate at all.
    pub fn gated(&self) -> bool {
        !matches!(self.class, MetricClass::Informational)
    }

    /// Regression test at base tolerance `tolerance_pct` (scaled by
    /// the metric's multiplier). Lower-is-better metrics whose
    /// candidate value is still below an absolute floor of 1e-9 never
    /// regress — error/residual metrics at the 1e-14 level fluctuate
    /// by orders of magnitude without meaning anything.
    pub fn regressed(&self, tolerance_pct: f64) -> bool {
        let tol = tolerance_pct * self.tolerance_mult;
        match self.class {
            MetricClass::LowerIsBetter => self.candidate.abs() > 1e-9 && self.delta_pct > tol,
            MetricClass::HigherIsBetter => self.delta_pct < -tol,
            MetricClass::Informational => false,
        }
    }

    /// The symmetric improvement test.
    pub fn improved(&self, tolerance_pct: f64) -> bool {
        let tol = tolerance_pct * self.tolerance_mult;
        match self.class {
            MetricClass::LowerIsBetter => self.delta_pct < -tol,
            MetricClass::HigherIsBetter => self.delta_pct > tol,
            MetricClass::Informational => false,
        }
    }
}

/// Flattened metric map: `(record identity, metric name)` → `(value,
/// was a JSON bool)`.
type FlatMetrics = BTreeMap<(String, String), (f64, bool)>;

fn render_identity_value(v: &JsonValue) -> Option<String> {
    match v {
        JsonValue::Str(s) => Some(s.clone()),
        JsonValue::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                Some(format!("{}", *n as i64))
            } else {
                Some(format!("{n}"))
            }
        }
        JsonValue::Arr(items) => {
            let parts: Option<Vec<String>> = items.iter().map(render_identity_value).collect();
            parts.map(|p| p.join("x"))
        }
        _ => None,
    }
}

/// Numeric fields with these names describe *which* record a row is
/// (problem shape / configuration), not a measurement — they join the
/// identity key instead of being diffed.
const NUMERIC_IDENTITY: &[&str] = &[
    "mode",
    "n",
    "threads",
    "rank",
    "c",
    "iters",
    "samples",
    "nnz",
    "order",
    "size",
    "density",
    "budget_mb",
    "tiles",
    "reps",
    "warmup",
    "entries",
    "level_idx",
];

fn flatten_row(
    section: &str,
    row: &JsonValue,
    ids_seen: &mut BTreeMap<String, usize>,
    out: &mut FlatMetrics,
) {
    let Some(members) = row.as_obj() else {
        return;
    };
    let mut ident = Vec::new();
    let mut metrics: Vec<(String, (f64, bool))> = Vec::new();
    for (k, v) in members {
        match v {
            JsonValue::Num(n) if !NUMERIC_IDENTITY.contains(&k.as_str()) => {
                metrics.push((k.clone(), (*n, false)));
            }
            JsonValue::Bool(b) => metrics.push((k.clone(), (if *b { 1.0 } else { 0.0 }, true))),
            _ => {
                if let Some(r) = render_identity_value(v) {
                    ident.push(format!("{k}={r}"));
                }
            }
        }
    }
    let mut id = if ident.is_empty() {
        section.to_string()
    } else {
        format!("{section}[{}]", ident.join(","))
    };
    let seen = ids_seen.entry(id.clone()).or_insert(0);
    *seen += 1;
    if *seen > 1 {
        id = format!("{id}#{seen}");
    }
    for (m, v) in metrics {
        out.insert((id.clone(), m), v);
    }
}

fn flatten(doc: &JsonValue) -> Result<FlatMetrics, String> {
    let members = doc.as_obj().ok_or("bench report is not a JSON object")?;
    match doc.get("schema").and_then(JsonValue::as_str) {
        Some(s) if s == BenchReport::SCHEMA => {}
        other => {
            return Err(format!(
                "unexpected schema {other:?} (want {:?})",
                BenchReport::SCHEMA
            ))
        }
    }
    let mut out = FlatMetrics::new();
    let mut ids_seen = BTreeMap::new();
    for (k, v) in members {
        if k == "schema" {
            continue;
        }
        match v {
            JsonValue::Arr(rows) => {
                for row in rows {
                    flatten_row(k, row, &mut ids_seen, &mut out);
                }
            }
            JsonValue::Obj(_) => flatten_row(k, v, &mut ids_seen, &mut out),
            JsonValue::Num(n) => {
                out.insert(("scalars".to_string(), k.clone()), (*n, false));
            }
            JsonValue::Bool(b) => {
                out.insert(
                    ("scalars".to_string(), k.clone()),
                    (if *b { 1.0 } else { 0.0 }, true),
                );
            }
            _ => {}
        }
    }
    Ok(out)
}

/// The diff of two `mttkrp-bench-v1` reports. Build with
/// [`BenchDiff::load`] or [`BenchDiff::from_json`], then render the
/// verdict with [`BenchDiff::text`] / [`BenchDiff::to_json`] (or gate
/// on [`BenchDiff::pass`]). See the module docs for the matching and
/// tolerance rules.
#[derive(Debug)]
pub struct BenchDiff {
    baseline_label: String,
    candidate_label: String,
    entries: Vec<DiffEntry>,
    baseline_only: Vec<String>,
    candidate_only: Vec<String>,
}

impl BenchDiff {
    /// Schema tag of the JSON verdict envelope (docs/FORMATS.md).
    pub const SCHEMA: &'static str = "mttkrp-benchdiff-v1";

    /// The default gate: >15% adverse move on a gated metric fails.
    pub const DEFAULT_TOLERANCE_PCT: f64 = 15.0;

    /// Diff two already-read documents; labels are used in rendering.
    pub fn from_json(
        baseline_label: &str,
        baseline: &str,
        candidate_label: &str,
        candidate: &str,
    ) -> Result<BenchDiff, String> {
        let base =
            flatten(&JsonValue::parse(baseline).map_err(|e| format!("{baseline_label}: {e}"))?)
                .map_err(|e| format!("{baseline_label}: {e}"))?;
        let cand =
            flatten(&JsonValue::parse(candidate).map_err(|e| format!("{candidate_label}: {e}"))?)
                .map_err(|e| format!("{candidate_label}: {e}"))?;
        let mut entries = Vec::new();
        let mut baseline_only = Vec::new();
        let mut candidate_only = Vec::new();
        for ((id, metric), (b, b_bool)) in &base {
            match cand.get(&(id.clone(), metric.clone())) {
                Some((c, c_bool)) => {
                    let delta_pct = if *b != 0.0 {
                        100.0 * (c - b) / b.abs()
                    } else if c == b {
                        0.0
                    } else {
                        1e6_f64.copysign(c - b)
                    };
                    // Booleans gate at zero tolerance (any flip to
                    // false fails); everything else classifies by
                    // name. Top-level scalars stay informational.
                    let (class, tolerance_mult) = if id == "scalars" {
                        (MetricClass::Informational, 1.0)
                    } else if *b_bool || *c_bool {
                        (MetricClass::HigherIsBetter, 0.0)
                    } else {
                        classify_metric(id, metric)
                    };
                    entries.push(DiffEntry {
                        id: id.clone(),
                        metric: metric.clone(),
                        baseline: *b,
                        candidate: *c,
                        delta_pct,
                        class,
                        tolerance_mult,
                    });
                }
                None => baseline_only.push(format!("{id}.{metric}")),
            }
        }
        for (id, metric) in cand.keys() {
            if !base.contains_key(&(id.clone(), metric.clone())) {
                candidate_only.push(format!("{id}.{metric}"));
            }
        }
        Ok(BenchDiff {
            baseline_label: baseline_label.to_string(),
            candidate_label: candidate_label.to_string(),
            entries,
            baseline_only,
            candidate_only,
        })
    }

    /// Read and diff two report files.
    pub fn load(baseline_path: &str, candidate_path: &str) -> Result<BenchDiff, String> {
        let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"));
        BenchDiff::from_json(
            baseline_path,
            &read(baseline_path)?,
            candidate_path,
            &read(candidate_path)?,
        )
    }

    /// Every matched metric, in identity order.
    pub fn entries(&self) -> &[DiffEntry] {
        &self.entries
    }

    /// Metric keys present only in the baseline.
    pub fn baseline_only(&self) -> &[String] {
        &self.baseline_only
    }

    /// Metric keys present only in the candidate.
    pub fn candidate_only(&self) -> &[String] {
        &self.candidate_only
    }

    /// The gated metrics that regressed beyond `tolerance_pct`.
    pub fn regressions(&self, tolerance_pct: f64) -> Vec<&DiffEntry> {
        self.entries
            .iter()
            .filter(|e| e.regressed(tolerance_pct))
            .collect()
    }

    /// `true` when no gated metric regressed beyond `tolerance_pct`.
    pub fn pass(&self, tolerance_pct: f64) -> bool {
        self.regressions(tolerance_pct).is_empty()
    }

    /// The human-readable verdict.
    pub fn text(&self, tolerance_pct: f64) -> String {
        let gated = self.entries.iter().filter(|e| e.gated()).count();
        let regressions = self.regressions(tolerance_pct);
        let improved = self
            .entries
            .iter()
            .filter(|e| e.improved(tolerance_pct))
            .count();
        let mut s = String::new();
        let _ = writeln!(
            s,
            "bench-diff: {} -> {}",
            self.baseline_label, self.candidate_label
        );
        let _ = writeln!(
            s,
            "  {} metrics matched ({} gated, tolerance {tolerance_pct}%): {} regressions, {} improvements",
            self.entries.len(),
            gated,
            regressions.len(),
            improved
        );
        for e in &regressions {
            let _ = writeln!(
                s,
                "  REGRESSION {}.{}: {:.4e} -> {:.4e} ({:+.1}%, tol {}%)",
                e.id,
                e.metric,
                e.baseline,
                e.candidate,
                e.delta_pct,
                tolerance_pct * e.tolerance_mult
            );
        }
        if !self.baseline_only.is_empty() {
            let _ = writeln!(s, "  baseline-only keys: {}", self.baseline_only.len());
        }
        if !self.candidate_only.is_empty() {
            let _ = writeln!(s, "  candidate-only keys: {}", self.candidate_only.len());
        }
        let _ = writeln!(
            s,
            "verdict: {}",
            if regressions.is_empty() {
                "PASS"
            } else {
                "FAIL"
            }
        );
        s
    }

    /// The `mttkrp-benchdiff-v1` JSON verdict envelope.
    pub fn to_json(&self, tolerance_pct: f64) -> String {
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v:e}")
            } else {
                "null".to_string()
            }
        }
        let gated = self.entries.iter().filter(|e| e.gated()).count();
        let regressions = self.regressions(tolerance_pct);
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"schema\": \"{}\",", Self::SCHEMA);
        let _ = writeln!(
            s,
            "  \"baseline\": \"{}\",",
            crate::export::escape(&self.baseline_label)
        );
        let _ = writeln!(
            s,
            "  \"candidate\": \"{}\",",
            crate::export::escape(&self.candidate_label)
        );
        let _ = writeln!(s, "  \"tolerance_pct\": {},", num(tolerance_pct));
        let _ = writeln!(s, "  \"pass\": {},", regressions.is_empty());
        let _ = writeln!(s, "  \"compared\": {},", self.entries.len());
        let _ = writeln!(s, "  \"gated\": {gated},");
        s.push_str("  \"regressions\": [");
        for (i, e) in regressions.iter().enumerate() {
            let comma = if i + 1 < regressions.len() { "," } else { "" };
            let _ = write!(
                s,
                "\n    {{\"key\": \"{}.{}\", \"baseline\": {}, \"candidate\": {}, \"delta_pct\": {}}}{comma}",
                crate::export::escape(&e.id),
                crate::export::escape(&e.metric),
                num(e.baseline),
                num(e.candidate),
                num(e.delta_pct)
            );
        }
        s.push_str("\n  ],\n");
        for (key, list) in [
            ("baseline_only", &self.baseline_only),
            ("candidate_only", &self.candidate_only),
        ] {
            let _ = write!(s, "  \"{key}\": [");
            for (i, k) in list.iter().enumerate() {
                let comma = if i + 1 < list.len() { "," } else { "" };
                let _ = write!(s, "\"{}\"{comma}", crate::export::escape(k));
            }
            s.push_str(if key == "baseline_only" {
                "],\n"
            } else {
                "]\n"
            });
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_scalars_sections_and_schema() {
        let mut r = BenchReport::new(7);
        r.scalar("rank", 25u64)
            .scalar("smoke", false)
            .scalar("label", "dense");
        r.row("mttkrp")
            .field("algorithm", "1step")
            .field("seconds", 0.5)
            .field("mode", 2u64);
        r.row("mttkrp").field("algorithm", "fused");
        r.row("acceptance").field("ok", true);
        let s = r.to_json();
        assert!(s.contains("\"schema\": \"mttkrp-bench-v1\""));
        assert!(s.contains("\"pr\": 7"));
        assert!(s.contains("\"rank\": 25"));
        assert!(s.contains("\"label\": \"dense\""));
        assert!(s.contains("\"algorithm\": \"1step\", \"seconds\": 5e-1, \"mode\": 2"));
        assert!(s.contains("\"acceptance\": ["));
        // Balanced braces/brackets (cheap structural validity check;
        // CI parses the real file with a JSON parser).
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut r = BenchReport::new(1);
        r.scalar("bad", f64::NAN);
        assert!(r.to_json().contains("\"bad\": null"));
    }

    #[test]
    fn scalar_overwrites_by_key() {
        let mut r = BenchReport::new(1);
        r.scalar("x", 1u64).scalar("x", 2u64);
        let s = r.to_json();
        assert!(s.contains("\"x\": 2"));
        assert!(!s.contains("\"x\": 1"));
    }

    // A miniature report exercising every record shape BenchDiff must
    // handle across the committed files: top-level scalars, rows with
    // string/numeric identity, a `dims` array identity (BENCH_pr6
    // style), and an `acceptance` object (also pr6 style).
    fn mini_report(gb: f64, seconds: f64, diff: f64, ok: bool) -> String {
        format!(
            r#"{{"schema": "mttkrp-bench-v1", "pr": 6, "threads": 8,
                "mttkrp": [
                  {{"dtype": "f64", "tier": "avx512", "algorithm": "1step", "mode": 0, "dims": [256, 64, 48], "gb_effective_per_s": {gb}, "seconds": {seconds}}},
                  {{"dtype": "f32", "tier": "avx512", "algorithm": "fused", "mode": 1, "dims": [256, 64, 48], "gb_effective_per_s": 20.0, "seconds": 0.5}}
                ],
                "agreement": [{{"algorithm": "fused", "max_rel_diff": {diff}}}],
                "acceptance": {{"fused_agrees": {ok}, "speedup": 1.4}}}}"#
        )
    }

    #[test]
    fn identity_diff_passes() {
        let a = mini_report(12.5, 1.0, 1e-14, true);
        let d = BenchDiff::from_json("base", &a, "cand", &a).unwrap();
        assert!(d.baseline_only().is_empty() && d.candidate_only().is_empty());
        assert!(d.pass(BenchDiff::DEFAULT_TOLERANCE_PCT));
        assert!(d.entries().iter().any(|e| e.id.contains("dims=256x64x48")));
        assert!(d.text(15.0).contains("verdict: PASS"));
    }

    #[test]
    fn throughput_drop_beyond_tolerance_fails() {
        let base = mini_report(12.5, 1.0, 1e-14, true);
        let cand = mini_report(10.0, 1.0, 1e-14, true); // -20%
        let d = BenchDiff::from_json("base", &base, "cand", &cand).unwrap();
        assert!(!d.pass(15.0));
        let regs = d.regressions(15.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "gb_effective_per_s");
        assert!(regs[0].delta_pct < -19.0);
        assert!(d.text(15.0).contains("verdict: FAIL"));
        // The same drop passes at a 25% gate.
        assert!(d.pass(25.0));
    }

    #[test]
    fn time_rise_fails_and_noisy_error_metrics_get_slack() {
        let base = mini_report(12.5, 1.0, 1e-14, true);
        // seconds +30% (regression); the error metric grows 5x but
        // stays under the 1e-9 absolute floor, so it never gates.
        let cand = mini_report(12.5, 1.3, 5e-14, true);
        let d = BenchDiff::from_json("base", &base, "cand", &cand).unwrap();
        let regs = d.regressions(15.0);
        assert_eq!(regs.len(), 1, "{:?}", regs);
        assert_eq!(regs[0].metric, "seconds");
    }

    #[test]
    fn acceptance_flag_flip_fails_at_zero_tolerance() {
        let base = mini_report(12.5, 1.0, 1e-14, true);
        let cand = mini_report(12.5, 1.0, 1e-14, false);
        let d = BenchDiff::from_json("base", &base, "cand", &cand).unwrap();
        let regs = d.regressions(15.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "fused_agrees");
    }

    #[test]
    fn top_level_scalars_are_informational() {
        let base = mini_report(12.5, 1.0, 1e-14, true).replace(
            "\"threads\": 8",
            "\"threads\": 8, \"elapsed_seconds\": 100.0",
        );
        let cand = mini_report(12.5, 1.0, 1e-14, true).replace(
            "\"threads\": 8",
            "\"threads\": 8, \"elapsed_seconds\": 900.0",
        );
        let d = BenchDiff::from_json("base", &base, "cand", &cand).unwrap();
        assert!(d.pass(15.0), "{}", d.text(15.0));
    }

    #[test]
    fn unmatched_records_are_reported_not_fatal() {
        let base = mini_report(12.5, 1.0, 1e-14, true);
        let cand = base.replace("\"mode\": 1", "\"mode\": 2");
        let d = BenchDiff::from_json("base", &base, "cand", &cand).unwrap();
        assert_eq!(d.baseline_only().len(), 2); // gb + seconds of the moved row
        assert_eq!(d.candidate_only().len(), 2);
        assert!(d.pass(15.0));
    }

    #[test]
    fn verdict_json_is_valid_and_self_describing() {
        let base = mini_report(12.5, 1.0, 1e-14, true);
        let cand = mini_report(9.0, 1.0, 1e-14, true);
        let d = BenchDiff::from_json("base", &base, "cand", &cand).unwrap();
        let j = d.to_json(15.0);
        let doc = crate::json::JsonValue::parse(&j).expect("verdict JSON must parse");
        assert_eq!(
            doc.get("schema").unwrap().as_str(),
            Some("mttkrp-benchdiff-v1")
        );
        assert_eq!(doc.get("pass").unwrap().as_bool(), Some(false));
        assert_eq!(doc.get("regressions").unwrap().as_arr().unwrap().len(), 1);
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let err = BenchDiff::from_json(
            "a",
            r#"{"schema": "other-v1"}"#,
            "b",
            r#"{"schema": "other-v1"}"#,
        );
        assert!(err.is_err());
    }
}
