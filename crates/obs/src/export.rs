//! Trace exporters: chrome-trace JSON and the compact self-describing
//! format.
//!
//! * [`chrome_trace`] emits the Trace Event Format consumed by
//!   Perfetto / `chrome://tracing`: one `"ph": "X"` (complete) event
//!   per span with microsecond `ts`/`dur`, plus `"ph": "M"` metadata
//!   events naming each thread. Nesting is implied by containment, so
//!   the per-thread well-nestedness of the recorder renders directly as
//!   stacked slices.
//! * [`compact_trace`] emits `mttkrp-trace-v1`: nanosecond-precision
//!   records with explicit `depth`, smaller and easier to post-process
//!   than the chrome format.
//!
//! Both formats order spans as drained (grouped by thread, closing
//! order within a thread) and carry the recording crate as the span
//! category.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::trace::{dropped_spans, take_spans, thread_names, SpanRecord};

/// Escape a string for a JSON string literal.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render spans as a chrome-trace (Trace Event Format) JSON document.
///
/// Thread-name metadata covers every thread that has recorded a span,
/// so the prefetch/compute threads are labeled even when `spans` was
/// filtered. Timestamps are microseconds from the process trace epoch,
/// with nanosecond precision kept in the fraction.
pub fn chrome_trace(spans: &[SpanRecord]) -> String {
    let mut s = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    for (tid, name) in thread_names() {
        if !first {
            s.push_str(",\n");
        }
        first = false;
        let _ = write!(
            s,
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
            escape(&name)
        );
    }
    // Buffer-overflow visibility: a metadata event viewers surface
    // next to the thread names (the count is also in `otherData`).
    if !first {
        s.push_str(",\n");
    }
    first = false;
    let _ = write!(
        s,
        "{{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"dropped_spans\",\"args\":{{\"count\":{}}}}}",
        dropped_spans()
    );
    for r in spans {
        if !first {
            s.push_str(",\n");
        }
        first = false;
        let _ = write!(
            s,
            "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"name\":\"{}\",\"cat\":\"{}\",\"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"depth\":{}",
            r.tid,
            escape(r.name),
            escape(r.cat),
            r.start_ns as f64 / 1e3,
            r.dur_ns as f64 / 1e3,
            r.depth,
        );
        if !r.arg_key.is_empty() {
            let _ = write!(s, ",\"{}\":{}", escape(r.arg_key), r.arg_val);
        }
        s.push_str("}}");
    }
    let _ = write!(
        s,
        "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"dropped_spans\":{}}}}}\n",
        dropped_spans()
    );
    s
}

/// Render spans in the compact self-describing `mttkrp-trace-v1`
/// format (nanosecond timestamps, explicit depth).
pub fn compact_trace(spans: &[SpanRecord]) -> String {
    let mut s = String::from("{\n  \"schema\": \"mttkrp-trace-v1\",\n");
    let _ = writeln!(s, "  \"clock\": \"ns since first span\",");
    let _ = writeln!(s, "  \"dropped_spans\": {},", dropped_spans());
    s.push_str("  \"threads\": [");
    let names = thread_names();
    for (i, (tid, name)) in names.iter().enumerate() {
        let comma = if i + 1 < names.len() { "," } else { "" };
        let _ = write!(
            s,
            "\n    {{\"tid\": {tid}, \"name\": \"{}\"}}{comma}",
            escape(name)
        );
    }
    s.push_str("\n  ],\n  \"spans\": [");
    for (i, r) in spans.iter().enumerate() {
        let comma = if i + 1 < spans.len() { "," } else { "" };
        let _ = write!(
            s,
            "\n    {{\"name\": \"{}\", \"cat\": \"{}\", \"tid\": {}, \"depth\": {}, \"start_ns\": {}, \"dur_ns\": {}",
            escape(r.name),
            escape(r.cat),
            r.tid,
            r.depth,
            r.start_ns,
            r.dur_ns,
        );
        if !r.arg_key.is_empty() {
            let _ = write!(s, ", \"{}\": {}", escape(r.arg_key), r.arg_val);
        }
        let _ = write!(s, "}}{comma}");
    }
    s.push_str("\n  ]\n}\n");
    s
}

fn warn_if_spans_dropped() {
    let dropped = dropped_spans();
    if dropped > 0 {
        eprintln!(
            "warning: {dropped} spans dropped to buffer overflow; the trace is incomplete \
             (lower the trace level or shorten the traced region)"
        );
    }
}

/// Drain all buffered spans and write them to `path` as chrome-trace
/// JSON; returns the number of spans written. Warns on stderr when
/// spans were dropped to buffer overflow.
pub fn write_chrome_trace(path: impl AsRef<Path>) -> io::Result<usize> {
    let spans = take_spans();
    warn_if_spans_dropped();
    std::fs::write(path, chrome_trace(&spans))?;
    Ok(spans.len())
}

/// Drain all buffered spans and write them to `path` in the compact
/// format; returns the number of spans written. Warns on stderr when
/// spans were dropped to buffer overflow.
pub fn write_compact_trace(path: impl AsRef<Path>) -> io::Result<usize> {
    let spans = take_spans();
    warn_if_spans_dropped();
    std::fs::write(path, compact_trace(&spans))?;
    Ok(spans.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &'static str, start: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            name,
            cat: "mttkrp-obs",
            arg_key: "mode",
            arg_val: 2,
            tid: 0,
            depth: 1,
            start_ns: start,
            dur_ns: dur,
        }
    }

    #[test]
    fn chrome_trace_has_events_and_metadata() {
        let s = chrome_trace(&[rec("gemm", 1500, 2500)]);
        assert!(s.starts_with("{\"traceEvents\":["));
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("\"name\":\"gemm\""));
        assert!(s.contains("\"cat\":\"mttkrp-obs\""));
        assert!(s.contains("\"ts\":1.500"), "µs with ns fraction: {s}");
        assert!(s.contains("\"dur\":2.500"));
        assert!(s.contains("\"mode\":2"));
        assert!(s.contains("\"dropped_spans\":"));
    }

    #[test]
    fn compact_trace_is_self_describing() {
        let s = compact_trace(&[rec("krp", 10, 20)]);
        assert!(s.contains("\"schema\": \"mttkrp-trace-v1\""));
        assert!(s.contains("\"start_ns\": 10"));
        assert!(s.contains("\"dur_ns\": 20"));
        assert!(s.contains("\"depth\": 1"));
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn empty_span_list_is_valid() {
        let c = chrome_trace(&[]);
        assert!(c.contains("\"traceEvents\":["));
        let k = compact_trace(&[]);
        assert!(k.contains("\"spans\": [\n  ]"), "got: {k}");
    }

    use crate::json::JsonValue;

    fn chrome_x_events(doc: &JsonValue) -> Vec<&JsonValue> {
        doc.get("traceEvents")
            .and_then(JsonValue::as_arr)
            .expect("traceEvents array")
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
            .collect()
    }

    #[test]
    fn zero_duration_spans_render_as_valid_complete_events() {
        let doc = JsonValue::parse(&chrome_trace(&[rec("instant", 1500, 0)]))
            .expect("chrome trace with a zero-duration span must parse");
        let events = chrome_x_events(&doc);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("dur").and_then(JsonValue::as_f64), Some(0.0));
        assert_eq!(events[0].get("ts").and_then(JsonValue::as_f64), Some(1.5));
    }

    #[test]
    fn hostile_span_names_are_escaped_in_both_exporters() {
        // Quotes, backslashes, and a control character in the span
        // name, category, and arg key.
        let mut r = rec("he said \"hi\\there\"\u{1}", 10, 20);
        r.cat = "cat\"\\\n";
        r.arg_key = "key\twith\"tab";
        let chrome =
            JsonValue::parse(&chrome_trace(&[r.clone()])).expect("escaped chrome trace must parse");
        let ev = chrome_x_events(&chrome)[0];
        assert_eq!(
            ev.get("name").and_then(JsonValue::as_str),
            Some("he said \"hi\\there\"\u{1}"),
            "span name must round-trip through escaping"
        );
        assert_eq!(ev.get("cat").and_then(JsonValue::as_str), Some("cat\"\\\n"));
        assert_eq!(
            ev.get("args")
                .unwrap()
                .get("key\twith\"tab")
                .and_then(JsonValue::as_f64),
            Some(2.0)
        );
        let compact =
            JsonValue::parse(&compact_trace(&[r])).expect("escaped compact trace must parse");
        let span = &compact.get("spans").and_then(JsonValue::as_arr).unwrap()[0];
        assert_eq!(
            span.get("name").and_then(JsonValue::as_str),
            Some("he said \"hi\\there\"\u{1}")
        );
    }

    #[test]
    fn draining_an_empty_recorder_yields_a_valid_empty_document() {
        // With tracing off nothing records, so a drain is empty; the
        // resulting document must still be well-formed with zero
        // complete events and the dropped_spans metadata present.
        // (Rendered via the same pure functions `write_*_trace` uses on
        // the drained buffer.)
        let doc = JsonValue::parse(&chrome_trace(&[])).expect("empty chrome trace must parse");
        assert_eq!(chrome_x_events(&doc).len(), 0);
        let meta_dropped = doc
            .get("traceEvents")
            .and_then(JsonValue::as_arr)
            .unwrap()
            .iter()
            .find(|e| e.get("name").and_then(JsonValue::as_str) == Some("dropped_spans"))
            .expect("dropped_spans metadata event");
        assert_eq!(
            meta_dropped
                .get("args")
                .unwrap()
                .get("count")
                .and_then(JsonValue::as_f64),
            Some(dropped_spans() as f64)
        );
        assert!(
            doc.get("otherData").unwrap().get("dropped_spans").is_some(),
            "footer keeps the count too"
        );
        let compact =
            JsonValue::parse(&compact_trace(&[])).expect("empty compact trace must parse");
        assert_eq!(
            compact.get("schema").and_then(JsonValue::as_str),
            Some("mttkrp-trace-v1")
        );
        assert_eq!(
            compact
                .get("spans")
                .and_then(JsonValue::as_arr)
                .unwrap()
                .len(),
            0
        );
        assert!(compact.get("dropped_spans").is_some());
    }
}
