//! Process-wide metrics registry: named counters, gauges, and
//! log-linear histograms.
//!
//! Metric handles are `&'static` — interned once in [`Registry`] and
//! leaked — so hot paths cache a handle (the [`counter!`](crate::counter),
//! [`gauge!`](crate::gauge), [`histogram!`](crate::histogram) macros do
//! this with a per-site `OnceLock`) and the record path is a bare
//! relaxed atomic op: **no allocation, no lock, no lookup**.
//!
//! Naming convention (`<crate>.<subsystem>_<what>[.<tier>]`, all
//! snake-case):
//!
//! * `core.plans_built`, `core.choice_records`, `core.choice_agree`
//! * `blas.gemm_bytes.<tier>`, `blas.gemm_calls.<tier>`
//! * `ooc.resident_tile_bytes` (gauge), `ooc.io_wait_ns`,
//!   `ooc.tiles_read`, `ooc.tile_wait_ns` (histogram)
//!
//! Structural metrics (gauge registrations, per-execution counters) are
//! recorded unconditionally — they are off the per-element hot paths
//! and tests depend on them. Per-kernel-call sites additionally gate on
//! [`metrics_enabled`] (`MTTKRP_METRICS=1` or `--metrics`), which like
//! the trace gate costs one relaxed load when disabled.
//!
//! ## Epoch-based peak reset
//!
//! [`Gauge`] packs a 16-bit reset epoch next to its 48-bit peak in one
//! atomic word. `reset_peak` CAS-publishes `(epoch+1, current value)`,
//! and every concurrent peak update CAS-retries against the *current*
//! word — so a racing update can neither resurrect a pre-reset peak nor
//! be lost by the reset's store, the race the old
//! `ooc::metrics::reset_peak_resident_tile_bytes` (load-then-store)
//! had.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

const ENABLED_UNINIT: u8 = u8::MAX;
static ENABLED: AtomicU8 = AtomicU8::new(ENABLED_UNINIT);

/// Whether hot-path metric sites should record. First call resolves
/// `MTTKRP_METRICS` (`1`/`on`/`true` enable); afterwards one relaxed
/// atomic load.
#[inline]
pub fn metrics_enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        _ => init_enabled(),
    }
}

#[cold]
fn init_enabled() -> bool {
    let on = matches!(
        std::env::var("MTTKRP_METRICS").ok().as_deref(),
        Some("1") | Some("on") | Some("true")
    );
    ENABLED.store(u8::from(on), Ordering::Relaxed);
    on
}

/// Force hot-path metric recording on or off (CLIs use this for
/// `--metrics`), overriding `MTTKRP_METRICS`.
pub fn set_metrics_enabled(on: bool) {
    ENABLED.store(u8::from(on), Ordering::Relaxed);
}

/// A monotone counter.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Peak payload bits of the packed `(epoch, peak)` gauge word.
const GAUGE_PEAK_BITS: u32 = 48;
/// Peak values saturate at 2^48 − 1 (≈ 256 TB when counting bytes).
const GAUGE_PEAK_MAX: u64 = (1 << GAUGE_PEAK_BITS) - 1;

fn clamp_peak(v: i64) -> u64 {
    v.clamp(0, GAUGE_PEAK_MAX as i64) as u64
}

/// An up/down gauge with a resettable high-water mark.
///
/// The peak is tracked per *reset epoch* (see the module docs); it
/// saturates at 2^48 − 1 and floors at 0 (a negative current value
/// records a peak of 0).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
    /// `epoch << 48 | peak`, updated only by CAS so resets and raises
    /// serialize correctly.
    peak: AtomicU64,
}

impl Gauge {
    /// Add `delta` (may be negative); returns the new value.
    #[inline]
    pub fn add(&self, delta: i64) -> i64 {
        let now = self.value.fetch_add(delta, Ordering::Relaxed) + delta;
        if delta > 0 {
            self.raise_peak(now);
        }
        now
    }

    /// Subtract `delta`; returns the new value.
    #[inline]
    pub fn sub(&self, delta: i64) -> i64 {
        self.add(-delta)
    }

    /// Set the value outright (also raises the peak).
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
        self.raise_peak(v);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// High-water mark since the last [`Gauge::reset_peak`].
    pub fn peak(&self) -> i64 {
        (self.peak.load(Ordering::Relaxed) & GAUGE_PEAK_MAX) as i64
    }

    /// The current reset epoch (increments on every reset, wraps at
    /// 2^16). A reader holding `(epoch, peak)` can tell whether a peak
    /// belongs to its measurement window.
    pub fn peak_epoch(&self) -> u64 {
        self.peak.load(Ordering::Relaxed) >> GAUGE_PEAK_BITS
    }

    /// Reset the peak to the current value, starting a new epoch;
    /// returns the new epoch. Concurrent updates CAS-retry against the
    /// new word, so none are lost and none resurrect the old peak.
    pub fn reset_peak(&self) -> u64 {
        loop {
            let cur = self.peak.load(Ordering::Relaxed);
            let epoch = ((cur >> GAUGE_PEAK_BITS) + 1) & 0xFFFF;
            let next = (epoch << GAUGE_PEAK_BITS) | clamp_peak(self.value());
            if self
                .peak
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return epoch;
            }
        }
    }

    fn raise_peak(&self, now: i64) {
        let now = clamp_peak(now);
        loop {
            let cur = self.peak.load(Ordering::Relaxed);
            if (cur & GAUGE_PEAK_MAX) >= now {
                return;
            }
            let next = (cur & !GAUGE_PEAK_MAX) | now;
            if self
                .peak
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
        }
    }
}

/// Bucket count of [`Histogram`]: values 0–3 get exact buckets, every
/// larger power-of-two octave is split into 4 linear sub-buckets
/// (log-linear, ≤ 25% relative bucket width) up to `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 252;

/// A log-linear histogram of `u64` samples (typically nanoseconds or
/// bytes). Recording is a handful of relaxed atomic adds — no
/// allocation, no lock.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The bucket a value lands in.
fn bucket_index(v: u64) -> usize {
    if v < 4 {
        v as usize
    } else {
        let top = 63 - v.leading_zeros() as usize; // >= 2
        let sub = ((v >> (top - 2)) & 3) as usize;
        (top - 1) * 4 + sub
    }
}

/// Smallest value mapping to bucket `idx` (the quantile estimates
/// report this lower bound).
pub fn bucket_lower_bound(idx: usize) -> u64 {
    if idx < 4 {
        idx as u64
    } else {
        let top = idx / 4 + 1;
        let sub = (idx % 4) as u64;
        (1u64 << (top - 2)) * (4 + sub)
    }
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`): the lower bound of the
    /// bucket where the cumulative count crosses `q · count`. Within
    /// 25% of the true value by bucket construction. Returns 0 for an
    /// empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_lower_bound(i);
            }
        }
        self.max()
    }
}

enum Slot {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

impl Slot {
    fn kind(&self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) => "gauge",
            Slot::Histogram(_) => "histogram",
        }
    }
}

/// The process-wide metric registry — see [`registry`].
///
/// Lock poisoning is recovered from: the only panic that can happen
/// under the lock is the kind-mismatch panic below, which leaves the
/// map consistent.
#[derive(Default)]
pub struct Registry {
    slots: Mutex<BTreeMap<String, Slot>>,
}

impl Registry {
    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as another kind.
    pub fn counter(&self, name: &str) -> &'static Counter {
        let mut slots = self
            .slots
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let slot = slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Counter(Box::leak(Box::default())));
        match slot {
            Slot::Counter(c) => c,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// The gauge named `name`, created on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as another kind.
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        let mut slots = self
            .slots
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let slot = slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Gauge(Box::leak(Box::default())));
        match slot {
            Slot::Gauge(g) => g,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// The histogram named `name`, created on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as another kind.
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        let mut slots = self
            .slots
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let slot = slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Histogram(Box::leak(Box::default())));
        match slot {
            Slot::Histogram(h) => h,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Registered metric names, sorted.
    pub fn names(&self) -> Vec<String> {
        let slots = self
            .slots
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        slots.keys().cloned().collect()
    }

    /// One line per metric, sorted by name — the `--metrics` dump.
    pub fn text_dump(&self) -> String {
        let slots = self
            .slots
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut s = String::new();
        for (name, slot) in slots.iter() {
            match slot {
                Slot::Counter(c) => {
                    let _ = writeln!(s, "{name} counter {}", c.value());
                }
                Slot::Gauge(g) => {
                    let _ = writeln!(
                        s,
                        "{name} gauge value={} peak={} epoch={}",
                        g.value(),
                        g.peak(),
                        g.peak_epoch()
                    );
                }
                Slot::Histogram(h) => {
                    let _ = writeln!(
                        s,
                        "{name} histogram count={} sum={} p50={} p90={} p99={} max={}",
                        h.count(),
                        h.sum(),
                        h.quantile(0.5),
                        h.quantile(0.9),
                        h.quantile(0.99),
                        h.max()
                    );
                }
            }
        }
        s
    }

    /// Prometheus text exposition (version 0.0.4 subset, documented in
    /// docs/FORMATS.md). Metric names are prefixed `mttkrp_` with the
    /// registry's dots/dashes mapped to underscores. Counters and
    /// gauges expose their value (gauges additionally a `_peak`
    /// gauge); histograms expose summary-style `quantile` sample lines
    /// (p50/p90/p99) plus `_sum`/`_count` and an exact `_max` gauge.
    pub fn render_prometheus(&self) -> String {
        fn prom_name(name: &str) -> String {
            let mut s = String::with_capacity(name.len() + 7);
            s.push_str("mttkrp_");
            for ch in name.chars() {
                s.push(if ch.is_ascii_alphanumeric() { ch } else { '_' });
            }
            s
        }
        let slots = self
            .slots
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut s = String::new();
        for (name, slot) in slots.iter() {
            let p = prom_name(name);
            match slot {
                Slot::Counter(c) => {
                    let _ = writeln!(s, "# TYPE {p} counter");
                    let _ = writeln!(s, "{p} {}", c.value());
                }
                Slot::Gauge(g) => {
                    let _ = writeln!(s, "# TYPE {p} gauge");
                    let _ = writeln!(s, "{p} {}", g.value());
                    let _ = writeln!(s, "# TYPE {p}_peak gauge");
                    let _ = writeln!(s, "{p}_peak {}", g.peak());
                }
                Slot::Histogram(h) => {
                    let _ = writeln!(s, "# TYPE {p} summary");
                    for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                        let _ = writeln!(s, "{p}{{quantile=\"{label}\"}} {}", h.quantile(q));
                    }
                    let _ = writeln!(s, "{p}_sum {}", h.sum());
                    let _ = writeln!(s, "{p}_count {}", h.count());
                    let _ = writeln!(s, "# TYPE {p}_max gauge");
                    let _ = writeln!(s, "{p}_max {}", h.max());
                }
            }
        }
        s
    }

    /// Self-describing JSON dump (`mttkrp-metrics-v1`).
    pub fn json_dump(&self) -> String {
        let slots = self
            .slots
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut s = String::from("{\n  \"schema\": \"mttkrp-metrics-v1\",\n  \"metrics\": [\n");
        let n = slots.len();
        for (i, (name, slot)) in slots.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            match slot {
                Slot::Counter(c) => {
                    let _ = writeln!(
                        s,
                        "    {{\"name\": \"{name}\", \"kind\": \"counter\", \"value\": {}}}{comma}",
                        c.value()
                    );
                }
                Slot::Gauge(g) => {
                    let _ = writeln!(
                        s,
                        "    {{\"name\": \"{name}\", \"kind\": \"gauge\", \"value\": {}, \"peak\": {}, \"epoch\": {}}}{comma}",
                        g.value(),
                        g.peak(),
                        g.peak_epoch()
                    );
                }
                Slot::Histogram(h) => {
                    let _ = writeln!(
                        s,
                        "    {{\"name\": \"{name}\", \"kind\": \"histogram\", \"count\": {}, \"sum\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}{comma}",
                        h.count(),
                        h.sum(),
                        h.quantile(0.5),
                        h.quantile(0.9),
                        h.quantile(0.99),
                        h.max()
                    );
                }
            }
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// The process-wide [`Registry`].
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Prometheus text exposition of the process-wide registry — see
/// [`Registry::render_prometheus`].
pub fn render_prometheus() -> String {
    registry().render_prometheus()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = registry().counter("test.counter_roundtrip");
        c.add(3);
        c.incr();
        assert_eq!(c.value(), 4);
        // Re-registering returns the same metric.
        assert_eq!(registry().counter("test.counter_roundtrip").value(), 4);

        let g = registry().gauge("test.gauge_roundtrip");
        g.add(100);
        g.sub(40);
        assert_eq!(g.value(), 60);
        assert_eq!(g.peak(), 100);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        registry().counter("test.kind_mismatch");
        registry().gauge("test.kind_mismatch");
    }

    #[test]
    fn gauge_epoch_reset_starts_new_window() {
        let g = Gauge::default();
        g.add(100);
        g.sub(100);
        assert_eq!((g.peak(), g.peak_epoch()), (100, 0));
        let e = g.reset_peak();
        assert_eq!(e, 1);
        assert_eq!(g.peak(), 0, "peak resets to the current value");
        g.add(25);
        assert_eq!(g.peak(), 25);
        assert_eq!(g.peak_epoch(), 1, "raises stay within the new epoch");
    }

    #[test]
    fn gauge_peak_clamps_negative_values() {
        let g = Gauge::default();
        g.sub(5);
        assert_eq!(g.value(), -5);
        assert_eq!(g.peak(), 0);
        g.reset_peak();
        assert_eq!(g.peak(), 0, "negative current value floors the peak at 0");
    }

    #[test]
    fn gauge_reset_race_cannot_resurrect_old_peak() {
        // Interleave raises and resets from two threads; after the final
        // reset (quiescent), the peak must equal the current value.
        let g: &'static Gauge = Box::leak(Box::default());
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..10_000 {
                    g.add(3);
                    g.sub(3);
                }
            });
            s.spawn(|| {
                for _ in 0..1_000 {
                    g.reset_peak();
                }
            });
        });
        g.reset_peak();
        assert_eq!(g.peak(), clamp_peak(g.value()) as i64);
    }

    #[test]
    fn histogram_buckets_are_contiguous_and_monotone() {
        // Every value maps to a bucket whose bounds bracket it.
        for v in [0u64, 1, 2, 3, 4, 5, 7, 8, 9, 100, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            assert!(i < HISTOGRAM_BUCKETS);
            assert!(bucket_lower_bound(i) <= v, "v={v} bucket={i}");
            if i + 1 < HISTOGRAM_BUCKETS {
                assert!(v < bucket_lower_bound(i + 1), "v={v} bucket={i}");
            }
        }
        for i in 1..HISTOGRAM_BUCKETS {
            assert!(bucket_lower_bound(i) > bucket_lower_bound(i - 1));
        }
    }

    #[test]
    fn histogram_quantiles_approximate() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert_eq!(h.max(), 1000);
        let p50 = h.quantile(0.5);
        assert!((375..=500).contains(&p50), "p50={p50}");
        let p99 = h.quantile(0.99);
        assert!((768..=990).contains(&p99), "p99={p99}");
    }

    #[test]
    fn histogram_quantiles_on_known_distributions() {
        // Constant distribution: every quantile hits the one bucket.
        let h = Histogram::default();
        for _ in 0..100 {
            h.record(64);
        }
        assert_eq!(h.quantile(0.5), 64);
        assert_eq!(h.quantile(0.99), 64);

        // Two-point distribution 90/10: p50/p90 land on the low point,
        // p99 on (the bucket lower bound of) the high point.
        let h = Histogram::default();
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        assert_eq!(h.quantile(0.5), 10);
        assert_eq!(h.quantile(0.9), 10);
        let p99 = h.quantile(0.99);
        assert!((768..=1000).contains(&p99), "p99={p99}");

        // Quantiles are monotone in q.
        let h = Histogram::default();
        for v in [1u64, 5, 25, 125, 625, 3125] {
            for _ in 0..7 {
                h.record(v);
            }
        }
        let qs: Vec<u64> = [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0]
            .iter()
            .map(|&q| h.quantile(q))
            .collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "{qs:?}");

        // Empty histogram: all quantiles are 0.
        assert_eq!(Histogram::default().quantile(0.5), 0);
    }

    #[test]
    fn prometheus_exposition_covers_all_kinds() {
        registry().counter("test.prom-counter").add(7);
        registry().gauge("test.prom_gauge").add(9);
        let h = registry().histogram("test.prom_hist");
        for v in 1..=100u64 {
            h.record(v);
        }
        let out = render_prometheus();
        assert!(out.contains("# TYPE mttkrp_test_prom_counter counter"));
        assert!(out.contains("mttkrp_test_prom_counter 7"));
        // Dots and dashes both sanitize to underscores.
        assert!(!out.contains("test.prom"), "unsanitized name:\n{out}");
        assert!(out.contains("# TYPE mttkrp_test_prom_gauge gauge"));
        assert!(out.contains("mttkrp_test_prom_gauge 9"));
        assert!(out.contains("mttkrp_test_prom_gauge_peak 9"));
        assert!(out.contains("# TYPE mttkrp_test_prom_hist summary"));
        assert!(out.contains("mttkrp_test_prom_hist{quantile=\"0.5\"}"));
        assert!(out.contains("mttkrp_test_prom_hist{quantile=\"0.99\"}"));
        assert!(out.contains("mttkrp_test_prom_hist_sum 5050"));
        assert!(out.contains("mttkrp_test_prom_hist_count 100"));
        assert!(out.contains("mttkrp_test_prom_hist_max 100"));
        // Every non-comment line is `name[{labels}] value`.
        for line in out.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.split(' ');
            let name = parts.next().unwrap();
            assert!(name.starts_with("mttkrp_"), "bad sample line: {line}");
            assert!(
                parts.next().unwrap().parse::<i64>().is_ok(),
                "bad value: {line}"
            );
            assert!(parts.next().is_none(), "extra tokens: {line}");
        }
    }

    #[test]
    fn dumps_cover_all_kinds() {
        registry().counter("test.dump_counter").add(7);
        registry().gauge("test.dump_gauge").add(9);
        registry().histogram("test.dump_hist").record(5);
        let text = registry().text_dump();
        assert!(text.contains("test.dump_counter counter"));
        assert!(text.contains("test.dump_gauge gauge value="));
        assert!(text.contains("test.dump_hist histogram count="));
        let json = registry().json_dump();
        assert!(json.contains("\"schema\": \"mttkrp-metrics-v1\""));
        assert!(json.contains("\"name\": \"test.dump_gauge\""));
    }
}
