//! Multi-thread span recording: drained records must be well-nested
//! and in closing order **per thread**, with all timestamps on one
//! process-wide epoch, even when many threads record concurrently.
//!
//! The workload is seeded and deterministic in shape (each thread
//! records the same span tree), so the assertions hold on every run;
//! only the interleaving varies.

use mttkrp_obs::{set_trace_level, take_spans, SpanRecord, TraceLevel};

/// Each thread records `REPS` copies of outer{ mid{ inner } mid2 }.
const REPS: usize = 50;
const THREADS: usize = 4;

fn workload(seed: u64) {
    for rep in 0..REPS {
        let _outer = mttkrp_obs::span!("outer", rep = rep);
        {
            let _mid = mttkrp_obs::span!("mid", seed = seed);
            let _inner = mttkrp_obs::span_full!("inner");
            // A little real work so spans have nonzero extent.
            std::hint::black_box((0..seed % 97 + 3).sum::<u64>());
        }
        let _mid2 = mttkrp_obs::span!("mid2");
    }
}

#[test]
fn concurrent_spans_are_well_nested_per_thread() {
    set_trace_level(TraceLevel::Full);
    let _ = take_spans(); // start from a clean buffer

    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || workload(0x5EED ^ t as u64));
        }
    });
    set_trace_level(TraceLevel::Off);
    let spans = take_spans();

    // Every recorded span came from this workload, tagged with the
    // recording crate (the macros capture the caller's crate name).
    let expected = 4 * REPS * THREADS;
    assert_eq!(spans.len(), expected, "4 spans per rep per thread");
    assert!(spans.iter().all(|x| x.cat == "mttkrp-obs"));

    let tids: std::collections::BTreeSet<u32> = spans.iter().map(|x| x.tid).collect();
    assert!(
        tids.len() >= THREADS,
        "each recording thread gets its own tid (got {tids:?})"
    );

    for tid in tids {
        let per: Vec<&SpanRecord> = spans.iter().filter(|x| x.tid == tid).collect();
        // Closing order: end timestamps are monotone within a thread's
        // drained group.
        for w in per.windows(2) {
            assert!(
                w[0].end_ns() <= w[1].end_ns(),
                "tid {tid}: records out of closing order"
            );
        }
        // Well-nestedness: a depth d+1 record is contained in the next
        // depth-d record that closes after it (its parent), and depth
        // transitions only through push/pop (no jumps downward).
        for (i, s) in per.iter().enumerate() {
            if s.depth == 0 {
                continue;
            }
            let parent = per[i + 1..]
                .iter()
                .find(|p| p.depth == s.depth - 1)
                .unwrap_or_else(|| {
                    panic!(
                        "tid {tid}: depth-{} span {:?} has no parent",
                        s.depth, s.name
                    )
                });
            assert!(
                parent.start_ns <= s.start_ns && s.end_ns() <= parent.end_ns(),
                "tid {tid}: span {:?} [{}, {}] escapes parent {:?} [{}, {}]",
                s.name,
                s.start_ns,
                s.end_ns(),
                parent.name,
                parent.start_ns,
                parent.end_ns(),
            );
        }
        // The deterministic shape survives per thread: equal counts of
        // each span name, inner strictly inside mid inside outer.
        let count = |n: &str| per.iter().filter(|x| x.name == n).count();
        assert_eq!(count("outer"), REPS);
        assert_eq!(count("mid"), REPS);
        assert_eq!(count("inner"), REPS);
        assert_eq!(count("mid2"), REPS);
    }

    // The chrome-trace export of a concurrent batch is valid JSON with
    // one metadata record per thread (spot-checked structurally; the
    // full parse happens in CI with a real JSON parser).
    let names = mttkrp_obs::thread_names();
    assert!(names.len() >= THREADS);
}
