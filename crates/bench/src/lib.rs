//! Shared fixtures plus a small in-tree timing harness for the figure
//! benches (one bench target per paper figure, plus ablations). Sizes
//! are scaled down from the paper (≈750M-entry tensors) so
//! `cargo bench` completes in minutes on one core; the harness binary
//! (`mttkrp-harness`) regenerates the actual figure tables, including
//! modeled 12-thread series.
//!
//! The bench targets are plain `harness = false` binaries driven by
//! [`BenchGroup`] — the build environment has no registry access, so
//! Criterion is replaced by a median-of-samples timer with the same
//! group/function reporting structure.

use mttkrp_blas::{Layout, MatRef};
use mttkrp_tensor::DenseTensor;
use mttkrp_workloads::{equal_dims, random_factors};

/// Rank used throughout the figure benches (paper: C = 25).
pub const RANK: usize = 25;

/// An equal-dims tensor plus factor matrices for MTTKRP benches.
pub struct MttkrpFixture {
    /// The dense input tensor.
    pub x: DenseTensor,
    /// Row-major `I_n × C` factors.
    pub factors: Vec<Vec<f64>>,
    /// Tensor dimensions.
    pub dims: Vec<usize>,
}

impl MttkrpFixture {
    /// Build an order-`nmodes` fixture with ≈`entries` total entries.
    pub fn equal(nmodes: usize, entries: usize) -> Self {
        let dims = equal_dims(nmodes, entries);
        Self::with_dims(&dims)
    }

    /// Fixture with explicit dimensions (fMRI shapes).
    pub fn with_dims(dims: &[usize]) -> Self {
        let mut k = 9u64;
        let x = DenseTensor::from_fn(dims, || {
            k = k
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((k >> 40) as f64) * 2e-8 - 0.5
        });
        let factors = random_factors(dims, RANK, 17);
        MttkrpFixture {
            x,
            factors,
            dims: dims.to_vec(),
        }
    }

    /// Borrowed factor views.
    pub fn refs(&self) -> Vec<MatRef<'_>> {
        self.factors
            .iter()
            .zip(&self.dims)
            .map(|(f, &d)| MatRef::from_slice(f, d, RANK, Layout::RowMajor))
            .collect()
    }
}

/// Wall-time statistics of repeated calls of one function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    /// Median of the measured wall times (seconds).
    pub median: f64,
    /// Fastest measured run (seconds) — the least-noise estimate,
    /// which is what calibration microbenchmarks want.
    pub min: f64,
    /// Slowest measured run (seconds).
    pub max: f64,
    /// Number of measured runs (excluding the warm-up).
    pub samples: usize,
}

/// Time `f`: one unmeasured warm-up call (faults pages, fills
/// thread-local pack buffers), then `samples` measured calls. The
/// shared timer under both [`BenchGroup`] and the `mttkrp-tune`
/// calibration microbenchmarks.
pub fn sample_stats(samples: usize, mut f: impl FnMut()) -> SampleStats {
    let samples = samples.max(1);
    f(); // warm-up
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = std::time::Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    SampleStats {
        median: times[times.len() / 2],
        min: times[0],
        max: times[times.len() - 1],
        samples,
    }
}

/// Median wall time of `samples` measured calls of `f` (one warm-up).
pub fn sample_median(samples: usize, f: impl FnMut()) -> f64 {
    sample_stats(samples, f).median
}

/// Fastest wall time of `samples` measured calls of `f` (one warm-up).
pub fn sample_min(samples: usize, f: impl FnMut()) -> f64 {
    sample_stats(samples, f).min
}

/// A named group of timed benchmark functions (the in-tree stand-in for
/// `criterion::BenchmarkGroup`).
///
/// Each function is warmed up once, then run `samples` times; the
/// median, minimum, and maximum wall times are printed as one CSV-ish
/// line `group/name,median_s,min_s,max_s,samples`. Sample count
/// defaults to 5 and can be overridden with `MTTKRP_BENCH_SAMPLES`.
pub struct BenchGroup {
    name: String,
    samples: usize,
}

impl BenchGroup {
    /// Start a group; prints a header line.
    pub fn new(name: impl Into<String>) -> Self {
        let samples = std::env::var("MTTKRP_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n: &usize| n > 0)
            .unwrap_or(5);
        let name = name.into();
        println!("## {name} ({samples} samples)");
        BenchGroup { name, samples }
    }

    /// Time `f`: one warm-up call, then `samples` measured calls.
    pub fn bench(&self, fn_name: &str, f: impl FnMut()) {
        let s = sample_stats(self.samples, f);
        println!(
            "{}/{fn_name},{:.6},{:.6},{:.6},{}",
            self.name, s.median, s.min, s.max, s.samples,
        );
    }
}
