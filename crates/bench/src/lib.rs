//! Shared fixtures for the Criterion benches (one bench target per
//! paper figure, plus ablations). Sizes are scaled down from the paper
//! (≈750M-entry tensors) so `cargo bench` completes in minutes on one
//! core; the harness binary (`mttkrp-harness`) regenerates the actual
//! figure tables, including modeled 12-thread series.

use mttkrp_blas::{Layout, MatRef};
use mttkrp_tensor::DenseTensor;
use mttkrp_workloads::{equal_dims, random_factors};

/// Rank used throughout the figure benches (paper: C = 25).
pub const RANK: usize = 25;

/// An equal-dims tensor plus factor matrices for MTTKRP benches.
pub struct MttkrpFixture {
    /// The dense input tensor.
    pub x: DenseTensor,
    /// Row-major `I_n × C` factors.
    pub factors: Vec<Vec<f64>>,
    /// Tensor dimensions.
    pub dims: Vec<usize>,
}

impl MttkrpFixture {
    /// Build an order-`nmodes` fixture with ≈`entries` total entries.
    pub fn equal(nmodes: usize, entries: usize) -> Self {
        let dims = equal_dims(nmodes, entries);
        Self::with_dims(&dims)
    }

    /// Fixture with explicit dimensions (fMRI shapes).
    pub fn with_dims(dims: &[usize]) -> Self {
        let mut k = 9u64;
        let x = DenseTensor::from_fn(dims, || {
            k = k
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((k >> 40) as f64) * 2e-8 - 0.5
        });
        let factors = random_factors(dims, RANK, 17);
        MttkrpFixture {
            x,
            factors,
            dims: dims.to_vec(),
        }
    }

    /// Borrowed factor views.
    pub fn refs(&self) -> Vec<MatRef<'_>> {
        self.factors
            .iter()
            .zip(&self.dims)
            .map(|(f, &d)| MatRef::from_slice(f, d, RANK, Layout::RowMajor))
            .collect()
    }
}
