//! PR 6 trajectory record: MTTKRP throughput per {dtype, tier,
//! algorithm, T}, CP-ALS sweep time per dtype, and the fused-agreement
//! errors — written to `BENCH_pr6.json` at the repo root through the
//! shared [`BenchReport`] builder (schema in docs/FORMATS.md).
//!
//! Throughput is reported **GB-effective**: bytes are counted as if
//! every element were 8 bytes regardless of storage dtype, so an f32
//! run that moves half the physical bytes in the same time shows up as
//! 2× the effective rate — the apples-to-apples number the
//! storage-precision tradeoff is about.
//!
//! Env knobs: `MTTKRP_BENCH_SMOKE=1` shrinks the fixture for CI smoke
//! runs, `MTTKRP_BENCH_OUT` overrides the output path,
//! `MTTKRP_BENCH_SAMPLES` the per-measurement sample count.

use mttkrp_bench::{sample_min, MttkrpFixture, RANK};
use mttkrp_blas::{kernels, Layout, MatRef, Scalar};
use mttkrp_core::{mttkrp_1step, mttkrp_2step, mttkrp_fused, AlgoChoice, MttkrpPlan, TwoStepSide};
use mttkrp_cpals::{cp_als, CpAlsOptions, KruskalModel, MttkrpStrategy};
use mttkrp_obs::BenchReport;
use mttkrp_parallel::ThreadPool;

const SAMPLES: usize = 5;

/// One measured MTTKRP configuration.
struct MttkrpRow {
    dtype: &'static str,
    tier: &'static str,
    algorithm: &'static str,
    threads: usize,
    mode: usize,
    seconds: f64,
    gb_effective_per_s: f64,
}

/// Max relative error of the fused pass against a reference algorithm,
/// over all modes.
struct AgreementRow {
    dtype: &'static str,
    baseline: &'static str,
    max_rel_error: f64,
    bound: f64,
}

struct CpAlsRow {
    dtype: &'static str,
    seconds_per_sweep: f64,
    iters: usize,
    final_fit: f64,
}

fn samples() -> usize {
    std::env::var("MTTKRP_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(SAMPLES)
}

/// Sweep one dtype: every mode × {1-step, 2-step (internal), fused} ×
/// {1, host} threads, plus the agreement errors and a CP-ALS run.
fn sweep<S: Scalar>(
    fx64: &MttkrpFixture,
    host: &ThreadPool,
    rows: &mut Vec<MttkrpRow>,
    agreement: &mut Vec<AgreementRow>,
    cpals: &mut Vec<CpAlsRow>,
    agreement_bound: f64,
) {
    let dims = fx64.dims.clone();
    let nmodes = dims.len();
    let x = fx64.x.cast::<S>();
    let factors: Vec<Vec<S>> = fx64
        .factors
        .iter()
        .map(|f| f.iter().map(|&v| S::from_f64(v)).collect())
        .collect();
    let refs: Vec<MatRef<S>> = factors
        .iter()
        .zip(&dims)
        .map(|(f, &d)| MatRef::from_slice(f, d, RANK, Layout::RowMajor))
        .collect();
    let dtype = S::DTYPE.name();
    let tier = kernels::<S>().tier().name();
    let n_samples = samples();
    // Effective bytes: the tensor read once, normalized to 8-byte
    // elements so dtypes are compared on the same scale.
    let gb_eff = (x.len() as f64) * 8.0 / 1e9;

    let pools: Vec<ThreadPool> = if host.num_threads() > 1 {
        vec![ThreadPool::new(1), ThreadPool::new(host.num_threads())]
    } else {
        vec![ThreadPool::new(1)]
    };
    for pool in &pools {
        let t = pool.num_threads();
        for n in 0..nmodes {
            let mut out = vec![S::ZERO; dims[n] * RANK];
            let algos: &[(&str, AlgoChoice)] = &[
                ("1step", AlgoChoice::OneStep),
                ("2step", AlgoChoice::TwoStep(TwoStepSide::Auto)),
                ("fused", AlgoChoice::Fused),
            ];
            for &(name, choice) in algos {
                if name == "2step" && (n == 0 || n == nmodes - 1) {
                    continue; // external modes have no 2-step split
                }
                let mut plan = MttkrpPlan::<S>::new(pool, &dims, RANK, n, choice);
                let secs = sample_min(n_samples, || plan.execute(pool, &x, &refs, &mut out));
                rows.push(MttkrpRow {
                    dtype,
                    tier,
                    algorithm: name,
                    threads: t,
                    mode: n,
                    seconds: secs,
                    gb_effective_per_s: gb_eff / secs,
                });
            }
        }
    }

    // Fused agreement against both references, max over modes.
    let (mut err_one, mut err_two) = (0.0f64, 0.0f64);
    for n in 0..nmodes {
        let mut fused = vec![S::ZERO; dims[n] * RANK];
        mttkrp_fused(host, &x, &refs, n, &mut fused);
        let mut reference = vec![S::ZERO; dims[n] * RANK];
        mttkrp_1step(host, &x, &refs, n, &mut reference);
        err_one = err_one.max(max_rel(&fused, &reference));
        if n > 0 && n < nmodes - 1 {
            mttkrp_2step(host, &x, &refs, n, &mut reference);
            err_two = err_two.max(max_rel(&fused, &reference));
        }
    }
    agreement.push(AgreementRow {
        dtype,
        baseline: "1step",
        max_rel_error: err_one,
        bound: agreement_bound,
    });
    agreement.push(AgreementRow {
        dtype,
        baseline: "2step",
        max_rel_error: err_two,
        bound: agreement_bound,
    });

    // CP-ALS sweep time on the same tensor.
    let iters = 4;
    let init = KruskalModel::<f64>::random(&dims, RANK, 23).cast::<S>();
    let opts = CpAlsOptions {
        max_iters: iters,
        tol: 0.0,
        strategy: MttkrpStrategy::Auto,
    };
    let t0 = std::time::Instant::now();
    let (_, report) = cp_als(host, &x, init, &opts);
    let dt = t0.elapsed().as_secs_f64();
    cpals.push(CpAlsRow {
        dtype,
        seconds_per_sweep: dt / report.iters.max(1) as f64,
        iters: report.iters,
        final_fit: report.final_fit(),
    });
}

fn max_rel<S: Scalar>(got: &[S], want: &[S]) -> f64 {
    got.iter()
        .zip(want)
        .map(|(a, b)| {
            let (a, b) = (a.to_f64(), b.to_f64());
            (a - b).abs() / (1.0 + b.abs())
        })
        .fold(0.0, f64::max)
}

/// Best (max over modes/algorithms) GB-effective rate at `threads` for
/// one dtype.
fn best_rate(rows: &[MttkrpRow], dtype: &str, threads: usize) -> f64 {
    rows.iter()
        .filter(|r| r.dtype == dtype && r.threads == threads)
        .map(|r| r.gb_effective_per_s)
        .fold(0.0, f64::max)
}

fn main() {
    let smoke = std::env::var("MTTKRP_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let entries = if smoke { 60_000 } else { 2_000_000 };
    let host = ThreadPool::host();
    let fx = MttkrpFixture::equal(3, entries);

    let mut rows = Vec::new();
    let mut agreement = Vec::new();
    let mut cpals = Vec::new();
    sweep::<f64>(&fx, &host, &mut rows, &mut agreement, &mut cpals, 1e-12);
    sweep::<f32>(&fx, &host, &mut rows, &mut agreement, &mut cpals, 1e-5);

    let f64_t1 = best_rate(&rows, "f64", 1);
    let f32_t1 = best_rate(&rows, "f32", 1);
    let speedup = f32_t1 / f64_t1;

    let mut report = BenchReport::new(6);
    report
        .scalar("rank", RANK)
        .scalar(
            "dims",
            fx.dims
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("x"),
        )
        .scalar("smoke", smoke)
        .scalar("host_threads", host.num_threads());
    for r in &rows {
        report
            .row("mttkrp")
            .field("dtype", r.dtype)
            .field("tier", r.tier)
            .field("algorithm", r.algorithm)
            .field("threads", r.threads)
            .field("mode", r.mode)
            .field("seconds", r.seconds)
            .field("gb_effective_per_s", r.gb_effective_per_s);
    }
    for r in &cpals {
        report
            .row("cp_als")
            .field("dtype", r.dtype)
            .field("seconds_per_sweep", r.seconds_per_sweep)
            .field("iters", r.iters)
            .field("final_fit", r.final_fit);
    }
    for r in &agreement {
        report
            .row("fused_agreement")
            .field("dtype", r.dtype)
            .field("baseline", r.baseline)
            .field("max_rel_error", r.max_rel_error)
            .field("bound", r.bound)
            .field("within_bound", r.max_rel_error <= r.bound);
    }
    report
        .row("acceptance")
        .field("f32_best_gb_effective_t1", f32_t1)
        .field("f64_best_gb_effective_t1", f64_t1)
        .field("f32_over_f64_t1", speedup)
        .field("f32_speedup_target", 1.5)
        .field("f32_speedup_met", speedup >= 1.5);

    let out = BenchReport::out_path(&format!(
        "{}/../../BENCH_pr6.json",
        env!("CARGO_MANIFEST_DIR")
    ));
    report.save(&out).expect("write BENCH_pr6.json");
    print!("{}", report.to_json());
    eprintln!("# wrote {out}");
}
