//! Kernel microbenchmark: per-tier throughput of the dispatched SIMD
//! primitives (dot / axpy / hadamard / SYRK row update / GEMM
//! microkernel and the full packed GEMM built on it), one series per
//! tier the host CPU supports.
//!
//! Output lines are `kernels-<tier>/<kernel>,median_s,min_s,max_s,n`;
//! each timed call streams `REPS` invocations so the per-call dispatch
//! overhead is amortized the same way the real hot loops amortize it.
//! Compare tiers row-wise to see what the explicit-FMA kernels buy over
//! the scalar reference (BENCH tracking: per-tier kernel throughput).

use mttkrp_bench::BenchGroup;
use mttkrp_blas::kernels::{available_tiers, KernelSet, MicroTile, MR, NR_MAX};
use mttkrp_blas::{gemm_with, Layout, MatMut, MatRef};

/// Vector length of the level-1 benches (L2-resident: 2 × 64 KiB).
const LEN: usize = 8192;
/// Invocations per timed call.
const REPS: usize = 200;
/// Gram rank of the SYRK row-update bench (the paper's C = 25).
const SYRK_N: usize = 25;
/// Microkernel depth (one full KC panel).
const KC: usize = 256;

fn rand_vec(n: usize, seed: u64) -> Vec<f64> {
    let mut s = seed | 1;
    (0..n)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 32) as f64) - 0.5
        })
        .collect()
}

fn main() {
    for tier in available_tiers() {
        let ks = KernelSet::for_tier(tier).expect("listed tier resolves");
        let group = BenchGroup::new(format!("kernels-{tier}"));

        let x = rand_vec(LEN, 1);
        let y = rand_vec(LEN, 2);
        group.bench("dot_8k", || {
            let mut acc = 0.0;
            for _ in 0..REPS {
                acc += (ks.dot)(&x, &y);
            }
            std::hint::black_box(acc);
        });

        let mut yv = rand_vec(LEN, 3);
        group.bench("axpy_8k", || {
            for _ in 0..REPS {
                (ks.axpy)(1.000000001, &x, &mut yv);
            }
            std::hint::black_box(yv[0]);
        });

        let mut out = vec![0.0; LEN];
        group.bench("hadamard_8k", || {
            for _ in 0..REPS {
                (ks.hadamard)(&x, &y, &mut out);
            }
            std::hint::black_box(out[0]);
        });

        group.bench("mul_add_8k", || {
            for _ in 0..REPS {
                (ks.mul_add)(&x, &y, &mut out);
            }
            std::hint::black_box(out[0]);
        });

        // One KRP-rank row against a C × C Gram accumulator — the
        // inner operation of the Gram path (C = 25).
        let row = rand_vec(SYRK_N, 5);
        let mut acc = vec![0.0; SYRK_N * SYRK_N];
        group.bench("syrk_rank1_c25", || {
            for _ in 0..REPS * 4 {
                (ks.syrk_rank1_lower)(&row, &mut acc);
            }
            std::hint::black_box(acc[0]);
        });

        // The raw register tile at full panel depth: 2·MR·nr·KC flops
        // per invocation (`nr` is the set's panel width).
        let a_panel = rand_vec(KC * MR, 7);
        let b_panel = rand_vec(KC * ks.nr(), 8);
        group.bench("gemm_micro_kc256", || {
            let mut tile: MicroTile<f64> = [[0.0; NR_MAX]; MR];
            for _ in 0..REPS * 4 {
                (ks.gemm_micro)(KC, &a_panel, &b_panel, &mut tile);
            }
            std::hint::black_box(tile[0][0]);
        });

        // End-to-end packed GEMM on one cache-blocked problem.
        let (m, n, k) = (256usize, 256usize, 256usize);
        let a_data = rand_vec(m * k, 9);
        let b_data = rand_vec(k * n, 10);
        let mut c_data = vec![0.0; m * n];
        group.bench("gemm_256cubed", || {
            let a = MatRef::from_slice(&a_data, m, k, Layout::ColMajor);
            let b = MatRef::from_slice(&b_data, k, n, Layout::RowMajor);
            gemm_with(
                &ks,
                1.0,
                a,
                b,
                0.0,
                MatMut::from_slice(&mut c_data, m, n, Layout::RowMajor),
            );
            std::hint::black_box(c_data[0]);
        });
    }
}
