//! Sparse MTTKRP density sweep: steady-state planned CSF execution per
//! mode at several densities of a 3-way tensor, against the dense
//! planned kernel on the same shape. Shows where the compressed-fiber
//! walk crosses over the dense BLAS path as the tensor fills in.

use mttkrp_bench::{BenchGroup, MttkrpFixture, RANK};
use mttkrp_core::{AlgoChoice, MttkrpPlan};
use mttkrp_parallel::ThreadPool;
use mttkrp_sparse::{CsfTensor, SparseMttkrpPlan};
use mttkrp_workloads::random_sparse;

const ENTRIES: usize = 2_000_000;
const DENSITIES: [f64; 3] = [1e-3, 1e-2, 1e-1];

fn main() {
    let pool = ThreadPool::host();
    let fx = MttkrpFixture::equal(3, ENTRIES);
    let refs = fx.refs();
    let total: usize = fx.dims.iter().product();

    for &density in &DENSITIES {
        let nnz = ((total as f64 * density) as usize).max(1);
        let coo = random_sparse(&fx.dims, nnz, 0xBE1);
        let csf = CsfTensor::from_coo(&coo);
        let group = BenchGroup::new(format!("sparse_density/d{density}"));
        for n in 0..fx.dims.len() {
            let mut plan = SparseMttkrpPlan::new(&pool, &csf, RANK, n);
            let mut out = vec![0.0; fx.dims[n] * RANK];
            group.bench(&format!("csf_planned/{n}"), || {
                plan.execute(&pool, &csf, &refs, &mut out)
            });
        }
    }

    // Dense reference at density 1.
    let group = BenchGroup::new("sparse_density/dense_ref");
    for n in 0..fx.dims.len() {
        let mut plan = MttkrpPlan::new(&pool, &fx.dims, RANK, n, AlgoChoice::Heuristic);
        let mut out = vec![0.0; fx.dims[n] * RANK];
        group.bench(&format!("dense_planned/{n}"), || {
            plan.execute(&pool, &fx.x, &refs, &mut out)
        });
    }
}
