//! Figure 4: Khatri-Rao product — Reuse (Algorithm 1) vs Naive vs the
//! STREAM roofline, for Z ∈ {2,3,4} inputs and C ∈ {25,50}.

use mttkrp_bench::BenchGroup;
use mttkrp_blas::stream::par_stream_scale;
use mttkrp_blas::{Layout, MatRef};
use mttkrp_krp::{par_krp, par_krp_naive};
use mttkrp_parallel::ThreadPool;
use mttkrp_workloads::{krp_input_rows, random_matrix};

/// Scaled-down output rows (paper: ≈2e7).
const TARGET_ROWS: usize = 200_000;

fn main() {
    let pool = ThreadPool::host();
    for &c in &[25usize, 50] {
        let group = BenchGroup::new(format!("fig4/C{c}"));
        for &z in &[2usize, 3, 4] {
            let rows = krp_input_rows(z, TARGET_ROWS);
            let j: usize = rows.iter().product();
            let mats: Vec<Vec<f64>> = rows
                .iter()
                .enumerate()
                .map(|(i, &r)| random_matrix(r, c, i as u64))
                .collect();
            let inputs: Vec<MatRef> = mats
                .iter()
                .zip(&rows)
                .map(|(m, &r)| MatRef::from_slice(m, r, c, Layout::RowMajor))
                .collect();
            let mut out = vec![0.0; j * c];
            group.bench(&format!("reuse/{z}"), || par_krp(&pool, &inputs, &mut out));
            group.bench(&format!("naive/{z}"), || {
                par_krp_naive(&pool, &inputs, &mut out)
            });
        }
        // STREAM Scale over a matrix the size of the KRP output.
        let j: usize = krp_input_rows(2, TARGET_ROWS).iter().product();
        let src = vec![1.0f64; j * c];
        let mut dst = vec![0.0f64; j * c];
        group.bench("stream", || par_stream_scale(&pool, 1.5, &src, &mut dst));
    }
}
