//! Figure 5: MTTKRP time per mode — 1-step vs 2-step vs the baseline
//! DGEMM, for N ∈ {3,4,5,6} equal-dimension tensors (scaled down from
//! the paper's ≈750M entries).
//!
//! The `*_planned` entries time steady-state execution — the plan is
//! built once outside the timing loop, so KRP/partial buffers are
//! reused exactly as CP-ALS reuses them across sweeps.

use mttkrp_bench::{BenchGroup, MttkrpFixture, RANK};
use mttkrp_blas::{Layout, MatRef};
use mttkrp_core::baseline::baseline_gemm_only;
use mttkrp_core::{mttkrp_1step, mttkrp_2step, AlgoChoice, MttkrpPlan};
use mttkrp_parallel::ThreadPool;
use mttkrp_workloads::random_matrix;

const ENTRIES: usize = 2_000_000;

fn main() {
    let pool = ThreadPool::host();
    for nmodes in 3..=6 {
        let fx = MttkrpFixture::equal(nmodes, ENTRIES);
        let refs = fx.refs();
        let group = BenchGroup::new(format!("fig5/N{nmodes}"));

        for n in 0..nmodes {
            let mut out = vec![0.0; fx.dims[n] * RANK];
            group.bench(&format!("1step/{n}"), || {
                mttkrp_1step(&pool, &fx.x, &refs, n, &mut out)
            });
            let mut plan = MttkrpPlan::new(&pool, &fx.dims, RANK, n, AlgoChoice::OneStep);
            group.bench(&format!("1step_planned/{n}"), || {
                plan.execute(&pool, &fx.x, &refs, &mut out)
            });
            if n > 0 && n < nmodes - 1 {
                group.bench(&format!("2step/{n}"), || {
                    mttkrp_2step(&pool, &fx.x, &refs, n, &mut out)
                });
                let mut plan = MttkrpPlan::new(&pool, &fx.dims, RANK, n, AlgoChoice::Heuristic);
                group.bench(&format!("2step_planned/{n}"), || {
                    plan.execute(&pool, &fx.x, &refs, &mut out)
                });
            }
        }

        // Baseline DGEMM of the middle mode's shape.
        let n_mid = nmodes / 2;
        let i_n = fx.dims[n_mid];
        let i_neq = fx.x.len() / i_n;
        let xv = MatRef::from_slice(fx.x.data(), i_n, i_neq, Layout::ColMajor);
        let k = random_matrix(i_neq, RANK, 5);
        let kv = MatRef::from_slice(&k, i_neq, RANK, Layout::ColMajor);
        let mut out = vec![0.0; i_n * RANK];
        group.bench("baseline_dgemm", || {
            baseline_gemm_only(&pool, xv, kv, &mut out)
        });
    }
}
