//! Figure 5: MTTKRP time per mode — 1-step vs 2-step vs the baseline
//! DGEMM, for N ∈ {3,4,5,6} equal-dimension tensors (scaled down from
//! the paper's ≈750M entries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mttkrp_bench::{MttkrpFixture, RANK};
use mttkrp_blas::{Layout, MatRef};
use mttkrp_core::baseline::baseline_gemm_only;
use mttkrp_core::{mttkrp_1step, mttkrp_2step};
use mttkrp_parallel::ThreadPool;
use mttkrp_workloads::random_matrix;

const ENTRIES: usize = 2_000_000;

fn bench_fig5(criterion: &mut Criterion) {
    let pool = ThreadPool::host();
    for nmodes in 3..=6 {
        let fx = MttkrpFixture::equal(nmodes, ENTRIES);
        let refs = fx.refs();
        let mut group = criterion.benchmark_group(format!("fig5/N{nmodes}"));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(400));
        group.measurement_time(std::time::Duration::from_millis(1500));

        for n in 0..nmodes {
            let mut out = vec![0.0; fx.dims[n] * RANK];
            group.bench_function(BenchmarkId::new("1step", n), |b| {
                b.iter(|| mttkrp_1step(&pool, &fx.x, &refs, n, &mut out))
            });
            if n > 0 && n < nmodes - 1 {
                group.bench_function(BenchmarkId::new("2step", n), |b| {
                    b.iter(|| mttkrp_2step(&pool, &fx.x, &refs, n, &mut out))
                });
            }
        }

        // Baseline DGEMM of the middle mode's shape.
        let n_mid = nmodes / 2;
        let i_n = fx.dims[n_mid];
        let i_neq = fx.x.len() / i_n;
        let xv = MatRef::from_slice(fx.x.data(), i_n, i_neq, Layout::ColMajor);
        let k = random_matrix(i_neq, RANK, 5);
        let kv = MatRef::from_slice(&k, i_neq, RANK, Layout::ColMajor);
        let mut out = vec![0.0; i_n * RANK];
        group.bench_function("baseline_dgemm", |b| {
            b.iter(|| baseline_gemm_only(&pool, xv, kv, &mut out))
        });
        group.finish();
    }
}

criterion_group!(fig5, bench_fig5);
criterion_main!(fig5);
