//! Ablations of the design choices DESIGN.md calls out:
//!
//! * KRP prefix reuse on/off (sequential, isolating Algorithm 1's gain);
//! * 2-step left vs right partial (vs the paper's `IL_n > IR_n` rule);
//! * 1-step Algorithm 2 (explicit full KRP) vs Algorithm 3 with one
//!   thread (streaming KRP blocks) — the paper's observation that the
//!   parallel formulation is the better sequential algorithm too;
//! * dimension-tree CP-ALS on/off (the future-work extension).

use criterion::{criterion_group, criterion_main, Criterion};
use mttkrp_bench::{MttkrpFixture, RANK};
use mttkrp_blas::{Layout, MatRef};
use mttkrp_core::{mttkrp_1step, mttkrp_1step_seq, mttkrp_2step_timed, TwoStepSide};
use mttkrp_cpals::{cp_als, cp_als_dimtree, CpAlsOptions, KruskalModel, MttkrpStrategy};
use mttkrp_krp::{krp_naive, krp_reuse};
use mttkrp_parallel::ThreadPool;
use mttkrp_workloads::{krp_input_rows, random_matrix};

fn ablation_krp_reuse(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("ablation/krp_reuse");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1500));
    let c = 25;
    let rows = krp_input_rows(4, 100_000);
    let mats: Vec<Vec<f64>> = rows
        .iter()
        .enumerate()
        .map(|(i, &r)| random_matrix(r, c, i as u64))
        .collect();
    let inputs: Vec<MatRef> = mats
        .iter()
        .zip(&rows)
        .map(|(m, &r)| MatRef::from_slice(m, r, c, Layout::RowMajor))
        .collect();
    let j: usize = rows.iter().product();
    let mut out = vec![0.0; j * c];
    group.bench_function("reuse_on", |b| b.iter(|| krp_reuse(&inputs, &mut out)));
    group.bench_function("reuse_off", |b| b.iter(|| krp_naive(&inputs, &mut out)));
    group.finish();
}

fn ablation_twostep_side(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("ablation/twostep_side");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1500));
    let pool = ThreadPool::host();
    // Asymmetric dims so the side choice matters: mode 1 has IL=32,
    // IR=64*40 — the paper's rule picks Right here.
    let fx = MttkrpFixture::with_dims(&[32, 24, 64, 40]);
    let refs = fx.refs();
    let n = 1;
    let mut out = vec![0.0; fx.dims[n] * RANK];
    for (name, side) in [
        ("auto", TwoStepSide::Auto),
        ("left", TwoStepSide::Left),
        ("right", TwoStepSide::Right),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| mttkrp_2step_timed(&pool, &fx.x, &refs, n, &mut out, side))
        });
    }
    group.finish();
}

fn ablation_alg2_vs_alg3_seq(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("ablation/onestep_seq_variant");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1500));
    let one = ThreadPool::new(1);
    let fx = MttkrpFixture::equal(4, 1_000_000);
    let refs = fx.refs();
    let n = 1;
    let mut out = vec![0.0; fx.dims[n] * RANK];
    group.bench_function("alg2_full_krp", |b| {
        b.iter(|| mttkrp_1step_seq(&fx.x, &refs, n, &mut out))
    });
    group.bench_function("alg3_one_thread", |b| {
        b.iter(|| mttkrp_1step(&one, &fx.x, &refs, n, &mut out))
    });
    group.finish();
}

fn ablation_dimtree(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("ablation/dimtree");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1500));
    let pool = ThreadPool::host();
    let fx = MttkrpFixture::with_dims(&[24, 12, 24, 24]);
    let init = KruskalModel::random(&fx.dims, 16, 42);
    let opts = CpAlsOptions {
        max_iters: 1,
        tol: 0.0,
        strategy: MttkrpStrategy::Auto,
    };
    group.bench_function("standard", |b| {
        b.iter(|| cp_als(&pool, &fx.x, init.clone(), &opts))
    });
    group.bench_function("dimtree", |b| {
        b.iter(|| cp_als_dimtree(&pool, &fx.x, init.clone(), &opts))
    });
    group.finish();
}

criterion_group!(
    ablations,
    ablation_krp_reuse,
    ablation_twostep_side,
    ablation_alg2_vs_alg3_seq,
    ablation_dimtree
);
criterion_main!(ablations);
