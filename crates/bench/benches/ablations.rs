//! Ablations of the design choices DESIGN.md calls out:
//!
//! * KRP prefix reuse on/off (sequential, isolating Algorithm 1's gain);
//! * 2-step left vs right partial (vs the paper's `IL_n > IR_n` rule);
//! * 1-step Algorithm 2 (explicit full KRP) vs Algorithm 3 with one
//!   thread (streaming KRP blocks) — the paper's observation that the
//!   parallel formulation is the better sequential algorithm too;
//! * plan reuse on/off (per-call allocation vs cached `MttkrpPlan`);
//! * dimension-tree CP-ALS on/off (the future-work extension).

use mttkrp_bench::{BenchGroup, MttkrpFixture, RANK};
use mttkrp_blas::{Layout, MatRef};
use mttkrp_core::{
    mttkrp_1step, mttkrp_1step_seq, mttkrp_2step_timed, AlgoChoice, MttkrpPlan, TwoStepSide,
};
use mttkrp_cpals::{cp_als, cp_als_dimtree, CpAlsOptions, KruskalModel, MttkrpStrategy};
use mttkrp_krp::{krp_naive, krp_reuse};
use mttkrp_parallel::ThreadPool;
use mttkrp_workloads::{krp_input_rows, random_matrix};

fn ablation_krp_reuse() {
    let group = BenchGroup::new("ablation/krp_reuse");
    let c = 25;
    let rows = krp_input_rows(4, 100_000);
    let mats: Vec<Vec<f64>> = rows
        .iter()
        .enumerate()
        .map(|(i, &r)| random_matrix(r, c, i as u64))
        .collect();
    let inputs: Vec<MatRef> = mats
        .iter()
        .zip(&rows)
        .map(|(m, &r)| MatRef::from_slice(m, r, c, Layout::RowMajor))
        .collect();
    let j: usize = rows.iter().product();
    let mut out = vec![0.0; j * c];
    group.bench("reuse_on", || krp_reuse(&inputs, &mut out));
    group.bench("reuse_off", || krp_naive(&inputs, &mut out));
}

fn ablation_twostep_side() {
    let group = BenchGroup::new("ablation/twostep_side");
    let pool = ThreadPool::host();
    // Asymmetric dims so the side choice matters: mode 1 has IL=32,
    // IR=64*40 — the paper's rule picks Right here.
    let fx = MttkrpFixture::with_dims(&[32, 24, 64, 40]);
    let refs = fx.refs();
    let n = 1;
    let mut out = vec![0.0; fx.dims[n] * RANK];
    for (name, side) in [
        ("auto", TwoStepSide::Auto),
        ("left", TwoStepSide::Left),
        ("right", TwoStepSide::Right),
    ] {
        group.bench(name, || {
            let _ = mttkrp_2step_timed(&pool, &fx.x, &refs, n, &mut out, side);
        });
    }
}

fn ablation_alg2_vs_alg3_seq() {
    let group = BenchGroup::new("ablation/onestep_seq_variant");
    let one = ThreadPool::new(1);
    let fx = MttkrpFixture::equal(4, 1_000_000);
    let refs = fx.refs();
    let n = 1;
    let mut out = vec![0.0; fx.dims[n] * RANK];
    group.bench("alg2_full_krp", || {
        mttkrp_1step_seq(&fx.x, &refs, n, &mut out)
    });
    group.bench("alg3_one_thread", || {
        mttkrp_1step(&one, &fx.x, &refs, n, &mut out)
    });
}

fn ablation_plan_reuse() {
    let group = BenchGroup::new("ablation/plan_reuse");
    let pool = ThreadPool::host();
    let fx = MttkrpFixture::equal(4, 1_000_000);
    let refs = fx.refs();
    let n = 1;
    let mut out = vec![0.0; fx.dims[n] * RANK];
    group.bench("allocating_wrapper", || {
        let mut plan = MttkrpPlan::new(&pool, &fx.dims, RANK, n, AlgoChoice::Heuristic);
        plan.execute(&pool, &fx.x, &refs, &mut out);
    });
    let mut plan = MttkrpPlan::new(&pool, &fx.dims, RANK, n, AlgoChoice::Heuristic);
    group.bench("cached_plan", || {
        plan.execute(&pool, &fx.x, &refs, &mut out)
    });
}

fn ablation_dimtree() {
    let group = BenchGroup::new("ablation/dimtree");
    let pool = ThreadPool::host();
    let fx = MttkrpFixture::with_dims(&[24, 12, 24, 24]);
    let init = KruskalModel::random(&fx.dims, 16, 42);
    let opts = CpAlsOptions {
        max_iters: 1,
        tol: 0.0,
        strategy: MttkrpStrategy::Auto,
    };
    group.bench("standard", || {
        let _ = cp_als(&pool, &fx.x, init.clone(), &opts);
    });
    group.bench("dimtree", || {
        let _ = cp_als_dimtree(&pool, &fx.x, init.clone(), &opts);
    });
}

fn main() {
    ablation_krp_reuse();
    ablation_twostep_side();
    ablation_alg2_vs_alg3_seq();
    ablation_plan_reuse();
    ablation_dimtree();
}
