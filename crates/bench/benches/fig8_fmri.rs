//! Figure 8: MTTKRP algorithm comparison per mode on fMRI-shaped
//! tensors, whose wildly differing mode sizes (few subjects, many
//! region pairs) expose the KRP cost of small modes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mttkrp_bench::{MttkrpFixture, RANK};
use mttkrp_core::{mttkrp_1step, mttkrp_2step, mttkrp_explicit};
use mttkrp_parallel::ThreadPool;

fn bench_fig8(criterion: &mut Criterion) {
    let pool = ThreadPool::host();
    // Scaled versions of the paper's 225×59×200×200 and 225×59×19900.
    let shapes: [(&str, Vec<usize>); 2] = [("4d", vec![48, 12, 40, 40]), ("3d", vec![48, 12, 780])];

    for (label, dims) in shapes {
        let fx = MttkrpFixture::with_dims(&dims);
        let refs = fx.refs();
        let nmodes = dims.len();
        let mut group = criterion.benchmark_group(format!("fig8/{label}"));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(400));
        group.measurement_time(std::time::Duration::from_millis(1500));
        for n in 0..nmodes {
            let mut out = vec![0.0; dims[n] * RANK];
            group.bench_function(BenchmarkId::new("explicit", n), |b| {
                b.iter(|| mttkrp_explicit(&pool, &fx.x, &refs, n, &mut out))
            });
            group.bench_function(BenchmarkId::new("1step", n), |b| {
                b.iter(|| mttkrp_1step(&pool, &fx.x, &refs, n, &mut out))
            });
            if n > 0 && n < nmodes - 1 {
                group.bench_function(BenchmarkId::new("2step", n), |b| {
                    b.iter(|| mttkrp_2step(&pool, &fx.x, &refs, n, &mut out))
                });
            }
        }
        group.finish();
    }
}

criterion_group!(fig8, bench_fig8);
criterion_main!(fig8);
