//! Figure 8: MTTKRP algorithm comparison per mode on fMRI-shaped
//! tensors, whose wildly differing mode sizes (few subjects, many
//! region pairs) expose the KRP cost of small modes.

use mttkrp_bench::{BenchGroup, MttkrpFixture, RANK};
use mttkrp_core::{mttkrp_1step, mttkrp_2step, mttkrp_explicit};
use mttkrp_parallel::ThreadPool;

fn main() {
    let pool = ThreadPool::host();
    // Scaled versions of the paper's 225×59×200×200 and 225×59×19900.
    let shapes: [(&str, Vec<usize>); 2] = [("4d", vec![48, 12, 40, 40]), ("3d", vec![48, 12, 780])];

    for (label, dims) in shapes {
        let fx = MttkrpFixture::with_dims(&dims);
        let refs = fx.refs();
        let nmodes = dims.len();
        let group = BenchGroup::new(format!("fig8/{label}"));
        for n in 0..nmodes {
            let mut out = vec![0.0; dims[n] * RANK];
            group.bench(&format!("explicit/{n}"), || {
                mttkrp_explicit(&pool, &fx.x, &refs, n, &mut out)
            });
            group.bench(&format!("1step/{n}"), || {
                mttkrp_1step(&pool, &fx.x, &refs, n, &mut out)
            });
            if n > 0 && n < nmodes - 1 {
                group.bench(&format!("2step/{n}"), || {
                    mttkrp_2step(&pool, &fx.x, &refs, n, &mut out)
                });
            }
        }
    }
}
