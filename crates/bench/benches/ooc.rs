//! Out-of-core tile-size sweep: streaming MTTKRP throughput against
//! the in-core planned kernel on the same tensor, across a ladder of
//! tile sizes (whole tensor down to 1/16), reporting how much of the
//! tile I/O the double-buffer prefetch hid.
//!
//! Per configuration two extra CSV-ish lines accompany the timings:
//!
//! ```text
//! ooc/<frac>/io_overlap,<io_wait_s>,<efficiency>
//! ```
//!
//! where efficiency = 1 − io_wait / streaming_time (1.0 = compute
//! fully hid the I/O).

use mttkrp_bench::{BenchGroup, MttkrpFixture, RANK};
use mttkrp_core::{AlgoChoice, MttkrpBackend};
use mttkrp_ooc::{OocTensor, TileStore, TiledLayout};
use mttkrp_parallel::ThreadPool;

const ENTRIES: usize = 2_000_000;
/// Budget denominators swept: tensor/2 … tensor/16 resident.
const FRACTIONS: [usize; 4] = [2, 4, 8, 16];

fn main() {
    let pool = ThreadPool::host();
    let fx = MttkrpFixture::equal(3, ENTRIES);
    let refs = fx.refs();
    let tensor_bytes = 8 * fx.x.len();

    // In-core reference.
    let group = BenchGroup::new("ooc/in_core");
    let mut plans = MttkrpBackend::plan_modes(&fx.x, &pool, RANK, Some(AlgoChoice::Heuristic));
    for n in 0..fx.dims.len() {
        let mut out = vec![0.0; fx.dims[n] * RANK];
        group.bench(&format!("planned/{n}"), || {
            fx.x.mttkrp_planned(&mut plans, &pool, &refs, n, &mut out);
        });
    }

    for &frac in &FRACTIONS {
        let budget = tensor_bytes / frac;
        let layout = TiledLayout::for_budget(&fx.dims, budget);
        let path = std::env::temp_dir().join(format!(
            "mttkrp_bench_ooc_{}_{frac}.mttb",
            std::process::id()
        ));
        let store = TileStore::write_dense(&path, &layout, &fx.x).expect("store build");
        let ooc = OocTensor::from_store(store).expect("store open");
        let group = BenchGroup::new(format!(
            "ooc/budget_1_{frac} ({} tiles of {} KB)",
            layout.ntiles(),
            (8 * layout.max_tile_entries()) >> 10
        ));
        let mut plans = ooc.plan_modes(&pool, RANK, Some(AlgoChoice::Heuristic));
        let mut wait_sum = 0.0;
        let mut time_sum = 0.0;
        for n in 0..fx.dims.len() {
            let mut out = vec![0.0; fx.dims[n] * RANK];
            group.bench(&format!("streaming/{n}"), || {
                ooc.mttkrp_planned(&mut plans, &pool, &refs, n, &mut out);
            });
            // One more timed call for the overlap figure (the bench
            // timer only reports medians, not the matching io-wait).
            let t0 = std::time::Instant::now();
            ooc.mttkrp_planned(&mut plans, &pool, &refs, n, &mut out);
            time_sum += t0.elapsed().as_secs_f64();
            wait_sum += plans.last_io_wait();
        }
        println!(
            "ooc/budget_1_{frac}/io_overlap,{wait_sum:.6},{:.3}",
            1.0 - wait_sum / time_sum.max(1e-12)
        );
        drop(plans);
        drop(ooc);
        std::fs::remove_file(&path).ok();
    }
}
