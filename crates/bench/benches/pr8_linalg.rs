//! PR 8 trajectory record: the rewritten factorization stack — written
//! to `BENCH_pr8.json` via the shared [`BenchReport`] builder (schema
//! in docs/FORMATS.md).
//!
//! Two comparisons, per dtype on the active kernel tier:
//!
//! 1. **Blocked vs unblocked Cholesky.** The right-looking blocked
//!    factorization routes its trailing update through the tiered GEMM
//!    kernels; the unblocked column sweep is the scalar baseline.
//!    Acceptance (full runs on the avx512 tier): ≥ 2× at n = 512 f64.
//! 2. **Tridiagonal-QR EVD vs the Jacobi oracle.** `sym_evd_in`
//!    (Householder tridiagonalization + implicit-shift QL) against
//!    `jacobi_eigh_in`, the f64 oracle it replaced on the Gram solve
//!    escalation path. Acceptance (full runs): faster at every
//!    n ≥ 128.
//!
//! Env knobs: `MTTKRP_BENCH_SMOKE=1` shrinks the sizes,
//! `MTTKRP_BENCH_OUT` overrides the output path,
//! `MTTKRP_BENCH_SAMPLES` the per-measurement sample count.

use mttkrp_bench::sample_min;
use mttkrp_blas::{kernels, Layout, MatMut, Scalar};
use mttkrp_linalg::{
    cholesky_in_place_with, cholesky_unblocked, jacobi_eigh_in, sym_evd_in, CHOL_PANEL,
};
use mttkrp_obs::BenchReport;
use mttkrp_rng::Rng64;

const SAMPLES: usize = 5;

fn samples() -> usize {
    std::env::var("MTTKRP_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(SAMPLES)
}

/// Column-major SPD fixture `B·Bᵀ + n·I` with seeded uniform `B`.
fn spd_f64(rng: &mut Rng64, n: usize) -> Vec<f64> {
    let b: Vec<f64> = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();
    let mut a = vec![0.0; n * n];
    for j in 0..n {
        for p in 0..n {
            let bjp = b[j + p * n];
            for i in 0..n {
                a[i + j * n] += b[i + p * n] * bjp;
            }
        }
    }
    for i in 0..n {
        a[i + i * n] += n as f64;
    }
    a
}

/// Cholesky flop count `n³/3` in GFLOP.
fn chol_gflop(n: usize) -> f64 {
    (n as f64).powi(3) / 3.0 / 1e9
}

/// Time blocked and unblocked Cholesky on one SPD fixture; returns
/// `(blocked_secs, unblocked_secs)`. The per-sample copy-in is O(n²),
/// negligible against the O(n³) factorization it resets.
fn time_chol<S: Scalar>(a64: &[f64], n: usize, n_samples: usize) -> (f64, f64) {
    let a: Vec<S> = a64.iter().map(|&v| S::from_f64(v)).collect();
    let mut work = vec![S::ZERO; n * n];
    let ks = kernels::<S>();
    let blocked = sample_min(n_samples, || {
        work.copy_from_slice(&a);
        cholesky_in_place_with(
            ks,
            MatMut::from_slice(&mut work, n, n, Layout::ColMajor),
            CHOL_PANEL,
        )
        .expect("SPD fixture must factor");
    });
    let unblocked = sample_min(n_samples, || {
        work.copy_from_slice(&a);
        cholesky_unblocked(MatMut::from_slice(&mut work, n, n, Layout::ColMajor))
            .expect("SPD fixture must factor");
    });
    (blocked, unblocked)
}

fn main() {
    let smoke = std::env::var("MTTKRP_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let n_samples = samples();
    let chol_sizes: &[usize] = if smoke {
        &[64, 128]
    } else {
        &[64, 128, 256, 512, 1024]
    };
    let evd_sizes: &[usize] = if smoke {
        &[32, 64]
    } else {
        &[64, 128, 256, 512]
    };
    let tier = kernels::<f64>().tier().name();

    let mut report = BenchReport::new(8);
    report
        .scalar("smoke", smoke)
        .scalar("samples", n_samples)
        .scalar("tier", tier)
        .scalar("chol_panel", CHOL_PANEL);

    let mut rng = Rng64::seed_from_u64(0xB8C8_0008);
    let mut speedup_512_f64 = f64::NAN;
    for &n in chol_sizes {
        let a = spd_f64(&mut rng, n);
        for dtype in ["f64", "f32"] {
            let (blocked, unblocked) = if dtype == "f64" {
                time_chol::<f64>(&a, n, n_samples)
            } else {
                time_chol::<f32>(&a, n, n_samples)
            };
            let speedup = unblocked / blocked;
            if dtype == "f64" && n == 512 {
                speedup_512_f64 = speedup;
            }
            report
                .row("cholesky")
                .field("dtype", dtype)
                .field("tier", tier)
                .field("n", n)
                .field("blocked_seconds", blocked)
                .field("unblocked_seconds", unblocked)
                .field("speedup", speedup)
                .field("blocked_gflops", chol_gflop(n) / blocked);
            println!(
                "cholesky {dtype} n={n}: blocked {blocked:.3e}s ({:.2} GFLOP/s), \
                 unblocked {unblocked:.3e}s, speedup x{speedup:.2}",
                chol_gflop(n) / blocked
            );
        }
    }

    let mut evd_slower_at = Vec::new();
    for &n in evd_sizes {
        let a = spd_f64(&mut rng, n);
        // f64: head-to-head against the Jacobi oracle it replaced.
        let mut work = vec![0.0f64; n * n];
        let mut w = vec![0.0f64; n];
        let mut e = vec![0.0f64; n];
        let evd = sample_min(n_samples, || {
            work.copy_from_slice(&a);
            sym_evd_in(
                MatMut::from_slice(&mut work, n, n, Layout::ColMajor),
                &mut w,
                &mut e,
            )
            .expect("EVD must converge");
        });
        let mut v = vec![0.0f64; n * n];
        let jacobi = sample_min(n_samples, || {
            work.copy_from_slice(&a);
            jacobi_eigh_in(&mut work, n, &mut w, &mut v).expect("Jacobi must converge");
        });
        let speedup = jacobi / evd;
        if n >= 128 && evd >= jacobi {
            evd_slower_at.push(n);
        }
        report
            .row("evd")
            .field("dtype", "f64")
            .field("n", n)
            .field("evd_seconds", evd)
            .field("jacobi_seconds", jacobi)
            .field("speedup", speedup);
        println!("evd f64 n={n}: tridiag-QL {evd:.3e}s, jacobi {jacobi:.3e}s, x{speedup:.2}");

        // f32: no oracle counterpart (Jacobi is f64-only); record the
        // throughput row for the dtype-scaling trend.
        let a32: Vec<f32> = a.iter().map(|&x| x as f32).collect();
        let mut work32 = vec![0.0f32; n * n];
        let mut w32 = vec![0.0f32; n];
        let mut e32 = vec![0.0f32; n];
        let evd32 = sample_min(n_samples, || {
            work32.copy_from_slice(&a32);
            sym_evd_in(
                MatMut::from_slice(&mut work32, n, n, Layout::ColMajor),
                &mut w32,
                &mut e32,
            )
            .expect("EVD must converge");
        });
        report
            .row("evd")
            .field("dtype", "f32")
            .field("n", n)
            .field("evd_seconds", evd32)
            .field("speedup_vs_f64", evd / evd32);
    }

    let chol_target_applies = !smoke && tier == "avx512";
    let chol_met = !chol_target_applies || speedup_512_f64 >= 2.0;
    let evd_met = smoke || evd_slower_at.is_empty();
    report
        .row("acceptance")
        .field("chol_speedup_512_f64", speedup_512_f64)
        .field("chol_target_applies", chol_target_applies)
        .field("chol_speedup_met", chol_met)
        .field("evd_beats_jacobi_from_128", evd_slower_at.is_empty())
        .field("evd_target_met", evd_met);

    let out = BenchReport::out_path(&format!(
        "{}/../../BENCH_pr8.json",
        env!("CARGO_MANIFEST_DIR")
    ));
    report.save(&out).expect("write BENCH_pr8.json");
    print!("{}", report.to_json());
    eprintln!("# wrote {out}");

    assert!(
        chol_met,
        "blocked Cholesky speedup at n=512 f64 is x{speedup_512_f64:.2}, target >= 2.0"
    );
    assert!(
        evd_met,
        "tridiagonal-QL EVD slower than Jacobi at n = {evd_slower_at:?}"
    );
}
