//! Figure 7: CP-ALS per-iteration time — our dispatcher (1-step
//! external / 2-step internal) vs the Tensor-Toolbox-style explicit
//! baseline, on scaled fMRI-shaped tensors over the paper's rank sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mttkrp_cpals::{cp_als, CpAlsOptions, KruskalModel, MttkrpStrategy};
use mttkrp_parallel::ThreadPool;
use mttkrp_workloads::{linearize_symmetric, FmriConfig};

fn bench_fig7(criterion: &mut Criterion) {
    let pool = ThreadPool::host();
    let cfg = FmriConfig {
        time: 32,
        subjects: 8,
        regions: 32,
        latent: 5,
        window: 10,
        seed: 1,
    };
    let x4 = cfg.generate_4way();
    let x3 = linearize_symmetric(&x4);

    for (label, x) in [("4d", &x4), ("3d", &x3)] {
        let mut group = criterion.benchmark_group(format!("fig7/{label}"));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(400));
        group.measurement_time(std::time::Duration::from_millis(1500));
        for &rank in &[10usize, 20, 30] {
            let init = KruskalModel::random(x.dims(), rank, 42);
            for (name, strategy) in [
                ("ours", MttkrpStrategy::Auto),
                ("ttb_style", MttkrpStrategy::Explicit),
            ] {
                let opts = CpAlsOptions {
                    max_iters: 1,
                    tol: 0.0,
                    strategy,
                };
                group.bench_function(BenchmarkId::new(name, rank), |b| {
                    b.iter(|| cp_als(&pool, x, init.clone(), &opts))
                });
            }
        }
        group.finish();
    }
}

criterion_group!(fig7, bench_fig7);
criterion_main!(fig7);
