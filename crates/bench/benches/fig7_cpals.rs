//! Figure 7: CP-ALS per-iteration time — our dispatcher (1-step
//! external / 2-step internal) vs the Tensor-Toolbox-style explicit
//! baseline, on scaled fMRI-shaped tensors over the paper's rank sweep.

use mttkrp_bench::BenchGroup;
use mttkrp_cpals::{cp_als, CpAlsOptions, KruskalModel, MttkrpStrategy};
use mttkrp_parallel::ThreadPool;
use mttkrp_workloads::{linearize_symmetric, FmriConfig};

fn main() {
    let pool = ThreadPool::host();
    let cfg = FmriConfig {
        time: 32,
        subjects: 8,
        regions: 32,
        latent: 5,
        window: 10,
        seed: 1,
    };
    let x4 = cfg.generate_4way();
    let x3 = linearize_symmetric(&x4);

    for (label, x) in [("4d", &x4), ("3d", &x3)] {
        let group = BenchGroup::new(format!("fig7/{label}"));
        for &rank in &[10usize, 20, 30] {
            let init = KruskalModel::random(x.dims(), rank, 42);
            for (name, strategy) in [
                ("ours", MttkrpStrategy::Auto),
                ("ttb_style", MttkrpStrategy::Explicit),
            ] {
                let opts = CpAlsOptions {
                    max_iters: 1,
                    tol: 0.0,
                    strategy,
                };
                group.bench(&format!("{name}/{rank}"), || {
                    let _ = cp_als(&pool, x, init.clone(), &opts);
                });
            }
        }
    }
}
