//! Figure 6: the phase composition comparison — explicit baseline
//! (reorder + full KRP + GEMM) vs the reorder-free algorithms, plus the
//! isolated phase kernels (reorder pass, full KRP, reduction) whose
//! relative costs Figure 6 decomposes.

use mttkrp_bench::{BenchGroup, MttkrpFixture, RANK};
use mttkrp_blas::Layout;
use mttkrp_core::{mttkrp_1step, mttkrp_explicit};
use mttkrp_krp::par_krp;
use mttkrp_parallel::{reduce, ThreadPool};

const ENTRIES: usize = 2_000_000;

fn main() {
    let pool = ThreadPool::host();
    let fx = MttkrpFixture::equal(4, ENTRIES);
    let refs = fx.refs();
    let n = 1; // internal mode

    let group = BenchGroup::new("fig6");
    let mut out = vec![0.0; fx.dims[n] * RANK];
    group.bench("explicit_baseline_total", || {
        mttkrp_explicit(&pool, &fx.x, &refs, n, &mut out)
    });
    group.bench("1step_total", || {
        mttkrp_1step(&pool, &fx.x, &refs, n, &mut out)
    });

    // Isolated phases.
    group.bench("phase/reorder", || {
        let _ = fx.x.materialize_unfolding(n, Layout::ColMajor);
    });
    let krp_inputs: Vec<_> = refs
        .iter()
        .enumerate()
        .rev()
        .filter(|&(k, _)| k != n)
        .map(|(_, &f)| f)
        .collect();
    let j: usize = krp_inputs.iter().map(|m| m.nrows()).product();
    let mut krp_out = vec![0.0; j * RANK];
    group.bench("phase/full_krp", || {
        par_krp(&pool, &krp_inputs, &mut krp_out)
    });

    let parts: Vec<Vec<f64>> = (0..4).map(|p| vec![p as f64; fx.dims[n] * RANK]).collect();
    let part_refs: Vec<&[f64]> = parts.iter().map(|v| v.as_slice()).collect();
    group.bench("phase/reduce", || {
        reduce::sum_into(&pool, &mut out, &part_refs)
    });
}
