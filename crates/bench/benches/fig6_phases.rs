//! Figure 6: the phase composition comparison — explicit baseline
//! (reorder + full KRP + GEMM) vs the reorder-free algorithms, plus the
//! isolated phase kernels (reorder pass, full KRP, reduction) whose
//! relative costs Figure 6 decomposes.

use criterion::{criterion_group, criterion_main, Criterion};
use mttkrp_bench::{MttkrpFixture, RANK};
use mttkrp_blas::Layout;
use mttkrp_core::{mttkrp_1step, mttkrp_explicit};
use mttkrp_krp::par_krp;
use mttkrp_parallel::{reduce, ThreadPool};

const ENTRIES: usize = 2_000_000;

fn bench_fig6(criterion: &mut Criterion) {
    let pool = ThreadPool::host();
    let fx = MttkrpFixture::equal(4, ENTRIES);
    let refs = fx.refs();
    let n = 1; // internal mode

    let mut group = criterion.benchmark_group("fig6");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1500));
    let mut out = vec![0.0; fx.dims[n] * RANK];
    group.bench_function("explicit_baseline_total", |b| {
        b.iter(|| mttkrp_explicit(&pool, &fx.x, &refs, n, &mut out))
    });
    group.bench_function("1step_total", |b| {
        b.iter(|| mttkrp_1step(&pool, &fx.x, &refs, n, &mut out))
    });

    // Isolated phases.
    group.bench_function("phase/reorder", |b| {
        b.iter(|| fx.x.materialize_unfolding(n, Layout::ColMajor))
    });
    let krp_inputs: Vec<_> = refs
        .iter()
        .enumerate()
        .rev()
        .filter(|&(k, _)| k != n)
        .map(|(_, &f)| f)
        .collect();
    let j: usize = krp_inputs.iter().map(|m| m.nrows()).product();
    let mut krp_out = vec![0.0; j * RANK];
    group.bench_function("phase/full_krp", |b| {
        b.iter(|| par_krp(&pool, &krp_inputs, &mut krp_out))
    });

    let parts: Vec<Vec<f64>> = (0..4).map(|p| vec![p as f64; fx.dims[n] * RANK]).collect();
    let part_refs: Vec<&[f64]> = parts.iter().map(|v| v.as_slice()).collect();
    group.bench_function("phase/reduce", |b| {
        b.iter(|| reduce::sum_into(&pool, &mut out, &part_refs))
    });
    group.finish();
}

criterion_group!(fig6, bench_fig6);
criterion_main!(fig6);
