//! PR 7 trajectory record: the observability layer's cost — written to
//! `BENCH_pr7.json` via the shared [`BenchReport`] builder (schema in
//! docs/FORMATS.md).
//!
//! Two questions, answered per algorithm on an internal mode:
//!
//! 1. **What does a disabled probe cost?** Every span site in the
//!    instrumented build pays one relaxed atomic load when tracing is
//!    off, and every GEMM call one more for the metrics gate. The
//!    bench microbenchmarks the per-check cost, counts the checks one
//!    planned execution actually performs (spans seen at `full` level
//!    plus GEMM calls from the metrics counters), and asserts the
//!    product stays ≤ 2% of the execution's off-level wall time — the
//!    "instrumented build is indistinguishable" acceptance bound,
//!    computed from measured quantities rather than a second binary.
//! 2. **What does an *enabled* trace cost?** The same executions are
//!    measured at `off`, `spans`, and `full` levels; the ratios are
//!    recorded (not asserted — enabled tracing is allowed to cost).
//!
//! Env knobs: `MTTKRP_BENCH_SMOKE=1` shrinks the fixture,
//! `MTTKRP_BENCH_OUT` overrides the output path,
//! `MTTKRP_BENCH_SAMPLES` the per-measurement sample count.

use mttkrp_bench::{sample_min, MttkrpFixture, RANK};
use mttkrp_core::{AlgoChoice, MttkrpPlan, TwoStepSide};
use mttkrp_obs::{
    registry, set_metrics_enabled, set_trace_level, take_spans, BenchReport, SpanGuard, TraceLevel,
};
use mttkrp_parallel::ThreadPool;

const SAMPLES: usize = 7;
const OFF_OVERHEAD_BOUND: f64 = 0.02;

fn samples() -> usize {
    std::env::var("MTTKRP_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(SAMPLES)
}

/// Nanoseconds one disabled span probe costs: the relaxed level load
/// plus the branch, measured over a tight loop of real guard sites.
fn disabled_check_ns() -> f64 {
    set_trace_level(TraceLevel::Off);
    let iters: u64 = 16_000_000;
    // Warm the branch predictor and the level cacheline.
    for _ in 0..10_000 {
        let g = SpanGuard::enter(TraceLevel::Spans, "probe", "mttkrp-bench", "", 0);
        std::hint::black_box(&g);
    }
    let t0 = std::time::Instant::now();
    for i in 0..iters {
        let g = SpanGuard::enter(
            TraceLevel::Spans,
            "probe",
            "mttkrp-bench",
            "i",
            i as i64, // varying payload keeps the guard from folding away
        );
        std::hint::black_box(&g);
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

/// Total GEMM calls recorded so far, summed over kernel tiers.
fn gemm_calls() -> u64 {
    ["scalar", "avx2", "avx512", "neon"]
        .iter()
        .map(|t| registry().counter(&format!("blas.gemm_calls.{t}")).value())
        .sum()
}

fn main() {
    let smoke = std::env::var("MTTKRP_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let entries = if smoke { 60_000 } else { 2_000_000 };
    let host = ThreadPool::host();
    let fx = MttkrpFixture::equal(3, entries);
    let dims = fx.dims.clone();
    let refs = fx.refs();
    let n = 1; // internal mode: every algorithm (incl. 2-step) applies
    let n_samples = samples();
    let gb = (fx.x.len() as f64) * 8.0 / 1e9;

    let mut report = BenchReport::new(7);
    report
        .scalar("rank", RANK)
        .scalar(
            "dims",
            dims.iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("x"),
        )
        .scalar("smoke", smoke)
        .scalar("host_threads", host.num_threads())
        .scalar("mode", n);

    let per_check_ns = disabled_check_ns();
    report.scalar("disabled_check_ns", per_check_ns);

    let algos: &[(&str, AlgoChoice)] = &[
        ("1step", AlgoChoice::OneStep),
        ("2step", AlgoChoice::TwoStep(TwoStepSide::Auto)),
        ("fused", AlgoChoice::Fused),
    ];
    let levels = [TraceLevel::Off, TraceLevel::Spans, TraceLevel::Full];

    let mut all_met = true;
    for &(name, choice) in algos {
        let mut plan = MttkrpPlan::new(&host, &dims, RANK, n, choice);
        let mut out = vec![0.0; dims[n] * RANK];
        plan.execute(&host, &fx.x, &refs, &mut out); // warm up buffers

        // Throughput at each trace level (metrics stay off so the two
        // gates are measured independently).
        set_metrics_enabled(false);
        let mut secs_at = [0.0f64; 3];
        for (i, &level) in levels.iter().enumerate() {
            set_trace_level(level);
            secs_at[i] = sample_min(n_samples, || plan.execute(&host, &fx.x, &refs, &mut out));
            set_trace_level(TraceLevel::Off);
            let _ = take_spans(); // keep the span buffers from filling
            report
                .row("mttkrp")
                .field("algorithm", name)
                .field("level", level.name())
                .field("threads", host.num_threads())
                .field("seconds", secs_at[i])
                .field("gb_per_s", gb / secs_at[i]);
        }

        // Count the disabled checks one execution performs: span sites
        // seen at full level + the per-GEMM metrics gates.
        set_trace_level(TraceLevel::Full);
        let _ = take_spans();
        plan.execute(&host, &fx.x, &refs, &mut out);
        set_trace_level(TraceLevel::Off);
        let span_sites = take_spans().len() as u64;
        set_metrics_enabled(true);
        let calls_before = gemm_calls();
        plan.execute(&host, &fx.x, &refs, &mut out);
        let gemm_gates = gemm_calls() - calls_before;
        set_metrics_enabled(false);

        let checks = span_sites + gemm_gates;
        let off_secs = secs_at[0];
        let overhead_frac = (checks as f64 * per_check_ns * 1e-9) / off_secs;
        let met = overhead_frac <= OFF_OVERHEAD_BOUND;
        all_met &= met;
        report
            .row("off_overhead")
            .field("algorithm", name)
            .field("span_sites_per_execute", span_sites)
            .field("gemm_gates_per_execute", gemm_gates)
            .field("off_seconds", off_secs)
            .field("checks_cost_frac", overhead_frac)
            .field("spans_over_off", secs_at[1] / off_secs)
            .field("full_over_off", secs_at[2] / off_secs)
            .field("within_bound", met);
        println!(
            "{name}: off {off_secs:.3e}s, spans x{:.3}, full x{:.3}; \
             {checks} disabled checks = {:.4}% of off time (bound 2%)",
            secs_at[1] / off_secs,
            secs_at[2] / off_secs,
            100.0 * overhead_frac,
        );
    }

    report
        .row("acceptance")
        .field("off_overhead_bound", OFF_OVERHEAD_BOUND)
        .field("off_overhead_met", all_met);

    let out = BenchReport::out_path(&format!(
        "{}/../../BENCH_pr7.json",
        env!("CARGO_MANIFEST_DIR")
    ));
    report.save(&out).expect("write BENCH_pr7.json");
    print!("{}", report.to_json());
    eprintln!("# wrote {out}");

    assert!(
        all_met,
        "disabled-path observability overhead exceeds {:.0}%",
        100.0 * OFF_OVERHEAD_BOUND
    );
}
