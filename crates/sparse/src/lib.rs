//! Sparse tensor subsystem: COO ingestion, per-mode compressed sparse
//! fiber (CSF) storage, and planned parallel sparse MTTKRP.
//!
//! Most real CP-ALS workloads are sparse; this crate opens them up
//! without touching the dense machinery. It mirrors the dense design
//! point for point:
//!
//! * [`CooTensor`] — the ingestion/interchange type: a sorted,
//!   deduplicated (by summation), bounds-validated coordinate list.
//!   Disk codecs, generators, and densification all speak COO.
//! * [`CsfTensor`] — one compressed-sparse-fiber tree per mode, each
//!   rooted at that mode, so every mode's MTTKRP walks a tree whose
//!   root fibers own disjoint output rows (SPLATT's "allmode" layout).
//! * [`SparseMttkrpPlan`] / [`SparseMttkrpPlanSet`] — the plan/executor
//!   split: nnz-balanced static partitioning of root fibers over the
//!   `mttkrp_parallel::ThreadPool`, per-thread accumulators held in a
//!   reusable `Workspace` arena and merged by the existing
//!   element-range reduction. Zero steady-state heap allocation at one
//!   thread, no mutexes or atomics on the hot loop.
//! * `impl mttkrp_core::MttkrpBackend for CsfTensor` — the CP drivers
//!   in `mttkrp-cpals` (`cp_als`, `cp_gradient`) run unchanged on
//!   either dense or CSF tensors through the backend trait.
//!
//! # Example
//!
//! ```
//! use mttkrp_blas::{Layout, MatRef};
//! use mttkrp_parallel::ThreadPool;
//! use mttkrp_sparse::{sparse_mttkrp, CooTensor, CsfTensor};
//!
//! // 3 nonzeros of a 3 x 2 x 2 tensor, given in any order.
//! let coo = CooTensor::from_entries(
//!     &[3, 2, 2],
//!     vec![2, 1, 1, /**/ 0, 0, 0, /**/ 2, 1, 0],
//!     vec![5.0, 1.0, 2.0],
//! );
//! let csf = CsfTensor::from_coo(&coo);
//! let dims = [3usize, 2, 2];
//! let c = 2;
//! let factors: Vec<Vec<f64>> = dims.iter().map(|&d| vec![1.0; d * c]).collect();
//! let refs: Vec<MatRef> = factors
//!     .iter()
//!     .zip(&dims)
//!     .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
//!     .collect();
//! let pool = ThreadPool::new(2);
//! let mut m = vec![0.0; dims[0] * c];
//! sparse_mttkrp(&pool, &csf, &refs, 0, &mut m);
//! // All-ones factors: row i sums the nonzeros of slice X(i, :, :).
//! assert_eq!(m[0], 1.0);
//! assert_eq!(m[2 * c], 7.0);
//! ```

pub mod coo;
pub mod csf;
pub mod mttkrp;

pub use coo::CooTensor;
pub use csf::{CsfTensor, CsfTree};
pub use mttkrp::{sparse_mttkrp, SparseMttkrpPlan, SparseMttkrpPlanSet};
