//! Planned parallel sparse MTTKRP over CSF trees.
//!
//! Mirrors the dense plan/executor split (`mttkrp_core::MttkrpPlan`):
//! everything that depends only on the tensor *structure* — the
//! nnz-balanced static partition of root fibers across the team and
//! every per-thread buffer — is computed once in
//! [`SparseMttkrpPlan::new`] and reused by every
//! [`SparseMttkrpPlan::execute`]. Steady-state execution performs zero
//! heap allocation on a single-thread pool (the same counting-allocator
//! standard the dense plans meet) and only O(threads) bookkeeping
//! allocations otherwise.
//!
//! The kernel walks the mode-`n` CSF tree bottom-up: the contribution
//! of a subtree rooted at depth `d` is
//! `Σ_children U_{m_d}(i_child, :) ⊙ (subtree sum of the child)`,
//! with leaves contributing `v · U_{m_{N−1}}(i_leaf, :)` — so the
//! factor row of every shared fiber prefix is applied once per fiber,
//! not once per nonzero. Each thread owns a contiguous, nnz-balanced
//! range of root fibers and accumulates into its private `I_n × C`
//! workspace; the private outputs are merged by the same element-range
//! parallel reduction the dense kernels use
//! (`mttkrp_parallel::reduce::sum_into`). There are no atomics or
//! mutexes anywhere on the hot path: root-fiber ownership makes row
//! writes disjoint within a thread's walk, and the reduction touches
//! every output element exactly once.

use std::ops::Range;

use mttkrp_blas::{kernels, KernelSet, MatRef};
use mttkrp_core::Breakdown;
use mttkrp_parallel::{reduce, ThreadPool, Workspace};

use crate::csf::{CsfTensor, CsfTree};

/// Per-thread workspace of the sparse executor.
struct SparseSlot {
    /// Private `I_n × C` output accumulator. Rows this thread never
    /// owns stay zero from construction, so no per-call clearing is
    /// needed: owned rows are fully overwritten each execution.
    m: Vec<f64>,
    /// One `C`-vector of partial-Hadamard scratch per internal tree
    /// level (`N − 2` of them; none for matrices).
    scratch: Vec<Vec<f64>>,
}

/// A reusable execution plan for the mode-`n` sparse MTTKRP of one CSF
/// tensor on one thread-pool size. See the [module docs](self).
pub struct SparseMttkrpPlan {
    dims: Vec<usize>,
    c: usize,
    n: usize,
    threads: usize,
    /// Threads that actually receive fibers; see [`Self::team`].
    team: usize,
    nnz: usize,
    /// Root-fiber ids of the planned tree. Execution overwrites
    /// exactly these accumulator rows (all others stay zero from
    /// construction), so running against a tensor whose mode-`n` tree
    /// has different root ids would leave stale rows behind — the
    /// executor rejects it.
    root_fids: Vec<usize>,
    /// Static nnz-balanced contiguous root-fiber range per thread.
    fiber_ranges: Vec<Range<usize>>,
    ws: Workspace<SparseSlot>,
    /// Dispatched SIMD kernels for the leaf/internal accumulate loops,
    /// resolved at plan construction.
    kernels: KernelSet,
}

impl std::fmt::Debug for SparseMttkrpPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SparseMttkrpPlan")
            .field("dims", &self.dims)
            .field("c", &self.c)
            .field("n", &self.n)
            .field("threads", &self.threads)
            .field("team", &self.team)
            .field("nnz", &self.nnz)
            .field("fiber_ranges", &self.fiber_ranges)
            .finish()
    }
}

impl SparseMttkrpPlan {
    /// Plan the mode-`n` MTTKRP of `csf` at rank `c` on `pool`'s team:
    /// balance the root fibers of the mode-`n` tree over the threads by
    /// nonzero count and pre-allocate every per-thread buffer.
    ///
    /// # Panics
    /// Panics if `n` is out of range or `c == 0`.
    pub fn new(pool: &ThreadPool, csf: &CsfTensor, c: usize, n: usize) -> Self {
        Self::new_with_kernels(pool, csf, c, n, *kernels())
    }

    /// [`SparseMttkrpPlan::new`] with an explicit [`KernelSet`] (e.g. a
    /// forced tier for parity testing).
    pub fn new_with_kernels(
        pool: &ThreadPool,
        csf: &CsfTensor,
        c: usize,
        n: usize,
        ks: KernelSet,
    ) -> Self {
        let dims = csf.dims().to_vec();
        assert!(n < dims.len(), "mode {n} out of range");
        assert!(c > 0, "rank must be positive");
        let t = pool.num_threads();
        let tree = csf.tree(n);
        let counts = tree.root_fiber_nnz();
        let nf = counts.len();
        let nnz = csf.nnz();
        let i_n = dims[n];

        // Prefix nnz over fibers: cum[f] = nonzeros in fibers [0, f).
        let mut cum = Vec::with_capacity(nf + 1);
        cum.push(0usize);
        for &k in &counts {
            cum.push(cum.last().unwrap() + k);
        }

        // With a calibrated machine model installed (a loaded tuning
        // profile), cap the working team where the modeled walk time
        // plus the reduction of that many private `I_n × C` buffers is
        // minimized — for hypersparse tensors the merge dominates and
        // fewer accumulators win. Without a profile, use every thread
        // (the uncalibrated behavior).
        let team = mttkrp_machine::installed_machine()
            .map(|m| mttkrp_machine::sparse_team(m, i_n * c, c, nnz, t))
            .unwrap_or(t)
            .clamp(1, t);

        // Thread k < team takes fibers [b_k, b_{k+1}): the smallest
        // prefix whose nnz reaches k·nnz/team, clamped monotone;
        // threads beyond the team receive empty ranges. Fibers are
        // never split, so a single huge fiber caps balance — the price
        // of race-free row ownership.
        let mut bounds = vec![0usize; t + 1];
        for b in bounds.iter_mut().skip(team) {
            *b = nf;
        }
        for k in 1..team {
            let target = (k as u128 * nnz as u128).div_ceil(team as u128) as usize;
            bounds[k] = cum
                .partition_point(|&s| s < target)
                .clamp(bounds[k - 1], nf);
        }
        let fiber_ranges: Vec<Range<usize>> = (0..t).map(|k| bounds[k]..bounds[k + 1]).collect();
        let n_scratch = dims.len().saturating_sub(2);
        let ws = Workspace::new(t, |_| SparseSlot {
            m: vec![0.0; i_n * c],
            scratch: (0..n_scratch).map(|_| vec![0.0; c]).collect(),
        });

        SparseMttkrpPlan {
            dims,
            c,
            n,
            threads: t,
            team,
            nnz,
            root_fids: tree.fids[0].clone(),
            fiber_ranges,
            ws,
            kernels: ks,
        }
    }

    /// Number of threads that actually receive root fibers (and whose
    /// private accumulators the reduction merges). Equal to
    /// [`SparseMttkrpPlan::threads`] unless a calibrated machine model
    /// capped the team (see [`mttkrp_machine::sparse_team`]).
    #[inline]
    pub fn team(&self) -> usize {
        self.team
    }

    /// The kernel tier this plan's accumulate loops dispatch to.
    #[inline]
    pub fn kernel_tier(&self) -> mttkrp_blas::KernelTier {
        self.kernels.tier()
    }

    /// Tensor dimensions the plan was built for.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Decomposition rank `C`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.c
    }

    /// The planned mode.
    #[inline]
    pub fn mode(&self) -> usize {
        self.n
    }

    /// Team size the partition was computed for.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The per-thread root-fiber ranges (for tests and diagnostics).
    #[inline]
    pub fn fiber_ranges(&self) -> &[Range<usize>] {
        &self.fiber_ranges
    }

    /// Address of the first thread's private output buffer — exposed so
    /// tests can assert workspace-pointer stability across executions.
    pub fn workspace_ptr(&self) -> *const f64 {
        self.ws.slot(0).m.as_ptr()
    }

    /// Execute the planned sparse MTTKRP:
    /// `out ← X(n) · (⊙_{k≠n} U_k)`, row-major `I_n × C`, overwritten.
    ///
    /// # Panics
    /// Panics if `pool`, `csf`, `factors`, or `out` disagree with the
    /// planned shape/structure.
    pub fn execute(
        &mut self,
        pool: &ThreadPool,
        csf: &CsfTensor,
        factors: &[MatRef<'_>],
        out: &mut [f64],
    ) {
        let _ = self.execute_timed(pool, csf, factors, out);
    }

    /// [`SparseMttkrpPlan::execute`] returning the phase breakdown
    /// (tree walk reported as `dgemm` — the multiply/accumulate phase —
    /// plus `reduce` and `total`).
    pub fn execute_timed(
        &mut self,
        pool: &ThreadPool,
        csf: &CsfTensor,
        factors: &[MatRef<'_>],
        out: &mut [f64],
    ) -> Breakdown {
        assert_eq!(
            csf.dims(),
            &self.dims[..],
            "tensor shape differs from the planned shape"
        );
        assert_eq!(csf.nnz(), self.nnz, "tensor structure differs from plan");
        assert_eq!(
            pool.num_threads(),
            self.threads,
            "pool size differs from the planned team"
        );
        let c = self.c;
        assert_eq!(factors.len(), self.dims.len(), "one factor per mode");
        for (k, (f, &d)) in factors.iter().zip(&self.dims).enumerate() {
            assert_eq!(f.nrows(), d, "factor {k} must have I_{k} rows");
            assert_eq!(f.ncols(), c, "factor {k} must have C columns");
            assert_eq!(f.col_stride(), 1, "factor {k} must be row-contiguous");
        }
        let i_n = self.dims[self.n];
        assert_eq!(out.len(), i_n * c, "output must be I_n × C");
        let tree = csf.tree(self.n);
        assert_eq!(
            tree.fids[0], self.root_fids,
            "tensor structure differs from plan (root fibers changed)"
        );

        let _span = mttkrp_obs::span!("sparse_mttkrp", mode = self.n);
        let total_t0 = std::time::Instant::now();
        let mut bd = Breakdown::default();

        let walk_t0 = std::time::Instant::now();
        let walk_span = mttkrp_obs::span_full!("tree_walk");
        let ranges = &self.fiber_ranges;
        let ks = &self.kernels;
        pool.run_with_workspace(&mut self.ws, |ctx, slot| {
            for f in ranges[ctx.thread_id].clone() {
                let row = tree.fids[0][f];
                let dst = &mut slot.m[row * c..(row + 1) * c];
                subtree_into(
                    ks,
                    tree,
                    1,
                    tree.fptr[0][f]..tree.fptr[0][f + 1],
                    factors,
                    &mut slot.scratch,
                    dst,
                );
            }
        });
        drop(walk_span);
        bd.dgemm = walk_t0.elapsed().as_secs_f64();

        let reduce_t0 = std::time::Instant::now();
        let _reduce_span = mttkrp_obs::span_full!("reduce");
        // Only the first `team` slots ever receive fibers; merging the
        // untouched all-zero accumulators beyond them would waste
        // exactly the bandwidth the team cap was chosen to save.
        let slots = &self.ws.slots()[..self.team];
        if slots.len() == 1 {
            out.copy_from_slice(&slots[0].m);
        } else {
            out.fill(0.0);
            let parts: Vec<&[f64]> = slots.iter().map(|s| s.m.as_slice()).collect();
            reduce::sum_into(pool, out, &parts);
        }
        bd.reduce = reduce_t0.elapsed().as_secs_f64();

        bd.total = total_t0.elapsed().as_secs_f64();
        bd
    }
}

/// Overwrite `out` (length `C`) with the MTTKRP contribution of the
/// depth-`depth` nodes in `range` and everything below them:
/// `out = Σ_j U_{m_depth}(fids[depth][j], :) ⊙ subtree(j)`, with leaf
/// subtrees contributing their value. Allocation-free: recursion
/// consumes one pre-allocated scratch vector per internal level. The
/// leaf accumulate is the dispatched `axpy` and the internal-node
/// combine the dispatched fused `mul_add`.
fn subtree_into(
    ks: &KernelSet,
    tree: &CsfTree,
    depth: usize,
    range: Range<usize>,
    factors: &[MatRef<'_>],
    scratch: &mut [Vec<f64>],
    out: &mut [f64],
) {
    out.fill(0.0);
    let u = factors[tree.order[depth]];
    if depth == tree.fids.len() - 1 {
        for j in range {
            // out += vals[j] · U(i_leaf, :)
            (ks.axpy)(tree.vals[j], u.row_slice(tree.fids[depth][j]), out);
        }
    } else {
        let (acc, rest) = scratch.split_first_mut().expect("scratch per level");
        for j in range {
            subtree_into(
                ks,
                tree,
                depth + 1,
                tree.fptr[depth][j]..tree.fptr[depth][j + 1],
                factors,
                rest,
                acc,
            );
            // out += subtree(j) ⊙ U(i_node, :)
            (ks.mul_add)(acc, u.row_slice(tree.fids[depth][j]), out);
        }
    }
}

/// One-shot wrapper: build a plan, run it once, drop it — the sparse
/// analogue of the dense `mttkrp_auto` free function. Iterative
/// drivers should hold a [`SparseMttkrpPlan`] (or
/// [`SparseMttkrpPlanSet`]) instead.
pub fn sparse_mttkrp(
    pool: &ThreadPool,
    csf: &CsfTensor,
    factors: &[MatRef<'_>],
    n: usize,
    out: &mut [f64],
) {
    assert!(!factors.is_empty(), "need at least one factor");
    let c = factors[0].ncols();
    SparseMttkrpPlan::new(pool, csf, c, n).execute(pool, csf, factors, out);
}

/// One plan per mode — what backend-generic CP-ALS builds once per
/// model and reuses every sweep.
#[derive(Debug)]
pub struct SparseMttkrpPlanSet {
    plans: Vec<SparseMttkrpPlan>,
}

impl SparseMttkrpPlanSet {
    /// Plan every mode of `csf` at rank `c` on `pool`'s team.
    pub fn new(pool: &ThreadPool, csf: &CsfTensor, c: usize) -> Self {
        let plans = (0..csf.order())
            .map(|n| SparseMttkrpPlan::new(pool, csf, c, n))
            .collect();
        SparseMttkrpPlanSet { plans }
    }

    /// Number of planned modes.
    #[inline]
    pub fn nmodes(&self) -> usize {
        self.plans.len()
    }

    /// The plan for mode `n`.
    #[inline]
    pub fn plan(&self, n: usize) -> &SparseMttkrpPlan {
        &self.plans[n]
    }

    /// Execute the mode-`n` plan.
    pub fn execute(
        &mut self,
        pool: &ThreadPool,
        csf: &CsfTensor,
        factors: &[MatRef<'_>],
        n: usize,
        out: &mut [f64],
    ) {
        self.plans[n].execute(pool, csf, factors, out);
    }

    /// Execute the mode-`n` plan, returning the phase breakdown.
    pub fn execute_timed(
        &mut self,
        pool: &ThreadPool,
        csf: &CsfTensor,
        factors: &[MatRef<'_>],
        n: usize,
        out: &mut [f64],
    ) -> Breakdown {
        self.plans[n].execute_timed(pool, csf, factors, out)
    }
}

impl mttkrp_core::MttkrpBackend for CsfTensor {
    type Elem = f64;
    type PlanSet = SparseMttkrpPlanSet;

    fn dims(&self) -> &[usize] {
        CsfTensor::dims(self)
    }

    fn norm(&self) -> f64 {
        CsfTensor::norm(self)
    }

    /// Sparse MTTKRP has a single tree-walk kernel per mode, so the
    /// dense `AlgoChoice` (including the explicit-baseline request) is
    /// ignored.
    fn plan_modes(
        &self,
        pool: &ThreadPool,
        c: usize,
        _choice: Option<mttkrp_core::AlgoChoice>,
    ) -> SparseMttkrpPlanSet {
        SparseMttkrpPlanSet::new(pool, self, c)
    }

    fn mttkrp_planned(
        &self,
        plans: &mut SparseMttkrpPlanSet,
        pool: &ThreadPool,
        factors: &[MatRef<'_>],
        n: usize,
        out: &mut [f64],
    ) -> Breakdown {
        plans.execute_timed(pool, self, factors, n, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooTensor;
    use mttkrp_blas::Layout;
    use mttkrp_core::mttkrp_oracle;
    use mttkrp_rng::Rng64;

    fn rand_vec(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Rng64::seed_from_u64(seed);
        (0..n).map(|_| rng.next_f64() - 0.5).collect()
    }

    /// Random sparse tensor: `nnz` draws with duplicates merged.
    fn rand_coo(dims: &[usize], nnz: usize, seed: u64) -> CooTensor {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut inds = Vec::with_capacity(nnz * dims.len());
        let mut vals = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            for &d in dims {
                inds.push(rng.usize_below(d));
            }
            vals.push(rng.next_f64() - 0.5);
        }
        CooTensor::from_entries(dims, inds, vals)
    }

    fn factor_refs<'a>(factors: &'a [Vec<f64>], dims: &[usize], c: usize) -> Vec<MatRef<'a>> {
        factors
            .iter()
            .zip(dims)
            .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
            .collect()
    }

    #[test]
    fn matches_dense_oracle_all_modes_orders_and_teams() {
        for dims in [
            vec![5usize, 4],
            vec![6, 5, 4],
            vec![4, 3, 3, 2],
            vec![3, 2, 3, 2, 2],
        ] {
            let total: usize = dims.iter().product();
            let coo = rand_coo(&dims, total / 2, 0xC0FFEE);
            let csf = CsfTensor::from_coo(&coo);
            let dense = coo.to_dense();
            let c = 3;
            let factors: Vec<Vec<f64>> = dims
                .iter()
                .enumerate()
                .map(|(k, &d)| rand_vec(d * c, k as u64 + 5))
                .collect();
            let refs = factor_refs(&factors, &dims, c);
            for t in [1usize, 2, 5] {
                let pool = ThreadPool::new(t);
                for n in 0..dims.len() {
                    let mut want = vec![0.0; dims[n] * c];
                    mttkrp_oracle(&dense, &refs, n, &mut want);
                    let mut plan = SparseMttkrpPlan::new(&pool, &csf, c, n);
                    let mut got = vec![f64::NAN; dims[n] * c];
                    plan.execute(&pool, &csf, &refs, &mut got);
                    for (a, b) in got.iter().zip(&want) {
                        assert!(
                            (a - b).abs() < 1e-12 * (1.0 + b.abs()),
                            "dims {dims:?} t={t} n={n}: {a} vs {b}"
                        );
                    }
                    // Wrapper path agrees bitwise with the plan path.
                    let mut from_wrapper = vec![f64::NAN; dims[n] * c];
                    sparse_mttkrp(&pool, &csf, &refs, n, &mut from_wrapper);
                    assert_eq!(from_wrapper, got, "dims {dims:?} t={t} n={n}");
                }
            }
        }
    }

    #[test]
    fn repeated_execution_is_bitwise_stable_and_reuses_workspaces() {
        let dims = [6usize, 5, 4];
        let coo = rand_coo(&dims, 40, 7);
        let csf = CsfTensor::from_coo(&coo);
        let c = 4;
        let factors: Vec<Vec<f64>> = dims
            .iter()
            .enumerate()
            .map(|(k, &d)| rand_vec(d * c, k as u64))
            .collect();
        let refs = factor_refs(&factors, &dims, c);
        let pool = ThreadPool::new(3);
        for n in 0..dims.len() {
            let mut plan = SparseMttkrpPlan::new(&pool, &csf, c, n);
            let mut first = vec![f64::NAN; dims[n] * c];
            plan.execute(&pool, &csf, &refs, &mut first);
            let ptr = plan.workspace_ptr();
            for _ in 0..3 {
                let mut again = vec![f64::NAN; dims[n] * c];
                plan.execute(&pool, &csf, &refs, &mut again);
                assert_eq!(first, again, "mode {n} drifted across executions");
            }
            assert_eq!(ptr, plan.workspace_ptr(), "workspace reallocated");
        }
    }

    #[test]
    fn partition_is_nnz_balanced_and_covers_all_fibers() {
        let dims = [64usize, 8, 8];
        let coo = rand_coo(&dims, 2000, 99);
        let csf = CsfTensor::from_coo(&coo);
        let pool = ThreadPool::new(4);
        let plan = SparseMttkrpPlan::new(&pool, &csf, 2, 0);
        let counts = csf.tree(0).root_fiber_nnz();
        let ranges = plan.fiber_ranges();
        // Coverage: contiguous, disjoint, complete.
        assert_eq!(ranges[0].start, 0);
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        assert_eq!(ranges.last().unwrap().end, counts.len());
        // Balance: no thread holds more than ~2x the ideal share (the
        // workload has many small fibers, so the split is near-even).
        let nnz = csf.nnz();
        for r in ranges {
            let load: usize = counts[r.clone()].iter().sum();
            assert!(
                load <= nnz.div_ceil(4) * 2,
                "range {r:?} holds {load} of {nnz} nonzeros"
            );
        }
    }

    #[test]
    fn empty_tensor_yields_zero_output() {
        let coo = CooTensor::from_entries(&[4, 3, 2], Vec::new(), Vec::new());
        let csf = CsfTensor::from_coo(&coo);
        let c = 2;
        let dims = [4usize, 3, 2];
        let factors: Vec<Vec<f64>> = dims.iter().map(|&d| vec![1.0; d * c]).collect();
        let refs = factor_refs(&factors, &dims, c);
        for t in [1usize, 3] {
            let pool = ThreadPool::new(t);
            let mut out = vec![f64::NAN; 4 * c];
            sparse_mttkrp(&pool, &csf, &refs, 0, &mut out);
            assert!(out.iter().all(|&v| v == 0.0), "t={t}");
        }
    }

    #[test]
    fn backend_trait_runs_the_planned_kernel() {
        use mttkrp_core::MttkrpBackend;
        let dims = [5usize, 4, 3];
        let coo = rand_coo(&dims, 25, 3);
        let csf = CsfTensor::from_coo(&coo);
        let dense = coo.to_dense();
        let c = 2;
        let factors: Vec<Vec<f64>> = dims
            .iter()
            .enumerate()
            .map(|(k, &d)| rand_vec(d * c, k as u64 + 31))
            .collect();
        let refs = factor_refs(&factors, &dims, c);
        let pool = ThreadPool::new(2);
        assert_eq!(MttkrpBackend::dims(&csf), &dims[..]);
        assert!((MttkrpBackend::norm(&csf) - dense.norm()).abs() < 1e-12);
        let mut plans = csf.plan_modes(&pool, c, None);
        for n in 0..3 {
            let mut want = vec![0.0; dims[n] * c];
            mttkrp_oracle(&dense, &refs, n, &mut want);
            let mut got = vec![f64::NAN; dims[n] * c];
            let bd = csf.mttkrp_planned(&mut plans, &pool, &refs, n, &mut got);
            assert!(bd.total > 0.0);
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-12 * (1.0 + b.abs()), "mode {n}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn wrong_pool_size_panics() {
        let coo = rand_coo(&[3, 3], 4, 1);
        let csf = CsfTensor::from_coo(&coo);
        let factors: Vec<Vec<f64>> = vec![vec![1.0; 6]; 2];
        let refs = factor_refs(&factors, &[3, 3], 2);
        let mut plan = SparseMttkrpPlan::new(&ThreadPool::new(2), &csf, 2, 0);
        let mut out = vec![0.0; 6];
        plan.execute(&ThreadPool::new(3), &csf, &refs, &mut out);
    }

    #[test]
    #[should_panic(expected = "root fibers changed")]
    fn same_counts_but_different_root_fibers_panics() {
        // Same dims, same nnz, same root-fiber *count* — but nonzero
        // rows {0, 1} vs {0, 2}. Executing A's plan against B would
        // leave A's row 1 stale in the accumulator, so it must be
        // rejected, not silently summed.
        let a = CsfTensor::from_coo(&CooTensor::from_entries(
            &[4, 4],
            vec![0, 0, 1, 1],
            vec![1.0, 2.0],
        ));
        let b = CsfTensor::from_coo(&CooTensor::from_entries(
            &[4, 4],
            vec![0, 0, 2, 2],
            vec![1.0, 2.0],
        ));
        let factors: Vec<Vec<f64>> = vec![vec![1.0; 8]; 2];
        let refs = factor_refs(&factors, &[4, 4], 2);
        let pool = ThreadPool::new(1);
        let mut plan = SparseMttkrpPlan::new(&pool, &a, 2, 0);
        let mut out = vec![0.0; 8];
        plan.execute(&pool, &a, &refs, &mut out);
        plan.execute(&pool, &b, &refs, &mut out);
    }

    #[test]
    #[should_panic]
    fn structurally_different_tensor_panics() {
        let a = CsfTensor::from_coo(&rand_coo(&[4, 4], 8, 1));
        let b = CsfTensor::from_coo(&rand_coo(&[4, 4], 3, 2));
        let factors: Vec<Vec<f64>> = vec![vec![1.0; 8]; 2];
        let refs = factor_refs(&factors, &[4, 4], 2);
        let pool = ThreadPool::new(1);
        let mut plan = SparseMttkrpPlan::new(&pool, &a, 2, 0);
        let mut out = vec![0.0; 8];
        plan.execute(&pool, &b, &refs, &mut out);
    }
}
