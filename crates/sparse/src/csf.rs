//! Compressed sparse fiber (CSF) storage with per-mode orderings.
//!
//! CSF stores the nonzeros of an `N`-way tensor as a forest of depth-`N`
//! paths with shared prefixes: level 0 holds the distinct root-mode
//! indices, level `d` holds one node per distinct `(i_{m_0}, …, i_{m_d})`
//! prefix, and the leaves carry the values. A fiber at depth `d` is the
//! contiguous range of depth-`d+1` nodes below one node, addressed by
//! `fptr`. This is the layout SPLATT introduced for sparse MTTKRP and
//! the one the related multicore work (Dynasor, out-of-memory MTTKRP)
//! builds on: walking a subtree reuses the factor rows of every shared
//! prefix instead of recomputing an `N−1`-way Hadamard product per
//! nonzero.
//!
//! [`CsfTensor`] keeps **one tree per mode**, each rooted at that mode
//! (the remaining modes follow in ascending order). The mode-`n` MTTKRP
//! then walks the mode-`n` tree: every output row is owned by exactly
//! one root fiber, so a static partition over root fibers never writes
//! a row from two threads, and the per-level partial sums implement the
//! prefix reuse. The memory cost is `N` copies of the value array plus
//! the (smaller) fiber index arrays — the classic "allmode" CSF
//! trade-off, which this repo accepts to keep every mode's kernel
//! allocation-free and race-free.

use mttkrp_tensor::DenseTensor;

use crate::coo::CooTensor;

/// One CSF tree: the nonzeros ordered with `order[0]` as the root mode.
#[derive(Debug, Clone, PartialEq)]
pub struct CsfTree {
    /// Mode permutation: `order[d]` is the tensor mode stored at tree
    /// depth `d`; `order[0]` is the root (output) mode.
    pub(crate) order: Vec<usize>,
    /// `fids[d][j]`: the mode-`order[d]` index of node `j` at depth `d`.
    pub(crate) fids: Vec<Vec<usize>>,
    /// `fptr[d][j] .. fptr[d][j+1]`: children of node `j` (depth `d`)
    /// within level `d+1`. One entry per node plus a trailing sentinel;
    /// `fptr.len() == order.len() - 1`.
    pub(crate) fptr: Vec<Vec<usize>>,
    /// Values, aligned with the deepest level's nodes (one per nonzero).
    pub(crate) vals: Vec<f64>,
}

impl CsfTree {
    /// The mode permutation (root first).
    #[inline]
    pub fn mode_order(&self) -> &[usize] {
        &self.order
    }

    /// Number of root fibers (distinct root-mode indices with any
    /// nonzero).
    #[inline]
    pub fn num_root_fibers(&self) -> usize {
        self.fids[0].len()
    }

    /// Number of nodes at depth `d`.
    #[inline]
    pub fn level_len(&self, d: usize) -> usize {
        self.fids[d].len()
    }

    /// The stored values in this tree's depth-first order (one per
    /// nonzero; a permutation of every other tree's values).
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.vals
    }

    /// Nonzeros stored under each root fiber, in root-fiber order —
    /// the load measure the plan's static partition balances.
    pub fn root_fiber_nnz(&self) -> Vec<usize> {
        let depth = self.fids.len();
        // Fold leaf counts upward one level at a time.
        let mut counts: Vec<usize> = vec![1; self.fids[depth - 1].len()];
        for d in (0..depth - 1).rev() {
            let ptr = &self.fptr[d];
            counts = (0..self.fids[d].len())
                .map(|j| counts[ptr[j]..ptr[j + 1]].iter().sum())
                .collect();
        }
        counts
    }
}

/// A sparse tensor in per-mode CSF form, ready for MTTKRP on any mode.
#[derive(Debug, Clone, PartialEq)]
pub struct CsfTensor {
    dims: Vec<usize>,
    nnz: usize,
    trees: Vec<CsfTree>,
}

impl CsfTensor {
    /// Compress a canonical COO tensor into one CSF tree per mode.
    pub fn from_coo(coo: &CooTensor) -> Self {
        let dims = coo.dims().to_vec();
        let nm = dims.len();
        let trees = (0..nm)
            .map(|n| {
                let mut order = Vec::with_capacity(nm);
                order.push(n);
                order.extend((0..nm).filter(|&m| m != n));
                build_tree(coo, order)
            })
            .collect();
        CsfTensor {
            dims,
            nnz: coo.nnz(),
            trees,
        }
    }

    /// Decompress back to canonical COO form (inverse of
    /// [`CsfTensor::from_coo`]).
    pub fn to_coo(&self) -> CooTensor {
        let t = &self.trees[0];
        let nm = self.dims.len();
        let mut inds = Vec::with_capacity(self.nnz * nm);
        let mut vals = Vec::with_capacity(self.nnz);
        let mut idx = vec![0usize; nm];
        walk_collect(t, 0, 0..t.fids[0].len(), &mut idx, &mut inds, &mut vals);
        CooTensor::from_entries(&self.dims, inds, vals)
    }

    /// Sparsify a dense tensor straight into CSF (entries with
    /// `|x| > threshold`).
    pub fn from_dense(x: &DenseTensor, threshold: f64) -> Self {
        Self::from_coo(&CooTensor::from_dense(x, threshold))
    }

    /// Tensor dimensions.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of modes.
    #[inline]
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The tree rooted at mode `n` (the one mode-`n` MTTKRP walks).
    #[inline]
    pub fn tree(&self, n: usize) -> &CsfTree {
        &self.trees[n]
    }

    /// Frobenius norm of the stored values.
    pub fn norm(&self) -> f64 {
        self.trees[0]
            .vals
            .iter()
            .map(|&v| v * v)
            .sum::<f64>()
            .sqrt()
    }
}

/// Build one tree: sort entry ids lexicographically under `order`, then
/// emit a node at depth `d` whenever the prefix `(i_{m_0}, …, i_{m_d})`
/// changes.
fn build_tree(coo: &CooTensor, order: Vec<usize>) -> CsfTree {
    let nm = order.len();
    let nnz = coo.nnz();
    let mut perm: Vec<usize> = (0..nnz).collect();
    perm.sort_by(|&a, &b| {
        let (ia, ib) = (coo.index(a), coo.index(b));
        for &m in &order {
            match ia[m].cmp(&ib[m]) {
                std::cmp::Ordering::Equal => continue,
                other => return other,
            }
        }
        std::cmp::Ordering::Equal
    });

    let mut fids: Vec<Vec<usize>> = vec![Vec::new(); nm];
    let mut fptr: Vec<Vec<usize>> = vec![Vec::new(); nm - 1];
    let mut vals = Vec::with_capacity(nnz);
    for &e in &perm {
        let idx = coo.index(e);
        // Once one level diverges from the previous entry's path, every
        // deeper level starts a fresh node.
        let mut diverged = fids[0].is_empty();
        for d in 0..nm {
            let i = idx[order[d]];
            if !diverged && *fids[d].last().unwrap() != i {
                diverged = true;
            }
            if diverged {
                if d + 1 < nm {
                    fptr[d].push(fids[d + 1].len());
                }
                fids[d].push(i);
            }
        }
        vals.push(coo.value(e));
    }
    for d in 0..nm - 1 {
        fptr[d].push(fids[d + 1].len());
    }

    CsfTree {
        order,
        fids,
        fptr,
        vals,
    }
}

/// Depth-first reconstruction of `(multi-index, value)` entries.
fn walk_collect(
    t: &CsfTree,
    depth: usize,
    range: std::ops::Range<usize>,
    idx: &mut [usize],
    inds: &mut Vec<usize>,
    vals: &mut Vec<f64>,
) {
    let leaf = depth == t.fids.len() - 1;
    for j in range {
        idx[t.order[depth]] = t.fids[depth][j];
        if leaf {
            inds.extend_from_slice(idx);
            vals.push(t.vals[j]);
        } else {
            walk_collect(
                t,
                depth + 1,
                t.fptr[depth][j]..t.fptr[depth][j + 1],
                idx,
                inds,
                vals,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_coo() -> CooTensor {
        // 3 x 2 x 2 tensor with 4 nonzeros, two sharing a root fiber
        // in mode 0.
        CooTensor::from_entries(
            &[3, 2, 2],
            vec![
                0, 1, 0, //
                2, 0, 1, //
                0, 0, 1, //
                1, 1, 1,
            ],
            vec![1.0, 2.0, 3.0, 4.0],
        )
    }

    #[test]
    fn tree_structure_mode0() {
        let csf = CsfTensor::from_coo(&sample_coo());
        let t = csf.tree(0);
        assert_eq!(t.mode_order(), &[0, 1, 2]);
        // Root fibers: i0 ∈ {0, 1, 2}.
        assert_eq!(t.fids[0], vec![0, 1, 2]);
        assert_eq!(t.num_root_fibers(), 3);
        // i0 = 0 has two children fibers (j = 0 and j = 1).
        assert_eq!(t.fptr[0], vec![0, 2, 3, 4]);
        assert_eq!(t.fids[1], vec![0, 1, 1, 0]);
        // Leaves carry one node per nonzero.
        assert_eq!(t.level_len(2), 4);
        assert_eq!(t.root_fiber_nnz(), vec![2, 1, 1]);
    }

    #[test]
    fn every_mode_tree_holds_all_values() {
        let coo = sample_coo();
        let csf = CsfTensor::from_coo(&coo);
        for n in 0..3 {
            let t = csf.tree(n);
            assert_eq!(t.mode_order()[0], n);
            assert_eq!(t.vals.len(), coo.nnz());
            let sum: f64 = t.vals.iter().sum();
            assert!((sum - 10.0).abs() < 1e-12, "mode {n}");
            assert_eq!(t.root_fiber_nnz().iter().sum::<usize>(), coo.nnz());
        }
    }

    #[test]
    fn coo_round_trip_is_identity() {
        let coo = sample_coo();
        let back = CsfTensor::from_coo(&coo).to_coo();
        assert_eq!(back, coo);
    }

    #[test]
    fn from_dense_matches_coo_path() {
        let x = sample_coo().to_dense();
        let a = CsfTensor::from_dense(&x, 0.0);
        let b = CsfTensor::from_coo(&CooTensor::from_dense(&x, 0.0));
        assert_eq!(a, b);
        assert!((a.norm() - x.norm()).abs() < 1e-12);
    }

    #[test]
    fn empty_tensor_is_representable() {
        let coo = CooTensor::from_entries(&[3, 3], Vec::new(), Vec::new());
        let csf = CsfTensor::from_coo(&coo);
        assert_eq!(csf.nnz(), 0);
        assert_eq!(csf.tree(0).num_root_fibers(), 0);
        assert_eq!(csf.to_coo(), coo);
    }
}
