//! Coordinate-format sparse tensors — the ingestion type.
//!
//! A [`CooTensor`] holds one `(i_0, …, i_{N−1}, value)` entry per
//! stored nonzero. Construction canonicalizes the entry list: indices
//! are bounds-checked against the shape, entries are sorted into
//! natural linearization order (mode 0 fastest — the same order
//! [`DenseTensor`] stores entries in), and duplicate coordinates are
//! merged by summing their values, matching the accumulation semantics
//! of every common sparse-tensor reader. A canonical `CooTensor` is
//! therefore a value type: two tensors with the same nonzeros compare
//! equal regardless of the entry order they were built from.
//!
//! COO is the interchange format — disk codecs (`mttkrp-workloads`),
//! generators, and densification all speak it. The MTTKRP kernels run
//! on the compressed-sparse-fiber form instead; convert with
//! [`crate::CsfTensor::from_coo`].

use mttkrp_tensor::{DenseTensor, DimInfo};

/// A sparse tensor as a canonical (sorted, deduplicated, validated)
/// list of coordinate entries.
#[derive(Debug, Clone, PartialEq)]
pub struct CooTensor {
    dims: Vec<usize>,
    /// Entry-major index storage: entry `k` occupies
    /// `inds[k*N .. (k+1)*N]`.
    inds: Vec<usize>,
    vals: Vec<f64>,
}

impl CooTensor {
    /// Build a canonical COO tensor from an entry list.
    ///
    /// `inds` is entry-major (`nnz × N` indices, entry `k`'s
    /// multi-index at `inds[k*N..(k+1)*N]`); `vals` holds one value per
    /// entry. Entries may arrive in any order and may repeat a
    /// coordinate — duplicates are summed.
    ///
    /// # Panics
    /// Panics if the shape has fewer than 2 modes or a zero dimension,
    /// if `inds.len() != vals.len() * dims.len()`, or if any index is
    /// out of bounds for its mode.
    pub fn from_entries(dims: &[usize], inds: Vec<usize>, vals: Vec<f64>) -> Self {
        assert!(dims.len() >= 2, "sparse tensors need at least 2 modes");
        let info = DimInfo::new(dims); // rejects zero dims, checks overflow
        let nm = dims.len();
        assert_eq!(
            inds.len(),
            vals.len() * nm,
            "index list must hold one multi-index per value"
        );
        let nnz_in = vals.len();
        for k in 0..nnz_in {
            let idx = &inds[k * nm..(k + 1) * nm];
            for (m, (&i, &d)) in idx.iter().zip(dims).enumerate() {
                assert!(
                    i < d,
                    "entry {k}: index {i} out of bounds for mode {m} ({d})"
                );
            }
        }

        // Sort by linear position (the natural linearization order),
        // then merge runs of equal positions by summing.
        let mut perm: Vec<usize> = (0..nnz_in).collect();
        let lin: Vec<usize> = (0..nnz_in)
            .map(|k| info.linear(&inds[k * nm..(k + 1) * nm]))
            .collect();
        perm.sort_by_key(|&k| lin[k]);

        let mut out_inds = Vec::with_capacity(inds.len());
        let mut out_vals: Vec<f64> = Vec::with_capacity(nnz_in);
        let mut last_lin = usize::MAX;
        for &k in &perm {
            if !out_vals.is_empty() && lin[k] == last_lin {
                *out_vals.last_mut().unwrap() += vals[k];
            } else {
                out_inds.extend_from_slice(&inds[k * nm..(k + 1) * nm]);
                out_vals.push(vals[k]);
                last_lin = lin[k];
            }
        }

        CooTensor {
            dims: dims.to_vec(),
            inds: out_inds,
            vals: out_vals,
        }
    }

    /// Sparsify a dense tensor: keep every entry with
    /// `|x| > threshold` (so `threshold = 0.0` keeps exact nonzeros).
    pub fn from_dense(x: &DenseTensor, threshold: f64) -> Self {
        let dims = x.dims();
        let nm = dims.len();
        let mut inds = Vec::new();
        let mut vals = Vec::new();
        let mut idx = vec![0usize; nm];
        for &v in x.data() {
            if v.abs() > threshold {
                inds.extend_from_slice(&idx);
                vals.push(v);
            }
            x.info().increment(&mut idx);
        }
        // Entries were visited in linearization order with no
        // duplicates, but route through the canonicalizer anyway so
        // every constructor upholds the same invariant.
        Self::from_entries(dims, inds, vals)
    }

    /// Materialize as a dense tensor (test/interchange sizes only).
    pub fn to_dense(&self) -> DenseTensor {
        let mut x = DenseTensor::zeros(&self.dims);
        let nm = self.dims.len();
        for (k, &v) in self.vals.iter().enumerate() {
            let idx = &self.inds[k * nm..(k + 1) * nm];
            let prev = x.get(idx);
            x.set(idx, prev + v);
        }
        x
    }

    /// Tensor dimensions.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of modes.
    #[inline]
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Fraction of entries stored.
    pub fn density(&self) -> f64 {
        self.nnz() as f64 / self.dims.iter().product::<usize>() as f64
    }

    /// Multi-index of stored entry `k`.
    // Not `ops::Index`: this maps an entry ordinal to its coordinate
    // tuple, not a container position to an element.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn index(&self, k: usize) -> &[usize] {
        let nm = self.dims.len();
        &self.inds[k * nm..(k + 1) * nm]
    }

    /// Value of stored entry `k`.
    #[inline]
    pub fn value(&self, k: usize) -> f64 {
        self.vals[k]
    }

    /// All stored values in canonical order.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.vals
    }

    /// Entry-major index storage (`nnz × N`).
    #[inline]
    pub fn indices(&self) -> &[usize] {
        &self.inds
    }

    /// Iterate `(multi-index, value)` pairs in canonical order.
    pub fn entries(&self) -> impl Iterator<Item = (&[usize], f64)> + '_ {
        let nm = self.dims.len();
        self.inds.chunks_exact(nm).zip(self.vals.iter().copied())
    }

    /// Frobenius norm of the stored entries.
    pub fn norm(&self) -> f64 {
        self.vals.iter().map(|&v| v * v).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_are_sorted_and_deduplicated() {
        // Same coordinate twice (summed), out-of-order input.
        let inds = vec![1, 1, /**/ 0, 0, /**/ 1, 1, /**/ 0, 1];
        let vals = vec![2.0, 5.0, 3.0, 7.0];
        let x = CooTensor::from_entries(&[2, 2], inds, vals);
        assert_eq!(x.nnz(), 3);
        assert_eq!(x.index(0), &[0, 0]);
        assert_eq!(x.value(0), 5.0);
        assert_eq!(x.index(1), &[0, 1]);
        assert_eq!(x.value(1), 7.0);
        assert_eq!(x.index(2), &[1, 1]);
        assert_eq!(x.value(2), 5.0);
    }

    #[test]
    fn construction_order_does_not_matter() {
        let a = CooTensor::from_entries(&[3, 2], vec![0, 0, 2, 1], vec![1.0, 2.0]);
        let b = CooTensor::from_entries(&[3, 2], vec![2, 1, 0, 0], vec![2.0, 1.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn dense_round_trip() {
        let x = DenseTensor::from_vec(&[2, 3], vec![0.0, 1.0, 0.0, 0.0, 2.5, 0.0]);
        let coo = CooTensor::from_dense(&x, 0.0);
        assert_eq!(coo.nnz(), 2);
        assert!((coo.density() - 2.0 / 6.0).abs() < 1e-15);
        assert_eq!(coo.to_dense(), x);
        assert!((coo.norm() - x.norm()).abs() < 1e-15);
    }

    #[test]
    fn threshold_drops_small_entries() {
        let x = DenseTensor::from_vec(&[2, 2], vec![0.1, -0.5, 0.05, 2.0]);
        let coo = CooTensor::from_dense(&x, 0.2);
        assert_eq!(coo.nnz(), 2);
        assert_eq!(coo.value(0), -0.5);
        assert_eq!(coo.value(1), 2.0);
    }

    #[test]
    fn entries_iterator_matches_accessors() {
        let coo = CooTensor::from_entries(&[2, 2, 2], vec![1, 0, 1, 0, 1, 0], vec![4.0, 3.0]);
        let got: Vec<(Vec<usize>, f64)> = coo.entries().map(|(idx, v)| (idx.to_vec(), v)).collect();
        assert_eq!(got, vec![(vec![0, 1, 0], 3.0), (vec![1, 0, 1], 4.0)]);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_index_rejected() {
        let _ = CooTensor::from_entries(&[2, 2], vec![0, 2], vec![1.0]);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_rejected() {
        let _ = CooTensor::from_entries(&[2, 2], vec![0, 0, 1], vec![1.0]);
    }

    #[test]
    #[should_panic]
    fn one_mode_rejected() {
        let _ = CooTensor::from_entries(&[4], vec![1], vec![1.0]);
    }
}
