//! Seeded property tests for the sparse storage pipeline: COO
//! canonicalization (sorting, dedup-by-sum, validation), COO → CSF →
//! COO round-tripping, and per-mode ordering/value preservation.
//! Cases are generated from a fixed-seed [`mttkrp_rng::Rng64`] stream
//! so failures reproduce.

use mttkrp_rng::Rng64;
use mttkrp_sparse::{CooTensor, CsfTensor};
use mttkrp_tensor::{linear_index, DenseTensor};

struct Case {
    dims: Vec<usize>,
    inds: Vec<usize>,
    vals: Vec<f64>,
}

/// A random entry list with deliberate duplicates (each drawn
/// coordinate is repeated with probability ~1/4).
fn rand_case(rng: &mut Rng64) -> Case {
    let order = rng.usize_in(2, 6);
    let dims: Vec<usize> = (0..order).map(|_| rng.usize_in(1, 7)).collect();
    let total: usize = dims.iter().product();
    let draws = rng.usize_in(0, 2 * total + 2);
    let mut inds = Vec::new();
    let mut vals = Vec::new();
    for _ in 0..draws {
        let idx: Vec<usize> = dims.iter().map(|&d| rng.usize_below(d)).collect();
        let mut reps = 1;
        if rng.usize_below(4) == 0 {
            reps += rng.usize_in(1, 3);
        }
        for _ in 0..reps {
            inds.extend_from_slice(&idx);
            vals.push(rng.next_f64() - 0.5);
        }
    }
    Case { dims, inds, vals }
}

/// Accumulate the raw entry list densely — the semantics COO
/// construction must reproduce.
fn dense_oracle(case: &Case) -> DenseTensor {
    let nm = case.dims.len();
    let mut x = DenseTensor::zeros(&case.dims);
    for (k, &v) in case.vals.iter().enumerate() {
        let idx = &case.inds[k * nm..(k + 1) * nm];
        let prev = x.get(idx);
        x.set(idx, prev + v);
    }
    x
}

#[test]
fn coo_canonicalization_sorts_dedups_and_preserves_sums() {
    let mut rng = Rng64::seed_from_u64(0x5AB5_0001);
    for case_idx in 0..60 {
        let case = rand_case(&mut rng);
        let coo = CooTensor::from_entries(&case.dims, case.inds.clone(), case.vals.clone());
        let tag = format!("case {case_idx}: dims {:?}", case.dims);

        // Sorted strictly ascending by linear position ⇒ sorted and
        // duplicate-free in one check.
        let positions: Vec<usize> = (0..coo.nnz())
            .map(|k| linear_index(&case.dims, coo.index(k)))
            .collect();
        assert!(positions.windows(2).all(|w| w[0] < w[1]), "{tag}");

        // Dedup-by-sum: densification matches accumulating the raw
        // entry list (bitwise would over-constrain the merge order, so
        // compare to 1e-12; values are O(1)).
        let want = dense_oracle(&case);
        let got = coo.to_dense();
        for (a, b) in got.data().iter().zip(want.data()) {
            assert!((a - b).abs() <= 1e-12, "{tag}: {a} vs {b}");
        }
    }
}

#[test]
fn coo_csf_coo_round_trip_is_identity() {
    let mut rng = Rng64::seed_from_u64(0x5AB5_0002);
    for case_idx in 0..60 {
        let case = rand_case(&mut rng);
        let coo = CooTensor::from_entries(&case.dims, case.inds, case.vals);
        let csf = CsfTensor::from_coo(&coo);
        let back = csf.to_coo();
        assert_eq!(back, coo, "case {case_idx}: dims {:?}", case.dims);
    }
}

#[test]
fn per_mode_orderings_preserve_values_and_structure() {
    let mut rng = Rng64::seed_from_u64(0x5AB5_0003);
    for case_idx in 0..40 {
        let case = rand_case(&mut rng);
        let coo = CooTensor::from_entries(&case.dims, case.inds, case.vals);
        let csf = CsfTensor::from_coo(&coo);
        let tag = format!("case {case_idx}: dims {:?}", case.dims);
        assert_eq!(csf.nnz(), coo.nnz(), "{tag}");
        for n in 0..csf.order() {
            let t = csf.tree(n);
            // The mode-n tree is rooted at mode n and covers every mode
            // exactly once.
            assert_eq!(t.mode_order()[0], n, "{tag}");
            let mut seen = t.mode_order().to_vec();
            seen.sort_unstable();
            assert_eq!(seen, (0..csf.order()).collect::<Vec<_>>(), "{tag}");
            // Every ordering is a permutation of the same nonzeros: the
            // leaf level has one node per entry and the multiset of
            // values is preserved (checked through sum and sum of
            // squares, which the reordering must leave bitwise alike).
            assert_eq!(t.level_len(csf.order() - 1), coo.nnz(), "{tag} mode {n}");
            assert_eq!(
                t.root_fiber_nnz().iter().sum::<usize>(),
                coo.nnz(),
                "{tag} mode {n}"
            );
            // Root fiber ids are the distinct mode-n indices, ascending.
            let roots: Vec<usize> = (0..coo.nnz()).map(|k| coo.index(k)[n]).collect();
            let mut distinct = roots.clone();
            distinct.sort_unstable();
            distinct.dedup();
            assert_eq!(t.num_root_fibers(), distinct.len(), "{tag} mode {n}");
        }
        // The value multiset survives every per-mode reordering
        // (checked through sorted value lists, which a permutation must
        // preserve exactly).
        let mut want = coo.values().to_vec();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for n in 0..csf.order() {
            let mut got = csf.tree(n).values().to_vec();
            got.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(got, want, "{tag} mode {n}");
        }
    }
}
