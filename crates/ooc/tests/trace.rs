//! Span timeline of the streaming out-of-core MTTKRP.
//!
//! The engine's I/O-overlap claim is structural in the trace: tile
//! reads are recorded on the dedicated prefetch thread's buffer, tile
//! waits and computes on the calling thread's, and all timestamps
//! share one process epoch — so the drained records show the read of
//! tile `k+1` framed by the compute of tile `k`. This binary holds
//! only this test, so the global span buffers see exactly this
//! pipeline's records.

use mttkrp_blas::{Layout, MatRef};
use mttkrp_core::AlgoChoice;
use mttkrp_obs::{set_trace_level, take_spans, thread_names, SpanRecord, TraceLevel};
use mttkrp_ooc::{OocMttkrpPlanSet, OocTensor, TileStore, TiledLayout};
use mttkrp_parallel::ThreadPool;
use mttkrp_rng::Rng64;
use mttkrp_tensor::DenseTensor;

#[test]
fn streaming_execution_traces_reads_on_the_prefetch_thread() {
    let dims = [8usize, 6, 5];
    let c = 3;
    let mut rng = Rng64::seed_from_u64(0x7ACE0);
    let x = DenseTensor::from_fn(&dims, || rng.next_f64() - 0.5);
    let factors: Vec<Vec<f64>> = dims
        .iter()
        .map(|&d| (0..d * c).map(|_| rng.next_f64() - 0.5).collect())
        .collect();
    let refs: Vec<MatRef> = factors
        .iter()
        .zip(&dims)
        .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
        .collect();

    let path = std::env::temp_dir().join(format!("mttkrp_ooc_trace_{}.mttb", std::process::id()));
    let layout = TiledLayout::new(&dims, &[4, 3, 3]);
    let ntiles = layout.ntiles();
    assert!(ntiles > 1, "need a multi-tile grid to stream");
    let store = TileStore::write_dense(&path, &layout, &x).unwrap();
    let ooc = OocTensor::from_store(store).unwrap();

    let pool = ThreadPool::new(1);
    let mut plans = OocMttkrpPlanSet::new(&pool, &ooc, c, Some(AlgoChoice::Heuristic));

    set_trace_level(TraceLevel::Full);
    let _ = take_spans(); // discard plan/setup spans
    let n = 1;
    let mut out = vec![0.0; dims[n] * c];
    let bd = plans.execute_timed(&pool, &refs, n, &mut out);
    set_trace_level(TraceLevel::Off);
    std::fs::remove_file(&path).ok();

    let spans = take_spans();
    let by_name =
        |name: &str| -> Vec<&SpanRecord> { spans.iter().filter(|s| s.name == name).collect() };

    let mttkrp = by_name("ooc_mttkrp");
    assert_eq!(mttkrp.len(), 1, "one driver span per execution");
    let driver = mttkrp[0];

    let reads = by_name("tile_read");
    let waits = by_name("tile_wait");
    let computes = by_name("tile_compute");
    assert_eq!(reads.len(), ntiles, "one read span per tile");
    assert_eq!(waits.len(), ntiles, "one wait span per tile");
    assert_eq!(computes.len(), ntiles, "one compute span per tile");

    // Reads live on the prefetch thread's buffer; waits and computes on
    // the driver's. The prefetch thread is registered under its
    // spawn-time name.
    let read_tid = reads[0].tid;
    assert!(reads.iter().all(|s| s.tid == read_tid));
    assert_ne!(read_tid, driver.tid, "reads must come from another thread");
    assert!(waits.iter().all(|s| s.tid == driver.tid));
    assert!(computes.iter().all(|s| s.tid == driver.tid));
    let names = thread_names();
    let prefetch_name = &names
        .iter()
        .find(|(tid, _)| *tid == read_tid)
        .expect("prefetch thread registered")
        .1;
    assert_eq!(prefetch_name, "mttkrp-ooc-prefetch");

    // Shared epoch: every tile span of this execution falls inside the
    // driver span's window, including the cross-thread reads (tile 0's
    // read is requested after the driver opens).
    for s in reads.iter().chain(&waits).chain(&computes) {
        assert!(
            driver.start_ns <= s.start_ns && s.end_ns() <= driver.end_ns(),
            "span {:?} tile {} [{}, {}] outside driver [{}, {}]",
            s.name,
            s.arg_val,
            s.start_ns,
            s.end_ns(),
            driver.start_ns,
            driver.end_ns(),
        );
    }

    // The double-buffer protocol, read off the cross-thread timeline:
    // tile k+1's read is requested right after tile k's wait returns
    // (that is when its buffer frees), and must complete before tile
    // k+1's own wait can return — so each read span is bracketed by
    // consecutive wait spans, the window the compute of tile k shares.
    fn span_for<'a>(set: &[&'a SpanRecord], tile: usize) -> &'a SpanRecord {
        set.iter()
            .find(|s| s.arg_val == tile as i64)
            .expect("span per tile")
    }
    for k in 0..ntiles - 1 {
        let next_read = span_for(&reads, k + 1);
        assert!(
            span_for(&waits, k).end_ns() <= next_read.start_ns,
            "tile {}'s read started before its buffer was freed",
            k + 1,
        );
        assert!(
            next_read.end_ns() <= span_for(&waits, k + 1).end_ns(),
            "tile {}'s wait returned before the read finished",
            k + 1,
        );
    }

    // The breakdown agrees with the timeline's structure: the driver's
    // wall time is its own, the phases are summed from sub-calls
    // (`accumulate_phases`), so overlap() is exactly the hidden work.
    assert!(bd.total > 0.0);
    assert!(bd.overlap() >= 0.0);
    assert!(
        (bd.overlap() - (bd.categorized() - bd.total).max(0.0)).abs() < 1e-15,
        "overlap must be the categorized excess"
    );
}
