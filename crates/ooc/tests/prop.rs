//! Property tests for the tile geometry and the `MTTB` store, in the
//! workspace's seeded `Rng64` case-loop style (no proptest dependency;
//! failures reproduce from the printed case tag).

use mttkrp_ooc::{TileStore, TiledLayout};
use mttkrp_rng::Rng64;
use mttkrp_tensor::DenseTensor;
use std::path::PathBuf;

fn tmp(name: &str, case: usize) -> PathBuf {
    std::env::temp_dir().join(format!(
        "mttkrp_ooc_prop_{name}_{}_{case}.mttb",
        std::process::id()
    ))
}

/// Random adversarial geometry: dims 1..8 (primes and 1s likely), tile
/// extents 1..=dim+1 (oversized extents exercise clamping).
fn rand_layout(rng: &mut Rng64) -> TiledLayout {
    let order = rng.usize_in(2, 6);
    let dims: Vec<usize> = (0..order).map(|_| rng.usize_in(1, 8)).collect();
    let tile: Vec<usize> = dims.iter().map(|&d| rng.usize_in(1, d + 2)).collect();
    TiledLayout::new(&dims, &tile)
}

#[test]
fn tile_grid_round_trips_every_global_index() {
    let mut rng = Rng64::seed_from_u64(0x00C_0001);
    for case in 0..64 {
        let l = rand_layout(&mut rng);
        let tag = format!(
            "case {case}: dims {:?} tile {:?} grid {:?}",
            l.dims(),
            l.tile_dims(),
            l.grid()
        );

        // Tile id <-> coordinate round trip.
        for t in 0..l.ntiles() {
            assert_eq!(l.tile_id(&l.tile_coord(t)), t, "{tag}");
        }

        // Tiles tile the grid: entry counts sum to the total, and
        // every global index lands in exactly one tile and round-trips
        // through (tile, local).
        let total: usize = l.dims().iter().product();
        let sum: usize = (0..l.ntiles()).map(|t| l.tile_entries(t)).sum();
        assert_eq!(sum, total, "{tag}");

        let info = l.dim_info().clone();
        let mut idx = vec![0usize; l.order()];
        loop {
            let (t, local) = l.locate(&idx);
            assert!(t < l.ntiles(), "{tag}");
            let shape = l.tile_shape(t);
            for (m, (&lo, &s)) in local.iter().zip(&shape).enumerate() {
                assert!(lo < s, "{tag}: local {lo} ≥ extent {s} in mode {m}");
            }
            assert_eq!(l.global_of(t, &local), idx, "{tag}");
            if !info.increment(&mut idx) {
                break;
            }
        }

        // The shape mask is a faithful shape key and every achievable
        // mask appears.
        let masks = l.achievable_masks();
        for t in 0..l.ntiles() {
            let m = l.shape_mask(t);
            assert!(masks.contains(&m), "{tag}");
            assert_eq!(l.mask_shape(m), l.tile_shape(t), "{tag}");
        }
    }
}

#[test]
fn store_write_read_reconstructs_the_source_tensor() {
    let mut rng = Rng64::seed_from_u64(0x00C_0002);
    for case in 0..24 {
        let l = rand_layout(&mut rng);
        let total: usize = l.dims().iter().product();
        let x = DenseTensor::from_vec(l.dims(), (0..total).map(|_| rng.next_f64() - 0.5).collect());
        let tag = format!("case {case}: dims {:?} tile {:?}", l.dims(), l.tile_dims());
        let path = tmp("round", case);
        let store = TileStore::write_dense(&path, &l, &x).expect("write");

        // Full reconstruction is bitwise equal.
        let back = store.read_dense().expect("read");
        assert_eq!(back, x, "{tag}");

        // Per-tile reads see exactly the gathered blocks.
        let mut r = store.reader().expect("reader");
        for t in 0..l.ntiles() {
            let mut got = vec![f64::NAN; l.tile_entries(t)];
            r.read_tile_into(t, &mut got).expect("tile read");
            let mut want = vec![0.0; l.tile_entries(t)];
            x.gather_block(&l.tile_offset(t), &l.tile_shape(t), &mut want);
            assert_eq!(got, want, "{tag}: tile {t}");
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn generator_builds_match_in_core_builds() {
    let mut rng = Rng64::seed_from_u64(0x00C_0003);
    for case in 0..12 {
        let l = rand_layout(&mut rng);
        let total: usize = l.dims().iter().product();
        let x = DenseTensor::from_vec(l.dims(), (0..total).map(|_| rng.next_f64() - 0.5).collect());
        let p_dense = tmp("gen_dense", case);
        let p_gen = tmp("gen_fn", case);
        TileStore::write_dense(&p_dense, &l, &x).expect("write dense");
        let info = x.info().clone();
        TileStore::write_with(&p_gen, &l, |idx| x.data()[info.linear(idx)]).expect("write gen");
        let a = std::fs::read(&p_dense).unwrap();
        let b = std::fs::read(&p_gen).unwrap();
        std::fs::remove_file(&p_dense).ok();
        std::fs::remove_file(&p_gen).ok();
        assert_eq!(a, b, "case {case}: builders disagree bytewise");
    }
}

#[test]
fn corrupt_headers_and_truncations_are_rejected() {
    let mut rng = Rng64::seed_from_u64(0x00C_0004);
    for case in 0..12 {
        let l = rand_layout(&mut rng);
        let total: usize = l.dims().iter().product();
        let x = DenseTensor::from_vec(l.dims(), (0..total).map(|_| rng.next_f64() - 0.5).collect());
        let path = tmp("corrupt", case);
        TileStore::write_dense(&path, &l, &x).expect("write");
        let good = std::fs::read(&path).unwrap();
        let tag = format!("case {case}: dims {:?} tile {:?}", l.dims(), l.tile_dims());

        // Random single-truncation anywhere in the file.
        let cut = rng.usize_below(good.len());
        std::fs::write(&path, &good[..cut]).unwrap();
        assert!(TileStore::open(&path).is_err(), "{tag}: cut at {cut}");

        // Random header-word corruption that changes the geometry.
        let mut b = good.clone();
        let word = rng.usize_below(l.order());
        b[12 + 8 * word..20 + 8 * word].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&path, &b).unwrap();
        assert!(TileStore::open(&path).is_err(), "{tag}: forged dim {word}");

        // Trailing garbage.
        let mut b = good.clone();
        b.extend_from_slice(&rng.next_u64().to_le_bytes());
        std::fs::write(&path, &b).unwrap();
        assert!(TileStore::open(&path).is_err(), "{tag}: trailing bytes");

        // Out-of-range tile read on the intact store.
        std::fs::write(&path, &good).unwrap();
        let store = TileStore::open(&path).expect("intact store reopens");
        let mut r = store.reader().unwrap();
        let mut buf = vec![0.0; l.tile_entries(0)];
        assert!(r.read_tile_into(l.ntiles() + 3, &mut buf).is_err(), "{tag}");
        std::fs::remove_file(&path).ok();
    }
}
