//! Resident-tile-bytes accounting.
//!
//! The out-of-core engine's whole point is a bounded working set: at
//! any instant at most **two tiles** of tensor data are resident (the
//! tile being computed on and the tile the I/O thread is prefetching),
//! plus rank-sized workspaces. That claim is load-bearing enough to
//! instrument rather than assert by inspection: every tile-sized buffer
//! in this crate is a [`TileBuf`], which registers its capacity with a
//! process-wide gauge on construction and deregisters on drop. Tests
//! and CLIs read [`resident_tile_bytes`] / [`peak_resident_tile_bytes`]
//! to verify and report the cap.
//!
//! The gauge is the `ooc.resident_tile_bytes` entry of the
//! [`mttkrp_obs`] registry (so it appears in `--metrics` dumps next to
//! the I/O counters); the free functions here are thin shims kept for
//! the existing callers. The registry [`mttkrp_obs::Gauge`] also fixed
//! a race the old module-local implementation had: its peak reset was a
//! non-atomic load-then-store, so a concurrent `TileBuf::new` could
//! either leak a pre-reset peak into the new window or have its raise
//! overwritten. The registry gauge CAS-publishes an epoch-tagged word
//! instead (see `mttkrp_obs::metrics`).
//!
//! The gauge tracks *tile buffers*, not all allocations — factor
//! matrices, MTTKRP plan workspaces, and the output matrix are the
//! "+ workspaces" term of the budget and scale with `Σ I_n · C`, not
//! with the tensor.

use mttkrp_obs::Gauge;

/// The registry gauge backing this module (shared with `--metrics`
/// dumps under the name `ooc.resident_tile_bytes`).
fn tile_gauge() -> &'static Gauge {
    mttkrp_obs::gauge!("ooc.resident_tile_bytes")
}

/// Bytes of tile-buffer memory currently resident across the process.
pub fn resident_tile_bytes() -> usize {
    tile_gauge().value().max(0) as usize
}

/// High-water mark of [`resident_tile_bytes`] since the last
/// [`reset_peak_resident_tile_bytes`].
pub fn peak_resident_tile_bytes() -> usize {
    tile_gauge().peak() as usize
}

/// Reset the peak gauge to the current resident level (e.g. before a
/// measured run), starting a new epoch — safe against concurrent
/// registrations (see the module docs).
pub fn reset_peak_resident_tile_bytes() {
    tile_gauge().reset_peak();
}

fn register(bytes: usize) {
    tile_gauge().add(bytes as i64);
}

fn deregister(bytes: usize) {
    tile_gauge().sub(bytes as i64);
}

/// A gauge-registered tile buffer.
///
/// Owns a `Vec<f64>` whose *capacity* is fixed at construction (one
/// maximal tile); the length is resized per tile without reallocating.
/// The backing memory may temporarily move out (the compute path wraps
/// it in a borrowed-shape `DenseTensor`) via [`TileBuf::take_vec`] /
/// [`TileBuf::put_vec`] — the registration follows the `TileBuf`, which
/// stays alive for exactly as long as the memory is resident.
#[derive(Debug)]
pub struct TileBuf {
    data: Option<Vec<f64>>,
    capacity: usize,
}

impl TileBuf {
    /// Allocate a buffer able to hold `max_entries` values and register
    /// it with the gauge.
    pub fn new(max_entries: usize) -> Self {
        register(max_entries * 8);
        TileBuf {
            data: Some(vec![0.0; max_entries]),
            capacity: max_entries,
        }
    }

    /// Registered capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Mutable access to the backing vector.
    ///
    /// # Panics
    /// Panics if the vector is currently taken.
    pub fn vec_mut(&mut self) -> &mut Vec<f64> {
        self.data.as_mut().expect("tile buffer vector is taken")
    }

    /// Move the backing vector out (its registration stays with the
    /// `TileBuf`, which must outlive the use).
    ///
    /// # Panics
    /// Panics if already taken.
    pub fn take_vec(&mut self) -> Vec<f64> {
        self.data.take().expect("tile buffer vector is taken")
    }

    /// Return a vector previously moved out with [`TileBuf::take_vec`].
    ///
    /// # Panics
    /// Panics if the buffer already holds a vector or `v`'s capacity
    /// shrank below the registered size (the gauge would under-report).
    pub fn put_vec(&mut self, v: Vec<f64>) {
        assert!(self.data.is_none(), "tile buffer already holds a vector");
        assert!(
            v.capacity() >= self.capacity,
            "returned vector lost capacity"
        );
        self.data = Some(v);
    }
}

impl Drop for TileBuf {
    fn drop(&mut self) {
        deregister(self.capacity * 8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // Gauge tests share process-global state; serialize them so
    // concurrent test threads don't see each other's buffers.
    static GAUGE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn gauge_tracks_buffer_lifetime() {
        let _g = GAUGE_LOCK.lock().unwrap();
        let before = resident_tile_bytes();
        let buf = TileBuf::new(1000);
        assert_eq!(resident_tile_bytes(), before + 8000);
        assert!(peak_resident_tile_bytes() >= before + 8000);
        drop(buf);
        assert_eq!(resident_tile_bytes(), before);
    }

    #[test]
    fn take_put_keeps_registration() {
        let _g = GAUGE_LOCK.lock().unwrap();
        let before = resident_tile_bytes();
        let mut buf = TileBuf::new(16);
        let mut v = buf.take_vec();
        // Memory is still resident while moved out.
        assert_eq!(resident_tile_bytes(), before + 128);
        v.truncate(3);
        buf.put_vec(v);
        assert_eq!(buf.vec_mut().len(), 3);
        drop(buf);
        assert_eq!(resident_tile_bytes(), before);
    }

    #[test]
    fn reset_peak_drops_to_current() {
        let _g = GAUGE_LOCK.lock().unwrap();
        let big = TileBuf::new(4096);
        drop(big);
        reset_peak_resident_tile_bytes();
        assert_eq!(peak_resident_tile_bytes(), resident_tile_bytes());
    }

    #[test]
    fn gauge_is_visible_in_the_registry() {
        let _g = GAUGE_LOCK.lock().unwrap();
        let _buf = TileBuf::new(8);
        assert!(mttkrp_obs::registry()
            .names()
            .iter()
            .any(|n| n == "ooc.resident_tile_bytes"));
        let g = mttkrp_obs::registry().gauge("ooc.resident_tile_bytes");
        assert_eq!(g.value().max(0) as usize, resident_tile_bytes());
    }
}
