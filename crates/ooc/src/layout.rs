//! Tile-grid geometry: how an N-way dim grid is cut into tiles.
//!
//! A [`TiledLayout`] partitions the global index grid `I_0 × ⋯ ×
//! I_{N−1}` into axis-aligned tiles of nominal shape `T_0 × ⋯ ×
//! T_{N−1}`: mode `n` splits into `⌈I_n / T_n⌉` chunks, every chunk
//! full-sized except a possibly smaller last one (the *remainder*
//! chunk, when `T_n ∤ I_n`). Tiles are numbered by a **row-major tile
//! grid** (tile coordinate of mode 0 slowest, last mode fastest);
//! entries *within* a tile use the same natural linearization as every
//! dense tensor in the workspace (mode 0 fastest), so a loaded tile is
//! directly a [`mttkrp_tensor::DenseTensor`] of its own shape.
//!
//! The geometry is adversarial-shape-safe: prime dims, tile extents of
//! 1, tiles larger than the mode, and order-2..high tensors all reduce
//! to the same arithmetic, and every product is overflow-checked
//! through [`DimInfo`].

use mttkrp_tensor::DimInfo;

/// Environment variable holding the resident-memory budget in bytes
/// (suffixes `k`/`m`/`g` = binary kilo/mega/giga are accepted).
pub const BUDGET_ENV: &str = "MTTKRP_OOC_BUDGET";

/// A partition of an N-way dim grid into axis-aligned tiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TiledLayout {
    info: DimInfo,
    /// Nominal tile extent per mode (`1 ≤ tile[n] ≤ dims[n]`).
    tile: Vec<usize>,
    /// Tiles per mode: `grid[n] = ⌈dims[n] / tile[n]⌉`.
    grid: Vec<usize>,
    /// Total tile count, `Π grid[n]`.
    ntiles: usize,
}

impl TiledLayout {
    /// Build a layout with the given nominal tile extents; extents are
    /// clamped to the dims (a tile larger than the mode is the whole
    /// mode).
    ///
    /// # Panics
    /// Panics on an empty or zero dim list, or a zero tile extent.
    pub fn new(dims: &[usize], tile_dims: &[usize]) -> Self {
        let info = DimInfo::new(dims);
        assert_eq!(
            tile_dims.len(),
            dims.len(),
            "one tile extent per tensor mode"
        );
        assert!(
            tile_dims.iter().all(|&t| t > 0),
            "zero tile extents are not supported"
        );
        let tile: Vec<usize> = tile_dims
            .iter()
            .zip(dims)
            .map(|(&t, &d)| t.min(d))
            .collect();
        let grid: Vec<usize> = tile
            .iter()
            .zip(dims)
            .map(|(&t, &d)| d.div_ceil(t))
            .collect();
        let ntiles = grid
            .iter()
            .try_fold(1usize, |acc, &g| acc.checked_mul(g))
            .expect("tile count overflows usize");
        TiledLayout {
            info,
            tile,
            grid,
            ntiles,
        }
    }

    /// Pick the tile grid for a resident-memory budget of
    /// `budget_bytes`: the largest power-of-two subdivision whose
    /// **two** tile buffers (compute + prefetch) fit the budget.
    /// Starting from one whole-tensor tile, the largest tile extent is
    /// halved until `2 · tile_bytes ≤ budget_bytes` or every extent is
    /// 1 (the floor: two single-entry buffers, 16 bytes).
    pub fn for_budget(dims: &[usize], budget_bytes: usize) -> Self {
        let mut tile: Vec<usize> = dims.to_vec();
        loop {
            let entries: usize = tile.iter().product();
            if 2 * entries * 8 <= budget_bytes {
                break;
            }
            // Halve the largest extent, keeping tiles compact.
            let (argmax, &max) = tile
                .iter()
                .enumerate()
                .max_by_key(|&(_, &t)| t)
                .expect("at least one mode");
            if max == 1 {
                break; // budget below the 2-entry floor; best effort
            }
            tile[argmax] = max.div_ceil(2);
        }
        Self::new(dims, &tile)
    }

    /// [`TiledLayout::for_budget`] with the budget taken from the
    /// [`BUDGET_ENV`] environment variable when set, else
    /// `default_budget_bytes`. This is what tests, examples, and CLI
    /// defaults use, so a CI leg can shrink every tile grid at once.
    pub fn for_budget_env(dims: &[usize], default_budget_bytes: usize) -> Self {
        Self::for_budget(dims, budget_from_env().unwrap_or(default_budget_bytes))
    }

    /// Global tensor dimensions.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        self.info.dims()
    }

    /// Global shape metadata.
    #[inline]
    pub fn dim_info(&self) -> &DimInfo {
        &self.info
    }

    /// Number of modes.
    #[inline]
    pub fn order(&self) -> usize {
        self.info.order()
    }

    /// Nominal tile extents.
    #[inline]
    pub fn tile_dims(&self) -> &[usize] {
        &self.tile
    }

    /// Tiles per mode.
    #[inline]
    pub fn grid(&self) -> &[usize] {
        &self.grid
    }

    /// Total number of tiles.
    #[inline]
    pub fn ntiles(&self) -> usize {
        self.ntiles
    }

    /// Entry count of a full (non-remainder) tile — the largest any
    /// tile gets, hence the size tile buffers are allocated at.
    #[inline]
    pub fn max_tile_entries(&self) -> usize {
        self.tile.iter().product()
    }

    /// Tile coordinate of tile `t` under the row-major grid numbering
    /// (mode 0 slowest, last mode fastest).
    ///
    /// # Panics
    /// Panics if `t` is out of range.
    pub fn tile_coord(&self, t: usize) -> Vec<usize> {
        assert!(t < self.ntiles, "tile {t} out of range ({})", self.ntiles);
        let mut coord = vec![0usize; self.grid.len()];
        let mut rem = t;
        for (c, &g) in coord.iter_mut().zip(&self.grid).rev() {
            *c = rem % g;
            rem /= g;
        }
        coord
    }

    /// Inverse of [`TiledLayout::tile_coord`].
    ///
    /// # Panics
    /// Panics if any coordinate is out of its grid range.
    pub fn tile_id(&self, coord: &[usize]) -> usize {
        assert_eq!(coord.len(), self.grid.len(), "one coordinate per mode");
        let mut t = 0usize;
        for (&c, &g) in coord.iter().zip(&self.grid) {
            assert!(c < g, "tile coordinate {c} out of grid range {g}");
            t = t * g + c;
        }
        t
    }

    /// Global index where tile `t` starts, per mode.
    pub fn tile_offset(&self, t: usize) -> Vec<usize> {
        self.tile_coord(t)
            .iter()
            .zip(&self.tile)
            .map(|(&c, &tl)| c * tl)
            .collect()
    }

    /// Shape of tile `t` (full extents except remainder chunks).
    pub fn tile_shape(&self, t: usize) -> Vec<usize> {
        self.tile_coord(t)
            .iter()
            .zip(self.tile.iter().zip(self.info.dims()))
            .map(|(&c, (&tl, &d))| (d - c * tl).min(tl))
            .collect()
    }

    /// Shape metadata of tile `t` (its per-tile [`DimInfo`]).
    pub fn tile_info(&self, t: usize) -> DimInfo {
        DimInfo::new(&self.tile_shape(t))
    }

    /// Entry count of tile `t`.
    pub fn tile_entries(&self, t: usize) -> usize {
        self.tile_shape(t).iter().product()
    }

    /// Bitmask of modes in which tile `t` is the remainder chunk
    /// (smaller than the nominal extent). Tiles with equal masks have
    /// equal shapes, so the mask doubles as a shape key — there are at
    /// most `2^order` distinct tile shapes.
    pub fn shape_mask(&self, t: usize) -> usize {
        let coord = self.tile_coord(t);
        let mut mask = 0usize;
        for (n, &c) in coord.iter().enumerate() {
            if c == self.grid[n] - 1 && !self.info.dim(n).is_multiple_of(self.tile[n]) {
                mask |= 1 << n;
            }
        }
        mask
    }

    /// The tile shape for a given shape mask (see
    /// [`TiledLayout::shape_mask`]), regardless of whether any tile
    /// actually has it.
    pub fn mask_shape(&self, mask: usize) -> Vec<usize> {
        (0..self.order())
            .map(|n| {
                if mask & (1 << n) != 0 {
                    self.info.dim(n) % self.tile[n]
                } else {
                    self.tile[n]
                }
            })
            .collect()
    }

    /// Every shape mask some tile actually has, in ascending order.
    /// (`mask` bit `n` is achievable iff mode `n` has a remainder
    /// chunk; the achievable masks are the subsets of those bits.)
    pub fn achievable_masks(&self) -> Vec<usize> {
        let rem_bits: Vec<usize> = (0..self.order())
            .filter(|&n| !self.info.dim(n).is_multiple_of(self.tile[n]))
            .map(|n| 1usize << n)
            .collect();
        let mut masks = Vec::with_capacity(1 << rem_bits.len());
        for sub in 0..(1usize << rem_bits.len()) {
            let mut mask = 0usize;
            for (i, &bit) in rem_bits.iter().enumerate() {
                if sub & (1 << i) != 0 {
                    mask |= bit;
                }
            }
            masks.push(mask);
        }
        masks.sort_unstable();
        masks
    }

    /// Map a global multi-index to `(tile id, local multi-index)`.
    pub fn locate(&self, global: &[usize]) -> (usize, Vec<usize>) {
        assert_eq!(global.len(), self.order(), "one index per mode");
        let mut coord = Vec::with_capacity(self.order());
        let mut local = Vec::with_capacity(self.order());
        for (n, &g) in global.iter().enumerate() {
            assert!(g < self.info.dim(n), "index {g} out of mode {n}");
            coord.push(g / self.tile[n]);
            local.push(g % self.tile[n]);
        }
        (self.tile_id(&coord), local)
    }

    /// Map `(tile id, local multi-index)` back to the global
    /// multi-index (inverse of [`TiledLayout::locate`]).
    pub fn global_of(&self, t: usize, local: &[usize]) -> Vec<usize> {
        let off = self.tile_offset(t);
        let shape = self.tile_shape(t);
        assert_eq!(local.len(), self.order(), "one index per mode");
        local
            .iter()
            .zip(off.iter().zip(&shape))
            .map(|(&l, (&o, &s))| {
                assert!(l < s, "local index {l} out of tile extent {s}");
                o + l
            })
            .collect()
    }
}

/// Parse the [`BUDGET_ENV`] environment variable, if set and valid.
pub fn budget_from_env() -> Option<usize> {
    let raw = std::env::var(BUDGET_ENV).ok()?;
    parse_budget(&raw)
}

/// Parse a byte-count string: a plain integer, optionally suffixed
/// with `k`, `m`, or `g` (binary multiples, case-insensitive).
pub fn parse_budget(s: &str) -> Option<usize> {
    let s = s.trim();
    let (digits, mult) = match s.chars().last()? {
        'k' | 'K' => (&s[..s.len() - 1], 1usize << 10),
        'm' | 'M' => (&s[..s.len() - 1], 1usize << 20),
        'g' | 'G' => (&s[..s.len() - 1], 1usize << 30),
        _ => (s, 1usize),
    };
    let n: usize = digits.trim().parse().ok()?;
    n.checked_mul(mult)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_grid_has_uniform_tiles() {
        let l = TiledLayout::new(&[6, 4], &[3, 2]);
        assert_eq!(l.grid(), &[2, 2]);
        assert_eq!(l.ntiles(), 4);
        for t in 0..4 {
            assert_eq!(l.tile_shape(t), vec![3, 2]);
            assert_eq!(l.shape_mask(t), 0);
        }
        assert_eq!(l.achievable_masks(), vec![0]);
    }

    #[test]
    fn ragged_grid_has_remainder_tiles() {
        let l = TiledLayout::new(&[7, 5], &[3, 2]);
        assert_eq!(l.grid(), &[3, 3]);
        // Row-major ids: coordinate (c0, c1) -> c0 * 3 + c1.
        assert_eq!(l.tile_coord(5), vec![1, 2]);
        assert_eq!(l.tile_id(&[1, 2]), 5);
        // Tile (2, 2) is the remainder in both modes: 7 = 3+3+1, 5 = 2+2+1.
        let t = l.tile_id(&[2, 2]);
        assert_eq!(l.tile_shape(t), vec![1, 1]);
        assert_eq!(l.shape_mask(t), 0b11);
        assert_eq!(l.tile_offset(t), vec![6, 4]);
        assert_eq!(l.achievable_masks(), vec![0b00, 0b01, 0b10, 0b11]);
        let total: usize = (0..l.ntiles()).map(|t| l.tile_entries(t)).sum();
        assert_eq!(total, 35);
    }

    #[test]
    fn oversized_tile_clamps_to_whole_mode() {
        let l = TiledLayout::new(&[4, 3], &[99, 2]);
        assert_eq!(l.tile_dims(), &[4, 2]);
        assert_eq!(l.grid(), &[1, 2]);
    }

    #[test]
    fn budget_picks_two_tiles_within_budget() {
        let dims = [40usize, 40, 40]; // 512_000 bytes
        let budget = 128 * 1024;
        let l = TiledLayout::for_budget(&dims, budget);
        assert!(2 * l.max_tile_entries() * 8 <= budget, "layout {l:?}");
        assert!(l.ntiles() > 1);
        // A budget bigger than the tensor keeps it one tile.
        let l = TiledLayout::for_budget(&dims, 2 * 512_000 + 16);
        assert_eq!(l.ntiles(), 1);
    }

    #[test]
    fn budget_floor_is_single_entry_tiles() {
        let l = TiledLayout::for_budget(&[3, 3], 1);
        assert_eq!(l.tile_dims(), &[1, 1]);
        assert_eq!(l.ntiles(), 9);
    }

    #[test]
    fn parse_budget_suffixes() {
        assert_eq!(parse_budget("4096"), Some(4096));
        assert_eq!(parse_budget("4k"), Some(4096));
        assert_eq!(parse_budget("2M"), Some(2 << 20));
        assert_eq!(parse_budget("1g"), Some(1 << 30));
        assert_eq!(parse_budget(" 8 k "), Some(8192));
        assert_eq!(parse_budget("nope"), None);
        assert_eq!(parse_budget(""), None);
    }

    #[test]
    #[should_panic(expected = "zero tile extents")]
    fn zero_tile_extent_rejected() {
        let _ = TiledLayout::new(&[3, 3], &[1, 0]);
    }

    #[test]
    fn locate_round_trips() {
        let l = TiledLayout::new(&[7, 5, 3], &[3, 2, 3]);
        let (t, local) = l.locate(&[6, 3, 2]);
        assert_eq!(l.global_of(t, &local), vec![6, 3, 2]);
    }
}
