//! The out-of-core tensor and its streaming MTTKRP plans.
//!
//! [`OocTensor`] implements [`MttkrpBackend`], so `cp_als` /
//! `cp_gradient` run unchanged on a tensor that never fully
//! materializes: the mode-`n` MTTKRP decomposes over tiles,
//!
//! ```text
//! M[o_n .. o_n+s_n, :] += MTTKRP_n( X_tile, U_0[o_0..], …, U_{N−1}[o_{N−1}..] )
//! ```
//!
//! — each tile is a small dense tensor whose MTTKRP against the
//! row-sliced factors is exactly the planned dense kernel of
//! `mttkrp-core` (1-step/2-step, SIMD `KernelSet`, per-thread
//! accumulators merged through the element-range reduction). The
//! [`OocMttkrpPlanSet`] mirrors the dense/sparse plan split: per mode,
//! one pre-built [`MttkrpPlan`] per distinct tile *shape* (at most
//! `2^N`, from remainder chunks), plus a shared tile-output scratch.
//!
//! Streaming overlaps I/O with compute: a dedicated I/O thread owns its
//! own file handle and prefetches tile `k+1` into the second half of a
//! double buffer while the pool runs tile `k`'s MTTKRP. The two
//! [`TileBuf`]s ping-pong between the threads over channels, so peak
//! resident tensor bytes are **2 tiles + workspaces** — instrumented by
//! [`crate::metrics`], bounded by the budget that picked the tile grid.

use std::io;
use std::path::Path;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;
use std::time::Instant;

use mttkrp_blas::{axpy, MatRef};
use mttkrp_core::{AlgoChoice, Breakdown, MttkrpBackend, MttkrpPlan};
use mttkrp_parallel::ThreadPool;
use mttkrp_tensor::DenseTensor;

use crate::layout::TiledLayout;
use crate::metrics::TileBuf;
use crate::store::{TileReader, TileStore};

/// A disk-resident dense tensor: an opened [`TileStore`] plus the
/// cached Frobenius norm (computed in one streaming pass at open).
#[derive(Debug)]
pub struct OocTensor {
    store: TileStore,
    norm: f64,
}

impl OocTensor {
    /// Open a tile store as a decomposable tensor. Streams every tile
    /// once to cache the Frobenius norm (one tile buffer resident).
    pub fn open(path: impl AsRef<Path>) -> io::Result<OocTensor> {
        Self::from_store(TileStore::open(path)?)
    }

    /// Wrap an already opened store.
    pub fn from_store(store: TileStore) -> io::Result<OocTensor> {
        let layout = store.layout().clone();
        let mut reader = store.reader()?;
        let mut buf = TileBuf::new(layout.max_tile_entries());
        let mut sumsq = 0.0;
        for t in 0..layout.ntiles() {
            let v = buf.vec_mut();
            v.resize(layout.tile_entries(t), 0.0);
            reader.read_tile_into(t, v)?;
            sumsq += v.iter().map(|&x| x * x).sum::<f64>();
        }
        Ok(OocTensor {
            store,
            norm: sumsq.sqrt(),
        })
    }

    /// The underlying store.
    #[inline]
    pub fn store(&self) -> &TileStore {
        &self.store
    }

    /// The tile geometry.
    #[inline]
    pub fn layout(&self) -> &TiledLayout {
        self.store.layout()
    }

    /// Tensor dimensions.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        self.layout().dims()
    }

    /// Cached Frobenius norm.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.norm
    }
}

/// Request to the prefetch thread: fill `buf` with tile `tile`.
struct FillReq {
    tile: usize,
    buf: TileBuf,
}

/// The I/O half of the double buffer: a thread owning a private
/// [`TileReader`], receiving fill requests and returning filled
/// buffers. Dropping the engine closes the request channel, which ends
/// the thread; the handle is joined to surface panics.
struct PrefetchEngine {
    req_tx: Option<Sender<FillReq>>,
    resp_rx: Receiver<io::Result<(usize, TileBuf)>>,
    handle: Option<JoinHandle<()>>,
}

impl PrefetchEngine {
    fn spawn(mut reader: TileReader) -> PrefetchEngine {
        let (req_tx, req_rx) = channel::<FillReq>();
        let (resp_tx, resp_rx) = channel::<io::Result<(usize, TileBuf)>>();
        let handle = std::thread::Builder::new()
            .name("mttkrp-ooc-prefetch".into())
            .spawn(move || {
                while let Ok(FillReq { tile, mut buf }) = req_rx.recv() {
                    // Recorded on this thread's own span buffer, so the
                    // trace timeline shows reads running concurrently
                    // with the compute thread's tile spans.
                    let _span = mttkrp_obs::span!("tile_read", tile = tile);
                    let entries = reader.layout().tile_entries(tile);
                    let v = buf.vec_mut();
                    v.resize(entries, 0.0);
                    let res = reader.read_tile_into(tile, v).map(|()| (tile, buf));
                    if resp_tx.send(res).is_err() {
                        break;
                    }
                }
            })
            .expect("failed to spawn the OOC prefetch thread");
        PrefetchEngine {
            req_tx: Some(req_tx),
            resp_rx,
            handle: Some(handle),
        }
    }

    fn request(&self, tile: usize, buf: TileBuf) {
        self.req_tx
            .as_ref()
            .expect("prefetch engine already shut down")
            .send(FillReq { tile, buf })
            .expect("OOC prefetch thread exited unexpectedly");
    }

    fn receive(&self) -> (usize, TileBuf) {
        self.resp_rx
            .recv()
            .expect("OOC prefetch thread exited unexpectedly")
            .unwrap_or_else(|e| panic!("out-of-core tile read failed: {e}"))
    }
}

impl Drop for PrefetchEngine {
    fn drop(&mut self) {
        drop(self.req_tx.take()); // closes the request channel
        while self.resp_rx.try_recv().is_ok() {} // drain in-flight buffers
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Per-mode kernels: one planned dense MTTKRP per distinct tile shape,
/// indexed by the layout's shape mask.
struct ModePlans {
    /// `plans[mask]` is `Some` for every achievable mask.
    plans: Vec<Option<MttkrpPlan>>,
}

/// Reusable out-of-core MTTKRP execution state for every mode of one
/// store: the tile-shape plan table, the double buffer, the prefetch
/// thread, and the tile-output scratch. Built once per (store, rank,
/// team) by [`MttkrpBackend::plan_modes`] and carried across CP-ALS
/// sweeps, like the dense [`mttkrp_core::MttkrpPlanSet`].
pub struct OocMttkrpPlanSet {
    layout: TiledLayout,
    c: usize,
    threads: usize,
    modes: Vec<ModePlans>,
    /// Tile-output scratch (`max_n tile[n] · C`).
    tile_out: Vec<f64>,
    /// The two halves of the double buffer, parked between executions.
    bufs: [Option<TileBuf>; 2],
    engine: PrefetchEngine,
    /// Seconds the last execution spent blocked on tile I/O (prefetch
    /// misses); `0` means compute fully hid the I/O.
    last_io_wait: f64,
}

impl OocMttkrpPlanSet {
    /// Plan every mode of `x` at rank `c` on `pool`'s team.
    ///
    /// `choice` follows the dense meaning; `None` (the explicit
    /// baseline, which has no out-of-core formulation — it would
    /// materialize the matricization) falls back to
    /// [`AlgoChoice::Tuned`] planned kernels: with a loaded tuning
    /// profile every distinct tile shape is priced by the calibrated
    /// cost model, and without one `Tuned` is exactly the paper's
    /// heuristic.
    pub fn new(
        pool: &ThreadPool,
        x: &OocTensor,
        c: usize,
        choice: Option<AlgoChoice>,
    ) -> OocMttkrpPlanSet {
        assert!(c > 0, "rank must be positive");
        let layout = x.layout().clone();
        assert!(layout.order() >= 2, "MTTKRP requires an order >= 2 tensor");
        let choice = choice.unwrap_or(AlgoChoice::Tuned);
        let masks = layout.achievable_masks();
        let nmasks = 1usize << layout.order();
        let modes = (0..layout.order())
            .map(|n| {
                let mut plans: Vec<Option<MttkrpPlan>> = (0..nmasks).map(|_| None).collect();
                for &m in &masks {
                    let shape = layout.mask_shape(m);
                    plans[m] = Some(MttkrpPlan::new(pool, &shape, c, n, choice));
                }
                ModePlans { plans }
            })
            .collect();
        let max_out = layout
            .tile_dims()
            .iter()
            .max()
            .copied()
            .expect("at least one mode")
            * c;
        let engine = PrefetchEngine::spawn(
            x.store()
                .reader()
                .unwrap_or_else(|e| panic!("cannot reopen tile store for prefetch: {e}")),
        );
        OocMttkrpPlanSet {
            threads: pool.num_threads(),
            c,
            modes,
            tile_out: vec![0.0; max_out],
            bufs: [
                Some(TileBuf::new(layout.max_tile_entries())),
                Some(TileBuf::new(layout.max_tile_entries())),
            ],
            layout,
            engine,
            last_io_wait: 0.0,
        }
    }

    /// Decomposition rank the plans were built for.
    #[inline]
    pub fn rank(&self) -> usize {
        self.c
    }

    /// The kernel tier the tile plans dispatch to.
    pub fn kernel_tier(&self) -> mttkrp_blas::KernelTier {
        self.modes[0]
            .plans
            .iter()
            .flatten()
            .next()
            .expect("at least one achievable tile shape")
            .kernel_tier()
    }

    /// Seconds the most recent execution spent blocked waiting for
    /// tile reads — the part of the I/O the compute did *not* hide.
    #[inline]
    pub fn last_io_wait(&self) -> f64 {
        self.last_io_wait
    }

    /// Execute the streaming mode-`n` MTTKRP: `out ← X(n) · (⊙_{k≠n}
    /// U_k)`, row-major `I_n × C`, overwritten. Tiles flow through the
    /// double buffer in id order; tile `k+1` prefetches during tile
    /// `k`'s compute.
    pub fn execute_timed(
        &mut self,
        pool: &ThreadPool,
        factors: &[MatRef<'_>],
        n: usize,
        out: &mut [f64],
    ) -> Breakdown {
        let dims = self.layout.dims().to_vec();
        let c = self.c;
        assert!(n < dims.len(), "mode {n} out of range");
        assert_eq!(
            pool.num_threads(),
            self.threads,
            "pool size differs from the planned team"
        );
        assert_eq!(
            factors.len(),
            dims.len(),
            "one factor matrix per tensor mode"
        );
        for (k, (f, &d)) in factors.iter().zip(&dims).enumerate() {
            assert_eq!(f.nrows(), d, "factor {k} must have I_{k} rows");
            assert_eq!(f.ncols(), c, "factor {k} must have C columns");
        }
        assert_eq!(out.len(), dims[n] * c, "output must be I_n × C");

        let _span = mttkrp_obs::span!("ooc_mttkrp", mode = n);
        let wall_t0 = Instant::now();
        let mut bd = Breakdown::default();
        let mut io_wait = 0.0;
        out.fill(0.0);

        let nt = self.layout.ntiles();
        let mut spare = Some(self.bufs[1].take().expect("double buffer half missing"));
        let mut parked: Option<TileBuf> = None;
        self.engine
            .request(0, self.bufs[0].take().expect("double buffer half missing"));
        let mut srefs: Vec<MatRef> = Vec::with_capacity(dims.len());
        for k in 0..nt {
            let t0 = Instant::now();
            let (tile_id, mut buf) = {
                let _wait_span = mttkrp_obs::span_full!("tile_wait", tile = k);
                self.engine.receive()
            };
            io_wait += t0.elapsed().as_secs_f64();
            debug_assert_eq!(tile_id, k, "tiles must arrive in request order");
            let free = spare.take().expect("double buffer half missing");
            if k + 1 < nt {
                self.engine.request(k + 1, free);
            } else {
                // Last tile: nothing left to prefetch into the other
                // half; park it for the next execution.
                parked = Some(free);
            }

            let shape = self.layout.tile_shape(k);
            let offs = self.layout.tile_offset(k);
            let mask = self.layout.shape_mask(k);
            let plan = self.modes[n].plans[mask]
                .as_mut()
                .expect("achievable mask has a plan");
            let tile = DenseTensor::from_vec(&shape, buf.take_vec());
            srefs.clear();
            srefs.extend(
                factors
                    .iter()
                    .enumerate()
                    .map(|(m, f)| f.submatrix(offs[m], 0, shape[m], c)),
            );
            let rows = shape[n] * c;
            let tile_bd = {
                let _compute_span = mttkrp_obs::span_full!("tile_compute", tile = k);
                plan.execute_timed(pool, &tile, &srefs, &mut self.tile_out[..rows])
            };
            bd.accumulate_phases(&tile_bd);
            // Accumulate into the owned output row block (tiles sharing
            // a mode-n chunk share rows; the block is contiguous
            // because out is row-major I_n × C).
            let o = offs[n] * c;
            axpy(1.0, &self.tile_out[..rows], &mut out[o..o + rows]);
            buf.put_vec(tile.into_vec());
            spare = Some(buf);
        }
        // Park both halves for the next execution.
        self.bufs[0] = Some(spare.expect("double buffer half missing"));
        self.bufs[1] = Some(parked.expect("double buffer half missing"));

        self.last_io_wait = io_wait;
        mttkrp_obs::counter!("ooc.io_wait_ns").add((io_wait * 1e9) as u64);
        mttkrp_obs::counter!("ooc.tiles_read").add(nt as u64);
        bd.total = wall_t0.elapsed().as_secs_f64();
        bd
    }

    /// [`OocMttkrpPlanSet::execute_timed`] without the breakdown.
    pub fn execute(
        &mut self,
        pool: &ThreadPool,
        factors: &[MatRef<'_>],
        n: usize,
        out: &mut [f64],
    ) {
        let _ = self.execute_timed(pool, factors, n, out);
    }
}

impl MttkrpBackend for OocTensor {
    type Elem = f64;
    type PlanSet = OocMttkrpPlanSet;

    fn dims(&self) -> &[usize] {
        OocTensor::dims(self)
    }

    fn norm(&self) -> f64 {
        OocTensor::norm(self)
    }

    fn plan_modes(
        &self,
        pool: &ThreadPool,
        c: usize,
        choice: Option<AlgoChoice>,
    ) -> OocMttkrpPlanSet {
        OocMttkrpPlanSet::new(pool, self, c, choice)
    }

    fn mttkrp_planned(
        &self,
        plans: &mut OocMttkrpPlanSet,
        pool: &ThreadPool,
        factors: &[MatRef<'_>],
        n: usize,
        out: &mut [f64],
    ) -> Breakdown {
        assert_eq!(
            plans.layout.dims(),
            self.dims(),
            "plan set was built for a different shape"
        );
        plans.execute_timed(pool, factors, n, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mttkrp_blas::Layout;
    use mttkrp_core::mttkrp_oracle;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "mttkrp_ooc_tensor_{name}_{}.mttb",
            std::process::id()
        ))
    }

    fn rand_tensor(dims: &[usize], seed: u64) -> DenseTensor {
        let mut rng = mttkrp_rng::Rng64::seed_from_u64(seed);
        DenseTensor::from_fn(dims, || rng.next_f64() - 0.5)
    }

    fn rand_factors(dims: &[usize], c: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = mttkrp_rng::Rng64::seed_from_u64(seed);
        dims.iter()
            .map(|&d| (0..d * c).map(|_| rng.next_f64() - 0.5).collect())
            .collect()
    }

    #[test]
    fn streaming_mttkrp_matches_oracle() {
        let dims = [7usize, 5, 6];
        let c = 3;
        let x = rand_tensor(&dims, 11);
        let factors = rand_factors(&dims, c, 12);
        let refs: Vec<MatRef> = factors
            .iter()
            .zip(&dims)
            .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
            .collect();
        let path = tmp("oracle");
        let layout = TiledLayout::new(&dims, &[3, 2, 4]);
        let store = TileStore::write_dense(&path, &layout, &x).unwrap();
        let ooc = OocTensor::from_store(store).unwrap();
        assert!((ooc.norm() - x.norm()).abs() < 1e-12 * (1.0 + x.norm()));

        for t in [1usize, 3] {
            let pool = ThreadPool::new(t);
            let mut plans = ooc.plan_modes(&pool, c, Some(AlgoChoice::Heuristic));
            for n in 0..dims.len() {
                let mut want = vec![0.0; dims[n] * c];
                mttkrp_oracle(&x, &refs, n, &mut want);
                let mut got = vec![f64::NAN; dims[n] * c];
                let bd = ooc.mttkrp_planned(&mut plans, &pool, &refs, n, &mut got);
                assert!(bd.total > 0.0);
                for (a, b) in got.iter().zip(&want) {
                    assert!(
                        (a - b).abs() < 1e-12 * (1.0 + b.abs()),
                        "t={t} n={n}: {a} vs {b}"
                    );
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn single_tile_store_works() {
        // Degenerate grid: the whole tensor is one tile; the double
        // buffer's second half stays parked.
        let dims = [4usize, 3];
        let c = 2;
        let x = rand_tensor(&dims, 5);
        let factors = rand_factors(&dims, c, 6);
        let refs: Vec<MatRef> = factors
            .iter()
            .zip(&dims)
            .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
            .collect();
        let path = tmp("single");
        let layout = TiledLayout::new(&dims, &dims);
        let store = TileStore::write_dense(&path, &layout, &x).unwrap();
        let ooc = OocTensor::from_store(store).unwrap();
        let pool = ThreadPool::new(2);
        let mut plans = ooc.plan_modes(&pool, c, None);
        for n in 0..2 {
            let mut want = vec![0.0; dims[n] * c];
            mttkrp_oracle(&x, &refs, n, &mut want);
            let mut got = vec![f64::NAN; dims[n] * c];
            plans.execute(&pool, &refs, n, &mut got);
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-12 * (1.0 + b.abs()), "n={n}");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn repeated_execution_is_stable() {
        let dims = [5usize, 4, 3];
        let c = 2;
        let x = rand_tensor(&dims, 21);
        let factors = rand_factors(&dims, c, 22);
        let refs: Vec<MatRef> = factors
            .iter()
            .zip(&dims)
            .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
            .collect();
        let path = tmp("stable");
        let layout = TiledLayout::new(&dims, &[2, 2, 2]);
        let ooc =
            OocTensor::from_store(TileStore::write_dense(&path, &layout, &x).unwrap()).unwrap();
        let pool = ThreadPool::new(1);
        let mut plans = OocMttkrpPlanSet::new(&pool, &ooc, c, Some(AlgoChoice::Heuristic));
        let mut first = vec![0.0; dims[1] * c];
        plans.execute(&pool, &refs, 1, &mut first);
        for _ in 0..3 {
            let mut again = vec![f64::NAN; dims[1] * c];
            plans.execute(&pool, &refs, 1, &mut again);
            assert_eq!(first, again, "drift across executions");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "pool size differs")]
    fn wrong_pool_size_panics() {
        let dims = [4usize, 3];
        let x = rand_tensor(&dims, 1);
        let path = tmp("pool");
        let layout = TiledLayout::new(&dims, &[2, 2]);
        let ooc =
            OocTensor::from_store(TileStore::write_dense(&path, &layout, &x).unwrap()).unwrap();
        let mut plans = OocMttkrpPlanSet::new(&ThreadPool::new(2), &ooc, 2, None);
        std::fs::remove_file(&path).ok();
        let factors = rand_factors(&dims, 2, 2);
        let refs: Vec<MatRef> = factors
            .iter()
            .zip(&dims)
            .map(|(f, &d)| MatRef::from_slice(f, d, 2, Layout::RowMajor))
            .collect();
        let mut out = vec![0.0; 8];
        plans.execute(&ThreadPool::new(3), &refs, 0, &mut out);
    }
}
