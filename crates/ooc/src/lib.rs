//! Out-of-core tiled tensor engine: decompose tensors that never fit
//! in RAM.
//!
//! The dense and sparse subsystems assume the tensor is resident; this
//! crate removes that assumption with three pieces:
//!
//! * [`TiledLayout`] — cuts the N-way dim grid into axis-aligned tiles
//!   (row-major tile grid, natural linearization within each tile) and
//!   can pick the grid from a byte budget ([`TiledLayout::for_budget`],
//!   honouring the `MTTKRP_OOC_BUDGET` environment variable through
//!   [`TiledLayout::for_budget_env`]).
//! * [`TileStore`] — the `MTTB` file format: checked header (magic,
//!   version, dims, tile grid, per-tile offsets), streaming
//!   `BufWriter` builds (from an in-core tensor **or** a generator
//!   closure, so fixtures bigger than the budget never exist in
//!   memory), positioned per-tile reads, and rejection of corrupt
//!   headers, truncation, and out-of-range reads.
//! * [`OocTensor`] — implements `mttkrp_core::MttkrpBackend` via
//!   [`OocMttkrpPlanSet`]: per-tile planned dense MTTKRPs (the same
//!   1-step/2-step SIMD kernels as in-core execution) against
//!   row-sliced factors, with a dedicated I/O thread prefetching tile
//!   `k+1` into the second half of a double buffer while the pool
//!   computes tile `k`. Because the CP drivers are backend-generic,
//!   `cp_als`/`cp_gradient` run out-of-core unchanged.
//!
//! Peak resident tensor bytes are capped at **2 tiles + workspaces**;
//! the [`metrics`] gauge instruments every tile buffer so the cap is a
//! tested invariant, not a comment.
//!
//! # Example
//!
//! ```
//! use mttkrp_ooc::{OocTensor, TiledLayout, TileStore};
//! use mttkrp_parallel::ThreadPool;
//! use mttkrp_tensor::DenseTensor;
//!
//! let dims = [6usize, 5, 4];
//! let x = DenseTensor::from_fn(&dims, {
//!     let mut k = 0.0f64;
//!     move || {
//!         k += 1.0;
//!         (k * 0.37).sin()
//!     }
//! });
//! // A budget far below the 960-byte tensor forces a multi-tile grid.
//! let layout = TiledLayout::for_budget(&dims, 400);
//! assert!(layout.ntiles() > 1);
//! let path = std::env::temp_dir().join("mttkrp_ooc_doc.mttb");
//! TileStore::write_dense(&path, &layout, &x).unwrap();
//! let ooc = OocTensor::open(&path).unwrap();
//! assert!((ooc.norm() - x.norm()).abs() < 1e-12);
//! # std::fs::remove_file(&path).ok();
//! ```

pub mod layout;
pub mod metrics;
pub mod store;
pub mod tensor;

pub use layout::{budget_from_env, parse_budget, TiledLayout, BUDGET_ENV};
pub use metrics::{
    peak_resident_tile_bytes, reset_peak_resident_tile_bytes, resident_tile_bytes, TileBuf,
};
pub use store::{TileReader, TileStore, TileStoreBuilder};
pub use tensor::{OocMttkrpPlanSet, OocTensor};
