//! The file-backed tile store — `MTTB`, the on-disk format of
//! out-of-core tensors.
//!
//! Layout (all little-endian):
//!
//! ```text
//! b"MTTB" u32(version=1) u32(ndims)
//! u64(dim)*ndims  u64(tile_dim)*ndims  u64(ntiles)
//! u64(file offset of tile t)*ntiles
//! f64(entry)* — tiles in id order, each in its own natural
//!               linearization (mode 0 fastest within the tile)
//! ```
//!
//! Tile offsets are fully determined by the geometry, so the header is
//! written up-front and tiles stream through a [`std::io::BufWriter`]
//! in id order — building a store never holds more than one tile in
//! memory ([`TileStore::write_with`] generates fixtures bigger than any
//! budget straight from a closure). Reads are positioned per tile; the
//! stored offsets are redundant with the geometry **on purpose**: the
//! reader recomputes them and rejects any mismatch, alongside
//! bad-magic, bad-version, zero/oversized extents, overflowing shape
//! products, truncation, and trailing garbage.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use mttkrp_tensor::DenseTensor;

use crate::layout::TiledLayout;
use crate::metrics::TileBuf;

const MAGIC: &[u8; 4] = b"MTTB";
const VERSION: u32 = 1;

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Bytes before the first tile for a given geometry (`None` if the
/// header itself overflows u64 — only reachable from forged input).
fn header_len(ndims: usize, ntiles: usize) -> Option<u64> {
    (ntiles as u64)
        .checked_mul(8)?
        .checked_add(12 + 16 * ndims as u64 + 8)
}

/// The expected absolute file offset of every tile (in id order) plus
/// the total file length. All arithmetic is checked: a forged header
/// whose payload exceeds u64 bytes must surface as `None` (rejected by
/// the caller), not wrap into a self-consistent-looking geometry.
fn expected_offsets(layout: &TiledLayout) -> Option<(Vec<u64>, u64)> {
    let mut offsets = Vec::with_capacity(layout.ntiles());
    let mut pos = header_len(layout.order(), layout.ntiles())?;
    for t in 0..layout.ntiles() {
        offsets.push(pos);
        pos = pos.checked_add((layout.tile_entries(t) as u64).checked_mul(8)?)?;
    }
    Some((offsets, pos))
}

/// A validated, opened tile store: geometry plus per-tile offsets.
/// Cheap to hold (no tile data); create [`TileReader`]s for I/O — each
/// reader owns its own file handle, so the prefetch thread and the
/// opening thread never share a seek position.
#[derive(Debug)]
pub struct TileStore {
    path: PathBuf,
    layout: TiledLayout,
    offsets: Vec<u64>,
}

impl TileStore {
    /// Open and validate a store.
    ///
    /// # Example
    ///
    /// ```
    /// use mttkrp_ooc::{TileStore, TiledLayout};
    /// use mttkrp_tensor::DenseTensor;
    ///
    /// let dims = [6usize, 5, 4];
    /// let x = DenseTensor::from_fn(&dims, {
    ///     let mut k = 0.0;
    ///     move || { k += 1.0; k }
    /// });
    /// let layout = TiledLayout::new(&dims, &[3, 5, 2]);
    /// let path = std::env::temp_dir().join("doctest-open.mttb");
    /// TileStore::write_dense(&path, &layout, &x)?;
    ///
    /// // Reopening re-validates the whole header: geometry, tile
    /// // offsets, and total file length.
    /// let store = TileStore::open(&path)?;
    /// assert_eq!(store.layout().dims(), &dims);
    /// assert_eq!(store.layout().ntiles(), 2 * 1 * 2);
    /// let mut reader = store.reader()?;
    /// let mut tile = vec![0.0; store.layout().tile_entries(0)];
    /// reader.read_tile_into(0, &mut tile)?;
    /// assert_eq!(tile[0], x.get(&[0, 0, 0]));
    /// # std::fs::remove_file(&path).ok();
    /// # Ok::<(), std::io::Error>(())
    /// ```
    pub fn open(path: impl AsRef<Path>) -> io::Result<TileStore> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path)?;
        let file_len = file.metadata()?.len();
        let mut r = BufReader::new(file);

        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)
            .map_err(|_| bad("not a tile store (truncated magic)"))?;
        if &magic != MAGIC {
            return Err(bad("not a tile store (bad magic)"));
        }
        if read_u32(&mut r)? != VERSION {
            return Err(bad("unsupported tile store version"));
        }
        let ndims = read_u32(&mut r)? as usize;
        if ndims == 0 {
            return Err(bad("tile store with zero modes"));
        }
        let mut dims = Vec::with_capacity(ndims);
        for _ in 0..ndims {
            let d = read_u64(&mut r)? as usize;
            if d == 0 {
                return Err(bad("zero-length tensor mode"));
            }
            dims.push(d);
        }
        let mut tile = Vec::with_capacity(ndims);
        for (n, &d) in dims.iter().enumerate() {
            let t = read_u64(&mut r)? as usize;
            if t == 0 || t > d {
                return Err(bad(format!("tile extent {t} invalid for mode {n} ({d})")));
            }
            tile.push(t);
        }
        // Checked products before DimInfo construction: forged shapes
        // must fail cleanly, not panic.
        dims.iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .ok_or_else(|| bad("tensor shape overflows"))?;
        dims.iter()
            .zip(&tile)
            .try_fold(1usize, |acc, (&d, &t)| acc.checked_mul(d.div_ceil(t)))
            .ok_or_else(|| bad("tile count overflows"))?;
        let layout = TiledLayout::new(&dims, &tile);
        let ntiles = read_u64(&mut r)? as usize;
        if ntiles != layout.ntiles() {
            return Err(bad(format!(
                "tile count {ntiles} disagrees with the {}-tile geometry",
                layout.ntiles()
            )));
        }
        let (want, expected_len) =
            expected_offsets(&layout).ok_or_else(|| bad("tile store byte size overflows"))?;
        let mut offsets = Vec::with_capacity(ntiles);
        for (t, &w) in want.iter().enumerate() {
            let o = read_u64(&mut r)?;
            if o != w {
                return Err(bad(format!(
                    "tile {t} offset {o} disagrees with geometry ({w})"
                )));
            }
            offsets.push(o);
        }
        if file_len != expected_len {
            return Err(bad(format!(
                "tile store length mismatch: file is {file_len} bytes, geometry needs {expected_len}"
            )));
        }
        Ok(TileStore {
            path,
            layout,
            offsets,
        })
    }

    /// Quick magic sniff: does `path` start with the `MTTB` magic?
    pub fn is_tile_store(path: impl AsRef<Path>) -> bool {
        let mut magic = [0u8; 4];
        File::open(path)
            .and_then(|mut f| f.read_exact(&mut magic))
            .map(|()| &magic == MAGIC)
            .unwrap_or(false)
    }

    /// The store's tile geometry.
    #[inline]
    pub fn layout(&self) -> &TiledLayout {
        &self.layout
    }

    /// The backing file.
    #[inline]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Total tensor bytes on disk (payload only).
    pub fn payload_bytes(&self) -> u64 {
        8 * self.layout.dim_info().total() as u64
    }

    /// Open a positioned reader (own file handle).
    pub fn reader(&self) -> io::Result<TileReader> {
        Ok(TileReader {
            file: File::open(&self.path)?,
            layout: self.layout.clone(),
            offsets: self.offsets.clone(),
        })
    }

    /// Stream a dense tensor into a new store at `path`.
    pub fn write_dense(
        path: impl AsRef<Path>,
        layout: &TiledLayout,
        x: &DenseTensor,
    ) -> io::Result<TileStore> {
        assert_eq!(x.dims(), layout.dims(), "tensor shape must match layout");
        let mut b = TileStoreBuilder::create(&path, layout.clone())?;
        let mut buf = TileBuf::new(layout.max_tile_entries());
        for t in 0..layout.ntiles() {
            let v = buf.vec_mut();
            v.resize(layout.tile_entries(t), 0.0);
            x.gather_block(&layout.tile_offset(t), &layout.tile_shape(t), v);
            b.write_tile(v)?;
        }
        drop(buf);
        b.finish()?;
        TileStore::open(path)
    }

    /// Stream a generated tensor into a new store at `path`: `f` is
    /// called once per entry with its **global** multi-index. Only one
    /// tile buffer is ever resident, so fixtures far larger than any
    /// memory budget can be produced without materializing them.
    pub fn write_with(
        path: impl AsRef<Path>,
        layout: &TiledLayout,
        mut f: impl FnMut(&[usize]) -> f64,
    ) -> io::Result<TileStore> {
        let mut b = TileStoreBuilder::create(&path, layout.clone())?;
        let mut buf = TileBuf::new(layout.max_tile_entries());
        let mut global = vec![0usize; layout.order()];
        for t in 0..layout.ntiles() {
            let off = layout.tile_offset(t);
            let info = layout.tile_info(t);
            let v = buf.vec_mut();
            v.resize(info.total(), 0.0);
            let mut local = vec![0usize; layout.order()];
            for slot in v.iter_mut() {
                for (g, (&o, &l)) in global.iter_mut().zip(off.iter().zip(&local)) {
                    *g = o + l;
                }
                *slot = f(&global);
                info.increment(&mut local);
            }
            b.write_tile(v)?;
        }
        drop(buf);
        b.finish()?;
        TileStore::open(path)
    }

    /// Reassemble the whole tensor in memory (testing / small stores;
    /// defeats the point for anything budget-sized).
    pub fn read_dense(&self) -> io::Result<DenseTensor> {
        let mut x = DenseTensor::zeros(self.layout.dims());
        let mut r = self.reader()?;
        let mut buf = TileBuf::new(self.layout.max_tile_entries());
        for t in 0..self.layout.ntiles() {
            let v = buf.vec_mut();
            v.resize(self.layout.tile_entries(t), 0.0);
            r.read_tile_into(t, v)?;
            x.scatter_block(&self.layout.tile_offset(t), &self.layout.tile_shape(t), v);
        }
        Ok(x)
    }
}

/// A positioned per-tile reader over one open file handle.
#[derive(Debug)]
pub struct TileReader {
    file: File,
    layout: TiledLayout,
    offsets: Vec<u64>,
}

impl TileReader {
    /// Read tile `t` into `buf` (exactly the tile's entry count).
    ///
    /// Returns `InvalidData` for an out-of-range tile id; `buf` length
    /// mismatches panic (caller bug, not file corruption).
    pub fn read_tile_into(&mut self, t: usize, buf: &mut [f64]) -> io::Result<()> {
        if t >= self.layout.ntiles() {
            return Err(bad(format!(
                "tile {t} out of range ({} tiles)",
                self.layout.ntiles()
            )));
        }
        assert_eq!(
            buf.len(),
            self.layout.tile_entries(t),
            "buffer must match the tile entry count"
        );
        self.file.seek(SeekFrom::Start(self.offsets[t]))?;
        // Chunked byte→f64 conversion: bounded scratch, so a tile read
        // never doubles the resident bytes.
        let mut scratch = [0u8; 8 * 1024];
        let mut pos = 0usize;
        while pos < buf.len() {
            let n = (buf.len() - pos).min(1024);
            self.file.read_exact(&mut scratch[..8 * n])?;
            for (i, slot) in buf[pos..pos + n].iter_mut().enumerate() {
                *slot = f64::from_le_bytes(scratch[8 * i..8 * i + 8].try_into().unwrap());
            }
            pos += n;
        }
        Ok(())
    }

    /// The reader's tile geometry.
    #[inline]
    pub fn layout(&self) -> &TiledLayout {
        &self.layout
    }
}

/// Streaming store writer: header up-front, tiles in id order through
/// a [`BufWriter`].
#[derive(Debug)]
pub struct TileStoreBuilder {
    w: BufWriter<File>,
    layout: TiledLayout,
    next: usize,
}

impl TileStoreBuilder {
    /// Create the file at `path` and write the full header (offsets
    /// are geometry-determined, so no backpatching is needed).
    pub fn create(path: impl AsRef<Path>, layout: TiledLayout) -> io::Result<TileStoreBuilder> {
        let (offsets, _) =
            expected_offsets(&layout).ok_or_else(|| bad("tile store byte size overflows"))?;
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&(layout.order() as u32).to_le_bytes())?;
        for &d in layout.dims() {
            w.write_all(&(d as u64).to_le_bytes())?;
        }
        for &t in layout.tile_dims() {
            w.write_all(&(t as u64).to_le_bytes())?;
        }
        w.write_all(&(layout.ntiles() as u64).to_le_bytes())?;
        for off in offsets {
            w.write_all(&off.to_le_bytes())?;
        }
        Ok(TileStoreBuilder { w, layout, next: 0 })
    }

    /// Append the next tile (tiles must arrive in id order).
    ///
    /// # Panics
    /// Panics if all tiles were already written or `data` is not
    /// exactly the tile's entry count.
    pub fn write_tile(&mut self, data: &[f64]) -> io::Result<()> {
        assert!(
            self.next < self.layout.ntiles(),
            "all {} tiles already written",
            self.layout.ntiles()
        );
        assert_eq!(
            data.len(),
            self.layout.tile_entries(self.next),
            "tile {} entry count mismatch",
            self.next
        );
        // Chunked f64→byte conversion mirrors the read path.
        let mut scratch = [0u8; 8 * 1024];
        for chunk in data.chunks(1024) {
            for (i, &v) in chunk.iter().enumerate() {
                scratch[8 * i..8 * i + 8].copy_from_slice(&v.to_le_bytes());
            }
            self.w.write_all(&scratch[..8 * chunk.len()])?;
        }
        self.next += 1;
        Ok(())
    }

    /// Tiles written so far.
    #[inline]
    pub fn tiles_written(&self) -> usize {
        self.next
    }

    /// Flush and close; fails unless every tile was written.
    pub fn finish(mut self) -> io::Result<()> {
        if self.next != self.layout.ntiles() {
            return Err(bad(format!(
                "store incomplete: {} of {} tiles written",
                self.next,
                self.layout.ntiles()
            )));
        }
        self.w.flush()
    }
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "mttkrp_ooc_store_{name}_{}.mttb",
            std::process::id()
        ))
    }

    fn iota(dims: &[usize]) -> DenseTensor {
        let mut c = -1.0;
        DenseTensor::from_fn(dims, || {
            c += 1.0;
            c
        })
    }

    #[test]
    fn write_read_round_trip() {
        let x = iota(&[7, 5, 3]);
        let layout = TiledLayout::new(&[7, 5, 3], &[3, 2, 3]);
        let path = tmp("round_trip");
        let store = TileStore::write_dense(&path, &layout, &x).unwrap();
        let back = store.read_dense().unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, x);
    }

    #[test]
    fn generator_store_equals_dense_store() {
        let dims = [5usize, 4, 3];
        let x = iota(&dims);
        let layout = TiledLayout::new(&dims, &[2, 3, 2]);
        let p1 = tmp("gen_a");
        let p2 = tmp("gen_b");
        TileStore::write_dense(&p1, &layout, &x).unwrap();
        let info = x.info().clone();
        TileStore::write_with(&p2, &layout, |idx| x.data()[info.linear(idx)]).unwrap();
        let a = std::fs::read(&p1).unwrap();
        let b = std::fs::read(&p2).unwrap();
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
        assert_eq!(a, b, "generator and dense writers must agree bytewise");
    }

    #[test]
    fn rejects_corruption() {
        let x = iota(&[4, 3]);
        let layout = TiledLayout::new(&[4, 3], &[2, 2]);
        let path = tmp("corrupt");
        TileStore::write_dense(&path, &layout, &x).unwrap();
        let good = std::fs::read(&path).unwrap();

        let check = |bytes: &[u8], what: &str| {
            std::fs::write(&path, bytes).unwrap();
            assert!(TileStore::open(&path).is_err(), "{what} must be rejected");
        };
        let mut b = good.clone();
        b[0] = b'X';
        check(&b, "bad magic");
        let mut b = good.clone();
        b[4] = 9;
        check(&b, "bad version");
        let mut b = good.clone();
        b[12..20].copy_from_slice(&0u64.to_le_bytes());
        check(&b, "zero dim");
        let mut b = good.clone();
        b[28..36].copy_from_slice(&99u64.to_le_bytes());
        check(&b, "oversized tile extent");
        let mut b = good.clone();
        // Forge the first tile offset.
        let off_pos = 12 + 16 * 2 + 8;
        b[off_pos..off_pos + 8].copy_from_slice(&7u64.to_le_bytes());
        check(&b, "forged offset");
        check(&good[..good.len() - 8], "truncated payload");
        check(&good[..20], "truncated header");
        let mut b = good.clone();
        b.extend_from_slice(&[0u8; 8]);
        check(&b, "trailing garbage");
        let mut b = good.clone();
        // Overflowing dims: 2 modes of 2^40.
        b[12..20].copy_from_slice(&(1u64 << 40).to_le_bytes());
        b[20..28].copy_from_slice(&(1u64 << 40).to_le_bytes());
        check(&b, "overflowing shape");

        std::fs::remove_file(&path).ok();
    }

    // Regression: a 60-byte header claiming a 2^31 × 2^30 tensor in
    // one tile passes every usize-checked product (2^61 entries fit),
    // but its *byte* size wraps u64 — the offset walk used to overflow
    // (debug panic; release wrapped to a self-consistent length and
    // opened the store, deferring a capacity-overflow panic to the
    // first tile read). It must be InvalidData.
    #[test]
    fn rejects_byte_size_wrapping_geometry() {
        let mut b = Vec::new();
        b.extend_from_slice(MAGIC);
        b.extend_from_slice(&1u32.to_le_bytes());
        b.extend_from_slice(&2u32.to_le_bytes());
        for d in [1u64 << 31, 1u64 << 30] {
            b.extend_from_slice(&d.to_le_bytes());
        }
        for t in [1u64 << 31, 1u64 << 30] {
            b.extend_from_slice(&t.to_le_bytes());
        }
        b.extend_from_slice(&1u64.to_le_bytes()); // ntiles
        b.extend_from_slice(&60u64.to_le_bytes()); // offset of tile 0
        let path = tmp("wrap");
        std::fs::write(&path, &b).unwrap();
        let err = TileStore::open(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn out_of_range_tile_read_rejected() {
        let x = iota(&[4, 3]);
        let layout = TiledLayout::new(&[4, 3], &[2, 2]);
        let path = tmp("range");
        let store = TileStore::write_dense(&path, &layout, &x).unwrap();
        let mut r = store.reader().unwrap();
        let mut buf = vec![0.0; 4];
        assert!(r.read_tile_into(99, &mut buf).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn incomplete_store_fails_finish() {
        let layout = TiledLayout::new(&[4, 4], &[2, 2]);
        let path = tmp("incomplete");
        let mut b = TileStoreBuilder::create(&path, layout).unwrap();
        b.write_tile(&[0.0; 4]).unwrap();
        assert!(b.finish().is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sniffs_magic() {
        let path = tmp("sniff");
        let layout = TiledLayout::new(&[2, 2], &[2, 2]);
        TileStore::write_dense(&path, &layout, &iota(&[2, 2])).unwrap();
        assert!(TileStore::is_tile_store(&path));
        std::fs::write(&path, b"MTKT....").unwrap();
        assert!(!TileStore::is_tile_store(&path));
        std::fs::remove_file(&path).ok();
        assert!(!TileStore::is_tile_store(&path));
    }
}
