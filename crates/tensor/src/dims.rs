//! Dimension bookkeeping for the natural linearization.
//!
//! Throughout, for an `N`-way tensor with dimensions `I_0 × ⋯ × I_{N−1}`
//! (paper §2.1):
//!
//! * `I` — total entry count, `Π_k I_k`;
//! * `IL_n` — product of dimensions *left* of mode `n` (`Π_{k<n} I_k`);
//! * `IR_n` — product of dimensions *right* of mode `n` (`Π_{k>n} I_k`);
//! * `I≠n` — product of all dimensions but `n`.

/// Precomputed dimension products for one tensor shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimInfo {
    dims: Vec<usize>,
    /// `left[n] = Π_{k<n} I_k`; `left[N] = I`.
    left: Vec<usize>,
}

impl DimInfo {
    /// Build from a dimension list.
    ///
    /// # Panics
    /// Panics on an empty dimension list or any zero dimension.
    pub fn new(dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "tensor must have at least one mode");
        assert!(
            dims.iter().all(|&d| d > 0),
            "zero-length modes are not supported"
        );
        let mut left = Vec::with_capacity(dims.len() + 1);
        let mut acc = 1usize;
        left.push(1);
        for &d in dims {
            acc = acc.checked_mul(d).expect("tensor size overflows usize");
            left.push(acc);
        }
        DimInfo {
            dims: dims.to_vec(),
            left,
        }
    }

    /// The dimension list.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of modes `N`.
    #[inline]
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Mode-`n` dimension `I_n`.
    #[inline]
    pub fn dim(&self, n: usize) -> usize {
        self.dims[n]
    }

    /// Total entry count `I`.
    #[inline]
    pub fn total(&self) -> usize {
        *self.left.last().unwrap()
    }

    /// `IL_n`: product of dimensions left of mode `n`.
    #[inline]
    pub fn i_left(&self, n: usize) -> usize {
        self.left[n]
    }

    /// `IR_n`: product of dimensions right of mode `n`.
    #[inline]
    pub fn i_right(&self, n: usize) -> usize {
        self.total() / self.left[n + 1]
    }

    /// `I≠n`: product of all dimensions except mode `n`.
    #[inline]
    pub fn i_neq(&self, n: usize) -> usize {
        self.total() / self.dims[n]
    }

    /// Linear index of a multi-index under the natural linearization.
    #[inline]
    pub fn linear(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.dims.len());
        idx.iter().zip(&self.left).map(|(&i, &l)| i * l).sum()
    }

    /// Multi-index of a linear index (inverse of [`DimInfo::linear`]).
    pub fn unlinear(&self, mut ell: usize) -> Vec<usize> {
        let mut idx = Vec::with_capacity(self.dims.len());
        for &d in &self.dims {
            idx.push(ell % d);
            ell /= d;
        }
        idx
    }

    /// Advance `idx` to the next multi-index in linearization order
    /// (mode 0 fastest). Returns `false` on wrap-around to all-zeros.
    pub fn increment(&self, idx: &mut [usize]) -> bool {
        for (i, &d) in idx.iter_mut().zip(&self.dims) {
            *i += 1;
            if *i < d {
                return true;
            }
            *i = 0;
        }
        false
    }
}

/// Free-function form of [`DimInfo::linear`] for ad-hoc use.
pub fn linear_index(dims: &[usize], idx: &[usize]) -> usize {
    let mut stride = 1;
    let mut ell = 0;
    for (&i, &d) in idx.iter().zip(dims.iter()) {
        debug_assert!(i < d);
        ell += i * stride;
        stride *= d;
    }
    ell
}

/// Free-function form of [`DimInfo::unlinear`].
pub fn multi_index(dims: &[usize], mut ell: usize) -> Vec<usize> {
    let mut idx = Vec::with_capacity(dims.len());
    for &d in dims {
        idx.push(ell % d);
        ell /= d;
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn products_match_definitions() {
        let d = DimInfo::new(&[3, 4, 5, 2]);
        assert_eq!(d.total(), 120);
        assert_eq!(d.i_left(0), 1);
        assert_eq!(d.i_left(2), 12);
        assert_eq!(d.i_right(0), 40);
        assert_eq!(d.i_right(3), 1);
        assert_eq!(d.i_neq(1), 30);
        assert_eq!(d.i_left(1) * d.dim(1) * d.i_right(1), d.total());
    }

    #[test]
    fn linear_unlinear_round_trip() {
        let d = DimInfo::new(&[3, 4, 5]);
        for ell in 0..60 {
            let idx = d.unlinear(ell);
            assert_eq!(d.linear(&idx), ell);
        }
    }

    #[test]
    fn linearization_is_mode0_fastest() {
        let d = DimInfo::new(&[3, 4]);
        assert_eq!(d.linear(&[1, 0]), 1);
        assert_eq!(d.linear(&[0, 1]), 3);
        assert_eq!(d.linear(&[2, 3]), 11);
    }

    #[test]
    fn increment_enumerates_in_linear_order() {
        let d = DimInfo::new(&[2, 3, 2]);
        let mut idx = vec![0; 3];
        let mut ell = 0;
        loop {
            assert_eq!(d.linear(&idx), ell);
            ell += 1;
            if !d.increment(&mut idx) {
                break;
            }
        }
        assert_eq!(ell, 12);
        assert_eq!(idx, vec![0, 0, 0]);
    }

    #[test]
    fn free_functions_agree_with_diminfo() {
        let dims = [4usize, 3, 7];
        let d = DimInfo::new(&dims);
        for ell in [0usize, 5, 27, 83] {
            assert_eq!(multi_index(&dims, ell), d.unlinear(ell));
            assert_eq!(linear_index(&dims, &d.unlinear(ell)), ell);
        }
    }

    #[test]
    #[should_panic]
    fn zero_dim_rejected() {
        let _ = DimInfo::new(&[3, 0, 2]);
    }

    #[test]
    #[should_panic]
    fn empty_dims_rejected() {
        let _ = DimInfo::new(&[]);
    }
}
