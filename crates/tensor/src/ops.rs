//! Whole-tensor operations: tensor-times-vector (TTV), tensor-times-
//! matrix (TTM), and inner products.
//!
//! `Y = X ×_n M` is defined by `Y(n) = Mᵀ X(n)` (§2.1). Both operations
//! run block-wise over the zero-copy unfolding so no entries are
//! reordered; each block multiply is a BLAS call.

use mttkrp_blas::{dot, gemm, gemv, Layout, MatMut, MatRef};

use crate::dense::DenseTensor;

/// Tensor-times-vector: contract mode `n` of `x` with `v`, returning the
/// order-`(N−1)` tensor `Y` with `Y(…) = Σ_{i_n} X(…, i_n, …) · v(i_n)`.
///
/// # Panics
/// Panics if `v.len() != I_n` or the tensor is 1-way (use [`dot`] on the
/// data instead).
pub fn ttv(x: &DenseTensor, n: usize, v: &[f64]) -> DenseTensor {
    let info = x.info();
    assert!(info.order() >= 2, "TTV requires an order >= 2 tensor");
    assert_eq!(v.len(), info.dim(n), "vector length must equal I_n");

    let out_dims: Vec<usize> = info
        .dims()
        .iter()
        .enumerate()
        .filter(|&(k, _)| k != n)
        .map(|(_, &d)| d)
        .collect();
    let mut out = DenseTensor::zeros(&out_dims);
    let il = info.i_left(n);
    let unf = x.unfold(n);

    // Output entries for block j occupy out[j*IL_n .. (j+1)*IL_n]:
    // out(col, j) = Σ_i v(i) · block_j(i, col) = block_jᵀ · v.
    let out_data = out.data_mut();
    for j in 0..unf.num_blocks() {
        let block_t = unf.block(j).t(); // IL_n × I_n, column-contiguous
        gemv(1.0, block_t, v, 0.0, &mut out_data[j * il..(j + 1) * il]);
    }
    out
}

/// Tensor-times-matrix: `Y = X ×_n M` with `M` an `I_n × F` column-major
/// matrix, so `Y` has mode-`n` dimension `F` and `Y(n) = Mᵀ X(n)`.
pub fn ttm(x: &DenseTensor, n: usize, m: MatRef) -> DenseTensor {
    let info = x.info();
    assert_eq!(m.nrows(), info.dim(n), "matrix rows must equal I_n");
    let f = m.ncols();

    let mut out_dims = info.dims().to_vec();
    out_dims[n] = f;
    let mut out = DenseTensor::zeros(&out_dims);
    let il = info.i_left(n);
    let unf = x.unfold(n);

    // Each input block j (I_n × IL_n, row-major) maps to output block j
    // (F × IL_n, row-major): out_block = Mᵀ · block.
    let block_len = f * il;
    let out_data = out.data_mut();
    for j in 0..unf.num_blocks() {
        let out_block = MatMut::from_slice(
            &mut out_data[j * block_len..(j + 1) * block_len],
            f,
            il,
            Layout::RowMajor,
        );
        gemm(1.0, m.t(), unf.block(j), 0.0, out_block);
    }
    out
}

/// Frobenius inner product `⟨X, Y⟩ = Σ X(i)·Y(i)`.
///
/// # Panics
/// Panics if shapes differ.
pub fn inner(x: &DenseTensor, y: &DenseTensor) -> f64 {
    assert_eq!(x.dims(), y.dims(), "inner product requires equal shapes");
    dot(x.data(), y.data())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iota_tensor(dims: &[usize]) -> DenseTensor {
        let mut c = -1.0;
        DenseTensor::from_fn(dims, || {
            c += 1.0;
            c
        })
    }

    /// Oracle TTV by definition.
    fn naive_ttv(x: &DenseTensor, n: usize, v: &[f64]) -> DenseTensor {
        let dims = x.dims();
        let out_dims: Vec<usize> = dims
            .iter()
            .enumerate()
            .filter(|&(k, _)| k != n)
            .map(|(_, &d)| d)
            .collect();
        let mut out = DenseTensor::zeros(&out_dims);
        let mut idx = vec![0usize; dims.len()];
        loop {
            let mut out_idx: Vec<usize> = idx
                .iter()
                .enumerate()
                .filter(|&(k, _)| k != n)
                .map(|(_, &i)| i)
                .collect();
            if out_idx.is_empty() {
                out_idx.push(0);
            }
            let cur = out.get(&out_idx);
            out.set(&out_idx, cur + x.get(&idx) * v[idx[n]]);
            if !x.info().increment(&mut idx) {
                break;
            }
        }
        out
    }

    #[test]
    fn ttv_matches_oracle_all_modes() {
        let x = iota_tensor(&[3, 4, 2, 2]);
        for n in 0..4 {
            let v: Vec<f64> = (0..x.dims()[n]).map(|i| (i + 1) as f64 * 0.5).collect();
            let ours = ttv(&x, n, &v);
            let oracle = naive_ttv(&x, n, &v);
            assert_eq!(ours.dims(), oracle.dims());
            for (a, b) in ours.data().iter().zip(oracle.data()) {
                assert!((a - b).abs() < 1e-12, "mode {n}");
            }
        }
    }

    #[test]
    fn ttv_chain_reduces_to_scalar_weighted_sum() {
        // Contracting a 2-way tensor in both modes equals vᵀ X w.
        let x = iota_tensor(&[2, 3]);
        let v = vec![1.0, 2.0];
        let w = vec![1.0, 0.0, -1.0];
        let y = ttv(&x, 0, &v); // length-3
        let s: f64 = y.data().iter().zip(&w).map(|(a, b)| a * b).sum();
        let mut expected = 0.0;
        for i in 0..2 {
            for j in 0..3 {
                expected += v[i] * w[j] * x.get(&[i, j]);
            }
        }
        assert!((s - expected).abs() < 1e-12);
    }

    #[test]
    fn ttm_matches_ttv_per_column() {
        let x = iota_tensor(&[3, 4, 2]);
        let n = 1;
        let f = 2;
        let m_data: Vec<f64> = (0..x.dims()[n] * f)
            .map(|i| (i as f64) * 0.25 - 1.0)
            .collect();
        let m = MatRef::from_slice(&m_data, x.dims()[n], f, Layout::ColMajor);
        let y = ttm(&x, n, m);
        assert_eq!(y.dims(), &[3, 2, 2]);
        // Column c of M contracted via TTV must equal the slice of Y at
        // mode-n index c.
        for c in 0..f {
            let col: Vec<f64> = (0..x.dims()[n]).map(|i| m.get(i, c)).collect();
            let yc = ttv(&x, n, &col);
            for i0 in 0..3 {
                for i2 in 0..2 {
                    assert!((y.get(&[i0, c, i2]) - yc.get(&[i0, i2])).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn ttm_identity_is_noop() {
        let x = iota_tensor(&[2, 3, 2]);
        let eye = {
            let mut m = vec![0.0; 9];
            for i in 0..3 {
                m[i + i * 3] = 1.0;
            }
            m
        };
        let m = MatRef::from_slice(&eye, 3, 3, Layout::ColMajor);
        let y = ttm(&x, 1, m);
        assert_eq!(y.dims(), x.dims());
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn inner_product_matches_norm() {
        let x = iota_tensor(&[3, 3]);
        assert!((inner(&x, &x) - x.norm() * x.norm()).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn ttv_wrong_length_panics() {
        let x = iota_tensor(&[2, 3]);
        let _ = ttv(&x, 0, &[1.0, 2.0, 3.0]);
    }
}
