//! Explicit mode permutation (tensor transposition).
//!
//! This is the memory-bound entry-reordering operation the paper's
//! algorithms exist to avoid; it is provided for the baseline, for
//! data import (e.g. converting a row-major source into the natural
//! linearization), and to validate the zero-copy views: a mode-`n`
//! matricization equals the mode-0 matricization of the tensor
//! permuted so that `n` comes first.

use mttkrp_blas::Scalar;

use crate::dense::DenseTensor;

/// Return the tensor with modes reordered so that output mode `k` is
/// input mode `perm[k]` (`Y(i_0, …) = X(i_{perm⁻¹(0)}, …)` — i.e.
/// `y.dims()[k] == x.dims()[perm[k]]`).
///
/// Implemented as a zero-copy stride-permuted
/// [`TensorView`](crate::TensorView) followed by one materialization
/// pass; callers that can walk strides directly should hold the view
/// ([`DenseTensor::permuted_view`]) and skip the copy entirely.
///
/// # Panics
/// Panics if `perm` is not a permutation of `0..N`.
pub fn permute_modes<S: Scalar>(x: &DenseTensor<S>, perm: &[usize]) -> DenseTensor<S> {
    x.permuted_view(perm).materialize()
}

/// Inverse of a permutation (`inv[perm[k]] == k`).
pub fn invert_permutation(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![0usize; perm.len()];
    for (k, &p) in perm.iter().enumerate() {
        inv[p] = k;
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use mttkrp_blas::Layout;

    fn iota(dims: &[usize]) -> DenseTensor {
        let mut c = -1.0;
        DenseTensor::from_fn(dims, || {
            c += 1.0;
            c
        })
    }

    #[test]
    fn identity_permutation_is_noop() {
        let x = iota(&[3, 4, 2]);
        let y = permute_modes(&x, &[0, 1, 2]);
        assert_eq!(x, y);
    }

    #[test]
    fn entries_map_correctly() {
        let x = iota(&[2, 3, 4]);
        let y = permute_modes(&x, &[2, 0, 1]); // y(i2, i0, i1) = x(i0, i1, i2)
        assert_eq!(y.dims(), &[4, 2, 3]);
        for i0 in 0..2 {
            for i1 in 0..3 {
                for i2 in 0..4 {
                    assert_eq!(y.get(&[i2, i0, i1]), x.get(&[i0, i1, i2]));
                }
            }
        }
    }

    #[test]
    fn double_permutation_round_trips() {
        let x = iota(&[3, 2, 4, 2]);
        let perm = [2usize, 0, 3, 1];
        let y = permute_modes(&x, &perm);
        let back = permute_modes(&y, &invert_permutation(&perm));
        assert_eq!(back, x);
    }

    #[test]
    fn mode_n_first_permutation_linearizes_matricization() {
        // Moving mode n to the front makes the (new) mode-0 unfolding
        // equal to the old mode-n unfolding up to column order; in
        // particular the first IL_n * IR_n entries enumerate X(n)
        // column-major when n is moved first and the rest keep their
        // relative order.
        let x = iota(&[3, 4, 2]);
        let n = 1;
        let perm = [1usize, 0, 2];
        let y = permute_modes(&x, &perm);
        let mat = x.materialize_unfolding(n, Layout::ColMajor);
        // y's natural order is exactly the column-major mode-n unfold.
        assert_eq!(y.data(), &mat[..]);
    }

    #[test]
    fn norm_is_invariant() {
        let x = iota(&[4, 3, 3]);
        let y = permute_modes(&x, &[2, 1, 0]);
        assert!((x.norm() - y.norm()).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn rejects_non_permutation() {
        let x = iota(&[2, 2]);
        let _ = permute_modes(&x, &[0, 0]);
    }

    #[test]
    fn f32_entries_map_correctly() {
        let x: DenseTensor<f32> = iota(&[2, 3, 4]).cast();
        let y = permute_modes(&x, &[2, 0, 1]);
        assert_eq!(y.dims(), &[4, 2, 3]);
        for i0 in 0..2 {
            for i1 in 0..3 {
                for i2 in 0..4 {
                    assert_eq!(y.get(&[i2, i0, i1]), x.get(&[i0, i1, i2]));
                }
            }
        }
    }

    #[test]
    fn f32_double_permutation_round_trips() {
        let x: DenseTensor<f32> = iota(&[3, 2, 4, 2]).cast();
        let perm = [2usize, 0, 3, 1];
        let y = permute_modes(&x, &perm);
        let back = permute_modes(&y, &invert_permutation(&perm));
        assert_eq!(back, x);
    }
}
