//! Dense tensors under the paper's *natural linearization* (generalized
//! column-major order), with the zero-copy matricization views that make
//! the 1-step and 2-step MTTKRP algorithms possible.
//!
//! The linear index of entry `(i_0, …, i_{N−1})` is
//! `ℓ = Σ_n i_n · IL_n` where `IL_n = Π_{k<n} I_k` (§2.1). Key layout
//! facts exploited throughout (Figure 2 of the paper):
//!
//! * `X(0)` is column-major; `X(N−1)` is row-major — both are single
//!   strided [`mttkrp_blas::MatRef`] views.
//! * For internal modes `0 < n < N−1`, `X(n)` is a sequence of `IR_n`
//!   contiguous row-major `I_n × IL_n` blocks ([`ModeUnfolding`]).
//! * The multi-mode matricization `X(0:n)` is column-major for every `n`
//!   ([`DenseTensor::unfold_leading`]), which gives the 2-step algorithm
//!   its single large GEMM.
//!
//! Explicit, entry-reordering matricization
//! ([`DenseTensor::materialize_unfolding`]) is also provided — it is what
//! the Bader–Kolda baseline does and what the paper's algorithms avoid.
//!
//! # Example
//!
//! ```
//! use mttkrp_tensor::DenseTensor;
//!
//! let x = DenseTensor::from_vec(&[2, 3, 2], (0..12).map(|i| i as f64).collect());
//! // Mode-1 unfolding: 2 contiguous row-major 3x2 blocks, zero copy.
//! let unf = x.unfold(1);
//! assert_eq!(unf.num_blocks(), 2);
//! assert_eq!(unf.block(0).get(1, 0), x.get(&[0, 1, 0]));
//! // X(0:1) is column-major by construction.
//! let lead = x.unfold_leading(1);
//! assert_eq!((lead.nrows(), lead.ncols()), (6, 2));
//! ```

pub mod dense;
pub mod dims;
pub mod ops;
pub mod permute;
pub mod unfold;
pub mod view;

pub use dense::DenseTensor;
pub use dims::{linear_index, multi_index, DimInfo};
pub use permute::{invert_permutation, permute_modes};
pub use unfold::ModeUnfolding;
pub use view::TensorView;
