//! The dense tensor container.

use mttkrp_blas::{Layout, MatRef, Scalar};

use crate::dims::DimInfo;
use crate::unfold::ModeUnfolding;

/// A dense `N`-way tensor stored under the natural linearization
/// (mode 0 fastest; generalized column-major).
///
/// The element type `S` is any [`Scalar`] (`f32` or `f64`; defaults to
/// `f64`). Reductions over entries ([`Self::norm`]) accumulate in
/// `f64` regardless of the storage type.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseTensor<S: Scalar = f64> {
    info: DimInfo,
    data: Vec<S>,
}

impl<S: Scalar> DenseTensor<S> {
    /// All-zeros tensor of the given shape.
    pub fn zeros(dims: &[usize]) -> Self {
        let info = DimInfo::new(dims);
        let data = vec![S::ZERO; info.total()];
        DenseTensor { info, data }
    }

    /// Wrap an existing linearized buffer.
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the product of `dims`.
    pub fn from_vec(dims: &[usize], data: Vec<S>) -> Self {
        let info = DimInfo::new(dims);
        assert_eq!(data.len(), info.total(), "data length must match shape");
        DenseTensor { info, data }
    }

    /// Tensor filled by calling `f` once per entry in linearization order.
    pub fn from_fn(dims: &[usize], mut f: impl FnMut() -> S) -> Self {
        let info = DimInfo::new(dims);
        let data = (0..info.total()).map(|_| f()).collect();
        DenseTensor { info, data }
    }

    /// Rank-`C` Kruskal tensor `⟦U_0, …, U_{N−1}⟧` evaluated densely:
    /// `X(i_0,…,i_{N−1}) = Σ_c Π_n U_n(i_n, c)`.
    ///
    /// Factors are column-major `I_n × C` matrices. Used to plant
    /// known-rank inputs for CP-ALS recovery tests.
    pub fn from_factors(dims: &[usize], factors: &[Vec<S>], rank: usize) -> Self {
        let info = DimInfo::new(dims);
        assert_eq!(factors.len(), dims.len(), "one factor matrix per mode");
        for (n, f) in factors.iter().enumerate() {
            assert_eq!(f.len(), dims[n] * rank, "factor {n} must be I_n x C");
        }
        let mut data = vec![S::ZERO; info.total()];
        let mut idx = vec![0usize; dims.len()];
        for slot in data.iter_mut() {
            let mut s = S::ZERO;
            for c in 0..rank {
                let mut p = S::ONE;
                for (n, &i) in idx.iter().enumerate() {
                    // column-major factor: entry (i, c) at i + c * I_n
                    p *= factors[n][i + c * dims[n]];
                }
                s += p;
            }
            *slot = s;
            info.increment(&mut idx);
        }
        DenseTensor { info, data }
    }

    /// Shape metadata.
    #[inline]
    pub fn info(&self) -> &DimInfo {
        &self.info
    }

    /// Dimension list.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        self.info.dims()
    }

    /// Number of modes.
    #[inline]
    pub fn order(&self) -> usize {
        self.info.order()
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has zero entries (never, given nonzero dims).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The linearized entries.
    #[inline]
    pub fn data(&self) -> &[S] {
        &self.data
    }

    /// Mutable linearized entries.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// Entry at a multi-index.
    ///
    /// Debug builds assert the index arity matches [`Self::order`]; a
    /// wrong-length index would otherwise silently linearize against a
    /// prefix of the shape.
    #[inline]
    pub fn get(&self, idx: &[usize]) -> S {
        debug_assert_eq!(
            idx.len(),
            self.order(),
            "index arity must match the tensor order"
        );
        self.data[self.info.linear(idx)]
    }

    /// Write the entry at a multi-index.
    ///
    /// Debug builds assert the index arity matches [`Self::order`],
    /// like [`Self::get`].
    #[inline]
    pub fn set(&mut self, idx: &[usize], v: S) {
        debug_assert_eq!(
            idx.len(),
            self.order(),
            "index arity must match the tensor order"
        );
        let ell = self.info.linear(idx);
        self.data[ell] = v;
    }

    /// Frobenius norm (square root of the sum of squared entries),
    /// accumulated in `f64` for both storage types.
    pub fn norm(&self) -> f64 {
        self.data
            .iter()
            .map(|&x| x.to_f64() * x.to_f64())
            .sum::<f64>()
            .sqrt()
    }

    /// Copy into a tensor of another element type (widening is exact;
    /// narrowing rounds each entry to nearest).
    pub fn cast<T: Scalar>(&self) -> DenseTensor<T> {
        DenseTensor {
            info: self.info.clone(),
            data: self.data.iter().map(|&x| T::from_f64(x.to_f64())).collect(),
        }
    }

    /// Mode-`n` unfolding as a block sequence (zero-copy; see
    /// [`ModeUnfolding`]). Valid for every mode including external ones.
    pub fn unfold(&self, n: usize) -> ModeUnfolding<'_, S> {
        ModeUnfolding::new(self, n)
    }

    /// `X(0:n)` — the multi-mode matricization with row modes
    /// `{0, …, n}` — as a single zero-copy *column-major* view of shape
    /// `(I_0⋯I_n) × (I_{n+1}⋯I_{N−1})`.
    ///
    /// This is the left operand of the 2-step algorithm's partial MTTKRP
    /// (Algorithm 4 line 11; transposed for line 5).
    pub fn unfold_leading(&self, n: usize) -> MatRef<'_, S> {
        assert!(n < self.order(), "mode {n} out of range");
        let rows = self.info.i_left(n + 1);
        let cols = self.info.total() / rows;
        MatRef::from_slice(&self.data, rows, cols, Layout::ColMajor)
    }

    /// Explicit mode-`n` matricization: copies entries into a freshly
    /// allocated `I_n × I≠n` matrix in the requested layout.
    ///
    /// This reordering pass is exactly what the Bader–Kolda baseline pays
    /// for and the paper's algorithms avoid; it exists here to implement
    /// that baseline and to validate the zero-copy views against it.
    pub fn materialize_unfolding(&self, n: usize, layout: Layout) -> Vec<S> {
        let rows = self.info.dim(n);
        let cols = self.info.i_neq(n);
        let mut out = vec![S::ZERO; rows * cols];
        let unf = self.unfold(n);
        let il = self.info.i_left(n);
        for j in 0..self.info.i_right(n) {
            let block = unf.block(j);
            for i in 0..rows {
                for col in 0..il {
                    let v = unsafe { block.get_unchecked(i, col) };
                    let global_col = col + j * il;
                    match layout {
                        Layout::ColMajor => out[i + global_col * rows] = v,
                        Layout::RowMajor => out[i * cols + global_col] = v,
                    }
                }
            }
        }
        out
    }

    /// Copy the axis-aligned block starting at `offsets` with shape
    /// `shape` into `out`, in the block's own natural linearization
    /// (mode 0 fastest within the block).
    ///
    /// This is the gather a tiled/out-of-core store performs per tile;
    /// mode-0 runs are contiguous in the source, so the copy moves
    /// `shape[0]`-length slices, not single entries.
    ///
    /// # Panics
    /// Panics if the block does not fit inside the tensor or `out` is
    /// not exactly the block's entry count.
    pub fn gather_block(&self, offsets: &[usize], shape: &[usize], out: &mut [S]) {
        self.for_block_runs(offsets, shape, out.len(), |dst, src, len| {
            out[dst..dst + len].copy_from_slice(&self.data[src..src + len]);
        });
    }

    /// Inverse of [`Self::gather_block`]: write `src` (the block's
    /// natural linearization) into the block at `offsets`.
    ///
    /// # Panics
    /// Panics if the block does not fit inside the tensor or `src` is
    /// not exactly the block's entry count.
    pub fn scatter_block(&mut self, offsets: &[usize], shape: &[usize], src: &[S]) {
        // Collect the runs first: `for_block_runs` borrows `self`
        // shared, the writes need it mutable.
        let mut runs: Vec<(usize, usize, usize)> = Vec::new();
        self.for_block_runs(offsets, shape, src.len(), |dst, gsrc, len| {
            runs.push((dst, gsrc, len));
        });
        for (blk, glb, len) in runs {
            self.data[glb..glb + len].copy_from_slice(&src[blk..blk + len]);
        }
    }

    /// Enumerate the mode-0-contiguous runs of an axis-aligned block as
    /// `(block_linear_start, global_linear_start, run_len)` triples.
    fn for_block_runs(
        &self,
        offsets: &[usize],
        shape: &[usize],
        buf_len: usize,
        mut f: impl FnMut(usize, usize, usize),
    ) {
        let order = self.order();
        assert_eq!(offsets.len(), order, "one offset per mode");
        assert_eq!(shape.len(), order, "one extent per mode");
        let mut entries = 1usize;
        for n in 0..order {
            assert!(shape[n] > 0, "empty block extent in mode {n}");
            assert!(
                offsets[n] + shape[n] <= self.info.dim(n),
                "block exceeds mode {n}: {} + {} > {}",
                offsets[n],
                shape[n],
                self.info.dim(n)
            );
            entries *= shape[n];
        }
        assert_eq!(buf_len, entries, "buffer must match the block size");

        let run = shape[0];
        let nruns = entries / run;
        // Walk the block's outer modes (1..order) in its own
        // linearization order, tracking the matching global index.
        let mut local = vec![0usize; order];
        for r in 0..nruns {
            let mut global = 0usize;
            for n in 0..order {
                global += (offsets[n] + local[n]) * self.info.i_left(n);
            }
            f(r * run, global, run);
            // Increment local over modes 1.. (mode 0 spans the run).
            for n in 1..order {
                local[n] += 1;
                if local[n] < shape[n] {
                    break;
                }
                local[n] = 0;
            }
        }
    }

    /// Consume the tensor, returning its linearized buffer.
    pub fn into_vec(self) -> Vec<S> {
        self.data
    }

    /// Reinterpret the entries under a new shape with the same total
    /// size (e.g. the paper's 4-way → 3-way fMRI linearization merges
    /// the two region modes).
    pub fn reshape(self, dims: &[usize]) -> DenseTensor<S> {
        let info = DimInfo::new(dims);
        assert_eq!(
            info.total(),
            self.data.len(),
            "reshape must preserve entry count"
        );
        DenseTensor {
            info,
            data: self.data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iota_tensor(dims: &[usize]) -> DenseTensor {
        let mut c = -1.0;
        DenseTensor::from_fn(dims, || {
            c += 1.0;
            c
        })
    }

    #[test]
    fn get_set_round_trip() {
        let mut x = DenseTensor::zeros(&[3, 4, 2]);
        x.set(&[2, 1, 1], 5.5);
        assert_eq!(x.get(&[2, 1, 1]), 5.5);
        // linear position: 2 + 1*3 + 1*12 = 17
        assert_eq!(x.data()[17], 5.5);
    }

    #[test]
    fn from_fn_fills_linearization_order() {
        let x = iota_tensor(&[2, 3]);
        assert_eq!(x.get(&[0, 0]), 0.0);
        assert_eq!(x.get(&[1, 0]), 1.0);
        assert_eq!(x.get(&[0, 1]), 2.0);
        assert_eq!(x.get(&[1, 2]), 5.0);
    }

    #[test]
    fn norm_matches_manual() {
        let x = DenseTensor::from_vec(&[2, 2], vec![1.0, 2.0, 2.0, 4.0]);
        assert!((x.norm() - 25.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn from_factors_matches_definition_3way() {
        // Rank-1: X(i,j,k) = u(i) v(j) w(k)
        let u = vec![1.0, 2.0];
        let v = vec![3.0, 4.0, 5.0];
        let w = vec![6.0, 7.0];
        let x = DenseTensor::from_factors(&[2, 3, 2], &[u.clone(), v.clone(), w.clone()], 1);
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..2 {
                    assert_eq!(x.get(&[i, j, k]), u[i] * v[j] * w[k]);
                }
            }
        }
    }

    #[test]
    fn from_factors_rank2_sums_components() {
        // U: 2x2 col-major, V: 2x2
        let u = vec![1.0, 0.0, 0.0, 1.0]; // columns e1, e2
        let v = vec![2.0, 3.0, 4.0, 5.0]; // columns (2,3), (4,5)
        let x = DenseTensor::from_factors(&[2, 2], &[u, v], 2);
        // X(i,j) = e1(i)*(2,3)(j) + e2(i)*(4,5)(j)
        assert_eq!(x.get(&[0, 0]), 2.0);
        assert_eq!(x.get(&[0, 1]), 3.0);
        assert_eq!(x.get(&[1, 0]), 4.0);
        assert_eq!(x.get(&[1, 1]), 5.0);
    }

    #[test]
    fn unfold_leading_is_column_major_view() {
        let x = iota_tensor(&[2, 3, 4]);
        let m = x.unfold_leading(1); // 6 x 4, col-major over the raw data
        assert_eq!(m.nrows(), 6);
        assert_eq!(m.ncols(), 4);
        for ell in 0..24 {
            assert_eq!(m.get(ell % 6, ell / 6), ell as f64);
        }
    }

    #[test]
    fn unfold_leading_last_mode_is_whole_tensor_as_one_column_block() {
        let x = iota_tensor(&[2, 3]);
        let m = x.unfold_leading(1);
        assert_eq!(m.nrows(), 6);
        assert_eq!(m.ncols(), 1);
    }

    #[test]
    fn materialized_unfolding_matches_definition() {
        let x = iota_tensor(&[2, 3, 2]);
        // X(1) is I1 x (I0*I2) = 3 x 4; column (i0, i2) pairs with i0 fastest.
        let m = x.materialize_unfolding(1, Layout::ColMajor);
        for i1 in 0..3 {
            for i0 in 0..2 {
                for i2 in 0..2 {
                    let col = i0 + i2 * 2;
                    assert_eq!(m[i1 + col * 3], x.get(&[i0, i1, i2]));
                }
            }
        }
        let mr = x.materialize_unfolding(1, Layout::RowMajor);
        for i1 in 0..3 {
            for col in 0..4 {
                assert_eq!(mr[i1 * 4 + col], m[i1 + col * 3]);
            }
        }
    }

    #[test]
    fn reshape_preserves_data() {
        let x = iota_tensor(&[2, 3, 2]);
        let y = x.clone().reshape(&[6, 2]);
        assert_eq!(y.data(), x.data());
        assert_eq!(y.get(&[5, 1]), 11.0);
    }

    #[test]
    fn gather_scatter_block_round_trips() {
        let x = iota_tensor(&[4, 3, 5]);
        let offsets = [1usize, 0, 2];
        let shape = [2usize, 3, 2];
        let mut block = vec![f64::NAN; 12];
        x.gather_block(&offsets, &shape, &mut block);
        // Entry (i0, i1, i2) of the block is x(1+i0, i1, 2+i2).
        let mut k = 0;
        for i2 in 0..2 {
            for i1 in 0..3 {
                for i0 in 0..2 {
                    assert_eq!(block[k], x.get(&[1 + i0, i1, 2 + i2]), "k={k}");
                    k += 1;
                }
            }
        }
        let mut y = DenseTensor::zeros(&[4, 3, 5]);
        y.scatter_block(&offsets, &shape, &block);
        for i2 in 0..2 {
            for i1 in 0..3 {
                for i0 in 0..2 {
                    assert_eq!(y.get(&[1 + i0, i1, 2 + i2]), x.get(&[1 + i0, i1, 2 + i2]));
                }
            }
        }
        // Everything outside the block stays zero.
        assert_eq!(y.get(&[0, 0, 0]), 0.0);
        assert_eq!(y.get(&[3, 2, 4]), 0.0);
    }

    #[test]
    fn gather_whole_tensor_is_identity() {
        let x = iota_tensor(&[3, 2, 2]);
        let mut block = vec![0.0; 12];
        x.gather_block(&[0, 0, 0], &[3, 2, 2], &mut block);
        assert_eq!(&block[..], x.data());
    }

    #[test]
    #[should_panic(expected = "block exceeds mode")]
    fn gather_out_of_range_block_panics() {
        let x = iota_tensor(&[3, 3]);
        let mut block = vec![0.0; 4];
        x.gather_block(&[2, 0], &[2, 2], &mut block);
    }

    #[test]
    #[should_panic]
    fn reshape_wrong_size_panics() {
        let x = iota_tensor(&[2, 3]);
        let _ = x.reshape(&[7]);
    }

    #[test]
    #[should_panic]
    fn from_vec_wrong_len_panics() {
        let _ = DenseTensor::from_vec(&[2, 2], vec![0.0; 5]);
    }

    // Regression: a wrong-arity index used to silently linearize
    // against a prefix of the shape (e.g. `get(&[1, 1])` on a 3-way
    // tensor read entry (1, 1, 0)); it must be rejected in debug
    // builds.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "index arity")]
    fn get_rejects_wrong_arity_in_debug() {
        let x = DenseTensor::<f64>::zeros(&[2, 3, 2]);
        let _ = x.get(&[1, 1]);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "index arity")]
    fn set_rejects_wrong_arity_in_debug() {
        let mut x = DenseTensor::zeros(&[2, 3]);
        x.set(&[1, 1, 0], 4.0);
    }
}
