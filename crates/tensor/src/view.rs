//! Zero-copy strided tensor views.
//!
//! A [`TensorView`] pairs a borrowed entry buffer with per-mode strides,
//! generalizing [`mttkrp_blas::MatRef`] from two modes to `N`. Its key
//! use is *stride-permuted* access: [`TensorView::permute`] reorders
//! modes by permuting the stride table — no entries move — so a consumer
//! that can walk arbitrary strides (or only needs a few entries) skips
//! the explicit transposition entirely, and one that does need
//! contiguous data calls [`TensorView::materialize`] exactly once, at
//! the end of any chain of permutations.

use mttkrp_blas::Scalar;

use crate::dense::DenseTensor;
use crate::dims::DimInfo;

/// Borrowed `N`-way tensor view with explicit per-mode element strides.
///
/// Mode `k` of the view has extent `dims[k]` and advancing its index by
/// one moves `strides[k]` elements in the underlying buffer. A freshly
/// created view of a [`DenseTensor`] is in the natural linearization
/// (mode 0 fastest); permuted views generally are not.
#[derive(Debug, Clone)]
pub struct TensorView<'a, S: Scalar = f64> {
    data: &'a [S],
    dims: Vec<usize>,
    strides: Vec<usize>,
}

impl<'a, S: Scalar> TensorView<'a, S> {
    /// View over `data` with explicit shape and element strides.
    ///
    /// # Panics
    /// Panics if the extremal reachable offset is out of bounds for
    /// `data`, or if `dims` and `strides` disagree in length.
    pub fn from_parts(data: &'a [S], dims: &[usize], strides: &[usize]) -> Self {
        assert_eq!(dims.len(), strides.len(), "one stride per mode");
        let max_off: usize = dims
            .iter()
            .zip(strides)
            .map(|(&d, &s)| d.saturating_sub(1) * s)
            .sum();
        assert!(
            dims.iter().product::<usize>() == 0 || max_off < data.len(),
            "view exceeds buffer: max offset {max_off} vs len {}",
            data.len()
        );
        TensorView {
            data,
            dims: dims.to_vec(),
            strides: strides.to_vec(),
        }
    }

    /// Dimension list.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Per-mode element strides.
    #[inline]
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// Number of modes.
    #[inline]
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// True when the view has zero entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entry at a multi-index.
    ///
    /// # Panics
    /// Panics if the index arity or any component is out of range.
    #[inline]
    pub fn get(&self, idx: &[usize]) -> S {
        assert_eq!(idx.len(), self.order(), "index arity must match order");
        let mut off = 0usize;
        for ((&i, &d), &s) in idx.iter().zip(&self.dims).zip(&self.strides) {
            assert!(i < d, "index {i} out of range for extent {d}");
            off += i * s;
        }
        self.data[off]
    }

    /// Stride-permuted view: output mode `k` is input mode `perm[k]`
    /// (`view.permute(perm).dims()[k] == view.dims()[perm[k]]`), with
    /// no entry movement — only the dims/strides tables are reordered.
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..N`.
    pub fn permute(&self, perm: &[usize]) -> TensorView<'a, S> {
        let n = self.order();
        assert_eq!(perm.len(), n, "permutation length must equal order");
        let mut seen = vec![false; n];
        for &p in perm {
            assert!(p < n, "permutation entry {p} out of range");
            assert!(!seen[p], "duplicate permutation entry {p}");
            seen[p] = true;
        }
        TensorView {
            data: self.data,
            dims: perm.iter().map(|&p| self.dims[p]).collect(),
            strides: perm.iter().map(|&p| self.strides[p]).collect(),
        }
    }

    /// Copy the view into a fresh [`DenseTensor`] in the natural
    /// linearization of the *view's* mode order.
    ///
    /// The output is walked linearly; the source offset advances by the
    /// view strides. When the view's first mode is unit-stride (e.g. an
    /// unpermuted leading mode), whole mode-0 runs are copied with
    /// `copy_from_slice` instead of entry-at-a-time gathers.
    pub fn materialize(&self) -> DenseTensor<S> {
        let mut out = DenseTensor::zeros(&self.dims);
        if self.is_empty() {
            return out;
        }
        let n = self.order();
        let contiguous0 = self.strides[0] == 1;
        let (run, carry_from) = if contiguous0 {
            (self.dims[0], 1)
        } else {
            (1, 0)
        };
        let mut idx = vec![0usize; n];
        let out_data = out.data_mut();
        let mut dst = 0usize;
        while dst < out_data.len() {
            let src: usize = idx.iter().zip(&self.strides).map(|(&i, &s)| i * s).sum();
            if contiguous0 {
                out_data[dst..dst + run].copy_from_slice(&self.data[src..src + run]);
            } else {
                out_data[dst] = self.data[src];
            }
            dst += run;
            // Odometer increment over the non-run modes (the per-run
            // offset recomputation above is O(N), dwarfed by the copy).
            for k in carry_from..n {
                idx[k] += 1;
                if idx[k] < self.dims[k] {
                    break;
                }
                idx[k] = 0;
            }
        }
        out
    }
}

impl<S: Scalar> DenseTensor<S> {
    /// Zero-copy [`TensorView`] of the whole tensor in its natural
    /// linearization (mode 0 fastest).
    pub fn view(&self) -> TensorView<'_, S> {
        let info: &DimInfo = self.info();
        let n = self.order();
        let strides: Vec<usize> = (0..n).map(|k| info.i_left(k)).collect();
        TensorView {
            data: self.data(),
            dims: self.dims().to_vec(),
            strides,
        }
    }

    /// Zero-copy stride-permuted view: mode `k` of the view is mode
    /// `perm[k]` of the tensor. Equivalent to
    /// `self.view().permute(perm)`.
    pub fn permuted_view(&self, perm: &[usize]) -> TensorView<'_, S> {
        self.view().permute(perm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iota(dims: &[usize]) -> DenseTensor {
        let mut c = -1.0;
        DenseTensor::from_fn(dims, || {
            c += 1.0;
            c
        })
    }

    #[test]
    fn view_get_matches_tensor_get() {
        let x = iota(&[3, 4, 2]);
        let v = x.view();
        for i0 in 0..3 {
            for i1 in 0..4 {
                for i2 in 0..2 {
                    assert_eq!(v.get(&[i0, i1, i2]), x.get(&[i0, i1, i2]));
                }
            }
        }
    }

    #[test]
    fn permuted_view_reindexes_without_copy() {
        let x = iota(&[2, 3, 4]);
        let v = x.permuted_view(&[2, 0, 1]);
        assert_eq!(v.dims(), &[4, 2, 3]);
        for i0 in 0..2 {
            for i1 in 0..3 {
                for i2 in 0..4 {
                    assert_eq!(v.get(&[i2, i0, i1]), x.get(&[i0, i1, i2]));
                }
            }
        }
    }

    #[test]
    fn materialize_of_identity_view_is_clone() {
        let x = iota(&[3, 2, 4]);
        assert_eq!(x.view().materialize(), x);
    }

    #[test]
    fn materialize_of_permuted_view_matches_gets() {
        let x = iota(&[3, 2, 4, 2]);
        let perm = [1usize, 3, 0, 2];
        let y = x.permuted_view(&perm).materialize();
        assert_eq!(y.dims(), &[2, 2, 3, 4]);
        for i0 in 0..3 {
            for i1 in 0..2 {
                for i2 in 0..4 {
                    for i3 in 0..2 {
                        assert_eq!(y.get(&[i1, i3, i0, i2]), x.get(&[i0, i1, i2, i3]));
                    }
                }
            }
        }
    }

    #[test]
    fn double_permutation_composes() {
        let x = iota(&[2, 3, 4]);
        let v = x.permuted_view(&[2, 0, 1]).permute(&[1, 2, 0]);
        // First permute: dims (4,2,3) where view(a,b,c) = x(b,c,a).
        // Second: dims (2,3,4), view(b,c,a) = x(b,c,a) — identity again.
        assert_eq!(v.dims(), x.dims());
        assert_eq!(v.materialize(), x);
    }

    #[test]
    fn f32_views_work() {
        let x64 = iota(&[3, 2, 2]);
        let x: DenseTensor<f32> = x64.cast();
        let y = x.permuted_view(&[1, 0, 2]).materialize();
        for i0 in 0..3 {
            for i1 in 0..2 {
                for i2 in 0..2 {
                    assert_eq!(y.get(&[i1, i0, i2]), x.get(&[i0, i1, i2]));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "duplicate permutation entry")]
    fn rejects_duplicate_permutation() {
        let x = iota(&[2, 2]);
        let _ = x.permuted_view(&[1, 1]);
    }

    #[test]
    #[should_panic(expected = "view exceeds buffer")]
    fn from_parts_rejects_oversized_view() {
        let data = [0.0f64; 4];
        let _ = TensorView::from_parts(&data, &[2, 3], &[1, 2]);
    }
}
