//! Zero-copy mode-`n` matricization as a sequence of contiguous blocks.
//!
//! Under the natural linearization, entry `(i, col, j)` of the mode-`n`
//! unfolding — row `i ∈ [I_n]`, left-linearization `col ∈ [IL_n]`,
//! right-linearization `j ∈ [IR_n]` — lives at linear offset
//! `col + i·IL_n + j·IL_n·I_n`. Fixing `j` therefore yields a contiguous
//! *row-major* `I_n × IL_n` matrix: Figure 2's block structure. External
//! modes degenerate to a single strided view (`X(0)` column-major,
//! `X(N−1)` row-major).

use mttkrp_blas::{MatRef, Scalar};

use crate::dense::DenseTensor;

/// Zero-copy view of the mode-`n` matricization `X(n)`.
#[derive(Clone, Copy)]
pub struct ModeUnfolding<'a, S: Scalar = f64> {
    data: &'a [S],
    /// Mode dimension `I_n` (rows of the matricization).
    i_n: usize,
    /// Product of dimensions left of `n` (block width).
    i_left: usize,
    /// Product of dimensions right of `n` (number of blocks).
    i_right: usize,
}

impl<'a, S: Scalar> ModeUnfolding<'a, S> {
    /// Create the unfolding view for mode `n`.
    ///
    /// # Panics
    /// Panics if `n` is out of range.
    pub fn new(tensor: &'a DenseTensor<S>, n: usize) -> Self {
        assert!(
            n < tensor.order(),
            "mode {n} out of range for order {}",
            tensor.order()
        );
        let info = tensor.info();
        ModeUnfolding {
            data: tensor.data(),
            i_n: info.dim(n),
            i_left: info.i_left(n),
            i_right: info.i_right(n),
        }
    }

    /// Rows of `X(n)` (= `I_n`).
    #[inline]
    pub fn nrows(&self) -> usize {
        self.i_n
    }

    /// Columns of `X(n)` (= `I≠n`).
    #[inline]
    pub fn ncols(&self) -> usize {
        self.i_left * self.i_right
    }

    /// Number of contiguous row-major blocks (= `IR_n`).
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.i_right
    }

    /// Columns per block (= `IL_n`).
    #[inline]
    pub fn block_cols(&self) -> usize {
        self.i_left
    }

    /// Block `j` as a row-major `I_n × IL_n` view (Algorithm 2 line 9's
    /// `X(n)[j]`).
    #[inline]
    pub fn block(&self, j: usize) -> MatRef<'a, S> {
        assert!(j < self.i_right, "block {j} out of range");
        let start = j * self.i_left * self.i_n;
        let len = self.i_left * self.i_n;
        let slice = &self.data[start..start + len];
        // Row-major I_n × IL_n: element (i, col) at col + i*IL_n.
        unsafe {
            MatRef::from_raw_parts(
                slice.as_ptr(),
                self.i_n,
                self.i_left,
                self.i_left as isize,
                1,
            )
        }
    }

    /// The whole matricization as **one** strided view, available only
    /// for external modes where `X(n)` is a plain matrix in memory:
    /// mode 0 (column-major) and mode `N−1` (row-major; also any mode
    /// with `IR_n == 1` or `IL_n == 1`).
    pub fn as_single_view(&self) -> Option<MatRef<'a, S>> {
        if self.i_left == 1 {
            // Mode 0 (or all-left dims of size 1): entry (i, j) at
            // i + j*I_n — column-major.
            Some(unsafe {
                MatRef::from_raw_parts(
                    self.data.as_ptr(),
                    self.i_n,
                    self.i_right,
                    1,
                    self.i_n as isize,
                )
            })
        } else if self.i_right == 1 {
            // Last mode: entry (i, col) at col + i*IL_n — row-major.
            Some(unsafe {
                MatRef::from_raw_parts(
                    self.data.as_ptr(),
                    self.i_n,
                    self.i_left,
                    self.i_left as isize,
                    1,
                )
            })
        } else {
            None
        }
    }

    /// Entry `(i, c)` of `X(n)` where `c` is the global column index
    /// (left modes fastest). For tests and oracles; not a hot path.
    pub fn get(&self, i: usize, c: usize) -> S {
        assert!(i < self.nrows() && c < self.ncols(), "index out of bounds");
        let col = c % self.i_left;
        let j = c / self.i_left;
        self.block(j).get(i, col)
    }
}

impl<S: Scalar> std::fmt::Debug for ModeUnfolding<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ModeUnfolding({}x{} = {} blocks of {}x{})",
            self.nrows(),
            self.ncols(),
            self.i_right,
            self.i_n,
            self.i_left
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mttkrp_blas::Layout;

    fn iota_tensor(dims: &[usize]) -> DenseTensor {
        let mut c = -1.0;
        DenseTensor::from_fn(dims, || {
            c += 1.0;
            c
        })
    }

    #[test]
    fn blocks_agree_with_materialized_unfolding_all_modes() {
        let x = iota_tensor(&[3, 4, 2, 3]);
        for n in 0..4 {
            let unf = x.unfold(n);
            let rows = unf.nrows();
            let cols = unf.ncols();
            let mat = x.materialize_unfolding(n, Layout::ColMajor);
            for i in 0..rows {
                for c in 0..cols {
                    assert_eq!(unf.get(i, c), mat[i + c * rows], "mode {n} entry ({i},{c})");
                }
            }
        }
    }

    #[test]
    fn mode0_single_view_is_column_major() {
        let x = iota_tensor(&[3, 4, 2]);
        let unf = x.unfold(0);
        let v = unf.as_single_view().expect("mode 0 must be a single view");
        assert_eq!(v.nrows(), 3);
        assert_eq!(v.ncols(), 8);
        assert_eq!(v.row_stride(), 1);
        for i in 0..3 {
            for c in 0..8 {
                assert_eq!(v.get(i, c), unf.get(i, c));
            }
        }
    }

    #[test]
    fn last_mode_single_view_is_row_major() {
        let x = iota_tensor(&[3, 4, 2]);
        let unf = x.unfold(2);
        let v = unf
            .as_single_view()
            .expect("last mode must be a single view");
        assert_eq!(v.nrows(), 2);
        assert_eq!(v.ncols(), 12);
        assert_eq!(v.col_stride(), 1);
        for i in 0..2 {
            for c in 0..12 {
                assert_eq!(v.get(i, c), unf.get(i, c));
            }
        }
    }

    #[test]
    fn internal_mode_has_no_single_view() {
        let x = iota_tensor(&[3, 4, 2]);
        assert!(x.unfold(1).as_single_view().is_none());
        assert_eq!(x.unfold(1).num_blocks(), 2);
        assert_eq!(x.unfold(1).block_cols(), 3);
    }

    #[test]
    fn block_is_row_major_contiguous() {
        let x = iota_tensor(&[2, 3, 4]);
        let unf = x.unfold(1);
        // Block j covers linear range [j*6, (j+1)*6), laid out row-major 3x2.
        let b = unf.block(2);
        assert_eq!(b.nrows(), 3);
        assert_eq!(b.ncols(), 2);
        assert_eq!(b.col_stride(), 1);
        assert_eq!(b.get(0, 0), 12.0);
        assert_eq!(b.get(0, 1), 13.0);
        assert_eq!(b.get(1, 0), 14.0);
        assert_eq!(b.get(2, 1), 17.0);
    }

    #[test]
    fn unfolding_entries_match_tensor_entries() {
        // Definition check: X(n)[i_n, linearization of others] == X[idx].
        let dims = [2usize, 3, 2, 2];
        let x = iota_tensor(&dims);
        for n in 0..dims.len() {
            let unf = x.unfold(n);
            let mut idx = vec![0usize; dims.len()];
            loop {
                // Column index: linearization of all modes but n, left fastest.
                let mut col = 0;
                let mut stride = 1;
                for (k, &i) in idx.iter().enumerate() {
                    if k == n {
                        continue;
                    }
                    col += i * stride;
                    stride *= dims[k];
                }
                assert_eq!(unf.get(idx[n], col), x.get(&idx), "mode {n} idx {idx:?}");
                if !x.info().increment(&mut idx) {
                    break;
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn out_of_range_block_panics() {
        let x = iota_tensor(&[2, 2, 2]);
        let _ = x.unfold(1).block(2);
    }
}
