//! Seeded multi-thread stress battery for the work-stealing scheduler.
//!
//! The four properties the PR-10 migration rests on:
//!
//! 1. the deque is linearizable under owner/thief contention — every
//!    pushed task surfaces exactly once, and each thief observes steals
//!    in push (FIFO) order;
//! 2. panics inside stolen tasks propagate to the waiter instead of
//!    killing a worker;
//! 3. cancellation is observed within a bounded number of task
//!    completions (in-flight tasks finish, queued tasks are skipped);
//! 4. across 10k randomized job graphs no task is lost or executed
//!    twice.
//!
//! Everything is seeded (`mttkrp_rng::Rng64`), so a failure reproduces.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use mttkrp_rng::Rng64;
use mttkrp_sched::{CancelToken, JobCtx, Scheduler, TaskGroup, WorkDeque};

/// Owner pushes/pops while thieves steal: every token must surface
/// exactly once, and each thief's private steal sequence must be
/// increasing in push order (steals take the front; pushes only append
/// at the back, so the front index only ever grows).
#[test]
fn deque_is_linearizable_under_contention() {
    const TOKENS: u64 = 20_000;
    const THIEVES: usize = 4;
    let deque = Arc::new(WorkDeque::<u64>::new());
    let stop = Arc::new(AtomicBool::new(false));
    let owner_got = Arc::new(Mutex::new(Vec::<u64>::new()));
    let stolen: Vec<Arc<Mutex<Vec<u64>>>> = (0..THIEVES)
        .map(|_| Arc::new(Mutex::new(Vec::new())))
        .collect();

    let thief_handles: Vec<_> = stolen
        .iter()
        .map(|log| {
            let d = deque.clone();
            let stop = stop.clone();
            let log = log.clone();
            std::thread::spawn(move || {
                let mut local = Vec::new();
                loop {
                    match d.steal() {
                        Some(v) => local.push(v),
                        None if stop.load(Ordering::Acquire) => break,
                        None => std::hint::spin_loop(),
                    }
                }
                log.lock().unwrap().extend(local);
            })
        })
        .collect();

    // Owner: bursts of pushes interleaved with LIFO pops.
    let mut rng = Rng64::seed_from_u64(0xDECADE);
    let mut next = 0u64;
    let mut owner_local = Vec::new();
    while next < TOKENS {
        let burst = 1 + rng.usize_below(16) as u64;
        for _ in 0..burst.min(TOKENS - next) {
            deque.push(next);
            next += 1;
        }
        for _ in 0..rng.usize_below(8) {
            if let Some(v) = deque.pop() {
                owner_local.push(v);
            }
        }
    }
    // Drain the rest from the owner side, then release the thieves.
    while let Some(v) = deque.pop() {
        owner_local.push(v);
    }
    stop.store(true, Ordering::Release);
    for h in thief_handles {
        h.join().unwrap();
    }
    owner_got.lock().unwrap().extend(owner_local);

    let mut seen = vec![0u32; TOKENS as usize];
    for &v in owner_got.lock().unwrap().iter() {
        seen[v as usize] += 1;
    }
    for log in &stolen {
        let log = log.lock().unwrap();
        for w in log.windows(2) {
            assert!(
                w[0] < w[1],
                "thief steals out of push order: {} then {}",
                w[0],
                w[1]
            );
        }
        for &v in log.iter() {
            seen[v as usize] += 1;
        }
    }
    for (v, &n) in seen.iter().enumerate() {
        assert_eq!(n, 1, "token {v} surfaced {n} times (lost or doubled)");
    }
}

/// A task stolen and executed by a scheduler worker (the submitter is
/// asleep, so nobody else can run it) panics; the panic must surface
/// from `wait()` on the submitting thread, and the scheduler must keep
/// working afterwards.
#[test]
fn panic_in_stolen_task_propagates_to_waiter() {
    let sched = Scheduler::new(2);
    let group = TaskGroup::new(&sched);
    group.spawn(|_| panic!("stolen boom"));
    // Sleep instead of waiting: the only way the task runs is a worker
    // taking it from the injector — i.e. an actual steal.
    std::thread::sleep(Duration::from_millis(100));
    let err = group.wait().expect_err("worker panic must surface");
    let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
    assert_eq!(msg, "stolen boom");

    // Scheduler survives: a fresh group completes normally.
    let after = TaskGroup::new(&sched);
    let done = Arc::new(AtomicUsize::new(0));
    for _ in 0..8 {
        let d = done.clone();
        after.spawn(move |_| {
            d.fetch_add(1, Ordering::Relaxed);
        });
    }
    after.wait().unwrap();
    assert_eq!(done.load(Ordering::Relaxed), 8);
    sched.shutdown();
}

/// Same property for regions: a slot that provably ran on a scheduler
/// worker (slot 1+ while the submitter is wedged in slot 0) panics, and
/// `run_region` re-raises it on the submitter.
#[test]
fn panic_in_stolen_region_slot_propagates() {
    let sched = Scheduler::new(2);
    let cancel = CancelToken::new();
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        sched.run_region(3, &cancel, |ctx| {
            if ctx.slot == 0 {
                // Hold the submitter here so the remaining slots are
                // necessarily claimed by workers.
                std::thread::sleep(Duration::from_millis(50));
            } else {
                panic!("region slot boom");
            }
        });
    }));
    assert!(res.is_err(), "stolen slot panic must re-raise on submitter");
    // Scheduler survives.
    let count = AtomicUsize::new(0);
    sched.run_region(4, &cancel, |_| {
        count.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(count.load(Ordering::Relaxed), 4);
    sched.shutdown();
}

/// Cancellation bound: after `cancel()` returns, at most the tasks
/// already in flight (≤ workers, plus coherence slack of one) may still
/// run; everything queued behind them is skipped.
#[test]
fn cancellation_is_observed_within_bounded_completions() {
    const TASKS: usize = 100;
    let sched = Scheduler::new(1);
    let group = TaskGroup::new(&sched);
    let ran = Arc::new(AtomicUsize::new(0));
    for _ in 0..TASKS {
        let r = ran.clone();
        group.spawn(move |_| {
            r.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(1));
        });
    }
    // Let the worker start chewing, then cancel.
    while ran.load(Ordering::Acquire) == 0 {
        std::hint::spin_loop();
    }
    let ran_at_cancel = ran.load(Ordering::Acquire);
    group.cancel();
    group.wait().unwrap();
    let ran_final = ran.load(Ordering::Acquire);
    assert!(
        ran_final <= ran_at_cancel + sched.workers() + 1,
        "cancellation not bounded: {ran_at_cancel} ran at cancel, {ran_final} total"
    );
    assert_eq!(
        ran_final + group.skipped(),
        TASKS,
        "every task must be either run or skipped"
    );
    assert!(group.skipped() > 0, "cancelling early must skip something");
    sched.shutdown();
}

/// Mirror of the task-graph generator below: how many nodes, and what
/// are the sum/xor of their ids, for a given seed?
fn expected_graph(seed: u64, id: u64, depth: u32, acc: &mut (u64, u64, u64)) {
    acc.0 += 1;
    acc.1 = acc.1.wrapping_add(id + 1);
    acc.2 ^= id + 1;
    if depth >= 3 {
        return;
    }
    let mut rng = Rng64::seed_from_u64(seed ^ (id + 1).wrapping_mul(0x9E3779B97F4A7C15));
    let kids = rng.usize_below(4);
    for k in 0..kids {
        expected_graph(seed, id * 4 + k as u64 + 1, depth + 1, acc);
    }
}

fn spawn_graph(
    ctx: &JobCtx<'_>,
    seed: u64,
    id: u64,
    depth: u32,
    count: &Arc<AtomicU64>,
    sum: &Arc<AtomicU64>,
    xor: &Arc<AtomicU64>,
) {
    count.fetch_add(1, Ordering::Relaxed);
    sum.fetch_add(id + 1, Ordering::Relaxed);
    xor.fetch_xor(id + 1, Ordering::Relaxed);
    if depth >= 3 {
        return;
    }
    let mut rng = Rng64::seed_from_u64(seed ^ (id + 1).wrapping_mul(0x9E3779B97F4A7C15));
    let kids = rng.usize_below(4);
    for k in 0..kids {
        let (count, sum, xor) = (count.clone(), sum.clone(), xor.clone());
        let child = id * 4 + k as u64 + 1;
        ctx.spawn(move |ctx| spawn_graph(ctx, seed, child, depth + 1, &count, &sum, &xor));
    }
}

/// 10k randomized dynamic job graphs (fan-out ≤ 3, depth ≤ 3, children
/// spawned *from inside* running tasks so they land on worker-local
/// deques and get stolen): node count, id-sum, and id-xor must all
/// match a sequential mirror — no lost and no double-executed tasks.
#[test]
fn no_lost_or_double_executed_tasks_across_10k_random_graphs() {
    const GRAPHS: u64 = 10_000;
    let sched = Scheduler::new(3);
    for g in 0..GRAPHS {
        let seed = 0xBEEF ^ g.wrapping_mul(0x2545F4914F6CDD1D);
        let mut want = (0u64, 0u64, 0u64);
        expected_graph(seed, 0, 0, &mut want);

        let group = TaskGroup::new(&sched);
        let count = Arc::new(AtomicU64::new(0));
        let sum = Arc::new(AtomicU64::new(0));
        let xor = Arc::new(AtomicU64::new(0));
        {
            let (count, sum, xor) = (count.clone(), sum.clone(), xor.clone());
            group.spawn(move |ctx| spawn_graph(ctx, seed, 0, 0, &count, &sum, &xor));
        }
        group.wait().unwrap();
        let got = (
            count.load(Ordering::Acquire),
            sum.load(Ordering::Acquire),
            xor.load(Ordering::Acquire),
        );
        assert_eq!(got, want, "graph seed {seed:#x}: lost or doubled tasks");
        assert_eq!(group.pending(), 0);
    }
    sched.shutdown();
}

/// Multi-tenant smoke: four submitter threads hammer the same scheduler
/// with regions of different team sizes; every region must see exactly
/// its own slots despite interleaving with the other tenants' tickets.
#[test]
fn concurrent_regions_from_many_tenants_do_not_cross_talk() {
    let sched = Scheduler::new(3);
    let handles: Vec<_> = (0..4)
        .map(|tenant| {
            let sched = sched.clone();
            std::thread::spawn(move || {
                let team = tenant + 2; // 2..=5
                let cancel = CancelToken::new();
                for round in 0..200 {
                    let mask = AtomicUsize::new(0);
                    let hits = AtomicUsize::new(0);
                    sched.run_region(team, &cancel, |ctx| {
                        assert_eq!(ctx.team, team, "tenant {tenant} round {round}");
                        hits.fetch_add(1, Ordering::Relaxed);
                        mask.fetch_or(1 << ctx.slot, Ordering::Relaxed);
                    });
                    assert_eq!(hits.load(Ordering::Relaxed), team);
                    assert_eq!(mask.load(Ordering::Relaxed), (1 << team) - 1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    sched.shutdown();
}
