//! Work-stealing task scheduler for multi-tenant tensor decomposition.
//!
//! PR 1's `ThreadPool` gave every parallel region a static
//! one-block-per-thread schedule: correct and cache-friendly when one
//! decomposition owns the machine (the setting of Hayashi et al.), but
//! the moment several jobs of different sizes share a host, static
//! splits strand cores — a small sparse job finishes its blocks and its
//! threads idle while a dense job next door is still grinding.
//!
//! This crate replaces the *execution substrate* without touching the
//! *partition semantics*:
//!
//! * [`WorkDeque`] — per-worker owner-LIFO/thief-FIFO deques (coarse
//!   locked, trivially linearizable; tasks are block-sized, so lock
//!   cost is noise).
//! * [`Scheduler`] — `W` workers + an injector, randomized stealing,
//!   condvar parking. [`Scheduler::run_region`] runs the OpenMP-style
//!   blocking region every MTTKRP executor is written against: `team`
//!   slots claimed dynamically (atomic slot counter + stealable
//!   tickets) so any idle worker — from any job — can pick one up.
//!   Slot *identity* is preserved, so partition tables and workspace
//!   arenas indexed by slot id produce bitwise-identical results to the
//!   static schedule.
//! * [`TaskGroup`] / [`JobCtx`] — job-scoped `'static` task groups with
//!   panic propagation and cooperative [`CancelToken`] cancellation;
//!   the unit the `tensorcpd` daemon submits per decomposition job.
//!
//! The scheduler is deliberately oblivious to tensors: it moves opaque
//! closures. `mttkrp-parallel` keeps its entire public API and simply
//! submits its regions here, which is how every existing executor
//! (dense, sparse CSF, out-of-core, fused) migrated unchanged.

mod cancel;
mod deque;
mod scheduler;

pub use cancel::CancelToken;
pub use deque::WorkDeque;
pub use scheduler::{JobCtx, Scheduler, TaskGroup, TeamCtx};
