//! The per-worker work deque.
//!
//! Each scheduler worker owns one [`WorkDeque`]: the owner pushes and
//! pops at the *bottom* (LIFO — the task pushed most recently is the
//! hottest in cache and runs first), while thieves steal from the *top*
//! (FIFO — the oldest, typically largest-granularity task migrates, the
//! classic work-stealing heuristic from Cilk/Chase–Lev).
//!
//! The implementation is a coarse-locked ring (`Mutex<VecDeque>`)
//! rather than a lock-free Chase–Lev deque: tasks in this workspace are
//! *block-sized* (an MTTKRP column block, a whole decomposition sweep
//! region slot — microseconds to milliseconds each), so a ~20 ns
//! uncontended lock round-trip per operation is noise, and the mutex
//! makes every operation trivially linearizable — the property the
//! stress battery in `tests/stress.rs` hammers. The owner's fast path
//! takes its own (usually uncontended) lock; thieves only touch a
//! victim's lock when their own deque and the injector are empty.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A double-ended work queue: owner LIFO at the bottom, thieves FIFO at
/// the top. All operations are linearizable (single internal lock).
#[derive(Debug)]
pub struct WorkDeque<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> Default for WorkDeque<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> WorkDeque<T> {
    /// An empty deque.
    pub fn new() -> Self {
        WorkDeque {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Owner push at the bottom (the next [`WorkDeque::pop`] returns
    /// this task — LIFO for locality).
    pub fn push(&self, task: T) {
        self.inner.lock().unwrap().push_back(task);
    }

    /// Owner pop from the bottom: the most recently pushed task.
    pub fn pop(&self) -> Option<T> {
        self.inner.lock().unwrap().pop_back()
    }

    /// Thief steal from the top: the oldest task in the deque.
    pub fn steal(&self) -> Option<T> {
        self.inner.lock().unwrap().pop_front()
    }

    /// Number of queued tasks (a snapshot; immediately stale under
    /// contention).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Whether the deque is empty (snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_lifo_thief_is_fifo() {
        let d = WorkDeque::new();
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.steal(), Some(1), "thief takes the oldest");
        assert_eq!(d.pop(), Some(3), "owner takes the newest");
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), None);
    }

    #[test]
    fn len_tracks_contents() {
        let d = WorkDeque::new();
        assert!(d.is_empty());
        for i in 0..10 {
            d.push(i);
        }
        assert_eq!(d.len(), 10);
        d.pop();
        d.steal();
        assert_eq!(d.len(), 8);
    }
}
