//! Cooperative cancellation tokens.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cooperative cancellation flag shared between a job's owner and
/// every task running on its behalf.
///
/// Cancellation is *advisory*: setting the token never interrupts a
/// running task. Tasks (and the drivers between sweeps) poll
/// [`CancelToken::is_cancelled`] at their natural boundaries; the
/// scheduler itself skips still-queued tasks of a cancelled
/// [`TaskGroup`](crate::TaskGroup) before running their closure, which
/// bounds how much work a cancelled job can still perform by the number
/// of tasks *already executing* when the token flipped.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
        a.cancel(); // idempotent
        assert!(a.is_cancelled());
    }
}
