//! The work-stealing scheduler: workers, deques, regions, task groups.
//!
//! # Topology
//!
//! A [`Scheduler`] owns `W` worker threads, each with a private
//! [`WorkDeque`] (owner LIFO / thief FIFO), plus one shared *injector*
//! deque for submissions arriving from threads that are not workers
//! (CLI mains, daemon job drivers, test harnesses). A worker looks for
//! work in the classic order — own deque, injector, then randomized
//! stealing from the other workers — and parks on a condvar when the
//! whole system is empty.
//!
//! # Two task shapes
//!
//! * **Regions** ([`Scheduler::run_region`]) — the OpenMP-style
//!   parallel region every MTTKRP executor is written against, now as
//!   stealable units. A region of team size `T` is one shared
//!   [`RegionState`] with an atomic *slot counter*; `T − 1` stealable
//!   *tickets* go into the deques while the submitting thread claims
//!   slots directly. Whoever pops a ticket claims the next unclaimed
//!   slot (`fetch_add`) and runs the region closure for it, so a slot
//!   executes **exactly once** no matter how tickets and claims race —
//!   the no-lost/no-double-execution property the stress battery
//!   checks. The submitter blocks until all `T` slots finish, which is
//!   what makes it sound for the closure to borrow the caller's stack.
//! * **Jobs** ([`TaskGroup::spawn`]) — `'static` closures grouped under
//!   a [`TaskGroup`] with a shared [`CancelToken`]: the unit of
//!   multi-tenant work the `tensorcpd` daemon submits. Cancelling a
//!   group makes the scheduler *skip* (not run) its still-queued tasks,
//!   so cancellation is observed after at most the tasks that were
//!   already executing when the token flipped.
//!
//! Panics never poison the scheduler: a panicking region slot or group
//! task is caught where it ran, recorded first-wins on its region or
//! group, and re-raised on the thread that waits ([`run_region`]
//! re-raises inline; [`TaskGroup::wait`] returns it as `Err`).
//!
//! [`run_region`]: Scheduler::run_region

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::cancel::CancelToken;
use crate::deque::WorkDeque;

type PanicPayload = Box<dyn Any + Send + 'static>;

/// Identity of one claimed slot inside a parallel region.
#[derive(Debug)]
pub struct TeamCtx<'a> {
    /// Slot id within the region's team, `0 <= slot < team`. Plays the
    /// role the static schedule's `thread_id` used to play: partition
    /// tables and workspace arenas are indexed by it.
    pub slot: usize,
    /// Team size of the region.
    pub team: usize,
    /// The cooperative cancellation token of the job this region
    /// belongs to.
    pub cancel: &'a CancelToken,
}

/// Context handed to a spawned group task.
pub struct JobCtx<'a> {
    sched: &'a Scheduler,
    core: &'a Arc<GroupCore>,
}

impl JobCtx<'_> {
    /// Whether the owning [`TaskGroup`] has been cancelled; long tasks
    /// should poll this at convenient boundaries and return early.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.core.cancel.is_cancelled()
    }

    /// The group's cancellation token.
    pub fn cancel_token(&self) -> CancelToken {
        self.core.cancel.clone()
    }

    /// Spawn a follow-up task into the same group (the edge of a
    /// dynamic job graph). The group's [`TaskGroup::wait`] does not
    /// return until this task, too, has finished or been skipped.
    pub fn spawn(&self, f: impl FnOnce(&JobCtx<'_>) + Send + 'static) {
        spawn_into(self.sched, self.core, f);
    }

    /// The scheduler this task is running on.
    pub fn scheduler(&self) -> &Scheduler {
        self.sched
    }
}

/// Shared state of one blocking parallel region.
///
/// `call`/`data` type-erase the region closure living on the
/// submitter's stack; see the safety argument on [`claim_and_run`].
///
/// [`claim_and_run`]: RegionState::claim_and_run
struct RegionState {
    /// Monomorphized shim that downcasts `data` and invokes the closure.
    call: unsafe fn(*const (), TeamCtx<'_>),
    /// Pointer to the submitter's closure. Only dereferenced for slots
    /// claimed below `team`, which the submitter outlives by
    /// construction (it blocks until `done == team`).
    data: *const (),
    team: usize,
    /// Next unclaimed slot; claims at or above `team` are no-ops, which
    /// is what makes leftover tickets harmless after the region ends.
    next: AtomicUsize,
    /// Completed slots; the submitter returns when this reaches `team`.
    done: AtomicUsize,
    cancel: CancelToken,
    /// First panic raised by any slot (first-wins).
    panic: Mutex<Option<PanicPayload>>,
    m: Mutex<()>,
    cv: Condvar,
}

// Safety: `data` is only dereferenced while the submitting thread is
// provably blocked in `run_region` (a claimed slot keeps `done` below
// `team` until it finishes), so the pointee outlives every dereference.
// All other fields are themselves Sync.
unsafe impl Send for RegionState {}
unsafe impl Sync for RegionState {}

impl RegionState {
    /// Claim the next unclaimed slot and run the region closure for
    /// it. Returns `false` when every slot is already claimed (the
    /// ticket becomes a no-op).
    fn claim_and_run(self: &Arc<Self>) -> bool {
        let slot = self.next.fetch_add(1, Ordering::Relaxed);
        if slot >= self.team {
            return false;
        }
        let res = catch_unwind(AssertUnwindSafe(|| {
            // Safety: slot < team, so the submitter is still blocked in
            // `run_region` and `data` points at its live closure.
            unsafe {
                (self.call)(
                    self.data,
                    TeamCtx {
                        slot,
                        team: self.team,
                        cancel: &self.cancel,
                    },
                )
            }
        }));
        if let Err(p) = res {
            let mut slot = self.panic.lock().unwrap();
            if slot.is_none() {
                *slot = Some(p);
            }
        }
        if self.done.fetch_add(1, Ordering::AcqRel) + 1 == self.team {
            // Lock-then-notify so the submitter's check-and-wait cannot
            // miss the wakeup.
            let _g = self.m.lock().unwrap();
            self.cv.notify_all();
        }
        true
    }

    fn wait_done(&self) {
        let mut g = self.m.lock().unwrap();
        while self.done.load(Ordering::Acquire) < self.team {
            // Timeout as a belt-and-braces liveness guard; the
            // lock-then-notify protocol already prevents lost wakeups.
            g = self
                .cv
                .wait_timeout(g, Duration::from_millis(50))
                .unwrap()
                .0;
        }
    }
}

/// Shared state of a [`TaskGroup`].
struct GroupCore {
    /// Spawned-but-unfinished tasks (skipped tasks count as finished).
    pending: AtomicUsize,
    /// Tasks skipped because the group was cancelled before they ran.
    skipped: AtomicUsize,
    cancel: CancelToken,
    /// First panic raised by any task (first-wins).
    panic: Mutex<Option<PanicPayload>>,
    m: Mutex<()>,
    cv: Condvar,
}

impl GroupCore {
    fn task_finished(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = self.m.lock().unwrap();
            self.cv.notify_all();
        }
    }
}

/// A stealable unit of work in a deque.
enum Task {
    /// A ticket for one unclaimed slot of a region.
    Region(Arc<RegionState>),
    /// A spawned `'static` group task.
    Job {
        run: Box<dyn FnOnce(&JobCtx<'_>) + Send + 'static>,
        group: Arc<GroupCore>,
    },
}

struct SchedInner {
    /// One deque per worker thread.
    deques: Vec<WorkDeque<Task>>,
    /// Submissions from non-worker threads.
    injector: WorkDeque<Task>,
    /// Approximate count of queued tasks, used only for parking.
    pending: AtomicUsize,
    park: Mutex<()>,
    unpark: Condvar,
    shutdown: AtomicBool,
    /// Seed source for ad-hoc stealing RNGs (group waiters).
    steal_seed: AtomicU64,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

thread_local! {
    /// `(scheduler identity, worker index)` when the current thread is
    /// a scheduler worker. The identity pointer distinguishes workers
    /// of different scheduler instances (tests run isolated ones).
    static CURRENT_WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

/// A handle to a work-stealing scheduler instance. Cloning is cheap
/// (`Arc`); all clones drive the same workers.
#[derive(Clone)]
pub struct Scheduler {
    inner: Arc<SchedInner>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("workers", &self.inner.deques.len())
            .finish()
    }
}

impl Scheduler {
    /// Spawn a scheduler with `workers` worker threads. Zero workers is
    /// legal: every region then runs entirely on its submitting thread
    /// and every group task on its waiter — the degenerate
    /// single-threaded host.
    pub fn new(workers: usize) -> Self {
        let inner = Arc::new(SchedInner {
            deques: (0..workers).map(|_| WorkDeque::new()).collect(),
            injector: WorkDeque::new(),
            pending: AtomicUsize::new(0),
            park: Mutex::new(()),
            unpark: Condvar::new(),
            shutdown: AtomicBool::new(false),
            steal_seed: AtomicU64::new(0x9E37_79B9_7F4A_7C15),
            handles: Mutex::new(Vec::new()),
        });
        let mut handles = Vec::with_capacity(workers);
        for id in 0..workers {
            let arc = inner.clone();
            let h = std::thread::Builder::new()
                .name(format!("mttkrp-worker-{id}"))
                .spawn(move || worker_loop(arc, id))
                .expect("failed to spawn scheduler worker");
            handles.push(h);
        }
        *inner.handles.lock().unwrap() = handles;
        Scheduler { inner }
    }

    /// The process-wide shared scheduler every `mttkrp_parallel`-style
    /// thread pool submits to, created on first use with
    /// [`Scheduler::default_workers`] workers.
    pub fn global() -> &'static Scheduler {
        static GLOBAL: OnceLock<Scheduler> = OnceLock::new();
        GLOBAL.get_or_init(|| Scheduler::new(Self::default_workers()))
    }

    /// Worker count of the global scheduler: `MTTKRP_SCHED_WORKERS` if
    /// set, else the host's available parallelism minus one (submitting
    /// threads participate in their own regions, so `P − 1` workers
    /// saturate `P` hardware threads without oversubscription).
    pub fn default_workers() -> usize {
        if let Ok(v) = std::env::var("MTTKRP_SCHED_WORKERS") {
            match v.trim().parse::<usize>() {
                Ok(n) => return n,
                Err(_) => {
                    eprintln!("warning: ignoring non-numeric MTTKRP_SCHED_WORKERS={v:?}");
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .saturating_sub(1)
    }

    /// Number of worker threads (excluding submitters, which
    /// participate in their own regions).
    #[inline]
    pub fn workers(&self) -> usize {
        self.inner.deques.len()
    }

    /// Execute a blocking parallel region of `team` slots: `f` runs
    /// once per slot (`TeamCtx::slot` in `0..team`), and the call
    /// returns only when every slot has finished — which is what makes
    /// it sound for `f` to borrow the caller's stack.
    ///
    /// The submitting thread claims slots itself (so a region makes
    /// progress even with zero idle workers) while `team − 1` stealable
    /// tickets let idle workers claim the rest. A panicking slot is
    /// re-raised here after the region quiesces (first panic wins).
    ///
    /// # Panics
    /// Panics if `team == 0`, and re-raises slot panics.
    pub fn run_region<F>(&self, team: usize, cancel: &CancelToken, f: F)
    where
        F: Fn(TeamCtx<'_>) + Sync,
    {
        assert!(team > 0, "region team must have at least one slot");
        if team == 1 {
            f(TeamCtx {
                slot: 0,
                team: 1,
                cancel,
            });
            return;
        }
        mttkrp_obs::counter!("sched.regions").incr();
        let _span = mttkrp_obs::span_full!("region", team = team);
        unsafe fn call_shim<F: Fn(TeamCtx<'_>) + Sync>(data: *const (), ctx: TeamCtx<'_>) {
            // Safety: `data` points at the submitter's live `F`; see
            // the RegionState safety argument.
            unsafe { (*(data as *const F))(ctx) }
        }
        let region = Arc::new(RegionState {
            call: call_shim::<F>,
            data: &f as *const F as *const (),
            team,
            next: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            cancel: cancel.clone(),
            panic: Mutex::new(None),
            m: Mutex::new(()),
            cv: Condvar::new(),
        });
        self.inner.submit_tickets(&region, team - 1);
        // Claim slots on the submitting thread until none remain…
        while region.claim_and_run() {}
        // …then quiesce: slots claimed by workers must finish before the
        // closure (and any buffers it borrows) can be released.
        region.wait_done();
        let panicked = region.panic.lock().unwrap().take();
        if let Some(p) = panicked {
            resume_unwind(p);
        }
    }

    /// Stop the workers and join them, dropping any still-queued tasks
    /// (queued group tasks are counted as skipped so waiters unblock).
    /// Only meaningful for isolated instances; the global scheduler is
    /// never shut down.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        {
            let _g = self.inner.park.lock().unwrap();
            self.inner.unpark.notify_all();
        }
        let handles: Vec<_> = self.inner.handles.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        // Drain leftovers so groups waiting on dropped tasks unblock.
        let mut seed = 1u64;
        while let Some(task) = self.inner.find_task(None, &mut seed) {
            if let Task::Job { group, .. } = task {
                group.skipped.fetch_add(1, Ordering::Relaxed);
                group.task_finished();
            }
        }
    }

    fn identity(&self) -> usize {
        Arc::as_ptr(&self.inner) as usize
    }

    /// Worker index of the current thread on *this* scheduler, if any.
    fn current_worker(&self) -> Option<usize> {
        CURRENT_WORKER.with(|w| match w.get() {
            Some((token, id)) if token == self.identity() => Some(id),
            _ => None,
        })
    }
}

/// A job-scoped group of `'static` tasks sharing one cancellation
/// token — the unit of multi-tenant work the decomposition service
/// submits per job.
pub struct TaskGroup {
    core: Arc<GroupCore>,
    sched: Scheduler,
}

impl std::fmt::Debug for TaskGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskGroup")
            .field("pending", &self.pending())
            .field("cancelled", &self.is_cancelled())
            .finish()
    }
}

impl TaskGroup {
    /// An empty group on `sched` with a fresh [`CancelToken`].
    pub fn new(sched: &Scheduler) -> Self {
        Self::with_token(sched, CancelToken::new())
    }

    /// An empty group wired to an externally owned token (the daemon
    /// hands the same token to the job driver and the group).
    pub fn with_token(sched: &Scheduler, cancel: CancelToken) -> Self {
        TaskGroup {
            core: Arc::new(GroupCore {
                pending: AtomicUsize::new(0),
                skipped: AtomicUsize::new(0),
                cancel,
                panic: Mutex::new(None),
                m: Mutex::new(()),
                cv: Condvar::new(),
            }),
            sched: sched.clone(),
        }
    }

    /// Spawn a task into the group. Tasks may spawn follow-ups through
    /// their [`JobCtx`]; [`TaskGroup::wait`] covers those too.
    pub fn spawn(&self, f: impl FnOnce(&JobCtx<'_>) + Send + 'static) {
        spawn_into(&self.sched, &self.core, f);
    }

    /// Request cooperative cancellation: still-queued tasks of this
    /// group are skipped instead of run, and running tasks observe
    /// [`JobCtx::is_cancelled`].
    pub fn cancel(&self) {
        self.core.cancel.cancel();
    }

    /// Whether the group has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.core.cancel.is_cancelled()
    }

    /// The group's cancellation token.
    pub fn cancel_token(&self) -> CancelToken {
        self.core.cancel.clone()
    }

    /// Spawned-but-unfinished task count (snapshot).
    pub fn pending(&self) -> usize {
        self.core.pending.load(Ordering::Acquire)
    }

    /// Tasks skipped by cancellation before they ran.
    pub fn skipped(&self) -> usize {
        self.core.skipped.load(Ordering::Acquire)
    }

    /// Block until every spawned task has finished or been skipped,
    /// *helping* — the waiter executes queued tasks instead of idling,
    /// so groups complete even on a zero-worker scheduler. Returns the
    /// first panic any task raised, if one did.
    pub fn wait(&self) -> Result<(), PanicPayload> {
        let mut seed = self
            .sched
            .inner
            .steal_seed
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
            | 1;
        let me = self.sched.current_worker();
        while self.core.pending.load(Ordering::Acquire) > 0 {
            if let Some(task) = self.sched.inner.find_task(me, &mut seed) {
                SchedInner::execute(&self.sched.inner, task);
            } else {
                let g = self.core.m.lock().unwrap();
                if self.core.pending.load(Ordering::Acquire) > 0 {
                    let _ = self
                        .core
                        .cv
                        .wait_timeout(g, Duration::from_millis(5))
                        .unwrap();
                }
            }
        }
        match self.core.panic.lock().unwrap().take() {
            Some(p) => Err(p),
            None => Ok(()),
        }
    }
}

fn spawn_into(
    sched: &Scheduler,
    core: &Arc<GroupCore>,
    f: impl FnOnce(&JobCtx<'_>) + Send + 'static,
) {
    core.pending.fetch_add(1, Ordering::AcqRel);
    mttkrp_obs::counter!("sched.tasks_spawned").incr();
    sched.inner.submit(Task::Job {
        run: Box::new(f),
        group: core.clone(),
    });
}

impl SchedInner {
    /// Queue one task on the current worker's deque (LIFO hot end) or
    /// the injector, then wake parked workers.
    fn submit(self: &Arc<Self>, task: Task) {
        let me = CURRENT_WORKER.with(|w| match w.get() {
            Some((token, id)) if token == Arc::as_ptr(self) as usize => Some(id),
            _ => None,
        });
        match me {
            Some(id) => self.deques[id].push(task),
            None => self.injector.push(task),
        }
        self.pending.fetch_add(1, Ordering::AcqRel);
        let _g = self.park.lock().unwrap();
        self.unpark.notify_all();
    }

    /// Queue `n` tickets for `region` and wake parked workers once.
    fn submit_tickets(self: &Arc<Self>, region: &Arc<RegionState>, n: usize) {
        if n == 0 {
            return;
        }
        let me = CURRENT_WORKER.with(|w| match w.get() {
            Some((token, id)) if token == Arc::as_ptr(self) as usize => Some(id),
            _ => None,
        });
        let target = match me {
            Some(id) => &self.deques[id],
            None => &self.injector,
        };
        for _ in 0..n {
            target.push(Task::Region(region.clone()));
        }
        self.pending.fetch_add(n, Ordering::AcqRel);
        let _g = self.park.lock().unwrap();
        self.unpark.notify_all();
    }

    /// Own deque → injector → randomized stealing sweep.
    fn find_task(&self, me: Option<usize>, seed: &mut u64) -> Option<Task> {
        if let Some(id) = me {
            if let Some(t) = self.deques[id].pop() {
                self.pending.fetch_sub(1, Ordering::AcqRel);
                return Some(t);
            }
        }
        if let Some(t) = self.injector.steal() {
            self.pending.fetch_sub(1, Ordering::AcqRel);
            return Some(t);
        }
        let n = self.deques.len();
        if n > 0 {
            // xorshift64* — victim order varies per attempt, which is
            // all randomized stealing needs.
            *seed ^= *seed << 13;
            *seed ^= *seed >> 7;
            *seed ^= *seed << 17;
            let start = (*seed % n as u64) as usize;
            for k in 0..n {
                let v = (start + k) % n;
                if Some(v) == me {
                    continue;
                }
                if let Some(t) = self.deques[v].steal() {
                    self.pending.fetch_sub(1, Ordering::AcqRel);
                    mttkrp_obs::counter!("sched.tasks_stolen").incr();
                    return Some(t);
                }
            }
        }
        None
    }

    fn execute(this: &Arc<Self>, task: Task) {
        match task {
            Task::Region(region) => {
                region.claim_and_run();
            }
            Task::Job { run, group } => {
                if group.cancel.is_cancelled() {
                    group.skipped.fetch_add(1, Ordering::Relaxed);
                    mttkrp_obs::counter!("sched.tasks_skipped").incr();
                    group.task_finished();
                    return;
                }
                let sched = Scheduler {
                    inner: this.clone(),
                };
                let res = catch_unwind(AssertUnwindSafe(|| {
                    run(&JobCtx {
                        sched: &sched,
                        core: &group,
                    })
                }));
                if let Err(p) = res {
                    let mut slot = group.panic.lock().unwrap();
                    if slot.is_none() {
                        *slot = Some(p);
                    }
                }
                mttkrp_obs::counter!("sched.tasks_executed").incr();
                group.task_finished();
            }
        }
    }
}

fn worker_loop(inner: Arc<SchedInner>, id: usize) {
    CURRENT_WORKER.with(|w| w.set(Some((Arc::as_ptr(&inner) as usize, id))));
    let mut seed = 0xA076_1D64_78BD_642Fu64 ^ ((id as u64 + 1) << 17) | 1;
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            break;
        }
        if let Some(task) = inner.find_task(Some(id), &mut seed) {
            SchedInner::execute(&inner, task);
            continue;
        }
        let g = inner.park.lock().unwrap();
        if inner.pending.load(Ordering::Acquire) == 0 && !inner.shutdown.load(Ordering::Acquire) {
            // Timeout keeps an unlucky worker live across any missed
            // edge; the submit path's lock-then-notify makes that rare.
            let _ = inner
                .unpark
                .wait_timeout(g, Duration::from_millis(10))
                .unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn region_runs_every_slot_exactly_once() {
        for workers in [0, 1, 3] {
            let sched = Scheduler::new(workers);
            for team in [1usize, 2, 5, 9] {
                let hits: Vec<AtomicUsize> = (0..team).map(|_| AtomicUsize::new(0)).collect();
                let cancel = CancelToken::new();
                sched.run_region(team, &cancel, |ctx| {
                    assert_eq!(ctx.team, team);
                    hits[ctx.slot].fetch_add(1, Ordering::Relaxed);
                });
                for (s, h) in hits.iter().enumerate() {
                    assert_eq!(h.load(Ordering::Relaxed), 1, "workers={workers} slot {s}");
                }
            }
            sched.shutdown();
        }
    }

    #[test]
    fn region_panic_propagates_and_scheduler_survives() {
        let sched = Scheduler::new(2);
        let cancel = CancelToken::new();
        let res = catch_unwind(AssertUnwindSafe(|| {
            sched.run_region(4, &cancel, |ctx| {
                if ctx.slot == 2 {
                    panic!("slot boom");
                }
            });
        }));
        assert!(res.is_err());
        let count = AtomicUsize::new(0);
        sched.run_region(4, &cancel, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 4);
        sched.shutdown();
    }

    #[test]
    fn group_tasks_complete_and_wait_helps_without_workers() {
        let sched = Scheduler::new(0);
        let group = TaskGroup::new(&sched);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let d = done.clone();
            group.spawn(move |_| {
                d.fetch_add(1, Ordering::Relaxed);
            });
        }
        group.wait().unwrap();
        assert_eq!(done.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn cancelled_group_skips_queued_tasks() {
        let sched = Scheduler::new(0); // nothing runs until we wait
        let group = TaskGroup::new(&sched);
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let r = ran.clone();
            group.spawn(move |_| {
                r.fetch_add(1, Ordering::Relaxed);
            });
        }
        group.cancel();
        group.wait().unwrap();
        assert_eq!(ran.load(Ordering::Relaxed), 0, "no queued task may run");
        assert_eq!(group.skipped(), 8);
    }

    #[test]
    fn tasks_can_spawn_subtasks() {
        let sched = Scheduler::new(1);
        let group = TaskGroup::new(&sched);
        let total = Arc::new(AtomicUsize::new(0));
        let t = total.clone();
        group.spawn(move |ctx| {
            t.fetch_add(1, Ordering::Relaxed);
            for _ in 0..3 {
                let t2 = t.clone();
                ctx.spawn(move |_| {
                    t2.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        group.wait().unwrap();
        assert_eq!(total.load(Ordering::Relaxed), 4);
        sched.shutdown();
    }

    #[test]
    fn group_panic_is_returned_by_wait() {
        let sched = Scheduler::new(1);
        let group = TaskGroup::new(&sched);
        group.spawn(|_| panic!("job boom"));
        let err = group.wait().expect_err("panic must surface");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("job boom"));
        sched.shutdown();
    }
}
