//! PR 9 trajectory record: roofline attribution and the bench-diff
//! regression gate — written to `BENCH_pr9.json` via the shared
//! [`BenchReport`] builder (schema in docs/FORMATS.md).
//!
//! Three parts:
//!
//! 1. **Roofline attribution.** Calibrates a tuning profile on this
//!    host, runs every mode of a 3-way fixture with `Tuned` plans
//!    (GEMM byte counters bracketed around the timed reps), and folds
//!    the phase breakdowns through `mttkrp_tune::perf_report_with`.
//!    One `roofline` row per attributed phase records achieved GB/s /
//!    GFLOP/s and percent-of-roof; the `perf` section rolls up per
//!    mode. Percent-of-roof is recorded, not asserted — on hosts whose
//!    last-level cache holds the fixture the DRAM-priced roofs are
//!    legitimately exceeded.
//! 2. **Gate self-tests.** Deterministic in-memory checks of the
//!    `BenchDiff` engine: an identity diff must pass, a 20% throughput
//!    regression must fail, a 20% *improvement* must pass, and a small
//!    residual wobble must stay under the widened error tolerance.
//!    These ARE asserted — they are what the CI perf-gate leg trusts.
//! 3. **Acceptance rollup**: `diff_selftests_ok` plus the recorded
//!    roofline observations (mode-0 bound, worst percent-of-roof).
//!
//! Env knobs: `MTTKRP_BENCH_SMOKE=1` shrinks the fixture and uses the
//! quick calibration ladder, `MTTKRP_BENCH_OUT` overrides the output
//! path.

use mttkrp_bench::{MttkrpFixture, RANK};
use mttkrp_core::{AlgoChoice, Breakdown, MttkrpPlan};
use mttkrp_obs::{registry, set_metrics_enabled, BenchDiff, BenchReport, Bound};
use mttkrp_parallel::ThreadPool;
use mttkrp_tune::{calibrate, CalibrateOptions, ModeRun};

/// Timed repetitions accumulated per mode (after one warmup).
const REPS: usize = 3;

/// Total GEMM bytes recorded so far, summed over kernel tiers.
fn gemm_bytes() -> u64 {
    ["scalar", "avx2", "avx512", "neon"]
        .iter()
        .map(|t| registry().counter(&format!("blas.gemm_bytes.{t}")).value())
        .sum()
}

/// A small synthetic bench report for the gate self-tests; `scale`
/// multiplies the throughput metrics, `resid` sets the error metric.
fn synthetic_report(scale: f64, resid: f64) -> String {
    let mut r = BenchReport::new(9);
    r.scalar("rank", RANK).scalar("smoke", false);
    for mode in 0..3u32 {
        r.row("mttkrp")
            .field("algorithm", "1step")
            .field("mode", mode)
            .field("seconds", 0.01 / scale)
            .field("gb_per_s", scale * (2.0 + mode as f64))
            .field("resid", resid);
    }
    r.to_json()
}

/// The four deterministic BenchDiff checks the CI gate relies on.
/// Returns `(all_ok, per-check rows)` and records each verdict.
fn diff_selftests(report: &mut BenchReport) -> bool {
    let tol = BenchDiff::DEFAULT_TOLERANCE_PCT;
    let base = synthetic_report(1.0, 1e-12);

    let identity = BenchDiff::from_json("base", &base, "same", &base)
        .expect("identity diff parses")
        .pass(tol);
    let regressed = !BenchDiff::from_json("base", &base, "slow", &synthetic_report(0.8, 1e-12))
        .expect("regression diff parses")
        .pass(tol);
    let improved = BenchDiff::from_json("base", &base, "fast", &synthetic_report(1.2, 1e-12))
        .expect("improvement diff parses")
        .pass(tol);
    // Error metrics get a 20x-widened tolerance: a 2x residual wobble
    // (100% < 20 * 15%) must NOT gate.
    let resid_ok = BenchDiff::from_json("base", &base, "wobble", &synthetic_report(1.0, 2e-12))
        .expect("residual diff parses")
        .pass(tol);

    for (name, ok) in [
        ("identity_passes", identity),
        ("regression_fails", regressed),
        ("improvement_passes", improved),
        ("residual_wobble_tolerated", resid_ok),
    ] {
        report
            .row("diff_selftest")
            .field("check", name)
            .field("ok", ok);
        println!(
            "diff self-test {name}: {}",
            if ok { "ok" } else { "FAILED" }
        );
    }
    identity && regressed && improved && resid_ok
}

fn main() {
    let smoke = std::env::var("MTTKRP_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let entries = if smoke { 60_000 } else { 4_000_000 };
    let host = ThreadPool::host();
    let fx = MttkrpFixture::equal(3, entries);
    let dims = fx.dims.clone();
    let refs = fx.refs();

    let mut report = BenchReport::new(9);
    report
        .scalar("rank", RANK)
        .scalar(
            "dims",
            dims.iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("x"),
        )
        .scalar("smoke", smoke)
        .scalar("host_threads", host.num_threads());

    // -- Part 1: roofline attribution against a freshly calibrated
    // profile (the GEMM byte counters need the metrics gate open).
    set_metrics_enabled(true);
    let profile = calibrate(&CalibrateOptions {
        threads: None,
        quick: smoke,
    });
    report.scalar(
        "calib_err",
        profile
            .calib_err
            .expect("calibration records its fit residual"),
    );

    let mut runs = Vec::with_capacity(dims.len());
    for n in 0..dims.len() {
        let mut out = vec![0.0; dims[n] * RANK];
        let mut plan = MttkrpPlan::new(&host, &dims, RANK, n, AlgoChoice::Tuned);
        plan.execute(&host, &fx.x, &refs, &mut out); // warm buffers
        let bytes_before = gemm_bytes();
        let mut bd = Breakdown::default();
        for _ in 0..REPS {
            bd.accumulate(&plan.execute_timed(&host, &fx.x, &refs, &mut out));
        }
        let measured = (gemm_bytes() - bytes_before) as f64;
        runs.push(ModeRun {
            mode: n,
            algo: plan.algo(),
            predicted: plan.predicted_times(),
            runs: REPS,
            breakdown: bd,
            gemm_bytes: (measured > 0.0).then_some(measured),
        });
    }
    let perf = mttkrp_tune::perf_report_with(
        &profile,
        &dims,
        RANK,
        host.num_threads(),
        8,
        mttkrp_blas::kernels::<f64>().tier(),
        &runs,
    );
    print!("{}", perf.table());

    let mut worst_pct = 0.0f64;
    for m in perf.modes() {
        report
            .row("perf")
            .field("mode", m.label.as_str())
            .field("algorithm", m.algo.as_str())
            .field("seconds", m.seconds)
            .field("pct_of_roof", m.pct_of_roof)
            .field("bandwidth_bound", m.bound == Bound::Bandwidth);
        for p in &m.phases {
            worst_pct = worst_pct.max(p.pct_of_roof);
            report
                .row("roofline")
                .field("mode", m.label.as_str())
                .field("phase", p.name.as_str())
                .field("seconds", p.seconds)
                .field("gb_per_s", p.achieved_gb_per_s)
                .field("gflop_per_s", p.achieved_gflop_per_s)
                .field("pct_of_roof", p.pct_of_roof)
                .field("bandwidth_bound", p.bound == Bound::Bandwidth);
        }
    }

    // -- Part 2: the deterministic gate self-tests.
    let diff_ok = diff_selftests(&mut report);

    // -- Part 3: acceptance rollup. The roofline observations are
    // recorded (see the module docs for why they are not asserted);
    // the gate self-tests are the hard invariant.
    let mode0_bw = perf
        .modes()
        .first()
        .is_some_and(|m| m.bound == Bound::Bandwidth);
    report
        .row("acceptance")
        .field("diff_selftests_ok", diff_ok)
        .field("mode0_bandwidth_bound", mode0_bw)
        .field("worst_pct_of_roof", worst_pct)
        .field("advisory", perf.advisory().unwrap_or("none"));

    let out = BenchReport::out_path(&format!(
        "{}/../../BENCH_pr9.json",
        env!("CARGO_MANIFEST_DIR")
    ));
    report.save(&out).expect("write BENCH_pr9.json");
    print!("{}", report.to_json());
    eprintln!("# wrote {out}");

    assert!(diff_ok, "BenchDiff self-tests failed");
}
