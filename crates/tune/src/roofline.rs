//! The model-aware bridge from measured executions to the roofline
//! attribution report.
//!
//! `mttkrp_obs::roofline` is deliberately data-driven: it attributes
//! whatever [`PhaseSample`]s it is handed and knows nothing about
//! MTTKRP. This module is the part that *does* know — it owns the
//! per-phase traffic model (bytes and flops each [`Breakdown`] phase
//! moves for a given shape) and the roof model (the calibrated
//! profile's `BW(T)` fit and per-tier kernel rates), and folds one
//! [`ModeRun`] per executed mode into a [`PerfReport`]:
//!
//! * KRP phases write `rows·C` Hadamard-combined elements (write +
//!   read-for-ownership traffic) against the `hadamard_cost` rate;
//! * GEMM uses the measured `blas.gemm_bytes.<tier>` counter when the
//!   caller snapshotted it (falling back to the analytic operand
//!   traffic) against the tier's `gemm_flops / gemm_eff0` peak;
//! * the multi-TTV, fused-stream, and reduction phases stream
//!   tensor-sized or output-sized traffic against `BW(T)` (the
//!   reduction against `BW(T)·reduce_scale`).
//!
//! The same runs feed a [`ChoiceLog`] seeded with the profile's
//! `calib_err` baseline, so a stale profile surfaces as the
//! "recalibrate" drift advisory on the report itself.

use mttkrp_blas::KernelTier;
use mttkrp_core::{Breakdown, ChoiceLog, ChoiceRecord, ModeCost, PlannedAlgo};
use mttkrp_obs::{PerfReport, PhaseSample};

use crate::profile::TuningProfile;

/// One executed (and timed) mode, as the harness or a CP-ALS driver
/// observed it: the resolved algorithm, the accumulated per-phase
/// breakdown, and optionally the model's prediction and the measured
/// GEMM byte counter over the same interval.
#[derive(Debug, Clone)]
pub struct ModeRun {
    /// The MTTKRP mode that ran.
    pub mode: usize,
    /// The kernel the plan resolved to.
    pub algo: PlannedAlgo,
    /// The cost model's per-algorithm prediction for this mode, when
    /// the plan was built from one (feeds drift detection).
    pub predicted: Option<ModeCost>,
    /// How many executions `breakdown` accumulates (≥ 1).
    pub runs: usize,
    /// Per-phase seconds summed over all `runs` executions.
    pub breakdown: Breakdown,
    /// Measured `blas.gemm_bytes.<tier>` delta over the same interval,
    /// when the caller snapshotted the counter (requires metrics to be
    /// enabled); `None` falls back to the analytic operand traffic.
    pub gemm_bytes: Option<f64>,
}

/// Shape-derived sizes shared by every phase model.
struct Shape {
    total: f64,
    rows: f64,
    other: f64,
    il: f64,
    ir: f64,
    c: f64,
    s: f64,
    t: f64,
}

impl Shape {
    fn new(dims: &[usize], mode: usize, rank: usize, threads: usize, elem_bytes: usize) -> Shape {
        let total: f64 = dims.iter().map(|&d| d as f64).product();
        let rows = dims.get(mode).copied().unwrap_or(1) as f64;
        let il: f64 = dims[..mode.min(dims.len())]
            .iter()
            .map(|&d| d as f64)
            .product();
        let ir: f64 = dims[(mode + 1).min(dims.len())..]
            .iter()
            .map(|&d| d as f64)
            .product();
        Shape {
            total,
            rows,
            other: total / rows.max(1.0),
            il,
            ir,
            c: rank as f64,
            s: elem_bytes as f64,
            t: threads as f64,
        }
    }
}

/// Build the attributed [`PerfReport`] for `runs` against the
/// **installed** profile (the one actually pricing plans in this
/// process). `None` when no profile is installed — callers fall back
/// to a hint to run `tensorcp tune`.
pub fn perf_report(
    dims: &[usize],
    rank: usize,
    threads: usize,
    elem_bytes: usize,
    tier: KernelTier,
    runs: &[ModeRun],
) -> Option<PerfReport> {
    crate::installed_profile()
        .map(|p| perf_report_with(p, dims, rank, threads, elem_bytes, tier, runs))
}

/// Build the attributed [`PerfReport`] for `runs` against an explicit
/// `profile` (what [`perf_report`] does with the installed one).
///
/// Every phase with recorded time in a run's breakdown becomes one
/// attributed [`PhaseSample`]; the runs also replay through a
/// [`ChoiceLog`] seeded with the profile's `calib_err` so sustained
/// prediction error surfaces as the drift advisory on the report.
pub fn perf_report_with(
    profile: &TuningProfile,
    dims: &[usize],
    rank: usize,
    threads: usize,
    elem_bytes: usize,
    tier: KernelTier,
    runs: &[ModeRun],
) -> PerfReport {
    let m = profile.machine_for(tier);
    let bw = m.bw(threads.max(1));
    let peak = threads.max(1) as f64 * m.peak_flops_core;

    let mut report = PerfReport::new();
    report.set_context(
        "dims",
        dims.iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("x"),
    );
    report.set_context("rank", rank.to_string());
    report.set_context("threads", threads.to_string());
    report.set_context("tier", tier.name());
    report.set_context("elem_bytes", elem_bytes.to_string());
    report.set_context("bw_roof_gb_per_s", format!("{:.2}", bw / 1e9));
    report.set_context(
        "gemm_roof_gflop_per_s",
        format!("{:.2}", peak * m.gemm_eff0 / 1e9),
    );
    if let Some(ce) = profile.calib_err {
        report.set_context("calib_err", format!("{ce:.4}"));
    }

    let mut log = ChoiceLog::new();
    if let Some(ce) = profile.calib_err {
        log.set_baseline_error(ce);
    }

    for run in runs {
        let sh = Shape::new(dims, run.mode, rank, threads, elem_bytes);
        let reps = run.runs.max(1) as f64;
        let bd = &run.breakdown;
        let mut samples = Vec::with_capacity(7);

        // Hadamard-rate roof for the row-wise KRP kernels: one
        // combined element per `hadamard_cost` seconds per thread.
        let krp_roof = sh.t / m.hadamard_cost;
        if bd.full_krp > 0.0 {
            samples.push(PhaseSample {
                name: "full_krp".into(),
                seconds: bd.full_krp,
                bytes: reps * sh.other * sh.c * 2.0 * sh.s,
                flops: reps * sh.other * sh.c,
                bw_roof: bw,
                flop_roof: krp_roof,
            });
        }
        if bd.lr_krp > 0.0 {
            samples.push(PhaseSample {
                name: "lr_krp".into(),
                seconds: bd.lr_krp,
                bytes: reps * (sh.il + sh.ir) * sh.c * 2.0 * sh.s,
                flops: reps * (sh.il + sh.ir) * sh.c,
                bw_roof: bw,
                flop_roof: krp_roof,
            });
        }
        if bd.dgemm > 0.0 {
            // Operand traffic (A + B + write/RFO of C) unless the
            // caller measured the real per-call counter.
            let model_bytes = reps * (sh.total + sh.other * sh.c + 2.0 * sh.rows * sh.c) * sh.s;
            samples.push(PhaseSample {
                name: "gemm".into(),
                seconds: bd.dgemm,
                bytes: run.gemm_bytes.filter(|&b| b > 0.0).unwrap_or(model_bytes),
                flops: reps * 2.0 * sh.total * sh.c,
                bw_roof: bw,
                flop_roof: peak * m.gemm_eff0,
            });
        }
        if bd.dgemv > 0.0 {
            // Multi-TTV: streams the step-1 intermediate once per rank
            // column; GEMV sustains a fraction of the GEMM peak.
            samples.push(PhaseSample {
                name: "gemv".into(),
                seconds: bd.dgemv,
                bytes: reps * sh.total * sh.s,
                flops: reps * 2.0 * sh.total,
                bw_roof: bw,
                flop_roof: peak * 0.25,
            });
        }
        if bd.fused > 0.0 {
            let fused_roof = m.fused_cost.map_or(peak, |fc| 3.0 * sh.t / fc);
            samples.push(PhaseSample {
                name: "fused".into(),
                seconds: bd.fused,
                bytes: reps * sh.total * sh.s,
                flops: reps * 3.0 * sh.total * sh.c,
                bw_roof: bw,
                flop_roof: fused_roof,
            });
        }
        if bd.reduce > 0.0 {
            // Read T private outputs, write the merged one, at the
            // measured reduction efficiency.
            samples.push(PhaseSample {
                name: "reduce".into(),
                seconds: bd.reduce,
                bytes: reps * sh.rows * sh.c * (sh.t + 1.0) * sh.s,
                flops: reps * sh.rows * sh.c * sh.t,
                bw_roof: bw * m.reduce_scale,
                flop_roof: peak,
            });
        }
        if bd.reorder > 0.0 {
            samples.push(PhaseSample {
                name: "reorder".into(),
                seconds: bd.reorder,
                bytes: reps * 2.0 * sh.total * sh.s,
                flops: 0.0,
                bw_roof: bw,
                flop_roof: peak,
            });
        }

        report.push_mode(
            &format!("mode {}", run.mode),
            &format!("{:?}", run.algo),
            bd.total,
            &samples,
        );

        if bd.total > 0.0 {
            log.push(ChoiceRecord {
                dims: dims.to_vec(),
                rank,
                mode: run.mode,
                threads,
                algo: run.algo,
                predicted: run.predicted,
                measured: bd.total / reps,
                measured_other: None,
            });
        }
    }

    if let Some(advisory) = log.drift_advisory() {
        report.set_advisory(advisory);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::TierTuning;

    fn profile() -> TuningProfile {
        TuningProfile {
            cores: 4,
            threads: 4,
            bw1: 10e9, // 10 GB/s single thread
            bw_theta: 8.0,
            reduce_scale: 0.8,
            mkl_penalty: 0.0,
            calib_err: Some(0.05),
            tiers: vec![TierTuning {
                tier: KernelTier::Scalar,
                gemm_flops: 9e9,
                gemm_eff0: 0.9,
                hadamard_cost: 1e-9,
                fused_cost: Some(2e-9),
            }],
        }
    }

    /// A mode-0 run on a 64³ cube whose phase times sit well below the
    /// synthetic roofs (so pct_of_roof lands in a sane range).
    fn run_mode0(seconds_scale: f64) -> ModeRun {
        ModeRun {
            mode: 0,
            algo: PlannedAlgo::OneStepExternal,
            predicted: None,
            runs: 1,
            breakdown: Breakdown {
                full_krp: 0.004 * seconds_scale,
                dgemm: 0.006 * seconds_scale,
                reduce: 0.001 * seconds_scale,
                total: 0.011 * seconds_scale,
                ..Default::default()
            },
            gemm_bytes: None,
        }
    }

    #[test]
    fn dense_mode0_attributes_every_timed_phase() {
        let r = perf_report_with(
            &profile(),
            &[64, 64, 64],
            16,
            4,
            8,
            KernelTier::Scalar,
            &[run_mode0(1.0)],
        );
        assert_eq!(r.modes().len(), 1);
        let m = &r.modes()[0];
        assert_eq!(m.label, "mode 0");
        assert_eq!(m.algo, "OneStepExternal");
        let names: Vec<&str> = m.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["full_krp", "gemm", "reduce"]);
        for p in &m.phases {
            assert!(p.pct_of_roof.is_finite() && p.pct_of_roof > 0.0, "{p:?}");
        }
        // Context carries the model inputs.
        let ctx = r.context();
        assert!(ctx.iter().any(|(k, v)| k == "dims" && v == "64x64x64"));
        assert!(ctx.iter().any(|(k, _)| k == "calib_err"));
        assert!(r.advisory().is_none(), "no predictions, no drift");
    }

    #[test]
    fn slow_phases_lower_pct_of_roof() {
        let fast = perf_report_with(
            &profile(),
            &[64, 64, 64],
            16,
            4,
            8,
            KernelTier::Scalar,
            &[run_mode0(1.0)],
        );
        let slow = perf_report_with(
            &profile(),
            &[64, 64, 64],
            16,
            4,
            8,
            KernelTier::Scalar,
            &[run_mode0(10.0)],
        );
        assert!(
            slow.modes()[0].pct_of_roof < fast.modes()[0].pct_of_roof / 5.0,
            "10x slower should attribute ~10x lower: fast={} slow={}",
            fast.modes()[0].pct_of_roof,
            slow.modes()[0].pct_of_roof
        );
    }

    #[test]
    fn measured_gemm_bytes_override_the_analytic_model() {
        let mut run = run_mode0(1.0);
        run.gemm_bytes = Some(123.456e6);
        let r = perf_report_with(
            &profile(),
            &[64, 64, 64],
            16,
            4,
            8,
            KernelTier::Scalar,
            &[run],
        );
        let gemm = r.modes()[0]
            .phases
            .iter()
            .find(|p| p.name == "gemm")
            .unwrap();
        let expected = 123.456e6 / gemm.seconds / 1e9;
        assert!(
            (gemm.achieved_gb_per_s - expected).abs() < 1e-9,
            "counter bytes must win: {} vs {}",
            gemm.achieved_gb_per_s,
            expected
        );
    }

    #[test]
    fn sustained_prediction_error_surfaces_the_drift_advisory() {
        // Predictions 3x off the measurement, enough samples to fill
        // the drift window past its minimum.
        let predicted = Some(ModeCost {
            one_step: 0.033,
            two_step: 0.05,
            fused: None,
        });
        let runs: Vec<ModeRun> = (0..6)
            .map(|i| {
                let mut r = run_mode0(1.0);
                r.mode = i % 3;
                r.predicted = predicted;
                r
            })
            .collect();
        let r = perf_report_with(
            &profile(),
            &[64, 64, 64],
            16,
            4,
            8,
            KernelTier::Scalar,
            &runs,
        );
        let advisory = r.advisory().expect("3x error over 6 runs must drift");
        assert!(advisory.contains("recalibrate"), "{advisory}");
        // Accurate predictions on the same runs stay quiet.
        let good: Vec<ModeRun> = (0..6)
            .map(|i| {
                let mut r = run_mode0(1.0);
                r.mode = i % 3;
                r.predicted = Some(ModeCost {
                    one_step: 0.011,
                    two_step: 0.05,
                    fused: None,
                });
                r
            })
            .collect();
        let r = perf_report_with(
            &profile(),
            &[64, 64, 64],
            16,
            4,
            8,
            KernelTier::Scalar,
            &good,
        );
        assert!(r.advisory().is_none());
    }

    #[test]
    fn fused_and_two_step_phases_use_their_own_roofs() {
        let runs = [
            ModeRun {
                mode: 1,
                algo: PlannedAlgo::TwoStepLeft,
                predicted: None,
                runs: 2,
                breakdown: Breakdown {
                    lr_krp: 0.002,
                    dgemm: 0.004,
                    dgemv: 0.003,
                    total: 0.009,
                    ..Default::default()
                },
                gemm_bytes: None,
            },
            ModeRun {
                mode: 2,
                algo: PlannedAlgo::Fused,
                predicted: None,
                runs: 1,
                breakdown: Breakdown {
                    fused: 0.008,
                    total: 0.008,
                    ..Default::default()
                },
                gemm_bytes: None,
            },
        ];
        let r = perf_report_with(
            &profile(),
            &[48, 48, 48],
            16,
            4,
            8,
            KernelTier::Scalar,
            &runs,
        );
        assert_eq!(r.modes().len(), 2);
        let two = &r.modes()[0];
        let names: Vec<&str> = two.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["lr_krp", "gemm", "gemv"]);
        let fused = &r.modes()[1];
        assert_eq!(fused.algo, "Fused");
        assert_eq!(fused.phases.len(), 1);
        assert!(fused.phases[0].pct_of_roof.is_finite());
        // The table and envelope render end to end.
        assert!(r.table().contains("mode 2 [Fused]"));
        assert!(r.to_json().contains("\"schema\": \"mttkrp-perf-v1\""));
    }
}
