//! Whole-host calibration: run every microbenchmark, fit the machine
//! model, assemble a [`TuningProfile`].

use mttkrp_blas::{available_tiers, KernelSet};
use mttkrp_parallel::ThreadPool;

use crate::measure;
use crate::profile::{TierTuning, TuningProfile};

/// Options for [`calibrate`].
#[derive(Debug, Clone, Default)]
pub struct CalibrateOptions {
    /// Team size for the parallel microbenchmarks (bandwidth ladder
    /// top, reduction). Defaults to the host's available parallelism.
    pub threads: Option<usize>,
    /// Shrink every fixture to the low-millisecond range. Meant for
    /// tests and CI; quick profiles are noisier but structurally
    /// identical.
    pub quick: bool,
}

/// The thread ladder the bandwidth fit samples: powers of two up to
/// `t`, always including 1 and `t` themselves.
fn thread_ladder(t: usize) -> Vec<usize> {
    let mut ladder = vec![1usize];
    let mut p = 2usize;
    while p < t {
        ladder.push(p);
        p *= 2;
    }
    if t > 1 {
        ladder.push(t);
    }
    ladder
}

/// Calibrate this host: measure the STREAM bandwidth curve over a
/// thread ladder, the sequential GEMM and Hadamard throughput of every
/// *supported* kernel tier, the matrix-free fused MTTKRP pass, and the
/// parallel-reduction efficiency;
/// fit the machine-model coefficients ([`measure::fit_bw_theta`]) and
/// return them as a persistable [`TuningProfile`].
///
/// The returned profile's `mkl_penalty` is 0: this implementation's
/// parallel GEMMs use private outputs plus a reduction, so the MKL
/// small-output stall the paper models does not occur here.
pub fn calibrate(opts: &CalibrateOptions) -> TuningProfile {
    let _span = mttkrp_obs::span!("calibrate");
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = opts.threads.unwrap_or(cores).max(1);

    // Bandwidth ladder → bw1 and θ.
    let points: Vec<(usize, f64)> = {
        let _s = mttkrp_obs::span!("stream_ladder", threads = threads);
        thread_ladder(threads)
            .into_iter()
            .map(|t| {
                let pool = ThreadPool::new(t);
                (t, measure::stream_bandwidth(&pool, opts.quick))
            })
            .collect()
    };
    let bw1 = points[0].1;
    let bw_theta = measure::fit_bw_theta(bw1, &points);
    let bw_at_team = {
        let t = threads as f64;
        bw1 * t / (1.0 + (t - 1.0) / bw_theta)
    };
    // Residual of the fitted curve against the measured ladder: the
    // calibration-time noise floor that drift detection compares
    // runtime prediction error against.
    let calib_err = points
        .iter()
        .map(|&(t, measured)| {
            let t = t as f64;
            let model = bw1 * t / (1.0 + (t - 1.0) / bw_theta);
            ((model - measured) / measured).abs()
        })
        .sum::<f64>()
        / points.len() as f64;

    // Reduction efficiency at the full team.
    let reduce_scale = {
        let _s = mttkrp_obs::span!("reduce_scale");
        let pool = ThreadPool::new(threads);
        measure::reduce_scale(&pool, threads, bw_at_team, opts.quick)
    };

    // The fused pass's inner accumulate is scalar code shared by every
    // tier, so it is measured once and recorded in each tier section
    // (the section is where `machine_for` reads it from).
    let fused = {
        let _s = mttkrp_obs::span!("fused_cost");
        measure::fused_cost(opts.quick)
    };

    // Per-tier kernel throughput.
    let tiers = available_tiers()
        .into_iter()
        .filter_map(|tier| KernelSet::for_tier(tier).map(|ks| (tier, ks)))
        .map(|(tier, ks)| {
            let _s = mttkrp_obs::span!("tier_throughput", tier = tier as usize);
            TierTuning {
                tier,
                gemm_flops: measure::gemm_flops(&ks, opts.quick),
                gemm_eff0: 0.90,
                hadamard_cost: measure::hadamard_cost(&ks, opts.quick),
                fused_cost: Some(fused),
            }
        })
        .collect();

    TuningProfile {
        cores,
        threads,
        bw1,
        bw_theta,
        reduce_scale,
        mkl_penalty: 0.0,
        calib_err: Some(calib_err),
        tiers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_covers_one_and_t() {
        assert_eq!(thread_ladder(1), vec![1]);
        assert_eq!(thread_ladder(2), vec![1, 2]);
        assert_eq!(thread_ladder(6), vec![1, 2, 4, 6]);
        assert_eq!(thread_ladder(8), vec![1, 2, 4, 8]);
    }

    #[test]
    fn quick_calibration_yields_a_loadable_profile() {
        let p = calibrate(&CalibrateOptions {
            threads: Some(2),
            quick: true,
        });
        assert_eq!(p.threads, 2);
        assert!(!p.tiers.is_empty());
        assert!(p.bw1 > 0.0 && p.bw_theta > 0.0);
        assert_eq!(p.mkl_penalty, 0.0);
        // Fresh calibrations always record their fit residual.
        let ce = p.calib_err.expect("calib_err recorded");
        assert!(ce.is_finite() && ce >= 0.0, "calib_err {ce}");
        // The profile the calibrator emits must satisfy its own codec.
        let text = p.to_text();
        let q = TuningProfile::from_text(&text).expect("self round trip");
        assert_eq!(p, q);
        // And produce a usable machine for every measured tier — with
        // the fused term calibrated, not left at the legacy None.
        for t in &p.tiers {
            let m = p.machine_for(t.tier);
            assert!(m.peak_flops_core > 0.0);
            assert!(m.hadamard_cost > 0.0);
            let fc = m.fused_cost.expect("fresh calibrations price fused");
            assert!(fc.is_finite() && fc > 0.0);
        }
    }
}
