//! Empirical autotuning: measure this host, fit the paper's machine
//! model, persist the fit, and drive adaptive plan selection with it.
//!
//! The paper's central contribution beyond raw parallelization is a
//! machine model that picks between the 1-step and 2-step MTTKRP per
//! mode. `mttkrp-machine` implements that model — but seeded with the
//! paper testbed's hardcoded Sandy Bridge constants, so its
//! `Predicted` plan choices are only trustworthy on a machine that
//! looks like a 2012 Xeon. This crate replaces guessed constants with
//! **measured** ones:
//!
//! 1. [`calibrate()`] runs microbenchmarks on the live host (STREAM
//!    bandwidth over a thread ladder, register-tiled GEMM and Hadamard
//!    throughput per SIMD kernel tier, parallel-reduction efficiency —
//!    all timed with `mttkrp-bench`'s shared timer) and fits the
//!    model's coefficients from the measurements;
//! 2. the fit persists as a versioned [`TuningProfile`] — a plain-text
//!    codec with a checked `MTTKRP-TUNE v1` header and the same
//!    reject-don't-panic reader discipline as the binary
//!    `MTKT`/`MTKS`/`MTTB` formats (see `docs/FORMATS.md`);
//! 3. [`install`] (or [`init_from_env`], honoring the
//!    [`ENV_VAR`]=`MTTKRP_TUNE_PROFILE` environment variable) turns a
//!    profile into the process-wide cost model: every
//!    [`mttkrp_core::AlgoChoice::Tuned`] plan built afterwards —
//!    dense, per-tile out-of-core, and the sparse team-size cap —
//!    prices its mode on the calibrated machine instead of the paper's
//!    external/internal heuristic.
//!
//! Without a profile nothing changes: `Tuned` falls back to the
//! heuristic, so the subsystem is strictly opt-in.
//!
//! # Quickstart
//!
//! ```no_run
//! use mttkrp_tune::{calibrate, CalibrateOptions};
//!
//! let profile = calibrate(&CalibrateOptions::default());
//! profile.save("host.tune")?;
//! mttkrp_tune::install(profile);
//! // MttkrpPlan::new(.., AlgoChoice::Tuned) now prices 1-step vs
//! // 2-step with this host's measured bandwidth and kernel rates.
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! Or from the command line: `tensorcp tune --out host.tune`, then
//! run anything with `MTTKRP_TUNE_PROFILE=host.tune`.

#![deny(missing_docs)]

pub mod calibrate;
pub mod measure;
pub mod profile;
pub mod roofline;

pub use calibrate::{calibrate, CalibrateOptions};
pub use profile::{TierTuning, TuningProfile, ENV_VAR, MAGIC, VERSION};
pub use roofline::{perf_report, perf_report_with, ModeRun};

use std::io;
use std::sync::OnceLock;

static INSTALLED: OnceLock<TuningProfile> = OnceLock::new();

/// Install `profile` as the process-wide tuning profile: registers the
/// calibrated machine (at the active kernel dispatch tier) with
/// `mttkrp-machine`, which in turn installs the cost model every
/// subsequently built [`mttkrp_core::AlgoChoice::Tuned`] plan
/// consults. First installation wins, mirroring the kernel-tier
/// dispatch; returns `false` (leaving the earlier state in effect) if
/// a profile or machine model was already installed.
pub fn install(profile: TuningProfile) -> bool {
    // Register the machine first: if another model already owns the
    // cost-model slot (an earlier profile, or a direct
    // `mttkrp_machine::install_machine` call), refuse *without*
    // recording the profile — `installed_profile()` must never name a
    // profile whose coefficients are not the ones actually pricing
    // plans.
    if !mttkrp_machine::install_machine(profile.machine_active()) {
        return false;
    }
    let _ = INSTALLED.set(profile);
    true
}

/// The profile installed in this process, if any.
pub fn installed_profile() -> Option<&'static TuningProfile> {
    INSTALLED.get()
}

/// Load and [`install`] the profile named by the
/// `MTTKRP_TUNE_PROFILE` environment variable.
///
/// * variable unset → `Ok(None)` (nothing installed, heuristic
///   fallback everywhere);
/// * variable set but the file is missing or malformed → the codec's
///   error, so a typo'd path fails loudly instead of silently running
///   untuned;
/// * loaded → `Ok(Some(profile))`, with the cost model installed —
///   unless another machine model was registered first, in which case
///   the profile is **not** recorded and `Ok(None)` is returned (the
///   earlier model stays authoritative).
///
/// Binaries call this once at startup, before building any plans.
pub fn init_from_env() -> io::Result<Option<&'static TuningProfile>> {
    let Some(path) = TuningProfile::env_path() else {
        return Ok(None);
    };
    let profile = TuningProfile::load(&path)?;
    install(profile);
    Ok(installed_profile())
}

#[cfg(test)]
mod tests {
    // Installation is process-global; its semantics are covered by the
    // dedicated single-test binaries in the workspace root
    // (`tests/tune_install.rs`, `tests/tune_fallback.rs`) so this
    // crate's unit-test process stays uninstalled for every other
    // test.
    #[test]
    fn nothing_installed_by_default() {
        assert!(super::installed_profile().is_none());
    }
}
