//! The versioned, on-disk tuning profile.
//!
//! A [`TuningProfile`] is the persisted output of
//! [`crate::calibrate()`]: everything needed to rebuild a calibrated
//! [`Machine`] on a later run without re-measuring — the host's fitted
//! bandwidth curve, the parallel-reduction efficiency, and one
//! `[tier …]` section of kernel throughputs per SIMD tier that was
//! available when the calibration ran.
//!
//! # Format
//!
//! Plain text, line-oriented, `key = value` (TOML-ish but in-tree like
//! every other codec in this workspace). The first line is a checked
//! header — `MTTKRP-TUNE v1` — and the last meaningful line must be
//! the literal trailer `end`, which is how truncation is detected in a
//! format with no length prefix. See `docs/FORMATS.md` for the full
//! grammar and the rejection table; the reader here enforces every
//! rule with `InvalidData` errors rather than deferring to downstream
//! panics, exactly like the binary `MTKT`/`MTKS`/`MTTB` readers.
//!
//! Floating-point values are written with Rust's shortest round-trip
//! formatting, so `save → load → save` is **bytewise** stable (a
//! property the test suite pins).

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use mttkrp_blas::{kernels, KernelTier};
use mttkrp_machine::Machine;

/// Magic first-line token of a profile file.
pub const MAGIC: &str = "MTTKRP-TUNE";
/// Format version this build writes and accepts.
pub const VERSION: u32 = 1;
/// Environment variable naming the profile to auto-load
/// ([`crate::init_from_env`]).
pub const ENV_VAR: &str = "MTTKRP_TUNE_PROFILE";

/// Measured kernel throughputs of one SIMD dispatch tier.
#[derive(Debug, Clone, PartialEq)]
pub struct TierTuning {
    /// The dispatch tier the measurements were taken on.
    pub tier: KernelTier,
    /// Sustained sequential GEMM rate at a square cache-friendly shape
    /// (flops/s) — the measured counterpart of
    /// `peak_flops_core · gemm_eff0`.
    pub gemm_flops: f64,
    /// Best-case GEMM efficiency assumed when unfolding `gemm_flops`
    /// back into a peak rate (the model's shape-efficiency anchor).
    pub gemm_eff0: f64,
    /// Seconds per element per Hadamard pass in the row-wise KRP
    /// kernels (single thread).
    pub hadamard_cost: f64,
    /// Seconds per tensor entry per rank column of the matrix-free
    /// fused MTTKRP pass (single thread). **Optional** in the file
    /// format: profiles recorded before the fused path existed carry
    /// no `fused_cost` key and load as `None`, in which case the
    /// installed cost model never prices (and so never selects) the
    /// fused algorithm.
    pub fused_cost: Option<f64>,
}

/// A calibrated, persistable machine-model coefficient set. See the
/// [module docs](self) for the file format.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningProfile {
    /// Logical cores of the calibrated host
    /// (`available_parallelism`).
    pub cores: usize,
    /// Team size the parallel microbenchmarks ran at.
    pub threads: usize,
    /// Fitted single-thread STREAM Scale bandwidth (bytes/s).
    pub bw1: f64,
    /// Fitted bandwidth-saturation parameter θ of
    /// `BW(T) = bw1·T/(1+(T−1)/θ)`.
    pub bw_theta: f64,
    /// Measured parallel-reduction efficiency relative to `BW(T)`.
    pub reduce_scale: f64,
    /// Small-output parallel GEMM penalty. Calibrated profiles write
    /// `0`: this implementation's GEMMs parallelize with private
    /// outputs and a reduction, so the MKL inner-product stall the
    /// paper models (§5.3.1) does not exist here.
    pub mkl_penalty: f64,
    /// Mean relative residual of the `BW(T)` saturation fit against
    /// the measured bandwidth ladder, recorded at calibration time.
    /// **Optional** in the file format: profiles written before drift
    /// detection existed carry no `calib_err` key and load as `None`,
    /// in which case drift detection falls back to a conservative
    /// default baseline.
    pub calib_err: Option<f64>,
    /// Per-tier kernel throughputs, one entry per tier measured.
    pub tiers: Vec<TierTuning>,
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl TuningProfile {
    /// The tuning entry for `tier`, if that tier was measured.
    pub fn tier(&self, tier: KernelTier) -> Option<&TierTuning> {
        self.tiers.iter().find(|t| t.tier == tier)
    }

    /// A [`Machine`] carrying this profile's coefficients for `tier`.
    /// Falls back to the scalar tier's measurements (then to the first
    /// recorded tier) when `tier` itself was not measured — a profile
    /// calibrated on an AVX-512 host still prices plans on a machine
    /// where only AVX2 is forced.
    pub fn machine_for(&self, tier: KernelTier) -> Machine {
        let t = self
            .tier(tier)
            .or_else(|| self.tier(KernelTier::Scalar))
            .or_else(|| self.tiers.first())
            .expect("a loaded profile always has at least one tier");
        Machine {
            cores: self.cores,
            peak_flops_core: t.gemm_flops / t.gemm_eff0,
            bw1: self.bw1,
            bw_theta: self.bw_theta,
            gemm_eff0: t.gemm_eff0,
            hadamard_cost: t.hadamard_cost,
            mkl_penalty: self.mkl_penalty,
            reduce_scale: self.reduce_scale,
            fused_cost: t.fused_cost,
        }
    }

    /// [`TuningProfile::machine_for`] at the process's active kernel
    /// dispatch tier.
    pub fn machine_active(&self) -> Machine {
        self.machine_for(kernels::<f64>().tier())
    }

    /// Serialize to the profile text format (what [`save`] writes).
    ///
    /// [`save`]: TuningProfile::save
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{MAGIC} v{VERSION}");
        let _ = writeln!(s, "cores = {}", self.cores);
        let _ = writeln!(s, "threads = {}", self.threads);
        let _ = writeln!(s, "bw1 = {:e}", self.bw1);
        let _ = writeln!(s, "bw_theta = {:e}", self.bw_theta);
        let _ = writeln!(s, "reduce_scale = {:e}", self.reduce_scale);
        let _ = writeln!(s, "mkl_penalty = {:e}", self.mkl_penalty);
        if let Some(ce) = self.calib_err {
            let _ = writeln!(s, "calib_err = {ce:e}");
        }
        for t in &self.tiers {
            let _ = writeln!(s, "[tier {}]", t.tier.name());
            let _ = writeln!(s, "gemm_flops = {:e}", t.gemm_flops);
            let _ = writeln!(s, "gemm_eff0 = {:e}", t.gemm_eff0);
            let _ = writeln!(s, "hadamard_cost = {:e}", t.hadamard_cost);
            if let Some(fc) = t.fused_cost {
                let _ = writeln!(s, "fused_cost = {fc:e}");
            }
        }
        let _ = writeln!(s, "end");
        s
    }

    /// Parse the profile text format, enforcing every rejection rule
    /// of `docs/FORMATS.md`: checked header, known version, no
    /// unknown/duplicate/missing keys, finite and in-range values, at
    /// least one tier, the `end` trailer present (truncation guard),
    /// and nothing after it.
    pub fn from_text(text: &str) -> io::Result<TuningProfile> {
        let mut lines = text.lines();
        match lines.next() {
            Some(first) if first.trim_end() == format!("{MAGIC} v{VERSION}") => {}
            Some(first) if first.starts_with(MAGIC) => {
                return Err(bad(format!(
                    "unsupported tuning-profile version {:?} (this build reads v{VERSION})",
                    first.trim_end()
                )));
            }
            _ => return Err(bad("not a tuning profile (bad header line)")),
        }

        let mut globals = KeyBag::new("profile", &GLOBAL_KEYS);
        let mut tiers: Vec<(KernelTier, KeyBag)> = Vec::new();
        let mut saw_end = false;
        for raw in lines.by_ref() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "end" {
                saw_end = true;
                break;
            }
            if let Some(name) = line
                .strip_prefix("[tier ")
                .and_then(|r| r.strip_suffix(']'))
            {
                let tier = KernelTier::parse(name.trim())
                    .map_err(|e| bad(format!("bad tier section: {e}")))?
                    .ok_or_else(|| bad("tier section cannot be \"auto\""))?;
                if tiers.iter().any(|(t, _)| *t == tier) {
                    return Err(bad(format!("duplicate [tier {}] section", tier.name())));
                }
                tiers.push((tier, KeyBag::new("tier", &TIER_KEYS)));
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| bad(format!("malformed line {line:?} (expected key = value)")))?;
            let bag = match tiers.last_mut() {
                Some((_, bag)) => bag,
                None => &mut globals,
            };
            bag.put(key.trim(), value.trim())?;
        }
        if !saw_end {
            return Err(bad("truncated tuning profile (missing `end` trailer)"));
        }
        for raw in lines {
            let line = raw.trim();
            if !line.is_empty() && !line.starts_with('#') {
                return Err(bad(format!("garbage after `end` trailer: {line:?}")));
            }
        }
        if tiers.is_empty() {
            return Err(bad("tuning profile records no kernel tiers"));
        }

        let cores = globals.usize_value("cores")?;
        let threads = globals.usize_value("threads")?;
        let bw1 = globals.f64_value("bw1", Positive)?;
        let bw_theta = globals.f64_value("bw_theta", Positive)?;
        let reduce_scale = globals.f64_value("reduce_scale", Positive)?;
        let mkl_penalty = globals.f64_value("mkl_penalty", NonNegative)?;
        let calib_err = globals.f64_optional("calib_err", NonNegative)?;
        let tiers = tiers
            .into_iter()
            .map(|(tier, bag)| {
                Ok(TierTuning {
                    tier,
                    gemm_flops: bag.f64_value("gemm_flops", Positive)?,
                    gemm_eff0: bag.f64_value("gemm_eff0", Fraction)?,
                    hadamard_cost: bag.f64_value("hadamard_cost", Positive)?,
                    fused_cost: bag.f64_optional("fused_cost", Positive)?,
                })
            })
            .collect::<io::Result<Vec<_>>>()?;
        Ok(TuningProfile {
            cores,
            threads,
            bw1,
            bw_theta,
            reduce_scale,
            mkl_penalty,
            calib_err,
            tiers,
        })
    }

    /// Write the profile to `path` (overwriting).
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        fs::write(path, self.to_text())
    }

    /// Load a profile from `path`, enforcing the format's rejection
    /// rules (see [`TuningProfile::from_text`]).
    ///
    /// # Example
    ///
    /// ```
    /// use mttkrp_tune::{TuningProfile, TierTuning};
    /// use mttkrp_blas::KernelTier;
    ///
    /// let profile = TuningProfile {
    ///     cores: 8,
    ///     threads: 8,
    ///     bw1: 1.2e10,
    ///     bw_theta: 9.0,
    ///     reduce_scale: 0.8,
    ///     mkl_penalty: 0.0,
    ///     calib_err: Some(0.03),
    ///     tiers: vec![TierTuning {
    ///         tier: KernelTier::Scalar,
    ///         gemm_flops: 6.0e9,
    ///         gemm_eff0: 0.9,
    ///         hadamard_cost: 2.0e-9,
    ///         fused_cost: Some(1.5e-9),
    ///     }],
    /// };
    /// let path = std::env::temp_dir().join("doctest-profile.tune");
    /// profile.save(&path)?;
    /// let loaded = TuningProfile::load(&path)?;
    /// assert_eq!(loaded, profile);
    /// // The calibrated machine prices plans with the measured rates.
    /// let m = loaded.machine_for(KernelTier::Scalar);
    /// assert_eq!(m.bw1, 1.2e10);
    /// # std::fs::remove_file(&path).ok();
    /// # Ok::<(), std::io::Error>(())
    /// ```
    pub fn load(path: impl AsRef<Path>) -> io::Result<TuningProfile> {
        let text = fs::read_to_string(path.as_ref()).map_err(|e| {
            io::Error::new(
                e.kind(),
                format!("cannot read tuning profile {:?}: {e}", path.as_ref()),
            )
        })?;
        Self::from_text(&text)
    }

    /// The profile path named by [`ENV_VAR`], if set.
    pub fn env_path() -> Option<PathBuf> {
        std::env::var_os(ENV_VAR).map(PathBuf::from)
    }
}

const GLOBAL_KEYS: [&str; 7] = [
    "cores",
    "threads",
    "bw1",
    "bw_theta",
    "reduce_scale",
    "mkl_penalty",
    "calib_err",
];
const TIER_KEYS: [&str; 4] = ["gemm_flops", "gemm_eff0", "hadamard_cost", "fused_cost"];

/// Range requirement on a parsed float.
enum FloatRange {
    /// Strictly positive and finite.
    Positive,
    /// Finite and `>= 0`.
    NonNegative,
    /// Finite, `> 0`, and `<= 1`.
    Fraction,
}
use FloatRange::{Fraction, NonNegative, Positive};

/// Collected `key = value` pairs of one section, validated against the
/// section's known-key list (unknown and duplicate keys rejected at
/// insert, missing keys at extraction).
struct KeyBag {
    section: &'static str,
    known: &'static [&'static str],
    entries: Vec<(String, String)>,
}

impl KeyBag {
    fn new(section: &'static str, known: &'static [&'static str]) -> KeyBag {
        KeyBag {
            section,
            known,
            entries: Vec::new(),
        }
    }

    fn put(&mut self, key: &str, value: &str) -> io::Result<()> {
        if !self.known.contains(&key) {
            return Err(bad(format!("unknown {} key {key:?}", self.section)));
        }
        if self.entries.iter().any(|(k, _)| k == key) {
            return Err(bad(format!("duplicate {} key {key:?}", self.section)));
        }
        self.entries.push((key.to_string(), value.to_string()));
        Ok(())
    }

    fn raw(&self, key: &str) -> io::Result<&str> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .ok_or_else(|| bad(format!("missing {} key {key:?}", self.section)))
    }

    fn usize_value(&self, key: &str) -> io::Result<usize> {
        let v: usize = self
            .raw(key)?
            .parse()
            .map_err(|_| bad(format!("bad {} value for {key:?}", self.section)))?;
        if v == 0 {
            return Err(bad(format!(
                "{} key {key:?} must be positive",
                self.section
            )));
        }
        Ok(v)
    }

    /// Like [`KeyBag::f64_value`] but for keys the grammar marks
    /// optional: an absent key is `Ok(None)`, while a present key must
    /// still satisfy `range`.
    fn f64_optional(&self, key: &str, range: FloatRange) -> io::Result<Option<f64>> {
        if self.entries.iter().any(|(k, _)| k == key) {
            return self.f64_value(key, range).map(Some);
        }
        Ok(None)
    }

    fn f64_value(&self, key: &str, range: FloatRange) -> io::Result<f64> {
        let v: f64 = self
            .raw(key)?
            .parse()
            .map_err(|_| bad(format!("bad {} value for {key:?}", self.section)))?;
        let ok = v.is_finite()
            && match range {
                Positive => v > 0.0,
                NonNegative => v >= 0.0,
                Fraction => v > 0.0 && v <= 1.0,
            };
        if !ok {
            return Err(bad(format!(
                "{} key {key:?} out of range ({v})",
                self.section
            )));
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample() -> TuningProfile {
        TuningProfile {
            cores: 8,
            threads: 6,
            bw1: 1.3785691443583887e10,
            bw_theta: 9.25,
            reduce_scale: 0.8123,
            mkl_penalty: 0.0,
            calib_err: Some(0.042),
            tiers: vec![
                TierTuning {
                    tier: KernelTier::Scalar,
                    gemm_flops: 7.8e9,
                    gemm_eff0: 0.9,
                    hadamard_cost: 1.2345e-9,
                    fused_cost: Some(2.5e-9),
                },
                // No fused term: the pre-fused profile shape, which
                // must keep serializing and loading unchanged.
                TierTuning {
                    tier: KernelTier::Avx2,
                    gemm_flops: 2.34e10,
                    gemm_eff0: 0.9,
                    hadamard_cost: 0.8e-9,
                    fused_cost: None,
                },
            ],
        }
    }

    #[test]
    fn round_trip_is_exact_and_bytewise_stable() {
        let p = sample();
        let text = p.to_text();
        let q = TuningProfile::from_text(&text).expect("round trip parses");
        assert_eq!(p, q, "value round trip");
        assert_eq!(text, q.to_text(), "bytewise-stable re-serialization");
    }

    #[test]
    fn comments_and_blank_lines_are_permitted() {
        let mut text = String::from("MTTKRP-TUNE v1\n# calibrated on host X\n\n");
        for line in sample().to_text().lines().skip(1) {
            text.push_str(line);
            text.push('\n');
        }
        let q = TuningProfile::from_text(&text).expect("comments parse");
        assert_eq!(q, sample());
    }

    #[test]
    fn header_and_version_are_enforced() {
        let body = sample().to_text();
        let swapped = body.replacen("MTTKRP-TUNE v1", "MTTKRP-TUNE v2", 1);
        let e = TuningProfile::from_text(&swapped).unwrap_err();
        assert!(e.to_string().contains("version"), "{e}");
        let wrong = body.replacen("MTTKRP-TUNE v1", "NOTAPROFILE v1", 1);
        let e = TuningProfile::from_text(&wrong).unwrap_err();
        assert!(e.to_string().contains("header"), "{e}");
        assert!(TuningProfile::from_text("").is_err());
    }

    #[test]
    fn truncation_is_rejected() {
        let text = sample().to_text();
        // Dropping the trailer (with or without trailing content) is
        // exactly what a partial write looks like.
        let no_end = text.replace("end\n", "");
        let e = TuningProfile::from_text(&no_end).unwrap_err();
        assert!(e.to_string().contains("truncated"), "{e}");
        let half = &text[..text.len() / 2];
        assert!(TuningProfile::from_text(half).is_err());
    }

    #[test]
    fn garbage_after_trailer_is_rejected() {
        let text = format!("{}junk = 1\n", sample().to_text());
        let e = TuningProfile::from_text(&text).unwrap_err();
        assert!(e.to_string().contains("garbage"), "{e}");
        // Comments and whitespace after `end` are fine.
        let ok = format!("{}\n# trailing comment\n", sample().to_text());
        assert!(TuningProfile::from_text(&ok).is_ok());
    }

    #[test]
    fn unknown_duplicate_and_missing_keys_are_rejected() {
        let text = sample().to_text();
        let unknown = text.replacen("bw_theta", "bw_zeta", 1);
        assert!(TuningProfile::from_text(&unknown).is_err());
        let dup = text.replacen("bw_theta = ", "bw1 = 1.0\n# dup follows\nbw_theta = ", 1);
        let e = TuningProfile::from_text(&dup).unwrap_err();
        assert!(e.to_string().contains("duplicate"), "{e}");
        let missing = text
            .lines()
            .filter(|l| !l.starts_with("cores"))
            .collect::<Vec<_>>()
            .join("\n");
        let e = TuningProfile::from_text(&missing).unwrap_err();
        assert!(e.to_string().contains("missing"), "{e}");
    }

    #[test]
    fn out_of_range_values_are_rejected() {
        let text = sample().to_text();
        for (needle, replacement) in [
            ("bw1 = 1.3785691443583887e10", "bw1 = -1.0"),
            ("bw1 = 1.3785691443583887e10", "bw1 = NaN"),
            ("bw1 = 1.3785691443583887e10", "bw1 = inf"),
            ("cores = 8", "cores = 0"),
            ("gemm_eff0 = 9e-1", "gemm_eff0 = 1.5"),
            ("mkl_penalty = 0e0", "mkl_penalty = -0.1"),
        ] {
            let mutated = text.replacen(needle, replacement, 1);
            assert_ne!(mutated, text, "needle {needle:?} not found");
            assert!(
                TuningProfile::from_text(&mutated).is_err(),
                "accepted {replacement:?}"
            );
        }
    }

    #[test]
    fn tier_sections_are_validated() {
        let text = sample().to_text();
        let unknown_tier = text.replacen("[tier avx2]", "[tier warp]", 1);
        assert!(TuningProfile::from_text(&unknown_tier).is_err());
        let auto_tier = text.replacen("[tier avx2]", "[tier auto]", 1);
        assert!(TuningProfile::from_text(&auto_tier).is_err());
        let dup_tier = text.replacen("[tier avx2]", "[tier scalar]", 1);
        let e = TuningProfile::from_text(&dup_tier).unwrap_err();
        assert!(e.to_string().contains("duplicate"), "{e}");
        // A profile with no tiers at all is rejected.
        let no_tiers: String = text
            .lines()
            .take_while(|l| !l.starts_with("[tier"))
            .chain(std::iter::once("end"))
            .collect::<Vec<_>>()
            .join("\n");
        let e = TuningProfile::from_text(&no_tiers).unwrap_err();
        assert!(e.to_string().contains("no kernel tiers"), "{e}");
    }

    #[test]
    fn fused_cost_is_optional_and_validated_when_present() {
        // Only the tier that measured a fused term writes the key.
        let p = sample();
        assert_eq!(p.to_text().matches("fused_cost").count(), 1);
        // A pre-fused profile (no `fused_cost` key anywhere) loads,
        // with the term absent — and so does its machine.
        let legacy: String = p
            .to_text()
            .lines()
            .filter(|l| !l.starts_with("fused_cost"))
            .collect::<Vec<_>>()
            .join("\n");
        let q = TuningProfile::from_text(&legacy).expect("legacy profiles still load");
        assert!(q.tiers.iter().all(|t| t.fused_cost.is_none()));
        assert_eq!(q.machine_for(KernelTier::Scalar).fused_cost, None);
        // When present the key obeys the same range rules as the rest.
        let broken = p
            .to_text()
            .replacen("fused_cost = 2.5e-9", "fused_cost = -1.0", 1);
        assert!(TuningProfile::from_text(&broken).is_err());
        let dup = p.to_text().replacen(
            "fused_cost = 2.5e-9",
            "fused_cost = 2.5e-9\nfused_cost = 2.5e-9",
            1,
        );
        let e = TuningProfile::from_text(&dup).unwrap_err();
        assert!(e.to_string().contains("duplicate"), "{e}");
        // And a calibrated term flows through to the priced machine.
        assert_eq!(p.machine_for(KernelTier::Scalar).fused_cost, Some(2.5e-9));
    }

    #[test]
    fn calib_err_is_optional_and_validated_when_present() {
        let p = sample();
        assert_eq!(p.to_text().matches("calib_err").count(), 1);
        // A pre-drift profile (no `calib_err` key) still loads, with
        // the residual absent.
        let legacy: String = p
            .to_text()
            .lines()
            .filter(|l| !l.starts_with("calib_err"))
            .collect::<Vec<_>>()
            .join("\n");
        let q = TuningProfile::from_text(&legacy).expect("legacy profiles still load");
        assert_eq!(q.calib_err, None);
        // When present the key obeys the NonNegative range rule.
        for broken in ["calib_err = -0.1", "calib_err = NaN"] {
            let mutated = p.to_text().replacen("calib_err = 4.2e-2", broken, 1);
            assert!(TuningProfile::from_text(&mutated).is_err(), "{broken}");
        }
        let dup = p.to_text().replacen(
            "calib_err = 4.2e-2",
            "calib_err = 4.2e-2\ncalib_err = 4.2e-2",
            1,
        );
        let e = TuningProfile::from_text(&dup).unwrap_err();
        assert!(e.to_string().contains("duplicate"), "{e}");
    }

    #[test]
    fn machine_for_falls_back_to_scalar_then_first() {
        let p = sample();
        let m = p.machine_for(KernelTier::Avx2);
        assert_eq!(m.hadamard_cost, 0.8e-9);
        // Unmeasured tier: falls back to the scalar entry.
        let m = p.machine_for(KernelTier::Neon);
        assert_eq!(m.hadamard_cost, 1.2345e-9);
        assert_eq!(m.cores, 8);
        assert_eq!(m.reduce_scale, 0.8123);
        // peak unfolds through the assumed efficiency.
        assert!((m.peak_flops_core - 7.8e9 / 0.9).abs() < 1.0);
        // No scalar entry: first recorded tier wins.
        let mut q = p.clone();
        q.tiers.remove(0);
        let m = q.machine_for(KernelTier::Neon);
        assert_eq!(m.hadamard_cost, 0.8e-9);
    }
}
