//! Calibration microbenchmarks.
//!
//! Each function measures one machine-model coefficient on the live
//! host, using the shared `mttkrp-bench` timer
//! ([`mttkrp_bench::sample_min`]: one warm-up, then best-of-N — the
//! least-noise estimator for throughput measurements) over the same
//! kernels the real plans execute: `gemm_with` register tiles, the
//! dispatched Hadamard row kernel, `par_stream_scale`, and
//! `reduce::sum_into`. Fixture sizes come in two flavors — `quick`
//! keeps every measurement in the low-millisecond range for tests and
//! CI, the default sizes are large enough to stream past the last-level
//! cache on ordinary hosts.

use mttkrp_bench::sample_min;
use mttkrp_blas::{gemm_with, stream::measure_scale_bandwidth, KernelSet, Layout, MatMut, MatRef};
use mttkrp_parallel::{reduce, ThreadPool};
use mttkrp_tensor::DenseTensor;

/// Measurement repetitions per microbenchmark.
const TRIALS: usize = 5;

/// Rank-like row width used by the Hadamard benchmark (the paper's
/// C = 25).
const HADAMARD_COLS: usize = 25;

/// Measured STREAM Scale bandwidth (bytes/s) at `threads` threads.
pub fn stream_bandwidth(pool: &ThreadPool, quick: bool) -> f64 {
    let elems = if quick { 1 << 16 } else { 1 << 21 };
    measure_scale_bandwidth(pool, elems, TRIALS)
}

/// Measured sequential GEMM rate (flops/s) of `ks`'s register-tiled
/// microkernel at a square, cache-friendly shape.
pub fn gemm_flops(ks: &KernelSet, quick: bool) -> f64 {
    let n = if quick { 96 } else { 384 };
    let a = vec![1.0f64; n * n];
    let b = vec![0.5f64; n * n];
    let mut c = vec![0.0f64; n * n];
    let av = MatRef::from_slice(&a, n, n, Layout::ColMajor);
    let bv = MatRef::from_slice(&b, n, n, Layout::ColMajor);
    let dt = sample_min(TRIALS, || {
        gemm_with(
            ks,
            1.0,
            av,
            bv,
            0.0,
            MatMut::from_slice(&mut c, n, n, Layout::ColMajor),
        );
    });
    std::hint::black_box(&c);
    2.0 * (n as f64).powi(3) / dt
}

/// Measured per-element cost (seconds) of one dispatched Hadamard row
/// pass — the coefficient the KRP predictor scales by rows × C ×
/// passes.
pub fn hadamard_cost(ks: &KernelSet, quick: bool) -> f64 {
    let rows = if quick { 1 << 11 } else { 1 << 15 };
    let c = HADAMARD_COLS;
    let src: Vec<f64> = (0..rows * c).map(|i| 1.0 + (i % 7) as f64).collect();
    let scale = vec![0.5f64; c];
    let mut dst = vec![0.0f64; rows * c];
    let dt = sample_min(TRIALS, || {
        for (out, row) in dst.chunks_exact_mut(c).zip(src.chunks_exact(c)) {
            (ks.hadamard)(&scale, row, out);
        }
    });
    std::hint::black_box(&dst);
    dt / (rows * c) as f64
}

/// Measured per-entry-per-column cost (seconds) of the matrix-free
/// fused MTTKRP pass at a single thread — the coefficient
/// `Machine::fused_cost` that the fused predictor scales by
/// `entries × C / T`. Timed on a real fused execution (an internal
/// mode of a cubic 3-way tensor, so both KRP row streams are
/// exercised); the pass's inner accumulate is scalar code shared by
/// every dispatch tier, so one measurement serves all tier sections.
pub fn fused_cost(quick: bool) -> f64 {
    let side = if quick { 24 } else { 64 };
    let c = HADAMARD_COLS;
    let dims = [side, side, side];
    let mut k = 1u64;
    let x = DenseTensor::from_fn(&dims, || {
        k = k.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        ((k >> 40) as f64) * 2e-8 - 0.5
    });
    let factors: Vec<Vec<f64>> = dims
        .iter()
        .map(|&d| (0..d * c).map(|i| 1.0 + (i % 5) as f64 * 0.25).collect())
        .collect();
    let refs: Vec<MatRef<f64>> = factors
        .iter()
        .zip(&dims)
        .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
        .collect();
    let pool = ThreadPool::new(1);
    let mut out = vec![0.0f64; side * c];
    // Steady state: the plan (and its per-thread row-stream workspace)
    // is built once, exactly as CP-ALS holds it across sweeps.
    let mut plan = mttkrp_core::MttkrpPlan::new(&pool, &dims, c, 1, mttkrp_core::AlgoChoice::Fused);
    let dt = sample_min(TRIALS, || {
        plan.execute(&pool, &x, &refs, &mut out);
    });
    std::hint::black_box(&out);
    dt / (x.len() * c) as f64
}

/// Measured throughput of the parallel element-range reduction
/// merging `parts` private buffers on `pool`, as a fraction of
/// `expected_bw` (the fitted `BW(T)` of the same team). This is the
/// machine model's `reduce_scale`: 1 means the reduction streams at
/// full bandwidth, lower values capture barrier and scheduling
/// overhead the roofline alone misses.
pub fn reduce_scale(pool: &ThreadPool, parts: usize, expected_bw: f64, quick: bool) -> f64 {
    if parts <= 1 || expected_bw <= 0.0 {
        return 1.0;
    }
    let elems = if quick { 1 << 13 } else { 1 << 17 };
    let bufs: Vec<Vec<f64>> = (0..parts).map(|k| vec![k as f64 + 0.5; elems]).collect();
    let views: Vec<&[f64]> = bufs.iter().map(|b| b.as_slice()).collect();
    let mut out = vec![0.0f64; elems];
    let dt = sample_min(TRIALS, || {
        out.fill(0.0);
        reduce::sum_into(pool, &mut out, &views);
    });
    std::hint::black_box(&out);
    // The model charges (parts + 1) · 8 bytes per output element: each
    // element is read from every private buffer and written once (the
    // `fill` is charged as the write's RFO half).
    let bytes = (elems * 8 * (parts + 1)) as f64;
    ((bytes / dt) / expected_bw).clamp(0.05, 2.0)
}

/// Fit the bandwidth-saturation parameter θ of
/// `BW(T) = bw1·T/(1+(T−1)/θ)` from `(threads, bandwidth)`
/// measurements. `bw1` is the single-thread point; each multi-thread
/// point solves for its implied θ and the median is returned (robust
/// to one noisy ladder rung). Falls back to the paper machine's θ = 12
/// when no multi-thread point constrains the fit (single-core hosts).
pub fn fit_bw_theta(bw1: f64, points: &[(usize, f64)]) -> f64 {
    let mut thetas: Vec<f64> = points
        .iter()
        .filter(|&&(t, bw)| t > 1 && bw > 0.0)
        .filter_map(|&(t, bw)| {
            let ratio = bw1 * t as f64 / bw; // = 1 + (t−1)/θ
            (ratio > 1.0 + 1e-9).then(|| (t as f64 - 1.0) / (ratio - 1.0))
        })
        .collect();
    if thetas.is_empty() {
        return 12.0;
    }
    thetas.sort_by(|a, b| a.partial_cmp(b).unwrap());
    thetas[thetas.len() / 2].clamp(0.5, 256.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mttkrp_blas::kernels;

    #[test]
    fn microbenchmarks_return_positive_finite_rates() {
        let pool = ThreadPool::new(1);
        let ks = *kernels();
        let bw = stream_bandwidth(&pool, true);
        assert!(bw.is_finite() && bw > 0.0);
        let gf = gemm_flops(&ks, true);
        assert!(gf.is_finite() && gf > 0.0);
        let h = hadamard_cost(&ks, true);
        assert!(h.is_finite() && h > 0.0 && h < 1e-3);
        let f = fused_cost(true);
        assert!(f.is_finite() && f > 0.0 && f < 1e-3);
    }

    #[test]
    fn reduce_scale_is_clamped_and_degenerate_safe() {
        let pool = ThreadPool::new(2);
        let s = reduce_scale(&pool, 2, 1.0e10, true);
        assert!((0.05..=2.0).contains(&s));
        assert_eq!(reduce_scale(&pool, 1, 1.0e10, true), 1.0);
        assert_eq!(reduce_scale(&pool, 4, 0.0, true), 1.0);
    }

    #[test]
    fn theta_fit_recovers_the_generating_curve() {
        let bw1 = 6.0e9;
        let theta = 8.0;
        let points: Vec<(usize, f64)> = (1..=8)
            .map(|t| {
                let tf = t as f64;
                (t, bw1 * tf / (1.0 + (tf - 1.0) / theta))
            })
            .collect();
        let fit = fit_bw_theta(bw1, &points);
        assert!((fit - theta).abs() < 1e-6, "fit {fit}");
    }

    #[test]
    fn theta_fit_falls_back_without_multithread_points() {
        assert_eq!(fit_bw_theta(5.0e9, &[(1, 5.0e9)]), 12.0);
        // Superlinear noise (bw > bw1·t) yields no constraint either.
        assert_eq!(fit_bw_theta(5.0e9, &[(1, 5.0e9), (2, 1.2e10)]), 12.0);
    }
}
