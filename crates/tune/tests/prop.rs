//! Seeded property tests for the tuning-profile codec (the in-tree
//! stand-in for proptest, like the other crates' `tests/prop.rs`).

use mttkrp_blas::KernelTier;
use mttkrp_rng::Rng64;
use mttkrp_tune::{TierTuning, TuningProfile};

const TIERS: [KernelTier; 4] = [
    KernelTier::Scalar,
    KernelTier::Avx2,
    KernelTier::Avx512,
    KernelTier::Neon,
];

/// Log-uniform positive draw in `[lo, hi]`.
fn pos_in(rng: &mut Rng64, lo: f64, hi: f64) -> f64 {
    lo * (hi / lo).powf(rng.next_f64())
}

/// A random but valid profile: positive finite coefficients across
/// many orders of magnitude, 1–4 distinct tiers in random order.
fn random_profile(rng: &mut Rng64) -> TuningProfile {
    let ntiers = 1 + (rng.next_u64() as usize) % TIERS.len();
    let mut order: Vec<KernelTier> = TIERS.to_vec();
    // Fisher–Yates with the seeded generator.
    for i in (1..order.len()).rev() {
        order.swap(i, (rng.next_u64() as usize) % (i + 1));
    }
    let tiers = order
        .into_iter()
        .take(ntiers)
        .map(|tier| TierTuning {
            tier,
            gemm_flops: pos_in(rng, 1e8, 1e12),
            gemm_eff0: 0.05 + 0.95 * rng.next_f64(),
            hadamard_cost: pos_in(rng, 1e-11, 1e-7),
            // The key is optional: exercise both shapes.
            fused_cost: (rng.next_f64() < 0.5).then(|| pos_in(rng, 1e-11, 1e-7)),
        })
        .collect();
    TuningProfile {
        cores: 1 + (rng.next_u64() as usize) % 256,
        threads: 1 + (rng.next_u64() as usize) % 256,
        bw1: pos_in(rng, 1e8, 1e12),
        bw_theta: pos_in(rng, 0.5, 256.0),
        reduce_scale: pos_in(rng, 0.05, 2.0),
        mkl_penalty: if rng.next_f64() < 0.5 {
            0.0
        } else {
            rng.next_f64()
        },
        // Optional key: exercise both shapes.
        calib_err: (rng.next_f64() < 0.5).then(|| pos_in(rng, 1e-4, 1.0)),
        tiers,
    }
}

#[test]
fn random_profiles_round_trip_bytewise() {
    let mut rng = Rng64::seed_from_u64(0xC0FFEE);
    for case in 0..200 {
        let p = random_profile(&mut rng);
        let text = p.to_text();
        let q = TuningProfile::from_text(&text)
            .unwrap_or_else(|e| panic!("case {case}: self-emitted text rejected: {e}\n{text}"));
        assert_eq!(p, q, "case {case}: values drifted");
        assert_eq!(text, q.to_text(), "case {case}: bytes drifted");
    }
}

#[test]
fn random_single_byte_corruption_never_panics() {
    // Flip one byte at a time through an entire profile; the reader
    // must either reject cleanly or (for benign flips, e.g. inside a
    // digit) parse successfully — never panic.
    let mut rng = Rng64::seed_from_u64(42);
    let p = random_profile(&mut rng);
    let text = p.to_text();
    let bytes = text.as_bytes();
    for i in 0..bytes.len() {
        let mut mutated = bytes.to_vec();
        mutated[i] = mutated[i].wrapping_add(1 + (rng.next_u64() % 64) as u8);
        if let Ok(s) = std::str::from_utf8(&mutated) {
            let _ = TuningProfile::from_text(s);
        }
    }
}

#[test]
fn every_machine_from_a_valid_profile_is_usable() {
    let mut rng = Rng64::seed_from_u64(7);
    for _ in 0..50 {
        let p = random_profile(&mut rng);
        for tier in TIERS {
            let m = p.machine_for(tier);
            assert!(m.peak_flops_core.is_finite() && m.peak_flops_core > 0.0);
            assert!(m.bw(1) > 0.0 && m.bw(16).is_finite());
            assert!(m.gemm_time(64, 25, 64, 4, false) > 0.0);
            assert!(m.reduce_time(1000, 4, 4) >= 0.0);
        }
    }
}
