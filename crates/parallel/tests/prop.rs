//! Randomized-property tests of the parallel runtime's partitioning and
//! panic behavior: `block_range` must tile `0..n` exactly for
//! adversarial `(n, nblocks)` pairs — including `n < nblocks` and
//! `n = 0` — and a panicking worker must reach the caller without
//! deadlocking or poisoning the pool.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use mttkrp_parallel::{block_len, block_range, Blocks, ThreadPool};
use mttkrp_rng::Rng64;

#[test]
fn block_range_tiles_exactly_for_adversarial_pairs() {
    let mut rng = Rng64::seed_from_u64(0x9A47_0001);
    // Deliberately adversarial corners plus a random sweep.
    let mut cases: Vec<(usize, usize)> = vec![
        (0, 1),
        (0, 17),
        (1, 1),
        (1, 64),
        (2, 1000), // n ≪ nblocks
        (5, 7),
        (7, 5),
        (1000, 999),
        (1000, 1000),
        (1000, 1001), // one empty block
        (usize::from(u16::MAX), 3),
    ];
    for _ in 0..500 {
        let n = rng.usize_below(10_000);
        let nblocks = rng.usize_in(1, 2_000);
        cases.push((n, nblocks));
    }

    for (n, nblocks) in cases {
        let mut covered = 0usize;
        let mut max_len = 0usize;
        let mut min_len = usize::MAX;
        for b in 0..nblocks {
            let r = block_range(n, nblocks, b);
            assert_eq!(
                r.start, covered,
                "gap/overlap at n={n} nblocks={nblocks} b={b}"
            );
            assert_eq!(
                r.len(),
                block_len(n, nblocks, b),
                "len mismatch n={n} nblocks={nblocks} b={b}"
            );
            max_len = max_len.max(r.len());
            min_len = min_len.min(r.len());
            covered = r.end;
        }
        assert_eq!(
            covered, n,
            "blocks do not cover 0..{n} for nblocks={nblocks}"
        );
        assert!(
            max_len - min_len <= 1,
            "unbalanced: n={n} nblocks={nblocks}"
        );
        // The iterator view must agree with the direct indexing.
        let via_iter: Vec<_> = Blocks::new(n, nblocks).collect();
        assert_eq!(via_iter.len(), nblocks);
        assert_eq!(via_iter.last().unwrap().end, n);
    }
}

#[test]
fn worker_panic_propagates_without_deadlocking_the_pool() {
    let pool = ThreadPool::new(6);
    for round in 0..20 {
        let panicker = round % 6;
        let before = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(|ctx| {
                before.fetch_add(1, Ordering::Relaxed);
                if ctx.thread_id == panicker {
                    panic!("deliberate panic from thread {}", ctx.thread_id);
                }
            });
        }));
        // The panic must reach the caller (not hang, not be swallowed)…
        let payload = result.expect_err("worker panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("deliberate panic"),
            "unexpected payload: {msg:?}"
        );
        // …after every team member entered the region (quiesce first).
        assert_eq!(before.load(Ordering::Relaxed), 6);

        // And the pool must remain fully usable for the next region.
        let after = AtomicUsize::new(0);
        pool.run(|_| {
            after.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(after.load(Ordering::Relaxed), 6);
    }
}

#[test]
fn multiple_simultaneous_worker_panics_still_return() {
    let pool = ThreadPool::new(8);
    for _ in 0..10 {
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(|ctx| {
                if ctx.thread_id % 2 == 1 {
                    panic!("thread {}", ctx.thread_id);
                }
            });
        }));
        assert!(result.is_err());
    }
    let count = AtomicUsize::new(0);
    pool.run(|_| {
        count.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(count.load(Ordering::Relaxed), 8);
}
