//! Reusable per-thread workspace arenas.
//!
//! The paper's parallel MTTKRP kernels give every thread private
//! buffers (KRP row blocks, partial outputs) that the seed
//! implementation re-allocated on every call. A [`Workspace`] owns one
//! slot of caller-defined state per pool thread and hands thread `t`
//! exclusive `&mut` access to slot `t` inside a region
//! ([`ThreadPool::run_with_workspace`]), so a kernel that keeps its
//! workspace alive across calls — e.g. a cached `MttkrpPlan` driving
//! every CP-ALS sweep — performs zero per-call heap allocation in its
//! per-thread state.
//!
//! Outside a region the workspace is plain owned data: slots can be
//! inspected ([`Workspace::slots`]), mutated, or combined (the final
//! MTTKRP reduction reads every slot's private output).

use crate::pool::{ThreadPool, WorkerCtx};

/// One slot of per-thread state per pool thread, reusable across
/// parallel regions.
#[derive(Debug)]
pub struct Workspace<S> {
    slots: Vec<S>,
}

impl<S> Workspace<S> {
    /// Build a workspace with `threads` slots, `init(t)` producing the
    /// slot for thread `t`.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn new(threads: usize, init: impl FnMut(usize) -> S) -> Self {
        assert!(threads > 0, "workspace needs at least one slot");
        Workspace {
            slots: (0..threads).map(init).collect(),
        }
    }

    /// Number of slots (must match the pool size at region time).
    #[inline]
    pub fn threads(&self) -> usize {
        self.slots.len()
    }

    /// Shared view of every slot (e.g. for the post-region reduction).
    #[inline]
    pub fn slots(&self) -> &[S] {
        &self.slots
    }

    /// Mutable view of every slot.
    #[inline]
    pub fn slots_mut(&mut self) -> &mut [S] {
        &mut self.slots
    }

    /// Slot of thread `t`.
    #[inline]
    pub fn slot(&self, t: usize) -> &S {
        &self.slots[t]
    }

    /// Mutable slot of thread `t`.
    #[inline]
    pub fn slot_mut(&mut self, t: usize) -> &mut S {
        &mut self.slots[t]
    }
}

impl ThreadPool {
    /// Run a region where thread `t` receives `&mut` access to
    /// workspace slot `t` — [`ThreadPool::run_with_private`] without the
    /// per-call allocation, because the slots outlive the region.
    ///
    /// # Panics
    /// Panics if the workspace slot count differs from the pool size.
    pub fn run_with_workspace<S, F>(&self, ws: &mut Workspace<S>, f: F)
    where
        S: Send,
        F: Fn(WorkerCtx, &mut S) + Sync,
    {
        assert_eq!(
            ws.threads(),
            self.num_threads(),
            "workspace sized for a different team"
        );
        // Provenance-preserving shared pointer: the raw pointer itself
        // (not a usize round trip) crosses into the region closure. The
        // accessor method makes the closure capture the Sync wrapper,
        // not the raw-pointer field (2021 disjoint capture).
        struct SlotsPtr<S>(*mut S);
        impl<S> SlotsPtr<S> {
            fn get(&self) -> *mut S {
                self.0
            }
        }
        // Safety: only disjoint `add(thread_id)` projections are ever
        // dereferenced, one per thread.
        unsafe impl<S: Send> Sync for SlotsPtr<S> {}
        let base = SlotsPtr(ws.slots.as_mut_ptr());
        self.run(|ctx| {
            // Safety: each thread touches only element `thread_id`, and
            // `ws` is exclusively borrowed for the whole region.
            let slot = unsafe { &mut *base.get().add(ctx.thread_id) };
            f(ctx, slot);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_per_thread_and_persist_across_regions() {
        let pool = ThreadPool::new(4);
        let mut ws: Workspace<Vec<usize>> = Workspace::new(4, |t| vec![t]);
        for round in 0..3 {
            pool.run_with_workspace(&mut ws, |ctx, slot| {
                slot.push(100 * (round + 1) + ctx.thread_id);
            });
        }
        for (t, slot) in ws.slots().iter().enumerate() {
            assert_eq!(slot, &vec![t, 100 + t, 200 + t, 300 + t]);
        }
    }

    #[test]
    fn buffers_keep_their_allocation() {
        let pool = ThreadPool::new(3);
        let mut ws: Workspace<Vec<f64>> = Workspace::new(3, |_| vec![0.0; 1024]);
        let ptrs: Vec<*const f64> = ws.slots().iter().map(|s| s.as_ptr()).collect();
        for _ in 0..5 {
            pool.run_with_workspace(&mut ws, |ctx, slot| {
                for v in slot.iter_mut() {
                    *v += ctx.thread_id as f64;
                }
            });
        }
        let after: Vec<*const f64> = ws.slots().iter().map(|s| s.as_ptr()).collect();
        assert_eq!(
            ptrs, after,
            "workspace buffers must be stable across regions"
        );
        assert!(ws.slot(2).iter().all(|&v| v == 10.0));
    }

    #[test]
    fn single_thread_workspace_runs_inline() {
        let pool = ThreadPool::new(1);
        let mut ws: Workspace<u64> = Workspace::new(1, |_| 0);
        pool.run_with_workspace(&mut ws, |_, slot| *slot += 7);
        assert_eq!(*ws.slot(0), 7);
    }

    #[test]
    #[should_panic]
    fn size_mismatch_panics() {
        let pool = ThreadPool::new(2);
        let mut ws: Workspace<u8> = Workspace::new(3, |_| 0);
        pool.run_with_workspace(&mut ws, |_, _| {});
    }
}
