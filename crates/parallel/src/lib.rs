//! OpenMP-like shared-memory parallel runtime for the MTTKRP reproduction.
//!
//! The paper parallelizes its kernels with OpenMP `parallel for` regions
//! using *static* scheduling: each of `T` threads receives one contiguous
//! block of the iteration space, plus thread-private output buffers that
//! are combined by a final parallel reduction. This crate provides exactly
//! that model — but since PR 10 the *execution substrate* is the
//! work-stealing scheduler in `mttkrp-sched`, not a dedicated set of OS
//! threads per pool:
//!
//! * [`ThreadPool`] — a team size plus a handle to a shared
//!   [`Scheduler`](mttkrp_sched::Scheduler). A *parallel region*
//!   ([`ThreadPool::run`]) invokes one closure per team *slot* with its
//!   [`WorkerCtx`] (slot id and team size), blocking the caller until
//!   every slot finishes. Slots are stealable units: idle workers — from
//!   any job sharing the scheduler — claim them dynamically, while the
//!   calling thread claims slots itself so progress never depends on
//!   idle workers existing. Slot *identity* is preserved, so partition
//!   tables and workspace arenas indexed by `thread_id` produce results
//!   bitwise identical to the old static one-thread-per-slot pool. A
//!   pool of size 1 runs entirely inline with no synchronization.
//! * [`ThreadPool::parallel_for_blocks`] — static contiguous partition of
//!   an index range, one block per slot (OpenMP `schedule(static)`).
//! * [`ThreadPool::parallel_for_chunks`] — block-cyclic partition for
//!   load-balancing loops whose per-iteration cost varies.
//! * [`reduce::sum_into`] — the parallel reduction used to combine
//!   thread-private MTTKRP outputs: threads each own a contiguous slice
//!   range of the output and sum the corresponding ranges of all private
//!   buffers.
//! * [`Workspace`] — a reusable arena of per-thread state for kernels
//!   that run repeatedly (the plan-based MTTKRP executors):
//!   [`ThreadPool::run_with_workspace`] hands thread `t` exclusive
//!   `&mut` access to slot `t`, and the slots persist across regions so
//!   steady-state execution performs no per-call allocation.
//!
//! Panics raised inside a region are captured and re-thrown on the caller
//! after the team quiesces, so a poisoned pool is never left behind.
//!
//! # Example
//!
//! ```
//! use mttkrp_parallel::ThreadPool;
//!
//! let pool = ThreadPool::new(4);
//! let mut out = vec![0u64; 1000];
//! pool.parallel_for_blocks(out.len(), &mut out, |ctx, range, chunk| {
//!     for (i, slot) in range.clone().zip(chunk.iter_mut()) {
//!         *slot = (i as u64) * (ctx.num_threads as u64);
//!     }
//! });
//! assert_eq!(out[10], 40);
//! ```

pub mod partition;
pub mod pool;
pub mod reduce;
pub mod workspace;

pub use partition::{block_len, block_range, Blocks};
pub use pool::{ThreadPool, WorkerCtx};
pub use workspace::Workspace;
