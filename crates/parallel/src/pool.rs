//! A persistent thread pool with OpenMP-style parallel regions.
//!
//! The pool owns `T - 1` worker threads; the thread that enters a region
//! participates as thread 0. Regions are *blocking*: [`ThreadPool::run`]
//! returns only after every member of the team has finished, which is what
//! makes it sound to hand the workers a closure that borrows the caller's
//! stack.

use std::any::Any;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::thread::JoinHandle;

use crate::partition::block_range;

/// Identity of one thread inside a parallel region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerCtx {
    /// Thread id within the team, `0 <= thread_id < num_threads`.
    pub thread_id: usize,
    /// Team size for this region (the pool size).
    pub num_threads: usize,
}

type PanicPayload = Box<dyn Any + Send + 'static>;

/// Type-erased pointer to the region closure living on the caller's stack.
///
/// Safety: the caller blocks until every worker acknowledges completion,
/// so the pointee outlives every dereference.
struct JobMsg {
    data: *const (),
    call: unsafe fn(*const (), WorkerCtx),
    ctx: WorkerCtx,
    done: SyncSender<Result<(), PanicPayload>>,
}

// The raw pointer refers to a `Sync` closure that outlives the region.
unsafe impl Send for JobMsg {}

enum Msg {
    Run(JobMsg),
    Exit,
}

/// A persistent team of threads executing OpenMP-like parallel regions.
///
/// Creating a pool of size `1` spawns no threads; every region then runs
/// inline on the caller, so sequential benchmarks measure zero
/// synchronization overhead.
pub struct ThreadPool {
    size: usize,
    senders: Vec<Sender<Msg>>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("size", &self.size)
            .finish()
    }
}

impl ThreadPool {
    /// Create a pool with `size` threads (including the caller).
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "thread pool must have at least one thread");
        let mut senders = Vec::with_capacity(size.saturating_sub(1));
        let mut handles = Vec::with_capacity(size.saturating_sub(1));
        for i in 1..size {
            let (tx, rx): (Sender<Msg>, Receiver<Msg>) = channel();
            let handle = std::thread::Builder::new()
                .name(format!("mttkrp-worker-{i}"))
                .spawn(move || worker_loop(rx))
                .expect("failed to spawn pool worker");
            senders.push(tx);
            handles.push(handle);
        }
        ThreadPool {
            size,
            senders,
            handles,
        }
    }

    /// Pool sized to the host's available parallelism.
    pub fn host() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::new(n)
    }

    /// Number of threads in the team (including the caller).
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.size
    }

    /// Execute `f(ctx)` once per team member, blocking until all finish.
    ///
    /// The calling thread runs as `thread_id == 0`. If any invocation
    /// panics, the panic is re-raised here after the team quiesces (the
    /// first panic observed wins; thread 0's panic takes precedence).
    pub fn run<F>(&self, f: F)
    where
        F: Fn(WorkerCtx) + Sync,
    {
        if self.size == 1 {
            f(WorkerCtx {
                thread_id: 0,
                num_threads: 1,
            });
            return;
        }
        // Completion channel buffered for every worker, so completion
        // sends never block even while the caller is still running its
        // own share of the region.
        let (done_tx, done_rx) = sync_channel::<Result<(), PanicPayload>>(self.size - 1);
        let data = &f as *const F as *const ();
        unsafe fn call_shim<F: Fn(WorkerCtx) + Sync>(data: *const (), ctx: WorkerCtx) {
            // Safety: `data` points at the caller's `F`, alive for the region.
            unsafe { (*(data as *const F))(ctx) }
        }
        for (i, tx) in self.senders.iter().enumerate() {
            let msg = JobMsg {
                data,
                call: call_shim::<F>,
                ctx: WorkerCtx {
                    thread_id: i + 1,
                    num_threads: self.size,
                },
                done: done_tx.clone(),
            };
            tx.send(Msg::Run(msg))
                .expect("pool worker exited unexpectedly");
        }
        drop(done_tx);
        let mine = catch_unwind(AssertUnwindSafe(|| {
            f(WorkerCtx {
                thread_id: 0,
                num_threads: self.size,
            })
        }));
        // Quiesce before unwinding: the closure must outlive every worker.
        let mut worker_panic: Option<PanicPayload> = None;
        for _ in 0..self.size - 1 {
            match done_rx.recv().expect("pool worker exited unexpectedly") {
                Ok(()) => {}
                Err(p) => {
                    if worker_panic.is_none() {
                        worker_panic = Some(p);
                    }
                }
            }
        }
        if let Err(p) = mine {
            resume_unwind(p);
        }
        if let Some(p) = worker_panic {
            resume_unwind(p);
        }
    }

    /// Static contiguous partition of `0..n`: thread `t` receives the
    /// `t`-th balanced block as a half-open range.
    pub fn parallel_for_range<F>(&self, n: usize, f: F)
    where
        F: Fn(WorkerCtx, Range<usize>) + Sync,
    {
        self.run(|ctx| {
            let r = block_range(n, ctx.num_threads, ctx.thread_id);
            if !r.is_empty() {
                f(ctx, r);
            }
        });
    }

    /// Static contiguous partition of `data` (length `n`): thread `t`
    /// receives its index range plus the matching disjoint sub-slice.
    pub fn parallel_for_blocks<T, F>(&self, n: usize, data: &mut [T], f: F)
    where
        T: Send,
        F: Fn(WorkerCtx, Range<usize>, &mut [T]) + Sync,
    {
        assert_eq!(data.len(), n, "data length must equal iteration count");
        let base = data.as_mut_ptr() as usize;
        self.run(|ctx| {
            let r = block_range(n, ctx.num_threads, ctx.thread_id);
            if r.is_empty() {
                return;
            }
            // Safety: blocks are pairwise disjoint and within `data`,
            // which is mutably borrowed for the whole region.
            let chunk =
                unsafe { std::slice::from_raw_parts_mut((base as *mut T).add(r.start), r.len()) };
            f(ctx, r, chunk);
        });
    }

    /// Block-cyclic partition: thread `t` processes chunks
    /// `t, t + T, t + 2T, ...` of `chunk` consecutive indices each.
    ///
    /// Used where per-chunk cost varies; the paper's internal-mode 1-step
    /// loop over `IRn` blocks uses this with `chunk == 1`.
    pub fn parallel_for_chunks<F>(&self, n: usize, chunk: usize, f: F)
    where
        F: Fn(WorkerCtx, Range<usize>) + Sync,
    {
        assert!(chunk > 0, "chunk size must be positive");
        self.run(|ctx| {
            let mut start = ctx.thread_id * chunk;
            while start < n {
                let end = usize::min(start + chunk, n);
                f(ctx, start..end);
                start += ctx.num_threads * chunk;
            }
        });
    }

    /// Run a region with one private value per thread, returning the
    /// private values afterwards (e.g. thread-local MTTKRP accumulators).
    ///
    /// `init(t)` is called on the caller for `t in 0..T` before the region
    /// starts; thread `t` then receives `&mut` access to its value.
    pub fn run_with_private<B, I, F>(&self, init: I, f: F) -> Vec<B>
    where
        B: Send,
        I: FnMut(usize) -> B,
        F: Fn(WorkerCtx, &mut B) + Sync,
    {
        let mut privs: Vec<B> = (0..self.size).map(init).collect();
        let base = privs.as_mut_ptr() as usize;
        self.run(|ctx| {
            // Safety: each thread touches only element `thread_id`, and
            // `privs` outlives the region.
            let b = unsafe { &mut *(base as *mut B).add(ctx.thread_id) };
            f(ctx, b);
        });
        privs
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(Msg::Exit);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(rx: Receiver<Msg>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Exit => break,
            Msg::Run(job) => {
                let res = catch_unwind(AssertUnwindSafe(|| unsafe {
                    (job.call)(job.data, job.ctx)
                }));
                // The caller is guaranteed to be draining the channel.
                let _ = job.done.send(res.map_err(|p| p as PanicPayload));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_thread_runs_once() {
        for t in [1, 2, 3, 7] {
            let pool = ThreadPool::new(t);
            let count = AtomicUsize::new(0);
            let mask = AtomicUsize::new(0);
            pool.run(|ctx| {
                assert_eq!(ctx.num_threads, t);
                count.fetch_add(1, Ordering::Relaxed);
                mask.fetch_or(1 << ctx.thread_id, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), t);
            assert_eq!(mask.load(Ordering::Relaxed), (1usize << t) - 1);
        }
    }

    #[test]
    fn pool_is_reusable_across_many_regions() {
        let pool = ThreadPool::new(4);
        let total = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.run(|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 400);
    }

    #[test]
    fn blocks_cover_all_indices_exactly_once() {
        let pool = ThreadPool::new(5);
        let mut hits = vec![0u8; 1003];
        pool.parallel_for_blocks(hits.len(), &mut hits, |_, range, chunk| {
            assert_eq!(range.len(), chunk.len());
            for slot in chunk {
                *slot += 1;
            }
        });
        assert!(hits.iter().all(|&h| h == 1));
    }

    #[test]
    fn chunks_cover_all_indices_exactly_once() {
        let pool = ThreadPool::new(3);
        let hits: Vec<AtomicUsize> = (0..250).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for_chunks(hits.len(), 7, |_, range| {
            assert!(range.len() <= 7);
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn private_buffers_are_per_thread() {
        let pool = ThreadPool::new(4);
        let privs = pool.run_with_private(
            |t| vec![t],
            |ctx, buf| {
                buf.push(ctx.thread_id + 100);
            },
        );
        for (t, buf) in privs.iter().enumerate() {
            assert_eq!(buf, &vec![t, t + 100]);
        }
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = ThreadPool::new(4);
        let res = catch_unwind(AssertUnwindSafe(|| {
            pool.run(|ctx| {
                if ctx.thread_id == 2 {
                    panic!("boom from worker");
                }
            });
        }));
        assert!(res.is_err());
        // Pool still usable afterwards.
        let count = AtomicUsize::new(0);
        pool.run(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn caller_panic_propagates_after_quiesce() {
        let pool = ThreadPool::new(2);
        let res = catch_unwind(AssertUnwindSafe(|| {
            pool.run(|ctx| {
                if ctx.thread_id == 0 {
                    panic!("boom from caller");
                }
            });
        }));
        assert!(res.is_err());
        pool.run(|_| {});
    }

    #[test]
    fn size_one_runs_inline() {
        let pool = ThreadPool::new(1);
        let tid = std::thread::current().id();
        pool.run(|ctx| {
            assert_eq!(ctx.thread_id, 0);
            assert_eq!(std::thread::current().id(), tid);
        });
    }

    #[test]
    fn empty_range_threads_skip_work() {
        let pool = ThreadPool::new(8);
        let count = AtomicUsize::new(0);
        pool.parallel_for_range(3, |_, range| {
            count.fetch_add(range.len(), Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 3);
    }
}
