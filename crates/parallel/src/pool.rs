//! OpenMP-style parallel regions on the shared work-stealing scheduler.
//!
//! A [`ThreadPool`] is no longer a set of dedicated OS threads: it is a
//! *team size* plus a handle to a [`Scheduler`] (by default the
//! process-wide global one). Entering a region submits `T − 1`
//! stealable slot tickets and the calling thread claims slots itself,
//! so the region completes even when every scheduler worker is busy
//! with someone else's job — and conversely, idle workers from *other*
//! jobs can steal this region's slots. Regions are still *blocking*:
//! [`ThreadPool::run`] returns only after every slot has finished,
//! which is what makes it sound to hand the team a closure that borrows
//! the caller's stack.
//!
//! Slot identity is preserved (`WorkerCtx::thread_id` is the region
//! slot id, `0..num_threads`), so the static partition tables computed
//! by plans and the per-slot workspace arenas behave exactly as they
//! did under the old one-OS-thread-per-slot pool: results are bitwise
//! identical, only the *placement* of slots onto OS threads is dynamic.
//!
//! A pool of size `1` never touches the scheduler; every region runs
//! inline on the caller with zero allocation, preserving the
//! steady-state allocation-freedom the counting-allocator tests pin.

use std::ops::Range;

use mttkrp_sched::{CancelToken, Scheduler};

use crate::partition::block_range;

/// Identity of one thread inside a parallel region.
///
/// `thread_id` is the *slot* id within the team. Under work-stealing
/// the slot may execute on any OS thread, but the id still indexes
/// partition schedules and workspace slots exactly as before.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerCtx {
    /// Slot id within the team, `0 <= thread_id < num_threads`.
    pub thread_id: usize,
    /// Team size for this region (the pool size).
    pub num_threads: usize,
}

/// A team of `T` region slots executing OpenMP-like parallel regions on
/// a work-stealing [`Scheduler`].
///
/// Creating a pool of size `1` runs every region inline on the caller,
/// so sequential benchmarks measure zero synchronization overhead.
#[derive(Clone)]
pub struct ThreadPool {
    size: usize,
    sched: Scheduler,
    cancel: CancelToken,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("size", &self.size)
            .field("workers", &self.sched.workers())
            .finish()
    }
}

impl ThreadPool {
    /// Create a pool with `size` team slots on the global scheduler.
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn new(size: usize) -> Self {
        Self::with_scheduler(size, Scheduler::global().clone())
    }

    /// Create a pool with `size` team slots on an explicit scheduler
    /// (isolated instances in tests, the daemon's shared one in prod).
    pub fn with_scheduler(size: usize, sched: Scheduler) -> Self {
        assert!(size > 0, "thread pool must have at least one thread");
        ThreadPool {
            size,
            sched,
            cancel: CancelToken::new(),
        }
    }

    /// Pool sized to the host's available parallelism.
    pub fn host() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::new(n)
    }

    /// Wire a cooperative cancellation token into this pool's regions
    /// (the daemon hands each job's token to its pool). Regions still
    /// run every slot — cancellation is observed by the *callers*
    /// between regions, not by cutting a region short.
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel = token;
    }

    /// The cancellation token regions of this pool observe.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// The scheduler this pool submits regions to.
    pub fn scheduler(&self) -> &Scheduler {
        &self.sched
    }

    /// Number of slots in the team (the `T` of the paper's schedules).
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.size
    }

    /// Execute `f(ctx)` once per team slot, blocking until all finish.
    ///
    /// The calling thread claims slots alongside the scheduler's
    /// workers (so progress never depends on idle workers existing).
    /// If any slot panics, the panic is re-raised here after the team
    /// quiesces (the first panic observed wins).
    pub fn run<F>(&self, f: F)
    where
        F: Fn(WorkerCtx) + Sync,
    {
        if self.size == 1 {
            f(WorkerCtx {
                thread_id: 0,
                num_threads: 1,
            });
            return;
        }
        self.sched.run_region(self.size, &self.cancel, |ctx| {
            f(WorkerCtx {
                thread_id: ctx.slot,
                num_threads: ctx.team,
            })
        });
    }

    /// Static contiguous partition of `0..n`: slot `t` receives the
    /// `t`-th balanced block as a half-open range.
    pub fn parallel_for_range<F>(&self, n: usize, f: F)
    where
        F: Fn(WorkerCtx, Range<usize>) + Sync,
    {
        self.run(|ctx| {
            let r = block_range(n, ctx.num_threads, ctx.thread_id);
            if !r.is_empty() {
                f(ctx, r);
            }
        });
    }

    /// Static contiguous partition of `data` (length `n`): slot `t`
    /// receives its index range plus the matching disjoint sub-slice.
    pub fn parallel_for_blocks<T, F>(&self, n: usize, data: &mut [T], f: F)
    where
        T: Send,
        F: Fn(WorkerCtx, Range<usize>, &mut [T]) + Sync,
    {
        assert_eq!(data.len(), n, "data length must equal iteration count");
        let base = data.as_mut_ptr() as usize;
        self.run(|ctx| {
            let r = block_range(n, ctx.num_threads, ctx.thread_id);
            if r.is_empty() {
                return;
            }
            // Safety: blocks are pairwise disjoint and within `data`,
            // which is mutably borrowed for the whole region.
            let chunk =
                unsafe { std::slice::from_raw_parts_mut((base as *mut T).add(r.start), r.len()) };
            f(ctx, r, chunk);
        });
    }

    /// Block-cyclic partition: slot `t` processes chunks
    /// `t, t + T, t + 2T, ...` of `chunk` consecutive indices each.
    ///
    /// Used where per-chunk cost varies; the paper's internal-mode 1-step
    /// loop over `IRn` blocks uses this with `chunk == 1`.
    pub fn parallel_for_chunks<F>(&self, n: usize, chunk: usize, f: F)
    where
        F: Fn(WorkerCtx, Range<usize>) + Sync,
    {
        assert!(chunk > 0, "chunk size must be positive");
        self.run(|ctx| {
            let mut start = ctx.thread_id * chunk;
            while start < n {
                let end = usize::min(start + chunk, n);
                f(ctx, start..end);
                start += ctx.num_threads * chunk;
            }
        });
    }

    /// Run a region with one private value per slot, returning the
    /// private values afterwards (e.g. slot-local MTTKRP accumulators).
    ///
    /// `init(t)` is called on the caller for `t in 0..T` before the region
    /// starts; slot `t` then receives `&mut` access to its value.
    pub fn run_with_private<B, I, F>(&self, init: I, f: F) -> Vec<B>
    where
        B: Send,
        I: FnMut(usize) -> B,
        F: Fn(WorkerCtx, &mut B) + Sync,
    {
        let mut privs: Vec<B> = (0..self.size).map(init).collect();
        let base = privs.as_mut_ptr() as usize;
        self.run(|ctx| {
            // Safety: each slot touches only element `thread_id`, and
            // `privs` outlives the region.
            let b = unsafe { &mut *(base as *mut B).add(ctx.thread_id) };
            f(ctx, b);
        });
        privs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_thread_runs_once() {
        for t in [1, 2, 3, 7] {
            let pool = ThreadPool::new(t);
            let count = AtomicUsize::new(0);
            let mask = AtomicUsize::new(0);
            pool.run(|ctx| {
                assert_eq!(ctx.num_threads, t);
                count.fetch_add(1, Ordering::Relaxed);
                mask.fetch_or(1 << ctx.thread_id, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), t);
            assert_eq!(mask.load(Ordering::Relaxed), (1usize << t) - 1);
        }
    }

    #[test]
    fn pool_is_reusable_across_many_regions() {
        let pool = ThreadPool::new(4);
        let total = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.run(|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 400);
    }

    #[test]
    fn pools_share_one_scheduler_without_interference() {
        // Two pools of different team sizes on the same (global)
        // scheduler: slots must not leak between their regions.
        let small = ThreadPool::new(2);
        let big = ThreadPool::new(6);
        for _ in 0..20 {
            let a = AtomicUsize::new(0);
            let b = AtomicUsize::new(0);
            small.run(|ctx| {
                assert_eq!(ctx.num_threads, 2);
                a.fetch_add(1, Ordering::Relaxed);
            });
            big.run(|ctx| {
                assert_eq!(ctx.num_threads, 6);
                b.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(a.load(Ordering::Relaxed), 2);
            assert_eq!(b.load(Ordering::Relaxed), 6);
        }
    }

    #[test]
    fn blocks_cover_all_indices_exactly_once() {
        let pool = ThreadPool::new(5);
        let mut hits = vec![0u8; 1003];
        pool.parallel_for_blocks(hits.len(), &mut hits, |_, range, chunk| {
            assert_eq!(range.len(), chunk.len());
            for slot in chunk {
                *slot += 1;
            }
        });
        assert!(hits.iter().all(|&h| h == 1));
    }

    #[test]
    fn chunks_cover_all_indices_exactly_once() {
        let pool = ThreadPool::new(3);
        let hits: Vec<AtomicUsize> = (0..250).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for_chunks(hits.len(), 7, |_, range| {
            assert!(range.len() <= 7);
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn private_buffers_are_per_thread() {
        let pool = ThreadPool::new(4);
        let privs = pool.run_with_private(
            |t| vec![t],
            |ctx, buf| {
                buf.push(ctx.thread_id + 100);
            },
        );
        for (t, buf) in privs.iter().enumerate() {
            assert_eq!(buf, &vec![t, t + 100]);
        }
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = ThreadPool::new(4);
        let res = catch_unwind(AssertUnwindSafe(|| {
            pool.run(|ctx| {
                if ctx.thread_id == 2 {
                    panic!("boom from worker");
                }
            });
        }));
        assert!(res.is_err());
        // Pool still usable afterwards.
        let count = AtomicUsize::new(0);
        pool.run(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn caller_panic_propagates_after_quiesce() {
        let pool = ThreadPool::new(2);
        let res = catch_unwind(AssertUnwindSafe(|| {
            pool.run(|ctx| {
                if ctx.thread_id == 0 {
                    panic!("boom from caller");
                }
            });
        }));
        assert!(res.is_err());
        pool.run(|_| {});
    }

    #[test]
    fn size_one_runs_inline() {
        let pool = ThreadPool::new(1);
        let tid = std::thread::current().id();
        pool.run(|ctx| {
            assert_eq!(ctx.thread_id, 0);
            assert_eq!(std::thread::current().id(), tid);
        });
    }

    #[test]
    fn isolated_scheduler_pool_runs_regions() {
        let sched = mttkrp_sched::Scheduler::new(2);
        let pool = ThreadPool::with_scheduler(4, sched.clone());
        let count = AtomicUsize::new(0);
        pool.run(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 4);
        drop(pool);
        sched.shutdown();
    }

    #[test]
    fn empty_range_threads_skip_work() {
        let pool = ThreadPool::new(8);
        let count = AtomicUsize::new(0);
        pool.parallel_for_range(3, |_, range| {
            count.fetch_add(range.len(), Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 3);
    }
}
