//! Static partitioning of iteration spaces, mirroring OpenMP
//! `schedule(static)` semantics: the first `n % nblocks` blocks receive
//! one extra element so block sizes differ by at most one.

use std::ops::Range;

/// Length of block `b` when `n` items are split into `nblocks` blocks.
///
/// Blocks are balanced: sizes differ by at most one and sum to `n`.
#[inline]
pub fn block_len(n: usize, nblocks: usize, b: usize) -> usize {
    debug_assert!(b < nblocks);
    let base = n / nblocks;
    let rem = n % nblocks;
    base + usize::from(b < rem)
}

/// Half-open index range of block `b` when `n` items are split into
/// `nblocks` balanced contiguous blocks.
///
/// # Panics
/// Panics if `nblocks == 0` or `b >= nblocks`.
#[inline]
pub fn block_range(n: usize, nblocks: usize, b: usize) -> Range<usize> {
    assert!(nblocks > 0, "cannot partition into zero blocks");
    assert!(
        b < nblocks,
        "block index {b} out of range for {nblocks} blocks"
    );
    let base = n / nblocks;
    let rem = n % nblocks;
    // Blocks [0, rem) have length base+1, the rest have length base.
    let start = if b < rem {
        b * (base + 1)
    } else {
        rem * (base + 1) + (b - rem) * base
    };
    let len = base + usize::from(b < rem);
    start..start + len
}

/// Iterator over the balanced contiguous blocks of `0..n`.
///
/// Yields `nblocks` ranges (some possibly empty when `n < nblocks`) that
/// tile `0..n` exactly.
#[derive(Debug, Clone)]
pub struct Blocks {
    n: usize,
    nblocks: usize,
    next: usize,
}

impl Blocks {
    /// Create an iterator over the `nblocks` balanced blocks of `0..n`.
    ///
    /// # Panics
    /// Panics if `nblocks == 0`.
    pub fn new(n: usize, nblocks: usize) -> Self {
        assert!(nblocks > 0, "cannot partition into zero blocks");
        Blocks {
            n,
            nblocks,
            next: 0,
        }
    }
}

impl Iterator for Blocks {
    type Item = Range<usize>;

    fn next(&mut self) -> Option<Range<usize>> {
        if self.next >= self.nblocks {
            return None;
        }
        let r = block_range(self.n, self.nblocks, self.next);
        self.next += 1;
        Some(r)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.nblocks - self.next;
        (left, Some(left))
    }
}

impl ExactSizeIterator for Blocks {}

/// Split a mutable slice into `nblocks` balanced contiguous sub-slices.
///
/// The returned vector always has exactly `nblocks` entries; trailing
/// entries are empty when `slice.len() < nblocks`.
pub fn split_blocks_mut<T>(slice: &mut [T], nblocks: usize) -> Vec<&mut [T]> {
    assert!(nblocks > 0, "cannot partition into zero blocks");
    let n = slice.len();
    let mut out = Vec::with_capacity(nblocks);
    let mut rest = slice;
    for b in 0..nblocks {
        let len = block_len(n, nblocks, b);
        let (head, tail) = rest.split_at_mut(len);
        out.push(head);
        rest = tail;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tile_exactly() {
        for n in [0usize, 1, 2, 7, 12, 100, 101] {
            for t in [1usize, 2, 3, 5, 12, 16] {
                let mut covered = 0;
                for b in 0..t {
                    let r = block_range(n, t, b);
                    assert_eq!(r.start, covered, "n={n} t={t} b={b}");
                    assert_eq!(r.len(), block_len(n, t, b));
                    covered = r.end;
                }
                assert_eq!(covered, n);
            }
        }
    }

    #[test]
    fn blocks_balanced_within_one() {
        for n in [1usize, 5, 13, 97] {
            for t in [1usize, 2, 4, 7, 12] {
                let lens: Vec<usize> = Blocks::new(n, t).map(|r| r.len()).collect();
                let min = *lens.iter().min().unwrap();
                let max = *lens.iter().max().unwrap();
                assert!(max - min <= 1, "n={n} t={t} lens={lens:?}");
                assert_eq!(lens.iter().sum::<usize>(), n);
            }
        }
    }

    #[test]
    fn blocks_iterator_counts() {
        let b = Blocks::new(10, 4);
        assert_eq!(b.len(), 4);
        assert_eq!(b.collect::<Vec<_>>(), vec![0..3, 3..6, 6..8, 8..10]);
    }

    #[test]
    fn empty_blocks_when_fewer_items_than_blocks() {
        let rs: Vec<_> = Blocks::new(2, 5).collect();
        assert_eq!(rs, vec![0..1, 1..2, 2..2, 2..2, 2..2]);
    }

    #[test]
    fn split_blocks_mut_tiles() {
        let mut v: Vec<u32> = (0..11).collect();
        let parts = split_blocks_mut(&mut v, 3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], &[0, 1, 2, 3]);
        assert_eq!(parts[1], &[4, 5, 6, 7]);
        assert_eq!(parts[2], &[8, 9, 10]);
    }

    #[test]
    #[should_panic]
    fn zero_blocks_panics() {
        let _ = block_range(10, 0, 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_block_panics() {
        let _ = block_range(10, 3, 3);
    }
}
