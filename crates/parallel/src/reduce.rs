//! Parallel reductions of thread-private accumulators.
//!
//! Both MTTKRP parallelizations in the paper end with a reduction of `T`
//! thread-private `In × C` matrices into the output (`M ← Σ_t M_t`,
//! Algorithm 3 line 19). Each matrix is a flat slice; the reduction is
//! parallelized over *elements* — thread `t` owns a contiguous element
//! range and sums that range across every private buffer — so the
//! reduction itself scales with the team.

use std::ops::AddAssign;

use crate::pool::ThreadPool;

/// `out[i] += Σ_p parts[p][i]`, sequentially.
pub fn sum_into_seq<T: Copy + AddAssign>(out: &mut [T], parts: &[&[T]]) {
    for part in parts {
        assert_eq!(part.len(), out.len(), "private buffer length mismatch");
        for (o, &x) in out.iter_mut().zip(part.iter()) {
            *o += x;
        }
    }
}

/// `out[i] += Σ_p parts[p][i]`, parallelized over element ranges.
///
/// This is the paper's parallel reduction: each team thread sums a
/// contiguous range of indices across all private buffers, touching each
/// output element exactly once.
pub fn sum_into<T: Copy + AddAssign + Send + Sync>(
    pool: &ThreadPool,
    out: &mut [T],
    parts: &[&[T]],
) {
    for part in parts {
        assert_eq!(part.len(), out.len(), "private buffer length mismatch");
    }
    if pool.num_threads() == 1 || out.len() < 1024 {
        sum_into_seq(out, parts);
        return;
    }
    pool.parallel_for_blocks(out.len(), out, |_, range, chunk| {
        for part in parts {
            let src = &part[range.clone()];
            for (o, &x) in chunk.iter_mut().zip(src.iter()) {
                *o += x;
            }
        }
    });
}

/// Sum the owned private buffers into the first one and return it,
/// consuming the rest. Convenience wrapper over [`sum_into`].
///
/// An empty `parts` is the empty sum: the result is an empty `Vec`
/// (previously this indexed `parts[0]` and panicked).
pub fn fold_first<T: Copy + AddAssign + Send + Sync>(
    pool: &ThreadPool,
    mut parts: Vec<Vec<T>>,
) -> Vec<T> {
    if parts.is_empty() {
        return Vec::new();
    }
    let mut first = parts.remove(0);
    let refs: Vec<&[T]> = parts.iter().map(|v| v.as_slice()).collect();
    sum_into(pool, &mut first, &refs);
    first
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_sum() {
        let pool = ThreadPool::new(4);
        let parts_owned: Vec<Vec<f64>> = (0..5)
            .map(|p| (0..4096).map(|i| (p * 4096 + i) as f64).collect())
            .collect();
        let parts: Vec<&[f64]> = parts_owned.iter().map(|v| v.as_slice()).collect();

        let mut seq = vec![1.0; 4096];
        sum_into_seq(&mut seq, &parts);
        let mut par = vec![1.0; 4096];
        sum_into(&pool, &mut par, &parts);
        assert_eq!(seq, par);
    }

    #[test]
    fn small_inputs_take_sequential_path() {
        let pool = ThreadPool::new(4);
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![10.0, 20.0, 30.0];
        let mut out = vec![0.0; 3];
        sum_into(&pool, &mut out, &[&a, &b]);
        assert_eq!(out, vec![11.0, 22.0, 33.0]);
    }

    #[test]
    fn fold_first_consumes_buffers() {
        let pool = ThreadPool::new(2);
        let parts = vec![vec![1.0; 2048], vec![2.0; 2048], vec![3.0; 2048]];
        let out = fold_first(&pool, parts);
        assert!(out.iter().all(|&x| x == 6.0));
    }

    #[test]
    fn fold_first_of_nothing_is_empty() {
        let pool = ThreadPool::new(2);
        let out = fold_first::<f64>(&pool, Vec::new());
        assert!(out.is_empty());
    }

    #[test]
    fn fold_first_of_one_buffer_returns_it_unchanged() {
        let pool = ThreadPool::new(2);
        let out = fold_first(&pool, vec![vec![4.0; 7]]);
        assert_eq!(out, vec![4.0; 7]);
    }

    #[test]
    fn empty_parts_is_identity() {
        let pool = ThreadPool::new(2);
        let mut out = vec![7.0; 10];
        sum_into(&pool, &mut out, &[]);
        assert!(out.iter().all(|&x| x == 7.0));
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let pool = ThreadPool::new(2);
        let a = vec![0.0; 4];
        let mut out = vec![0.0; 5];
        sum_into(&pool, &mut out, &[&a]);
    }
}
