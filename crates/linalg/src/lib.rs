//! Dense symmetric linear algebra substituting for LAPACK in the
//! CP-ALS driver — `Scalar`-generic and built on the strided
//! [`MatRef`](mttkrp_blas::MatRef)/[`MatMut`](mttkrp_blas::MatMut)
//! views from `mttkrp-blas`.
//!
//! CP-ALS needs one `C × C` solve per factor update: `U_n = M · H†`
//! where `H = ⊛_{k≠n} U_kᵀU_k` is symmetric positive semi-definite and
//! `C` is the decomposition rank. This crate provides the full
//! escalation ladder behind that solve:
//!
//! * [`cholesky_in_place`] / [`cholesky_solve_in_place`] — blocked
//!   right-looking LLᵀ whose trailing update routes through the SIMD
//!   `gemm` kernels, for the well-conditioned common case;
//! * [`ldlt_factor_in_place`] / [`ldlt_solve_in_place`] — diagonally
//!   pivoted, rank-revealing LDLᵀ for the semidefinite region;
//! * [`sym_evd_in`] — Householder tridiagonalization + implicit-shift
//!   QL symmetric eigendecomposition, the fast EVD;
//! * [`GramSolver`] — the policy object tying the rungs together with
//!   a cheap condition estimate and reusable workspaces;
//! * [`lu_factor`] / [`lu_solve`] — general square solves with partial
//!   pivoting;
//! * [`jacobi_eigh`] / [`sym_pinv`] — the original cyclic Jacobi
//!   eigensolver and pseudoinverse, retained as the slow-but-robust
//!   **test oracle** for every faster path above.
//!
//! Factorizations take views, so row-major, column-major, and
//! transposed/submatrix inputs all work without copies; contiguous
//! slices enter through `MatMut::from_slice(.., Layout::ColMajor)`.

#![deny(missing_docs)]

pub mod chol;
pub mod eigh;
pub mod evd;
pub mod ldlt;
pub mod lu;
pub mod solve;

pub use chol::{
    cholesky_in_place, cholesky_in_place_with, cholesky_inverse_into, cholesky_solve_in_place,
    cholesky_unblocked, factor_diag_extrema, solve_lower_in_place, solve_lower_transpose_in_place,
    CHOL_PANEL,
};
pub use eigh::{jacobi_eigh, jacobi_eigh_in, sym_pinv, sym_pinv_into, PinvWorkspace};
pub use evd::{sym_evd, sym_evd_in};
pub use ldlt::{ldlt_factor_in_place, ldlt_inverse_into, ldlt_solve_in_place};
pub use lu::{lu_factor, lu_solve};
pub use solve::{GramSolver, SolvePolicy, SolveVariant, DEFAULT_COND_LIMIT};

/// Errors from the dense factorizations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinalgError {
    /// A Cholesky/LDLᵀ pivot was negative beyond round-off: the matrix
    /// is not (numerically) positive semi-definite.
    NotPositiveDefinite,
    /// An exactly singular pivot was encountered in LU.
    Singular,
    /// The eigensolver iteration limit was reached before convergence.
    NoConvergence,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite => write!(f, "matrix is not positive definite"),
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NoConvergence => write!(f, "eigensolver did not converge"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Multiply two column-major `n × n` matrices (test oracle; the
/// pseudoinverse assembly now folds the transpose into its own loop).
#[cfg(test)]
pub(crate) fn matmul_nn(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    let mut c = vec![0.0; n * n];
    for j in 0..n {
        for p in 0..n {
            let bpj = b[p + j * n];
            if bpj != 0.0 {
                for i in 0..n {
                    c[i + j * n] += a[i + p * n] * bpj;
                }
            }
        }
    }
    c
}
