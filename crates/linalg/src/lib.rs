//! Small dense factorizations substituting for LAPACK in the CP-ALS
//! driver.
//!
//! CP-ALS needs one `C × C` solve per factor update:
//! `U_n = M · H†` where `H = ⊛_{k≠n} U_kᵀU_k` is symmetric positive
//! semi-definite and `C` is the decomposition rank (10–50 in the paper's
//! experiments). This crate provides:
//!
//! * [`cholesky`] / [`cholesky_solve`] — for the well-conditioned case;
//! * [`lu_factor`] / [`lu_solve`] — general square solves with partial
//!   pivoting;
//! * [`jacobi_eigh`] — cyclic Jacobi symmetric eigendecomposition, whose
//!   robustness (not speed) matters here;
//! * [`sym_pinv`] — the Moore–Penrose pseudoinverse of a symmetric PSD
//!   matrix via Jacobi, used for rank-deficient Gram matrices exactly as
//!   Tensor Toolbox uses `pinv`.
//!
//! All matrices are **column-major** `n × n` slices. Sizes here are tiny
//! (rank × rank), so clarity and robustness win over blocking.

pub mod chol;
pub mod eigh;
pub mod lu;

pub use chol::{cholesky, cholesky_solve};
pub use eigh::{jacobi_eigh, jacobi_eigh_in, sym_pinv, sym_pinv_into, PinvWorkspace};
pub use lu::{lu_factor, lu_solve};

/// Errors from the dense factorizations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinalgError {
    /// Cholesky pivot was non-positive: the matrix is not (numerically)
    /// positive definite.
    NotPositiveDefinite,
    /// An exactly singular pivot was encountered in LU.
    Singular,
    /// The Jacobi sweep limit was reached before convergence.
    NoConvergence,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite => write!(f, "matrix is not positive definite"),
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NoConvergence => write!(f, "eigensolver did not converge"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Multiply two column-major `n × n` matrices (test oracle; the
/// pseudoinverse assembly now folds the transpose into its own loop).
#[cfg(test)]
pub(crate) fn matmul_nn(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    let mut c = vec![0.0; n * n];
    for j in 0..n {
        for p in 0..n {
            let bpj = b[p + j * n];
            if bpj != 0.0 {
                for i in 0..n {
                    c[i + j * n] += a[i + p * n] * bpj;
                }
            }
        }
    }
    c
}
