//! LU factorization with partial pivoting.

use crate::LinalgError;

/// In-place LU factorization with partial pivoting of a column-major
/// `n × n` matrix: `P·A = L·U`, `L` unit lower / `U` upper triangular,
/// both stored in `a`. Returns the pivot permutation (`piv[k]` = row
/// swapped into position `k` at step `k`).
pub fn lu_factor(a: &mut [f64], n: usize) -> Result<Vec<usize>, LinalgError> {
    assert_eq!(a.len(), n * n, "matrix must be n x n");
    let mut piv = Vec::with_capacity(n);
    for k in 0..n {
        // Find pivot in column k.
        let mut p = k;
        let mut pmax = a[k + k * n].abs();
        for i in k + 1..n {
            let v = a[i + k * n].abs();
            if v > pmax {
                pmax = v;
                p = i;
            }
        }
        if pmax == 0.0 || !pmax.is_finite() {
            return Err(LinalgError::Singular);
        }
        piv.push(p);
        if p != k {
            for j in 0..n {
                a.swap(k + j * n, p + j * n);
            }
        }
        // Eliminate below the pivot.
        let pivot = a[k + k * n];
        for i in k + 1..n {
            let m = a[i + k * n] / pivot;
            a[i + k * n] = m;
            for j in k + 1..n {
                a[i + j * n] -= m * a[k + j * n];
            }
        }
    }
    Ok(piv)
}

/// Solve `A·x = b` given [`lu_factor`] output; `b` is overwritten.
pub fn lu_solve(lu: &[f64], piv: &[usize], n: usize, b: &mut [f64]) {
    assert_eq!(lu.len(), n * n, "factor must be n x n");
    assert_eq!(piv.len(), n, "pivot vector must have length n");
    assert_eq!(b.len(), n, "rhs must have length n");
    // Apply the permutation.
    for (k, &p) in piv.iter().enumerate() {
        if p != k {
            b.swap(k, p);
        }
    }
    // Forward: L y = P b (unit diagonal).
    for i in 1..n {
        let mut s = b[i];
        for k in 0..i {
            s -= lu[i + k * n] * b[k];
        }
        b[i] = s;
    }
    // Backward: U x = y.
    for i in (0..n).rev() {
        let mut s = b[i];
        for k in i + 1..n {
            s -= lu[i + k * n] * b[k];
        }
        b[i] = s / lu[i + i * n];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_mat(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed | 1;
        (0..n * n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 32) as f64) - 0.5
            })
            .collect()
    }

    #[test]
    fn solve_recovers_known_solution() {
        for n in [1usize, 2, 5, 9] {
            let a = rand_mat(n, n as u64 * 7 + 1);
            let x_true: Vec<f64> = (0..n).map(|i| (i as f64) * 0.5 - 1.0).collect();
            let mut b = vec![0.0; n];
            for i in 0..n {
                for j in 0..n {
                    b[i] += a[i + j * n] * x_true[j];
                }
            }
            let mut lu = a.clone();
            let piv = lu_factor(&mut lu, n).unwrap();
            lu_solve(&lu, &piv, n, &mut b);
            for (got, want) in b.iter().zip(&x_true) {
                assert!((got - want).abs() < 1e-8, "n={n}");
            }
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // A = [[0, 1], [1, 0]] requires a row swap.
        let mut a = vec![0.0, 1.0, 1.0, 0.0];
        let piv = lu_factor(&mut a, 2).unwrap();
        let mut b = vec![2.0, 3.0];
        lu_solve(&a, &piv, 2, &mut b);
        // x solves [[0,1],[1,0]] x = (2,3) → x = (3,2).
        assert!((b[0] - 3.0).abs() < 1e-14);
        assert!((b[1] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn singular_matrix_rejected() {
        let mut a = vec![1.0, 2.0, 2.0, 4.0]; // rank 1
        assert_eq!(lu_factor(&mut a, 2), Err(LinalgError::Singular));
    }
}
