//! LU factorization with partial pivoting, generic over [`Scalar`] and
//! strided [`MatMut`]/[`MatRef`] views.

use mttkrp_blas::{MatMut, MatRef, Scalar};

use crate::LinalgError;

/// In-place LU factorization with partial pivoting of the square view
/// `a`: `P·A = L·U`, `L` unit lower / `U` upper triangular, both stored
/// in `a`. `piv` (length `n`) receives the permutation: `piv[k]` is the
/// row swapped into position `k` at step `k`.
pub fn lu_factor<S: Scalar>(mut a: MatMut<'_, S>, piv: &mut [usize]) -> Result<(), LinalgError> {
    let n = a.nrows();
    assert_eq!(a.ncols(), n, "matrix must be square");
    assert_eq!(piv.len(), n, "pivot buffer must have length n");
    for k in 0..n {
        // Find pivot in column k.
        let mut p = k;
        let mut pmax = a.get(k, k).abs();
        for i in k + 1..n {
            let v = a.get(i, k).abs();
            if v > pmax {
                pmax = v;
                p = i;
            }
        }
        if pmax == S::ZERO || !pmax.is_finite() {
            return Err(LinalgError::Singular);
        }
        piv[k] = p;
        if p != k {
            for j in 0..n {
                let x = a.get(k, j);
                let y = a.get(p, j);
                a.set(k, j, y);
                a.set(p, j, x);
            }
        }
        // Eliminate below the pivot.
        let pivot = a.get(k, k);
        for i in k + 1..n {
            let m = unsafe { a.get_unchecked(i, k) } / pivot;
            unsafe { a.set_unchecked(i, k, m) };
            for j in k + 1..n {
                let v = unsafe { a.get_unchecked(i, j) - m * a.get_unchecked(k, j) };
                unsafe { a.set_unchecked(i, j, v) };
            }
        }
    }
    Ok(())
}

/// Solve `A·x = b` given [`lu_factor`] output; `b` is overwritten.
pub fn lu_solve<S: Scalar>(lu: MatRef<'_, S>, piv: &[usize], b: &mut [S]) {
    let n = lu.nrows();
    assert_eq!(lu.ncols(), n, "factor must be square");
    assert_eq!(piv.len(), n, "pivot vector must have length n");
    assert_eq!(b.len(), n, "rhs must have length n");
    // Apply the permutation.
    for (k, &p) in piv.iter().enumerate() {
        if p != k {
            b.swap(k, p);
        }
    }
    // Forward: L y = P b (unit diagonal).
    for i in 1..n {
        let mut s = b[i];
        for k in 0..i {
            s -= unsafe { lu.get_unchecked(i, k) } * b[k];
        }
        b[i] = s;
    }
    // Backward: U x = y.
    for i in (0..n).rev() {
        let mut s = b[i];
        for k in i + 1..n {
            s -= unsafe { lu.get_unchecked(i, k) } * b[k];
        }
        b[i] = s / lu.get(i, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mttkrp_blas::Layout;

    fn rand_mat(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed | 1;
        (0..n * n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 32) as f64) - 0.5
            })
            .collect()
    }

    #[test]
    fn solve_recovers_known_solution() {
        for n in [1usize, 2, 5, 9] {
            let a = rand_mat(n, n as u64 * 7 + 1);
            let x_true: Vec<f64> = (0..n).map(|i| (i as f64) * 0.5 - 1.0).collect();
            let mut b = vec![0.0; n];
            for i in 0..n {
                for j in 0..n {
                    b[i] += a[i + j * n] * x_true[j];
                }
            }
            let mut lu = a.clone();
            let mut piv = vec![0usize; n];
            lu_factor(
                MatMut::from_slice(&mut lu, n, n, Layout::ColMajor),
                &mut piv,
            )
            .unwrap();
            lu_solve(
                MatRef::from_slice(&lu, n, n, Layout::ColMajor),
                &piv,
                &mut b,
            );
            for (got, want) in b.iter().zip(&x_true) {
                assert!((got - want).abs() < 1e-8, "n={n}");
            }
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // A = [[0, 1], [1, 0]] requires a row swap.
        let mut a = vec![0.0, 1.0, 1.0, 0.0];
        let mut piv = vec![0usize; 2];
        lu_factor(MatMut::from_slice(&mut a, 2, 2, Layout::ColMajor), &mut piv).unwrap();
        let mut b = vec![2.0, 3.0];
        lu_solve(MatRef::from_slice(&a, 2, 2, Layout::ColMajor), &piv, &mut b);
        // x solves [[0,1],[1,0]] x = (2,3) → x = (3,2).
        assert!((b[0] - 3.0).abs() < 1e-14);
        assert!((b[1] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn singular_matrix_rejected() {
        let mut a = vec![1.0, 2.0, 2.0, 4.0]; // rank 1
        let mut piv = vec![0usize; 2];
        assert_eq!(
            lu_factor(MatMut::from_slice(&mut a, 2, 2, Layout::ColMajor), &mut piv),
            Err(LinalgError::Singular)
        );
    }

    #[test]
    fn row_major_view_factors_identically() {
        let n = 6;
        let a_col = rand_mat(n, 42);
        // Same matrix laid out row-major.
        let mut a_row = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                a_row[i * n + j] = a_col[i + j * n];
            }
        }
        let mut lu_c = a_col.clone();
        let mut piv_c = vec![0usize; n];
        lu_factor(
            MatMut::from_slice(&mut lu_c, n, n, Layout::ColMajor),
            &mut piv_c,
        )
        .unwrap();
        let mut piv_r = vec![0usize; n];
        lu_factor(
            MatMut::from_slice(&mut a_row, n, n, Layout::RowMajor),
            &mut piv_r,
        )
        .unwrap();
        assert_eq!(piv_c, piv_r);
        for i in 0..n {
            for j in 0..n {
                assert!((lu_c[i + j * n] - a_row[i * n + j]).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn f32_solve_holds_to_single_precision() {
        let n = 7;
        let a64 = rand_mat(n, 5);
        let a: Vec<f32> = a64.iter().map(|&x| x as f32).collect();
        let x_true: Vec<f32> = (0..n).map(|i| i as f32 * 0.25 - 0.5).collect();
        let mut b = vec![0.0f32; n];
        for i in 0..n {
            for j in 0..n {
                b[i] += a[i + j * n] * x_true[j];
            }
        }
        let mut lu = a.clone();
        let mut piv = vec![0usize; n];
        lu_factor(
            MatMut::from_slice(&mut lu, n, n, Layout::ColMajor),
            &mut piv,
        )
        .unwrap();
        lu_solve(
            MatRef::from_slice(&lu, n, n, Layout::ColMajor),
            &piv,
            &mut b,
        );
        for (got, want) in b.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-3, "n={n}");
        }
    }
}
