//! Symmetric eigendecomposition via Householder tridiagonalization and
//! implicit-shift QL iteration — the workhorse EVD behind the pseudo-
//! inverse rung of the Gram-solve escalation ladder.
//!
//! The classic two-phase scheme (EISPACK `tred2` + `tql2`, also the
//! backbone of LAPACK's `syev` drivers): reduce the dense symmetric
//! matrix to tridiagonal form with accumulated Householder reflectors
//! (O(n³) once), then diagonalize the tridiagonal matrix with
//! implicitly shifted QL rotations (O(n²) per sweep). This replaces the
//! cyclic Jacobi solver, which needs O(n³) *per sweep* and typically
//! 6–10 sweeps; Jacobi remains in [`crate::jacobi_eigh_in`] as the test
//! oracle.

use mttkrp_blas::{Layout, MatMut, Scalar};

use crate::LinalgError;

/// Maximum implicit-shift QL iterations per eigenvalue before giving up.
const MAX_QL_ITERS: usize = 50;

/// Symmetric eigendecomposition in place: on entry `a` holds a
/// symmetric `n × n` matrix (both triangles read); on exit its columns
/// are orthonormal eigenvectors, `w` holds the matching eigenvalues in
/// ascending order, and `e` is scratch (length `n`).
///
/// Uses Householder tridiagonalization with accumulated transformations
/// followed by implicit-shift QL; fails with
/// [`LinalgError::NoConvergence`] if any eigenvalue needs more than 50
/// QL iterations (essentially impossible for finite input).
pub fn sym_evd_in<S: Scalar>(
    mut a: MatMut<'_, S>,
    w: &mut [S],
    e: &mut [S],
) -> Result<(), LinalgError> {
    let n = a.nrows();
    assert_eq!(a.ncols(), n, "matrix must be square");
    assert_eq!(w.len(), n, "eigenvalue buffer must have length n");
    assert_eq!(e.len(), n, "scratch buffer must have length n");
    if n == 0 {
        return Ok(());
    }
    tred2(&mut a, w, e);
    tql2(&mut a, w, e)
}

/// Allocating convenience wrapper over [`sym_evd_in`]: factors the
/// column-major `n × n` symmetric matrix `a`, returning
/// `(eigenvalues, eigenvectors)` with eigenvectors stored column-major.
pub fn sym_evd<S: Scalar>(a: &[S], n: usize) -> Result<(Vec<S>, Vec<S>), LinalgError> {
    assert_eq!(a.len(), n * n, "matrix buffer must be n x n");
    let mut v = a.to_vec();
    let mut w = vec![S::ZERO; n];
    let mut e = vec![S::ZERO; n];
    sym_evd_in(
        MatMut::from_slice(&mut v, n, n, Layout::ColMajor),
        &mut w,
        &mut e,
    )?;
    Ok((w, v))
}

/// Householder reduction to tridiagonal form with accumulation of the
/// orthogonal transformation (EISPACK `tred2`). On exit `a` holds the
/// accumulated orthogonal matrix `Q` (so `Qᵀ·A·Q = T`), `d` the
/// diagonal of `T`, and `e[1..]` its subdiagonal (`e[0] = 0`).
fn tred2<S: Scalar>(a: &mut MatMut<'_, S>, d: &mut [S], e: &mut [S]) {
    let n = a.nrows();
    for j in 0..n {
        d[j] = a.get(n - 1, j);
    }

    // Householder reduction, working bottom-up.
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = S::ZERO;
        let mut scale = S::ZERO;
        if l > 0 {
            for k in 0..=l {
                scale += d[k].abs();
            }
        }
        if scale == S::ZERO {
            e[i] = d[l];
            for j in 0..=l {
                d[j] = a.get(l, j);
                a.set(i, j, S::ZERO);
                a.set(j, i, S::ZERO);
            }
        } else {
            for k in 0..=l {
                d[k] /= scale;
                h += d[k] * d[k];
            }
            let mut f = d[l];
            let mut g = if f > S::ZERO { -h.sqrt() } else { h.sqrt() };
            e[i] = scale * g;
            h -= f * g;
            d[l] = f - g;
            for j in 0..=l {
                e[j] = S::ZERO;
            }

            // Apply similarity transformation to remaining rows/columns.
            for j in 0..=l {
                f = d[j];
                a.set(j, i, f);
                g = e[j] + a.get(j, j) * f;
                for k in j + 1..=l {
                    g += a.get(k, j) * d[k];
                    e[k] += a.get(k, j) * f;
                }
                e[j] = g;
            }
            f = S::ZERO;
            for j in 0..=l {
                e[j] /= h;
                f += e[j] * d[j];
            }
            let hh = f / (h + h);
            for j in 0..=l {
                e[j] -= hh * d[j];
            }
            for j in 0..=l {
                f = d[j];
                g = e[j];
                for k in j..=l {
                    let v = a.get(k, j) - (f * e[k] + g * d[k]);
                    a.set(k, j, v);
                }
                d[j] = a.get(l, j);
                a.set(i, j, S::ZERO);
            }
        }
        d[i] = h;
    }

    // Accumulate transformations.
    for i in 0..n - 1 {
        a.set(n - 1, i, a.get(i, i));
        a.set(i, i, S::ONE);
        let l = i + 1;
        let h = d[l];
        if h != S::ZERO {
            for k in 0..l {
                d[k] = a.get(k, l) / h;
            }
            for j in 0..l {
                let mut g = S::ZERO;
                for k in 0..l {
                    g += a.get(k, l) * a.get(k, j);
                }
                for k in 0..l {
                    let v = a.get(k, j) - g * d[k];
                    a.set(k, j, v);
                }
            }
        }
        for k in 0..l {
            a.set(k, l, S::ZERO);
        }
    }
    for j in 0..n {
        d[j] = a.get(n - 1, j);
        a.set(n - 1, j, S::ZERO);
    }
    a.set(n - 1, n - 1, S::ONE);
    e[0] = S::ZERO;
}

/// Implicit-shift QL iteration on the tridiagonal matrix produced by
/// [`tred2`], updating the accumulated eigenvector matrix in `a`
/// (EISPACK `tql2`). Eigenvalues come out ascending in `d` with the
/// matching eigenvector columns of `a` permuted alongside.
fn tql2<S: Scalar>(a: &mut MatMut<'_, S>, d: &mut [S], e: &mut [S]) -> Result<(), LinalgError> {
    let n = a.nrows();
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = S::ZERO;

    for l in 0..n {
        let mut iter = 0usize;
        loop {
            // Look for a negligible subdiagonal element to split at.
            let mut m = l;
            while m < n - 1 {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= S::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            if iter == MAX_QL_ITERS {
                return Err(LinalgError::NoConvergence);
            }
            iter += 1;

            // Form implicit shift.
            let two = S::from_f64(2.0);
            let mut g = (d[l + 1] - d[l]) / (two * e[l]);
            let mut r = g.hypot(S::ONE);
            let denom = g + if g >= S::ZERO { r.abs() } else { -r.abs() };
            g = d[m] - d[l] + e[l] / denom;
            let mut s = S::ONE;
            let mut c = S::ONE;
            let mut p = S::ZERO;
            let mut underflow = false;

            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == S::ZERO {
                    // Recover from underflow: split the matrix here and
                    // restart the QL step on the shrunken block.
                    d[i + 1] -= p;
                    e[m] = S::ZERO;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + two * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Rotate eigenvector columns i and i+1.
                for k in 0..n {
                    f = a.get(k, i + 1);
                    let v = a.get(k, i);
                    a.set(k, i + 1, s * v + c * f);
                    a.set(k, i, c * v - s * f);
                }
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = S::ZERO;
        }
    }

    // Sort eigenvalues ascending, carrying eigenvector columns along.
    for i in 0..n.saturating_sub(1) {
        let mut k = i;
        let mut p = d[i];
        for j in i + 1..n {
            if d[j] < p {
                k = j;
                p = d[j];
            }
        }
        if k != i {
            d[k] = d[i];
            d[i] = p;
            for row in 0..n {
                let tmp = a.get(row, i);
                a.set(row, i, a.get(row, k));
                a.set(row, k, tmp);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi_eigh;

    fn sym_matrix(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed | 1;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let v = ((state >> 33) as f64 / (1u64 << 32) as f64) - 0.5;
                a[i + j * n] = v;
                a[j + i * n] = v;
            }
        }
        a
    }

    fn check_decomposition(a: &[f64], n: usize, w: &[f64], v: &[f64], tol: f64) {
        // A·V = V·diag(w)
        for j in 0..n {
            for i in 0..n {
                let mut av = 0.0;
                for k in 0..n {
                    av += a[i + k * n] * v[k + j * n];
                }
                let vw = v[i + j * n] * w[j];
                assert!(
                    (av - vw).abs() < tol,
                    "A·v ≠ λ·v at ({i},{j}): {av} vs {vw}"
                );
            }
        }
        // VᵀV = I
        for j in 0..n {
            for i in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += v[k + i * n] * v[k + j * n];
                }
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((s - want).abs() < tol, "VᵀV ≠ I at ({i},{j}): {s}");
            }
        }
    }

    #[test]
    fn decomposes_random_symmetric_matrices() {
        for n in [1usize, 2, 3, 8, 17, 40] {
            let a = sym_matrix(n, n as u64 + 3);
            let (w, v) = sym_evd(&a, n).unwrap();
            check_decomposition(&a, n, &w, &v, 1e-9);
            for i in 1..n {
                assert!(w[i - 1] <= w[i], "eigenvalues not ascending at {i}");
            }
        }
    }

    #[test]
    fn eigenvalues_match_jacobi_oracle() {
        let n = 24;
        let a = sym_matrix(n, 99);
        let (w, _) = sym_evd(&a, n).unwrap();
        let mut aj = a.clone();
        let (mut wj, _) = jacobi_eigh(&mut aj, n).unwrap();
        wj.sort_by(|x, y| x.partial_cmp(y).unwrap());
        for (got, want) in w.iter().zip(&wj) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
    }

    #[test]
    fn diagonal_matrix_is_fixed_point() {
        let n = 5;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i + i * n] = (n - i) as f64; // descending, exercises the sort
        }
        let (w, v) = sym_evd(&a, n).unwrap();
        for i in 0..n {
            assert!((w[i] - (i + 1) as f64).abs() < 1e-14);
        }
        check_decomposition(&a, n, &w, &v, 1e-12);
    }

    #[test]
    fn f32_decomposition_holds_to_single_precision() {
        let n = 12;
        let a64 = sym_matrix(n, 7);
        let a: Vec<f32> = a64.iter().map(|&x| x as f32).collect();
        let (w, v) = sym_evd(&a, n).unwrap();
        let wf: Vec<f64> = w.iter().map(|&x| x as f64).collect();
        let vf: Vec<f64> = v.iter().map(|&x| x as f64).collect();
        let af: Vec<f64> = a.iter().map(|&x| x as f64).collect();
        check_decomposition(&af, n, &wf, &vf, 1e-4);
    }

    #[test]
    fn repeated_eigenvalues_still_give_orthonormal_basis() {
        // 2·I plus a rank-1 bump: eigenvalues {2 (n−1 times), 2+n·c}.
        let n = 6;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                a[i + j * n] = 0.5;
            }
            a[i + i * n] += 2.0;
        }
        let (w, v) = sym_evd(&a, n).unwrap();
        check_decomposition(&a, n, &w, &v, 1e-10);
        for i in 0..n - 1 {
            assert!((w[i] - 2.0).abs() < 1e-10);
        }
        assert!((w[n - 1] - 5.0).abs() < 1e-10);
    }
}
