//! Cholesky factorization and solve for symmetric positive definite
//! matrices.

use crate::LinalgError;

/// In-place lower Cholesky factorization of a column-major `n × n`
/// symmetric positive definite matrix: on success the lower triangle of
/// `a` holds `L` with `A = L·Lᵀ` (the strict upper triangle is left
/// untouched and must be ignored by consumers).
pub fn cholesky(a: &mut [f64], n: usize) -> Result<(), LinalgError> {
    assert_eq!(a.len(), n * n, "matrix must be n x n");
    for j in 0..n {
        // Diagonal element.
        let mut d = a[j + j * n];
        for k in 0..j {
            let ljk = a[j + k * n];
            d -= ljk * ljk;
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(LinalgError::NotPositiveDefinite);
        }
        let ljj = d.sqrt();
        a[j + j * n] = ljj;
        // Column below the diagonal.
        for i in j + 1..n {
            let mut s = a[i + j * n];
            for k in 0..j {
                s -= a[i + k * n] * a[j + k * n];
            }
            a[i + j * n] = s / ljj;
        }
    }
    Ok(())
}

/// Solve `A·x = b` given the Cholesky factor `L` from [`cholesky`]
/// (forward then backward substitution); `b` is overwritten with `x`.
pub fn cholesky_solve(l: &[f64], n: usize, b: &mut [f64]) {
    assert_eq!(l.len(), n * n, "factor must be n x n");
    assert_eq!(b.len(), n, "rhs must have length n");
    // Forward: L y = b.
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= l[i + k * n] * b[k];
        }
        b[i] = s / l[i + i * n];
    }
    // Backward: Lᵀ x = y.
    for i in (0..n).rev() {
        let mut s = b[i];
        for k in i + 1..n {
            s -= l[k + i * n] * b[k];
        }
        b[i] = s / l[i + i * n];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul_nn;

    fn spd_matrix(n: usize, seed: u64) -> Vec<f64> {
        // A = B Bᵀ + n·I is SPD.
        let mut state = seed | 1;
        let mut b = vec![0.0; n * n];
        for v in b.iter_mut() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *v = ((state >> 33) as f64 / (1u64 << 32) as f64) - 0.5;
        }
        let mut bt = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                bt[i + j * n] = b[j + i * n];
            }
        }
        let mut a = matmul_nn(&b, &bt, n);
        for i in 0..n {
            a[i + i * n] += n as f64;
        }
        a
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let n = 6;
        let a = spd_matrix(n, 3);
        let mut l = a.clone();
        cholesky(&mut l, n).unwrap();
        // Reconstruct L·Lᵀ from the lower triangle.
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..=usize::min(i, j) {
                    s += l[i + k * n] * l[j + k * n];
                }
                assert!((s - a[i + j * n]).abs() < 1e-10, "({i},{j})");
            }
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        let n = 5;
        let a = spd_matrix(n, 9);
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 2.0).collect();
        let mut b = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                b[i] += a[i + j * n] * x_true[j];
            }
        }
        let mut l = a.clone();
        cholesky(&mut l, n).unwrap();
        cholesky_solve(&l, n, &mut b);
        for (got, want) in b.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn identity_factors_to_identity() {
        let n = 4;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i + i * n] = 1.0;
        }
        cholesky(&mut a, n).unwrap();
        for i in 0..n {
            assert!((a[i + i * n] - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let n = 2;
        let mut a = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, -1
        assert_eq!(cholesky(&mut a, n), Err(LinalgError::NotPositiveDefinite));
    }

    #[test]
    fn one_by_one() {
        let mut a = vec![4.0];
        cholesky(&mut a, 1).unwrap();
        assert_eq!(a[0], 2.0);
        let mut b = vec![6.0];
        cholesky_solve(&a, 1, &mut b);
        assert_eq!(b[0], 1.5);
    }
}
