//! Blocked Cholesky factorization and triangular solves on strided
//! [`MatRef`]/[`MatMut`] views, generic over the storage [`Scalar`].
//!
//! The factorization is the classic right-looking blocked LLT: factor a
//! `nb × nb` diagonal panel with the unblocked kernel, triangular-solve
//! the panel below it, then rank-`nb` update the trailing submatrix
//! through [`gemm_with`] so the O(n³) work runs on the SIMD kernel
//! tiers. At the rank × rank sizes of the CP-ALS Gram solves the panel
//! often *is* the whole matrix; the blocking pays off at the larger
//! sizes the EVD path and the `pr8_linalg` bench exercise.
//!
//! Only the **lower** triangle of the input is read; on return the
//! lower triangle holds `L` with `A = L·Lᵀ` and the strict upper
//! triangle is unspecified (the blocked trailing update clobbers it).

use mttkrp_blas::{gemm_with, kernels, KernelSet, MatMut, MatRef, Scalar};

use crate::LinalgError;

/// Default panel (block) width of the blocked factorization. Chosen so
/// one `nb × nb` panel plus a packed GEMM strip stay cache-resident;
/// [`cholesky_in_place_with`] accepts any width for tuning.
pub const CHOL_PANEL: usize = 48;

/// Unblocked in-place lower Cholesky of the `n × n` view `a`
/// (the base-case kernel of the blocked factorization, and the
/// unblocked baseline the PR-8 bench compares against).
///
/// Reads only the lower triangle; leaves the strict upper untouched.
pub fn cholesky_unblocked<S: Scalar>(mut a: MatMut<'_, S>) -> Result<(), LinalgError> {
    let n = a.nrows();
    assert_eq!(a.ncols(), n, "matrix must be square");
    for j in 0..n {
        let mut d = unsafe { a.get_unchecked(j, j) };
        for k in 0..j {
            let ljk = unsafe { a.get_unchecked(j, k) };
            d -= ljk * ljk;
        }
        if d <= S::ZERO || !d.is_finite() {
            return Err(LinalgError::NotPositiveDefinite);
        }
        let ljj = d.sqrt();
        unsafe { a.set_unchecked(j, j, ljj) };
        let inv = S::ONE / ljj;
        for i in j + 1..n {
            let mut s = unsafe { a.get_unchecked(i, j) };
            for k in 0..j {
                s -= unsafe { a.get_unchecked(i, k) * a.get_unchecked(j, k) };
            }
            unsafe { a.set_unchecked(i, j, s * inv) };
        }
    }
    Ok(())
}

/// Blocked in-place lower Cholesky with the process-wide kernel set and
/// the default panel width. See [`cholesky_in_place_with`].
pub fn cholesky_in_place<S: Scalar>(a: MatMut<'_, S>) -> Result<(), LinalgError> {
    cholesky_in_place_with(kernels::<S>(), a, CHOL_PANEL)
}

/// Blocked right-looking in-place lower Cholesky: `A = L·Lᵀ` with `L`
/// left in the lower triangle of `a`. `nb` is the panel width (0 is
/// treated as the default); the trailing update runs as one
/// [`gemm_with`] per trailing block column on `ks`.
///
/// The strict upper triangle is unspecified on return.
pub fn cholesky_in_place_with<S: Scalar>(
    ks: &KernelSet<S>,
    a: MatMut<'_, S>,
    nb: usize,
) -> Result<(), LinalgError> {
    let n = a.nrows();
    assert_eq!(a.ncols(), n, "matrix must be square");
    let nb = if nb == 0 { CHOL_PANEL } else { nb };
    if n <= nb {
        return cholesky_unblocked(a);
    }

    let mut rest = a;
    let mut k = 0;
    while k < n {
        let kb = nb.min(n - k);
        // rest views a[k.., k..]; split off this panel's block column.
        let (col, trail) = rest.split_cols_at(kb);
        let (mut a11, mut a21) = col.split_rows_at(kb);
        cholesky_unblocked(a11.as_mut().submatrix(0, 0, kb, kb)).map_err(|_| {
            // Report which panel failed through the error kind only;
            // the caller escalates to LDLT/EVD regardless of position.
            LinalgError::NotPositiveDefinite
        })?;

        let below = n - k - kb;
        if below > 0 {
            // A21 ← A21 · L11⁻ᵀ (right triangular solve): column j of
            // the solved panel depends on already-solved columns < j.
            let l11 = a11.as_ref();
            for j in 0..kb {
                let inv = S::ONE / unsafe { l11.get_unchecked(j, j) };
                for i in 0..below {
                    let mut s = unsafe { a21.get_unchecked(i, j) };
                    for p in 0..j {
                        s -= unsafe { a21.get_unchecked(i, p) * l11.get_unchecked(j, p) };
                    }
                    unsafe { a21.set_unchecked(i, j, s * inv) };
                }
            }

            // Trailing update T ← T − A21·A21ᵀ, one GEMM per trailing
            // block column, skipping the blocks above the diagonal.
            let a21_ref = a21.as_ref();
            let mut t = trail.submatrix(kb, 0, below, below);
            let mut c0 = 0;
            while c0 < below {
                let cb = nb.min(below - c0);
                let rows = below - c0;
                let c_block = t.as_mut().submatrix(c0, c0, rows, cb);
                gemm_with(
                    ks,
                    -1.0,
                    a21_ref.submatrix(c0, 0, rows, kb),
                    a21_ref.submatrix(c0, 0, cb, kb).t(),
                    1.0,
                    c_block,
                );
                c0 += cb;
            }
            rest = t;
        } else {
            break;
        }
        k += kb;
    }
    Ok(())
}

/// Forward substitution `B ← L⁻¹·B` for a lower-triangular `L`
/// (diagonal included), blocked: substitution inside each `nb`-row
/// diagonal block, one GEMM to push the block's contribution into the
/// rows below.
pub fn solve_lower_in_place<S: Scalar>(ks: &KernelSet<S>, l: MatRef<'_, S>, mut b: MatMut<'_, S>) {
    let n = l.nrows();
    assert_eq!(l.ncols(), n, "factor must be square");
    assert_eq!(b.nrows(), n, "rhs rows must match factor");
    let nrhs = b.ncols();
    let nb = CHOL_PANEL;

    let mut k = 0;
    while k < n {
        let kb = nb.min(n - k);
        let lkk = l.submatrix(k, k, kb, kb);
        {
            let mut bk = b.as_mut().submatrix(k, 0, kb, nrhs);
            for j in 0..nrhs {
                for i in 0..kb {
                    let mut s = unsafe { bk.get_unchecked(i, j) };
                    for p in 0..i {
                        s -= unsafe { lkk.get_unchecked(i, p) * bk.get_unchecked(p, j) };
                    }
                    unsafe { bk.set_unchecked(i, j, s / lkk.get_unchecked(i, i)) };
                }
            }
        }
        let below = n - k - kb;
        if below > 0 {
            let (solved, lower) = b.as_mut().submatrix(k, 0, n - k, nrhs).split_rows_at(kb);
            gemm_with(
                ks,
                -1.0,
                l.submatrix(k + kb, k, below, kb),
                solved.as_ref(),
                1.0,
                lower,
            );
        }
        k += kb;
    }
}

/// Backward substitution `B ← L⁻ᵀ·B` given the lower-triangular `L`,
/// blocked like [`solve_lower_in_place`] but walking blocks bottom-up.
pub fn solve_lower_transpose_in_place<S: Scalar>(
    ks: &KernelSet<S>,
    l: MatRef<'_, S>,
    mut b: MatMut<'_, S>,
) {
    let n = l.nrows();
    assert_eq!(l.ncols(), n, "factor must be square");
    assert_eq!(b.nrows(), n, "rhs rows must match factor");
    let nrhs = b.ncols();
    let nb = CHOL_PANEL;

    let mut k = n;
    while k > 0 {
        let kb = nb.min(k);
        let k0 = k - kb;
        let lkk = l.submatrix(k0, k0, kb, kb);
        {
            let mut bk = b.as_mut().submatrix(k0, 0, kb, nrhs);
            for j in 0..nrhs {
                for i in (0..kb).rev() {
                    let mut s = unsafe { bk.get_unchecked(i, j) };
                    for p in i + 1..kb {
                        // (Lᵀ)ᵢₚ = Lₚᵢ within the diagonal block.
                        s -= unsafe { lkk.get_unchecked(p, i) * bk.get_unchecked(p, j) };
                    }
                    unsafe { bk.set_unchecked(i, j, s / lkk.get_unchecked(i, i)) };
                }
            }
        }
        if k0 > 0 {
            // Rows above this block: B[0..k0] −= (L[k0.., 0..k0])ᵀ · B[k0..k].
            let (upper, solved) = b.as_mut().submatrix(0, 0, k, nrhs).split_rows_at(k0);
            gemm_with(
                ks,
                -1.0,
                l.submatrix(k0, 0, kb, k0).t(),
                solved.as_ref(),
                1.0,
                upper,
            );
        }
        k = k0;
    }
}

/// Solve `A·X = B` in place given the Cholesky factor `L` of `A`
/// (forward then backward substitution on every column of `B`).
pub fn cholesky_solve_in_place<S: Scalar>(l: MatRef<'_, S>, b: MatMut<'_, S>) {
    let ks = kernels::<S>();
    let mut b = b;
    solve_lower_in_place(ks, l, b.as_mut());
    solve_lower_transpose_in_place(ks, l, b);
}

/// `out ← A⁻¹` from the Cholesky factor `L` of `A`: solve
/// `L·Lᵀ·X = I` by the two blocked triangular solves, then symmetrize
/// (the exact inverse is symmetric; averaging removes the rounding
/// skew so Gram solves stay symmetric downstream).
pub fn cholesky_inverse_into<S: Scalar>(
    ks: &KernelSet<S>,
    l: MatRef<'_, S>,
    mut out: MatMut<'_, S>,
) {
    let n = l.nrows();
    assert_eq!(out.nrows(), n, "output must be n x n");
    assert_eq!(out.ncols(), n, "output must be n x n");
    out.fill(S::ZERO);
    for i in 0..n {
        out.set(i, i, S::ONE);
    }
    solve_lower_in_place(ks, l, out.as_mut());
    solve_lower_transpose_in_place(ks, l, out.as_mut());
    let half = S::from_f64(0.5);
    for j in 0..n {
        for i in 0..j {
            let v = unsafe { (out.get_unchecked(i, j) + out.get_unchecked(j, i)) * half };
            unsafe {
                out.set_unchecked(i, j, v);
                out.set_unchecked(j, i, v);
            }
        }
    }
}

/// `(min, max)` of the factor diagonal in `f64` — the input to the
/// cheap condition estimate `κ(A) ≈ (max lᵢᵢ / min lᵢᵢ)²` that gates
/// the Cholesky→LDLT→EVD escalation policy.
pub fn factor_diag_extrema<S: Scalar>(l: MatRef<'_, S>) -> (f64, f64) {
    let n = l.nrows();
    let mut lo = f64::INFINITY;
    let mut hi = 0.0f64;
    for i in 0..n {
        let d = l.get(i, i).to_f64().abs();
        lo = lo.min(d);
        hi = hi.max(d);
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mttkrp_blas::Layout;

    fn spd_matrix(n: usize, seed: u64) -> Vec<f64> {
        // A = B Bᵀ + n·I is SPD.
        let mut state = seed | 1;
        let mut b = vec![0.0; n * n];
        for v in b.iter_mut() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *v = ((state >> 33) as f64 / (1u64 << 32) as f64) - 0.5;
        }
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += b[i + k * n] * b[j + k * n];
                }
                a[i + j * n] = s;
            }
        }
        for i in 0..n {
            a[i + i * n] += n as f64;
        }
        a
    }

    fn reconstruct_llt(l: &[f64], n: usize) -> Vec<f64> {
        let mut out = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..=usize::min(i, j) {
                    s += l[i + k * n] * l[j + k * n];
                }
                out[i + j * n] = s;
            }
        }
        out
    }

    #[test]
    fn unblocked_factor_reconstructs() {
        let n = 6;
        let a = spd_matrix(n, 3);
        let mut l = a.clone();
        cholesky_unblocked(MatMut::from_slice(&mut l, n, n, Layout::ColMajor)).unwrap();
        let back = reconstruct_llt(&l, n);
        for (x, y) in back.iter().zip(&a) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn blocked_matches_unblocked_across_sizes_and_panels() {
        for n in [1usize, 2, 7, 33, 64, 97, 150] {
            let a = spd_matrix(n, n as u64 + 5);
            let mut l_ref = a.clone();
            cholesky_unblocked(MatMut::from_slice(&mut l_ref, n, n, Layout::ColMajor)).unwrap();
            for nb in [1usize, 4, 17, 48, 200] {
                let mut l = a.clone();
                cholesky_in_place_with(
                    kernels::<f64>(),
                    MatMut::from_slice(&mut l, n, n, Layout::ColMajor),
                    nb,
                )
                .unwrap();
                // Compare lower triangles only (upper is unspecified).
                for j in 0..n {
                    for i in j..n {
                        let d = (l[i + j * n] - l_ref[i + j * n]).abs();
                        assert!(d < 1e-9, "n={n} nb={nb} ({i},{j}): {d}");
                    }
                }
            }
        }
    }

    #[test]
    fn blocked_works_on_row_major_views() {
        let n = 40;
        let a = spd_matrix(n, 11);
        // Row-major copy of the symmetric matrix is the same matrix.
        let mut rm = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                rm[i * n + j] = a[i + j * n];
            }
        }
        cholesky_in_place(MatMut::from_slice(&mut rm, n, n, Layout::RowMajor)).unwrap();
        let mut cm = a.clone();
        cholesky_in_place(MatMut::from_slice(&mut cm, n, n, Layout::ColMajor)).unwrap();
        for j in 0..n {
            for i in j..n {
                assert!((rm[i * n + j] - cm[i + j * n]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn solve_recovers_known_solution_multi_rhs() {
        let n = 37;
        let nrhs = 5;
        let a = spd_matrix(n, 9);
        let mut x_true = vec![0.0; n * nrhs];
        for (k, v) in x_true.iter_mut().enumerate() {
            *v = (k % 11) as f64 - 5.0;
        }
        // B = A · X_true (column-major).
        let mut b = vec![0.0; n * nrhs];
        for r in 0..nrhs {
            for i in 0..n {
                let mut s = 0.0;
                for j in 0..n {
                    s += a[i + j * n] * x_true[j + r * n];
                }
                b[i + r * n] = s;
            }
        }
        let mut l = a.clone();
        cholesky_in_place(MatMut::from_slice(&mut l, n, n, Layout::ColMajor)).unwrap();
        cholesky_solve_in_place(
            MatRef::from_slice(&l, n, n, Layout::ColMajor),
            MatMut::from_slice(&mut b, n, nrhs, Layout::ColMajor),
        );
        for (got, want) in b.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let n = 29;
        let a = spd_matrix(n, 21);
        let mut l = a.clone();
        cholesky_in_place(MatMut::from_slice(&mut l, n, n, Layout::ColMajor)).unwrap();
        let mut inv = vec![0.0; n * n];
        cholesky_inverse_into(
            kernels::<f64>(),
            MatRef::from_slice(&l, n, n, Layout::ColMajor),
            MatMut::from_slice(&mut inv, n, n, Layout::ColMajor),
        );
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += inv[i + k * n] * a[k + j * n];
                }
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((s - want).abs() < 1e-8, "({i},{j}): {s}");
            }
        }
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let mut a = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, -1
        assert_eq!(
            cholesky_in_place(MatMut::from_slice(&mut a, 2, 2, Layout::ColMajor)),
            Err(LinalgError::NotPositiveDefinite)
        );
    }

    #[test]
    fn f32_factor_reconstructs() {
        let n = 24;
        let a64 = spd_matrix(n, 77);
        let a: Vec<f32> = a64.iter().map(|&x| x as f32).collect();
        let mut l = a.clone();
        cholesky_in_place(MatMut::from_slice(&mut l, n, n, Layout::ColMajor)).unwrap();
        for i in 0..n {
            for j in 0..=i {
                let mut s = 0.0f64;
                for k in 0..=j {
                    s += (l[i + k * n] as f64) * (l[j + k * n] as f64);
                }
                let want = a[i + j * n] as f64;
                assert!((s - want).abs() < 1e-3 * (1.0 + want.abs()), "({i},{j})");
            }
        }
    }

    #[test]
    fn diag_extrema_reports_min_max() {
        let l = vec![2.0, 0.0, 0.0, 0.0, 0.5, 0.0, 0.0, 0.0, 4.0];
        let (lo, hi) = factor_diag_extrema(MatRef::from_slice(&l, 3, 3, Layout::ColMajor));
        assert_eq!(lo, 0.5);
        assert_eq!(hi, 4.0);
    }
}
