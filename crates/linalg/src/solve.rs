//! The Gram-solve escalation ladder: try Cholesky, fall back to pivoted
//! LDLᵀ, land on an EVD pseudoinverse.
//!
//! CP-ALS inverts one `R × R` Gram matrix per mode per sweep. Those
//! matrices are symmetric PSD and *usually* comfortably positive
//! definite, so the cheap blocked Cholesky wins almost every time — but
//! collinear factor columns make them rank-deficient or severely
//! ill-conditioned, and a naive Cholesky then either fails outright or
//! silently amplifies error. [`GramSolver`] encodes the policy:
//!
//! 1. **Cholesky** ([`crate::cholesky_in_place_with`]) — accepted when
//!    the factorization succeeds *and* the cheap condition estimate
//!    `κ ≈ (max lᵢᵢ / min lᵢᵢ)²` stays within
//!    [`GramSolver::set_cond_limit`].
//! 2. **Pivoted LDLᵀ** ([`crate::ldlt_factor_in_place`]) — accepted
//!    when the matrix is numerically full-rank; diagonal pivoting
//!    tolerates the near-semidefinite region where unpivoted Cholesky
//!    loses accuracy.
//! 3. **EVD pseudoinverse** ([`crate::sym_evd_in`]) — unconditional
//!    last resort, also the only rung that produces the Moore–Penrose
//!    inverse of a genuinely rank-deficient Gram.
//!
//! Every solve emits an `obs` span (`solve` with nested
//! `chol`/`ldlt`/`evd`/`jacobi`) and bumps `linalg.solves` plus a
//! per-variant `linalg.solves.<variant>` counter when `--metrics` is
//! on, so escalation hit rates are observable in traces and metric
//! dumps.

use mttkrp_blas::{gemm_with, kernels, Layout, MatMut, MatRef, Scalar};
use mttkrp_obs::{counter, metrics_enabled, span, span_full};

use crate::{
    cholesky_in_place_with, cholesky_inverse_into, factor_diag_extrema, ldlt_factor_in_place,
    ldlt_inverse_into, sym_evd_in, sym_pinv_into, LinalgError, PinvWorkspace, CHOL_PANEL,
};

/// Which rung of the escalation ladder produced a solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveVariant {
    /// Blocked LLᵀ Cholesky inverse.
    Cholesky,
    /// Diagonally pivoted LDLᵀ inverse.
    Ldlt,
    /// Pseudoinverse from the tridiagonal-QR symmetric EVD.
    EvdPinv,
    /// Pseudoinverse from the cyclic Jacobi oracle (forced only).
    JacobiOracle,
}

impl SolveVariant {
    /// Short lowercase label, used in metric names and logs.
    pub fn label(self) -> &'static str {
        match self {
            SolveVariant::Cholesky => "chol",
            SolveVariant::Ldlt => "ldlt",
            SolveVariant::EvdPinv => "evd",
            SolveVariant::JacobiOracle => "jacobi",
        }
    }
}

/// Solver selection policy for [`GramSolver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolvePolicy {
    /// Escalate Cholesky → LDLᵀ → EVD based on the condition estimate.
    #[default]
    Auto,
    /// Always use Cholesky; ill-conditioned input is an error.
    ForceCholesky,
    /// Always use pivoted LDLᵀ (rank-deficient input truncates).
    ForceLdlt,
    /// Always use the EVD pseudoinverse.
    ForceEvd,
    /// Always use the Jacobi pseudoinverse — the pre-existing slow path,
    /// kept as a bit-for-bit oracle for trajectory tests.
    ForceJacobi,
}

/// Reusable workspace + policy for symmetric-PSD inverse computations.
///
/// All scratch buffers grow on first use of a larger `n` and are
/// retained, so an iterative caller (CP-ALS does `N` solves per sweep)
/// performs **zero steady-state heap allocation**; call
/// [`GramSolver::reserve`] up front to move even the first-use growth
/// out of the hot loop.
#[derive(Debug)]
pub struct GramSolver<S: Scalar = f64> {
    policy: SolvePolicy,
    cond_limit: f64,
    panel: usize,
    buf: Vec<S>,
    w: Vec<S>,
    e: Vec<S>,
    vd: Vec<S>,
    perm: Vec<usize>,
    jac_a: Vec<f64>,
    jac_out: Vec<f64>,
    pinv: PinvWorkspace,
}

/// Default acceptance threshold for the Cholesky condition estimate.
pub const DEFAULT_COND_LIMIT: f64 = 1e8;

impl<S: Scalar> GramSolver<S> {
    /// Solver with the [`SolvePolicy::Auto`] escalation policy and the
    /// default condition limit ([`DEFAULT_COND_LIMIT`]).
    pub fn new() -> Self {
        GramSolver {
            policy: SolvePolicy::Auto,
            cond_limit: DEFAULT_COND_LIMIT,
            panel: CHOL_PANEL,
            buf: Vec::new(),
            w: Vec::new(),
            e: Vec::new(),
            vd: Vec::new(),
            perm: Vec::new(),
            jac_a: Vec::new(),
            jac_out: Vec::new(),
            pinv: PinvWorkspace::new(),
        }
    }

    /// Solver with an explicit policy.
    pub fn with_policy(policy: SolvePolicy) -> Self {
        let mut s = GramSolver::new();
        s.policy = policy;
        s
    }

    /// Replace the selection policy.
    pub fn set_policy(&mut self, policy: SolvePolicy) {
        self.policy = policy;
    }

    /// Current selection policy.
    pub fn policy(&self) -> SolvePolicy {
        self.policy
    }

    /// Replace the Cholesky condition-estimate acceptance threshold
    /// (values `<= 1` effectively force escalation past Cholesky).
    pub fn set_cond_limit(&mut self, limit: f64) {
        self.cond_limit = limit;
    }

    /// Grow every scratch buffer to `n × n` capacity so subsequent
    /// [`GramSolver::pinv_into`] calls at sizes `<= n` allocate nothing.
    pub fn reserve(&mut self, n: usize) {
        let nn = n * n;
        grow(&mut self.buf, nn, S::ZERO);
        grow(&mut self.w, n, S::ZERO);
        grow(&mut self.e, n, S::ZERO);
        grow(&mut self.vd, nn, S::ZERO);
        grow(&mut self.perm, n, 0usize);
        grow(&mut self.jac_a, nn, 0.0);
        grow(&mut self.jac_out, nn, 0.0);
        // Warm the Jacobi workspace through a trivial solve so its
        // internal buffers reach capacity too.
        if n > 0 {
            self.jac_a[..nn].fill(0.0);
            for i in 0..n {
                self.jac_a[i + i * n] = 1.0;
            }
            let (a, out) = (&self.jac_a[..nn], &mut self.jac_out[..nn]);
            let _ = sym_pinv_into(a, n, 0.0, &mut self.pinv, out);
        }
    }

    /// Symmetric-PSD (pseudo)inverse: writes `A†` into the column-major
    /// `n × n` `out`, choosing the factorization per the policy.
    /// Returns the variant that produced the result.
    ///
    /// `a` is a column-major `n × n` symmetric matrix (lower triangle
    /// authoritative). `rcond <= 0` uses the default `n · ε` relative
    /// cutoff for rank truncation on the LDLᵀ and EVD rungs.
    pub fn pinv_into(
        &mut self,
        a: &[S],
        n: usize,
        rcond: f64,
        out: &mut [S],
    ) -> Result<SolveVariant, LinalgError> {
        assert_eq!(a.len(), n * n, "matrix must be n x n");
        assert_eq!(out.len(), n * n, "output must be n x n");
        let _solve_span = span!("solve", n = n);
        let variant = self.dispatch(a, n, rcond, out)?;
        if metrics_enabled() {
            counter!("linalg.solves").incr();
            match variant {
                SolveVariant::Cholesky => counter!("linalg.solves.chol").incr(),
                SolveVariant::Ldlt => counter!("linalg.solves.ldlt").incr(),
                SolveVariant::EvdPinv => counter!("linalg.solves.evd").incr(),
                SolveVariant::JacobiOracle => counter!("linalg.solves.jacobi").incr(),
            }
        }
        Ok(variant)
    }

    fn dispatch(
        &mut self,
        a: &[S],
        n: usize,
        rcond: f64,
        out: &mut [S],
    ) -> Result<SolveVariant, LinalgError> {
        match self.policy {
            SolvePolicy::Auto => {
                if self.try_cholesky(a, n, out).is_ok() {
                    return Ok(SolveVariant::Cholesky);
                }
                if let Ok(rank) = self.try_ldlt(a, n, rcond, out) {
                    if rank == n {
                        return Ok(SolveVariant::Ldlt);
                    }
                }
                self.evd_pinv(a, n, rcond, out)?;
                Ok(SolveVariant::EvdPinv)
            }
            SolvePolicy::ForceCholesky => {
                self.try_cholesky(a, n, out)?;
                Ok(SolveVariant::Cholesky)
            }
            SolvePolicy::ForceLdlt => {
                self.try_ldlt(a, n, rcond, out)?;
                Ok(SolveVariant::Ldlt)
            }
            SolvePolicy::ForceEvd => {
                self.evd_pinv(a, n, rcond, out)?;
                Ok(SolveVariant::EvdPinv)
            }
            SolvePolicy::ForceJacobi => {
                self.jacobi_pinv(a, n, rcond, out)?;
                Ok(SolveVariant::JacobiOracle)
            }
        }
    }

    /// Cholesky rung: factor, check the diagonal condition estimate,
    /// invert. Errors when the factorization fails or the estimate
    /// exceeds [`GramSolver::set_cond_limit`].
    fn try_cholesky(&mut self, a: &[S], n: usize, out: &mut [S]) -> Result<(), LinalgError> {
        let _span = span_full!("chol", n = n);
        grow(&mut self.buf, n * n, S::ZERO);
        let buf = &mut self.buf[..n * n];
        buf.copy_from_slice(a);
        let ks = kernels::<S>();
        cholesky_in_place_with(
            ks,
            MatMut::from_slice(buf, n, n, Layout::ColMajor),
            self.panel,
        )?;
        let (dmin, dmax) = factor_diag_extrema(MatRef::from_slice(buf, n, n, Layout::ColMajor));
        // κ(A) ≈ (max lᵢᵢ / min lᵢᵢ)² — cheap and within a modest
        // factor of the true 2-norm condition number for Gram matrices.
        if dmin <= 0.0 || (dmax / dmin) * (dmax / dmin) > self.cond_limit {
            return Err(LinalgError::NotPositiveDefinite);
        }
        cholesky_inverse_into(
            ks,
            MatRef::from_slice(buf, n, n, Layout::ColMajor),
            MatMut::from_slice(out, n, n, Layout::ColMajor),
        );
        Ok(())
    }

    /// LDLᵀ rung: pivoted factor + generalized inverse. Returns the
    /// numerical rank so `Auto` can reject rank-deficient results.
    fn try_ldlt(
        &mut self,
        a: &[S],
        n: usize,
        rcond: f64,
        out: &mut [S],
    ) -> Result<usize, LinalgError> {
        let _span = span_full!("ldlt", n = n);
        grow(&mut self.buf, n * n, S::ZERO);
        grow(&mut self.perm, n, 0usize);
        let buf = &mut self.buf[..n * n];
        buf.copy_from_slice(a);
        let perm = &mut self.perm[..n];
        let rank =
            ldlt_factor_in_place(MatMut::from_slice(buf, n, n, Layout::ColMajor), perm, rcond)?;
        ldlt_inverse_into(
            MatRef::from_slice(buf, n, n, Layout::ColMajor),
            perm,
            rank,
            MatMut::from_slice(out, n, n, Layout::ColMajor),
        );
        Ok(rank)
    }

    /// EVD rung: `A† = V·diag(w†)·Vᵀ` with eigenvalues below
    /// `rcond · max|w|` truncated to zero.
    fn evd_pinv(
        &mut self,
        a: &[S],
        n: usize,
        rcond: f64,
        out: &mut [S],
    ) -> Result<(), LinalgError> {
        let _span = span_full!("evd", n = n);
        grow(&mut self.buf, n * n, S::ZERO);
        grow(&mut self.w, n, S::ZERO);
        grow(&mut self.e, n, S::ZERO);
        grow(&mut self.vd, n * n, S::ZERO);
        let buf = &mut self.buf[..n * n];
        buf.copy_from_slice(a);
        // sym_evd_in reads both triangles; mirror the authoritative
        // lower triangle up.
        for j in 0..n {
            for i in j + 1..n {
                buf[j + i * n] = buf[i + j * n];
            }
        }
        sym_evd_in(
            MatMut::from_slice(buf, n, n, Layout::ColMajor),
            &mut self.w[..n],
            &mut self.e[..n],
        )?;
        let w = &self.w[..n];
        let v = &self.buf[..n * n];
        let wmax = w.iter().fold(0.0f64, |m, &x| m.max(x.to_f64().abs()));
        let cut = if rcond > 0.0 {
            rcond
        } else {
            n as f64 * S::EPSILON.to_f64()
        } * wmax;
        let vd = &mut self.vd[..n * n];
        vd.copy_from_slice(v);
        for (j, &wj) in w.iter().enumerate() {
            let wjf = wj.to_f64();
            let inv = if wjf.abs() > cut {
                S::from_f64(1.0 / wjf)
            } else {
                S::ZERO
            };
            for i in 0..n {
                vd[i + j * n] *= inv;
            }
        }
        gemm_with(
            kernels::<S>(),
            1.0,
            MatRef::from_slice(vd, n, n, Layout::ColMajor),
            MatRef::from_slice(v, n, n, Layout::ColMajor).t(),
            0.0,
            MatMut::from_slice(out, n, n, Layout::ColMajor),
        );
        Ok(())
    }

    /// Jacobi oracle rung: round-trips through the f64 cyclic-Jacobi
    /// pseudoinverse that predates the escalation ladder.
    fn jacobi_pinv(
        &mut self,
        a: &[S],
        n: usize,
        rcond: f64,
        out: &mut [S],
    ) -> Result<(), LinalgError> {
        let _span = span_full!("jacobi", n = n);
        grow(&mut self.jac_a, n * n, 0.0);
        grow(&mut self.jac_out, n * n, 0.0);
        let jac_a = &mut self.jac_a[..n * n];
        for (dst, src) in jac_a.iter_mut().zip(a.iter()) {
            *dst = src.to_f64();
        }
        // Mirror the lower triangle up, matching the other rungs.
        for j in 0..n {
            for i in j + 1..n {
                jac_a[j + i * n] = jac_a[i + j * n];
            }
        }
        let jac_out = &mut self.jac_out[..n * n];
        sym_pinv_into(jac_a, n, rcond, &mut self.pinv, jac_out)?;
        for (dst, src) in out.iter_mut().zip(jac_out.iter()) {
            *dst = S::from_f64(*src);
        }
        Ok(())
    }
}

impl<S: Scalar> Default for GramSolver<S> {
    fn default() -> Self {
        GramSolver::new()
    }
}

/// Grow `v` to at least `len`, filling new slots with `fill`; never
/// shrinks, so steady-state callers re-use capacity.
fn grow<T: Clone>(v: &mut Vec<T>, len: usize, fill: T) {
    if v.len() < len {
        v.resize(len, fill);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_matrix(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed | 1;
        let mut b = vec![0.0; n * n];
        for v in b.iter_mut() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *v = ((state >> 33) as f64 / (1u64 << 32) as f64) - 0.5;
        }
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += b[i + k * n] * b[j + k * n];
                }
                a[i + j * n] = s;
            }
        }
        for i in 0..n {
            a[i + i * n] += n as f64;
        }
        a
    }

    fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn auto_uses_cholesky_on_well_conditioned_input() {
        let n = 20;
        let a = spd_matrix(n, 3);
        let mut solver = GramSolver::<f64>::new();
        let mut out = vec![0.0; n * n];
        let v = solver.pinv_into(&a, n, 0.0, &mut out).unwrap();
        assert_eq!(v, SolveVariant::Cholesky);
        // out · a ≈ I
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += out[i + k * n] * a[k + j * n];
                }
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((s - want).abs() < 1e-9, "({i},{j}): {s}");
            }
        }
    }

    #[test]
    fn auto_escalates_to_evd_on_rank_deficient_input() {
        // Rank-1 PSD: Cholesky fails, LDLT reports rank < n, EVD wins.
        let n = 6;
        let x: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                a[i + j * n] = x[i] * x[j];
            }
        }
        let mut solver = GramSolver::<f64>::new();
        let mut out = vec![0.0; n * n];
        let v = solver.pinv_into(&a, n, 0.0, &mut out).unwrap();
        assert_eq!(v, SolveVariant::EvdPinv);
        // Closed form: (x xᵀ)† = x xᵀ / ‖x‖⁴.
        let norm4 = x.iter().map(|v| v * v).sum::<f64>().powi(2);
        for i in 0..n {
            for j in 0..n {
                assert!((out[i + j * n] - x[i] * x[j] / norm4).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn all_variants_agree_on_spd_input() {
        let n = 16;
        let a = spd_matrix(n, 9);
        let mut reference = vec![0.0; n * n];
        GramSolver::<f64>::with_policy(SolvePolicy::ForceJacobi)
            .pinv_into(&a, n, 0.0, &mut reference)
            .unwrap();
        for policy in [
            SolvePolicy::Auto,
            SolvePolicy::ForceCholesky,
            SolvePolicy::ForceLdlt,
            SolvePolicy::ForceEvd,
        ] {
            let mut out = vec![0.0; n * n];
            GramSolver::<f64>::with_policy(policy)
                .pinv_into(&a, n, 0.0, &mut out)
                .unwrap();
            assert!(
                max_abs_diff(&out, &reference) < 1e-10,
                "policy {policy:?} diverged"
            );
        }
    }

    #[test]
    fn force_cholesky_rejects_singular_input() {
        let n = 3;
        let a = vec![0.0; n * n];
        let mut out = vec![0.0; n * n];
        assert!(GramSolver::<f64>::with_policy(SolvePolicy::ForceCholesky)
            .pinv_into(&a, n, 0.0, &mut out)
            .is_err());
    }

    #[test]
    fn tight_cond_limit_escalates_past_cholesky() {
        let n = 8;
        let a = spd_matrix(n, 21);
        let mut solver = GramSolver::<f64>::new();
        solver.set_cond_limit(0.5); // impossible: κ ≥ 1 always
        let mut out = vec![0.0; n * n];
        let v = solver.pinv_into(&a, n, 0.0, &mut out).unwrap();
        assert_eq!(v, SolveVariant::Ldlt);
    }

    #[test]
    fn f32_solver_matches_f64_to_single_precision() {
        let n = 10;
        let a64 = spd_matrix(n, 31);
        let a32: Vec<f32> = a64.iter().map(|&x| x as f32).collect();
        let mut out64 = vec![0.0f64; n * n];
        let mut out32 = vec![0.0f32; n * n];
        GramSolver::<f64>::new()
            .pinv_into(&a64, n, 0.0, &mut out64)
            .unwrap();
        GramSolver::<f32>::new()
            .pinv_into(&a32, n, 0.0, &mut out32)
            .unwrap();
        for (x, y) in out32.iter().zip(&out64) {
            assert!((*x as f64 - y).abs() < 1e-3 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn reserve_then_solve_is_allocation_stable() {
        // Behavioural check (the real counting-allocator proof lives in
        // the workspace-level tests): buffers must not shrink between
        // calls of different sizes.
        let mut solver = GramSolver::<f64>::new();
        solver.reserve(12);
        for n in [12usize, 5, 12] {
            let a = spd_matrix(n, n as u64);
            let mut out = vec![0.0; n * n];
            solver.pinv_into(&a, n, 0.0, &mut out).unwrap();
        }
    }
}
