//! Cyclic Jacobi symmetric eigendecomposition and the symmetric
//! pseudoinverse built on it — kept as the **test oracle**.
//!
//! CP-ALS applies `H†` where `H` is the Hadamard product of Gram
//! matrices — symmetric PSD but possibly rank-deficient (collinear
//! factor columns). The Jacobi method is slow (O(n³) per sweep, many
//! sweeps) but unconditionally robust and easy to audit, so it anchors
//! the correctness tests for the production path: the tridiagonal-QR
//! EVD in [`crate::evd`] and the [`crate::GramSolver`] escalation
//! ladder are validated against it, and
//! [`crate::SolvePolicy::ForceJacobi`] routes production solves through
//! it for trajectory-equivalence tests.

use crate::LinalgError;

/// Maximum number of full Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 64;

/// Symmetric eigendecomposition `A = V·diag(w)·Vᵀ` by the cyclic Jacobi
/// method. `a` is a column-major `n × n` symmetric matrix (destroyed);
/// returns `(w, v)` with eigenvalues unsorted and eigenvectors in the
/// columns of the column-major `v`.
pub fn jacobi_eigh(a: &mut [f64], n: usize) -> Result<(Vec<f64>, Vec<f64>), LinalgError> {
    let mut w = vec![0.0; n];
    let mut v = vec![0.0; n * n];
    jacobi_eigh_in(a, n, &mut w, &mut v)?;
    Ok((w, v))
}

/// Allocation-free [`jacobi_eigh`]: eigenvalues land in `w` (length
/// `n`) and eigenvectors in the columns of the column-major `v`
/// (length `n·n`), both fully overwritten.
pub fn jacobi_eigh_in(
    a: &mut [f64],
    n: usize,
    w: &mut [f64],
    v: &mut [f64],
) -> Result<(), LinalgError> {
    assert_eq!(a.len(), n * n, "matrix must be n x n");
    assert_eq!(w.len(), n, "eigenvalue buffer must have length n");
    assert_eq!(v.len(), n * n, "eigenvector buffer must be n x n");
    v.fill(0.0);
    for i in 0..n {
        v[i + i * n] = 1.0;
    }
    if n == 1 {
        w[0] = a[0];
        return Ok(());
    }

    let norm: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let tol = f64::EPSILON * norm.max(f64::MIN_POSITIVE);

    for _sweep in 0..MAX_SWEEPS {
        // Off-diagonal Frobenius norm.
        let mut off = 0.0;
        for j in 0..n {
            for i in 0..j {
                off += a[i + j * n] * a[i + j * n];
            }
        }
        if off.sqrt() <= tol {
            for i in 0..n {
                w[i] = a[i + i * n];
            }
            return Ok(());
        }
        for p in 0..n - 1 {
            for q in p + 1..n {
                let apq = a[p + q * n];
                if apq.abs() <= tol / (n as f64) {
                    continue;
                }
                let app = a[p + p * n];
                let aqq = a[q + q * n];
                // Rotation angle (Golub & Van Loan, symmetric Schur).
                let tau = (aqq - app) / (2.0 * apq);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // A ← JᵀAJ applied to rows/columns p and q.
                for k in 0..n {
                    let akp = a[k + p * n];
                    let akq = a[k + q * n];
                    a[k + p * n] = c * akp - s * akq;
                    a[k + q * n] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[p + k * n];
                    let aqk = a[q + k * n];
                    a[p + k * n] = c * apk - s * aqk;
                    a[q + k * n] = s * apk + c * aqk;
                }
                // Accumulate V ← V·J.
                for k in 0..n {
                    let vkp = v[k + p * n];
                    let vkq = v[k + q * n];
                    v[k + p * n] = c * vkp - s * vkq;
                    v[k + q * n] = s * vkp + c * vkq;
                }
            }
        }
    }
    Err(LinalgError::NoConvergence)
}

/// Moore–Penrose pseudoinverse of a symmetric matrix:
/// `A† = V·diag(1/w_i where |w_i| > rcond·max|w|)·Vᵀ`.
///
/// `rcond <= 0` uses the default `n · ε`.
pub fn sym_pinv(a: &[f64], n: usize, rcond: f64) -> Result<Vec<f64>, LinalgError> {
    let mut ws = PinvWorkspace::new();
    let mut out = vec![0.0; n * n];
    sym_pinv_into(a, n, rcond, &mut ws, &mut out)?;
    Ok(out)
}

/// Reusable scratch of [`sym_pinv_into`]: holds the Jacobi working
/// copy, eigenpairs, and the `V·diag(w†)` intermediate. Buffers grow
/// on first use of a larger `n` and are retained, so an iterative
/// solver (e.g. the CP-ALS factor update, `N` solves per sweep)
/// performs no steady-state heap allocation.
#[derive(Debug, Default)]
pub struct PinvWorkspace {
    a: Vec<f64>,
    w: Vec<f64>,
    v: Vec<f64>,
    vd: Vec<f64>,
}

impl PinvWorkspace {
    /// Empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        PinvWorkspace::default()
    }
}

/// Allocation-free [`sym_pinv`]: writes `A†` into the column-major
/// `n × n` `out` using `ws` for every intermediate.
pub fn sym_pinv_into(
    a: &[f64],
    n: usize,
    rcond: f64,
    ws: &mut PinvWorkspace,
    out: &mut [f64],
) -> Result<(), LinalgError> {
    assert_eq!(a.len(), n * n, "matrix must be n x n");
    assert_eq!(out.len(), n * n, "output must be n x n");
    ws.a.clear();
    ws.a.extend_from_slice(a);
    ws.w.clear();
    ws.w.resize(n, 0.0);
    ws.v.clear();
    ws.v.resize(n * n, 0.0);
    jacobi_eigh_in(&mut ws.a, n, &mut ws.w, &mut ws.v)?;
    let (w, v) = (&ws.w, &ws.v);
    let wmax = w.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
    let cut = if rcond > 0.0 {
        rcond
    } else {
        n as f64 * f64::EPSILON
    } * wmax;

    // A† = V · diag(w†) · Vᵀ, assembled as (V·diag) · Vᵀ with the
    // transpose folded into the accumulation loop (no Vᵀ buffer).
    ws.vd.clear();
    ws.vd.extend_from_slice(v);
    for (j, &wj) in w.iter().enumerate() {
        let inv = if wj.abs() > cut { 1.0 / wj } else { 0.0 };
        for i in 0..n {
            ws.vd[i + j * n] *= inv;
        }
    }
    out.fill(0.0);
    for j in 0..n {
        for p in 0..n {
            let vjp = v[j + p * n];
            if vjp != 0.0 {
                for i in 0..n {
                    out[i + j * n] += ws.vd[i + p * n] * vjp;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul_nn;

    fn sym_mat(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed | 1;
        let mut a = vec![0.0; n * n];
        for j in 0..n {
            for i in 0..=j {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let x = ((state >> 33) as f64 / (1u64 << 32) as f64) - 0.5;
                a[i + j * n] = x;
                a[j + i * n] = x;
            }
        }
        a
    }

    fn reconstruct(w: &[f64], v: &[f64], n: usize) -> Vec<f64> {
        let mut vd = v.to_vec();
        for (j, &wj) in w.iter().enumerate() {
            for i in 0..n {
                vd[i + j * n] *= wj;
            }
        }
        let mut vt = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                vt[i + j * n] = v[j + i * n];
            }
        }
        matmul_nn(&vd, &vt, n)
    }

    #[test]
    fn eigendecomposition_reconstructs() {
        for n in [1usize, 2, 3, 6, 10] {
            let a = sym_mat(n, n as u64 + 1);
            let mut work = a.clone();
            let (w, v) = jacobi_eigh(&mut work, n).unwrap();
            let back = reconstruct(&w, &v, n);
            for (x, y) in back.iter().zip(&a) {
                assert!((x - y).abs() < 1e-10, "n={n}");
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let n = 7;
        let a = sym_mat(n, 44);
        let mut work = a.clone();
        let (_, v) = jacobi_eigh(&mut work, n).unwrap();
        for i in 0..n {
            for j in 0..n {
                let dot: f64 = (0..n).map(|k| v[k + i * n] * v[k + j * n]).sum();
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((dot - want).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn diagonal_matrix_eigenvalues_are_diagonal() {
        let n = 4;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i + i * n] = (i + 1) as f64;
        }
        let (mut w, _) = jacobi_eigh(&mut a, n).unwrap();
        w.sort_by(|x, y| x.partial_cmp(y).unwrap());
        for i in 0..n {
            assert!((w[i] - (i + 1) as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn pinv_of_invertible_is_inverse() {
        let n = 5;
        // SPD matrix: A = B + Bᵀ + 2n·I.
        let mut a = sym_mat(n, 17);
        for i in 0..n {
            a[i + i * n] += 2.0 * n as f64;
        }
        let p = sym_pinv(&a, n, 0.0).unwrap();
        let prod = matmul_nn(&p, &a, n);
        for i in 0..n {
            for j in 0..n {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((prod[i + j * n] - want).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn pinv_of_rank_deficient_satisfies_penrose() {
        // A = x xᵀ (rank 1). A† = x xᵀ / ‖x‖⁴.
        let n = 4;
        let x = [1.0, 2.0, -1.0, 0.5];
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                a[i + j * n] = x[i] * x[j];
            }
        }
        let p = sym_pinv(&a, n, 0.0).unwrap();
        // Penrose condition: A·A†·A = A.
        let apa = matmul_nn(&matmul_nn(&a, &p, n), &a, n);
        for (u, v) in apa.iter().zip(&a) {
            assert!((u - v).abs() < 1e-9);
        }
        // Closed form check.
        let norm4 = x.iter().map(|v| v * v).sum::<f64>().powi(2);
        for i in 0..n {
            for j in 0..n {
                assert!((p[i + j * n] - x[i] * x[j] / norm4).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn pinv_of_zero_is_zero() {
        let p = sym_pinv(&[0.0; 9], 3, 0.0).unwrap();
        assert!(p.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn pinv_into_reuses_workspace_and_matches_allocating_path() {
        let mut ws = PinvWorkspace::new();
        // Mixed sizes in one workspace: buffers grow and shrink-fit
        // logically while staying reusable.
        for n in [5usize, 3, 7, 5] {
            let mut a = sym_mat(n, 100 + n as u64);
            for i in 0..n {
                a[i + i * n] += 2.0 * n as f64;
            }
            let want = sym_pinv(&a, n, 0.0).unwrap();
            let mut got = vec![f64::NAN; n * n];
            sym_pinv_into(&a, n, 0.0, &mut ws, &mut got).unwrap();
            for (x, y) in got.iter().zip(&want) {
                assert!((x - y).abs() < 1e-14 * (1.0 + y.abs()), "n={n}");
            }
        }
    }
}
