//! Diagonally pivoted LDLᵀ factorization for symmetric positive
//! **semi**-definite matrices — the middle rung of the Gram-solve
//! escalation ladder.
//!
//! `Pᵀ·A·P = L·D·Lᵀ` with `L` unit lower triangular and `D` diagonal,
//! pivoting on the largest remaining diagonal entry each step (for a
//! PSD matrix that entry *is* the largest remaining element, so this is
//! the rank-revealing "pivoted Cholesky" ordering). Factorization stops
//! at the numerical rank: the first step whose pivot falls below
//! `tol · max_diag` truncates `D` to zeros, which is exactly the
//! behaviour a rank-deficient CP-ALS Gram needs.
//!
//! Storage: `L`'s strict lower triangle and `D` on the diagonal of the
//! factored matrix (unit diagonal of `L` implicit); the strict upper
//! triangle is unspecified.

use mttkrp_blas::{MatMut, MatRef, Scalar};

use crate::LinalgError;

/// In-place diagonally pivoted LDLᵀ of the symmetric `n × n` view `a`
/// (lower triangle read). `perm` (length `n`) receives the pivot row
/// chosen at each step, LAPACK `ipiv`-style: at step `k`, rows/columns
/// `k` and `perm[k]` were exchanged. `tol_rel` is the relative pivot
/// cutoff (`<= 0` uses `n·ε` of the storage type); returns the
/// numerical rank.
///
/// Fails only on a *negative* pivot beyond round-off (the matrix is
/// then indefinite, not PSD).
pub fn ldlt_factor_in_place<S: Scalar>(
    mut a: MatMut<'_, S>,
    perm: &mut [usize],
    tol_rel: f64,
) -> Result<usize, LinalgError> {
    let n = a.nrows();
    assert_eq!(a.ncols(), n, "matrix must be square");
    assert_eq!(perm.len(), n, "permutation buffer must have length n");
    if n == 0 {
        return Ok(0);
    }

    let mut max_diag = 0.0f64;
    for i in 0..n {
        let d = a.get(i, i).to_f64();
        if !d.is_finite() {
            return Err(LinalgError::NotPositiveDefinite);
        }
        max_diag = max_diag.max(d.abs());
    }
    let tol_rel = if tol_rel > 0.0 {
        tol_rel
    } else {
        n as f64 * S::EPSILON.to_f64()
    };
    let cut = tol_rel * max_diag;
    // Pivots in (−neg_floor, cut] truncate as rank deficiency; anything
    // more negative means the matrix was not PSD to begin with.
    let neg_floor = (n as f64) * S::EPSILON.to_f64().sqrt() * max_diag.max(1.0);

    let mut rank = n;
    for k in 0..n {
        // Largest remaining diagonal entry.
        let mut p = k;
        let mut dmax = a.get(k, k).to_f64();
        for i in k + 1..n {
            let d = a.get(i, i).to_f64();
            if d > dmax {
                dmax = d;
                p = i;
            }
        }
        let d = dmax;
        if d <= cut {
            if d < -neg_floor {
                return Err(LinalgError::NotPositiveDefinite);
            }
            // Numerical rank reached: zero the remaining D entries and
            // leave the remaining L columns as (implicit) identity.
            rank = k;
            for i in k..n {
                a.set(i, i, S::ZERO);
                for j in k..i {
                    a.set(i, j, S::ZERO);
                }
            }
            // Identity from here on: applying/unapplying the
            // permutation stays well-defined over the full length.
            for (i, slot) in perm.iter_mut().enumerate().skip(k) {
                *slot = i;
            }
            break;
        }

        perm[k] = p;
        if p != k {
            swap_sym_lower(&mut a, k, p);
        }

        let dk = S::from_f64(d);
        // l[i,k] = a[i,k] / d; trailing lower update
        // a[i,j] −= l[i,k]·d·l[j,k] (j ≤ i).
        for i in k + 1..n {
            let lik = unsafe { a.get_unchecked(i, k) } / dk;
            unsafe { a.set_unchecked(i, k, lik) };
        }
        for j in k + 1..n {
            let ljk_d = unsafe { a.get_unchecked(j, k) } * dk;
            for i in j..n {
                let v = unsafe { a.get_unchecked(i, j) - a.get_unchecked(i, k) * ljk_d };
                unsafe { a.set_unchecked(i, j, v) };
            }
        }
    }
    Ok(rank)
}

/// Symmetric row/column exchange `k ↔ p` (`p > k`) touching only the
/// lower triangle.
fn swap_sym_lower<S: Scalar>(a: &mut MatMut<'_, S>, k: usize, p: usize) {
    let n = a.nrows();
    // Columns left of k: rows k and p both live below the diagonal.
    for j in 0..k {
        let x = a.get(k, j);
        let y = a.get(p, j);
        a.set(k, j, y);
        a.set(p, j, x);
    }
    // Diagonal entries.
    let dk = a.get(k, k);
    let dp = a.get(p, p);
    a.set(k, k, dp);
    a.set(p, p, dk);
    // Strip strictly between k and p: (i,k) ↔ (p,i).
    for i in k + 1..p {
        let x = a.get(i, k);
        let y = a.get(p, i);
        a.set(i, k, y);
        a.set(p, i, x);
    }
    // Rows below p: (i,k) ↔ (i,p).
    for i in p + 1..n {
        let x = a.get(i, k);
        let y = a.get(i, p);
        a.set(i, k, y);
        a.set(i, p, x);
    }
}

/// Apply the recorded exchanges to the rows of `b` (forward order:
/// `B ← Pᵀ·B`, matching the factored ordering).
fn permute_rows_forward<S: Scalar>(b: &mut MatMut<'_, S>, perm: &[usize]) {
    for (k, &p) in perm.iter().enumerate() {
        if p != k {
            for j in 0..b.ncols() {
                let x = b.get(k, j);
                let y = b.get(p, j);
                b.set(k, j, y);
                b.set(p, j, x);
            }
        }
    }
}

/// Undo the recorded exchanges on the rows of `b` (reverse order:
/// `B ← P·B`).
fn permute_rows_backward<S: Scalar>(b: &mut MatMut<'_, S>, perm: &[usize]) {
    for (k, &p) in perm.iter().enumerate().rev() {
        if p != k {
            for j in 0..b.ncols() {
                let x = b.get(k, j);
                let y = b.get(p, j);
                b.set(k, j, y);
                b.set(p, j, x);
            }
        }
    }
}

/// Solve `A·X ≈ B` in place from [`ldlt_factor_in_place`] output.
/// Within the numerical rank this is exact; beyond it the truncated
/// `D† = 0` components are dropped, which yields a `{1,2}`-generalized
/// inverse solution for consistent (range-of-`A`) right-hand sides.
pub fn ldlt_solve_in_place<S: Scalar>(
    factor: MatRef<'_, S>,
    perm: &[usize],
    rank: usize,
    mut b: MatMut<'_, S>,
) {
    let n = factor.nrows();
    assert_eq!(factor.ncols(), n, "factor must be square");
    assert_eq!(perm.len(), n, "permutation must have length n");
    assert_eq!(b.nrows(), n, "rhs rows must match factor");
    let nrhs = b.ncols();

    permute_rows_forward(&mut b, perm);
    // Forward: unit-lower L y = b (columns 0..rank carry data; the
    // rest of L is identity).
    for j in 0..nrhs {
        for i in 1..n {
            let lim = rank.min(i);
            let mut s = b.get(i, j);
            for k in 0..lim {
                s -= unsafe { factor.get_unchecked(i, k) } * b.get(k, j);
            }
            b.set(i, j, s);
        }
    }
    // D†: divide the leading `rank` components, zero the rest.
    for i in 0..n {
        if i < rank {
            let d = factor.get(i, i);
            for j in 0..nrhs {
                let v = b.get(i, j) / d;
                b.set(i, j, v);
            }
        } else {
            for j in 0..nrhs {
                b.set(i, j, S::ZERO);
            }
        }
    }
    // Backward: unit-upper Lᵀ x = y.
    for j in 0..nrhs {
        for i in (0..n.min(rank)).rev() {
            let mut s = b.get(i, j);
            for k in i + 1..n {
                s -= unsafe { factor.get_unchecked(k, i) } * b.get(k, j);
            }
            b.set(i, j, s);
        }
    }
    permute_rows_backward(&mut b, perm);
}

/// `out ← A⁻` (a symmetric `{1,2}`-generalized inverse; the true
/// inverse when `rank == n`) from [`ldlt_factor_in_place`] output,
/// assembled by solving against the identity and symmetrizing.
pub fn ldlt_inverse_into<S: Scalar>(
    factor: MatRef<'_, S>,
    perm: &[usize],
    rank: usize,
    mut out: MatMut<'_, S>,
) {
    let n = factor.nrows();
    assert_eq!(out.nrows(), n, "output must be n x n");
    assert_eq!(out.ncols(), n, "output must be n x n");
    out.fill(S::ZERO);
    for i in 0..n {
        out.set(i, i, S::ONE);
    }
    ldlt_solve_in_place(factor, perm, rank, out.as_mut());
    let half = S::from_f64(0.5);
    for j in 0..n {
        for i in 0..j {
            let v = (out.get(i, j) + out.get(j, i)) * half;
            out.set(i, j, v);
            out.set(j, i, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mttkrp_blas::Layout;

    fn spd_matrix(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed | 1;
        let mut b = vec![0.0; n * n];
        for v in b.iter_mut() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *v = ((state >> 33) as f64 / (1u64 << 32) as f64) - 0.5;
        }
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += b[i + k * n] * b[j + k * n];
                }
                a[i + j * n] = s;
            }
        }
        for i in 0..n {
            a[i + i * n] += n as f64;
        }
        a
    }

    /// Rank-r PSD matrix built from r outer products.
    fn psd_rank(n: usize, r: usize, seed: u64) -> Vec<f64> {
        let mut state = seed | 1;
        let mut a = vec![0.0; n * n];
        for _ in 0..r {
            let x: Vec<f64> = (0..n)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) as f64 / (1u64 << 32) as f64) - 0.5
                })
                .collect();
            for i in 0..n {
                for j in 0..n {
                    a[i + j * n] += x[i] * x[j];
                }
            }
        }
        a
    }

    fn solve_full(a: &[f64], n: usize, b0: &[f64]) -> Vec<f64> {
        let mut f = a.to_vec();
        let mut perm = vec![0usize; n];
        let rank = ldlt_factor_in_place(
            MatMut::from_slice(&mut f, n, n, Layout::ColMajor),
            &mut perm,
            0.0,
        )
        .unwrap();
        let mut b = b0.to_vec();
        ldlt_solve_in_place(
            MatRef::from_slice(&f, n, n, Layout::ColMajor),
            &perm,
            rank,
            MatMut::from_slice(&mut b, n, 1, Layout::ColMajor),
        );
        b
    }

    #[test]
    fn full_rank_solve_recovers_solution() {
        for n in [1usize, 2, 5, 13] {
            let a = spd_matrix(n, n as u64 * 3 + 1);
            let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 2.0).collect();
            let mut b = vec![0.0; n];
            for i in 0..n {
                for j in 0..n {
                    b[i] += a[i + j * n] * x_true[j];
                }
            }
            let x = solve_full(&a, n, &b);
            for (got, want) in x.iter().zip(&x_true) {
                assert!((got - want).abs() < 1e-8, "n={n}");
            }
        }
    }

    #[test]
    fn reports_numerical_rank_of_deficient_matrix() {
        let n = 8;
        for r in [1usize, 3, 5] {
            let a = psd_rank(n, r, r as u64 + 7);
            let mut f = a.clone();
            let mut perm = vec![0usize; n];
            let rank = ldlt_factor_in_place(
                MatMut::from_slice(&mut f, n, n, Layout::ColMajor),
                &mut perm,
                0.0,
            )
            .unwrap();
            assert_eq!(rank, r, "rank-{r} matrix");
        }
    }

    #[test]
    fn rank_deficient_solve_satisfies_penrose_one() {
        // For b in range(A): A · x = b must still hold.
        let n = 6;
        let r = 3;
        let a = psd_rank(n, r, 11);
        let y: Vec<f64> = (0..n).map(|i| (i as f64) * 0.25 - 0.5).collect();
        // b = A·y is in range(A) by construction.
        let mut b = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                b[i] += a[i + j * n] * y[j];
            }
        }
        let x = solve_full(&a, n, &b);
        let mut ax = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                ax[i] += a[i + j * n] * x[j];
            }
        }
        for (got, want) in ax.iter().zip(&b) {
            assert!((got - want).abs() < 1e-8 * (1.0 + want.abs()));
        }
    }

    #[test]
    fn inverse_of_full_rank_matches_identity() {
        let n = 9;
        let a = spd_matrix(n, 5);
        let mut f = a.clone();
        let mut perm = vec![0usize; n];
        let rank = ldlt_factor_in_place(
            MatMut::from_slice(&mut f, n, n, Layout::ColMajor),
            &mut perm,
            0.0,
        )
        .unwrap();
        assert_eq!(rank, n);
        let mut inv = vec![0.0; n * n];
        ldlt_inverse_into(
            MatRef::from_slice(&f, n, n, Layout::ColMajor),
            &perm,
            rank,
            MatMut::from_slice(&mut inv, n, n, Layout::ColMajor),
        );
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += inv[i + k * n] * a[k + j * n];
                }
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((s - want).abs() < 1e-8, "({i},{j}): {s}");
            }
        }
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let n = 2;
        let mut a = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, −1
        let mut perm = vec![0usize; n];
        assert_eq!(
            ldlt_factor_in_place(
                MatMut::from_slice(&mut a, n, n, Layout::ColMajor),
                &mut perm,
                0.0
            ),
            Err(LinalgError::NotPositiveDefinite)
        );
    }

    #[test]
    fn zero_matrix_has_rank_zero_and_zero_solve() {
        let n = 4;
        let mut a = vec![0.0; n * n];
        let mut perm = vec![0usize; n];
        let rank = ldlt_factor_in_place(
            MatMut::from_slice(&mut a, n, n, Layout::ColMajor),
            &mut perm,
            0.0,
        )
        .unwrap();
        assert_eq!(rank, 0);
        let mut b = vec![1.0; n];
        ldlt_solve_in_place(
            MatRef::from_slice(&a, n, n, Layout::ColMajor),
            &perm,
            rank,
            MatMut::from_slice(&mut b, n, 1, Layout::ColMajor),
        );
        assert!(b.iter().all(|&x| x == 0.0));
    }
}
