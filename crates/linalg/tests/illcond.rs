//! Ill-conditioned Gram solve tests: seeded SPD inputs with controlled
//! condition numbers up to ~1e12, exact rank deficiency with a clean
//! spectral gap, and the escalation policy's agreement with the Jacobi
//! oracle.
//!
//! Spectra are planted explicitly as `A = Q·diag(λ)·Qᵀ` with `Q` a
//! product of Householder reflectors, so both κ(A) and rank(A) are
//! known exactly. Accuracy demands scale with conditioning: a fixed
//! `1e-10` bound below κ ≈ 1e6, and a κ-proportional bound beyond
//! (an inverse computed in f64 cannot beat ~κ·n·ε relative error, so
//! asking for 1e-10 at κ = 1e12 would test nothing but luck).

use mttkrp_linalg::{sym_pinv, GramSolver, LinalgError, SolvePolicy, SolveVariant};
use mttkrp_rng::Rng64;

fn matmul(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    let mut c = vec![0.0; n * n];
    for j in 0..n {
        for p in 0..n {
            let bpj = b[p + j * n];
            for i in 0..n {
                c[i + j * n] += a[i + p * n] * bpj;
            }
        }
    }
    c
}

/// Householder reflector `I − 2vvᵀ/‖v‖²` from a seeded random vector.
fn householder(rng: &mut Rng64, n: usize) -> Vec<f64> {
    let v: Vec<f64> = (0..n).map(|_| rng.next_f64() - 0.5).collect();
    let vv: f64 = v.iter().map(|x| x * x).sum();
    let mut h = vec![0.0; n * n];
    for j in 0..n {
        for i in 0..n {
            h[i + j * n] = -2.0 * v[i] * v[j] / vv;
        }
        h[j + j * n] += 1.0;
    }
    h
}

/// Symmetric matrix with the exact spectrum `evals`: `Q·diag(λ)·Qᵀ`
/// for `Q` a product of two Householder reflectors.
fn planted_spectrum(rng: &mut Rng64, evals: &[f64]) -> Vec<f64> {
    let n = evals.len();
    let q = matmul(&householder(rng, n), &householder(rng, n), n);
    let mut qd = vec![0.0; n * n];
    for j in 0..n {
        for i in 0..n {
            qd[i + j * n] = q[i + j * n] * evals[j];
        }
    }
    let mut qt = vec![0.0; n * n];
    for j in 0..n {
        for i in 0..n {
            qt[i + j * n] = q[j + i * n];
        }
    }
    let mut a = matmul(&qd, &qt, n);
    // Force exact symmetry (the double matmul leaves ~ε skew).
    for j in 0..n {
        for i in 0..j {
            let s = 0.5 * (a[i + j * n] + a[j + i * n]);
            a[i + j * n] = s;
            a[j + i * n] = s;
        }
    }
    a
}

/// Geometric spectrum from 1 down to 1/κ.
fn geometric_spectrum(n: usize, kappa: f64) -> Vec<f64> {
    (0..n)
        .map(|i| kappa.powf(-(i as f64) / (n as f64 - 1.0)))
        .collect()
}

fn rel_frob_diff(x: &[f64], y: &[f64]) -> f64 {
    let num: f64 = x
        .iter()
        .zip(y)
        .map(|(&a, &b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt();
    let den: f64 = y.iter().map(|&v| v * v).sum::<f64>().sqrt();
    num / den.max(f64::MIN_POSITIVE)
}

#[test]
fn auto_solver_tracks_oracle_across_condition_numbers() {
    let mut rng = Rng64::seed_from_u64(0x1CC0_0001);
    let n = 24;
    for &kappa in &[1e2, 1e4, 1e6, 1e8, 1e10, 1e12] {
        let a = planted_spectrum(&mut rng, &geometric_spectrum(n, kappa));
        let oracle = sym_pinv(&a, n, 0.0).unwrap();
        let mut solver = GramSolver::new();
        let mut out = vec![0.0; n * n];
        let variant = solver.pinv_into(&a, n, 0.0, &mut out).unwrap();
        // Below the condition limit the fast Cholesky rung must be
        // taken; above it the solver must escalate off Cholesky.
        if kappa <= 1e6 {
            assert_eq!(variant, SolveVariant::Cholesky, "kappa = {kappa}");
        } else if kappa >= 1e10 {
            assert_ne!(variant, SolveVariant::Cholesky, "kappa = {kappa}");
        }
        // Fixed 1e-10 agreement while conditioning permits it, then a
        // κ-scaled bound (both paths are exact to ~κ·n·ε).
        let bound = (50.0 * kappa * n as f64 * f64::EPSILON).max(1e-10);
        let diff = rel_frob_diff(&out, &oracle);
        assert!(
            diff <= bound,
            "kappa = {kappa}: |auto - oracle| = {diff:.3e} > {bound:.3e} ({variant:?})"
        );
    }
}

#[test]
fn rank_deficient_gram_recovers_oracle_pinv() {
    let mut rng = Rng64::seed_from_u64(0x1CC0_0002);
    let n = 16;
    for &rank in &[1usize, 5, 12, 15] {
        let mut evals = vec![0.0; n];
        for (i, e) in evals.iter_mut().take(rank).enumerate() {
            *e = 1.0 + i as f64 / rank as f64; // clean gap to the zeros
        }
        let a = planted_spectrum(&mut rng, &evals);
        let oracle = sym_pinv(&a, n, 0.0).unwrap();
        let mut solver = GramSolver::new();
        let mut out = vec![0.0; n * n];
        let variant = solver.pinv_into(&a, n, 0.0, &mut out).unwrap();
        // Cholesky must fail and rank-deficient LDLT must be rejected,
        // leaving the eigendecomposition pseudoinverse.
        assert_eq!(variant, SolveVariant::EvdPinv, "rank = {rank}");
        let diff = rel_frob_diff(&out, &oracle);
        assert!(diff <= 1e-10, "rank = {rank}: |evd - jacobi| = {diff:.3e}");
    }
}

#[test]
fn escalated_pinv_satisfies_penrose_conditions() {
    // Penrose 1 and 3 for A⁺ of a severely ill-conditioned *and*
    // rank-deficient Gram: A·X·A = A and (A·X)ᵀ = A·X.
    let mut rng = Rng64::seed_from_u64(0x1CC0_0003);
    let n = 20;
    let mut evals = geometric_spectrum(n, 1e9);
    evals[n - 1] = 0.0;
    evals[n - 2] = 0.0;
    let a = planted_spectrum(&mut rng, &evals);
    let mut solver = GramSolver::new();
    let mut x = vec![0.0; n * n];
    solver.pinv_into(&a, n, 1e-6, &mut x).unwrap();
    let ax = matmul(&a, &x, n);
    let axa = matmul(&ax, &a, n);
    for i in 0..n * n {
        assert!(
            (axa[i] - a[i]).abs() <= 1e-6,
            "Penrose 1 violated at {i}: {} vs {}",
            axa[i],
            a[i]
        );
    }
    for j in 0..n {
        for i in 0..n {
            assert!(
                (ax[i + j * n] - ax[j + i * n]).abs() <= 1e-6,
                "A·X not symmetric at ({i},{j})"
            );
        }
    }
}

#[test]
fn escalation_selects_expected_variant_per_input() {
    let mut rng = Rng64::seed_from_u64(0x1CC0_0004);
    let n = 12;
    let mut solver = GramSolver::new();
    let mut out = vec![0.0; n * n];

    // Well-conditioned: the Cholesky fast path.
    let a = planted_spectrum(&mut rng, &geometric_spectrum(n, 1e3));
    assert_eq!(
        solver.pinv_into(&a, n, 0.0, &mut out).unwrap(),
        SolveVariant::Cholesky
    );

    // κ above the default 1e8 limit but full rank: pivoted LDLT.
    let a = planted_spectrum(&mut rng, &geometric_spectrum(n, 1e10));
    assert_eq!(
        solver.pinv_into(&a, n, 0.0, &mut out).unwrap(),
        SolveVariant::Ldlt
    );

    // Exactly singular: the eigendecomposition pseudoinverse.
    let mut evals = geometric_spectrum(n, 1e2);
    evals[n - 1] = 0.0;
    let a = planted_spectrum(&mut rng, &evals);
    assert_eq!(
        solver.pinv_into(&a, n, 0.0, &mut out).unwrap(),
        SolveVariant::EvdPinv
    );

    // ForceCholesky on the singular input must surface the failure
    // instead of silently escalating.
    solver.set_policy(SolvePolicy::ForceCholesky);
    assert!(matches!(
        solver.pinv_into(&a, n, 0.0, &mut out),
        Err(LinalgError::NotPositiveDefinite)
    ));
}

#[test]
fn f32_gram_solver_tracks_f64_oracle() {
    let mut rng = Rng64::seed_from_u64(0x1CC0_0005);
    let n = 16;
    for &kappa in &[1e1, 1e3] {
        let a64 = planted_spectrum(&mut rng, &geometric_spectrum(n, kappa));
        let oracle = sym_pinv(&a64, n, 0.0).unwrap();
        let a32: Vec<f32> = a64.iter().map(|&v| v as f32).collect();
        let mut solver: GramSolver<f32> = GramSolver::new();
        let mut out = vec![0.0f32; n * n];
        solver.pinv_into(&a32, n, 0.0, &mut out).unwrap();
        let out64: Vec<f64> = out.iter().map(|&v| v as f64).collect();
        let diff = rel_frob_diff(&out64, &oracle);
        assert!(diff <= 1e-4, "kappa = {kappa}: f32 drift {diff:.3e}");
    }
}
