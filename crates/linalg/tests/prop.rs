//! Randomized-property tests for the dense factorizations: random
//! well-conditioned and rank-deficient inputs, Penrose conditions,
//! solver recovery, cross-checks between the blocked production paths
//! and the Jacobi/scalar oracles. Cases come from a fixed-seed stream.

use mttkrp_blas::{kernels, Layout, MatMut, MatRef};
use mttkrp_linalg::{
    cholesky_in_place, cholesky_solve_in_place, jacobi_eigh, lu_factor, lu_solve, sym_evd,
    sym_pinv, GramSolver, SolvePolicy,
};
use mttkrp_rng::Rng64;

fn matmul(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    let mut c = vec![0.0; n * n];
    for j in 0..n {
        for p in 0..n {
            let bpj = b[p + j * n];
            for i in 0..n {
                c[i + j * n] += a[i + p * n] * bpj;
            }
        }
    }
    c
}

fn rand_mat(rng: &mut Rng64, n: usize) -> Vec<f64> {
    (0..n * n).map(|_| rng.next_f64() - 0.5).collect()
}

/// SPD matrix `B·Bᵀ + n·I`.
fn spd(rng: &mut Rng64, n: usize) -> Vec<f64> {
    let b = rand_mat(rng, n);
    let mut bt = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            bt[i + j * n] = b[j + i * n];
        }
    }
    let mut a = matmul(&b, &bt, n);
    for i in 0..n {
        a[i + i * n] += n as f64;
    }
    a
}

/// Rank-`r` symmetric PSD matrix `B_r · B_rᵀ` (B_r is n × r).
fn psd_rank(rng: &mut Rng64, n: usize, r: usize) -> Vec<f64> {
    let b = rand_mat(rng, n); // take first r columns
    let mut a = vec![0.0; n * n];
    for p in 0..r {
        for i in 0..n {
            for j in 0..n {
                a[i + j * n] += b[i + p * n] * b[j + p * n];
            }
        }
    }
    a
}

#[test]
fn lu_solves_random_systems() {
    let mut rng = Rng64::seed_from_u64(0x11A6_0001);
    for case in 0..48 {
        let n = rng.usize_in(1, 12);
        let a = rand_mat(&mut rng, n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - (n as f64) / 2.0).collect();
        let mut b = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                b[i] += a[i + j * n] * x_true[j];
            }
        }
        let mut lu = a.clone();
        let mut piv = vec![0usize; n];
        // Random matrices are almost surely nonsingular; skip the
        // measure-zero failures rather than fail the property.
        if lu_factor(
            MatMut::from_slice(&mut lu, n, n, Layout::ColMajor),
            &mut piv,
        )
        .is_ok()
        {
            lu_solve(
                MatRef::from_slice(&lu, n, n, Layout::ColMajor),
                &piv,
                &mut b,
            );
            for (got, want) in b.iter().zip(&x_true) {
                assert!((got - want).abs() < 1e-6, "case {case}: n={n}");
            }
        }
    }
}

#[test]
fn cholesky_solves_spd_systems() {
    let mut rng = Rng64::seed_from_u64(0x11A6_0002);
    for case in 0..48 {
        let n = rng.usize_in(1, 12);
        let a = spd(&mut rng, n);
        let x_true: Vec<f64> = (0..n).map(|i| 1.0 - (i as f64) * 0.25).collect();
        let mut b = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                b[i] += a[i + j * n] * x_true[j];
            }
        }
        let mut l = a.clone();
        cholesky_in_place(MatMut::from_slice(&mut l, n, n, Layout::ColMajor)).unwrap();
        cholesky_solve_in_place(
            MatRef::from_slice(&l, n, n, Layout::ColMajor),
            MatMut::from_slice(&mut b, n, 1, Layout::ColMajor),
        );
        for (got, want) in b.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-7, "case {case}: n={n}");
        }
    }
}

#[test]
fn jacobi_eigenvalues_match_trace_and_norm() {
    let mut rng = Rng64::seed_from_u64(0x11A6_0003);
    for case in 0..48 {
        // Σλ = trace(A), Σλ² = ‖A‖²_F for symmetric A.
        let n = rng.usize_in(1, 10);
        let b = rand_mat(&mut rng, n);
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                a[i + j * n] = 0.5 * (b[i + j * n] + b[j + i * n]);
            }
        }
        let trace: f64 = (0..n).map(|i| a[i + i * n]).sum();
        let frob2: f64 = a.iter().map(|x| x * x).sum();
        let (w, _) = jacobi_eigh(&mut a.clone(), n).unwrap();
        let sum: f64 = w.iter().sum();
        let sum2: f64 = w.iter().map(|x| x * x).sum();
        assert!(
            (sum - trace).abs() < 1e-8 * (1.0 + trace.abs()),
            "case {case}: n={n}"
        );
        assert!(
            (sum2 - frob2).abs() < 1e-8 * (1.0 + frob2),
            "case {case}: n={n}"
        );
    }
}

#[test]
fn evd_eigenvalues_match_jacobi_oracle() {
    let mut rng = Rng64::seed_from_u64(0x11A6_0005);
    for case in 0..32 {
        let n = rng.usize_in(1, 14);
        let b = rand_mat(&mut rng, n);
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                a[i + j * n] = 0.5 * (b[i + j * n] + b[j + i * n]);
            }
        }
        let (w, _) = sym_evd(&a, n).unwrap();
        let (mut wj, _) = jacobi_eigh(&mut a.clone(), n).unwrap();
        wj.sort_by(|x, y| x.partial_cmp(y).unwrap());
        for (got, want) in w.iter().zip(&wj) {
            assert!(
                (got - want).abs() < 1e-10 * (1.0 + want.abs()),
                "case {case}: n={n}: {got} vs {want}"
            );
        }
    }
}

#[test]
fn blocked_cholesky_matches_oracle_inverse() {
    // GramSolver's Cholesky rung against the Jacobi pseudoinverse on
    // well-conditioned SPD input — the blocked kernels, triangular
    // solves, and condition gate all sit on this path.
    let mut rng = Rng64::seed_from_u64(0x11A6_0006);
    let mut solver = GramSolver::<f64>::new();
    for case in 0..24 {
        let n = rng.usize_in(1, 60);
        let a = spd(&mut rng, n);
        let mut got = vec![0.0; n * n];
        solver.pinv_into(&a, n, 0.0, &mut got).unwrap();
        let want = sym_pinv(&a, n, 0.0).unwrap();
        for (x, y) in got.iter().zip(&want) {
            assert!(
                (x - y).abs() < 1e-10 * (1.0 + y.abs()),
                "case {case}: n={n}"
            );
        }
    }
}

#[test]
fn pinv_satisfies_penrose_conditions() {
    let mut rng = Rng64::seed_from_u64(0x11A6_0004);
    for case in 0..48 {
        let n = rng.usize_in(2, 9);
        let r = rng.usize_in(1, n + 1);
        let a = psd_rank(&mut rng, n, r);
        let p = sym_pinv(&a, n, 0.0).unwrap();
        // 1) A P A = A, 2) P A P = P, 3/4) symmetry of A·P and P·A.
        let ap = matmul(&a, &p, n);
        let apa = matmul(&ap, &a, n);
        let pap = matmul(&p, &ap, n);
        let scale = a.iter().map(|x| x.abs()).fold(0.0f64, f64::max).max(1.0);
        let pnorm = p.iter().map(|x| x.abs()).fold(0.0f64, f64::max).max(1.0);
        // Random PSD matrices can be arbitrarily ill-conditioned near the
        // rank cutoff; the achievable residual grows with ‖P‖·‖A‖.
        let kappa = 1.0 + pnorm * scale;
        for i in 0..n * n {
            assert!(
                (apa[i] - a[i]).abs() < 1e-8 * scale * kappa,
                "case {case}: APA=A failed"
            );
            assert!(
                (pap[i] - p[i]).abs() < 1e-8 * pnorm * kappa,
                "case {case}: PAP=P failed"
            );
        }
        for i in 0..n {
            for j in 0..n {
                assert!(
                    (ap[i + j * n] - ap[j + i * n]).abs() < 1e-8 * scale * kappa,
                    "case {case}: AP not symmetric"
                );
            }
        }
    }
}

#[test]
fn escalation_pinv_satisfies_penrose_on_rank_deficient_input() {
    // Same Penrose battery, but through the Auto escalation ladder —
    // rank-deficient inputs must land on the EVD rung and still
    // produce a Moore–Penrose inverse.
    let mut rng = Rng64::seed_from_u64(0x11A6_0007);
    let mut solver = GramSolver::<f64>::new();
    for case in 0..32 {
        let n = rng.usize_in(2, 9);
        let r = rng.usize_in(1, n); // strictly deficient
        let a = psd_rank(&mut rng, n, r);
        let mut p = vec![0.0; n * n];
        solver.pinv_into(&a, n, 0.0, &mut p).unwrap();
        let ap = matmul(&a, &p, n);
        let apa = matmul(&ap, &a, n);
        let scale = a.iter().map(|x| x.abs()).fold(0.0f64, f64::max).max(1.0);
        let pnorm = p.iter().map(|x| x.abs()).fold(0.0f64, f64::max).max(1.0);
        let kappa = 1.0 + pnorm * scale;
        for i in 0..n * n {
            assert!(
                (apa[i] - a[i]).abs() < 1e-8 * scale * kappa,
                "case {case}: APA=A failed"
            );
        }
    }
}

#[test]
fn forced_policies_agree_with_oracle_on_spd_input() {
    let mut rng = Rng64::seed_from_u64(0x11A6_0008);
    for case in 0..12 {
        let n = rng.usize_in(2, 24);
        let a = spd(&mut rng, n);
        let want = sym_pinv(&a, n, 0.0).unwrap();
        for policy in [
            SolvePolicy::ForceCholesky,
            SolvePolicy::ForceLdlt,
            SolvePolicy::ForceEvd,
            SolvePolicy::ForceJacobi,
        ] {
            let mut got = vec![0.0; n * n];
            GramSolver::<f64>::with_policy(policy)
                .pinv_into(&a, n, 0.0, &mut got)
                .unwrap();
            for (x, y) in got.iter().zip(&want) {
                assert!(
                    (x - y).abs() < 1e-10 * (1.0 + y.abs()),
                    "case {case}: n={n} policy {policy:?}"
                );
            }
        }
    }
}

#[test]
fn blocked_cholesky_handles_transposed_views() {
    // Factor the same SPD matrix through a transposed row-major view:
    // the strided code path must agree with the plain one.
    let mut rng = Rng64::seed_from_u64(0x11A6_0009);
    let n = 40;
    let a = spd(&mut rng, n); // symmetric, so Aᵀ = A
    let mut plain = a.clone();
    cholesky_in_place(MatMut::from_slice(&mut plain, n, n, Layout::ColMajor)).unwrap();
    let mut via_t = a.clone();
    let ks = kernels::<f64>();
    mttkrp_linalg::cholesky_in_place_with(
        ks,
        MatMut::from_slice(&mut via_t, n, n, Layout::RowMajor).t(),
        16,
    )
    .unwrap();
    for j in 0..n {
        for i in j..n {
            // plain is col-major; via_t's transposed view maps (i,j) to
            // row-major storage transposed, i.e. the same linear slot.
            let x = plain[i + j * n];
            let y = via_t[j * n + i];
            assert!((x - y).abs() < 1e-12, "({i},{j})");
        }
    }
}
