//! Randomized-property tests for the dense factorizations: random
//! well-conditioned and rank-deficient inputs, Penrose conditions,
//! solver recovery. Cases come from a fixed-seed stream.

use mttkrp_linalg::{cholesky, cholesky_solve, jacobi_eigh, lu_factor, lu_solve, sym_pinv};
use mttkrp_rng::Rng64;

fn matmul(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    let mut c = vec![0.0; n * n];
    for j in 0..n {
        for p in 0..n {
            let bpj = b[p + j * n];
            for i in 0..n {
                c[i + j * n] += a[i + p * n] * bpj;
            }
        }
    }
    c
}

fn rand_mat(rng: &mut Rng64, n: usize) -> Vec<f64> {
    (0..n * n).map(|_| rng.next_f64() - 0.5).collect()
}

/// SPD matrix `B·Bᵀ + n·I`.
fn spd(rng: &mut Rng64, n: usize) -> Vec<f64> {
    let b = rand_mat(rng, n);
    let mut bt = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            bt[i + j * n] = b[j + i * n];
        }
    }
    let mut a = matmul(&b, &bt, n);
    for i in 0..n {
        a[i + i * n] += n as f64;
    }
    a
}

/// Rank-`r` symmetric PSD matrix `B_r · B_rᵀ` (B_r is n × r).
fn psd_rank(rng: &mut Rng64, n: usize, r: usize) -> Vec<f64> {
    let b = rand_mat(rng, n); // take first r columns
    let mut a = vec![0.0; n * n];
    for p in 0..r {
        for i in 0..n {
            for j in 0..n {
                a[i + j * n] += b[i + p * n] * b[j + p * n];
            }
        }
    }
    a
}

#[test]
fn lu_solves_random_systems() {
    let mut rng = Rng64::seed_from_u64(0x11A6_0001);
    for case in 0..48 {
        let n = rng.usize_in(1, 12);
        let a = rand_mat(&mut rng, n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - (n as f64) / 2.0).collect();
        let mut b = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                b[i] += a[i + j * n] * x_true[j];
            }
        }
        let mut lu = a.clone();
        // Random matrices are almost surely nonsingular; skip the
        // measure-zero failures rather than fail the property.
        if let Ok(piv) = lu_factor(&mut lu, n) {
            lu_solve(&lu, &piv, n, &mut b);
            for (got, want) in b.iter().zip(&x_true) {
                assert!((got - want).abs() < 1e-6, "case {case}: n={n}");
            }
        }
    }
}

#[test]
fn cholesky_solves_spd_systems() {
    let mut rng = Rng64::seed_from_u64(0x11A6_0002);
    for case in 0..48 {
        let n = rng.usize_in(1, 12);
        let a = spd(&mut rng, n);
        let x_true: Vec<f64> = (0..n).map(|i| 1.0 - (i as f64) * 0.25).collect();
        let mut b = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                b[i] += a[i + j * n] * x_true[j];
            }
        }
        let mut l = a.clone();
        cholesky(&mut l, n).unwrap();
        cholesky_solve(&l, n, &mut b);
        for (got, want) in b.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-7, "case {case}: n={n}");
        }
    }
}

#[test]
fn jacobi_eigenvalues_match_trace_and_norm() {
    let mut rng = Rng64::seed_from_u64(0x11A6_0003);
    for case in 0..48 {
        // Σλ = trace(A), Σλ² = ‖A‖²_F for symmetric A.
        let n = rng.usize_in(1, 10);
        let b = rand_mat(&mut rng, n);
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                a[i + j * n] = 0.5 * (b[i + j * n] + b[j + i * n]);
            }
        }
        let trace: f64 = (0..n).map(|i| a[i + i * n]).sum();
        let frob2: f64 = a.iter().map(|x| x * x).sum();
        let (w, _) = jacobi_eigh(&mut a.clone(), n).unwrap();
        let sum: f64 = w.iter().sum();
        let sum2: f64 = w.iter().map(|x| x * x).sum();
        assert!(
            (sum - trace).abs() < 1e-8 * (1.0 + trace.abs()),
            "case {case}: n={n}"
        );
        assert!(
            (sum2 - frob2).abs() < 1e-8 * (1.0 + frob2),
            "case {case}: n={n}"
        );
    }
}

#[test]
fn pinv_satisfies_penrose_conditions() {
    let mut rng = Rng64::seed_from_u64(0x11A6_0004);
    for case in 0..48 {
        let n = rng.usize_in(2, 9);
        let r = rng.usize_in(1, n + 1);
        let a = psd_rank(&mut rng, n, r);
        let p = sym_pinv(&a, n, 0.0).unwrap();
        // 1) A P A = A, 2) P A P = P, 3/4) symmetry of A·P and P·A.
        let ap = matmul(&a, &p, n);
        let apa = matmul(&ap, &a, n);
        let pap = matmul(&p, &ap, n);
        let scale = a.iter().map(|x| x.abs()).fold(0.0f64, f64::max).max(1.0);
        let pnorm = p.iter().map(|x| x.abs()).fold(0.0f64, f64::max).max(1.0);
        // Random PSD matrices can be arbitrarily ill-conditioned near the
        // rank cutoff; the achievable residual grows with ‖P‖·‖A‖.
        let kappa = 1.0 + pnorm * scale;
        for i in 0..n * n {
            assert!(
                (apa[i] - a[i]).abs() < 1e-8 * scale * kappa,
                "case {case}: APA=A failed"
            );
            assert!(
                (pap[i] - p[i]).abs() < 1e-8 * pnorm * kappa,
                "case {case}: PAP=P failed"
            );
        }
        for i in 0..n {
            for j in 0..n {
                assert!(
                    (ap[i + j * n] - ap[j + i * n]).abs() < 1e-8 * scale * kappa,
                    "case {case}: AP not symmetric"
                );
            }
        }
    }
}
