//! The `mttkrp-jobs-v1` wire protocol.
//!
//! Newline-delimited JSON, one object per line, in both directions
//! (documented normatively in `docs/FORMATS.md`). Requests carry an
//! `"op"`; responses carry an `"event"`. The daemon never interleaves
//! partial lines: each event is serialized and written under one lock.
//!
//! Parsing reuses the in-tree [`JsonValue`] parser from `mttkrp-obs`
//! (the repo builds without a crate registry, so no serde);
//! serialization is hand-rolled through [`JsonOut`], with the same
//! non-finite policy as the bench schema (NaN/∞ become `null`).

use mttkrp_obs::JsonValue;

/// Protocol identifier carried in every request's `"v"` field.
pub const PROTOCOL: &str = "mttkrp-jobs-v1";

/// Storage format of a submitted tensor (selects the backend).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Dense MTKT file → in-core `DenseTensor` executors.
    Dense,
    /// Sparse MTKS file → CSF executors.
    Sparse,
    /// Tiled MTTB file → out-of-core streaming executors.
    Ooc,
}

impl Format {
    pub fn as_str(self) -> &'static str {
        match self {
            Format::Dense => "dense",
            Format::Sparse => "sparse",
            Format::Ooc => "ooc",
        }
    }

    pub fn parse(s: &str) -> Result<Format, String> {
        match s {
            "dense" => Ok(Format::Dense),
            "sparse" => Ok(Format::Sparse),
            "ooc" => Ok(Format::Ooc),
            other => Err(format!(
                "unknown format {other:?} (expected dense | sparse | ooc)"
            )),
        }
    }
}

/// What to decompose and how.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Path (on the daemon's filesystem) of the tensor file.
    pub path: String,
    /// Storage format of the file at `path`.
    pub format: Format,
    /// CP rank.
    pub rank: usize,
    /// Maximum ALS sweeps.
    pub max_iters: usize,
    /// Stop when the fit improves by less than this between sweeps
    /// (`0.0` disables early stopping).
    pub tol: f64,
    /// Team size; `0` asks the daemon to size the team from the tuned
    /// cost model (capped by the server's `max_team`).
    pub threads: usize,
    /// Seed for the random factor initialization.
    pub seed: u64,
    /// Stream a `fit` event after every sweep.
    pub stream_fits: bool,
    /// Attach factor matrices and weights to the `done` event.
    pub return_factors: bool,
}

/// One parsed client request line.
#[derive(Debug, Clone)]
pub enum JobRequest {
    /// Submit a decomposition job under a client-chosen id.
    Submit { id: String, spec: JobSpec },
    /// Cancel a running or queued job.
    Cancel { id: String },
    /// Ask for daemon occupancy.
    Status,
    /// Ask the daemon to stop accepting and exit its accept loop.
    Shutdown,
}

fn need_str(v: &JsonValue, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(|x| x.as_str())
        .map(str::to_owned)
        .ok_or_else(|| format!("missing or non-string {key:?}"))
}

fn opt_f64(v: &JsonValue, key: &str) -> Option<f64> {
    v.get(key).and_then(|x| x.as_f64())
}

fn opt_usize(v: &JsonValue, key: &str, default: usize) -> Result<usize, String> {
    match opt_f64(v, key) {
        None => Ok(default),
        Some(f) if f >= 0.0 && f.fract() == 0.0 => Ok(f as usize),
        Some(f) => Err(format!("{key:?} must be a non-negative integer, got {f}")),
    }
}

fn opt_bool(v: &JsonValue, key: &str, default: bool) -> bool {
    v.get(key).and_then(|x| x.as_bool()).unwrap_or(default)
}

impl JobRequest {
    /// Parse one request line. The `"v"` field, when present, must be
    /// [`PROTOCOL`]; absent is tolerated for hand-typed sessions.
    pub fn parse(line: &str) -> Result<JobRequest, String> {
        let v = JsonValue::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
        if let Some(ver) = v.get("v").and_then(|x| x.as_str()) {
            if ver != PROTOCOL {
                return Err(format!("unsupported protocol {ver:?} (want {PROTOCOL:?})"));
            }
        }
        let op = need_str(&v, "op")?;
        match op.as_str() {
            "submit" => {
                let id = need_str(&v, "id")?;
                let spec = v.get("spec").ok_or("missing \"spec\"")?;
                let rank = opt_usize(spec, "rank", 0)?;
                if rank == 0 {
                    return Err("spec.rank must be >= 1".into());
                }
                Ok(JobRequest::Submit {
                    id,
                    spec: JobSpec {
                        path: need_str(spec, "path")?,
                        format: Format::parse(&need_str(spec, "format")?)?,
                        rank,
                        max_iters: opt_usize(spec, "max_iters", 25)?,
                        tol: opt_f64(spec, "tol").unwrap_or(0.0),
                        threads: opt_usize(spec, "threads", 0)?,
                        seed: opt_usize(spec, "seed", 42)? as u64,
                        stream_fits: opt_bool(spec, "stream_fits", true),
                        return_factors: opt_bool(spec, "return_factors", false),
                    },
                })
            }
            "cancel" => Ok(JobRequest::Cancel {
                id: need_str(&v, "id")?,
            }),
            "status" => Ok(JobRequest::Status),
            "shutdown" => Ok(JobRequest::Shutdown),
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

impl JobRequest {
    /// Serialize to one JSON request line (no trailing newline) — the
    /// client half of the codec, used by `cpd-loadgen` and the tests.
    pub fn to_json(&self) -> String {
        let o = JsonOut::obj().str_field("v", PROTOCOL);
        match self {
            JobRequest::Submit { id, spec } => {
                let nested = JsonOut::obj()
                    .str_field("path", &spec.path)
                    .str_field("format", spec.format.as_str())
                    .u_field("rank", spec.rank)
                    .u_field("max_iters", spec.max_iters)
                    .f_field("tol", spec.tol)
                    .u_field("threads", spec.threads)
                    .u_field("seed", spec.seed as usize)
                    .bool_field("stream_fits", spec.stream_fits)
                    .bool_field("return_factors", spec.return_factors)
                    .finish();
                o.str_field("op", "submit")
                    .str_field("id", id)
                    .raw_field("spec", &nested)
                    .finish()
            }
            JobRequest::Cancel { id } => o.str_field("op", "cancel").str_field("id", id).finish(),
            JobRequest::Status => o.str_field("op", "status").finish(),
            JobRequest::Shutdown => o.str_field("op", "shutdown").finish(),
        }
    }
}

/// Factor payload attached to a `done` event on request.
#[derive(Debug, Clone)]
pub struct FactorPayload {
    pub dims: Vec<usize>,
    pub rank: usize,
    /// Row-major `dims[n] × rank` matrices, one per mode.
    pub factors: Vec<Vec<f64>>,
    /// Component weights, length `rank`.
    pub lambda: Vec<f64>,
}

/// One daemon → client event line.
#[derive(Debug, Clone)]
pub enum JobEvent {
    /// The job was admitted; `queue_depth == 0` means it starts now.
    Accepted { id: String, queue_depth: usize },
    /// The admission queue is full (HTTP-429-style backpressure) or the
    /// request was malformed; `code` distinguishes (429 vs 400).
    Rejected {
        id: String,
        code: u32,
        reason: String,
    },
    /// The job left the queue and its driver started sweeping; `team`
    /// is the parallel team size the daemon chose (spec'd or sized by
    /// the tuned cost model).
    Started { id: String, team: usize },
    /// Fit after one ALS sweep (streamed when `stream_fits`).
    Fit { id: String, iter: usize, fit: f64 },
    /// The job finished; factors attached when `return_factors`.
    Done {
        id: String,
        iters: usize,
        final_fit: f64,
        converged: bool,
        elapsed_ms: f64,
        factors: Option<FactorPayload>,
    },
    /// The job observed its cancellation token and stopped.
    Cancelled { id: String },
    /// The job failed (unreadable file, bad spec against the file, …).
    Error { id: String, reason: String },
    /// Occupancy snapshot in response to `status`.
    Status {
        active: usize,
        queued: usize,
        max_active: usize,
        queue_cap: usize,
    },
    /// Acknowledges `shutdown`.
    ShuttingDown,
}

/// Minimal JSON writer: objects assembled field by field with correct
/// string escaping and the bench-schema policy for non-finite floats.
pub struct JsonOut {
    buf: String,
    first: bool,
}

impl JsonOut {
    pub fn obj() -> JsonOut {
        JsonOut {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        push_json_str(&mut self.buf, k);
        self.buf.push(':');
    }

    pub fn str_field(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        push_json_str(&mut self.buf, v);
        self
    }

    pub fn u_field(mut self, k: &str, v: usize) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    pub fn f_field(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        push_json_f64(&mut self.buf, v);
        self
    }

    pub fn bool_field(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    pub fn raw_field(mut self, k: &str, raw: &str) -> Self {
        self.key(k);
        self.buf.push_str(raw);
        self
    }

    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

fn push_json_str(buf: &mut String, s: &str) {
    buf.push('"');
    for ch in s.chars() {
        match ch {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => buf.push_str(&format!("\\u{:04x}", c as u32)),
            c => buf.push(c),
        }
    }
    buf.push('"');
}

fn push_json_f64(buf: &mut String, v: f64) {
    if v.is_finite() {
        // `{:e}` round-trips f64 exactly and is what the bench schema
        // emits; keep the two formats consistent.
        buf.push_str(&format!("{v:e}"));
    } else {
        buf.push_str("null");
    }
}

fn f64_array(vals: &[f64]) -> String {
    let mut s = String::from("[");
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        push_json_f64(&mut s, *v);
    }
    s.push(']');
    s
}

impl JobEvent {
    /// Serialize to one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let o = JsonOut::obj().str_field("v", PROTOCOL);
        match self {
            JobEvent::Accepted { id, queue_depth } => o
                .str_field("event", "accepted")
                .str_field("id", id)
                .u_field("queue_depth", *queue_depth)
                .finish(),
            JobEvent::Rejected { id, code, reason } => o
                .str_field("event", "rejected")
                .str_field("id", id)
                .u_field("code", *code as usize)
                .str_field("reason", reason)
                .finish(),
            JobEvent::Started { id, team } => o
                .str_field("event", "started")
                .str_field("id", id)
                .u_field("team", *team)
                .finish(),
            JobEvent::Fit { id, iter, fit } => o
                .str_field("event", "fit")
                .str_field("id", id)
                .u_field("iter", *iter)
                .f_field("fit", *fit)
                .finish(),
            JobEvent::Done {
                id,
                iters,
                final_fit,
                converged,
                elapsed_ms,
                factors,
            } => {
                let mut o = o
                    .str_field("event", "done")
                    .str_field("id", id)
                    .u_field("iters", *iters)
                    .f_field("final_fit", *final_fit)
                    .bool_field("converged", *converged)
                    .f_field("elapsed_ms", *elapsed_ms);
                if let Some(p) = factors {
                    let dims = format!(
                        "[{}]",
                        p.dims
                            .iter()
                            .map(|d| d.to_string())
                            .collect::<Vec<_>>()
                            .join(",")
                    );
                    let mats = format!(
                        "[{}]",
                        p.factors
                            .iter()
                            .map(|f| f64_array(f))
                            .collect::<Vec<_>>()
                            .join(",")
                    );
                    o = o
                        .raw_field("dims", &dims)
                        .u_field("rank", p.rank)
                        .raw_field("factors", &mats)
                        .raw_field("lambda", &f64_array(&p.lambda));
                }
                o.finish()
            }
            JobEvent::Cancelled { id } => o
                .str_field("event", "cancelled")
                .str_field("id", id)
                .finish(),
            JobEvent::Error { id, reason } => o
                .str_field("event", "error")
                .str_field("id", id)
                .str_field("reason", reason)
                .finish(),
            JobEvent::Status {
                active,
                queued,
                max_active,
                queue_cap,
            } => o
                .str_field("event", "status")
                .u_field("active", *active)
                .u_field("queued", *queued)
                .u_field("max_active", *max_active)
                .u_field("queue_cap", *queue_cap)
                .finish(),
            JobEvent::ShuttingDown => o.str_field("event", "shutting_down").finish(),
        }
    }

    /// Parse an event line (used by `cpd-loadgen` and the tests).
    pub fn parse(line: &str) -> Result<JobEvent, String> {
        let v = JsonValue::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
        let event = need_str(&v, "event")?;
        let id = || need_str(&v, "id");
        let num = |key: &str| opt_f64(&v, key).ok_or_else(|| format!("missing number {key:?}"));
        match event.as_str() {
            "accepted" => Ok(JobEvent::Accepted {
                id: id()?,
                queue_depth: num("queue_depth")? as usize,
            }),
            "rejected" => Ok(JobEvent::Rejected {
                id: id()?,
                code: num("code")? as u32,
                reason: need_str(&v, "reason")?,
            }),
            "started" => Ok(JobEvent::Started {
                id: id()?,
                team: num("team")? as usize,
            }),
            "fit" => Ok(JobEvent::Fit {
                id: id()?,
                iter: num("iter")? as usize,
                fit: num("fit")?,
            }),
            "done" => {
                let factors = match (v.get("factors"), v.get("lambda"), v.get("dims")) {
                    (Some(f), Some(l), Some(d)) => {
                        let to_vec = |x: &JsonValue| -> Option<Vec<f64>> {
                            x.as_arr()?.iter().map(|e| e.as_f64()).collect()
                        };
                        let dims: Option<Vec<usize>> = d
                            .as_arr()
                            .map(|a| a.iter().filter_map(|e| e.as_f64()).map(|f| f as usize))
                            .map(Iterator::collect);
                        let mats: Option<Vec<Vec<f64>>> =
                            f.as_arr().map(|a| a.iter().filter_map(to_vec).collect());
                        match (dims, mats, to_vec(l), num("rank").ok()) {
                            (Some(dims), Some(factors), Some(lambda), Some(rank)) => {
                                Some(FactorPayload {
                                    dims,
                                    rank: rank as usize,
                                    factors,
                                    lambda,
                                })
                            }
                            _ => None,
                        }
                    }
                    _ => None,
                };
                Ok(JobEvent::Done {
                    id: id()?,
                    iters: num("iters")? as usize,
                    final_fit: num("final_fit")?,
                    converged: opt_bool(&v, "converged", false),
                    elapsed_ms: num("elapsed_ms")?,
                    factors,
                })
            }
            "cancelled" => Ok(JobEvent::Cancelled { id: id()? }),
            "error" => Ok(JobEvent::Error {
                id: id()?,
                reason: need_str(&v, "reason")?,
            }),
            "status" => Ok(JobEvent::Status {
                active: num("active")? as usize,
                queued: num("queued")? as usize,
                max_active: num("max_active")? as usize,
                queue_cap: num("queue_cap")? as usize,
            }),
            "shutting_down" => Ok(JobEvent::ShuttingDown),
            other => Err(format!("unknown event {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_round_trips_through_parse() {
        let line = r#"{"v":"mttkrp-jobs-v1","op":"submit","id":"j1","spec":{"path":"/tmp/x.mtkt","format":"dense","rank":4,"max_iters":7,"tol":1e-6,"threads":2,"stream_fits":false,"return_factors":true}}"#;
        match JobRequest::parse(line).unwrap() {
            JobRequest::Submit { id, spec } => {
                assert_eq!(id, "j1");
                assert_eq!(spec.path, "/tmp/x.mtkt");
                assert_eq!(spec.format, Format::Dense);
                assert_eq!(spec.rank, 4);
                assert_eq!(spec.max_iters, 7);
                assert!((spec.tol - 1e-6).abs() < 1e-18);
                assert_eq!(spec.threads, 2);
                assert!(!spec.stream_fits);
                assert!(spec.return_factors);
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn spec_defaults_apply() {
        let line = r#"{"op":"submit","id":"j2","spec":{"path":"p","format":"sparse","rank":3}}"#;
        match JobRequest::parse(line).unwrap() {
            JobRequest::Submit { spec, .. } => {
                assert_eq!(spec.format, Format::Sparse);
                assert_eq!(spec.max_iters, 25);
                assert_eq!(spec.threads, 0, "0 = team sized by the daemon");
                assert!(spec.stream_fits);
                assert!(!spec.return_factors);
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn bad_requests_are_rejected_with_reasons() {
        assert!(JobRequest::parse("not json").is_err());
        assert!(JobRequest::parse(r#"{"op":"submit","id":"x"}"#).is_err());
        assert!(JobRequest::parse(r#"{"op":"frobnicate"}"#).is_err());
        assert!(
            JobRequest::parse(r#"{"v":"mttkrp-jobs-v2","op":"status"}"#).is_err(),
            "future protocol versions must not silently parse"
        );
        assert!(JobRequest::parse(
            r#"{"op":"submit","id":"x","spec":{"path":"p","format":"dense","rank":0}}"#
        )
        .is_err());
    }

    #[test]
    fn events_round_trip_and_escape() {
        let events = [
            JobEvent::Accepted {
                id: "a\"b".into(),
                queue_depth: 1,
            },
            JobEvent::Started {
                id: "j".into(),
                team: 3,
            },
            JobEvent::Rejected {
                id: "j".into(),
                code: 429,
                reason: "queue full\n".into(),
            },
            JobEvent::Fit {
                id: "j".into(),
                iter: 2,
                fit: 0.93125,
            },
            JobEvent::Done {
                id: "j".into(),
                iters: 5,
                final_fit: 0.99,
                converged: true,
                elapsed_ms: 12.5,
                factors: Some(FactorPayload {
                    dims: vec![2, 3],
                    rank: 2,
                    factors: vec![vec![1.0, 2.0, 3.0, 4.0], vec![0.5; 6]],
                    lambda: vec![1.0, 1.0],
                }),
            },
            JobEvent::Status {
                active: 2,
                queued: 1,
                max_active: 2,
                queue_cap: 4,
            },
        ];
        for ev in &events {
            let line = ev.to_json();
            let back = JobEvent::parse(&line)
                .unwrap_or_else(|e| panic!("round-trip failed for {line}: {e}"));
            assert_eq!(format!("{ev:?}"), format!("{back:?}"), "line {line}");
        }
    }

    #[test]
    fn non_finite_fit_becomes_null() {
        let line = JobEvent::Fit {
            id: "j".into(),
            iter: 0,
            fit: f64::NAN,
        }
        .to_json();
        assert!(line.contains("\"fit\":null"), "{line}");
    }
}
