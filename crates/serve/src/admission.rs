//! Bounded admission: how many jobs run, how many wait, who is turned
//! away, and how large each admitted job's team is.
//!
//! The daemon runs at most `max_active` job drivers at once; up to
//! `queue_cap` further jobs wait in FIFO order; beyond that, submits
//! are rejected immediately (429-style backpressure — the client hears
//! `rejected` instead of hanging on an unbounded queue).
//!
//! Team sizing is the admission-control half of the PR-5 tuned cost
//! model: when a calibrated profile is installed, [`choose_team`]
//! evaluates the model's predicted per-sweep cost at every candidate
//! team size and picks the smallest team within 10% of the best —
//! small jobs get small teams, leaving workers for the rest of the
//! fleet, which is exactly the multi-tenant win over one-job-owns-the-
//! machine sizing. Without a profile it falls back to a work-based
//! heuristic (≈1 slot per 256Ki tensor entries).

use std::collections::VecDeque;
use std::sync::Mutex;

use mttkrp_core::tuned_cost;

/// Admission limits.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Jobs running concurrently.
    pub max_active: usize,
    /// Jobs waiting beyond the active set.
    pub queue_cap: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_active: 2,
            queue_cap: 8,
        }
    }
}

/// Outcome of offering a job to the admission controller.
#[derive(Debug)]
pub enum Offer<J> {
    /// An active slot was claimed; the caller must start the job now.
    Run(J),
    /// Queued at depth `usize` (1 = next in line).
    Queued(usize),
    /// Queue full; the job inside is handed back.
    Rejected(J),
}

struct State<J> {
    active: usize,
    queue: VecDeque<J>,
}

/// Thread-safe bounded admission queue over opaque job payloads.
pub struct Admission<J> {
    cfg: AdmissionConfig,
    state: Mutex<State<J>>,
}

impl<J> Admission<J> {
    pub fn new(cfg: AdmissionConfig) -> Self {
        assert!(cfg.max_active > 0, "max_active must be at least 1");
        Admission {
            cfg,
            state: Mutex::new(State {
                active: 0,
                queue: VecDeque::new(),
            }),
        }
    }

    pub fn config(&self) -> AdmissionConfig {
        self.cfg
    }

    /// Offer a job: runs now, waits, or bounces.
    pub fn offer(&self, job: J) -> Offer<J> {
        let mut s = self.state.lock().unwrap();
        if s.active < self.cfg.max_active {
            s.active += 1;
            Offer::Run(job)
        } else if s.queue.len() < self.cfg.queue_cap {
            s.queue.push_back(job);
            Offer::Queued(s.queue.len())
        } else {
            Offer::Rejected(job)
        }
    }

    /// A running job finished (or was cancelled): hand its slot to the
    /// head of the queue, if any. The caller must start the returned
    /// job — its slot is already accounted as active.
    pub fn finish(&self) -> Option<J> {
        let mut s = self.state.lock().unwrap();
        debug_assert!(s.active > 0, "finish without a running job");
        match s.queue.pop_front() {
            Some(next) => Some(next), // slot transfers: active count unchanged
            None => {
                s.active -= 1;
                None
            }
        }
    }

    /// Remove queued jobs matching `pred` (cancellation while waiting)
    /// and return them so the caller can emit their terminal events.
    pub fn remove_queued(&self, mut pred: impl FnMut(&J) -> bool) -> Vec<J> {
        let mut s = self.state.lock().unwrap();
        let mut removed = Vec::new();
        let mut kept = VecDeque::with_capacity(s.queue.len());
        for job in s.queue.drain(..) {
            if pred(&job) {
                removed.push(job);
            } else {
                kept.push_back(job);
            }
        }
        s.queue = kept;
        removed
    }

    /// `(active, queued)` snapshot.
    pub fn counts(&self) -> (usize, usize) {
        let s = self.state.lock().unwrap();
        (s.active, s.queue.len())
    }
}

/// Size a job's parallel team: the smallest team whose predicted
/// per-sweep cost is within 10% of the best candidate's, evaluated
/// through the tuned cost model when one is installed; a work-based
/// heuristic otherwise. Always in `1..=cap`.
pub fn choose_team(dims: &[usize], rank: usize, cap: usize) -> usize {
    let cap = cap.max(1);
    let total: usize = dims.iter().product();
    // Predicted seconds for one full sweep (all modes, each mode's
    // cheapest algorithm) at team size `t`, if the model covers it.
    let sweep_cost = |t: usize| -> Option<f64> {
        let mut sum = 0.0;
        for n in 0..dims.len() {
            let c = tuned_cost(dims, rank, n, t)?;
            let mut best = c.one_step.min(c.two_step);
            if let Some(f) = c.fused {
                best = best.min(f);
            }
            sum += best;
        }
        Some(sum)
    };
    if let Some(costs) = (1..=cap).map(sweep_cost).collect::<Option<Vec<f64>>>() {
        let best = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        for (i, &c) in costs.iter().enumerate() {
            if c <= best * 1.10 {
                return i + 1;
            }
        }
    }
    // No model: ~1 slot per 256Ki entries, capped.
    (total >> 18).clamp(1, cap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offers_fill_active_then_queue_then_reject() {
        let adm = Admission::new(AdmissionConfig {
            max_active: 2,
            queue_cap: 2,
        });
        assert!(matches!(adm.offer("a"), Offer::Run("a")));
        assert!(matches!(adm.offer("b"), Offer::Run("b")));
        assert!(matches!(adm.offer("c"), Offer::Queued(1)));
        assert!(matches!(adm.offer("d"), Offer::Queued(2)));
        match adm.offer("e") {
            Offer::Rejected(job) => assert_eq!(job, "e"),
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(adm.counts(), (2, 2));
    }

    #[test]
    fn finish_promotes_fifo_and_frees_slots() {
        let adm = Admission::new(AdmissionConfig {
            max_active: 1,
            queue_cap: 3,
        });
        assert!(matches!(adm.offer(1), Offer::Run(1)));
        assert!(matches!(adm.offer(2), Offer::Queued(1)));
        assert!(matches!(adm.offer(3), Offer::Queued(2)));
        assert_eq!(adm.finish(), Some(2), "FIFO promotion");
        assert_eq!(adm.finish(), Some(3));
        assert_eq!(adm.finish(), None);
        assert_eq!(adm.counts(), (0, 0));
        assert!(matches!(adm.offer(4), Offer::Run(4)), "slot is free again");
    }

    #[test]
    fn cancelled_queued_jobs_are_removed() {
        let adm = Admission::new(AdmissionConfig {
            max_active: 1,
            queue_cap: 4,
        });
        let _ = adm.offer(10);
        let _ = adm.offer(11);
        let _ = adm.offer(12);
        let _ = adm.offer(13);
        let removed = adm.remove_queued(|j| j % 2 == 1);
        assert_eq!(removed, vec![11, 13]);
        assert_eq!(adm.counts(), (1, 1));
        assert_eq!(adm.finish(), Some(12), "queue order preserved");
    }

    #[test]
    fn choose_team_heuristic_scales_with_work() {
        // No tuned profile installed in this test binary: the
        // work-based fallback applies.
        assert_eq!(choose_team(&[10, 10, 10], 4, 8), 1);
        assert!(choose_team(&[256, 256, 64], 16, 8) >= 8);
        assert_eq!(choose_team(&[512, 512, 512], 16, 4), 4, "cap wins");
        assert_eq!(choose_team(&[2, 2], 1, 0), 1, "cap floor is 1");
    }
}
