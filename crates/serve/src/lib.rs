//! `tensorcpd`: a multi-tenant CP decomposition service.
//!
//! This crate turns the repository's decomposition stack into a
//! long-running daemon: clients submit jobs over a newline-delimited
//! JSON protocol (`mttkrp-jobs-v1`, see `docs/FORMATS.md`) on a Unix or
//! TCP socket, pointing at MTKT/MTKS/MTTB files on disk; the daemon
//! admits them through a bounded queue (rejecting with backpressure
//! when full), sizes each job's parallel team from the tuned cost
//! model, drives CP-ALS sweeps on the shared work-stealing
//! [`Scheduler`](mttkrp_sched::Scheduler), and streams fit trajectories
//! and factor matrices back as events.
//!
//! Layout:
//! * [`protocol`] — request/response envelope types and NDJSON codec.
//! * [`admission`] — bounded queue, active-job table, team sizing.
//! * [`server`] — socket accept loop, connection handling, job drivers.

pub mod admission;
pub mod protocol;
pub mod server;

pub use admission::{choose_team, Admission, AdmissionConfig, Offer};
pub use protocol::{FactorPayload, Format, JobEvent, JobRequest, JobSpec, PROTOCOL};
pub use server::{Bind, Server, ServerConfig};
