//! The `tensorcpd` socket server: accept loop, connection handling,
//! and the per-job drivers that sweep CP-ALS on the shared
//! work-stealing scheduler.
//!
//! Concurrency model: one OS thread per client connection (parsing
//! requests, emitting events under a per-connection writer lock) and
//! one *driver* thread per active job. Drivers are bounded by the
//! admission controller (`max_active`); each driver, on finishing a
//! job, immediately takes over the head of the queue — the active-slot
//! count never dips while work is waiting. All drivers size a
//! per-job [`ThreadPool`] (team from the spec or the tuned cost model)
//! that submits its parallel regions to the one shared
//! [`Scheduler`], which is where jobs of different sizes actually
//! interleave: an idle worker steals region slots from whichever job
//! has them queued.
//!
//! Cancellation: every job carries a [`CancelToken`]. A `cancel`
//! request flips the token (observed by the driver between sweeps) and
//! sweeps the admission queue, so a queued job cancels without ever
//! starting and its queue slot frees immediately.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use mttkrp_core::MttkrpBackend;
use mttkrp_cpals::{CpAlsOptions, CpAlsSweep, KruskalModel, MttkrpStrategy};
use mttkrp_ooc::OocTensor;
use mttkrp_parallel::ThreadPool;
use mttkrp_sched::{CancelToken, Scheduler};
use mttkrp_sparse::CsfTensor;
use mttkrp_tensor::DenseTensor;
use mttkrp_workloads::{read_sparse, read_tensor};

use crate::admission::{choose_team, Admission, AdmissionConfig, Offer};
use crate::protocol::{FactorPayload, Format, JobEvent, JobRequest, JobSpec};

/// Where the daemon listens.
#[derive(Debug, Clone)]
pub enum Bind {
    /// Unix-domain socket at the given path (removed on bind if stale).
    #[cfg(unix)]
    Unix(PathBuf),
    /// TCP address, e.g. `127.0.0.1:7117` (`:0` picks a free port).
    Tcp(String),
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    pub bind: Bind,
    pub admission: AdmissionConfig,
    /// Cap on any single job's team size.
    pub max_team: usize,
    /// Scheduler to run jobs on; `None` uses the process-global one.
    pub scheduler: Option<Scheduler>,
}

impl ServerConfig {
    /// Config with defaults sized for the host: team cap = available
    /// parallelism, 2 active jobs, 8 queued.
    pub fn new(bind: Bind) -> ServerConfig {
        ServerConfig {
            bind,
            admission: AdmissionConfig::default(),
            max_team: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            scheduler: None,
        }
    }
}

/// A connection's event sink, shared between its reader thread and the
/// drivers of jobs it submitted. Lines are written whole, under the
/// lock, so events never interleave mid-line.
type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

fn emit(w: &SharedWriter, ev: &JobEvent) {
    let mut line = ev.to_json();
    line.push('\n');
    let mut g = w.lock().unwrap();
    // A vanished client is not an error worth crashing a driver over.
    let _ = g.write_all(line.as_bytes());
    let _ = g.flush();
}

/// A submitted job: spec plus the plumbing its driver needs.
struct Job {
    id: String,
    spec: JobSpec,
    cancel: CancelToken,
    writer: SharedWriter,
}

/// Resolved listen address, kept so `stop()`/`shutdown` can poke the
/// accept loop out of its blocking `accept`.
#[derive(Debug, Clone)]
enum BoundAddr {
    #[cfg(unix)]
    Unix(PathBuf),
    Tcp(SocketAddr),
}

struct Shared {
    admission: Admission<Job>,
    /// Live tokens by job id (running and queued), for `cancel`.
    cancels: Mutex<HashMap<String, CancelToken>>,
    sched: Scheduler,
    max_team: usize,
    stop: AtomicBool,
    addr: BoundAddr,
    drivers: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn poke(&self) {
        match &self.addr {
            #[cfg(unix)]
            BoundAddr::Unix(p) => {
                let _ = UnixStream::connect(p);
            }
            BoundAddr::Tcp(a) => {
                let _ = TcpStream::connect(a);
            }
        }
    }
}

/// A running `tensorcpd` server. Dropping it stops the accept loop and
/// joins all job drivers.
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

enum Listener {
    #[cfg(unix)]
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Server {
    /// Bind and start accepting. Returns once the socket is listening,
    /// so a client may connect immediately after.
    pub fn start(cfg: ServerConfig) -> io::Result<Server> {
        let (listener, addr) = match &cfg.bind {
            #[cfg(unix)]
            Bind::Unix(path) => {
                // A stale socket file from a previous run refuses to
                // bind; remove it (harmless when absent).
                let _ = std::fs::remove_file(path);
                (
                    Listener::Unix(UnixListener::bind(path)?),
                    BoundAddr::Unix(path.clone()),
                )
            }
            Bind::Tcp(spec) => {
                let l = TcpListener::bind(spec)?;
                let addr = l.local_addr()?;
                (Listener::Tcp(l), BoundAddr::Tcp(addr))
            }
        };
        let shared = Arc::new(Shared {
            admission: Admission::new(cfg.admission),
            cancels: Mutex::new(HashMap::new()),
            sched: cfg.scheduler.unwrap_or_else(|| Scheduler::global().clone()),
            max_team: cfg.max_team.max(1),
            stop: AtomicBool::new(false),
            addr,
            drivers: Mutex::new(Vec::new()),
        });
        let accept_shared = shared.clone();
        let accept = std::thread::Builder::new()
            .name("tensorcpd-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("failed to spawn accept thread");
        Ok(Server {
            shared,
            accept: Some(accept),
        })
    }

    /// The TCP port actually bound (for `Tcp(":0")` configs); `None`
    /// for Unix sockets.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        match &self.shared.addr {
            BoundAddr::Tcp(a) => Some(*a),
            #[cfg(unix)]
            _ => None,
        }
    }

    /// Block until a client sends `shutdown` (the daemon main's idle
    /// state).
    pub fn wait(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// Stop accepting, then join every job driver (running jobs finish
    /// their current sweep loop normally).
    pub fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.poke();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let drivers: Vec<_> = self.shared.drivers.lock().unwrap().drain(..).collect();
        for d in drivers {
            let _ = d.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: Listener, shared: Arc<Shared>) {
    loop {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let conn: io::Result<(Box<dyn BufRead + Send>, SharedWriter)> = match &listener {
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().and_then(|(s, _)| {
                let r = s.try_clone()?;
                Ok((
                    Box::new(BufReader::new(r)) as Box<dyn BufRead + Send>,
                    Arc::new(Mutex::new(Box::new(s) as Box<dyn Write + Send>)),
                ))
            }),
            Listener::Tcp(l) => l.accept().and_then(|(s, _)| {
                let r = s.try_clone()?;
                Ok((
                    Box::new(BufReader::new(r)) as Box<dyn BufRead + Send>,
                    Arc::new(Mutex::new(Box::new(s) as Box<dyn Write + Send>)),
                ))
            }),
        };
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        match conn {
            Ok((reader, writer)) => {
                let conn_shared = shared.clone();
                // Connection threads die on client EOF; no join needed.
                let _ = std::thread::Builder::new()
                    .name("tensorcpd-conn".into())
                    .spawn(move || handle_conn(conn_shared, reader, writer));
            }
            Err(_) => break,
        }
    }
    #[cfg(unix)]
    if let BoundAddr::Unix(p) = &shared.addr {
        let _ = std::fs::remove_file(p);
    }
}

fn handle_conn(shared: Arc<Shared>, reader: Box<dyn BufRead + Send>, writer: SharedWriter) {
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match JobRequest::parse(&line) {
            Err(reason) => {
                emit(
                    &writer,
                    &JobEvent::Rejected {
                        id: String::new(),
                        code: 400,
                        reason,
                    },
                );
            }
            Ok(JobRequest::Status) => {
                let (active, queued) = shared.admission.counts();
                let cfg = shared.admission.config();
                emit(
                    &writer,
                    &JobEvent::Status {
                        active,
                        queued,
                        max_active: cfg.max_active,
                        queue_cap: cfg.queue_cap,
                    },
                );
            }
            Ok(JobRequest::Shutdown) => {
                emit(&writer, &JobEvent::ShuttingDown);
                shared.stop.store(true, Ordering::Release);
                shared.poke();
                break;
            }
            Ok(JobRequest::Cancel { id }) => cancel_job(&shared, &id, &writer),
            Ok(JobRequest::Submit { id, spec }) => submit_job(&shared, id, spec, &writer),
        }
    }
}

fn cancel_job(shared: &Arc<Shared>, id: &str, writer: &SharedWriter) {
    let token = shared.cancels.lock().unwrap().get(id).cloned();
    match token {
        None => emit(
            writer,
            &JobEvent::Error {
                id: id.to_string(),
                reason: "unknown job id".into(),
            },
        ),
        Some(token) => {
            token.cancel();
            mttkrp_obs::counter!("serve.jobs_cancelled").incr();
            // A *queued* job cancels immediately: pull it out of the
            // queue so it never occupies an active slot.
            for job in shared.admission.remove_queued(|j| j.id == id) {
                shared.cancels.lock().unwrap().remove(&job.id);
                emit(&job.writer, &JobEvent::Cancelled { id: job.id.clone() });
            }
            // A *running* job's driver observes the token between
            // sweeps and emits its own `cancelled` event.
        }
    }
}

fn submit_job(shared: &Arc<Shared>, id: String, spec: JobSpec, writer: &SharedWriter) {
    mttkrp_obs::counter!("serve.jobs_submitted").incr();
    {
        let mut cancels = shared.cancels.lock().unwrap();
        if cancels.contains_key(&id) {
            emit(
                writer,
                &JobEvent::Rejected {
                    id,
                    code: 400,
                    reason: "duplicate job id".into(),
                },
            );
            return;
        }
        cancels.insert(id.clone(), CancelToken::new());
    }
    let cancel = shared.cancels.lock().unwrap()[&id].clone();
    let job = Job {
        id: id.clone(),
        spec,
        cancel,
        writer: writer.clone(),
    };
    match shared.admission.offer(job) {
        Offer::Run(job) => {
            emit(writer, &JobEvent::Accepted { id, queue_depth: 0 });
            // The offer already claimed an active slot; the driver
            // owns it until `finish`.
            spawn_driver(shared, job);
        }
        Offer::Queued(depth) => {
            emit(
                writer,
                &JobEvent::Accepted {
                    id,
                    queue_depth: depth,
                },
            );
        }
        Offer::Rejected(job) => {
            mttkrp_obs::counter!("serve.jobs_rejected").incr();
            shared.cancels.lock().unwrap().remove(&job.id);
            emit(
                writer,
                &JobEvent::Rejected {
                    id: job.id,
                    code: 429,
                    reason: "admission queue full".into(),
                },
            );
        }
    }
}

fn spawn_driver(shared: &Arc<Shared>, job: Job) {
    let driver_shared = shared.clone();
    let h = std::thread::Builder::new()
        .name("tensorcpd-driver".into())
        .spawn(move || run_driver(driver_shared, job))
        .expect("failed to spawn job driver");
    shared.drivers.lock().unwrap().push(h);
}

/// Drive jobs to completion, chaining onto the queue head after each:
/// the active slot this driver holds is handed from job to job by
/// `Admission::finish`, so the daemon runs exactly `max_active` drivers
/// whenever work is waiting.
fn run_driver(shared: Arc<Shared>, first: Job) {
    let mut job = first;
    loop {
        execute_job(&shared, &job);
        shared.cancels.lock().unwrap().remove(&job.id);
        match shared.admission.finish() {
            Some(next) => job = next,
            None => break,
        }
    }
}

/// Load the tensor, size the team, and sweep CP-ALS, streaming events
/// to the job's submitter.
fn execute_job(shared: &Arc<Shared>, job: &Job) {
    if job.cancel.is_cancelled() {
        mttkrp_obs::counter!("serve.jobs_cancelled_before_start").incr();
        emit(&job.writer, &JobEvent::Cancelled { id: job.id.clone() });
        return;
    }
    let _span = mttkrp_obs::span_full!("serve.job");
    let spec = &job.spec;
    let outcome = match spec.format {
        Format::Dense => read_tensor::<f64>(&spec.path)
            .map_err(|e| format!("failed to read dense tensor: {e}"))
            .map(|x| {
                let dims = x.dims().to_vec();
                (dims, DriverInput::Dense(x))
            }),
        Format::Sparse => read_sparse(&spec.path)
            .map_err(|e| format!("failed to read sparse tensor: {e}"))
            .map(|coo| {
                let csf = CsfTensor::from_coo(&coo);
                let dims = csf.dims().to_vec();
                (dims, DriverInput::Sparse(csf))
            }),
        Format::Ooc => OocTensor::open(&spec.path)
            .map_err(|e| format!("failed to open out-of-core tensor: {e}"))
            .map(|x| {
                let dims = x.dims().to_vec();
                (dims, DriverInput::Ooc(Box::new(x)))
            }),
    };
    let (dims, input) = match outcome {
        Ok(v) => v,
        Err(reason) => {
            emit(
                &job.writer,
                &JobEvent::Error {
                    id: job.id.clone(),
                    reason,
                },
            );
            return;
        }
    };
    if dims.is_empty() || spec.rank == 0 {
        emit(
            &job.writer,
            &JobEvent::Error {
                id: job.id.clone(),
                reason: "degenerate tensor or rank".into(),
            },
        );
        return;
    }
    let team = if spec.threads > 0 {
        spec.threads.min(shared.max_team)
    } else {
        choose_team(&dims, spec.rank, shared.max_team)
    };
    emit(
        &job.writer,
        &JobEvent::Started {
            id: job.id.clone(),
            team,
        },
    );
    let mut pool = ThreadPool::with_scheduler(team, shared.sched.clone());
    pool.set_cancel_token(job.cancel.clone());
    let init = KruskalModel::<f64>::random(&dims, spec.rank, spec.seed);
    let started = Instant::now();
    let result = match input {
        DriverInput::Dense(x) => drive(job, &pool, &x, init),
        DriverInput::Sparse(x) => drive(job, &pool, &x, init),
        DriverInput::Ooc(x) => drive(job, &pool, &*x, init),
    };
    let Some((model, fits, converged)) = result else {
        mttkrp_obs::counter!("serve.jobs_cancelled_running").incr();
        emit(&job.writer, &JobEvent::Cancelled { id: job.id.clone() });
        return;
    };
    let factors = spec.return_factors.then(|| FactorPayload {
        dims: dims.clone(),
        rank: spec.rank,
        factors: model.factors.clone(),
        lambda: model.lambda.clone(),
    });
    mttkrp_obs::counter!("serve.jobs_completed").incr();
    emit(
        &job.writer,
        &JobEvent::Done {
            id: job.id.clone(),
            iters: fits.len(),
            final_fit: fits.last().copied().unwrap_or(f64::NAN),
            converged,
            elapsed_ms: started.elapsed().as_secs_f64() * 1e3,
            factors,
        },
    );
}

enum DriverInput {
    Dense(DenseTensor<f64>),
    Sparse(CsfTensor),
    Ooc(Box<OocTensor>),
}

/// Sweep CP-ALS over any backend, checking the cancel token between
/// sweeps and streaming per-iteration fits. `None` means cancelled.
fn drive<X: MttkrpBackend<Elem = f64>>(
    job: &Job,
    pool: &ThreadPool,
    x: &X,
    init: KruskalModel<f64>,
) -> Option<(KruskalModel<f64>, Vec<f64>, bool)> {
    let spec = &job.spec;
    let opts = CpAlsOptions {
        max_iters: spec.max_iters,
        tol: spec.tol,
        strategy: MttkrpStrategy::Auto,
    };
    let mut sweeper = CpAlsSweep::new(pool, x, init, &opts);
    let mut fits = Vec::new();
    let mut converged = false;
    for iter in 0..spec.max_iters {
        if job.cancel.is_cancelled() {
            return None;
        }
        let (fit, _) = sweeper.sweep(pool, x);
        if spec.stream_fits {
            emit(
                &job.writer,
                &JobEvent::Fit {
                    id: job.id.clone(),
                    iter,
                    fit,
                },
            );
        }
        let delta = fits.last().map_or(f64::INFINITY, |p: &f64| (fit - p).abs());
        fits.push(fit);
        if spec.tol > 0.0 && delta < spec.tol {
            converged = true;
            break;
        }
    }
    Some((sweeper.into_model(), fits, converged))
}
