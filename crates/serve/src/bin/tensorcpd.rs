//! `tensorcpd` — the multi-tenant CP decomposition daemon.
//!
//! Listens on a Unix or TCP socket for `mttkrp-jobs-v1` NDJSON
//! requests (see `docs/FORMATS.md`), runs admitted jobs on the shared
//! work-stealing scheduler, and streams fit trajectories back.
//!
//! ```text
//! tensorcpd --unix /tmp/tensorcpd.sock --max-active 2 --queue-cap 8
//! tensorcpd --tcp 127.0.0.1:7117 --max-team 8 --workers 6
//! ```

use std::process::ExitCode;

use mttkrp_sched::Scheduler;
use mttkrp_serve::server::Bind;
use mttkrp_serve::{AdmissionConfig, Server, ServerConfig};

const USAGE: &str = "usage: tensorcpd (--unix PATH | --tcp ADDR) \
    [--max-active N] [--queue-cap N] [--max-team N] [--workers N]";

fn main() -> ExitCode {
    let mut bind: Option<Bind> = None;
    let mut admission = AdmissionConfig::default();
    let mut max_team = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut workers: Option<usize> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        let parsed: Result<(), String> = (|| match arg.as_str() {
            "--unix" => {
                #[cfg(unix)]
                {
                    bind = Some(Bind::Unix(value("--unix")?.into()));
                    Ok(())
                }
                #[cfg(not(unix))]
                Err("--unix is not supported on this platform".into())
            }
            "--tcp" => {
                bind = Some(Bind::Tcp(value("--tcp")?));
                Ok(())
            }
            "--max-active" => {
                admission.max_active = parse_num(&value("--max-active")?)?;
                Ok(())
            }
            "--queue-cap" => {
                admission.queue_cap = parse_num(&value("--queue-cap")?)?;
                Ok(())
            }
            "--max-team" => {
                max_team = parse_num(&value("--max-team")?)?;
                Ok(())
            }
            "--workers" => {
                workers = Some(parse_num(&value("--workers")?)?);
                Ok(())
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => Err(format!("unknown argument: {other}")),
        })();
        if let Err(e) = parsed {
            eprintln!("tensorcpd: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    }
    let Some(bind) = bind else {
        eprintln!("tensorcpd: no listen address\n{USAGE}");
        return ExitCode::from(2);
    };

    // Pick up a calibrated tuning profile if MTTKRP_TUNE_PROFILE
    // points at one (team sizing falls back to the work heuristic
    // otherwise).
    match mttkrp_tune::init_from_env() {
        Ok(Some(_)) => {
            eprintln!("tensorcpd: tuned cost model installed from MTTKRP_TUNE_PROFILE");
        }
        Ok(None) => {}
        Err(e) => {
            eprintln!("tensorcpd: failed to load MTTKRP_TUNE_PROFILE profile: {e}");
            return ExitCode::from(1);
        }
    }

    let cfg = ServerConfig {
        bind,
        admission,
        max_team,
        // --workers N runs jobs on a dedicated scheduler; by default
        // jobs share the process-global one (sized by
        // MTTKRP_SCHED_WORKERS or available parallelism).
        scheduler: workers.map(Scheduler::new),
    };
    let mut server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tensorcpd: failed to bind: {e}");
            return ExitCode::from(1);
        }
    };
    match server.tcp_addr() {
        Some(addr) => println!("tensorcpd: listening on tcp {addr}"),
        None => println!("tensorcpd: listening on unix socket"),
    }
    server.wait();
    server.stop();
    println!("tensorcpd: shut down");
    ExitCode::SUCCESS
}

fn parse_num(s: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("invalid number: {s}"))
}
