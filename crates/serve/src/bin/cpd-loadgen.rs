//! `cpd-loadgen` — mixed-traffic driver for `tensorcpd`, and the PR-10
//! trajectory record (`BENCH_pr10.json`).
//!
//! Generates a dense (MTKT), sparse (MTKS), and out-of-core (MTTB)
//! workload in a temp directory, starts an in-process daemon on a
//! loopback TCP socket, and drives the same six-job mixed batch (2×
//! dense, 2× sparse, 2× ooc) through two phases:
//!
//! 1. **Serialized**: one connection, one job at a time — the
//!    static-baseline cost of the batch (no overlap).
//! 2. **Concurrent**: one connection per job, all submitted at once —
//!    jobs overlap on the shared work-stealing scheduler, bounded by
//!    the admission controller.
//!
//! Reported: per-job latencies, concurrent-phase p50/p99, aggregate
//! throughput ratio (serialized batch seconds / concurrent wall
//! seconds), and a single-job check (CP-ALS alone on the work-stealing
//! scheduler vs a 0-worker scheduler, whose submitter-executes-all mode
//! is the old static schedule). The report must pass the PR-9
//! bench-diff identity self-check.
//!
//! The ≥1.3× throughput and ≤5% single-job assertions only arm on
//! hosts with ≥4 scheduler workers and outside `MTTKRP_BENCH_SMOKE=1`
//! — on a 1-core CI box there is no overlap to win.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::Instant;

use mttkrp_cpals::{cp_als, CpAlsOptions, KruskalModel, MttkrpStrategy};
use mttkrp_obs::{BenchDiff, BenchReport};
use mttkrp_ooc::{TileStore, TiledLayout};
use mttkrp_parallel::ThreadPool;
use mttkrp_rng::Rng64;
use mttkrp_sched::Scheduler;
use mttkrp_serve::{
    AdmissionConfig, Bind, Format, JobEvent, JobRequest, JobSpec, Server, ServerConfig, PROTOCOL,
};
use mttkrp_tensor::DenseTensor;
use mttkrp_workloads::{random_sparse, write_sparse, write_tensor};

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    fn send(&mut self, req: &JobRequest) {
        let mut line = req.to_json();
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .expect("send request");
    }

    fn next_event(&mut self) -> JobEvent {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.reader.read_line(&mut line).expect("read event");
            assert!(n > 0, "daemon closed the connection");
            if !line.trim().is_empty() {
                return JobEvent::parse(line.trim()).expect("parse event");
            }
        }
    }

    /// Submit and block until the job's terminal event; seconds from
    /// submit to `done` (the client-observed latency, queueing
    /// included).
    fn run_job(&mut self, id: &str, spec: JobSpec) -> (f64, f64) {
        let start = Instant::now();
        self.send(&JobRequest::Submit {
            id: id.into(),
            spec,
        });
        loop {
            match self.next_event() {
                JobEvent::Done {
                    id: done_id,
                    final_fit,
                    ..
                } if done_id == id => return (start.elapsed().as_secs_f64(), final_fit),
                JobEvent::Accepted { .. } | JobEvent::Started { .. } | JobEvent::Fit { .. } => {}
                other => panic!("job {id}: unexpected event {other:?}"),
            }
        }
    }
}

/// The six-job mixed batch over the generated files.
fn batch(dir: &Path, rank: usize, iters: usize, threads: usize) -> Vec<(String, JobSpec)> {
    let spec = |file: &str, format: Format, seed: u64| JobSpec {
        path: dir.join(file).to_string_lossy().into_owned(),
        format,
        rank,
        max_iters: iters,
        tol: 0.0,
        threads,
        seed,
        stream_fits: false,
        return_factors: false,
    };
    vec![
        ("dense-0".into(), spec("x.mtkt", Format::Dense, 11)),
        ("sparse-0".into(), spec("x.mtks", Format::Sparse, 12)),
        ("ooc-0".into(), spec("x.mttb", Format::Ooc, 13)),
        ("dense-1".into(), spec("x.mtkt", Format::Dense, 21)),
        ("sparse-1".into(), spec("x.mtks", Format::Sparse, 22)),
        ("ooc-1".into(), spec("x.mttb", Format::Ooc, 23)),
    ]
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn main() {
    let smoke = std::env::var("MTTKRP_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let workers = Scheduler::default_workers();
    let (dims, tile, nnz, rank, iters, threads) = if smoke {
        (vec![10usize, 8, 6], vec![4usize, 4, 3], 300, 4, 4, 0)
    } else {
        (
            vec![48usize, 40, 32],
            vec![16usize, 16, 8],
            40_000,
            8,
            10,
            2,
        )
    };

    // --- workload files ---
    let dir: PathBuf = std::env::temp_dir().join(format!("cpd_loadgen_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create workload dir");
    let mut rng = Rng64::seed_from_u64(0x10AD);
    let total: usize = dims.iter().product();
    let x = DenseTensor::from_vec(&dims, (0..total).map(|_| rng.next_f64() - 0.5).collect());
    write_tensor(dir.join("x.mtkt"), &x).expect("write dense");
    write_sparse(dir.join("x.mtks"), &random_sparse(&dims, nnz, 0x5EED)).expect("write sparse");
    let layout = TiledLayout::new(&dims, &tile);
    TileStore::write_dense(dir.join("x.mttb"), &layout, &x).expect("write ooc");

    // --- daemon on loopback ---
    let mut server = Server::start(ServerConfig {
        bind: Bind::Tcp("127.0.0.1:0".into()),
        admission: AdmissionConfig {
            max_active: 3,
            queue_cap: 8,
        },
        max_team: threads.max(2),
        scheduler: None,
    })
    .expect("start daemon");
    let addr = server.tcp_addr().expect("tcp address");
    println!("cpd-loadgen: daemon on {addr}, {workers} scheduler workers, smoke={smoke}");

    let jobs = batch(&dir, rank, iters, threads);

    // --- phase 1: serialized baseline ---
    let mut client = Client::connect(addr).expect("connect");
    let serial_start = Instant::now();
    let mut serial_lat = Vec::new();
    let mut serial_fits = Vec::new();
    for (id, spec) in &jobs {
        let (lat, fit) = client.run_job(id, spec.clone());
        serial_lat.push(lat);
        serial_fits.push(fit);
    }
    let serial_total = serial_start.elapsed().as_secs_f64();

    // --- phase 2: concurrent mixed traffic ---
    let conc_start = Instant::now();
    let handles: Vec<_> = jobs
        .iter()
        .map(|(id, spec)| {
            let id = format!("c-{id}");
            let spec = spec.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                c.run_job(&id, spec)
            })
        })
        .collect();
    let conc_results: Vec<(f64, f64)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let conc_wall = conc_start.elapsed().as_secs_f64();

    // Same files, same seeds, same team sizes → the fits must agree
    // exactly between phases (determinism under interleaving).
    for (i, ((_, fit), want)) in conc_results.iter().zip(&serial_fits).enumerate() {
        assert!(
            (fit - want).abs() <= 1e-12,
            "job {} fit drifted between phases: {fit} vs {want}",
            jobs[i].0
        );
    }

    let mut conc_lat: Vec<f64> = conc_results.iter().map(|r| r.0).collect();
    conc_lat.sort_by(f64::total_cmp);
    let throughput_ratio = serial_total / conc_wall;

    // --- single-job check: work-stealing vs 0-worker static mode ---
    let t_single = threads.max(1);
    let opts = CpAlsOptions {
        max_iters: iters,
        tol: 0.0,
        strategy: MttkrpStrategy::Auto,
    };
    let time_alone = |sched: &Scheduler| {
        let pool = ThreadPool::with_scheduler(t_single, sched.clone());
        let init = KruskalModel::<f64>::random(&dims, rank, 7);
        let t0 = Instant::now();
        let _ = cp_als(&pool, &x, init, &opts);
        t0.elapsed().as_secs_f64()
    };
    let static_sched = Scheduler::new(0);
    let single_static = time_alone(&static_sched);
    static_sched.shutdown();
    let single_ws = time_alone(Scheduler::global());
    let single_ratio = single_static / single_ws; // ≥ 0.95 wanted

    // --- report ---
    let mut report = BenchReport::new(10);
    report
        .scalar("protocol", PROTOCOL)
        .scalar("smoke", smoke)
        .scalar("sched_workers", workers)
        .scalar("jobs", jobs.len())
        .scalar("max_active", 3usize)
        .scalar("rank", rank)
        .scalar(
            "dims",
            dims.iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("x"),
        );
    for (i, (id, spec)) in jobs.iter().enumerate() {
        report
            .row("job")
            .field("id", id.as_str())
            .field("format", spec.format.as_str())
            .field("serial_ms", serial_lat[i] * 1e3)
            .field("concurrent_ms", conc_results[i].0 * 1e3)
            .field("final_fit", serial_fits[i]);
    }
    report
        .row("latency")
        .field("phase", "concurrent")
        .field("p50_ms", percentile(&conc_lat, 0.50) * 1e3)
        .field("p99_ms", percentile(&conc_lat, 0.99) * 1e3)
        .field("max_ms", conc_lat.last().copied().unwrap_or(0.0) * 1e3);
    report
        .row("throughput")
        .field("serial_s", serial_total)
        .field("concurrent_wall_s", conc_wall)
        .field("ratio", throughput_ratio);
    report
        .row("single_job")
        .field("static_ms", single_static * 1e3)
        .field("ws_ms", single_ws * 1e3)
        .field("ratio", single_ratio);

    // PR-9 gate compatibility: this report diffed against itself must
    // pass — the CI leg runs the same check on the committed file.
    let json = report.to_json();
    let identity_ok = BenchDiff::from_json("pr10", &json, "pr10", &json)
        .expect("identity diff parses")
        .pass(BenchDiff::DEFAULT_TOLERANCE_PCT);
    report
        .row("diff_selftest")
        .field("check", "identity_passes")
        .field("ok", identity_ok);
    assert!(identity_ok, "bench-diff identity self-check failed");

    // Acceptance: only armed where overlap is physically possible.
    let armed = workers >= 4 && !smoke;
    report
        .scalar("acceptance_armed", armed)
        .scalar("throughput_ratio", throughput_ratio)
        .scalar("single_job_ratio", single_ratio);
    println!(
        "cpd-loadgen: serialized {serial_total:.3}s, concurrent {conc_wall:.3}s \
         (ratio {throughput_ratio:.2}x), p50 {:.1}ms p99 {:.1}ms, \
         single-job static/ws {single_ratio:.3}",
        percentile(&conc_lat, 0.50) * 1e3,
        percentile(&conc_lat, 0.99) * 1e3,
    );
    if armed {
        assert!(
            throughput_ratio >= 1.3,
            "mixed-traffic throughput ratio {throughput_ratio:.2} < 1.3x"
        );
        assert!(
            single_ratio >= 0.95,
            "single-job regression: static/ws ratio {single_ratio:.3} < 0.95"
        );
    } else {
        println!(
            "cpd-loadgen: acceptance thresholds not armed \
             (workers={workers}, smoke={smoke})"
        );
    }

    let out = BenchReport::out_path("BENCH_pr10.json");
    report.save(&out).expect("write report");
    println!("cpd-loadgen: wrote {out}");

    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}
