//! Small, dependency-free deterministic PRNG for workload generation
//! and randomized tests.
//!
//! The repo is built in environments without network access to a crate
//! registry, so instead of `rand`/`rand_chacha` this crate provides a
//! xoshiro256** generator (Blackman & Vigna) seeded through SplitMix64 —
//! the standard construction for expanding a 64-bit seed into the full
//! 256-bit state. Streams are deterministic in the seed and identical
//! across platforms (the algorithm is pure 64-bit integer arithmetic),
//! which is all the workload generators and property tests need; nothing
//! here is cryptographic.
//!
//! # Example
//!
//! ```
//! use mttkrp_rng::Rng64;
//!
//! let mut a = Rng64::seed_from_u64(7);
//! let mut b = Rng64::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let u = a.next_f64();
//! assert!((0.0..1.0).contains(&u));
//! ```

/// xoshiro256** generator with SplitMix64 seeding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Expand `seed` into the 256-bit state via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Rng64 {
            s: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform `f64` in `[0, 1)` from the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)` (Lemire rejection-free is overkill
    /// here; modulo bias is negligible for test-sized `n` ≪ 2⁶⁴).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn usize_below(&mut self, n: usize) -> usize {
        assert!(n > 0, "usize_below(0) is undefined");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.usize_below(hi - lo)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::seed_from_u64(43);
        assert_ne!(Rng64::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn known_answer_pins_the_stream() {
        // Pin the exact stream so accidental algorithm changes (which
        // would silently change every generated workload) are caught.
        let mut r = Rng64::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                11091344671253066420,
                13793997310169335082,
                1900383378846508768,
                7684712102626143532,
            ]
        );
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut r = Rng64::seed_from_u64(9);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Rng64::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.usize_in(3, 17);
            assert!((3..17).contains(&v));
            let f = r.f64_in(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&f));
        }
        // Every value of a small range is eventually hit.
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.usize_below(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
