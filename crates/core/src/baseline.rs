//! The Bader–Kolda baseline (§2.3): explicitly reorder the tensor into a
//! column-major matricization, form the full KRP, and make one GEMM
//! call. The reordering pass is purely memory-bound, which is exactly
//! what the paper's algorithms eliminate.
//!
//! The paper's *plotted* "Baseline" is a lower bound on this approach —
//! the time of the single DGEMM alone, ignoring reorder and KRP costs.
//! [`baseline_gemm_only`] provides that operation for the harness.

use mttkrp_blas::{par_gemm, Layout, MatMut, MatRef, Scalar};
use mttkrp_krp::{krp_reuse, krp_rows};
use mttkrp_parallel::ThreadPool;
use mttkrp_tensor::DenseTensor;

use crate::breakdown::{timed, Breakdown};
use crate::{krp_inputs, validate_factors};

/// Full explicit-matricization MTTKRP: reorder + full KRP + one GEMM.
///
/// Output is row-major `I_n × C`, overwritten.
pub fn mttkrp_explicit<S: Scalar>(
    pool: &ThreadPool,
    x: &DenseTensor<S>,
    factors: &[MatRef<S>],
    n: usize,
    out: &mut [S],
) {
    let _ = mttkrp_explicit_timed(pool, x, factors, n, out);
}

/// [`mttkrp_explicit`] with the per-phase breakdown (reorder / full KRP /
/// DGEMM).
pub fn mttkrp_explicit_timed<S: Scalar>(
    pool: &ThreadPool,
    x: &DenseTensor<S>,
    factors: &[MatRef<S>],
    n: usize,
    out: &mut [S],
) -> Breakdown {
    let dims = x.dims();
    assert!(dims.len() >= 2, "MTTKRP requires an order >= 2 tensor");
    let c = validate_factors(dims, factors);
    assert!(n < dims.len(), "mode {n} out of range");
    let i_n = dims[n];
    assert_eq!(out.len(), i_n * c, "output must be I_n × C");

    let total_t0 = std::time::Instant::now();
    let mut bd = Breakdown::default();

    // Reorder tensor entries into an explicit column-major X(n).
    let x_mat = timed(&mut bd.reorder, || {
        x.materialize_unfolding(n, Layout::ColMajor)
    });
    let i_neq = x.info().i_neq(n);

    // Form the full KRP explicitly.
    let inputs = krp_inputs(factors, n);
    debug_assert_eq!(krp_rows(&inputs), i_neq);
    let mut k = vec![S::ZERO; i_neq * c];
    timed(&mut bd.full_krp, || krp_reuse(&inputs, &mut k));

    // One (multithreaded) GEMM.
    timed(&mut bd.dgemm, || {
        let xv = MatRef::from_slice(&x_mat, i_n, i_neq, Layout::ColMajor);
        let kv = MatRef::from_slice(&k, i_neq, c, Layout::RowMajor);
        par_gemm(
            pool,
            1.0,
            xv,
            kv,
            0.0,
            MatMut::from_slice(out, i_n, c, Layout::RowMajor),
        );
    });

    bd.total = total_t0.elapsed().as_secs_f64();
    bd
}

/// The paper's plotted "Baseline": a single DGEMM between column-major
/// matrices with the MTTKRP's shape (`I_n × I≠n` times `I≠n × C`),
/// excluding reorder and KRP time. Operands are caller-provided so the
/// harness can time exactly this call.
pub fn baseline_gemm_only<S: Scalar>(
    pool: &ThreadPool,
    x_mat: MatRef<S>,
    k: MatRef<S>,
    out: &mut [S],
) {
    let (m, c) = (x_mat.nrows(), k.ncols());
    assert_eq!(out.len(), m * c, "output must be I_n × C");
    par_gemm(
        pool,
        1.0,
        x_mat,
        k,
        0.0,
        MatMut::from_slice(out, m, c, Layout::ColMajor),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::mttkrp_oracle;

    fn rand_vec(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 32) as f64) - 0.5
            })
            .collect()
    }

    #[test]
    fn explicit_baseline_matches_oracle() {
        let dims = [4usize, 3, 2, 3];
        let c = 3;
        let x = DenseTensor::from_vec(&dims, rand_vec(72, 1));
        let factors: Vec<Vec<f64>> = dims
            .iter()
            .enumerate()
            .map(|(k, &d)| rand_vec(d * c, k as u64 + 5))
            .collect();
        let refs: Vec<MatRef> = factors
            .iter()
            .zip(&dims)
            .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
            .collect();
        let pool = ThreadPool::new(2);
        for n in 0..dims.len() {
            let mut want = vec![0.0; dims[n] * c];
            let mut got = vec![0.0; dims[n] * c];
            mttkrp_oracle(&x, &refs, n, &mut want);
            mttkrp_explicit(&pool, &x, &refs, n, &mut got);
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()), "mode {n}");
            }
        }
    }

    #[test]
    fn breakdown_has_reorder_krp_and_gemm_phases() {
        let dims = [8usize, 8, 8];
        let c = 4;
        let x = DenseTensor::from_vec(&dims, rand_vec(512, 2));
        let factors: Vec<Vec<f64>> = dims.iter().map(|&d| rand_vec(d * c, 9)).collect();
        let refs: Vec<MatRef> = factors
            .iter()
            .zip(&dims)
            .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
            .collect();
        let pool = ThreadPool::new(1);
        let mut out = vec![0.0; 8 * c];
        let bd = mttkrp_explicit_timed(&pool, &x, &refs, 1, &mut out);
        assert!(bd.reorder > 0.0);
        assert!(bd.full_krp > 0.0);
        assert!(bd.dgemm > 0.0);
        assert_eq!(bd.dgemv, 0.0);
        assert_eq!(bd.reduce, 0.0);
    }

    #[test]
    fn gemm_only_baseline_multiplies() {
        let pool = ThreadPool::new(2);
        let x_mat = vec![1.0; 3 * 4];
        let k = vec![2.0; 4 * 2];
        let xv = MatRef::from_slice(&x_mat, 3, 4, Layout::ColMajor);
        let kv = MatRef::from_slice(&k, 4, 2, Layout::ColMajor);
        let mut out = vec![0.0; 6];
        baseline_gemm_only(&pool, xv, kv, &mut out);
        assert!(out.iter().all(|&v| (v - 8.0).abs() < 1e-12));
    }
}
