//! Backend-generic MTTKRP execution.
//!
//! CP decomposition drivers (ALS sweeps, gradient loops) interact with
//! a tensor through exactly two capabilities: shape/norm queries and
//! repeated planned MTTKRPs against a fixed set of factor matrices.
//! [`MttkrpBackend`] captures that contract so the drivers in
//! `mttkrp-cpals` run unchanged over any storage format — the dense
//! tensors of this crate, or the compressed-sparse-fiber tensors of
//! `mttkrp-sparse`.
//!
//! The associated `PlanSet` type is the backend's reusable execution
//! state: built once per (tensor, rank, team) via
//! [`MttkrpBackend::plan_modes`] and reused across every sweep, exactly
//! as CP-ALS holds a [`MttkrpPlanSet`] today. Backends resolve the
//! dense [`AlgoChoice`] however they see fit — the dense backend plans
//! 1-step/2-step kernels per mode (or falls back to the explicit
//! Bader–Kolda baseline when no choice is given), while sparse
//! backends, which have a single tree-walk kernel per mode, ignore it.

use mttkrp_blas::{MatRef, Scalar};
use mttkrp_parallel::ThreadPool;
use mttkrp_tensor::DenseTensor;

use crate::baseline::mttkrp_explicit_timed;
use crate::breakdown::Breakdown;
use crate::plan::{AlgoChoice, MttkrpPlanSet};

/// A tensor storage format the CP drivers can decompose: shape and norm
/// queries plus reusable planned per-mode MTTKRP execution.
pub trait MttkrpBackend {
    /// The element type the backend stores and the drivers compute in
    /// (`f64` for every backend predating the generic stack).
    type Elem: Scalar;

    /// Reusable per-mode execution state (plans + workspaces), built
    /// once and carried across sweeps.
    type PlanSet;

    /// Tensor dimensions `I_0 × ⋯ × I_{N−1}`.
    fn dims(&self) -> &[usize];

    /// Frobenius norm of the stored tensor.
    fn norm(&self) -> f64;

    /// Build the per-mode plan set for rank `c` on `pool`'s team.
    ///
    /// `choice` is the dense kernel selection: `Some(choice)` plans the
    /// 1-step/2-step executors, `None` requests the explicit
    /// reordering baseline. Backends without that distinction ignore
    /// it.
    fn plan_modes(&self, pool: &ThreadPool, c: usize, choice: Option<AlgoChoice>) -> Self::PlanSet;

    /// Execute the mode-`n` MTTKRP `out ← X(n) · (⊙_{k≠n} U_k)`
    /// through the reusable plan set, returning the phase breakdown.
    /// `out` is row-major `I_n × C`, overwritten.
    fn mttkrp_planned(
        &self,
        plans: &mut Self::PlanSet,
        pool: &ThreadPool,
        factors: &[MatRef<'_, Self::Elem>],
        n: usize,
        out: &mut [Self::Elem],
    ) -> Breakdown;
}

/// The dense backend's plan state: planned kernels, or the explicit
/// baseline (which reorders tensor entries per call and has no
/// plannable workspace).
pub enum DensePlans<S: Scalar = f64> {
    /// One [`crate::MttkrpPlan`] per mode.
    Planned(MttkrpPlanSet<S>),
    /// Bader–Kolda explicit matricization + full KRP + one GEMM.
    Explicit,
}

impl<S: Scalar> MttkrpBackend for DenseTensor<S> {
    type Elem = S;
    type PlanSet = DensePlans<S>;

    fn dims(&self) -> &[usize] {
        DenseTensor::dims(self)
    }

    fn norm(&self) -> f64 {
        DenseTensor::norm(self)
    }

    fn plan_modes(&self, pool: &ThreadPool, c: usize, choice: Option<AlgoChoice>) -> DensePlans<S> {
        match choice {
            Some(choice) => {
                DensePlans::Planned(MttkrpPlanSet::new(pool, DenseTensor::dims(self), c, choice))
            }
            None => DensePlans::Explicit,
        }
    }

    fn mttkrp_planned(
        &self,
        plans: &mut DensePlans<S>,
        pool: &ThreadPool,
        factors: &[MatRef<'_, S>],
        n: usize,
        out: &mut [S],
    ) -> Breakdown {
        match plans {
            DensePlans::Planned(set) => set.execute_timed(pool, self, factors, n, out),
            DensePlans::Explicit => mttkrp_explicit_timed(pool, self, factors, n, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::mttkrp_oracle;
    use mttkrp_blas::Layout;
    use mttkrp_rng::Rng64;

    fn rand_vec(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Rng64::seed_from_u64(seed);
        (0..n).map(|_| rng.next_f64() - 0.5).collect()
    }

    #[test]
    fn dense_backend_matches_oracle_for_both_plan_kinds() {
        let dims = [4usize, 3, 2];
        let c = 2;
        let x = DenseTensor::from_vec(&dims, rand_vec(24, 3));
        let factors: Vec<Vec<f64>> = dims
            .iter()
            .enumerate()
            .map(|(k, &d)| rand_vec(d * c, k as u64))
            .collect();
        let refs: Vec<MatRef> = factors
            .iter()
            .zip(&dims)
            .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
            .collect();
        let pool = ThreadPool::new(2);
        for choice in [Some(AlgoChoice::Heuristic), None] {
            let mut plans = MttkrpBackend::plan_modes(&x, &pool, c, choice);
            for n in 0..dims.len() {
                let mut want = vec![0.0; dims[n] * c];
                mttkrp_oracle(&x, &refs, n, &mut want);
                let mut got = vec![f64::NAN; dims[n] * c];
                let bd = x.mttkrp_planned(&mut plans, &pool, &refs, n, &mut got);
                assert!(bd.total > 0.0);
                for (a, b) in got.iter().zip(&want) {
                    assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()), "n={n} {choice:?}");
                }
            }
        }
    }

    #[test]
    fn trait_shape_queries_delegate_to_the_tensor() {
        let x = DenseTensor::from_vec(&[2, 2], vec![3.0, 0.0, 0.0, 4.0]);
        assert_eq!(MttkrpBackend::dims(&x), &[2, 2]);
        assert!((MttkrpBackend::norm(&x) - 5.0).abs() < 1e-12);
    }
}
