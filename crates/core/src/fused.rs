//! The matrix-free fused MTTKRP (GenTen-style streaming).
//!
//! One pass over the tensor entries in natural (generalized
//! column-major) order per mode: entry `ℓ = jl + i_n·IL_n + jr·IL_n·I_n`
//! contributes `M(i_n,:) += X[ℓ] · (KL(jl,:) ∗ KR(jr,:))`, where the
//! left/right Khatri-Rao rows are formed on the fly with Algorithm 1's
//! prefix reuse — never materialized as matrices, and the implicit
//! unfolding is fused into the index arithmetic, so no reorder buffer
//! exists either. Threads own disjoint ranges of output rows, so the
//! pass also needs no reduction.
//!
//! Compared with the paper's 1-step/2-step BLAS formulations this trades
//! GEMM register blocking for strictly minimal memory traffic (the
//! tensor is read exactly once, nothing else is written but the output),
//! which wins when the tensor dwarfs cache and the rank is small. The
//! tuned cost model prices all three and picks per mode
//! ([`crate::AlgoChoice::Tuned`]); [`crate::AlgoChoice::Fused`] forces
//! this variant.

use mttkrp_blas::{MatRef, Scalar};
use mttkrp_parallel::ThreadPool;
use mttkrp_tensor::DenseTensor;

use crate::breakdown::Breakdown;
use crate::plan::{AlgoChoice, MttkrpPlan};
use crate::validate_factors;

/// Matrix-free fused MTTKRP. Output is row-major `I_n × C`, overwritten.
///
/// Thin allocating wrapper over a one-shot [`MttkrpPlan`] forced to
/// [`AlgoChoice::Fused`]; iterative callers should hold the plan.
pub fn mttkrp_fused<S: Scalar>(
    pool: &ThreadPool,
    x: &DenseTensor<S>,
    factors: &[MatRef<S>],
    n: usize,
    out: &mut [S],
) {
    let _ = mttkrp_fused_timed(pool, x, factors, n, out);
}

/// [`mttkrp_fused`] returning the phase breakdown (the single streaming
/// pass is reported under [`Breakdown::fused`]).
pub fn mttkrp_fused_timed<S: Scalar>(
    pool: &ThreadPool,
    x: &DenseTensor<S>,
    factors: &[MatRef<S>],
    n: usize,
    out: &mut [S],
) -> Breakdown {
    let dims = x.dims();
    assert!(dims.len() >= 2, "MTTKRP requires an order >= 2 tensor");
    let c = validate_factors(dims, factors);
    assert!(n < dims.len(), "mode {n} out of range");
    assert_eq!(out.len(), dims[n] * c, "output must be I_n × C");
    let mut plan = MttkrpPlan::new(pool, dims, c, n, AlgoChoice::Fused);
    plan.execute_timed(pool, x, factors, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::mttkrp_oracle;
    use mttkrp_blas::Layout;
    use mttkrp_rng::Rng64;

    fn rand_vec(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Rng64::seed_from_u64(seed);
        (0..n).map(|_| rng.next_f64() - 0.5).collect()
    }

    #[test]
    fn fused_matches_oracle_all_modes_orders_and_threads() {
        for dims in [
            vec![5usize, 4],
            vec![4, 3, 5],
            vec![3, 4, 2, 3],
            vec![2, 3, 2, 2, 2],
        ] {
            let c = 3;
            let x = DenseTensor::from_vec(&dims, rand_vec(dims.iter().product(), 11));
            let factors: Vec<Vec<f64>> = dims
                .iter()
                .enumerate()
                .map(|(k, &d)| rand_vec(d * c, 100 + k as u64))
                .collect();
            let refs: Vec<MatRef> = factors
                .iter()
                .zip(&dims)
                .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
                .collect();
            for t in [1usize, 2, 7] {
                let pool = ThreadPool::new(t);
                for n in 0..dims.len() {
                    let mut want = vec![0.0; dims[n] * c];
                    let mut got = vec![f64::NAN; dims[n] * c];
                    mttkrp_oracle(&x, &refs, n, &mut want);
                    mttkrp_fused(&pool, &x, &refs, n, &mut got);
                    for (a, b) in got.iter().zip(&want) {
                        assert!(
                            (a - b).abs() < 1e-9 * (1.0 + b.abs()),
                            "dims {dims:?} t={t} mode {n}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fused_breakdown_reports_only_the_fused_phase() {
        let dims = [8usize, 8, 8];
        let c = 4;
        let x = DenseTensor::from_vec(&dims, rand_vec(512, 3));
        let factors: Vec<Vec<f64>> = dims.iter().map(|&d| rand_vec(d * c, 8)).collect();
        let refs: Vec<MatRef> = factors
            .iter()
            .zip(&dims)
            .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
            .collect();
        let pool = ThreadPool::new(2);
        let mut out = vec![0.0; 8 * c];
        let bd = mttkrp_fused_timed(&pool, &x, &refs, 1, &mut out);
        assert!(bd.fused > 0.0, "fused phase must be timed");
        assert_eq!(bd.dgemm, 0.0, "fused never calls GEMM");
        assert_eq!(bd.full_krp, 0.0, "fused never materializes a KRP");
        assert_eq!(bd.reorder, 0.0, "fused never reorders");
        assert_eq!(bd.reduce, 0.0, "fused output rows are disjoint");
    }
}
