//! All-modes MTTKRP with shared partial results.
//!
//! Gradient-based CP optimizers (CP-OPT, Gauss-Newton, the paper's §2.2
//! remark that "nearly all of them require computing and are
//! bottlenecked by MTTKRP") need `M_n` for *every* mode at a fixed
//! factor set. Computing them independently costs `N` full MTTKRPs;
//! this module computes the whole set from **two** partial-MTTKRP GEMMs
//! (left/right split, Phan et al. §III.C), the same reuse
//! `mttkrp_cpals::cp_als_dimtree` applies inside ALS — but exposed at
//! the kernel level, where no factor updates happen between modes.
//!
//! Like the per-mode kernels, the execution path is plan-based:
//! [`AllModesPlan`] precomputes the group split and owns the KRP,
//! partial, and multi-TTV scratch buffers, so optimizers that evaluate
//! many gradients reuse one plan; [`mttkrp_all_modes`] remains the
//! one-shot allocating wrapper.

use mttkrp_blas::{gemv, par_gemm, Layout, MatMut, MatRef};
use mttkrp_krp::{krp_rows, par_krp};
use mttkrp_parallel::ThreadPool;
use mttkrp_tensor::DenseTensor;

use crate::validate_factors;

/// Reusable plan for the all-modes MTTKRP of one tensor shape and rank:
/// the left/right group split plus every intermediate buffer.
#[derive(Debug)]
pub struct AllModesPlan {
    dims: Vec<usize>,
    c: usize,
    /// Split point: left group `{0..s-1}`, right group `{s..N-1}`.
    s: usize,
    left_total: usize,
    right_total: usize,
    /// KRP of the right (resp. left) group factors.
    kr: Vec<f64>,
    kl: Vec<f64>,
    /// Right partial `R = X(0:s−1)·KR` (`left_total × C`, col-major).
    r: Vec<f64>,
    /// Left partial `L = X(0:s−1)ᵀ·KL` (`right_total × C`, col-major).
    l: Vec<f64>,
    /// Multi-TTV scratch.
    col_buf: Vec<f64>,
    work: Vec<f64>,
    next: Vec<f64>,
    /// One row-major `I_n × C` output per mode.
    outputs: Vec<Vec<f64>>,
}

impl AllModesPlan {
    /// Plan the all-modes MTTKRP of a `dims` tensor at rank `c`.
    ///
    /// # Panics
    /// Panics if the tensor order is below 2 or `c == 0`.
    pub fn new(dims: &[usize], c: usize) -> Self {
        let nmodes = dims.len();
        assert!(nmodes >= 2, "MTTKRP requires an order >= 2 tensor");
        assert!(c > 0, "rank must be positive");
        let s = nmodes.div_ceil(2);
        let left_total: usize = dims[..s].iter().product();
        let right_total: usize = dims[s..].iter().product();
        AllModesPlan {
            dims: dims.to_vec(),
            c,
            s,
            left_total,
            right_total,
            kr: vec![0.0; right_total * c],
            kl: vec![0.0; left_total * c],
            r: vec![0.0; left_total * c],
            l: vec![0.0; right_total * c],
            col_buf: vec![0.0; dims.iter().copied().max().unwrap_or(1)],
            work: Vec::new(),
            next: Vec::new(),
            outputs: dims.iter().map(|&d| vec![0.0; d * c]).collect(),
        }
    }

    /// Compute `M_n = X(n)·(⊙_{k≠n} U_k)` for every mode at once,
    /// sharing the two group partials; returns the per-mode outputs
    /// (row-major `I_n × C`), owned by the plan and overwritten on the
    /// next execution.
    pub fn execute(
        &mut self,
        pool: &ThreadPool,
        x: &DenseTensor,
        factors: &[MatRef],
    ) -> &[Vec<f64>] {
        assert_eq!(
            x.dims(),
            &self.dims[..],
            "tensor shape differs from the planned shape"
        );
        let c = validate_factors(&self.dims, factors);
        assert_eq!(c, self.c, "factor rank differs from the planned rank");

        let s = self.s;
        let nmodes = self.dims.len();
        let (left_total, right_total) = (self.left_total, self.right_total);

        // Right partial: R = X(0:s−1) · KR  →  (Π left dims) × C, col-major.
        {
            let kr_inputs: Vec<MatRef> = factors[s..].iter().rev().copied().collect();
            debug_assert_eq!(krp_rows(&kr_inputs), right_total);
            par_krp(pool, &kr_inputs, &mut self.kr);
            par_gemm(
                pool,
                1.0,
                x.unfold_leading(s - 1),
                MatRef::from_slice(&self.kr, right_total, c, Layout::RowMajor),
                0.0,
                MatMut::from_slice(&mut self.r, left_total, c, Layout::ColMajor),
            );
            for n in 0..s {
                group_multi_ttv(
                    &self.r,
                    &self.dims[..s],
                    c,
                    n,
                    factors,
                    0,
                    &mut self.outputs[n],
                    &mut self.col_buf,
                    &mut self.work,
                    &mut self.next,
                );
            }
        }

        // Left partial: L = X(0:s−1)ᵀ · KL  →  (Π right dims) × C, col-major.
        if s < nmodes {
            let kl_inputs: Vec<MatRef> = factors[..s].iter().rev().copied().collect();
            debug_assert_eq!(krp_rows(&kl_inputs), left_total);
            par_krp(pool, &kl_inputs, &mut self.kl);
            par_gemm(
                pool,
                1.0,
                x.unfold_leading(s - 1).t(),
                MatRef::from_slice(&self.kl, left_total, c, Layout::RowMajor),
                0.0,
                MatMut::from_slice(&mut self.l, right_total, c, Layout::ColMajor),
            );
            for n in s..nmodes {
                group_multi_ttv(
                    &self.l,
                    &self.dims[s..],
                    c,
                    n - s,
                    factors,
                    s,
                    &mut self.outputs[n],
                    &mut self.col_buf,
                    &mut self.work,
                    &mut self.next,
                );
            }
        }

        &self.outputs
    }

    /// Consume the plan, returning the per-mode outputs of the last
    /// execution.
    pub fn into_outputs(self) -> Vec<Vec<f64>> {
        self.outputs
    }
}

/// Compute `M_n = X(n)·(⊙_{k≠n} U_k)` for every mode `n` at once,
/// sharing the two group partials. Returns one row-major `I_n × C`
/// matrix per mode.
///
/// Thin allocating wrapper over a one-shot [`AllModesPlan`].
///
/// Flops: `2·|X|·C` per partial GEMM (2 total) plus `O(|partial|·C)`
/// multi-TTV work — versus `N · 2·|X|·C` for independent MTTKRPs.
pub fn mttkrp_all_modes(pool: &ThreadPool, x: &DenseTensor, factors: &[MatRef]) -> Vec<Vec<f64>> {
    let c = validate_factors(x.dims(), factors);
    let mut plan = AllModesPlan::new(x.dims(), c);
    plan.execute(pool, x, factors);
    plan.into_outputs()
}

/// Contract the group partial `(g_dims…, C)` against the `j`-th columns
/// of every in-group factor except `local_n`, writing row-major
/// `I_{local_n} × C` into `out`. Scratch buffers are caller-owned so
/// repeated executions do not allocate.
///
/// Specialized contiguous paths: groups of size 1 (transpose copy) and
/// size 2 (one GEMV per column); larger groups fold modes pairwise via
/// GEMV chains on contiguous reshapes.
#[allow(clippy::too_many_arguments)]
fn group_multi_ttv(
    partial: &[f64],
    g_dims: &[usize],
    c: usize,
    local_n: usize,
    factors: &[MatRef],
    group_offset: usize,
    out: &mut [f64],
    col_buf: &mut [f64],
    work: &mut Vec<f64>,
    next: &mut Vec<f64>,
) {
    let g_total: usize = g_dims.iter().product();
    let rows = g_dims[local_n];
    debug_assert_eq!(out.len(), rows * c);
    debug_assert_eq!(partial.len(), g_total * c);

    let mut cur_dims: Vec<usize> = Vec::with_capacity(g_dims.len());
    for j in 0..c {
        let sub = &partial[j * g_total..(j + 1) * g_total];
        if g_dims.len() == 1 {
            for i in 0..rows {
                out[i * c + j] = sub[i];
            }
            continue;
        }
        // Iteratively contract the highest remaining mode (≠ local_n),
        // then the lowest ones, keeping data contiguous throughout.
        work.clear();
        work.extend_from_slice(sub);
        cur_dims.clear();
        cur_dims.extend_from_slice(g_dims);
        let mut n_pos = local_n;
        // High modes: the tensor is (lead, d_high) column-major; each
        // contraction is one GEMV with the matrix (lead × d_high).
        while cur_dims.len() > n_pos + 1 {
            let d_high = *cur_dims.last().unwrap();
            let lead: usize = cur_dims[..cur_dims.len() - 1].iter().product();
            let f = &factors[group_offset + cur_dims.len() - 1];
            for (i, slot) in col_buf[..d_high].iter_mut().enumerate() {
                *slot = f.get(i, j);
            }
            next.clear();
            next.resize(lead, 0.0);
            let mat = MatRef::from_slice(&work[..lead * d_high], lead, d_high, Layout::ColMajor);
            gemv(1.0, mat, &col_buf[..d_high], 0.0, next);
            std::mem::swap(work, next);
            cur_dims.pop();
        }
        // Low modes: the tensor is (d_low, rest) column-major; contract
        // mode 0 via the transposed view (rest × d_low).
        while n_pos > 0 {
            let d_low = cur_dims[0];
            let rest: usize = cur_dims[1..].iter().product();
            let f = &factors[group_offset + (local_n - n_pos)];
            for (i, slot) in col_buf[..d_low].iter_mut().enumerate() {
                *slot = f.get(i, j);
            }
            next.clear();
            next.resize(rest, 0.0);
            let mat = MatRef::from_slice(&work[..d_low * rest], d_low, rest, Layout::ColMajor);
            gemv(1.0, mat.t(), &col_buf[..d_low], 0.0, next);
            std::mem::swap(work, next);
            cur_dims.remove(0);
            n_pos -= 1;
        }
        debug_assert_eq!(work.len(), rows);
        for (i, &v) in work[..rows].iter().enumerate() {
            out[i * c + j] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::mttkrp_oracle;

    fn rand_vec(n: usize, seed: u64) -> Vec<f64> {
        let mut st = seed | 1;
        (0..n)
            .map(|_| {
                st = st.wrapping_mul(6364136223846793005).wrapping_add(31);
                ((st >> 33) as f64 / (1u64 << 32) as f64) - 0.5
            })
            .collect()
    }

    fn check(dims: &[usize], c: usize, t: usize) {
        let x = DenseTensor::from_vec(dims, rand_vec(dims.iter().product(), 3));
        let factors: Vec<Vec<f64>> = dims
            .iter()
            .enumerate()
            .map(|(k, &d)| rand_vec(d * c, k as u64 + 9))
            .collect();
        let refs: Vec<MatRef> = factors
            .iter()
            .zip(dims)
            .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
            .collect();
        let pool = ThreadPool::new(t);
        let all = mttkrp_all_modes(&pool, &x, &refs);
        assert_eq!(all.len(), dims.len());
        for n in 0..dims.len() {
            let mut want = vec![0.0; dims[n] * c];
            mttkrp_oracle(&x, &refs, n, &mut want);
            for (a, b) in all[n].iter().zip(&want) {
                assert!(
                    (a - b).abs() < 1e-9 * (1.0 + b.abs()),
                    "dims {dims:?} mode {n} t={t}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn matches_oracle_2way_to_6way() {
        check(&[4, 5], 3, 1);
        check(&[4, 3, 5], 3, 2);
        check(&[3, 4, 2, 3], 2, 2);
        check(&[2, 3, 2, 2, 3], 2, 3);
        check(&[2, 2, 2, 2, 2, 2], 2, 1);
    }

    #[test]
    fn asymmetric_dims() {
        check(&[13, 2, 7], 4, 2);
        check(&[1, 6, 5], 2, 2);
        check(&[6, 1, 5, 2], 2, 1);
    }

    #[test]
    fn plan_reuse_matches_wrapper_and_is_stable() {
        let dims = [4usize, 3, 2, 3];
        let c = 3;
        let x = DenseTensor::from_vec(&dims, rand_vec(dims.iter().product(), 5));
        let factors: Vec<Vec<f64>> = dims
            .iter()
            .enumerate()
            .map(|(k, &d)| rand_vec(d * c, k as u64 + 21))
            .collect();
        let refs: Vec<MatRef> = factors
            .iter()
            .zip(&dims)
            .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
            .collect();
        let pool = ThreadPool::new(2);
        let wrapper = mttkrp_all_modes(&pool, &x, &refs);
        let mut plan = AllModesPlan::new(&dims, c);
        let first = plan.execute(&pool, &x, &refs).to_vec();
        assert_eq!(first, wrapper, "plan output differs from wrapper");
        let again = plan.execute(&pool, &x, &refs).to_vec();
        assert_eq!(first, again, "plan output drifted across executions");
    }
}
