//! Dense MTTKRP — the paper's primary contribution.
//!
//! The matricized-tensor times Khatri-Rao product for mode `n`,
//! `M = X(n) · (U_{N−1} ⊙ ⋯ ⊙ U_{n+1} ⊙ U_{n−1} ⊙ ⋯ ⊙ U_0)`,
//! is the bottleneck of CP decomposition algorithms. This crate
//! implements every variant the paper discusses:
//!
//! * [`oracle::mttkrp_oracle`] — definition-by-summation reference used
//!   by the test suite.
//! * [`baseline::mttkrp_explicit`] — the Bader–Kolda baseline: reorder
//!   tensor entries into an explicit column-major matricization, form
//!   the full KRP, and make one GEMM call (§2.3).
//! * [`onestep`] — Algorithms 2 and 3: BLAS calls directly on the
//!   zero-copy block structure of `X(n)`, never reordering entries.
//! * [`twostep`] — Algorithm 4 (Phan et al.): one large partial-MTTKRP
//!   GEMM on `X(0:n)` or `X(0:n−1)ᵀ` followed by a multi-TTV of GEMV
//!   calls, choosing the side that minimizes second-step flops.
//! * [`fused`] — the matrix-free fused variant (GenTen-style): one
//!   streaming pass over the tensor entries per mode, fusing the
//!   implicit unfolding with the Hadamard of factor rows — no
//!   materialized KRP, no unfold buffer, no reduction.
//! * [`dispatch::mttkrp_auto`] — the per-mode choice used by the CP-ALS
//!   driver (1-step for external modes, 2-step for internal modes).
//! * [`plan::MttkrpPlan`] — the reusable plan/executor split: algorithm
//!   choice, static partition schedule, and pre-allocated per-thread
//!   workspaces computed once per (shape, rank, mode, team) and reused
//!   across calls. The free functions above are thin allocating
//!   wrappers over one-shot plans; iterative drivers (CP-ALS) hold a
//!   [`plan::MttkrpPlanSet`] instead and pay no per-iteration
//!   allocation.
//! * [`backend::MttkrpBackend`] — the storage-generic contract CP
//!   drivers are written against: shape/norm queries plus planned
//!   per-mode MTTKRP execution. Implemented here for the dense tensor
//!   (planned kernels or the explicit baseline) and by `mttkrp-sparse`
//!   for compressed-sparse-fiber tensors.
//!
//! All variants share conventions: factor matrices and the output are
//! **row-major** `I_k × C` buffers, and the KRP factor order for mode
//! `n` is descending (`U_{N−1}, …, U_0` skipping `U_n`) so that mode 0
//! varies fastest, matching the column order of `X(n)`.
//!
//! Instrumented `*_timed` variants report the per-phase time breakdown
//! (Full KRP / Left&Right KRP / DGEMM / DGEMV / REDUCE / reorder) that
//! Figures 6 and 8 plot.
//!
//! # Example
//!
//! ```
//! use mttkrp_blas::{Layout, MatRef};
//! use mttkrp_core::mttkrp_auto;
//! use mttkrp_parallel::ThreadPool;
//! use mttkrp_tensor::DenseTensor;
//!
//! let dims = [4usize, 3, 2];
//! let c = 2;
//! let x = DenseTensor::from_vec(&dims, (0..24).map(|i| i as f64).collect());
//! let factors: Vec<Vec<f64>> = dims.iter().map(|&d| vec![1.0; d * c]).collect();
//! let refs: Vec<MatRef> = factors
//!     .iter()
//!     .zip(&dims)
//!     .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
//!     .collect();
//! let pool = ThreadPool::new(2);
//! let mut m = vec![0.0; dims[1] * c];
//! mttkrp_auto(&pool, &x, &refs, 1, &mut m);
//! // With all-ones factors, M sums X over the other modes.
//! assert_eq!(m[0], (0..24).filter(|i| (i / 4) % 3 == 0).sum::<usize>() as f64);
//! ```

#![deny(missing_docs)]

pub mod backend;
pub mod baseline;
pub mod breakdown;
pub mod choicelog;
pub mod dispatch;
pub mod fused;
pub mod model;
pub mod multimode;
pub mod onestep;
pub mod oracle;
pub mod plan;
pub mod twostep;

pub use backend::{DensePlans, MttkrpBackend};
pub use baseline::{mttkrp_explicit, mttkrp_explicit_timed};
pub use breakdown::Breakdown;
pub use choicelog::{ChoiceLog, ChoiceRecord};
pub use dispatch::{mttkrp_auto, mttkrp_auto_timed, ModeKind};
pub use fused::{mttkrp_fused, mttkrp_fused_timed};
pub use model::{cost_model_installed, install_cost_model, tuned_cost, ModeCost};
pub use multimode::{mttkrp_all_modes, AllModesPlan};
pub use onestep::{mttkrp_1step, mttkrp_1step_seq, mttkrp_1step_timed};
pub use oracle::mttkrp_oracle;
pub use plan::{AlgoChoice, MttkrpPlan, MttkrpPlanSet, PlannedAlgo};
pub use twostep::{mttkrp_2step, mttkrp_2step_timed, TwoStepSide};

use mttkrp_blas::{MatRef, Scalar};

/// Validate factor shapes against the tensor and return `C`.
///
/// # Panics
/// Panics unless there is one `I_k × C` row-contiguous factor per mode.
pub(crate) fn validate_factors<S: Scalar>(dims: &[usize], factors: &[MatRef<S>]) -> usize {
    assert_eq!(
        factors.len(),
        dims.len(),
        "one factor matrix per tensor mode"
    );
    let c = factors[0].ncols();
    for (k, (f, &d)) in factors.iter().zip(dims).enumerate() {
        assert_eq!(f.nrows(), d, "factor {k} must have I_{k} rows");
        assert_eq!(f.ncols(), c, "factor {k} must have C columns");
        assert_eq!(f.col_stride(), 1, "factor {k} must be row-contiguous");
    }
    c
}

/// The KRP inputs for mode `n`: all factors but `U_n`, in descending
/// mode order (so mode 0 varies fastest in the KRP rows).
pub(crate) fn krp_inputs<'a, S: Scalar>(factors: &[MatRef<'a, S>], n: usize) -> Vec<MatRef<'a, S>> {
    factors
        .iter()
        .enumerate()
        .rev()
        .filter(|&(k, _)| k != n)
        .map(|(_, f)| *f)
        .collect()
}
