//! Definition-by-summation MTTKRP, the correctness oracle.

use mttkrp_blas::{MatRef, Scalar};
use mttkrp_tensor::DenseTensor;

use crate::validate_factors;

/// `M(i, c) = Σ_{idx: idx[n] = i} X(idx) · Π_{k≠n} U_k(idx[k], c)`,
/// evaluated entry by entry. `O(I · C · N)` — test sizes only.
///
/// Generic over the storage type but always evaluated in `f64`, so the
/// same oracle doubles as the higher-precision reference the `f32`
/// agreement tests compare against. Output is row-major `I_n × C`,
/// overwritten.
pub fn mttkrp_oracle<S: Scalar>(
    x: &DenseTensor<S>,
    factors: &[MatRef<S>],
    n: usize,
    out: &mut [f64],
) {
    let dims = x.dims();
    let c = validate_factors(dims, factors);
    assert!(n < dims.len(), "mode {n} out of range");
    assert_eq!(out.len(), dims[n] * c, "output must be I_n × C");

    out.fill(0.0);
    let mut idx = vec![0usize; dims.len()];
    for &v in x.data() {
        let i = idx[n];
        for col in 0..c {
            let mut p = v.to_f64();
            for (k, &ik) in idx.iter().enumerate() {
                if k != n {
                    p *= factors[k].get(ik, col).to_f64();
                }
            }
            out[i * c + col] += p;
        }
        x.info().increment(&mut idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mttkrp_blas::Layout;

    #[test]
    fn rank1_tensor_mttkrp_has_closed_form() {
        // X = u ∘ v (outer product); factors U = [u], V = [v] with C = 1.
        // M (mode 0) = X(0) · v = u (vᵀv).
        let u = vec![1.0, 2.0, 3.0];
        let v = vec![4.0, 5.0];
        let x = DenseTensor::from_factors(&[3, 2], &[u.clone(), v.clone()], 1);
        let factors = [
            MatRef::from_slice(&u, 3, 1, Layout::RowMajor),
            MatRef::from_slice(&v, 2, 1, Layout::RowMajor),
        ];
        let mut m = vec![0.0; 3];
        mttkrp_oracle(&x, &factors, 0, &mut m);
        let vtv: f64 = v.iter().map(|x| x * x).sum();
        for i in 0..3 {
            assert!((m[i] - u[i] * vtv).abs() < 1e-12);
        }
    }

    #[test]
    fn matches_manual_3way_computation() {
        // Tiny 2x2x2 case checked against a hand-written triple loop in a
        // different index order.
        let x = DenseTensor::from_vec(&[2, 2, 2], (1..=8).map(|i| i as f64).collect());
        let u = vec![1.0, -1.0, 0.5, 2.0]; // 2x2 row-major
        let v = vec![2.0, 0.0, 1.0, 1.0];
        let w = vec![1.0, 3.0, -2.0, 0.5];
        let factors = [
            MatRef::from_slice(&u, 2, 2, Layout::RowMajor),
            MatRef::from_slice(&v, 2, 2, Layout::RowMajor),
            MatRef::from_slice(&w, 2, 2, Layout::RowMajor),
        ];
        let mut m = vec![0.0; 4];
        mttkrp_oracle(&x, &factors, 1, &mut m);
        let mut expect = vec![0.0; 4];
        for c in 0..2 {
            for j in 0..2 {
                let mut s = 0.0;
                for i in 0..2 {
                    for k in 0..2 {
                        s += x.get(&[i, j, k]) * u[i * 2 + c] * w[k * 2 + c];
                    }
                }
                expect[j * 2 + c] = s;
            }
        }
        assert_eq!(m, expect);
    }
}
