//! Per-mode algorithm selection, as used by the paper's CP-ALS driver
//! (§5.3.3): 1-step for external modes (where the 2-step degenerates to
//! it anyway) and 2-step for internal modes (where it wins or ties in
//! every benchmark).

use mttkrp_blas::{MatRef, Scalar};
use mttkrp_parallel::ThreadPool;
use mttkrp_tensor::DenseTensor;

use crate::breakdown::Breakdown;
use crate::plan::{AlgoChoice, MttkrpPlan};
use crate::validate_factors;

/// Classification of a mode for algorithm dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModeKind {
    /// Mode 0 or mode `N−1`: `X(n)` is a single strided matrix view.
    External,
    /// `0 < n < N−1`: `X(n)` is a sequence of `IR_n` blocks.
    Internal,
}

impl ModeKind {
    /// Classify mode `n` of an order-`order` tensor.
    pub fn of(order: usize, n: usize) -> ModeKind {
        assert!(n < order, "mode {n} out of range for order {order}");
        if n == 0 || n == order - 1 {
            ModeKind::External
        } else {
            ModeKind::Internal
        }
    }
}

/// MTTKRP with the per-mode best algorithm: 1-step for external modes,
/// 2-step for internal modes. Output is row-major `I_n × C`.
///
/// Thin allocating wrapper over a one-shot
/// [`crate::plan::MttkrpPlan`] with [`AlgoChoice::Heuristic`];
/// iterative callers should hold a [`crate::plan::MttkrpPlanSet`]
/// instead.
pub fn mttkrp_auto<S: Scalar>(
    pool: &ThreadPool,
    x: &DenseTensor<S>,
    factors: &[MatRef<S>],
    n: usize,
    out: &mut [S],
) {
    let _ = mttkrp_auto_timed(pool, x, factors, n, out);
}

/// [`mttkrp_auto`] returning the phase breakdown.
pub fn mttkrp_auto_timed<S: Scalar>(
    pool: &ThreadPool,
    x: &DenseTensor<S>,
    factors: &[MatRef<S>],
    n: usize,
    out: &mut [S],
) -> Breakdown {
    let dims = x.dims();
    let c = validate_factors(dims, factors);
    let mut plan = MttkrpPlan::new(pool, dims, c, n, AlgoChoice::Heuristic);
    plan.execute_timed(pool, x, factors, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::mttkrp_oracle;
    use mttkrp_blas::Layout;

    #[test]
    fn mode_kinds() {
        assert_eq!(ModeKind::of(3, 0), ModeKind::External);
        assert_eq!(ModeKind::of(3, 1), ModeKind::Internal);
        assert_eq!(ModeKind::of(3, 2), ModeKind::External);
        assert_eq!(ModeKind::of(2, 1), ModeKind::External);
        assert_eq!(ModeKind::of(6, 4), ModeKind::Internal);
    }

    #[test]
    fn auto_matches_oracle_every_mode() {
        let dims = [3usize, 4, 2, 3];
        let c = 3;
        let n_entries: usize = dims.iter().product();
        let data: Vec<f64> = (0..n_entries)
            .map(|i| ((i * 37) % 11) as f64 - 5.0)
            .collect();
        let x = DenseTensor::from_vec(&dims, data);
        let factors: Vec<Vec<f64>> = dims
            .iter()
            .enumerate()
            .map(|(k, &d)| {
                (0..d * c)
                    .map(|i| ((i * 13 + k) % 7) as f64 - 3.0)
                    .collect()
            })
            .collect();
        let refs: Vec<MatRef> = factors
            .iter()
            .zip(&dims)
            .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
            .collect();
        let pool = ThreadPool::new(3);
        for n in 0..dims.len() {
            let mut want = vec![0.0; dims[n] * c];
            let mut got = vec![0.0; dims[n] * c];
            mttkrp_oracle(&x, &refs, n, &mut want);
            mttkrp_auto(&pool, &x, &refs, n, &mut got);
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()), "mode {n}");
            }
            let bd = mttkrp_auto_timed(&pool, &x, &refs, n, &mut got);
            assert!(bd.total > 0.0);
        }
    }

    #[test]
    #[should_panic]
    fn out_of_range_mode_panics() {
        let _ = ModeKind::of(3, 3);
    }
}
