//! Reusable MTTKRP execution plans — the plan/executor split.
//!
//! The seed implementation recomputed three things on every MTTKRP
//! call: the per-mode algorithm choice, the static partition schedule,
//! and — worst — every intermediate buffer (KRP row blocks,
//! thread-private outputs, 2-step partials), all heap-allocated inside
//! the hot loop. Those choices depend only on *shape* (tensor dims,
//! rank, mode, team size), not on tensor or factor values, so an
//! iterative driver like CP-ALS, which performs the same `N` MTTKRPs
//! every sweep, can make them exactly once.
//!
//! [`MttkrpPlan`] captures everything shape-dependent:
//!
//! * the **algorithm choice** ([`AlgoChoice`] → [`PlannedAlgo`]):
//!   external modes always run the 1-step algorithm (the 2-step
//!   degenerates to it); internal modes run 2-step by default (the
//!   paper's §5.3.3 dispatch), a forced variant, or whichever a
//!   machine-model prediction says is faster
//!   ([`AlgoChoice::Predicted`], fed by `mttkrp_machine::predict`);
//! * the **static partition schedule**: per-thread column ranges of
//!   `X(n)` for external modes (`mttkrp_parallel::block_range`),
//!   block-cyclic dealing parameters for internal modes, and the
//!   left/right side of the 2-step partial;
//! * **pre-allocated workspaces**: per-thread KRP row blocks, private
//!   `I_n × C` accumulators and Khatri-Rao cursor state held in a
//!   [`mttkrp_parallel::Workspace`] arena, plus the shared partial-KRP
//!   and 2-step intermediate buffers.
//!
//! [`MttkrpPlan::execute`] then runs the kernel against borrowed tensor
//! and factor data. Steady-state execution performs **no heap
//! allocation in the MTTKRP path** for single-thread pools, and only
//! O(threads) bookkeeping allocations (the reduction's slice-of-parts
//! header, pool messages) for multi-thread pools; every
//! tensor-sized or rank-sized buffer is reused across calls.
//!
//! The old free functions (`mttkrp_1step`, `mttkrp_2step`,
//! `mttkrp_auto`) remain as thin wrappers that build a plan, run it
//! once, and drop it — one code path for both APIs, so wrapper and
//! plan-based execution are bitwise identical.
//!
//! # Example
//!
//! ```
//! use mttkrp_blas::{Layout, MatRef};
//! use mttkrp_core::{AlgoChoice, MttkrpPlan};
//! use mttkrp_parallel::ThreadPool;
//! use mttkrp_tensor::DenseTensor;
//!
//! let dims = [4usize, 3, 2];
//! let c = 2;
//! let pool = ThreadPool::new(2);
//! let mut plan = MttkrpPlan::new(&pool, &dims, c, 1, AlgoChoice::Heuristic);
//!
//! let x = DenseTensor::from_vec(&dims, (0..24).map(|i| i as f64).collect());
//! let factors: Vec<Vec<f64>> = dims.iter().map(|&d| vec![1.0; d * c]).collect();
//! let refs: Vec<MatRef> = factors
//!     .iter()
//!     .zip(&dims)
//!     .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
//!     .collect();
//! let mut m = vec![0.0; dims[1] * c];
//! plan.execute(&pool, &x, &refs, &mut m);   // reusable: no fresh buffers
//! plan.execute(&pool, &x, &refs, &mut m);
//! assert_eq!(m[0], (0..24).filter(|i| (i / 4) % 3 == 0).sum::<usize>() as f64);
//! ```

use std::ops::Range;

use mttkrp_blas::{
    gemm_with, kernels, par_gemm_with, par_gemv, KernelSet, Layout, MatMut, MatRef, Scalar,
};
use mttkrp_krp::{par_krp_with, KrpState};
use mttkrp_parallel::{block_range, reduce, ThreadPool, Workspace};
use mttkrp_tensor::DenseTensor;

use crate::breakdown::{timed, timed_traced, Breakdown};
use crate::model::{tuned_cost, ModeCost};
use crate::twostep::TwoStepSide;
use crate::validate_factors;

/// How a plan picks the kernel for its mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AlgoChoice {
    /// The paper's §5.3.3 dispatch: 1-step for external modes, 2-step
    /// (auto side) for internal modes. What [`crate::mttkrp_auto`] does.
    Heuristic,
    /// Force the 1-step algorithm (Algorithm 3) on every mode.
    OneStep,
    /// Force the 2-step algorithm (Algorithm 4) with the given side on
    /// internal modes; external modes still degenerate to 1-step.
    TwoStep(TwoStepSide),
    /// Force the matrix-free fused algorithm on every mode: one
    /// streaming pass over the tensor entries that multiplies each
    /// entry into its output row with the on-the-fly Hadamard of factor
    /// rows — no materialized KRP, no unfold buffer, no reduction.
    Fused,
    /// Pick whichever of the two predicted times is smaller — the
    /// machine-model override. Build the predictions with
    /// `mttkrp_machine::predicted_choice`.
    Predicted {
        /// Predicted seconds for the 1-step algorithm on this mode.
        one_step: f64,
        /// Predicted seconds for the 2-step algorithm on this mode.
        two_step: f64,
    },
    /// Consult the process-wide cost model installed by the tuning
    /// subsystem ([`crate::model::install_cost_model`], fed by a
    /// calibrated `mttkrp-tune` profile): resolves to
    /// [`AlgoChoice::Predicted`] with the model's per-mode times when a
    /// model is installed, and falls back to [`AlgoChoice::Heuristic`]
    /// otherwise — so `Tuned` is always safe to request.
    Tuned,
}

/// The fully resolved kernel a plan will run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannedAlgo {
    /// 1-step where `X(n)` is a single strided view (external modes,
    /// plus any mode whose left or right dims are all 1): per-thread
    /// KRP column blocks, one GEMM each, parallel reduction.
    OneStepExternal,
    /// 1-step on a blocked internal mode: shared left KRP,
    /// block-cyclic GEMMs.
    OneStepInternal,
    /// 2-step, partial on the left (`L = X(0:n−1)ᵀ·KL`).
    TwoStepLeft,
    /// 2-step, partial on the right (`R = X(0:n)·KR`).
    TwoStepRight,
    /// Matrix-free fused streaming pass (GenTen-style), threads owning
    /// disjoint output row ranges.
    Fused,
}

/// Per-thread workspace of the external-mode 1-step executor.
struct ExtSlot<S: Scalar> {
    /// Private `I_n × C` output accumulator.
    m: Vec<S>,
    /// This thread's KRP row block (`cols × C` for its column range).
    k: Vec<S>,
    /// Reusable Khatri-Rao cursor state.
    krp: KrpState<S>,
    /// Per-thread phase times for the merged breakdown.
    bd: Breakdown,
}

/// Per-thread workspace of the internal-mode 1-step executor.
struct IntSlot<S: Scalar> {
    /// Private `I_n × C` output accumulator.
    m: Vec<S>,
    /// Expanded per-block KRP `K_t = KR(j,:) ⊙ KL` (`IL_n × C`).
    kt: Vec<S>,
    /// One row of the right KRP.
    kr_row: Vec<S>,
    /// Reusable Khatri-Rao cursor state.
    krp: KrpState<S>,
    /// Per-thread phase times for the merged breakdown.
    bd: Breakdown,
}

/// Per-thread workspace of the matrix-free fused executor.
struct FusedSlot<S: Scalar> {
    /// Current left-KRP row (`C`), streamed per entry.
    kl_row: Vec<S>,
    /// Current right-KRP row (`C`), streamed per right block.
    kr_row: Vec<S>,
    /// Reusable cursor state for the left row stream.
    left: KrpState<S>,
    /// Reusable cursor state for the right row stream.
    right: KrpState<S>,
    /// Per-thread phase times for the merged breakdown.
    bd: Breakdown,
}

enum PlanKind<S: Scalar> {
    OneStepExternal {
        /// Threads that actually receive a column block.
        nsplit: usize,
        /// Static per-thread column ranges (empty beyond `nsplit`).
        col_ranges: Vec<Range<usize>>,
        /// Factor indices in KRP order (descending, skipping `n`).
        krp_order: Vec<usize>,
        ws: Workspace<ExtSlot<S>>,
    },
    OneStepInternal {
        ir: usize,
        /// Factor indices `n−1, …, 0` (left KRP order).
        left_order: Vec<usize>,
        /// Factor indices `N−1, …, n+1` (right KRP order).
        right_order: Vec<usize>,
        /// Shared left partial KRP (`IL_n × C`).
        kl: Vec<S>,
        /// Cursor state for single-thread KL formation.
        kl_state: KrpState<S>,
        ws: Workspace<IntSlot<S>>,
    },
    TwoStep {
        use_left: bool,
        il: usize,
        ir: usize,
        left_order: Vec<usize>,
        right_order: Vec<usize>,
        /// Left partial KRP (`IL_n × C`).
        kl: Vec<S>,
        /// Right partial KRP (`IR_n × C`).
        kr: Vec<S>,
        /// Cursor state for single-thread KRP formation.
        krp_state: KrpState<S>,
        /// The step-1 intermediate (`I_n·IR_n × C` or `IL_n·I_n × C`).
        mid: Vec<S>,
        /// Multi-TTV input column scratch.
        col_in: Vec<S>,
        /// Multi-TTV output column scratch.
        col_out: Vec<S>,
    },
    Fused {
        il: usize,
        ir: usize,
        /// Factor indices `n−1, …, 0` (left KRP order).
        left_order: Vec<usize>,
        /// Factor indices `N−1, …, n+1` (right KRP order).
        right_order: Vec<usize>,
        /// Static per-thread output row ranges (disjoint — no
        /// reduction).
        row_ranges: Vec<Range<usize>>,
        ws: Workspace<FusedSlot<S>>,
    },
}

/// A reusable execution plan for the mode-`n` MTTKRP of one tensor
/// shape, rank, and thread-pool size. See the [module docs](self).
///
/// Generic over the element type `S` ([`Scalar`]; defaults to `f64`):
/// an `MttkrpPlan<f32>` runs the same schedule over `f32` tensor and
/// factor data with the f32 SIMD kernel tiers (twice the lanes, half
/// the memory traffic).
pub struct MttkrpPlan<S: Scalar = f64> {
    dims: Vec<usize>,
    c: usize,
    n: usize,
    threads: usize,
    algo: PlannedAlgo,
    /// The choice the plan was resolved from, post-`Tuned` resolution
    /// (`Tuned` itself never survives construction: it becomes
    /// `Predicted` or `Heuristic`). Kept so drivers and the
    /// [`crate::ChoiceLog`] can compare predictions against
    /// measurements.
    choice: AlgoChoice,
    /// The cost model's full prediction when one resolved this plan
    /// (a direct [`AlgoChoice::Predicted`], or `Tuned` hitting an
    /// installed model — including resolutions that picked the fused
    /// path, which the two-field `Predicted` variant cannot carry).
    predicted: Option<ModeCost>,
    kind: PlanKind<S>,
    /// Dispatched SIMD kernels for GEMM tiles and Hadamard row
    /// products, resolved at plan construction.
    kernels: KernelSet<S>,
}

impl<S: Scalar> std::fmt::Debug for MttkrpPlan<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MttkrpPlan")
            .field("dims", &self.dims)
            .field("c", &self.c)
            .field("n", &self.n)
            .field("threads", &self.threads)
            .field("algo", &self.algo)
            .finish()
    }
}

impl<S: Scalar> MttkrpPlan<S> {
    /// Plan the mode-`n` MTTKRP of a `dims` tensor at rank `c` on
    /// `pool`'s team, resolving `choice` to a concrete kernel and
    /// pre-allocating every workspace.
    ///
    /// # Panics
    /// Panics if the tensor order is below 2, `n` is out of range, or
    /// `c == 0`.
    ///
    /// # Example
    ///
    /// ```
    /// use mttkrp_core::{AlgoChoice, MttkrpPlan, PlannedAlgo};
    /// use mttkrp_parallel::ThreadPool;
    ///
    /// let pool = ThreadPool::new(2);
    /// // Mode 0 is external: the heuristic resolves to 1-step.
    /// let plan = MttkrpPlan::<f64>::new(&pool, &[4, 3, 2], 5, 0, AlgoChoice::Heuristic);
    /// assert_eq!(plan.algo(), PlannedAlgo::OneStepExternal);
    /// assert_eq!((plan.rank(), plan.mode(), plan.threads()), (5, 0, 2));
    ///
    /// // An internal mode with explicit predicted times takes the
    /// // cheaper algorithm (here: 1-step despite being internal).
    /// let plan = MttkrpPlan::<f64>::new(
    ///     &pool,
    ///     &[4, 3, 2],
    ///     5,
    ///     1,
    ///     AlgoChoice::Predicted { one_step: 1.0, two_step: 2.0 },
    /// );
    /// assert_eq!(plan.algo(), PlannedAlgo::OneStepInternal);
    /// assert_eq!(plan.predicted_times().unwrap().two_step, 2.0);
    /// ```
    pub fn new(pool: &ThreadPool, dims: &[usize], c: usize, n: usize, choice: AlgoChoice) -> Self {
        Self::new_with_kernels(pool, dims, c, n, choice, *kernels::<S>())
    }

    /// [`MttkrpPlan::new`] with an explicit [`KernelSet`] (e.g. a
    /// forced tier for parity testing); the set is captured by the plan
    /// and used by every execution.
    pub fn new_with_kernels(
        pool: &ThreadPool,
        dims: &[usize],
        c: usize,
        n: usize,
        choice: AlgoChoice,
        ks: KernelSet<S>,
    ) -> Self {
        let nmodes = dims.len();
        assert!(nmodes >= 2, "MTTKRP requires an order >= 2 tensor");
        assert!(n < nmodes, "mode {n} out of range");
        assert!(c > 0, "rank must be positive");
        let _span = mttkrp_obs::span!("plan_build", mode = n);
        mttkrp_obs::counter!("core.plans_built").incr();
        let t = pool.num_threads();
        // Resolve the adaptive choice first: with an installed cost
        // model `Tuned` becomes a concrete prediction for this shape;
        // without one it is exactly the paper's heuristic.
        let mut predicted = None;
        let choice = match choice {
            AlgoChoice::Tuned => match tuned_cost(dims, c, n, t) {
                Some(cost) => {
                    predicted = Some(cost);
                    match cost.fused {
                        // The fused term is opt-in: only a profile that
                        // calibrated the fused pass prices it.
                        Some(f) if f < cost.one_step.min(cost.two_step) => AlgoChoice::Fused,
                        _ => AlgoChoice::Predicted {
                            one_step: cost.one_step,
                            two_step: cost.two_step,
                        },
                    }
                }
                None => AlgoChoice::Heuristic,
            },
            other => {
                if let AlgoChoice::Predicted { one_step, two_step } = other {
                    predicted = Some(ModeCost {
                        one_step,
                        two_step,
                        fused: None,
                    });
                }
                other
            }
        };
        let i_n = dims[n];
        let il: usize = dims[..n].iter().product();
        let ir: usize = dims[n + 1..].iter().product();
        // Algorithm choice follows the paper's mode-index rule: the
        // 2-step degenerates on modes 0 and N−1.
        let external = n == 0 || n == nmodes - 1;
        let fused = matches!(choice, AlgoChoice::Fused);

        let one_step = if fused {
            false
        } else if external {
            true
        } else {
            match choice {
                AlgoChoice::Heuristic => false,
                AlgoChoice::OneStep => true,
                AlgoChoice::TwoStep(_) => false,
                AlgoChoice::Predicted { one_step, two_step } => one_step <= two_step,
                AlgoChoice::Fused => unreachable!("fused handled above"),
                AlgoChoice::Tuned => unreachable!("Tuned resolved above"),
            }
        };

        // The 1-step *kernel* variant is chosen by layout, not mode
        // index: whenever `X(n)` collapses to a single strided view
        // (all-left or all-right dims of size 1 — always true for
        // external modes), the column-partitioned external kernel
        // applies and parallelizes over all `I≠n` columns. Classifying
        // by index alone would send e.g. mode 1 of `[400, 300, 1]` to
        // the block-cyclic internal kernel, whose single block serializes
        // the whole GEMM on one thread.
        let (algo, kind) = if fused {
            let nsplit = usize::min(t, i_n.max(1));
            let row_ranges: Vec<Range<usize>> = (0..t)
                .map(|tid| {
                    if tid < nsplit {
                        block_range(i_n, nsplit, tid)
                    } else {
                        0..0
                    }
                })
                .collect();
            let left_order: Vec<usize> = (0..n).rev().collect();
            let right_order: Vec<usize> = (n + 1..nmodes).rev().collect();
            let ws = Workspace::new(t, |_| FusedSlot {
                kl_row: vec![S::ZERO; c],
                kr_row: vec![S::ZERO; c],
                left: KrpState::new(),
                right: KrpState::new(),
                bd: Breakdown::default(),
            });
            (
                PlannedAlgo::Fused,
                PlanKind::Fused {
                    il,
                    ir,
                    left_order,
                    right_order,
                    row_ranges,
                    ws,
                },
            )
        } else if one_step && (il == 1 || ir == 1) {
            let j_total: usize = dims.iter().product::<usize>() / i_n;
            let nsplit = usize::min(t, j_total.max(1));
            let col_ranges: Vec<Range<usize>> = (0..t)
                .map(|tid| {
                    if tid < nsplit {
                        block_range(j_total, nsplit, tid)
                    } else {
                        0..0
                    }
                })
                .collect();
            let krp_order: Vec<usize> = (0..nmodes).rev().filter(|&k| k != n).collect();
            let ws = Workspace::new(t, |tid| ExtSlot {
                m: vec![S::ZERO; i_n * c],
                k: vec![S::ZERO; col_ranges[tid].len() * c],
                krp: KrpState::new(),
                bd: Breakdown::default(),
            });
            (
                PlannedAlgo::OneStepExternal,
                PlanKind::OneStepExternal {
                    nsplit,
                    col_ranges,
                    krp_order,
                    ws,
                },
            )
        } else {
            let left_order: Vec<usize> = (0..n).rev().collect();
            let right_order: Vec<usize> = (n + 1..nmodes).rev().collect();
            if one_step {
                let ws = Workspace::new(t, |_| IntSlot {
                    m: vec![S::ZERO; i_n * c],
                    kt: vec![S::ZERO; il * c],
                    kr_row: vec![S::ZERO; c],
                    krp: KrpState::new(),
                    bd: Breakdown::default(),
                });
                (
                    PlannedAlgo::OneStepInternal,
                    PlanKind::OneStepInternal {
                        ir,
                        left_order,
                        right_order,
                        kl: vec![S::ZERO; il * c],
                        kl_state: KrpState::new(),
                        ws,
                    },
                )
            } else {
                let use_left = match choice {
                    AlgoChoice::TwoStep(TwoStepSide::Left) => true,
                    AlgoChoice::TwoStep(TwoStepSide::Right) => false,
                    // Auto / Heuristic / Predicted: the paper's rule.
                    _ => il > ir,
                };
                let mid_len = if use_left { i_n * ir * c } else { il * i_n * c };
                (
                    if use_left {
                        PlannedAlgo::TwoStepLeft
                    } else {
                        PlannedAlgo::TwoStepRight
                    },
                    PlanKind::TwoStep {
                        use_left,
                        il,
                        ir,
                        left_order,
                        right_order,
                        kl: vec![S::ZERO; il * c],
                        kr: vec![S::ZERO; ir * c],
                        krp_state: KrpState::new(),
                        mid: vec![S::ZERO; mid_len],
                        col_in: vec![S::ZERO; usize::max(il, ir)],
                        col_out: vec![S::ZERO; i_n],
                    },
                )
            }
        };

        MttkrpPlan {
            dims: dims.to_vec(),
            c,
            n,
            threads: t,
            algo,
            choice,
            predicted,
            kind,
            kernels: ks,
        }
    }

    /// The [`AlgoChoice`] the plan resolved to. [`AlgoChoice::Tuned`]
    /// never appears here: it is replaced at construction by the cost
    /// model's [`AlgoChoice::Predicted`] times, or by
    /// [`AlgoChoice::Heuristic`] when no model is installed.
    #[inline]
    pub fn choice(&self) -> AlgoChoice {
        self.choice
    }

    /// The cost model's predicted seconds for this mode, when the plan
    /// was built from a prediction ([`AlgoChoice::Predicted`], directly
    /// or via a resolved [`AlgoChoice::Tuned`]).
    pub fn predicted_times(&self) -> Option<ModeCost> {
        self.predicted
    }

    /// The kernel tier this plan's hot loops dispatch to.
    #[inline]
    pub fn kernel_tier(&self) -> mttkrp_blas::KernelTier {
        self.kernels.tier()
    }

    /// Tensor dimensions the plan was built for.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Decomposition rank `C`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.c
    }

    /// The planned mode.
    #[inline]
    pub fn mode(&self) -> usize {
        self.n
    }

    /// Team size the schedule was computed for.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The resolved kernel.
    #[inline]
    pub fn algo(&self) -> PlannedAlgo {
        self.algo
    }

    /// Address of the first thread's private output buffer — exposed so
    /// tests can assert workspace-pointer stability across executions
    /// (the "no per-iteration allocation" property).
    pub fn workspace_ptr(&self) -> *const S {
        match &self.kind {
            PlanKind::OneStepExternal { ws, .. } => ws.slot(0).m.as_ptr(),
            PlanKind::OneStepInternal { ws, .. } => ws.slot(0).m.as_ptr(),
            PlanKind::TwoStep { mid, .. } => mid.as_ptr(),
            PlanKind::Fused { ws, .. } => ws.slot(0).kl_row.as_ptr(),
        }
    }

    /// Execute the planned MTTKRP: `out ← X(n) · (⊙_{k≠n} U_k)`,
    /// row-major `I_n × C`, overwritten.
    ///
    /// # Panics
    /// Panics if `pool`, `x`, `factors`, or `out` disagree with the
    /// planned shape.
    pub fn execute(
        &mut self,
        pool: &ThreadPool,
        x: &DenseTensor<S>,
        factors: &[MatRef<S>],
        out: &mut [S],
    ) {
        let _ = self.execute_timed(pool, x, factors, out);
    }

    /// [`MttkrpPlan::execute`] returning the per-phase time breakdown.
    pub fn execute_timed(
        &mut self,
        pool: &ThreadPool,
        x: &DenseTensor<S>,
        factors: &[MatRef<S>],
        out: &mut [S],
    ) -> Breakdown {
        assert_eq!(
            x.dims(),
            &self.dims[..],
            "tensor shape differs from the planned shape"
        );
        assert_eq!(
            pool.num_threads(),
            self.threads,
            "pool size differs from the planned team"
        );
        let c = validate_factors(&self.dims, factors);
        assert_eq!(c, self.c, "factor rank differs from the planned rank");
        let i_n = self.dims[self.n];
        assert_eq!(out.len(), i_n * c, "output must be I_n × C");

        let _span = mttkrp_obs::span!("mttkrp", mode = self.n);
        let total_t0 = std::time::Instant::now();
        let mut bd = Breakdown::default();
        match &mut self.kind {
            PlanKind::OneStepExternal {
                nsplit,
                col_ranges,
                krp_order,
                ws,
                ..
            } => {
                exec_onestep_external(
                    &self.kernels,
                    pool,
                    x,
                    factors,
                    self.n,
                    i_n,
                    c,
                    *nsplit,
                    col_ranges,
                    krp_order,
                    ws,
                    out,
                    &mut bd,
                );
            }
            PlanKind::OneStepInternal {
                ir,
                left_order,
                right_order,
                kl,
                kl_state,
                ws,
                ..
            } => {
                exec_onestep_internal(
                    &self.kernels,
                    pool,
                    x,
                    factors,
                    self.n,
                    i_n,
                    c,
                    *ir,
                    left_order,
                    right_order,
                    kl,
                    kl_state,
                    ws,
                    out,
                    &mut bd,
                );
            }
            PlanKind::TwoStep {
                use_left,
                il,
                ir,
                left_order,
                right_order,
                kl,
                kr,
                krp_state,
                mid,
                col_in,
                col_out,
            } => {
                exec_twostep(
                    &self.kernels,
                    pool,
                    x,
                    factors,
                    self.n,
                    i_n,
                    c,
                    *use_left,
                    *il,
                    *ir,
                    left_order,
                    right_order,
                    kl,
                    kr,
                    krp_state,
                    mid,
                    col_in,
                    col_out,
                    out,
                    &mut bd,
                );
            }
            PlanKind::Fused {
                il,
                ir,
                left_order,
                right_order,
                row_ranges,
                ws,
            } => {
                exec_fused(
                    &self.kernels,
                    pool,
                    x,
                    factors,
                    i_n,
                    c,
                    *il,
                    *ir,
                    left_order,
                    right_order,
                    row_ranges,
                    ws,
                    out,
                    &mut bd,
                );
            }
        }
        bd.total = total_t0.elapsed().as_secs_f64();
        bd
    }
}

/// Form the KRP `factors[order[0]] ⊙ …` into `out`: cursor-state path
/// for one thread (allocation-free), row-partitioned [`par_krp`] for a
/// team.
fn plan_krp<S: Scalar>(
    ks: &KernelSet<S>,
    pool: &ThreadPool,
    factors: &[MatRef<S>],
    order: &[usize],
    st: &mut KrpState<S>,
    out: &mut [S],
    c: usize,
) {
    if pool.num_threads() == 1 {
        let mut stream = st.cursor_with(factors, order, ks);
        for row in out.chunks_exact_mut(c) {
            stream.write_next(row);
        }
    } else {
        let inputs: Vec<MatRef<S>> = order.iter().map(|&i| factors[i]).collect();
        par_krp_with(ks, pool, &inputs, out);
    }
}

#[allow(clippy::too_many_arguments)]
fn exec_onestep_external<S: Scalar>(
    ks: &KernelSet<S>,
    pool: &ThreadPool,
    x: &DenseTensor<S>,
    factors: &[MatRef<S>],
    n: usize,
    i_n: usize,
    c: usize,
    nsplit: usize,
    col_ranges: &[Range<usize>],
    krp_order: &[usize],
    ws: &mut Workspace<ExtSlot<S>>,
    out: &mut [S],
    bd: &mut Breakdown,
) {
    let unf = x.unfold(n);
    let xv = unf
        .as_single_view()
        .expect("external mode is a single strided view");

    pool.run_with_workspace(ws, |ctx, slot| {
        slot.bd = Breakdown::default();
        let r = col_ranges[ctx.thread_id].clone();
        if r.is_empty() {
            return;
        }
        timed_traced("krp", &mut slot.bd.full_krp, || {
            let mut stream = slot.krp.cursor_with(factors, krp_order, ks);
            stream.seek(r.start);
            for row in slot.k.chunks_exact_mut(c) {
                stream.write_next(row);
            }
        });
        timed_traced("gemm", &mut slot.bd.dgemm, || {
            let xt = xv.submatrix(0, r.start, i_n, r.len());
            let kt = MatRef::from_slice(&slot.k, r.len(), c, Layout::RowMajor);
            gemm_with(
                ks,
                1.0,
                xt,
                kt,
                0.0,
                MatMut::from_slice(&mut slot.m, i_n, c, Layout::RowMajor),
            );
        });
    });

    for slot in ws.slots() {
        bd.full_krp = bd.full_krp.max(slot.bd.full_krp);
        bd.dgemm = bd.dgemm.max(slot.bd.dgemm);
    }
    timed_traced("reduce", &mut bd.reduce, || {
        reduce_slots(pool, out, ws.slots(), nsplit, |s| &s.m)
    });
}

#[allow(clippy::too_many_arguments)]
fn exec_onestep_internal<S: Scalar>(
    ks: &KernelSet<S>,
    pool: &ThreadPool,
    x: &DenseTensor<S>,
    factors: &[MatRef<S>],
    n: usize,
    i_n: usize,
    c: usize,
    ir: usize,
    left_order: &[usize],
    right_order: &[usize],
    kl: &mut [S],
    kl_state: &mut KrpState<S>,
    ws: &mut Workspace<IntSlot<S>>,
    out: &mut [S],
    bd: &mut Breakdown,
) {
    let unf = x.unfold(n);
    debug_assert_eq!(unf.num_blocks(), ir);

    timed_traced("krp", &mut bd.lr_krp, || {
        plan_krp(ks, pool, factors, left_order, kl_state, kl, c)
    });
    let kl = &*kl;

    pool.run_with_workspace(ws, |ctx, slot| {
        slot.bd = Breakdown::default();
        slot.m.fill(S::ZERO);
        // One detail span for the whole block-cyclic loop; per-block
        // spans would swamp the trace buffer for large IR_n.
        let _s = mttkrp_obs::span_full!("block_loop", blocks = ir);
        let mut stream = slot.krp.cursor_with(factors, right_order, ks);
        let mut j = ctx.thread_id;
        while j < ir {
            timed(&mut slot.bd.lr_krp, || {
                stream.seek(j);
                stream.write_next(&mut slot.kr_row);
                // K_t = KR(j,:) ⊙ KL : scale each KL row.
                for (kt_row, kl_row) in slot.kt.chunks_exact_mut(c).zip(kl.chunks_exact(c)) {
                    (ks.hadamard)(&slot.kr_row, kl_row, kt_row);
                }
            });
            timed(&mut slot.bd.dgemm, || {
                let ktv = MatRef::from_slice(&slot.kt, slot.kt.len() / c, c, Layout::RowMajor);
                gemm_with(
                    ks,
                    1.0,
                    unf.block(j),
                    ktv,
                    1.0,
                    MatMut::from_slice(&mut slot.m, i_n, c, Layout::RowMajor),
                );
            });
            j += ctx.num_threads;
        }
    });

    let mut phase = Breakdown::default();
    for slot in ws.slots() {
        phase.lr_krp = phase.lr_krp.max(slot.bd.lr_krp);
        phase.dgemm = phase.dgemm.max(slot.bd.dgemm);
    }
    bd.lr_krp += phase.lr_krp;
    bd.dgemm = phase.dgemm;
    timed_traced("reduce", &mut bd.reduce, || {
        reduce_slots(pool, out, ws.slots(), ws.slots().len(), |s| &s.m)
    });
}

#[allow(clippy::too_many_arguments)]
fn exec_twostep<S: Scalar>(
    ks: &KernelSet<S>,
    pool: &ThreadPool,
    x: &DenseTensor<S>,
    factors: &[MatRef<S>],
    n: usize,
    i_n: usize,
    c: usize,
    use_left: bool,
    il: usize,
    ir: usize,
    left_order: &[usize],
    right_order: &[usize],
    kl: &mut [S],
    kr: &mut [S],
    krp_state: &mut KrpState<S>,
    mid: &mut [S],
    col_in: &mut [S],
    col_out: &mut [S],
    out: &mut [S],
    bd: &mut Breakdown,
) {
    // Lines 2–3: both partial KRPs.
    timed_traced("krp", &mut bd.lr_krp, || {
        plan_krp(ks, pool, factors, left_order, krp_state, kl, c);
        plan_krp(ks, pool, factors, right_order, krp_state, kr, c);
    });
    let kl_view = MatRef::from_slice(kl, il, c, Layout::RowMajor);
    let kr_view = MatRef::from_slice(kr, ir, c, Layout::RowMajor);

    let mut out_mat = MatMut::from_slice(out, i_n, c, Layout::RowMajor);

    if use_left {
        // Line 5: L(0:N−n−1) = X(0:n−1)ᵀ · KL, of shape (I_n·IR_n) × C,
        // stored column-major (L in natural order with C appended).
        timed_traced("gemm", &mut bd.dgemm, || {
            let xt = x.unfold_leading(n - 1).t(); // (I_n·IR_n) × IL_n, row-major
            par_gemm_with(
                ks,
                pool,
                1.0,
                xt,
                kl_view,
                0.0,
                MatMut::from_slice(mid, i_n * ir, c, Layout::ColMajor),
            );
        });
        // Lines 6–9: M(:,j) = L(0)[j] · KR(:,j); L(0)[j] is the j-th
        // I_n × IR_n column-major block of L's mode-0 unfolding.
        timed_traced("gemv", &mut bd.dgemv, || {
            for j in 0..c {
                let lj = MatRef::from_slice(
                    &mid[j * i_n * ir..(j + 1) * i_n * ir],
                    i_n,
                    ir,
                    Layout::ColMajor,
                );
                for (i, dst) in col_in[..ir].iter_mut().enumerate() {
                    *dst = kr_view.get(i, j);
                }
                par_gemv(pool, 1.0, lj, &col_in[..ir], 0.0, col_out);
                for (i, &v) in col_out.iter().enumerate() {
                    out_mat.set(i, j, v);
                }
            }
        });
    } else {
        // Line 11: R(0:n) = X(0:n) · KR, of shape (IL_n·I_n) × C,
        // stored column-major (R in natural order with C appended).
        timed_traced("gemm", &mut bd.dgemm, || {
            let xv = x.unfold_leading(n); // (IL_n·I_n) × IR_n, column-major
            par_gemm_with(
                ks,
                pool,
                1.0,
                xv,
                kr_view,
                0.0,
                MatMut::from_slice(mid, il * i_n, c, Layout::ColMajor),
            );
        });
        // Lines 12–15: M(:,j) = R(n)[j] · KL(:,j); R(n)[j] is the j-th
        // I_n × IL_n row-major block of R's mode-n unfolding.
        timed_traced("gemv", &mut bd.dgemv, || {
            for j in 0..c {
                let rj = MatRef::from_slice(
                    &mid[j * il * i_n..(j + 1) * il * i_n],
                    i_n,
                    il,
                    Layout::RowMajor,
                );
                for (i, dst) in col_in[..il].iter_mut().enumerate() {
                    *dst = kl_view.get(i, j);
                }
                par_gemv(pool, 1.0, rj, &col_in[..il], 0.0, col_out);
                for (i, &v) in col_out.iter().enumerate() {
                    out_mat.set(i, j, v);
                }
            }
        });
    }
}

/// Combine the first `nparts` slots' private outputs into `out`
/// (overwriting). Allocation-free for one part; the paper's parallel
/// element-range reduction otherwise.
fn reduce_slots<W, S: Scalar>(
    pool: &ThreadPool,
    out: &mut [S],
    slots: &[W],
    nparts: usize,
    buf: impl Fn(&W) -> &Vec<S>,
) {
    if nparts == 1 {
        out.copy_from_slice(buf(&slots[0]));
        return;
    }
    out.fill(S::ZERO);
    let parts: Vec<&[S]> = slots[..nparts].iter().map(|s| buf(s).as_slice()).collect();
    reduce::sum_into(pool, out, &parts);
}

/// `out[c] += x · kl[c] · kr[c]` — the fused algorithm's per-entry
/// rank-length accumulate, contracted so LLVM keeps the FMA form for
/// both element types.
#[inline]
fn fused_accum<S: Scalar>(x: S, kl: &[S], kr: &[S], out: &mut [S]) {
    for ((o, &a), &b) in out.iter_mut().zip(kl).zip(kr) {
        *o = (x * a).mul_add(b, *o);
    }
}

/// The matrix-free fused MTTKRP: one pass over the tensor entries in
/// natural order, multiplying each entry into its output row with the
/// on-the-fly Hadamard of factor rows — no materialized KRP, no unfold
/// buffer, and no reduction (threads own disjoint output row ranges).
///
/// Entry `ℓ = jl + i·IL_n + jr·IL_n·I_n` contributes
/// `M(i,:) += X[ℓ] · (KL(jl,:) ∗ KR(jr,:))`. Left rows are streamed
/// with Algorithm 1's prefix reuse — or borrowed straight from the
/// factor when one matrix makes up the side — so the dominant cost is
/// one fused multiply-add chain per entry.
#[allow(clippy::too_many_arguments)]
fn exec_fused<S: Scalar>(
    ks: &KernelSet<S>,
    pool: &ThreadPool,
    x: &DenseTensor<S>,
    factors: &[MatRef<S>],
    i_n: usize,
    c: usize,
    il: usize,
    ir: usize,
    left_order: &[usize],
    right_order: &[usize],
    row_ranges: &[Range<usize>],
    ws: &mut Workspace<FusedSlot<S>>,
    out: &mut [S],
    bd: &mut Breakdown,
) {
    let data = x.data();
    let out_base = out.as_mut_ptr() as usize;
    pool.run_with_workspace(ws, |ctx, slot| {
        let FusedSlot {
            kl_row,
            kr_row,
            left,
            right,
            bd,
        } = slot;
        *bd = Breakdown::default();
        let r = row_ranges[ctx.thread_id].clone();
        if r.is_empty() {
            return;
        }
        // Safety: row ranges are pairwise disjoint sub-ranges of
        // `0..i_n` and `out` stays mutably borrowed for the region.
        let my_out = unsafe {
            std::slice::from_raw_parts_mut((out_base as *mut S).add(r.start * c), r.len() * c)
        };
        my_out.fill(S::ZERO);
        timed_traced("fused_stream", &mut bd.fused, || {
            let z_l = left_order.len();
            let z_r = right_order.len();
            let mut right_stream = (z_r >= 2).then(|| right.cursor_with(factors, right_order, ks));
            for jr in 0..ir {
                match (&mut right_stream, z_r) {
                    (Some(stream), _) => stream.write_next(kr_row),
                    (None, 1) => kr_row.copy_from_slice(factors[right_order[0]].row_slice(jr)),
                    (None, _) => {}
                }
                for i in r.clone() {
                    let orow = &mut my_out[(i - r.start) * c..(i - r.start) * c + c];
                    let base = (jr * i_n + i) * il;
                    let xrow = &data[base..base + il];
                    match (z_l, z_r) {
                        (0, _) => {
                            // Mode 0 (IL = 1): the row product is KR alone.
                            (ks.axpy)(xrow[0], kr_row, orow);
                        }
                        (1, 0) => {
                            // Last mode of an order-2 tensor.
                            let f = factors[left_order[0]];
                            for (jl, &xv) in xrow.iter().enumerate() {
                                if xv != S::ZERO {
                                    (ks.axpy)(xv, f.row_slice(jl), orow);
                                }
                            }
                        }
                        (_, 0) => {
                            // Last mode: stream left rows, no right side.
                            let mut ls = left.cursor_with(factors, left_order, ks);
                            for &xv in xrow {
                                ls.write_next(kl_row);
                                if xv != S::ZERO {
                                    (ks.axpy)(xv, kl_row, orow);
                                }
                            }
                        }
                        (1, _) => {
                            // One left factor: borrow its rows directly.
                            let f = factors[left_order[0]];
                            for (jl, &xv) in xrow.iter().enumerate() {
                                if xv != S::ZERO {
                                    fused_accum(xv, f.row_slice(jl), kr_row, orow);
                                }
                            }
                        }
                        _ => {
                            let mut ls = left.cursor_with(factors, left_order, ks);
                            for &xv in xrow {
                                ls.write_next(kl_row);
                                if xv != S::ZERO {
                                    fused_accum(xv, kl_row, kr_row, orow);
                                }
                            }
                        }
                    }
                }
            }
        });
    });
    for slot in ws.slots() {
        bd.fused = bd.fused.max(slot.bd.fused);
    }
}

/// One plan per mode of a tensor shape — what CP-ALS builds once per
/// model and reuses every sweep.
#[derive(Debug)]
pub struct MttkrpPlanSet<S: Scalar = f64> {
    plans: Vec<MttkrpPlan<S>>,
}

impl<S: Scalar> MttkrpPlanSet<S> {
    /// Plan every mode of a `dims` tensor at rank `c` with the same
    /// [`AlgoChoice`].
    pub fn new(pool: &ThreadPool, dims: &[usize], c: usize, choice: AlgoChoice) -> Self {
        Self::with_choices(pool, dims, c, |_| choice)
    }

    /// Plan every mode, choosing the kernel per mode — e.g. from
    /// machine-model predictions.
    pub fn with_choices(
        pool: &ThreadPool,
        dims: &[usize],
        c: usize,
        mut choice: impl FnMut(usize) -> AlgoChoice,
    ) -> Self {
        let plans = (0..dims.len())
            .map(|n| MttkrpPlan::new(pool, dims, c, n, choice(n)))
            .collect();
        MttkrpPlanSet { plans }
    }

    /// Number of planned modes.
    #[inline]
    pub fn nmodes(&self) -> usize {
        self.plans.len()
    }

    /// The plan for mode `n`.
    #[inline]
    pub fn plan(&self, n: usize) -> &MttkrpPlan<S> {
        &self.plans[n]
    }

    /// Mutable plan for mode `n`.
    #[inline]
    pub fn plan_mut(&mut self, n: usize) -> &mut MttkrpPlan<S> {
        &mut self.plans[n]
    }

    /// Execute the mode-`n` plan.
    pub fn execute(
        &mut self,
        pool: &ThreadPool,
        x: &DenseTensor<S>,
        factors: &[MatRef<S>],
        n: usize,
        out: &mut [S],
    ) {
        self.plans[n].execute(pool, x, factors, out);
    }

    /// Execute the mode-`n` plan, returning the phase breakdown.
    pub fn execute_timed(
        &mut self,
        pool: &ThreadPool,
        x: &DenseTensor<S>,
        factors: &[MatRef<S>],
        n: usize,
        out: &mut [S],
    ) -> Breakdown {
        self.plans[n].execute_timed(pool, x, factors, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::mttkrp_oracle;
    use crate::{mttkrp_1step, mttkrp_2step, mttkrp_auto};

    fn rand_vec(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = mttkrp_rng::Rng64::seed_from_u64(seed);
        (0..n).map(|_| rng.next_f64() - 0.5).collect()
    }

    fn setup(dims: &[usize], c: usize) -> (DenseTensor, Vec<Vec<f64>>) {
        let x = DenseTensor::from_vec(dims, rand_vec(dims.iter().product(), 77));
        let factors: Vec<Vec<f64>> = dims
            .iter()
            .enumerate()
            .map(|(k, &d)| rand_vec(d * c, k as u64 + 11))
            .collect();
        (x, factors)
    }

    fn factor_refs<'a>(factors: &'a [Vec<f64>], dims: &[usize], c: usize) -> Vec<MatRef<'a>> {
        factors
            .iter()
            .zip(dims)
            .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
            .collect()
    }

    #[test]
    fn plan_matches_oracle_all_modes_and_choices() {
        let dims = [4usize, 3, 2, 3];
        let c = 3;
        let (x, factors) = setup(&dims, c);
        let refs = factor_refs(&factors, &dims, c);
        for t in [1usize, 2, 5] {
            let pool = ThreadPool::new(t);
            for n in 0..dims.len() {
                let mut want = vec![0.0; dims[n] * c];
                mttkrp_oracle(&x, &refs, n, &mut want);
                for choice in [
                    AlgoChoice::Heuristic,
                    AlgoChoice::OneStep,
                    AlgoChoice::TwoStep(TwoStepSide::Auto),
                    AlgoChoice::TwoStep(TwoStepSide::Left),
                    AlgoChoice::TwoStep(TwoStepSide::Right),
                    AlgoChoice::Predicted {
                        one_step: 1.0,
                        two_step: 2.0,
                    },
                    AlgoChoice::Predicted {
                        one_step: 2.0,
                        two_step: 1.0,
                    },
                    AlgoChoice::Fused,
                ] {
                    let mut plan = MttkrpPlan::new(&pool, &dims, c, n, choice);
                    let mut got = vec![f64::NAN; dims[n] * c];
                    plan.execute(&pool, &x, &refs, &mut got);
                    for (a, b) in got.iter().zip(&want) {
                        assert!(
                            (a - b).abs() < 1e-9 * (1.0 + b.abs()),
                            "t={t} n={n} choice {choice:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn repeated_execution_is_bitwise_stable() {
        let dims = [5usize, 4, 3];
        let c = 4;
        let (x, factors) = setup(&dims, c);
        let refs = factor_refs(&factors, &dims, c);
        let pool = ThreadPool::new(3);
        for n in 0..dims.len() {
            let mut plan = MttkrpPlan::new(&pool, &dims, c, n, AlgoChoice::Heuristic);
            let mut first = vec![f64::NAN; dims[n] * c];
            plan.execute(&pool, &x, &refs, &mut first);
            let ptr = plan.workspace_ptr();
            for _ in 0..3 {
                let mut again = vec![f64::NAN; dims[n] * c];
                plan.execute(&pool, &x, &refs, &mut again);
                assert_eq!(first, again, "mode {n} drifted across executions");
            }
            assert_eq!(ptr, plan.workspace_ptr(), "workspace reallocated");
        }
    }

    #[test]
    fn wrappers_are_bitwise_identical_to_plans() {
        let dims = [3usize, 4, 2, 2];
        let c = 3;
        let (x, factors) = setup(&dims, c);
        let refs = factor_refs(&factors, &dims, c);
        for t in [1usize, 4] {
            let pool = ThreadPool::new(t);
            for n in 0..dims.len() {
                let mut from_wrapper = vec![0.0; dims[n] * c];
                mttkrp_auto(&pool, &x, &refs, n, &mut from_wrapper);
                let mut plan = MttkrpPlan::new(&pool, &dims, c, n, AlgoChoice::Heuristic);
                let mut from_plan = vec![0.0; dims[n] * c];
                plan.execute(&pool, &x, &refs, &mut from_plan);
                assert_eq!(from_wrapper, from_plan, "auto t={t} n={n}");

                mttkrp_1step(&pool, &x, &refs, n, &mut from_wrapper);
                let mut plan = MttkrpPlan::new(&pool, &dims, c, n, AlgoChoice::OneStep);
                plan.execute(&pool, &x, &refs, &mut from_plan);
                assert_eq!(from_wrapper, from_plan, "1step t={t} n={n}");

                mttkrp_2step(&pool, &x, &refs, n, &mut from_wrapper);
                let mut plan =
                    MttkrpPlan::new(&pool, &dims, c, n, AlgoChoice::TwoStep(TwoStepSide::Auto));
                plan.execute(&pool, &x, &refs, &mut from_plan);
                assert_eq!(from_wrapper, from_plan, "2step t={t} n={n}");
            }
        }
    }

    #[test]
    fn planned_algo_resolution() {
        let pool = ThreadPool::new(2);
        let dims = [4usize, 3, 5];
        // External modes always resolve to 1-step.
        for choice in [
            AlgoChoice::Heuristic,
            AlgoChoice::TwoStep(TwoStepSide::Auto),
        ] {
            assert_eq!(
                MttkrpPlan::<f64>::new(&pool, &dims, 2, 0, choice).algo(),
                PlannedAlgo::OneStepExternal
            );
        }
        // Internal heuristic: 2-step with the IL > IR rule (IL=4 < IR=5
        // here → right).
        assert_eq!(
            MttkrpPlan::<f64>::new(&pool, &dims, 2, 1, AlgoChoice::Heuristic).algo(),
            PlannedAlgo::TwoStepRight
        );
        assert_eq!(
            MttkrpPlan::<f64>::new(&pool, &dims, 2, 1, AlgoChoice::TwoStep(TwoStepSide::Left))
                .algo(),
            PlannedAlgo::TwoStepLeft
        );
        // Machine-model override picks the cheaper prediction.
        assert_eq!(
            MttkrpPlan::<f64>::new(
                &pool,
                &dims,
                2,
                1,
                AlgoChoice::Predicted {
                    one_step: 0.5,
                    two_step: 1.0
                }
            )
            .algo(),
            PlannedAlgo::OneStepInternal
        );
    }

    #[test]
    fn degenerate_internal_modes_take_the_single_view_kernel() {
        // Mode 1 of [4, 3, 1] is "internal" by index but X(1) is a
        // single strided view (IR = 1); the 1-step kernel must use the
        // column-partitioned external variant, not the one-block
        // block-cyclic loop that would serialize the GEMM.
        let pool = ThreadPool::new(2);
        for dims in [vec![4usize, 3, 1], vec![1, 3, 4], vec![1, 1, 3, 4]] {
            let n = 1;
            let plan = MttkrpPlan::new(&pool, &dims, 2, n, AlgoChoice::OneStep);
            assert_eq!(plan.algo(), PlannedAlgo::OneStepExternal, "dims {dims:?}");
            // And it still matches the oracle.
            let (x, factors) = setup(&dims, 2);
            let refs = factor_refs(&factors, &dims, 2);
            let mut want = vec![0.0; dims[n] * 2];
            mttkrp_oracle(&x, &refs, n, &mut want);
            let mut plan = plan;
            let mut got = vec![0.0; dims[n] * 2];
            plan.execute(&pool, &x, &refs, &mut got);
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()), "dims {dims:?}");
            }
        }
        // A genuinely blocked internal mode still plans the internal kernel.
        let plan = MttkrpPlan::<f64>::new(&pool, &[4, 3, 2], 2, 1, AlgoChoice::OneStep);
        assert_eq!(plan.algo(), PlannedAlgo::OneStepInternal);
    }

    #[test]
    fn plan_set_covers_every_mode() {
        let dims = [4usize, 2, 3];
        let c = 2;
        let (x, factors) = setup(&dims, c);
        let refs = factor_refs(&factors, &dims, c);
        let pool = ThreadPool::new(2);
        let mut set = MttkrpPlanSet::new(&pool, &dims, c, AlgoChoice::Heuristic);
        assert_eq!(set.nmodes(), 3);
        for n in 0..3 {
            let mut want = vec![0.0; dims[n] * c];
            mttkrp_oracle(&x, &refs, n, &mut want);
            let mut got = vec![0.0; dims[n] * c];
            let bd = set.execute_timed(&pool, &x, &refs, n, &mut got);
            assert!(bd.total > 0.0);
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()), "mode {n}");
            }
        }
    }

    #[test]
    fn pinned_kernel_tier_threads_through_every_executor() {
        // A plan built with an explicit KernelSet must report that tier
        // and still match the oracle through every kernel path (GEMM
        // tiles AND the KRP row streams — regression: the streams used
        // to fall back to the global dispatch).
        let dims = [4usize, 3, 2, 3];
        let c = 3;
        let (x, factors) = setup(&dims, c);
        let refs = factor_refs(&factors, &dims, c);
        let pool = ThreadPool::new(2);
        for tier in mttkrp_blas::available_tiers() {
            let ks = mttkrp_blas::KernelSet::for_tier(tier).expect("listed tier resolves");
            for n in 0..dims.len() {
                let mut want = vec![0.0; dims[n] * c];
                mttkrp_oracle(&x, &refs, n, &mut want);
                for choice in [
                    AlgoChoice::OneStep,
                    AlgoChoice::TwoStep(TwoStepSide::Auto),
                    AlgoChoice::Fused,
                ] {
                    let mut plan = MttkrpPlan::new_with_kernels(&pool, &dims, c, n, choice, ks);
                    assert_eq!(plan.kernel_tier(), tier);
                    let mut got = vec![f64::NAN; dims[n] * c];
                    plan.execute(&pool, &x, &refs, &mut got);
                    for (a, b) in got.iter().zip(&want) {
                        assert!(
                            (a - b).abs() < 1e-9 * (1.0 + b.abs()),
                            "tier {tier} n={n} choice {choice:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn wrong_pool_size_panics() {
        let dims = [3usize, 3];
        let (x, factors) = setup(&dims, 2);
        let refs = factor_refs(&factors, &dims, 2);
        let mut plan = MttkrpPlan::new(&ThreadPool::new(2), &dims, 2, 0, AlgoChoice::Heuristic);
        let mut out = vec![0.0; 6];
        plan.execute(&ThreadPool::new(3), &x, &refs, &mut out);
    }

    #[test]
    #[should_panic]
    fn wrong_tensor_shape_panics() {
        let dims = [3usize, 3];
        let (_, factors) = setup(&dims, 2);
        let refs = factor_refs(&factors, &dims, 2);
        let pool = ThreadPool::new(1);
        let mut plan = MttkrpPlan::new(&pool, &dims, 2, 0, AlgoChoice::Heuristic);
        let other = DenseTensor::zeros(&[3, 4]);
        let mut out = vec![0.0; 6];
        plan.execute(&pool, &other, &refs, &mut out);
    }
}
