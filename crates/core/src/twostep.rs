//! The 2-step MTTKRP (Algorithm 4, due to Phan et al.).
//!
//! Step 1 — *partial MTTKRP* — is one large GEMM that never touches the
//! block structure: `X(0:n)` is column-major in memory for every `n`, so
//! `R(0:n) = X(0:n) · KR` is a single BLAS call (right variant), and
//! `X(0:n−1)ᵀ` is row-major, so `L = X(0:n−1)ᵀ · KL` is too (left
//! variant). The side is chosen to minimize the flops of step 2
//! (`IL_n > IR_n ⇒ left`, Algorithm 4 line 4).
//!
//! Step 2 — *multi-TTV* — combines the intermediate with the remaining
//! factors one output column at a time; each column is a GEMV on a
//! contiguous (row- or column-major) block of the intermediate.
//!
//! For external modes the 2-step algorithm degenerates to the 1-step
//! algorithm (the partial MTTKRP already is the answer), so this module
//! delegates those modes to [`crate::onestep`].

use mttkrp_blas::{MatRef, Scalar};
use mttkrp_parallel::ThreadPool;
use mttkrp_tensor::DenseTensor;

use crate::breakdown::Breakdown;
use crate::plan::{AlgoChoice, MttkrpPlan};
use crate::validate_factors;

/// Which side Algorithm 4 performs the partial MTTKRP on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TwoStepSide {
    /// Follow the paper's heuristic: left when `IL_n > IR_n`.
    Auto,
    /// Force `L = X(0:n−1)ᵀ · KL`, multi-TTV against `KR`.
    Left,
    /// Force `R = X(0:n) · KR`, multi-TTV against `KL`.
    Right,
}

/// 2-step MTTKRP (Algorithm 4). Parallelism lives inside the BLAS calls,
/// exactly as in the paper. Output is row-major `I_n × C`, overwritten.
///
/// External modes delegate to the (equivalent) 1-step algorithm.
pub fn mttkrp_2step<S: Scalar>(
    pool: &ThreadPool,
    x: &DenseTensor<S>,
    factors: &[MatRef<S>],
    n: usize,
    out: &mut [S],
) {
    let _ = mttkrp_2step_impl(pool, x, factors, n, out, TwoStepSide::Auto);
}

/// [`mttkrp_2step`] with an explicit side choice (the left-vs-right
/// ablation) and per-phase timing (Figure 6's `2S` bars).
pub fn mttkrp_2step_timed<S: Scalar>(
    pool: &ThreadPool,
    x: &DenseTensor<S>,
    factors: &[MatRef<S>],
    n: usize,
    out: &mut [S],
    side: TwoStepSide,
) -> Breakdown {
    mttkrp_2step_impl(pool, x, factors, n, out, side)
}

fn mttkrp_2step_impl<S: Scalar>(
    pool: &ThreadPool,
    x: &DenseTensor<S>,
    factors: &[MatRef<S>],
    n: usize,
    out: &mut [S],
    side: TwoStepSide,
) -> Breakdown {
    let dims = x.dims();
    assert!(dims.len() >= 2, "MTTKRP requires an order >= 2 tensor");
    let c = validate_factors(dims, factors);
    assert!(n < dims.len(), "mode {n} out of range");
    assert_eq!(out.len(), dims[n] * c, "output must be I_n \u{d7} C");
    let mut plan = MttkrpPlan::new(pool, dims, c, n, AlgoChoice::TwoStep(side));
    plan.execute_timed(pool, x, factors, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::mttkrp_oracle;
    use mttkrp_blas::Layout;

    fn rand_vec(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 32) as f64) - 0.5
            })
            .collect()
    }

    fn setup(dims: &[usize], c: usize) -> (DenseTensor, Vec<Vec<f64>>) {
        let x = DenseTensor::from_vec(dims, rand_vec(dims.iter().product(), 7));
        let factors: Vec<Vec<f64>> = dims
            .iter()
            .enumerate()
            .map(|(k, &d)| rand_vec(d * c, k as u64 + 3))
            .collect();
        (x, factors)
    }

    fn factor_refs<'a>(factors: &'a [Vec<f64>], dims: &[usize], c: usize) -> Vec<MatRef<'a>> {
        factors
            .iter()
            .zip(dims)
            .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
            .collect()
    }

    fn assert_close(a: &[f64], b: &[f64], tag: &str) {
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= 1e-9 * (1.0 + y.abs()),
                "{tag} idx {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn matches_oracle_internal_modes() {
        for dims in [vec![4usize, 3, 5], vec![3, 4, 2, 3], vec![2, 3, 2, 2, 2]] {
            let c = 3;
            let (x, factors) = setup(&dims, c);
            let refs = factor_refs(&factors, &dims, c);
            let pool = ThreadPool::new(2);
            for n in 1..dims.len() - 1 {
                let mut want = vec![0.0; dims[n] * c];
                let mut got = vec![0.0; dims[n] * c];
                mttkrp_oracle(&x, &refs, n, &mut want);
                mttkrp_2step(&pool, &x, &refs, n, &mut got);
                assert_close(&got, &want, &format!("dims {dims:?} mode {n}"));
            }
        }
    }

    #[test]
    fn left_and_right_variants_agree() {
        let dims = [4usize, 3, 2, 5];
        let c = 4;
        let (x, factors) = setup(&dims, c);
        let refs = factor_refs(&factors, &dims, c);
        let pool = ThreadPool::new(3);
        for n in 1..3 {
            let mut left = vec![0.0; dims[n] * c];
            let mut right = vec![0.0; dims[n] * c];
            let mut want = vec![0.0; dims[n] * c];
            mttkrp_oracle(&x, &refs, n, &mut want);
            mttkrp_2step_timed(&pool, &x, &refs, n, &mut left, TwoStepSide::Left);
            mttkrp_2step_timed(&pool, &x, &refs, n, &mut right, TwoStepSide::Right);
            assert_close(&left, &want, &format!("left mode {n}"));
            assert_close(&right, &want, &format!("right mode {n}"));
        }
    }

    #[test]
    fn external_modes_delegate_to_1step() {
        let dims = [4usize, 3, 5];
        let c = 2;
        let (x, factors) = setup(&dims, c);
        let refs = factor_refs(&factors, &dims, c);
        let pool = ThreadPool::new(2);
        for n in [0, 2] {
            let mut want = vec![0.0; dims[n] * c];
            let mut got = vec![0.0; dims[n] * c];
            mttkrp_oracle(&x, &refs, n, &mut want);
            mttkrp_2step(&pool, &x, &refs, n, &mut got);
            assert_close(&got, &want, &format!("external mode {n}"));
        }
    }

    #[test]
    fn auto_side_matches_paper_heuristic() {
        // dims chosen so mode 1 has IL=6 > IR=2 (left) and mode 2 has
        // IL=... the heuristic itself is internal; we just verify both
        // autos equal the oracle.
        let dims = [6usize, 2, 2, 2];
        let c = 3;
        let (x, factors) = setup(&dims, c);
        let refs = factor_refs(&factors, &dims, c);
        let pool = ThreadPool::new(2);
        for n in 1..3 {
            let mut want = vec![0.0; dims[n] * c];
            let mut got = vec![0.0; dims[n] * c];
            mttkrp_oracle(&x, &refs, n, &mut want);
            let bd = mttkrp_2step_timed(&pool, &x, &refs, n, &mut got, TwoStepSide::Auto);
            assert_close(&got, &want, &format!("auto mode {n}"));
            assert!(bd.dgemm > 0.0);
            assert!(bd.dgemv > 0.0);
            assert_eq!(bd.full_krp, 0.0, "2-step never forms the full KRP");
        }
    }

    #[test]
    fn timed_breakdown_sums_below_total() {
        let dims = [8usize, 6, 8];
        let c = 5;
        let (x, factors) = setup(&dims, c);
        let refs = factor_refs(&factors, &dims, c);
        let pool = ThreadPool::new(1);
        let mut out = vec![0.0; dims[1] * c];
        let bd = mttkrp_2step_timed(&pool, &x, &refs, 1, &mut out, TwoStepSide::Auto);
        assert!(bd.categorized() <= bd.total * 1.5 + 1e-3);
    }

    #[test]
    fn overwrites_stale_output() {
        let dims = [3usize, 4, 3];
        let c = 2;
        let (x, factors) = setup(&dims, c);
        let refs = factor_refs(&factors, &dims, c);
        let pool = ThreadPool::new(2);
        let mut want = vec![0.0; 4 * c];
        mttkrp_oracle(&x, &refs, 1, &mut want);
        let mut got = vec![f64::NAN; 4 * c];
        mttkrp_2step(&pool, &x, &refs, 1, &mut got);
        assert_close(&got, &want, "stale");
    }
}
