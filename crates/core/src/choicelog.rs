//! Predicted-vs-measured bookkeeping for plan algorithm choices.
//!
//! A [`crate::AlgoChoice::Predicted`] or resolved
//! [`crate::AlgoChoice::Tuned`] plan commits to the algorithm its cost
//! model priced as faster — and nothing in the hot path ever checks
//! whether the model was right. [`ChoiceLog`] makes mispredictions
//! observable: drivers append one [`ChoiceRecord`] per timed execution
//! (model's predicted seconds next to the measured wall time), and
//! sweeps that time *both* algorithms can also record the road not
//! taken, which is what turns the log into an accuracy report
//! (`mttkrp-harness --tune` prints one).
//!
//! Two quality measures fall out:
//!
//! * [`ChoiceRecord::prediction_error`] — how far off the model's
//!   absolute time was for the algorithm that actually ran;
//! * [`ChoiceLog::agreement`] — over records where the alternative was
//!   also measured, how often the plan's choice was the empirically
//!   faster algorithm (the paper's machine-model claim, and the ≥ 80%
//!   acceptance bar of the tuning subsystem).
//!
//! ## Model-drift detection
//!
//! A calibrated profile goes stale — the machine changes (frequency
//! policy, contention, a migrated VM) and the model's predictions
//! quietly stop matching the clock. The log keeps a sliding window
//! ([`DRIFT_WINDOW`]) of the most recent per-record prediction errors;
//! when at least [`DRIFT_MIN_SAMPLES`] are in the window and their
//! mean exceeds [`DRIFT_FACTOR`] × the calibration-time baseline error
//! ([`ChoiceLog::set_baseline_error`], typically the profile's
//! `calib_err`; [`DEFAULT_BASELINE_ERROR`] otherwise), the log is
//! *drifted*: each transition into that state bumps the
//! `core.model_drift` counter, and [`ChoiceLog::drift_advisory`]
//! yields the "recalibrate" line the perf report and CLI footers
//! surface.

use std::collections::VecDeque;

use crate::breakdown::Breakdown;
use crate::model::ModeCost;
use crate::plan::{MttkrpPlan, PlannedAlgo};

/// Sliding-window length (records with predictions) drift is judged on.
pub const DRIFT_WINDOW: usize = 8;
/// Minimum predictions in the window before drift can trigger.
pub const DRIFT_MIN_SAMPLES: usize = 4;
/// Drift threshold: windowed mean error > this factor × baseline.
pub const DRIFT_FACTOR: f64 = 2.0;
/// Baseline relative error assumed when no calibration-time error is
/// known (quick profiles routinely sit near 25%).
pub const DEFAULT_BASELINE_ERROR: f64 = 0.25;

/// One observed plan execution (or one sweep configuration): what the
/// plan chose, what the model predicted, what the clock said.
#[derive(Debug, Clone, PartialEq)]
pub struct ChoiceRecord {
    /// Tensor dimensions of the planned shape.
    pub dims: Vec<usize>,
    /// Decomposition rank `C`.
    pub rank: usize,
    /// The planned mode.
    pub mode: usize,
    /// Team size the plan was built for.
    pub threads: usize,
    /// The kernel the plan resolved to.
    pub algo: PlannedAlgo,
    /// Model-predicted seconds per algorithm, if the plan was built
    /// from a prediction (`None` for heuristic/forced plans).
    pub predicted: Option<ModeCost>,
    /// Measured seconds of the algorithm the plan ran.
    pub measured: f64,
    /// Measured seconds of the *other* algorithm, when the caller swept
    /// both (1-step when a 2-step ran, and vice versa).
    pub measured_other: Option<f64>,
}

impl ChoiceRecord {
    /// Whether the plan ran a 1-step kernel (either variant).
    pub fn ran_one_step(&self) -> bool {
        matches!(
            self.algo,
            PlannedAlgo::OneStepExternal | PlannedAlgo::OneStepInternal
        )
    }

    /// The model's predicted seconds for the algorithm that ran.
    /// `None` for unpredicted plans, and for a fused run whose model
    /// had no calibrated fused term.
    pub fn predicted_for_run(&self) -> Option<f64> {
        let p = self.predicted?;
        match self.algo {
            PlannedAlgo::Fused => p.fused,
            PlannedAlgo::OneStepExternal | PlannedAlgo::OneStepInternal => Some(p.one_step),
            PlannedAlgo::TwoStepLeft | PlannedAlgo::TwoStepRight => Some(p.two_step),
        }
    }

    /// Relative error of the model on the executed algorithm:
    /// `|predicted − measured| / measured`. `None` for unpredicted
    /// plans or a zero measurement.
    pub fn prediction_error(&self) -> Option<f64> {
        let p = self.predicted_for_run()?;
        (self.measured > 0.0).then(|| (p - self.measured).abs() / self.measured)
    }

    /// Whether the plan's choice was the empirically faster algorithm.
    /// Requires the alternative to have been measured too; `None`
    /// otherwise.
    pub fn choice_was_fastest(&self) -> Option<bool> {
        self.measured_other.map(|other| self.measured <= other)
    }
}

/// An append-only log of [`ChoiceRecord`]s with aggregate accuracy
/// queries and sliding-window drift detection. See the
/// [module docs](self).
#[derive(Debug, Default)]
pub struct ChoiceLog {
    records: Vec<ChoiceRecord>,
    baseline_error: Option<f64>,
    window: VecDeque<f64>,
    drifted_now: bool,
}

impl ChoiceLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one timed execution of `plan`: the resolved algorithm,
    /// its predicted times (if any), and the measured total of `bd`.
    pub fn record(&mut self, plan: &MttkrpPlan, bd: &Breakdown) {
        self.push_record(plan, bd.total, None);
    }

    /// Record a sweep configuration where **both** algorithms were
    /// timed: `measured` is the plan's own algorithm, `measured_other`
    /// the alternative. This is what enables [`ChoiceLog::agreement`].
    pub fn record_sweep(&mut self, plan: &MttkrpPlan, measured: f64, measured_other: f64) {
        self.push_record(plan, measured, Some(measured_other));
    }

    fn push_record(&mut self, plan: &MttkrpPlan, measured: f64, measured_other: Option<f64>) {
        self.push(ChoiceRecord {
            dims: plan.dims().to_vec(),
            rank: plan.rank(),
            mode: plan.mode(),
            threads: plan.threads(),
            algo: plan.algo(),
            predicted: plan.predicted_times(),
            measured,
            measured_other,
        });
    }

    /// Append an externally-built record (callers that measured a run
    /// without an `MttkrpPlan` in hand — the tune perf-report bridge
    /// reconstructs records from CP-ALS breakdowns this way). Updates
    /// the aggregate counters and the drift window exactly like
    /// [`ChoiceLog::record`].
    pub fn push(&mut self, rec: ChoiceRecord) {
        mttkrp_obs::counter!("core.choice_records").incr();
        if rec.choice_was_fastest() == Some(true) {
            mttkrp_obs::counter!("core.choice_agree").incr();
        }
        if let Some(err) = rec.prediction_error() {
            if self.window.len() == DRIFT_WINDOW {
                self.window.pop_front();
            }
            self.window.push_back(err);
            let now = self.window.len() >= DRIFT_MIN_SAMPLES
                && self.window_error().is_some_and(|w| {
                    w > DRIFT_FACTOR * self.baseline_error.unwrap_or(DEFAULT_BASELINE_ERROR)
                });
            if now && !self.drifted_now {
                mttkrp_obs::counter!("core.model_drift").incr();
            }
            self.drifted_now = now;
        }
        self.records.push(rec);
    }

    /// Set the calibration-time mean prediction error the drift
    /// threshold is relative to (a loaded profile's `calib_err`).
    /// Without it, [`DEFAULT_BASELINE_ERROR`] applies. Set this before
    /// recording — the window is judged at push time.
    pub fn set_baseline_error(&mut self, err: f64) {
        if err.is_finite() && err > 0.0 {
            self.baseline_error = Some(err);
        }
    }

    /// The configured baseline error, if any.
    pub fn baseline_error(&self) -> Option<f64> {
        self.baseline_error
    }

    /// Mean relative prediction error over the sliding window (at most
    /// the last [`DRIFT_WINDOW`] predicted records); `None` while no
    /// predicted record has been pushed.
    pub fn window_error(&self) -> Option<f64> {
        if self.window.is_empty() {
            return None;
        }
        Some(self.window.iter().sum::<f64>() / self.window.len() as f64)
    }

    /// Whether the log is currently in the drifted state.
    pub fn drifted(&self) -> bool {
        self.drifted_now
    }

    /// The "recalibrate" advisory when drifted, `None` otherwise.
    pub fn drift_advisory(&self) -> Option<String> {
        if !self.drifted_now {
            return None;
        }
        let w = self.window_error()?;
        let base = self.baseline_error.unwrap_or(DEFAULT_BASELINE_ERROR);
        Some(format!(
            "recalibrate: model drift detected — windowed prediction error {:.0}% exceeds \
             {DRIFT_FACTOR}x the calibration baseline {:.0}% (rerun `tensorcp tune`)",
            w * 100.0,
            base * 100.0
        ))
    }

    /// All recorded executions, in insertion order.
    pub fn records(&self) -> &[ChoiceRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Fraction of two-sided records ([`ChoiceLog::record_sweep`])
    /// whose choice was empirically fastest — `None` if no record has
    /// the alternative measured.
    pub fn agreement(&self) -> Option<f64> {
        let decided: Vec<bool> = self
            .records
            .iter()
            .filter_map(ChoiceRecord::choice_was_fastest)
            .collect();
        if decided.is_empty() {
            return None;
        }
        Some(decided.iter().filter(|&&b| b).count() as f64 / decided.len() as f64)
    }

    /// Arithmetic mean of the relative prediction errors over
    /// predicted records — `None` when no record carries a prediction.
    pub fn mean_prediction_error(&self) -> Option<f64> {
        let errs: Vec<f64> = self
            .records
            .iter()
            .filter_map(ChoiceRecord::prediction_error)
            .collect();
        if errs.is_empty() {
            return None;
        }
        Some(errs.iter().sum::<f64>() / errs.len() as f64)
    }

    /// One summary line per record plus an aggregate footer — what the
    /// harness prints after an accuracy sweep.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for r in &self.records {
            let dims = r
                .dims
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("x");
            let _ = write!(
                s,
                "choice,{dims},n={},c={},t={},{:?},measured={:.3e}",
                r.mode, r.rank, r.threads, r.algo, r.measured
            );
            if let Some(p) = r.predicted_for_run() {
                let _ = write!(s, ",predicted={p:.3e}");
            }
            if let Some(best) = r.choice_was_fastest() {
                let _ = write!(s, ",fastest={}", if best { "yes" } else { "NO" });
            }
            s.push('\n');
        }
        if let Some(a) = self.agreement() {
            let _ = writeln!(s, "choice-agreement,{:.1}%", a * 100.0);
        }
        if let Some(e) = self.mean_prediction_error() {
            let _ = writeln!(s, "mean-prediction-error,{:.1}%", e * 100.0);
        }
        if let Some(a) = self.drift_advisory() {
            let _ = writeln!(s, "advisory,{a}");
        }
        s
    }

    /// Self-describing JSON dump of the whole log
    /// (`mttkrp-choices-v1`) — what `mttkrp-harness --choices-out`
    /// writes after an accuracy sweep.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;

        fn opt(v: Option<f64>) -> String {
            match v {
                Some(v) if v.is_finite() => format!("{v:e}"),
                _ => "null".to_string(),
            }
        }

        let mut s = String::from("{\n  \"schema\": \"mttkrp-choices-v1\",\n");
        let _ = writeln!(s, "  \"agreement\": {},", opt(self.agreement()));
        let _ = writeln!(
            s,
            "  \"mean_prediction_error\": {},",
            opt(self.mean_prediction_error())
        );
        let _ = writeln!(s, "  \"baseline_error\": {},", opt(self.baseline_error()));
        let _ = writeln!(s, "  \"window_error\": {},", opt(self.window_error()));
        let _ = writeln!(s, "  \"drift\": {},", self.drifted_now);
        s.push_str("  \"records\": [");
        for (i, r) in self.records.iter().enumerate() {
            let dims = r
                .dims
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            let _ = write!(
                s,
                "\n    {{\"dims\": [{dims}], \"rank\": {}, \"mode\": {}, \"threads\": {}, \
                 \"algo\": \"{:?}\", \"predicted\": ",
                r.rank, r.mode, r.threads, r.algo
            );
            match r.predicted {
                Some(p) => {
                    let _ = write!(
                        s,
                        "{{\"one_step\": {}, \"two_step\": {}, \"fused\": {}}}",
                        opt(Some(p.one_step)),
                        opt(Some(p.two_step)),
                        opt(p.fused)
                    );
                }
                None => s.push_str("null"),
            }
            let _ = write!(
                s,
                ", \"measured\": {}, \"measured_other\": {}, \"fastest\": {}}}{}",
                opt(Some(r.measured)),
                opt(r.measured_other),
                match r.choice_was_fastest() {
                    Some(b) => b.to_string(),
                    None => "null".to_string(),
                },
                if i + 1 < self.records.len() { "," } else { "" }
            );
        }
        s.push_str("\n  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::AlgoChoice;
    use mttkrp_parallel::ThreadPool;
    use mttkrp_tensor::DenseTensor;

    fn run_once(plan: &mut MttkrpPlan, pool: &ThreadPool) -> Breakdown {
        let dims = plan.dims().to_vec();
        let c = plan.rank();
        let x = DenseTensor::zeros(&dims);
        let factors: Vec<Vec<f64>> = dims.iter().map(|&d| vec![1.0; d * c]).collect();
        let refs: Vec<mttkrp_blas::MatRef> = factors
            .iter()
            .zip(&dims)
            .map(|(f, &d)| mttkrp_blas::MatRef::from_slice(f, d, c, mttkrp_blas::Layout::RowMajor))
            .collect();
        let n = plan.mode();
        let mut out = vec![0.0; dims[n] * c];
        plan.execute_timed(pool, &x, &refs, &mut out)
    }

    #[test]
    fn records_capture_shape_algo_and_prediction() {
        let pool = ThreadPool::new(1);
        let dims = [4usize, 3, 2];
        let mut log = ChoiceLog::new();
        let mut plan = MttkrpPlan::new(
            &pool,
            &dims,
            2,
            1,
            AlgoChoice::Predicted {
                one_step: 2.0,
                two_step: 1.0,
            },
        );
        let bd = run_once(&mut plan, &pool);
        log.record(&plan, &bd);
        assert_eq!(log.len(), 1);
        let r = &log.records()[0];
        assert_eq!(r.dims, vec![4, 3, 2]);
        assert_eq!(r.mode, 1);
        assert!(!r.ran_one_step(), "2-step predicted faster");
        assert_eq!(r.predicted_for_run(), Some(1.0));
        assert!(r.prediction_error().is_some());
        assert!(r.choice_was_fastest().is_none(), "one-sided record");
        assert!(log.agreement().is_none());
    }

    #[test]
    fn sweep_records_drive_agreement() {
        let pool = ThreadPool::new(1);
        let dims = [4usize, 3, 2];
        let mut log = ChoiceLog::new();
        let plan = MttkrpPlan::new(
            &pool,
            &dims,
            2,
            1,
            AlgoChoice::Predicted {
                one_step: 2.0,
                two_step: 1.0,
            },
        );
        // Choice (2-step) measured faster than the alternative: right.
        log.record_sweep(&plan, 1.0e-3, 2.0e-3);
        // Choice measured slower: a misprediction.
        log.record_sweep(&plan, 3.0e-3, 2.0e-3);
        assert_eq!(log.agreement(), Some(0.5));
        let s = log.summary();
        assert!(s.contains("choice-agreement,50.0%"), "summary:\n{s}");
        assert!(s.contains("fastest=NO"), "summary:\n{s}");
    }

    #[test]
    fn to_json_is_self_describing_and_balanced() {
        let pool = ThreadPool::new(1);
        let mut log = ChoiceLog::new();
        let plan = MttkrpPlan::new(
            &pool,
            &[4, 3, 2],
            2,
            1,
            AlgoChoice::Predicted {
                one_step: 2.0,
                two_step: 1.0,
            },
        );
        log.record_sweep(&plan, 1.0e-3, 2.0e-3);
        let mut plain = MttkrpPlan::new(&pool, &[3, 3], 2, 0, AlgoChoice::Heuristic);
        let bd = run_once(&mut plain, &pool);
        log.record(&plain, &bd);
        let s = log.to_json();
        assert!(s.contains("\"schema\": \"mttkrp-choices-v1\""));
        assert!(s.contains("\"agreement\": 1e0"));
        assert!(s.contains("\"dims\": [4, 3, 2]"));
        assert!(s.contains("\"fastest\": true"));
        assert!(s.contains("\"predicted\": null"), "heuristic record:\n{s}");
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn heuristic_plans_record_without_predictions() {
        let pool = ThreadPool::new(1);
        let mut log = ChoiceLog::new();
        let mut plan = MttkrpPlan::new(&pool, &[3, 3], 2, 0, AlgoChoice::Heuristic);
        let bd = run_once(&mut plan, &pool);
        log.record(&plan, &bd);
        assert!(log.records()[0].predicted.is_none());
        assert!(log.records()[0].prediction_error().is_none());
        assert!(log.mean_prediction_error().is_none());
    }

    /// A synthetic record whose prediction error is exactly `err`
    /// (prediction `1+err`, measurement `1`).
    fn rec_with_error(err: f64) -> ChoiceRecord {
        ChoiceRecord {
            dims: vec![4, 3, 2],
            rank: 2,
            mode: 0,
            threads: 1,
            algo: PlannedAlgo::OneStepExternal,
            predicted: Some(ModeCost {
                one_step: 1.0 + err,
                two_step: 9.0,
                fused: None,
            }),
            measured: 1.0,
            measured_other: None,
        }
    }

    #[test]
    fn drift_requires_min_samples_and_sustained_error() {
        let mut log = ChoiceLog::new();
        log.set_baseline_error(0.10); // threshold: windowed mean > 20%
        for _ in 0..DRIFT_MIN_SAMPLES - 1 {
            log.push(rec_with_error(0.50));
            assert!(!log.drifted(), "below the minimum sample count");
        }
        log.push(rec_with_error(0.50));
        assert!(log.drifted(), "4 records at 50% error vs 10% baseline");
        let adv = log.drift_advisory().expect("advisory present when drifted");
        assert!(adv.contains("recalibrate"), "{adv}");
        assert!(
            log.summary().contains("advisory,recalibrate"),
            "{}",
            log.summary()
        );
        assert!(log.to_json().contains("\"drift\": true"));
    }

    #[test]
    fn accurate_predictions_never_drift() {
        let mut log = ChoiceLog::new();
        log.set_baseline_error(0.10);
        for _ in 0..3 * DRIFT_WINDOW {
            log.push(rec_with_error(0.15)); // below 2× baseline
        }
        assert!(!log.drifted());
        assert!(log.drift_advisory().is_none());
        assert!(log.to_json().contains("\"drift\": false"));
    }

    #[test]
    fn drift_window_slides_and_recovers() {
        let mut log = ChoiceLog::new();
        log.set_baseline_error(0.10);
        for _ in 0..DRIFT_WINDOW {
            log.push(rec_with_error(1.0));
        }
        assert!(log.drifted());
        // A full window of accurate predictions flushes the bad ones.
        for _ in 0..DRIFT_WINDOW {
            log.push(rec_with_error(0.05));
        }
        assert!(!log.drifted(), "window slid past the drifted region");
        let w = log.window_error().unwrap();
        assert!((w - 0.05).abs() < 1e-12, "window mean {w}");
    }

    #[test]
    fn default_baseline_applies_when_unset() {
        let mut log = ChoiceLog::new();
        assert!(log.baseline_error().is_none());
        for _ in 0..DRIFT_WINDOW {
            // 2× default (0.25) exactly is not "above"; 0.6 is.
            log.push(rec_with_error(0.6));
        }
        assert!(log.drifted(), "0.6 > 2x the 0.25 default baseline");
        let mut calm = ChoiceLog::new();
        for _ in 0..DRIFT_WINDOW {
            calm.push(rec_with_error(0.4)); // under 2x default
        }
        assert!(!calm.drifted());
    }
}
