//! Per-phase timing breakdown of an MTTKRP call (Figures 6 and 8).

use std::time::Instant;

/// Wall-clock seconds spent in each phase of one MTTKRP invocation.
///
/// The categories match the paper's Figure 6 legend. Phases executed
/// concurrently by several threads (the interleaved KRP/GEMM work of the
/// internal-mode 1-step loop) report the **maximum** per-thread sum,
/// which approximates the phase's wall-clock share.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Breakdown {
    /// Explicit tensor reordering (baseline only).
    pub reorder: f64,
    /// Forming the full KRP (1-step external modes; baseline).
    pub full_krp: f64,
    /// Forming left/right partial KRPs and per-block KRP rows
    /// (1-step internal modes; 2-step lines 2–3).
    pub lr_krp: f64,
    /// Matrix-matrix multiplication time.
    pub dgemm: f64,
    /// Matrix-vector multiplication time (2-step multi-TTV).
    pub dgemv: f64,
    /// Matrix-free fused streaming time (the fused algorithm's single
    /// pass over the tensor entries).
    pub fused: f64,
    /// Final parallel reduction of thread-private outputs.
    pub reduce: f64,
    /// End-to-end wall time of the call.
    pub total: f64,
}

impl Breakdown {
    /// Sum of all categorized phase times (excludes `total`).
    pub fn categorized(&self) -> f64 {
        self.reorder
            + self.full_krp
            + self.lr_krp
            + self.dgemm
            + self.dgemv
            + self.fused
            + self.reduce
    }

    /// Merge per-thread phase sums by taking the max per category —
    /// the wall-clock approximation for concurrently executed phases.
    pub fn max_merge(parts: &[Breakdown]) -> Breakdown {
        let mut out = Breakdown::default();
        for p in parts {
            out.reorder = out.reorder.max(p.reorder);
            out.full_krp = out.full_krp.max(p.full_krp);
            out.lr_krp = out.lr_krp.max(p.lr_krp);
            out.dgemm = out.dgemm.max(p.dgemm);
            out.dgemv = out.dgemv.max(p.dgemv);
            out.fused = out.fused.max(p.fused);
            out.reduce = out.reduce.max(p.reduce);
            out.total = out.total.max(p.total);
        }
        out
    }

    /// Add another breakdown category-wise (accumulating over CP-ALS
    /// iterations or over modes).
    pub fn accumulate(&mut self, other: &Breakdown) {
        self.accumulate_phases(other);
        self.total += other.total;
    }

    /// Add only the categorized phases, leaving `total` untouched.
    ///
    /// Drivers that overlap sub-calls with other work (the out-of-core
    /// engine runs tile MTTKRPs while an I/O thread prefetches the next
    /// tile) sum their sub-call phases but report their *own* wall time
    /// as `total`, so `total < categorized()` measures the overlap won.
    pub fn accumulate_phases(&mut self, other: &Breakdown) {
        self.reorder += other.reorder;
        self.full_krp += other.full_krp;
        self.lr_krp += other.lr_krp;
        self.dgemm += other.dgemm;
        self.dgemv += other.dgemv;
        self.fused += other.fused;
        self.reduce += other.reduce;
    }

    /// Seconds of categorized work hidden behind the driver's wall
    /// time: `max(0, categorized() − total)`. Zero for a plain serial
    /// execution; positive when a driver overlapped sub-call phases
    /// with other work (see [`Breakdown::accumulate_phases`]) or when
    /// concurrently executed phases were max-merged. The same overlap
    /// is visible structurally in the span timeline (`MTTKRP_TRACE`):
    /// compute spans on the main thread run concurrently with
    /// `tile_read` spans on the prefetch thread.
    pub fn overlap(&self) -> f64 {
        (self.categorized() - self.total).max(0.0)
    }
}

/// Time a closure, adding the elapsed seconds to `slot`, and return its
/// value.
#[inline]
pub(crate) fn timed<R>(slot: &mut f64, f: impl FnOnce() -> R) -> R {
    let t0 = Instant::now();
    let r = f();
    *slot += t0.elapsed().as_secs_f64();
    r
}

/// [`timed`] that also emits a detail span (`MTTKRP_TRACE=full`) named
/// `name`, so the phase shows up on the trace timeline as well as in
/// the breakdown slot.
#[inline]
pub(crate) fn timed_traced<R>(name: &'static str, slot: &mut f64, f: impl FnOnce() -> R) -> R {
    let _s = mttkrp_obs::span_full!(name);
    timed(slot, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_accumulates() {
        let mut slot = 0.0;
        let v = timed(&mut slot, || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        assert!(slot >= 0.004, "slot={slot}");
        timed(&mut slot, || {});
        assert!(slot >= 0.004);
    }

    #[test]
    fn max_merge_takes_per_category_max() {
        let a = Breakdown {
            dgemm: 2.0,
            lr_krp: 1.0,
            ..Default::default()
        };
        let b = Breakdown {
            dgemm: 1.0,
            lr_krp: 3.0,
            ..Default::default()
        };
        let m = Breakdown::max_merge(&[a, b]);
        assert_eq!(m.dgemm, 2.0);
        assert_eq!(m.lr_krp, 3.0);
    }

    #[test]
    fn accumulate_sums() {
        let mut a = Breakdown {
            dgemm: 1.0,
            total: 2.0,
            ..Default::default()
        };
        let b = Breakdown {
            dgemm: 0.5,
            total: 1.0,
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.dgemm, 1.5);
        assert_eq!(a.total, 3.0);
        assert_eq!(a.categorized(), 1.5);
    }

    #[test]
    fn overlap_measures_hidden_phase_time() {
        let mut bd = Breakdown {
            total: 1.0,
            ..Default::default()
        };
        assert_eq!(bd.overlap(), 0.0, "serial execution has no overlap");
        bd.accumulate_phases(&Breakdown {
            dgemm: 0.8,
            reduce: 0.4,
            total: 9.0, // sub-call totals are ignored
            ..Default::default()
        });
        assert!((bd.overlap() - 0.2).abs() < 1e-12, "got {}", bd.overlap());
    }

    #[test]
    fn accumulate_phases_leaves_total_alone() {
        let mut a = Breakdown {
            dgemm: 1.0,
            total: 2.0,
            ..Default::default()
        };
        let b = Breakdown {
            dgemm: 0.5,
            reduce: 0.25,
            total: 9.0,
            ..Default::default()
        };
        a.accumulate_phases(&b);
        assert_eq!(a.dgemm, 1.5);
        assert_eq!(a.reduce, 0.25);
        assert_eq!(a.total, 2.0);
    }
}
