//! Process-wide cost-model hook for adaptive plan selection.
//!
//! The machine-model crates sit *above* `mttkrp-core` in the dependency
//! graph (`mttkrp-machine` predicts with core's [`Breakdown`]
//! categories, `mttkrp-tune` calibrates the model's coefficients on the
//! live host), so a plan constructor cannot call them directly. This
//! module inverts the dependency the same way the hardware-kernel
//! dispatch does (`mttkrp_blas::kernels()`): a higher layer installs a
//! cost model **once** per process, and every subsequently built
//! [`crate::MttkrpPlan`] with [`crate::AlgoChoice::Tuned`] consults it
//! to decide between the 1-step and 2-step algorithms for its mode.
//!
//! When no model is installed — no tuning profile was loaded, no
//! machine model registered — [`tuned_cost`] returns `None` and
//! `Tuned` plans fall back to the paper's §5.3.3 heuristic, so the
//! hook is strictly opt-in: behavior without a profile is identical to
//! [`crate::AlgoChoice::Heuristic`].
//!
//! [`Breakdown`]: crate::Breakdown

use std::sync::OnceLock;

/// Predicted seconds for the two dense MTTKRP algorithms on one mode —
/// what an installed cost model returns and what
/// [`crate::AlgoChoice::Predicted`] is built from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeCost {
    /// Predicted seconds for the 1-step algorithm (Algorithm 3).
    pub one_step: f64,
    /// Predicted seconds for the 2-step algorithm (Algorithm 4).
    pub two_step: f64,
    /// Predicted seconds for the matrix-free fused algorithm, when the
    /// model has a calibrated fused term (`None` for profiles recorded
    /// before the fused path existed — plans then choose between
    /// 1-step and 2-step only).
    pub fused: Option<f64>,
}

/// A cost model: `(dims, rank, mode, threads)` to the predicted
/// per-algorithm times, or `None` if the model cannot price the shape.
pub type CostModelFn = dyn Fn(&[usize], usize, usize, usize) -> Option<ModeCost> + Send + Sync;

static COST_MODEL: OnceLock<Box<CostModelFn>> = OnceLock::new();

/// Install the process-wide cost model consulted by
/// [`crate::AlgoChoice::Tuned`] plans built from now on. The first
/// installation wins (like the kernel-tier dispatch); returns `false`
/// if a model was already installed, in which case the existing model
/// stays in effect.
pub fn install_cost_model(model: Box<CostModelFn>) -> bool {
    COST_MODEL.set(model).is_ok()
}

/// Whether a cost model has been installed in this process.
pub fn cost_model_installed() -> bool {
    COST_MODEL.get().is_some()
}

/// Price the mode-`n` MTTKRP of a `dims` tensor at rank `c` on
/// `threads` threads through the installed cost model. `None` when no
/// model is installed (callers fall back to the heuristic).
pub fn tuned_cost(dims: &[usize], c: usize, n: usize, threads: usize) -> Option<ModeCost> {
    COST_MODEL.get().and_then(|m| m(dims, c, n, threads))
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: installation is process-global and `cargo test` shares one
    // process per test binary, so this module only checks the
    // *uninstalled* behavior plus type-level properties. Installation
    // semantics are covered by the single-test integration binaries in
    // the workspace root (`tests/tune_install.rs`,
    // `tests/tune_fallback.rs`).

    #[test]
    fn mode_cost_is_plain_data() {
        let a = ModeCost {
            one_step: 1.0,
            two_step: 2.0,
            fused: None,
        };
        assert_eq!(a, a);
        assert!(format!("{a:?}").contains("one_step"));
    }
}
