//! The 1-step MTTKRP (Algorithms 2 and 3).
//!
//! Sequential (Algorithm 2): form the full KRP with Algorithm 1, then
//! multiply against the zero-copy block structure of `X(n)` — one GEMM
//! for external modes, a block inner product of `IR_n` GEMMs for
//! internal modes. No tensor entry is ever moved.
//!
//! Parallel (Algorithm 3):
//!
//! * **External modes** (`n = 0`, `n = N−1`): the columns of the (single
//!   strided view) matricization are partitioned into `T` contiguous
//!   blocks; each thread forms only its own rows of the KRP with a
//!   seeked [`mttkrp_krp::KrpCursor`] and multiplies into a
//!   thread-private output,
//!   followed by a parallel reduction.
//! * **Internal modes**: the left partial KRP `KL` is precomputed in
//!   parallel; the `IR_n` blocks are dealt block-cyclically to threads,
//!   each of which forms the needed row of the right KRP `KR`, expands
//!   the block's KRP rows as `KR(j,:) ⊙ KL`, and accumulates
//!   `X(n)[j] · K_t` into its private output — again followed by a
//!   parallel reduction.

use mttkrp_blas::{gemm, Layout, MatMut, MatRef, Scalar};
use mttkrp_krp::{krp_reuse, krp_rows};
use mttkrp_parallel::ThreadPool;
use mttkrp_tensor::DenseTensor;

use crate::breakdown::Breakdown;
use crate::plan::{AlgoChoice, MttkrpPlan};
use crate::{krp_inputs, validate_factors};

/// Sequential 1-step MTTKRP (Algorithm 2): explicit full KRP, then one
/// GEMM per contiguous block of `X(n)`.
///
/// Output is row-major `I_n × C`, overwritten.
pub fn mttkrp_1step_seq<S: Scalar>(
    x: &DenseTensor<S>,
    factors: &[MatRef<S>],
    n: usize,
    out: &mut [S],
) {
    let dims = x.dims();
    assert!(dims.len() >= 2, "MTTKRP requires an order >= 2 tensor");
    let c = validate_factors(dims, factors);
    assert!(n < dims.len(), "mode {n} out of range");
    assert_eq!(out.len(), dims[n] * c, "output must be I_n × C");

    let inputs = krp_inputs(factors, n);
    let j_rows = krp_rows(&inputs);
    let mut k = vec![S::ZERO; j_rows * c];
    krp_reuse(&inputs, &mut k);

    let unf = x.unfold(n);
    if let Some(xv) = unf.as_single_view() {
        let kv = MatRef::from_slice(&k, j_rows, c, Layout::RowMajor);
        gemm(
            1.0,
            xv,
            kv,
            0.0,
            MatMut::from_slice(out, dims[n], c, Layout::RowMajor),
        );
        return;
    }
    let il = unf.block_cols();
    for j in 0..unf.num_blocks() {
        let k_block = MatRef::from_slice(&k[j * il * c..(j + 1) * il * c], il, c, Layout::RowMajor);
        let beta = if j == 0 { 0.0 } else { 1.0 };
        gemm(
            1.0,
            unf.block(j),
            k_block,
            beta,
            MatMut::from_slice(out, dims[n], c, Layout::RowMajor),
        );
    }
}

/// Parallel 1-step MTTKRP (Algorithm 3). With a 1-thread pool this is
/// the configuration the paper uses for sequential benchmarks of
/// internal modes (left KRP + per-block KRP rows, less memory than the
/// full KRP of Algorithm 2).
///
/// This is a thin allocating wrapper: it builds a one-shot
/// [`MttkrpPlan`] (forced to the 1-step kernel) and executes it.
/// Iterative callers should hold the plan instead.
pub fn mttkrp_1step<S: Scalar>(
    pool: &ThreadPool,
    x: &DenseTensor<S>,
    factors: &[MatRef<S>],
    n: usize,
    out: &mut [S],
) {
    let _ = mttkrp_1step_impl(pool, x, factors, n, out);
}

/// [`mttkrp_1step`] returning the per-phase time breakdown (Figure 6's
/// `1S` bars).
pub fn mttkrp_1step_timed<S: Scalar>(
    pool: &ThreadPool,
    x: &DenseTensor<S>,
    factors: &[MatRef<S>],
    n: usize,
    out: &mut [S],
) -> Breakdown {
    mttkrp_1step_impl(pool, x, factors, n, out)
}

fn mttkrp_1step_impl<S: Scalar>(
    pool: &ThreadPool,
    x: &DenseTensor<S>,
    factors: &[MatRef<S>],
    n: usize,
    out: &mut [S],
) -> Breakdown {
    let dims = x.dims();
    assert!(dims.len() >= 2, "MTTKRP requires an order >= 2 tensor");
    let c = validate_factors(dims, factors);
    assert!(n < dims.len(), "mode {n} out of range");
    assert_eq!(out.len(), dims[n] * c, "output must be I_n \u{d7} C");
    let mut plan = MttkrpPlan::new(pool, dims, c, n, AlgoChoice::OneStep);
    plan.execute_timed(pool, x, factors, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::mttkrp_oracle;

    fn rand_vec(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 32) as f64) - 0.5
            })
            .collect()
    }

    fn setup(dims: &[usize], c: usize) -> (DenseTensor, Vec<Vec<f64>>) {
        let x = DenseTensor::from_vec(dims, rand_vec(dims.iter().product(), 42));
        let factors: Vec<Vec<f64>> = dims
            .iter()
            .enumerate()
            .map(|(k, &d)| rand_vec(d * c, k as u64 + 1))
            .collect();
        (x, factors)
    }

    fn factor_refs<'a>(factors: &'a [Vec<f64>], dims: &[usize], c: usize) -> Vec<MatRef<'a>> {
        factors
            .iter()
            .zip(dims)
            .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
            .collect()
    }

    fn assert_close(a: &[f64], b: &[f64], tag: &str) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= 1e-9 * (1.0 + y.abs()),
                "{tag} idx {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn sequential_matches_oracle_all_modes_3way() {
        let dims = [5usize, 4, 3];
        let c = 3;
        let (x, factors) = setup(&dims, c);
        let refs = factor_refs(&factors, &dims, c);
        for n in 0..3 {
            let mut want = vec![0.0; dims[n] * c];
            let mut got = vec![0.0; dims[n] * c];
            mttkrp_oracle(&x, &refs, n, &mut want);
            mttkrp_1step_seq(&x, &refs, n, &mut got);
            assert_close(&got, &want, &format!("mode {n}"));
        }
    }

    #[test]
    fn sequential_matches_oracle_higher_orders() {
        for dims in [vec![3usize, 4], vec![2, 3, 2, 3], vec![2, 2, 3, 2, 2]] {
            let c = 2;
            let (x, factors) = setup(&dims, c);
            let refs = factor_refs(&factors, &dims, c);
            for n in 0..dims.len() {
                let mut want = vec![0.0; dims[n] * c];
                let mut got = vec![0.0; dims[n] * c];
                mttkrp_oracle(&x, &refs, n, &mut want);
                mttkrp_1step_seq(&x, &refs, n, &mut got);
                assert_close(&got, &want, &format!("dims {dims:?} mode {n}"));
            }
        }
    }

    #[test]
    fn parallel_matches_oracle_many_thread_counts() {
        let dims = [4usize, 3, 3, 2];
        let c = 3;
        let (x, factors) = setup(&dims, c);
        let refs = factor_refs(&factors, &dims, c);
        for t in [1usize, 2, 5, 13] {
            let pool = ThreadPool::new(t);
            for n in 0..dims.len() {
                let mut want = vec![0.0; dims[n] * c];
                let mut got = vec![0.0; dims[n] * c];
                mttkrp_oracle(&x, &refs, n, &mut want);
                mttkrp_1step(&pool, &x, &refs, n, &mut got);
                assert_close(&got, &want, &format!("t={t} mode {n}"));
            }
        }
    }

    #[test]
    fn parallel_overwrites_stale_output() {
        let dims = [3usize, 3, 3];
        let c = 2;
        let (x, factors) = setup(&dims, c);
        let refs = factor_refs(&factors, &dims, c);
        let pool = ThreadPool::new(2);
        let mut want = vec![0.0; 3 * c];
        mttkrp_oracle(&x, &refs, 1, &mut want);
        let mut got = vec![f64::NAN; 3 * c];
        mttkrp_1step(&pool, &x, &refs, 1, &mut got);
        assert_close(&got, &want, "stale output");
    }

    #[test]
    fn timed_breakdown_is_consistent() {
        let dims = [8usize, 8, 8];
        let c = 4;
        let (x, factors) = setup(&dims, c);
        let refs = factor_refs(&factors, &dims, c);
        let pool = ThreadPool::new(2);
        for n in 0..3 {
            let mut out = vec![0.0; dims[n] * c];
            let bd = mttkrp_1step_timed(&pool, &x, &refs, n, &mut out);
            assert!(bd.total > 0.0);
            assert!(bd.categorized() > 0.0);
            assert_eq!(bd.reorder, 0.0, "1-step never reorders");
            assert_eq!(bd.dgemv, 0.0, "1-step has no GEMV phase");
            if n == 0 || n == 2 {
                assert_eq!(bd.lr_krp, 0.0, "external modes use the full KRP");
                assert!(bd.full_krp > 0.0);
            } else {
                assert_eq!(bd.full_krp, 0.0, "internal modes never form the full KRP");
                assert!(bd.lr_krp > 0.0);
            }
        }
    }

    #[test]
    fn two_way_tensor_both_modes() {
        let dims = [6usize, 5];
        let c = 4;
        let (x, factors) = setup(&dims, c);
        let refs = factor_refs(&factors, &dims, c);
        let pool = ThreadPool::new(3);
        for n in 0..2 {
            let mut want = vec![0.0; dims[n] * c];
            let mut got = vec![0.0; dims[n] * c];
            mttkrp_oracle(&x, &refs, n, &mut want);
            mttkrp_1step(&pool, &x, &refs, n, &mut got);
            assert_close(&got, &want, &format!("2-way mode {n}"));
        }
    }

    #[test]
    fn rank_one_factors_give_weighted_fiber_sums() {
        // With all-ones factors (C = 1), MTTKRP reduces to summing X over
        // all modes but n.
        let dims = [3usize, 2, 2];
        let x = DenseTensor::from_vec(&dims, (0..12).map(|i| i as f64).collect());
        let ones: Vec<Vec<f64>> = dims.iter().map(|&d| vec![1.0; d]).collect();
        let refs: Vec<MatRef> = ones
            .iter()
            .zip(&dims)
            .map(|(f, &d)| MatRef::from_slice(f, d, 1, Layout::RowMajor))
            .collect();
        let pool = ThreadPool::new(2);
        let mut got = vec![0.0; 3];
        mttkrp_1step(&pool, &x, &refs, 0, &mut got);
        // Sum over j,k of X(i,j,k): entries i, i+3, i+6, i+9.
        for i in 0..3 {
            let want: f64 = (0..4).map(|b| (i + 3 * b) as f64).sum();
            assert!((got[i] - want).abs() < 1e-12);
        }
    }
}
