//! Randomized-property tests for the Khatri-Rao kernels: random input
//! counts, shapes, and column counts; cursor seek consistency; parallel
//! partitioning across arbitrary thread counts. Cases come from a
//! fixed-seed [`mttkrp_rng::Rng64`] stream.

use mttkrp_blas::{Layout, MatRef};
use mttkrp_krp::{
    krp_colwise, krp_naive, krp_reuse, krp_rows, par_krp, par_krp_naive, KrpCursor, KrpState,
};
use mttkrp_parallel::ThreadPool;
use mttkrp_rng::Rng64;

struct Inputs {
    shapes: Vec<usize>,
    c: usize,
    datas: Vec<Vec<f64>>,
}

fn rand_inputs(rng: &mut Rng64) -> Inputs {
    let z = rng.usize_in(1, 6);
    let shapes: Vec<usize> = (0..z).map(|_| rng.usize_in(1, 6)).collect();
    let c = rng.usize_in(1, 7);
    let datas = shapes
        .iter()
        .map(|&r| (0..r * c).map(|_| rng.next_f64() - 0.5).collect())
        .collect();
    Inputs { shapes, c, datas }
}

fn refs<'a>(inp: &'a Inputs) -> Vec<MatRef<'a>> {
    inp.datas
        .iter()
        .zip(&inp.shapes)
        .map(|(d, &r)| MatRef::from_slice(d, r, inp.c, Layout::RowMajor))
        .collect()
}

#[test]
fn all_variants_agree() {
    let mut rng = Rng64::seed_from_u64(0x6B29_0001);
    for case in 0..96 {
        let inp = rand_inputs(&mut rng);
        let inputs = refs(&inp);
        let j = krp_rows(&inputs);
        let mut reuse = vec![0.0; j * inp.c];
        let mut naive = vec![0.0; j * inp.c];
        let mut colwise = vec![0.0; j * inp.c];
        krp_reuse(&inputs, &mut reuse);
        krp_naive(&inputs, &mut naive);
        krp_colwise(&inputs, &mut colwise);
        assert_eq!(reuse, naive, "case {case}: shapes {:?}", inp.shapes);
        for (a, b) in reuse.iter().zip(&colwise) {
            assert!((a - b).abs() < 1e-12, "case {case}");
        }
    }
}

#[test]
fn parallel_matches_sequential() {
    let mut rng = Rng64::seed_from_u64(0x6B29_0002);
    for case in 0..48 {
        let inp = rand_inputs(&mut rng);
        let t = rng.usize_in(1, 8);
        let inputs = refs(&inp);
        let j = krp_rows(&inputs);
        let mut reference = vec![0.0; j * inp.c];
        krp_reuse(&inputs, &mut reference);
        let pool = ThreadPool::new(t);
        let mut par = vec![0.0; j * inp.c];
        par_krp(&pool, &inputs, &mut par);
        assert_eq!(par, reference, "case {case}: t={t}");
        let mut parn = vec![0.0; j * inp.c];
        par_krp_naive(&pool, &inputs, &mut parn);
        assert_eq!(parn, reference, "case {case}: naive t={t}");
    }
}

#[test]
fn cursor_seek_is_consistent() {
    let mut rng = Rng64::seed_from_u64(0x6B29_0003);
    for case in 0..96 {
        let inp = rand_inputs(&mut rng);
        let inputs = refs(&inp);
        let j = krp_rows(&inputs);
        let mut full = vec![0.0; j * inp.c];
        krp_reuse(&inputs, &mut full);
        let start = rng.usize_below(j);
        let mut cur = KrpCursor::new(&inputs);
        cur.seek(start);
        let mut row = vec![0.0; inp.c];
        for jj in start..j {
            cur.write_next(&mut row);
            assert_eq!(
                &row[..],
                &full[jj * inp.c..(jj + 1) * inp.c],
                "case {case} row {jj}"
            );
        }
        assert_eq!(cur.remaining(), 0);
    }
}

#[test]
fn state_cursor_matches_owned_cursor() {
    // The allocation-free KrpState stream must emit exactly the rows of
    // the owning KrpCursor, including when one state is reused across
    // different input sets and orders.
    let mut rng = Rng64::seed_from_u64(0x6B29_0004);
    let mut state = KrpState::new();
    for case in 0..96 {
        let inp = rand_inputs(&mut rng);
        let inputs = refs(&inp);
        let j = krp_rows(&inputs);
        let mut full = vec![0.0; j * inp.c];
        krp_reuse(&inputs, &mut full);

        // Identity order over the already-ordered inputs.
        let order: Vec<usize> = (0..inputs.len()).collect();
        let start = rng.usize_below(j);
        let mut stream = state.cursor(&inputs, &order);
        stream.seek(start);
        let mut row = vec![0.0; inp.c];
        for jj in start..j {
            stream.write_next(&mut row);
            assert_eq!(
                &row[..],
                &full[jj * inp.c..(jj + 1) * inp.c],
                "case {case} row {jj}"
            );
        }

        // A random permutation order must equal a cursor over the
        // permuted input list.
        let mut order: Vec<usize> = (0..inputs.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.usize_below(i + 1));
        }
        let permuted: Vec<MatRef> = order.iter().map(|&i| inputs[i]).collect();
        let jp = krp_rows(&permuted);
        let mut want = vec![0.0; jp * inp.c];
        krp_reuse(&permuted, &mut want);
        let mut stream = state.cursor(&inputs, &order);
        for jj in 0..jp {
            stream.write_next(&mut row);
            assert_eq!(
                &row[..],
                &want[jj * inp.c..(jj + 1) * inp.c],
                "case {case} perm row {jj}"
            );
        }
    }
}

#[test]
fn krp_norm_is_product_of_column_norms() {
    let mut rng = Rng64::seed_from_u64(0x6B29_0005);
    for case in 0..64 {
        // ‖K(:,c)‖² = ‖A(:,c)‖²·‖B(:,c)‖² for K = A ⊙ B (Kronecker of
        // columns).
        let rows_a = rng.usize_in(1, 6);
        let rows_b = rng.usize_in(1, 6);
        let c = rng.usize_in(1, 4);
        let a: Vec<f64> = (0..rows_a * c).map(|_| rng.next_f64() - 0.5).collect();
        let b: Vec<f64> = (0..rows_b * c).map(|_| rng.next_f64() - 0.5).collect();
        let inputs = [
            MatRef::from_slice(&a, rows_a, c, Layout::RowMajor),
            MatRef::from_slice(&b, rows_b, c, Layout::RowMajor),
        ];
        let j = rows_a * rows_b;
        let mut k = vec![0.0; j * c];
        krp_reuse(&inputs, &mut k);
        for col in 0..c {
            let nk: f64 = (0..j).map(|r| k[r * c + col].powi(2)).sum();
            let na: f64 = (0..rows_a).map(|r| a[r * c + col].powi(2)).sum();
            let nb: f64 = (0..rows_b).map(|r| b[r * c + col].powi(2)).sum();
            assert!(
                (nk - na * nb).abs() < 1e-10 * (1.0 + na * nb),
                "case {case} col {col}"
            );
        }
    }
}
