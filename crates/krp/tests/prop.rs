//! Property tests for the Khatri-Rao kernels: random input counts,
//! shapes, and column counts; cursor seek consistency; parallel
//! partitioning across arbitrary thread counts.

use mttkrp_blas::{Layout, MatRef};
use mttkrp_krp::{
    krp_colwise, krp_naive, krp_reuse, krp_rows, par_krp, par_krp_naive, KrpCursor,
};
use mttkrp_parallel::ThreadPool;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Inputs {
    shapes: Vec<usize>,
    c: usize,
    seed: u64,
}

fn inputs_strategy() -> impl Strategy<Value = Inputs> {
    (proptest::collection::vec(1usize..=5, 1..=5), 1usize..=6, any::<u64>())
        .prop_map(|(shapes, c, seed)| Inputs { shapes, c, seed })
}

fn build(inp: &Inputs) -> Vec<Vec<f64>> {
    let mut st = inp.seed | 1;
    inp.shapes
        .iter()
        .map(|&r| {
            (0..r * inp.c)
                .map(|_| {
                    st = st.wrapping_mul(6364136223846793005).wrapping_add(17);
                    ((st >> 33) as f64 / (1u64 << 32) as f64) - 0.5
                })
                .collect()
        })
        .collect()
}

fn refs<'a>(datas: &'a [Vec<f64>], shapes: &[usize], c: usize) -> Vec<MatRef<'a>> {
    datas
        .iter()
        .zip(shapes)
        .map(|(d, &r)| MatRef::from_slice(d, r, c, Layout::RowMajor))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn all_variants_agree(inp in inputs_strategy()) {
        let datas = build(&inp);
        let inputs = refs(&datas, &inp.shapes, inp.c);
        let j = krp_rows(&inputs);
        let mut reuse = vec![0.0; j * inp.c];
        let mut naive = vec![0.0; j * inp.c];
        let mut colwise = vec![0.0; j * inp.c];
        krp_reuse(&inputs, &mut reuse);
        krp_naive(&inputs, &mut naive);
        krp_colwise(&inputs, &mut colwise);
        prop_assert_eq!(&reuse, &naive);
        for (a, b) in reuse.iter().zip(&colwise) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_matches_sequential(inp in inputs_strategy(), t in 1usize..8) {
        let datas = build(&inp);
        let inputs = refs(&datas, &inp.shapes, inp.c);
        let j = krp_rows(&inputs);
        let mut reference = vec![0.0; j * inp.c];
        krp_reuse(&inputs, &mut reference);
        let pool = ThreadPool::new(t);
        let mut par = vec![0.0; j * inp.c];
        par_krp(&pool, &inputs, &mut par);
        prop_assert_eq!(&par, &reference);
        let mut parn = vec![0.0; j * inp.c];
        par_krp_naive(&pool, &inputs, &mut parn);
        prop_assert_eq!(&parn, &reference);
    }

    #[test]
    fn cursor_seek_is_consistent(inp in inputs_strategy(), frac in 0.0f64..1.0) {
        let datas = build(&inp);
        let inputs = refs(&datas, &inp.shapes, inp.c);
        let j = krp_rows(&inputs);
        let mut full = vec![0.0; j * inp.c];
        krp_reuse(&inputs, &mut full);
        let start = ((j - 1) as f64 * frac) as usize;
        let mut cur = KrpCursor::new(&inputs);
        cur.seek(start);
        let mut row = vec![0.0; inp.c];
        for jj in start..j {
            cur.write_next(&mut row);
            prop_assert_eq!(&row[..], &full[jj * inp.c..(jj + 1) * inp.c]);
        }
        prop_assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn krp_norm_is_product_of_column_norms(rows_a in 1usize..6, rows_b in 1usize..6, c in 1usize..4, seed in any::<u64>()) {
        // ‖K(:,c)‖² = ‖A(:,c)‖²·‖B(:,c)‖² for K = A ⊙ B (Kronecker of
        // columns).
        let inp = Inputs { shapes: vec![rows_a, rows_b], c, seed };
        let datas = build(&inp);
        let inputs = refs(&datas, &inp.shapes, c);
        let j = rows_a * rows_b;
        let mut k = vec![0.0; j * c];
        krp_reuse(&inputs, &mut k);
        for col in 0..c {
            let nk: f64 = (0..j).map(|r| k[r * c + col].powi(2)).sum();
            let na: f64 = (0..rows_a).map(|r| datas[0][r * c + col].powi(2)).sum();
            let nb: f64 = (0..rows_b).map(|r| datas[1][r * c + col].powi(2)).sum();
            prop_assert!((nk - na * nb).abs() < 1e-10 * (1.0 + na * nb));
        }
    }
}
