//! Row-wise Khatri-Rao product (KRP) with partial-Hadamard reuse —
//! Algorithm 1 of the paper — plus the naive and column-wise reference
//! implementations it is benchmarked against, and the parallel variant.
//!
//! For inputs `U_0 (J_0×C), …, U_{Z−1} (J_{Z−1}×C)` the KRP
//! `K = U_0 ⊙ ⋯ ⊙ U_{Z−1}` is `(Π J_z) × C`; row `j` of `K` is the
//! Hadamard product of one row from each input, where the multi-index
//! `(ℓ_0, …, ℓ_{Z−1})` decomposes `j` with **the last input varying
//! fastest** (`j = ℓ_{Z−1} + J_{Z−1}·(ℓ_{Z−2} + J_{Z−2}·(…))`).
//!
//! In the MTTKRP for mode `n`, callers pass the factors in descending
//! mode order `U_{N−1}, …, U_{n+1}, U_{n−1}, …, U_0` so that `U_0`
//! varies fastest, matching the column order of the mode-`n`
//! matricization.
//!
//! Algorithm 1 stores the `Z−2` prefix Hadamard products
//! `P_z = U_0(ℓ_0,:) ∗ ⋯ ∗ U_{z+1}(ℓ_{z+1},:)`; because the fastest
//! index changes on every row, the dominant cost is exactly one Hadamard
//! product per output row, and prefixes are recomputed only on carries
//! (one in every `J_{Z−1}` rows). The [`KrpCursor`] exposes this as a
//! seekable row stream, which is what both the parallel KRP and the
//! 1-step MTTKRP's per-thread KRP blocks are built on.
//!
//! # Example
//!
//! ```
//! use mttkrp_blas::{Layout, MatRef};
//! use mttkrp_krp::{krp_reuse, krp_rows};
//!
//! let a = [1.0, 2.0, 3.0, 4.0]; // 2x2 row-major
//! let b = [5.0, 6.0, 7.0, 8.0];
//! let inputs = [
//!     MatRef::from_slice(&a, 2, 2, Layout::RowMajor),
//!     MatRef::from_slice(&b, 2, 2, Layout::RowMajor),
//! ];
//! let mut k = vec![0.0; krp_rows(&inputs) * 2];
//! krp_reuse(&inputs, &mut k);
//! // Row 1 = A(0,:) ∗ B(1,:) (last input varies fastest).
//! assert_eq!(&k[2..4], &[1.0 * 7.0, 2.0 * 8.0]);
//! ```

use mttkrp_blas::{kernels, KernelSet, MatRef, Scalar};
use mttkrp_parallel::ThreadPool;

/// The Hadamard kernel signature cached inside the row streams: the
/// dispatched SIMD tier is resolved once per cursor/stream, so the
/// one-Hadamard-per-row hot loop of Algorithm 1 pays no per-row
/// dispatch lookup.
type HadamardFn<S> = fn(&[S], &[S], &mut [S]);

/// Total number of rows of the KRP of `inputs`.
pub fn krp_rows<S: Scalar>(inputs: &[MatRef<S>]) -> usize {
    inputs.iter().map(|u| u.nrows()).product()
}

/// Common column count of the inputs.
///
/// # Panics
/// Panics if the inputs disagree on column count or the list is empty.
pub fn krp_cols<S: Scalar>(inputs: &[MatRef<S>]) -> usize {
    assert!(!inputs.is_empty(), "KRP of zero matrices is undefined");
    let c = inputs[0].ncols();
    for (z, u) in inputs.iter().enumerate() {
        assert_eq!(u.ncols(), c, "input {z} has mismatched column count");
    }
    c
}

/// A seekable stream over the rows of a Khatri-Rao product, implementing
/// Algorithm 1's reuse of prefix Hadamard products.
///
/// `seek(j)` initializes the multi-index and prefix table for output row
/// `j` (the per-thread initialization of the parallel variant, §4.1.2);
/// `write_next` emits the current row and advances.
pub struct KrpCursor<'a, S: Scalar = f64> {
    inputs: Vec<MatRef<'a, S>>,
    rows: Vec<usize>,
    c: usize,
    /// Multi-index `ℓ`; `ell[Z−1]` varies fastest.
    ell: Vec<usize>,
    /// Prefix Hadamard products: `Z−2` rows of length `C`
    /// (`prefix[z] = U_0(ℓ_0,:) ∗ ⋯ ∗ U_{z+1}(ℓ_{z+1},:)`).
    prefix: Vec<S>,
    remaining: usize,
    /// Dispatched Hadamard kernel, resolved at construction.
    had: HadamardFn<S>,
}

impl<'a, S: Scalar> KrpCursor<'a, S> {
    /// Create a cursor positioned at row 0, dispatching through the
    /// process-wide kernel set.
    ///
    /// # Panics
    /// Panics if inputs are empty, disagree on columns, or any input has
    /// rows that are not contiguous (`col_stride != 1`), since rows are
    /// consumed as slices.
    pub fn new(inputs: &[MatRef<'a, S>]) -> Self {
        Self::new_with(inputs, kernels::<S>())
    }

    /// [`KrpCursor::new`] against an explicit [`KernelSet`] (e.g. a
    /// plan's pinned tier).
    pub fn new_with(inputs: &[MatRef<'a, S>], ks: &KernelSet<S>) -> Self {
        let c = krp_cols(inputs);
        for (z, u) in inputs.iter().enumerate() {
            assert_eq!(u.col_stride(), 1, "KRP input {z} must have contiguous rows");
        }
        let rows: Vec<usize> = inputs.iter().map(|u| u.nrows()).collect();
        let z = inputs.len();
        let total: usize = rows.iter().product();
        let mut cur = KrpCursor {
            inputs: inputs.to_vec(),
            rows,
            c,
            ell: vec![0; z],
            prefix: vec![S::ZERO; z.saturating_sub(2) * c],
            remaining: total,
            had: ks.hadamard,
        };
        cur.rebuild_prefixes(0);
        cur
    }

    /// Number of rows not yet emitted.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Column count `C`.
    #[inline]
    pub fn cols(&self) -> usize {
        self.c
    }

    /// Position the cursor at absolute output row `j`, rebuilding the
    /// multi-index and every prefix product (Algorithm 1's per-thread
    /// initialization).
    pub fn seek(&mut self, j: usize) {
        let total: usize = self.rows.iter().product();
        assert!(j <= total, "seek past end of KRP");
        let mut rem = j;
        for z in (0..self.rows.len()).rev() {
            self.ell[z] = rem % self.rows[z];
            rem /= self.rows[z];
        }
        self.remaining = total - j;
        self.rebuild_prefixes(0);
    }

    /// Recompute prefix products `prefix[from..]` from the current
    /// multi-index.
    fn rebuild_prefixes(&mut self, from: usize) {
        let z = self.inputs.len();
        if z < 3 {
            return;
        }
        let c = self.c;
        for k in from..z - 2 {
            let right = self.inputs[k + 1].row_slice(self.ell[k + 1]);
            if k == 0 {
                let left = self.inputs[0].row_slice(self.ell[0]);
                let dst = &mut self.prefix[..c];
                (self.had)(left, right, dst);
            } else {
                let (done, rest) = self.prefix.split_at_mut(k * c);
                let left = &done[(k - 1) * c..];
                (self.had)(left, right, &mut rest[..c]);
            }
        }
    }

    /// Write the current row into `out` and advance the cursor.
    ///
    /// # Panics
    /// Panics if the cursor is exhausted or `out.len() != C`.
    pub fn write_next(&mut self, out: &mut [S]) {
        assert!(self.remaining > 0, "KRP cursor exhausted");
        assert_eq!(out.len(), self.c, "output row must have length C");
        let z = self.inputs.len();
        let last = self.inputs[z - 1].row_slice(self.ell[z - 1]);
        match z {
            1 => out.copy_from_slice(last),
            2 => (self.had)(self.inputs[0].row_slice(self.ell[0]), last, out),
            _ => (self.had)(&self.prefix[(z - 3) * self.c..(z - 2) * self.c], last, out),
        }
        self.advance();
    }

    /// Increment the multi-index (last position fastest) and refresh the
    /// prefix products invalidated by the carry, if any.
    fn advance(&mut self) {
        self.remaining -= 1;
        if self.remaining == 0 {
            return;
        }
        let z = self.inputs.len();
        let mut pos = z - 1;
        loop {
            self.ell[pos] += 1;
            if self.ell[pos] < self.rows[pos] {
                break;
            }
            self.ell[pos] = 0;
            debug_assert!(pos > 0, "advance past end contradicts remaining > 0");
            pos -= 1;
        }
        // prefix[k] depends on ℓ_0..ℓ_{k+1}; a change at `pos < Z−1`
        // invalidates prefixes k >= pos−1.
        if pos < z - 1 {
            self.rebuild_prefixes(pos.saturating_sub(1));
        }
    }
}

/// Reusable, allocation-free backing storage for a KRP row stream.
///
/// [`KrpCursor`] owns its multi-index and prefix table, which costs a
/// handful of heap allocations per cursor — fine for one-shot calls,
/// but the plan-based MTTKRP executors stream KRP rows on every
/// invocation and must not allocate in steady state. A `KrpState` holds
/// those buffers across invocations: [`KrpState::cursor`] borrows them
/// into a [`KrpRowStream`] positioned at row 0, resizing only on the
/// first use of a larger shape (capacity is retained thereafter).
///
/// The input list is addressed *indirectly* through an `order` slice of
/// indices into the caller's factor list, so callers with a precomputed
/// mode order (e.g. `MttkrpPlan`) never build a reordered `Vec<MatRef>`
/// in the hot path.
#[derive(Debug)]
pub struct KrpState<S: Scalar = f64> {
    rows: Vec<usize>,
    ell: Vec<usize>,
    prefix: Vec<S>,
}

impl<S: Scalar> Default for KrpState<S> {
    fn default() -> Self {
        KrpState {
            rows: Vec::new(),
            ell: Vec::new(),
            prefix: Vec::new(),
        }
    }
}

impl<S: Scalar> KrpState<S> {
    /// Empty state; buffers grow on first use and are then retained.
    pub fn new() -> Self {
        KrpState::default()
    }

    /// Borrow a row stream over `factors[order[0]] ⊙ factors[order[1]] ⊙ …`,
    /// positioned at row 0, dispatching through the process-wide
    /// kernel set.
    ///
    /// # Panics
    /// Panics if `order` is empty, indexes out of `factors`, or the
    /// selected inputs disagree on columns / have non-contiguous rows.
    pub fn cursor<'f, 's>(
        &'s mut self,
        factors: &'f [MatRef<'f, S>],
        order: &'s [usize],
    ) -> KrpRowStream<'f, 's, S> {
        self.cursor_with(factors, order, kernels::<S>())
    }

    /// [`KrpState::cursor`] against an explicit [`KernelSet`] — what
    /// the plan executors use so a tier pinned at plan construction
    /// also drives the KRP row products.
    pub fn cursor_with<'f, 's>(
        &'s mut self,
        factors: &'f [MatRef<'f, S>],
        order: &'s [usize],
        ks: &KernelSet<S>,
    ) -> KrpRowStream<'f, 's, S> {
        assert!(!order.is_empty(), "KRP of zero matrices is undefined");
        let c = factors[order[0]].ncols();
        for &i in order {
            let u = &factors[i];
            assert_eq!(u.ncols(), c, "KRP input {i} has mismatched column count");
            assert_eq!(u.col_stride(), 1, "KRP input {i} must have contiguous rows");
        }
        let z = order.len();
        self.rows.clear();
        self.rows.extend(order.iter().map(|&i| factors[i].nrows()));
        self.ell.clear();
        self.ell.resize(z, 0);
        self.prefix.clear();
        self.prefix.resize(z.saturating_sub(2) * c, S::ZERO);
        let total: usize = self.rows.iter().product();
        let mut stream = KrpRowStream {
            factors,
            order,
            c,
            st: self,
            remaining: total,
            had: ks.hadamard,
        };
        stream.rebuild_prefixes(0);
        stream
    }
}

/// A borrowed KRP row stream over externally owned state — the
/// allocation-free counterpart of [`KrpCursor`] (same Algorithm 1
/// prefix reuse, same row order).
pub struct KrpRowStream<'f, 's, S: Scalar = f64> {
    factors: &'f [MatRef<'f, S>],
    order: &'s [usize],
    c: usize,
    st: &'s mut KrpState<S>,
    remaining: usize,
    /// Dispatched Hadamard kernel, resolved at stream creation.
    had: HadamardFn<S>,
}

impl<'f, S: Scalar> KrpRowStream<'f, '_, S> {
    #[inline]
    fn input(&self, z: usize) -> MatRef<'f, S> {
        self.factors[self.order[z]]
    }

    /// Number of rows not yet emitted.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Column count `C`.
    #[inline]
    pub fn cols(&self) -> usize {
        self.c
    }

    /// Position the stream at absolute output row `j` (per-thread
    /// initialization of the parallel variant, §4.1.2).
    pub fn seek(&mut self, j: usize) {
        let total: usize = self.st.rows.iter().product();
        assert!(j <= total, "seek past end of KRP");
        let mut rem = j;
        for z in (0..self.st.rows.len()).rev() {
            self.st.ell[z] = rem % self.st.rows[z];
            rem /= self.st.rows[z];
        }
        self.remaining = total - j;
        self.rebuild_prefixes(0);
    }

    /// Recompute prefix products `prefix[from..]` from the current
    /// multi-index.
    fn rebuild_prefixes(&mut self, from: usize) {
        let z = self.order.len();
        if z < 3 {
            return;
        }
        let c = self.c;
        for k in from..z - 2 {
            let right = self.input(k + 1).row_slice(self.st.ell[k + 1]);
            if k == 0 {
                let left = self.input(0).row_slice(self.st.ell[0]);
                (self.had)(left, right, &mut self.st.prefix[..c]);
            } else {
                let (done, rest) = self.st.prefix.split_at_mut(k * c);
                let left = &done[(k - 1) * c..];
                (self.had)(left, right, &mut rest[..c]);
            }
        }
    }

    /// Write the current row into `out` and advance the stream.
    ///
    /// # Panics
    /// Panics if the stream is exhausted or `out.len() != C`.
    pub fn write_next(&mut self, out: &mut [S]) {
        assert!(self.remaining > 0, "KRP stream exhausted");
        assert_eq!(out.len(), self.c, "output row must have length C");
        let z = self.order.len();
        let last = self.input(z - 1).row_slice(self.st.ell[z - 1]);
        match z {
            1 => out.copy_from_slice(last),
            2 => (self.had)(self.input(0).row_slice(self.st.ell[0]), last, out),
            _ => (self.had)(
                &self.st.prefix[(z - 3) * self.c..(z - 2) * self.c],
                last,
                out,
            ),
        }
        self.advance();
    }

    /// Increment the multi-index (last position fastest) and refresh the
    /// prefix products invalidated by the carry, if any.
    fn advance(&mut self) {
        self.remaining -= 1;
        if self.remaining == 0 {
            return;
        }
        let z = self.order.len();
        let mut pos = z - 1;
        loop {
            self.st.ell[pos] += 1;
            if self.st.ell[pos] < self.st.rows[pos] {
                break;
            }
            self.st.ell[pos] = 0;
            debug_assert!(pos > 0, "advance past end contradicts remaining > 0");
            pos -= 1;
        }
        if pos < z - 1 {
            self.rebuild_prefixes(pos.saturating_sub(1));
        }
    }
}

/// Khatri-Rao product with reuse (Algorithm 1): writes the full
/// `(Π J_z) × C` row-major KRP into `out`.
pub fn krp_reuse<S: Scalar>(inputs: &[MatRef<S>], out: &mut [S]) {
    let c = krp_cols(inputs);
    let j = krp_rows(inputs);
    assert_eq!(out.len(), j * c, "output must be (Π J_z) × C");
    let mut cur = KrpCursor::new(inputs);
    for row in out.chunks_exact_mut(c) {
        cur.write_next(row);
    }
}

/// Naive row-wise KRP: `Z−1` Hadamard products per output row, no reuse
/// (the "Naive" series of Figure 4).
pub fn krp_naive<S: Scalar>(inputs: &[MatRef<S>], out: &mut [S]) {
    let c = krp_cols(inputs);
    let j = krp_rows(inputs);
    assert_eq!(out.len(), j * c, "output must be (Π J_z) × C");
    let z = inputs.len();
    let rows: Vec<usize> = inputs.iter().map(|u| u.nrows()).collect();
    let mut ell = vec![0usize; z];
    for row in out.chunks_exact_mut(c) {
        row.copy_from_slice(inputs[0].row_slice(ell[0]));
        for k in 1..z {
            let src = inputs[k].row_slice(ell[k]);
            for (o, &s) in row.iter_mut().zip(src) {
                *o *= s;
            }
        }
        // Increment, last position fastest.
        for pos in (0..z).rev() {
            ell[pos] += 1;
            if ell[pos] < rows[pos] {
                break;
            }
            ell[pos] = 0;
        }
    }
}

/// Column-wise KRP via the Kronecker definition
/// (`K(:,c) = U_0(:,c) ⊗ ⋯ ⊗ U_{Z−1}(:,c)`), used as a cross-check
/// oracle. Output is row-major.
pub fn krp_colwise<S: Scalar>(inputs: &[MatRef<S>], out: &mut [S]) {
    let c = krp_cols(inputs);
    let j = krp_rows(inputs);
    assert_eq!(out.len(), j * c, "output must be (Π J_z) × C");
    for col in 0..c {
        // Kronecker of column `col` of each input, first input slowest.
        for (row_idx, chunk) in out.chunks_exact_mut(c).enumerate() {
            let mut rem = row_idx;
            let mut v = S::ONE;
            for u in inputs.iter().rev() {
                let r = rem % u.nrows();
                rem /= u.nrows();
                v *= u.get(r, col);
            }
            chunk[col] = v;
        }
    }
}

/// Parallel naive KRP: the Figure 4 "Naive" comparator with the same
/// static row partitioning as [`par_krp`] but no prefix reuse —
/// `Z−1` Hadamard products per output row.
pub fn par_krp_naive<S: Scalar>(pool: &ThreadPool, inputs: &[MatRef<S>], out: &mut [S]) {
    let c = krp_cols(inputs);
    let j = krp_rows(inputs);
    assert_eq!(out.len(), j * c, "output must be (Π J_z) × C");
    if pool.num_threads() == 1 {
        krp_naive(inputs, out);
        return;
    }
    let z = inputs.len();
    let row_counts: Vec<usize> = inputs.iter().map(|u| u.nrows()).collect();
    let mut rows: Vec<&mut [S]> = out.chunks_exact_mut(c).collect();
    let nrows = rows.len();
    pool.parallel_for_blocks(nrows, &mut rows, |_, range, chunk| {
        // Decompose the starting row into the multi-index (last fastest).
        let mut ell = vec![0usize; z];
        let mut rem = range.start;
        for pos in (0..z).rev() {
            ell[pos] = rem % row_counts[pos];
            rem /= row_counts[pos];
        }
        for row in chunk.iter_mut() {
            row.copy_from_slice(inputs[0].row_slice(ell[0]));
            for k in 1..z {
                let src = inputs[k].row_slice(ell[k]);
                for (o, &s) in row.iter_mut().zip(src) {
                    *o *= s;
                }
            }
            for pos in (0..z).rev() {
                ell[pos] += 1;
                if ell[pos] < row_counts[pos] {
                    break;
                }
                ell[pos] = 0;
            }
        }
    });
}

/// Parallel KRP (§4.1.2): output rows are statically partitioned into
/// contiguous blocks; each thread seeks a private [`KrpCursor`] to its
/// starting row and streams its block.
pub fn par_krp<S: Scalar>(pool: &ThreadPool, inputs: &[MatRef<S>], out: &mut [S]) {
    par_krp_with(kernels::<S>(), pool, inputs, out)
}

/// [`par_krp`] against an explicit [`KernelSet`].
pub fn par_krp_with<S: Scalar>(
    ks: &KernelSet<S>,
    pool: &ThreadPool,
    inputs: &[MatRef<S>],
    out: &mut [S],
) {
    let c = krp_cols(inputs);
    let j = krp_rows(inputs);
    assert_eq!(out.len(), j * c, "output must be (Π J_z) × C");
    let _span = mttkrp_obs::span_full!("par_krp", rows = j);
    if pool.num_threads() == 1 {
        let mut cur = KrpCursor::new_with(inputs, ks);
        for row in out.chunks_exact_mut(c) {
            cur.write_next(row);
        }
        return;
    }
    let mut rows: Vec<&mut [S]> = out.chunks_exact_mut(c).collect();
    let nrows = rows.len();
    pool.parallel_for_blocks(nrows, &mut rows, |_, range, chunk| {
        let mut cur = KrpCursor::new_with(inputs, ks);
        cur.seek(range.start);
        for row in chunk.iter_mut() {
            cur.write_next(row);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use mttkrp_blas::Layout;

    fn mat(rows: usize, cols: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        (0..rows * cols)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 32) as f64) - 0.5
            })
            .collect()
    }

    fn check_all_variants(shapes: &[usize], c: usize) {
        let datas: Vec<Vec<f64>> = shapes
            .iter()
            .enumerate()
            .map(|(z, &r)| mat(r, c, z as u64 + 1))
            .collect();
        let inputs: Vec<MatRef> = datas
            .iter()
            .zip(shapes)
            .map(|(d, &r)| MatRef::from_slice(d, r, c, Layout::RowMajor))
            .collect();
        let j: usize = shapes.iter().product();
        let mut reuse = vec![0.0; j * c];
        let mut naive = vec![0.0; j * c];
        let mut colwise = vec![0.0; j * c];
        krp_reuse(&inputs, &mut reuse);
        krp_naive(&inputs, &mut naive);
        krp_colwise(&inputs, &mut colwise);
        assert_eq!(reuse, naive, "reuse vs naive, shapes {shapes:?}");
        for (a, b) in reuse.iter().zip(&colwise) {
            assert!((a - b).abs() < 1e-14, "reuse vs colwise, shapes {shapes:?}");
        }

        let pool = ThreadPool::new(4);
        let mut par = vec![0.0; j * c];
        par_krp(&pool, &inputs, &mut par);
        assert_eq!(par, reuse, "parallel vs reuse, shapes {shapes:?}");

        let mut par_naive = vec![0.0; j * c];
        par_krp_naive(&pool, &inputs, &mut par_naive);
        assert_eq!(
            par_naive, naive,
            "parallel naive vs naive, shapes {shapes:?}"
        );
    }

    #[test]
    fn variants_agree_z2_to_z5() {
        check_all_variants(&[3, 4], 5);
        check_all_variants(&[2, 3, 4], 5);
        check_all_variants(&[3, 2, 2, 3], 4);
        check_all_variants(&[2, 2, 2, 2, 2], 3);
    }

    #[test]
    fn single_input_is_identity() {
        check_all_variants(&[6], 4);
    }

    #[test]
    fn row_ordering_matches_paper_example() {
        // K = A ⊙ B ⊙ C with row j = A(a,:)∗B(b,:)∗C(c,:),
        // j = a·I_B·I_C + b·I_C + c (paper §4.1).
        let (ia, ib, ic, c) = (2usize, 3usize, 2usize, 3usize);
        let a = mat(ia, c, 1);
        let b = mat(ib, c, 2);
        let cc = mat(ic, c, 3);
        let inputs = [
            MatRef::from_slice(&a, ia, c, Layout::RowMajor),
            MatRef::from_slice(&b, ib, c, Layout::RowMajor),
            MatRef::from_slice(&cc, ic, c, Layout::RowMajor),
        ];
        let mut k = vec![0.0; ia * ib * ic * c];
        krp_reuse(&inputs, &mut k);
        for ra in 0..ia {
            for rb in 0..ib {
                for rc in 0..ic {
                    let j = ra * ib * ic + rb * ic + rc;
                    for col in 0..c {
                        let expect = a[ra * c + col] * b[rb * c + col] * cc[rc * c + col];
                        assert!((k[j * c + col] - expect).abs() < 1e-15);
                    }
                }
            }
        }
    }

    #[test]
    fn cursor_seek_matches_streaming() {
        let shapes = [3usize, 4, 2];
        let c = 4;
        let datas: Vec<Vec<f64>> = shapes
            .iter()
            .enumerate()
            .map(|(z, &r)| mat(r, c, z as u64 + 7))
            .collect();
        let inputs: Vec<MatRef> = datas
            .iter()
            .zip(&shapes)
            .map(|(d, &r)| MatRef::from_slice(d, r, c, Layout::RowMajor))
            .collect();
        let j: usize = shapes.iter().product();
        let mut full = vec![0.0; j * c];
        krp_reuse(&inputs, &mut full);

        for start in [0usize, 1, 5, 11, 23] {
            let mut cur = KrpCursor::new(&inputs);
            cur.seek(start);
            assert_eq!(cur.remaining(), j - start);
            let mut row = vec![0.0; c];
            for jj in start..j {
                cur.write_next(&mut row);
                assert_eq!(&row, &full[jj * c..(jj + 1) * c], "start={start} row={jj}");
            }
            assert_eq!(cur.remaining(), 0);
        }
    }

    #[test]
    fn parallel_krp_many_thread_counts() {
        let shapes = [5usize, 3, 4];
        let c = 6;
        let datas: Vec<Vec<f64>> = shapes
            .iter()
            .enumerate()
            .map(|(z, &r)| mat(r, c, z as u64 + 11))
            .collect();
        let inputs: Vec<MatRef> = datas
            .iter()
            .zip(&shapes)
            .map(|(d, &r)| MatRef::from_slice(d, r, c, Layout::RowMajor))
            .collect();
        let j: usize = shapes.iter().product();
        let mut reference = vec![0.0; j * c];
        krp_reuse(&inputs, &mut reference);
        for t in [1usize, 2, 3, 8, 61, 64] {
            let pool = ThreadPool::new(t);
            let mut par = vec![0.0; j * c];
            par_krp(&pool, &inputs, &mut par);
            assert_eq!(par, reference, "t={t}");
        }
    }

    #[test]
    fn krp_of_ones_is_ones() {
        let a = [1.0; 12];
        let inputs = [
            MatRef::from_slice(&a[..6], 2, 3, Layout::RowMajor),
            MatRef::from_slice(&a[..9], 3, 3, Layout::RowMajor),
        ];
        let mut out = vec![0.0; 18];
        krp_reuse(&inputs, &mut out);
        assert!(out.iter().all(|&x| x == 1.0));
    }

    #[test]
    #[should_panic]
    fn exhausted_cursor_panics() {
        let d = mat(2, 2, 1);
        let inputs = [MatRef::from_slice(&d, 2, 2, Layout::RowMajor)];
        let mut cur = KrpCursor::new(&inputs);
        let mut row = vec![0.0; 2];
        cur.write_next(&mut row);
        cur.write_next(&mut row);
        cur.write_next(&mut row);
    }

    #[test]
    #[should_panic]
    fn mismatched_columns_panic() {
        let a = mat(2, 2, 1);
        let b = mat(2, 3, 2);
        let inputs = [
            MatRef::from_slice(&a, 2, 2, Layout::RowMajor),
            MatRef::from_slice(&b, 2, 3, Layout::RowMajor),
        ];
        let mut out = vec![0.0; 4 * 2];
        krp_reuse(&inputs, &mut out);
    }
}
