//! End-to-end tests of the `tensorcp` binary: generate → inspect →
//! decompose → persist, through the real CLI surface.

use std::path::PathBuf;
use std::process::Command;

fn tensorcp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tensorcp"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tensorcp_test_{}_{name}", std::process::id()))
}

#[test]
fn gen_info_decompose_round_trip() {
    let tensor_path = tmp("x.mtkt");
    let model_path = tmp("m.mtkm");

    let out = tensorcp()
        .args([
            "gen", "--dims", "12x10x8", "--rank", "2", "--seed", "3", "--out",
        ])
        .arg(&tensor_path)
        .output()
        .expect("run tensorcp gen");
    assert!(
        out.status.success(),
        "gen failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = tensorcp()
        .args(["info", "--input"])
        .arg(&tensor_path)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("[12, 10, 8]"), "info output: {text}");
    assert!(text.contains("960"), "entry count missing: {text}");
    assert!(
        text.contains("internal"),
        "mode classification missing: {text}"
    );

    let out = tensorcp()
        .args([
            "decompose",
            "--rank",
            "2",
            "--iters",
            "200",
            "--method",
            "als",
            "--input",
        ])
        .arg(&tensor_path)
        .arg("--model-out")
        .arg(&model_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "decompose failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // A rank-2 planted tensor must be fit almost exactly.
    let fit_line = text
        .lines()
        .find(|l| l.starts_with("final fit"))
        .expect("fit line");
    let fit: f64 = fit_line.split(':').nth(1).unwrap().trim().parse().unwrap();
    assert!(fit > 0.99, "fit = {fit}");

    // The stored model must parse back.
    let model = mttkrp_workloads::read_model(&model_path).expect("read model");
    assert_eq!(model.dims, vec![12, 10, 8]);
    assert_eq!(model.rank, 2);
    assert_eq!(model.factors.len(), 3);

    std::fs::remove_file(&tensor_path).ok();
    std::fs::remove_file(&model_path).ok();
}

#[test]
fn profile_reports_all_modes_and_algorithms() {
    let tensor_path = tmp("p.mtkt");
    let out = tensorcp()
        .args(["gen", "--dims", "8x6x7", "--rank", "2", "--out"])
        .arg(&tensor_path)
        .output()
        .unwrap();
    assert!(out.status.success());

    let out = tensorcp()
        .args(["profile", "--rank", "4", "--input"])
        .arg(&tensor_path)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "explicit,0",
        "1step,0",
        "explicit,1",
        "1step,1",
        "2step,1",
        "1step,2",
    ] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
    std::fs::remove_file(&tensor_path).ok();
}

#[test]
fn bad_inputs_fail_cleanly() {
    // Unknown method.
    let tensor_path = tmp("b.mtkt");
    tensorcp()
        .args(["gen", "--dims", "4x4", "--out"])
        .arg(&tensor_path)
        .output()
        .unwrap();
    let out = tensorcp()
        .args(["decompose", "--method", "nonsense", "--input"])
        .arg(&tensor_path)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown method"));

    // Missing file.
    let out = tensorcp()
        .args(["info", "--input", "/nonexistent/x.mtkt"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    // Malformed dims.
    let out = tensorcp()
        .args(["gen", "--dims", "abc", "--out", "/tmp/never.mtkt"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    std::fs::remove_file(&tensor_path).ok();
}

#[test]
fn ooc_gen_info_decompose_round_trip() {
    let store_path = tmp("o.mttb");
    // Generate a tile store under a budget that forces several tiles
    // (12×10×8 = 7.5 KB; 4 KB budget → ≤ 2 KB tiles).
    let out = tensorcp()
        .args([
            "gen", "--dims", "12x10x8", "--rank", "2", "--seed", "3", "--ooc", "--out",
        ])
        .arg(&store_path)
        .env("MTTKRP_OOC_BUDGET", "4096")
        .output()
        .expect("run tensorcp gen --ooc");
    assert!(
        out.status.success(),
        "gen --ooc failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("grid"),
        "tile grid missing from header: {text}"
    );
    assert!(
        text.contains("budget"),
        "budget missing from header: {text}"
    );
    assert!(text.contains("kernel tier"), "tier missing: {text}");

    let out = tensorcp()
        .args(["info", "--input"])
        .arg(&store_path)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("MTTB tile store"), "info output: {text}");
    assert!(text.contains("[12, 10, 8]"), "info output: {text}");

    let out = tensorcp()
        .args([
            "decompose",
            "--rank",
            "2",
            "--iters",
            "400",
            "--ooc",
            "--input",
        ])
        .arg(&store_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "decompose --ooc failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("resident peak"),
        "resident peak missing: {text}"
    );
    let fit_line = text
        .lines()
        .find(|l| l.starts_with("final fit"))
        .expect("fit line");
    let fit: f64 = fit_line.split(':').nth(1).unwrap().trim().parse().unwrap();
    assert!(fit > 0.99, "fit = {fit}");

    // A dense input converts on the fly under --ooc.
    let dense_path = tmp("o.mtkt");
    tensorcp()
        .args([
            "gen", "--dims", "12x10x8", "--rank", "2", "--seed", "3", "--out",
        ])
        .arg(&dense_path)
        .output()
        .unwrap();
    let out = tensorcp()
        .args([
            "decompose",
            "--rank",
            "2",
            "--iters",
            "20",
            "--ooc",
            "--tile",
            "6x5x4",
            "--input",
        ])
        .arg(&dense_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "dense-input --ooc failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("grid [2, 2, 2]"));

    std::fs::remove_file(&store_path).ok();
    std::fs::remove_file(&dense_path).ok();
}

#[test]
fn nn_and_dimtree_methods_run() {
    let tensor_path = tmp("m2.mtkt");
    tensorcp()
        .args(["gen", "--dims", "10x8x6", "--rank", "2", "--out"])
        .arg(&tensor_path)
        .output()
        .unwrap();
    for method in ["nn", "dimtree"] {
        let out = tensorcp()
            .args([
                "decompose",
                "--rank",
                "2",
                "--iters",
                "15",
                "--method",
                method,
                "--input",
            ])
            .arg(&tensor_path)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{method} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(String::from_utf8_lossy(&out.stdout).contains("final fit"));
    }
    std::fs::remove_file(&tensor_path).ok();
}
