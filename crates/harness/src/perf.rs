//! `--perf-report FILE`: roofline attribution of the dense MTTKRP.
//!
//! Runs every mode of the Figure 5/6 3-way tensor with `Tuned` plans
//! under an installed tuning profile (calibrating one on the spot when
//! the process has none), snapshots the `blas.gemm_bytes.<tier>`
//! counters around each mode's timed repetitions, and folds the
//! per-phase breakdowns through the `mttkrp-tune` roofline bridge into
//! a [`PerfReport`]: the utilization table on stdout plus the
//! `mttkrp-perf-v1` JSON envelope written to `FILE`.
//!
//! Percent-of-roof is only meaningful against DRAM roofs when the
//! working set actually streams from DRAM; at `--scale small` a large
//! L3 can hold the tensor and push phases past 100%, which is why the
//! within-roof claim line is informational (`WARN`, never an error) at
//! that scale's sizes.

use mttkrp_blas::{Dtype, Scalar};
use mttkrp_core::{AlgoChoice, Breakdown, MttkrpPlan};
use mttkrp_obs::PerfReport;
use mttkrp_parallel::ThreadPool;
use mttkrp_tune::{calibrate, CalibrateOptions, ModeRun, TuningProfile};

use crate::fig5::{refs, workload, C};
use crate::scale::Scale;
use crate::util::claim;

/// Timed repetitions accumulated per mode (after one warmup run).
const REPS: usize = 3;

/// Sum of the per-tier GEMM byte counters (only one tier records in
/// practice, but summing is robust to a mid-run tier mix).
fn gemm_bytes_total() -> u64 {
    ["scalar", "avx2", "avx512", "neon"]
        .iter()
        .map(|t| {
            mttkrp_obs::registry()
                .counter(&format!("blas.gemm_bytes.{t}"))
                .value()
        })
        .sum()
}

/// The profile attribution prices against: the installed one when the
/// process has it, otherwise calibrate-and-install on the spot.
fn resolve_profile(scale: Scale) -> TuningProfile {
    if let Some(p) = mttkrp_tune::installed_profile() {
        println!("# profile: installed (MTTKRP_TUNE_PROFILE or --tune)");
        return p.clone();
    }
    println!(
        "# profile: none installed; calibrating this host ({})",
        if scale == Scale::Small {
            "quick"
        } else {
            "full"
        }
    );
    let p = calibrate(&CalibrateOptions {
        threads: None,
        quick: scale == Scale::Small,
    });
    mttkrp_tune::install(p.clone());
    p
}

pub fn run(scale: Scale, dtype: Dtype, out_path: &str) {
    match dtype {
        Dtype::F64 => run_at::<f64>(scale, out_path),
        Dtype::F32 => run_at::<f32>(scale, out_path),
    }
}

fn run_at<S: Scalar>(scale: Scale, out_path: &str) {
    println!("## Roofline attribution (C = {C}, dtype = {})", S::DTYPE);
    // The GEMM byte counters only record under the metrics gate.
    mttkrp_obs::set_metrics_enabled(true);
    let profile = resolve_profile(scale);
    let pool = ThreadPool::host();
    let t = pool.num_threads();
    let tier = mttkrp_blas::kernels::<S>().tier();

    let (x, factors, dims) = workload::<S>(3, scale);
    println!(
        "# dims = {dims:?} ({} entries, {} MB), T = {t}, tier = {}, {REPS} reps per mode",
        x.len(),
        (x.len() * std::mem::size_of::<S>()) >> 20,
        tier.name()
    );
    let frefs = refs(&factors, &dims);

    let mut runs = Vec::with_capacity(dims.len());
    for n in 0..dims.len() {
        let mut out = vec![S::ZERO; dims[n] * C];
        let mut plan = MttkrpPlan::<S>::new(&pool, &dims, C, n, AlgoChoice::Tuned);
        // Warm the plan (first touch of workspaces), then accumulate
        // REPS steady-state executions with the byte counter bracketed
        // around them.
        plan.execute(&pool, &x, &frefs, &mut out);
        let bytes_before = gemm_bytes_total();
        let mut bd = Breakdown::default();
        for _ in 0..REPS {
            bd.accumulate(&plan.execute_timed(&pool, &x, &frefs, &mut out));
        }
        let gemm_bytes = (gemm_bytes_total() - bytes_before) as f64;
        runs.push(ModeRun {
            mode: n,
            algo: plan.algo(),
            predicted: plan.predicted_times(),
            runs: REPS,
            breakdown: bd,
            gemm_bytes: (gemm_bytes > 0.0).then_some(gemm_bytes),
        });
    }

    let report =
        mttkrp_tune::perf_report_with(&profile, &dims, C, t, std::mem::size_of::<S>(), tier, &runs);
    print!("{}", report.table());

    check_and_save(&report, scale, out_path);
}

fn check_and_save(report: &PerfReport, scale: Scale, out_path: &str) {
    let worst_pct = report
        .modes()
        .iter()
        .flat_map(|m| m.phases.iter())
        .map(|p| p.pct_of_roof)
        .fold(0.0f64, f64::max);
    let mode0_bw = report
        .modes()
        .first()
        .is_some_and(|m| m.bound == mttkrp_obs::Bound::Bandwidth);
    println!("CHECK perf-mode0-bandwidth-bound: {}", claim(mode0_bw));
    let note = if scale == Scale::Small {
        " (cache residency can exceed DRAM roofs at small scale)"
    } else {
        ""
    };
    println!(
        "CHECK perf-phases-within-roof {worst_pct:.0}% <= 110%: {}{note}",
        claim(worst_pct <= 110.0)
    );

    match report.save(out_path) {
        Ok(()) => println!("# wrote perf report to {out_path} (mttkrp-perf-v1)"),
        Err(e) => {
            eprintln!("cannot write perf report {out_path}: {e}");
            std::process::exit(1);
        }
    }
    println!();
}
