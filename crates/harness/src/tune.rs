//! `--tune`: calibrate (or load) a tuning profile and sweep
//! prediction accuracy.
//!
//! Prints the profile text, then times **both** the 1-step and 2-step
//! algorithm on every internal mode of a shape family and compares
//! three per-mode selection policies against the empirically fastest
//! algorithm:
//!
//! * `heuristic` — the paper's §5.3.3 rule (2-step on internal modes);
//! * `paper-model` — `predicted_choice` on the hardcoded Sandy Bridge
//!   constants (what `Predicted` plans used before calibration);
//! * `tuned` — the calibrated profile's machine.
//!
//! The tuned policy's records also flow through a
//! [`mttkrp_core::ChoiceLog`], so the printed table ends with the
//! log's agreement/misprediction summary and a
//! `CHECK tuned-choice-agreement` line (the subsystem's ≥ 80% bar).

use mttkrp_blas::{Layout, MatRef};
use mttkrp_core::{AlgoChoice, ChoiceLog, MttkrpPlan};
use mttkrp_machine::{predicted_choice, Machine};
use mttkrp_parallel::ThreadPool;
use mttkrp_tune::{calibrate, CalibrateOptions, TuningProfile};
use mttkrp_workloads::{random_factors, random_tensor};

use crate::scale::Scale;
use crate::util::{claim, fmt_s, time_median};

/// Dimension ratios of the sweep's shape families: equal and skewed
/// variants of orders 3–5, chosen so internal modes span both
/// `IL ≫ IR` and `IL ≪ IR` regimes (where 1-step and 2-step trade
/// places).
const SHAPES: &[&[usize]] = &[
    &[1, 1, 1],
    &[8, 1, 1],
    &[1, 1, 8],
    &[1, 1, 1, 1],
    &[6, 1, 1, 6],
    &[1, 6, 6, 1],
    &[1, 1, 1, 1, 1],
    &[4, 1, 1, 1, 4],
];

/// Scale `ratios` to concrete dims with ≈`entries` total entries.
fn scaled_dims(ratios: &[usize], entries: usize) -> Vec<usize> {
    let prod: f64 = ratios.iter().map(|&r| r as f64).product();
    let s = (entries as f64 / prod).powf(1.0 / ratios.len() as f64);
    ratios
        .iter()
        .map(|&r| ((r as f64 * s).round() as usize).max(2))
        .collect()
}

fn one_step_is_faster(c: AlgoChoice) -> bool {
    match c {
        AlgoChoice::Predicted { one_step, two_step } => one_step <= two_step,
        _ => unreachable!("policies produce Predicted choices"),
    }
}

/// Run the calibration + accuracy sweep. `profile_path` loads an
/// existing profile instead of calibrating; `profile_out` persists the
/// profile in use; `choices_out` writes the sweep's [`ChoiceLog`] as
/// JSON (`mttkrp-choices-v1`).
pub fn run(
    scale: Scale,
    profile_path: Option<&str>,
    profile_out: Option<&str>,
    choices_out: Option<&str>,
) {
    println!("## Autotuning: profile + prediction-accuracy sweep");
    let profile = match profile_path {
        Some(p) => match TuningProfile::load(p) {
            Ok(prof) => {
                println!("# loaded profile from {p}");
                prof
            }
            Err(e) => {
                eprintln!("cannot load tuning profile {p}: {e}");
                std::process::exit(1);
            }
        },
        None => {
            println!("# calibrating this host (stream ladder, per-tier GEMM/Hadamard, reduction)");
            calibrate(&CalibrateOptions::default())
        }
    };
    if let Some(out) = profile_out {
        match profile.save(out) {
            Ok(()) => println!("# wrote profile to {out}"),
            Err(e) => {
                eprintln!("cannot write tuning profile {out}: {e}");
                std::process::exit(1);
            }
        }
    }
    print!("{}", profile.to_text());
    println!();

    if !mttkrp_tune::install(profile.clone()) {
        println!("# note: a profile was already installed (MTTKRP_TUNE_PROFILE); sweeping the one passed here");
    }

    let t = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let pool = ThreadPool::new(t);
    let paper = Machine::sandy_bridge_12core();
    let tuned_machine = profile.machine_active();
    let c = 25;
    let entries = scale.synthetic_entries() / 2;

    println!("# per-internal-mode choices vs the empirically fastest algorithm (t = {t}, C = {c})");
    println!("dims,mode,1step_s,2step_s,fastest,heuristic,paper-model,tuned");
    let mut log = ChoiceLog::new();
    if let Some(ce) = profile.calib_err {
        // Drift detection compares sustained prediction error against
        // the calibration-time residual recorded in the profile.
        log.set_baseline_error(ce);
    }
    let (mut heur_ok, mut paper_ok, mut tuned_ok, mut total) = (0usize, 0usize, 0usize, 0usize);
    for ratios in SHAPES {
        let dims = scaled_dims(ratios, entries);
        let x = random_tensor(&dims, 11);
        let factors = random_factors(&dims, c, 23);
        let refs: Vec<MatRef> = factors
            .iter()
            .zip(&dims)
            .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
            .collect();
        for n in 1..dims.len() - 1 {
            let mut out = vec![0.0; dims[n] * c];
            let mut p1 = MttkrpPlan::new(&pool, &dims, c, n, AlgoChoice::OneStep);
            let t1 = time_median(3, || p1.execute(&pool, &x, &refs, &mut out));
            let mut p2 = MttkrpPlan::new(
                &pool,
                &dims,
                c,
                n,
                AlgoChoice::TwoStep(mttkrp_core::TwoStepSide::Auto),
            );
            let t2 = time_median(3, || p2.execute(&pool, &x, &refs, &mut out));
            let fastest_one = t1 <= t2;

            let heur_one = false; // internal modes: the paper rule says 2-step
            let paper_one = one_step_is_faster(predicted_choice(&paper, &dims, n, c, t));
            let tuned_choice = predicted_choice(&tuned_machine, &dims, n, c, t);
            let tuned_one = one_step_is_faster(tuned_choice);
            heur_ok += usize::from(heur_one == fastest_one);
            paper_ok += usize::from(paper_one == fastest_one);
            tuned_ok += usize::from(tuned_one == fastest_one);
            total += 1;

            // Feed the ChoiceLog with the tuned plan's view: what it
            // chose, what it predicted, what both algorithms measured.
            let tuned_plan = MttkrpPlan::new(&pool, &dims, c, n, tuned_choice);
            let (own, other) = if tuned_one { (t1, t2) } else { (t2, t1) };
            log.record_sweep(&tuned_plan, own, other);

            let name = |one: bool| if one { "1step" } else { "2step" };
            println!(
                "{},{n},{},{},{},{},{},{}",
                dims.iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join("x"),
                fmt_s(t1),
                fmt_s(t2),
                name(fastest_one),
                name(heur_one),
                name(paper_one),
                name(tuned_one),
            );
        }
    }
    println!();
    print!("{}", log.summary());
    if let Some(path) = choices_out {
        match std::fs::write(path, log.to_json()) {
            Ok(()) => println!("# wrote choice log to {path}"),
            Err(e) => {
                eprintln!("cannot write choice log {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    let pct = |ok: usize| 100.0 * ok as f64 / total.max(1) as f64;
    println!(
        "agreement,heuristic={:.0}%,paper-model={:.0}%,tuned={:.0}%  ({} internal modes)",
        pct(heur_ok),
        pct(paper_ok),
        pct(tuned_ok),
        total
    );
    let tuned_pct = pct(tuned_ok);
    println!(
        "CHECK tuned-choice-agreement {:.0}% >= 80%: {}",
        tuned_pct,
        claim(tuned_pct >= 80.0)
    );
    println!(
        "CHECK tuned-at-least-matches-heuristic: {}",
        claim(tuned_ok >= heur_ok)
    );
}
