//! Figure 4: Khatri-Rao product — Reuse (Algorithm 1) vs Naive vs the
//! STREAM benchmark, for Z ∈ {2,3,4} inputs and C ∈ {25,50} columns.

use mttkrp_blas::stream::par_stream_scale;
use mttkrp_blas::{Layout, MatRef};
use mttkrp_krp::{par_krp, par_krp_naive};
use mttkrp_machine::{predict_krp, predict_stream, Machine};
use mttkrp_parallel::ThreadPool;
use mttkrp_workloads::{krp_input_rows, random_matrix};

use crate::scale::Scale;
use crate::util::{claim, fmt_s, time_median, MODEL_THREADS};

pub fn run(scale: Scale) {
    println!("## Figure 4: KRP time — Reuse (Alg 1) vs Naive vs STREAM");
    let target = scale.krp_rows();
    let pool = ThreadPool::host();
    // Model/claims use the paper testbed's constants; measurements below
    // are from this host.
    let machine = Machine::sandy_bridge_12core();

    for &c in &[25usize, 50] {
        println!("\n### C = {c}, output rows ≈ {target} (paper: 2e7)");
        println!("series,threads,seconds,source");

        // Measured on this host (at the host's core count and at 1).
        for &z in &[2usize, 3, 4] {
            let rows = krp_input_rows(z, target);
            let j: usize = rows.iter().product();
            let mats: Vec<Vec<f64>> = rows
                .iter()
                .enumerate()
                .map(|(i, &r)| random_matrix(r, c, i as u64 + 1))
                .collect();
            let inputs: Vec<MatRef> = mats
                .iter()
                .zip(&rows)
                .map(|(m, &r)| MatRef::from_slice(m, r, c, Layout::RowMajor))
                .collect();
            let mut out = vec![0.0; j * c];
            let t_reuse = time_median(scale.trials(), || par_krp(&pool, &inputs, &mut out));
            let t_naive = time_median(scale.trials(), || par_krp_naive(&pool, &inputs, &mut out));
            println!(
                "{z}-Reuse,{},{},measured",
                pool.num_threads(),
                fmt_s(t_reuse)
            );
            println!(
                "{z}-Naive,{},{},measured",
                pool.num_threads(),
                fmt_s(t_naive)
            );

            for &t in &MODEL_THREADS {
                println!(
                    "{z}-Reuse,{t},{},model",
                    fmt_s(predict_krp(&machine, j, c, z, true, t))
                );
                println!(
                    "{z}-Naive,{t},{},model",
                    fmt_s(predict_krp(&machine, j, c, z, false, t))
                );
            }
        }

        // STREAM over a matrix the size of the KRP output.
        let j = krp_input_rows(2, target).iter().product::<usize>();
        let src = vec![1.0f64; j * c];
        let mut dst = vec![0.0f64; j * c];
        let t_stream = time_median(scale.trials(), || {
            par_stream_scale(&pool, 1.5, &src, &mut dst)
        });
        println!("STREAM,{},{},measured", pool.num_threads(), fmt_s(t_stream));
        for &t in &MODEL_THREADS {
            println!(
                "STREAM,{t},{},model",
                fmt_s(predict_stream(&machine, j, c, t))
            );
        }

        // Claim checks (§5.2) — evaluated at the paper's J ≈ 2e7 rows so
        // they are independent of the measurement scale.
        let paper_rows = 20_000_000;
        let j3 = krp_input_rows(3, paper_rows).iter().product::<usize>();
        let speedup_z3 =
            predict_krp(&machine, j3, c, 3, false, 1) / predict_krp(&machine, j3, c, 3, true, 1);
        let j4 = krp_input_rows(4, paper_rows).iter().product::<usize>();
        let speedup_z4 =
            predict_krp(&machine, j4, c, 4, false, 1) / predict_krp(&machine, j4, c, 4, true, 1);
        println!(
            "# claim: Reuse over Naive 1.5-2.5x for Z=3,4 -> modeled {speedup_z3:.2}x / {speedup_z4:.2}x [{}]",
            claim((1.2..3.0).contains(&speedup_z3) && (1.2..3.0).contains(&speedup_z4))
        );
        let par_speedup =
            predict_krp(&machine, j3, c, 3, true, 1) / predict_krp(&machine, j3, c, 3, true, 12);
        println!(
            "# claim: parallel KRP speedup 6.6-8.3x @12T -> modeled {par_speedup:.2}x [{}]",
            claim((5.0..9.5).contains(&par_speedup))
        );
        let ratio = predict_krp(&machine, j3, c, 3, true, 12) / predict_stream(&machine, j3, c, 12);
        println!(
            "# claim: Alg 1 competitive with STREAM -> modeled ratio {ratio:.2} [{}]",
            claim((0.4..2.0).contains(&ratio))
        );
    }
    println!();
}
