//! Out-of-core sweep: streaming MTTKRP and CP-ALS on a disk-backed
//! tensor under a memory budget, against the in-core planned kernels
//! on the same data.
//!
//! Prints the tile geometry the budget picked, per-mode streaming vs
//! in-core MTTKRP times with the I/O wait that compute failed to hide
//! (overlap efficiency = 1 − wait/total), a CP-ALS fit-agreement
//! check, and the peak resident tile bytes against the two-tile cap.

use mttkrp_blas::{Layout, MatRef};
use mttkrp_core::{AlgoChoice, MttkrpBackend};
use mttkrp_cpals::{cp_als, CpAlsOptions, KruskalModel, MttkrpStrategy};
use mttkrp_ooc::{
    peak_resident_tile_bytes, reset_peak_resident_tile_bytes, OocTensor, TileStore, TiledLayout,
};
use mttkrp_parallel::ThreadPool;
use mttkrp_tensor::DenseTensor;
use mttkrp_workloads::{equal_dims, random_factors};

use crate::scale::Scale;
use crate::util::{claim, fmt_s, time_median};

pub const C: usize = 25;

/// Total entries of the out-of-core sweep tensor.
fn ooc_entries(scale: Scale) -> usize {
    match scale {
        Scale::Small => 1_000_000,
        Scale::Medium => 8_000_000,
        Scale::Paper => 64_000_000,
    }
}

pub fn run(scale: Scale, budget: Option<usize>, tile: Option<Vec<usize>>) {
    let dims = equal_dims(3, ooc_entries(scale));
    let total: usize = dims.iter().product();
    let tensor_bytes = 8 * total;
    // Default budget: an eighth of the tensor, so streaming is forced.
    let default_budget = (tensor_bytes / 8).max(64 * 1024);
    let budget = budget
        .or_else(mttkrp_ooc::budget_from_env)
        .unwrap_or(default_budget);
    let layout = match &tile {
        Some(t) => TiledLayout::new(&dims, t),
        None => TiledLayout::for_budget(&dims, budget),
    };

    println!("## Out-of-core MTTKRP/CP-ALS under a memory budget (C = {C})");
    println!(
        "# dims = {dims:?} ({} MB on disk); budget = {} KB; tile = {:?}; grid = {:?} ({} tiles, {} KB each)",
        tensor_bytes >> 20,
        budget >> 10,
        layout.tile_dims(),
        layout.grid(),
        layout.ntiles(),
        (8 * layout.max_tile_entries()) >> 10,
    );

    let path = std::env::temp_dir().join(format!("mttkrp_harness_ooc_{}.mttb", std::process::id()));
    let mut k = 33u64;
    let x = DenseTensor::from_fn(&dims, || {
        k = k
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((k >> 40) as f64) * 2e-8 - 0.5
    });
    reset_peak_resident_tile_bytes();
    let store = TileStore::write_dense(&path, &layout, &x).expect("store build");
    let ooc = OocTensor::from_store(store).expect("store open");

    let pool = ThreadPool::host();
    let factors = random_factors(&dims, C, 5);
    let refs: Vec<MatRef> = factors
        .iter()
        .zip(&dims)
        .map(|(f, &d)| MatRef::from_slice(f, d, C, Layout::RowMajor))
        .collect();

    println!("mode,in_core_s,streaming_s,io_wait_s,overlap_efficiency");
    let mut in_core_plans = MttkrpBackend::plan_modes(&x, &pool, C, Some(AlgoChoice::Heuristic));
    let mut ooc_plans = ooc.plan_modes(&pool, C, Some(AlgoChoice::Heuristic));
    let mut stream_total = 0.0;
    let mut wait_total = 0.0;
    for n in 0..dims.len() {
        let mut out = vec![0.0; dims[n] * C];
        let t_in = time_median(scale.trials(), || {
            x.mttkrp_planned(&mut in_core_plans, &pool, &refs, n, &mut out);
        });
        // Collect every trial's io-wait so the reported wait is the
        // median over the same runs as the median time — pairing the
        // last run's wait with the median time can report negative
        // efficiency when one trial hiccups.
        let mut waits = Vec::with_capacity(scale.trials());
        let t_ooc = time_median(scale.trials(), || {
            ooc.mttkrp_planned(&mut ooc_plans, &pool, &refs, n, &mut out);
            waits.push(ooc_plans.last_io_wait());
        });
        waits.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let wait = waits[waits.len() / 2];
        stream_total += t_ooc;
        wait_total += wait;
        println!(
            "{n},{},{},{},{:.3}",
            fmt_s(t_in),
            fmt_s(t_ooc),
            fmt_s(wait),
            1.0 - wait / t_ooc.max(1e-12),
        );
    }
    drop(ooc_plans);

    // CP-ALS agreement on the same disk-backed tensor.
    let rank = 8;
    let opts = CpAlsOptions {
        max_iters: scale.cpals_iters(),
        tol: 0.0,
        strategy: MttkrpStrategy::Auto,
    };
    let init = KruskalModel::random(&dims, rank, 4242);
    let (_, rep_in) = cp_als(&pool, &x, init.clone(), &opts);
    let (_, rep_ooc) = cp_als(&pool, &ooc, init, &opts);
    let fit_gap = (rep_in.final_fit() - rep_ooc.final_fit()).abs();

    let peak = peak_resident_tile_bytes();
    let cap = 2 * 8 * layout.max_tile_entries();
    drop(ooc);
    std::fs::remove_file(&path).ok();

    println!(
        "# resident tile bytes: peak = {} KB, cap (2 tiles) = {} KB",
        peak >> 10,
        cap >> 10
    );
    println!(
        "CHECK[{}] streaming CP-ALS matches in-core fit (gap = {fit_gap:.2e})",
        claim(fit_gap <= 1e-12)
    );
    println!(
        "CHECK[{}] peak resident tile bytes within 2 tiles ({peak} <= {cap})",
        claim(peak <= cap)
    );
    println!(
        "CHECK[{}] compute hid some tile I/O (wait {} of {})",
        claim(wait_total < stream_total),
        fmt_s(wait_total),
        fmt_s(stream_total),
    );
    println!();
}
