//! Figure 7: CP-ALS per-iteration time, our implementation (1-step
//! external / 2-step internal) vs the Tensor-Toolbox-style baseline
//! (explicit matricization MTTKRP), on the 3-way and 4-way fMRI
//! tensors, for ranks C ∈ {10,15,20,25,30}.

use mttkrp_cpals::{cp_als, CpAlsOptions, KruskalModel, MttkrpStrategy};
use mttkrp_machine::{predict_1step, predict_2step, predict_explicit, Machine};
use mttkrp_parallel::ThreadPool;
use mttkrp_tensor::DenseTensor;
use mttkrp_workloads::linearize_symmetric;

use crate::scale::Scale;
use crate::util::{claim, fmt_s};

/// Modeled per-iteration MTTKRP cost of one CP-ALS sweep.
fn model_iter(machine: &Machine, dims: &[usize], c: usize, t: usize, ttb: bool) -> f64 {
    let nmodes = dims.len();
    (0..nmodes)
        .map(|n| {
            if ttb {
                predict_explicit(machine, dims, n, c, t).total
            } else if n == 0 || n == nmodes - 1 {
                predict_1step(machine, dims, n, c, t).total
            } else {
                predict_2step(machine, dims, n, c, t).total
            }
        })
        .sum()
}

fn bench_tensor(label: &str, x: &DenseTensor, scale: Scale, machine: &Machine, pool: &ThreadPool) {
    println!("\n### {label}: dims = {:?} ({} entries)", x.dims(), x.len());
    println!("rank,ours_s,ttb_style_s,speedup,source");
    let iters = scale.cpals_iters();
    for &c in &[10usize, 15, 20, 25, 30] {
        let opts = CpAlsOptions {
            max_iters: iters,
            tol: 0.0,
            strategy: MttkrpStrategy::Auto,
        };
        let init = KruskalModel::random(x.dims(), c, 42);
        let (_, rep_ours) = cp_als(pool, x, init.clone(), &opts);
        let opts_ttb = CpAlsOptions {
            strategy: MttkrpStrategy::Explicit,
            ..opts
        };
        let (_, rep_ttb) = cp_als(pool, x, init, &opts_ttb);
        let (ours, ttb) = (rep_ours.mean_iter_time(), rep_ttb.mean_iter_time());
        println!(
            "{c},{},{},{:.2}x,measured",
            fmt_s(ours),
            fmt_s(ttb),
            ttb / ours
        );

        for &t in &[1usize, 12] {
            let m_ours = model_iter(machine, x.dims(), c, t, false);
            let m_ttb = model_iter(machine, x.dims(), c, t, true);
            println!(
                "{c} (T={t}),{},{},{:.2}x,model",
                fmt_s(m_ours),
                fmt_s(m_ttb),
                m_ttb / m_ours
            );
        }
    }

    // Claims (§5.3.3): up to 2x sequential, 6.7x (3D) / 7.4x (4D)
    // parallel speedup over the Matlab baseline at the largest rank.
    let m1 =
        model_iter(machine, x.dims(), 30, 1, true) / model_iter(machine, x.dims(), 30, 1, false);
    let m12 =
        model_iter(machine, x.dims(), 30, 12, true) / model_iter(machine, x.dims(), 30, 12, false);
    println!(
        "# claim: sequential speedup up to ~2x -> modeled {m1:.2}x [{}]",
        claim(m1 > 1.2 && m1 < 4.0)
    );
    println!(
        "# claim: parallel speedup ~6.7-7.4x (C=30) -> modeled {m12:.2}x [{}]",
        claim(m12 > 3.0)
    );
}

pub fn run(scale: Scale) {
    println!("## Figure 7: CP-ALS per-iteration time (ours vs TTB-style)");
    let pool = ThreadPool::host();
    let machine = Machine::sandy_bridge_12core();
    let cfg = scale.fmri();
    let x4 = cfg.generate_4way();
    let x3 = linearize_symmetric(&x4);
    bench_tensor("4D fMRI", &x4, scale, &machine, &pool);
    bench_tensor(
        "3D fMRI (symmetric linearization)",
        &x3,
        scale,
        &machine,
        &pool,
    );
    println!();
}
