//! Sparse MTTKRP sweep (Figure 5-style): planned CSF MTTKRP time per
//! mode across a density ladder for 3rd- and 4th-order tensors, with
//! the dense planned kernel on the same shape as the crossover
//! reference. Where the sparse time beats the dense time, the CSF path
//! wins despite its irregular access — the expected regime for the low
//! densities real CP workloads live at.

use mttkrp_blas::{Layout, MatRef};
use mttkrp_core::{AlgoChoice, MttkrpPlan};
use mttkrp_parallel::ThreadPool;
use mttkrp_sparse::{CsfTensor, SparseMttkrpPlan};
use mttkrp_tensor::DenseTensor;
use mttkrp_workloads::{equal_dims, random_factors, random_sparse};

use crate::scale::Scale;
use crate::util::{fmt_s, time_median};

pub const C: usize = 25;

/// Densities swept (fraction of stored entries).
const DENSITIES: [f64; 3] = [1e-3, 1e-2, 5e-2];

pub fn run(scale: Scale) {
    println!("## Sparse MTTKRP: planned CSF kernel vs density (C = {C})");
    let pool = ThreadPool::host();

    for nmodes in [3usize, 4] {
        let dims = equal_dims(nmodes, scale.sparse_entries());
        let total: usize = dims.iter().product();
        println!("\n### N = {nmodes}: dims = {dims:?} ({total} dense entries)");
        println!("series,density,nnz,seconds,source");

        let factors = random_factors(&dims, C, nmodes as u64 + 100);
        let refs: Vec<MatRef> = factors
            .iter()
            .zip(&dims)
            .map(|(f, &d)| MatRef::from_slice(f, d, C, Layout::RowMajor))
            .collect();

        for &density in &DENSITIES {
            let nnz_target = ((total as f64 * density) as usize).max(1);
            let coo = random_sparse(&dims, nnz_target, 0xD0 + nmodes as u64);
            let csf = CsfTensor::from_coo(&coo);
            for n in 0..nmodes {
                let mut plan = SparseMttkrpPlan::new(&pool, &csf, C, n);
                let mut out = vec![0.0; dims[n] * C];
                let ts = time_median(scale.trials(), || {
                    plan.execute(&pool, &csf, &refs, &mut out)
                });
                println!("CSF n={n},{density},{},{},measured", csf.nnz(), fmt_s(ts));
            }
        }

        // Dense reference: the planned heuristic kernel on a same-shape
        // dense tensor (density 1, every entry stored).
        let mut k = 77u64;
        let x = DenseTensor::from_fn(&dims, || {
            k = k
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((k >> 40) as f64) * 2e-8 - 0.5
        });
        for n in 0..nmodes {
            let mut plan = MttkrpPlan::new(&pool, &dims, C, n, AlgoChoice::Heuristic);
            let mut out = vec![0.0; dims[n] * C];
            let td = time_median(scale.trials(), || plan.execute(&pool, &x, &refs, &mut out));
            println!("Dense n={n},1,{total},{},measured", fmt_s(td));
        }
    }
    println!();
}
