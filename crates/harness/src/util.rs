//! Small measurement and formatting helpers shared by the figure
//! modules.

use std::time::Instant;

/// Median wall time (seconds) of `trials` runs of `f`.
pub fn time_median(trials: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..trials.max(1))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

/// Thread counts to evaluate the machine model at (the paper's x-axis).
pub const MODEL_THREADS: [usize; 7] = [1, 2, 4, 6, 8, 10, 12];

/// Seconds with 4 significant-ish digits for tables.
pub fn fmt_s(t: f64) -> String {
    if t >= 100.0 {
        format!("{t:.1}")
    } else if t >= 1.0 {
        format!("{t:.3}")
    } else {
        format!("{:.3}ms", t * 1e3)
    }
}

/// `PASS`/`WARN` tag for claim-check summary lines.
pub fn claim(ok: bool) -> &'static str {
    if ok {
        "PASS"
    } else {
        "WARN"
    }
}
