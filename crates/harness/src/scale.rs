//! Experiment sizing. The paper's tensors (≈750M entries, ≈6 GB) do not
//! fit a quick regeneration loop, so the default scale shrinks every
//! workload while preserving its shape family (equal dims, same C, same
//! mode counts). `Paper` restores the published sizes.

use mttkrp_workloads::FmriConfig;

/// Workload scale for the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-per-figure sizes (default): ~4–8M-entry tensors.
    Small,
    /// Tens of seconds per figure: ~32M-entry tensors.
    Medium,
    /// The published sizes (≈750M entries; needs ≈8 GB and hours on one
    /// core).
    Paper,
}

impl Scale {
    /// Total entries of the Figure 5/6 synthetic tensors.
    pub fn synthetic_entries(self) -> usize {
        match self {
            Scale::Small => 4_000_000,
            Scale::Medium => 32_000_000,
            Scale::Paper => 750_000_000,
        }
    }

    /// Dense-equivalent entry count of the sparse MTTKRP sweep tensors
    /// (the density ladder stores a small fraction of these).
    pub fn sparse_entries(self) -> usize {
        match self {
            Scale::Small => 1_000_000,
            Scale::Medium => 8_000_000,
            Scale::Paper => 64_000_000,
        }
    }

    /// Output rows of the Figure 4 KRP experiment (paper: ≈2·10⁷).
    pub fn krp_rows(self) -> usize {
        match self {
            Scale::Small => 400_000,
            Scale::Medium => 2_000_000,
            Scale::Paper => 20_000_000,
        }
    }

    /// fMRI tensor configuration for Figures 7/8.
    pub fn fmri(self) -> FmriConfig {
        match self {
            Scale::Small => FmriConfig::small(),
            Scale::Medium => FmriConfig {
                time: 96,
                subjects: 16,
                regions: 64,
                latent: 8,
                window: 16,
                seed: 0xF0A1,
            },
            Scale::Paper => FmriConfig::paper(),
        }
    }

    /// CP-ALS iterations to time per configuration.
    pub fn cpals_iters(self) -> usize {
        match self {
            Scale::Small => 3,
            Scale::Medium => 3,
            Scale::Paper => 2,
        }
    }

    /// Measurement repetitions (median taken).
    pub fn trials(self) -> usize {
        match self {
            Scale::Small => 3,
            Scale::Medium => 3,
            Scale::Paper => 1,
        }
    }
}
