//! Figure 8: MTTKRP phase breakdowns on the (synthetic) fMRI tensors —
//! unlike Figure 6 the mode dimensions differ wildly (e.g. 59 subjects
//! vs 19900 region pairs), which is where the KRP share of small modes
//! becomes visible.

use mttkrp_blas::{Layout, MatRef};
use mttkrp_core::{mttkrp_explicit_timed, AlgoChoice, Breakdown, MttkrpPlan, TwoStepSide};
use mttkrp_machine::{predict_1step, predict_2step, predict_explicit, Machine};
use mttkrp_parallel::ThreadPool;
use mttkrp_tensor::DenseTensor;
use mttkrp_workloads::{linearize_symmetric, random_factors};

use crate::scale::Scale;
use crate::util::{claim, fmt_s};

const C: usize = 25;

fn print_bd(series: &str, n: usize, t: usize, source: &str, bd: &Breakdown) {
    println!(
        "{series},n={n},T={t},{source},reorder={},full_krp={},lr_krp={},dgemm={},dgemv={},reduce={},total={}",
        fmt_s(bd.reorder),
        fmt_s(bd.full_krp),
        fmt_s(bd.lr_krp),
        fmt_s(bd.dgemm),
        fmt_s(bd.dgemv),
        fmt_s(bd.reduce),
        fmt_s(bd.total),
    );
}

fn bench(label: &str, x: &DenseTensor, machine: &Machine, pool: &ThreadPool) {
    let dims = x.dims().to_vec();
    println!("\n### {label}: dims = {dims:?}");
    let factors = random_factors(&dims, C, 7);
    let frefs: Vec<MatRef> = factors
        .iter()
        .zip(&dims)
        .map(|(f, &d)| MatRef::from_slice(f, d, C, Layout::RowMajor))
        .collect();
    let host_t = pool.num_threads();
    let nmodes = dims.len();

    for n in 0..nmodes {
        let mut out = vec![0.0; dims[n] * C];
        print_bd(
            "B",
            n,
            host_t,
            "measured",
            &mttkrp_explicit_timed(pool, x, &frefs, n, &mut out),
        );
        // Steady state: warm the plan once, report the second run.
        let mut p1 = MttkrpPlan::new(pool, &dims, C, n, AlgoChoice::OneStep);
        p1.execute(pool, x, &frefs, &mut out);
        print_bd(
            "1S",
            n,
            host_t,
            "measured",
            &p1.execute_timed(pool, x, &frefs, &mut out),
        );
        if n > 0 && n < nmodes - 1 {
            let mut p2 = MttkrpPlan::new(pool, &dims, C, n, AlgoChoice::TwoStep(TwoStepSide::Auto));
            p2.execute(pool, x, &frefs, &mut out);
            print_bd(
                "2S",
                n,
                host_t,
                "measured",
                &p2.execute_timed(pool, x, &frefs, &mut out),
            );
        }
        for &t in &[1usize, 12] {
            print_bd(
                "B",
                n,
                t,
                "model",
                &predict_explicit(machine, &dims, n, C, t),
            );
            print_bd("1S", n, t, "model", &predict_1step(machine, &dims, n, C, t));
            if n > 0 && n < nmodes - 1 {
                print_bd("2S", n, t, "model", &predict_2step(machine, &dims, n, C, t));
            }
        }
    }

    // §5.3.3 claim: for the small subject mode (n=1) the parallel
    // proposed algorithms beat the baseline DGEMM ~2.8x (3D) / 3.5x (4D).
    let base12 = predict_explicit(machine, &dims, 1, C, 12).dgemm;
    let ours12 = predict_2step(machine, &dims, 1, C, 12).total;
    println!(
        "# claim: mode n=1 parallel win vs baseline ~2.8-3.5x -> modeled {:.2}x [{}]",
        base12 / ours12,
        claim(base12 / ours12 > 1.5)
    );
}

pub fn run(scale: Scale) {
    println!("## Figure 8: fMRI tensor phase breakdowns (C = {C})");
    let pool = ThreadPool::host();
    let machine = Machine::sandy_bridge_12core();
    let cfg = scale.fmri();
    let x4 = cfg.generate_4way();
    let x3 = linearize_symmetric(&x4);
    bench("4D fMRI", &x4, &machine, &pool);
    bench("3D fMRI (symmetric linearization)", &x3, &machine, &pool);
    println!();
}
