//! `bench-diff` — compare two `mttkrp-bench-v1` reports and gate on
//! regressions.
//!
//! ```text
//! bench-diff baseline.json candidate.json [--json OUT] [--tolerance PCT] [--advisory]
//! ```
//!
//! Loads both reports, matches records by identity (section rows by
//! their id, top-level scalars by name), applies the per-metric
//! tolerance rules from `mttkrp_obs::BenchDiff` (throughput and
//! time metrics gate at `--tolerance` percent, default 15; error/
//! residual metrics get a wide 20x multiplier; identity fields must
//! match exactly), prints the human-readable verdict, and exits 1 when
//! any gated metric regressed — the perf-gate CI leg is exactly this
//! binary. `--advisory` reports the same verdict but always exits 0
//! (for cross-host comparisons where the gate would be noise);
//! `--json OUT` additionally writes the `mttkrp-benchdiff-v1`
//! envelope.

use std::process::exit;

use mttkrp_obs::BenchDiff;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return;
    }

    let mut paths: Vec<&str> = Vec::new();
    let mut json_out: Option<&str> = None;
    let mut tolerance = BenchDiff::DEFAULT_TOLERANCE_PCT;
    let mut advisory = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                let Some(v) = args.get(i + 1) else {
                    die("--json needs a FILE");
                };
                json_out = Some(v);
                i += 2;
            }
            "--tolerance" => {
                let parsed = args.get(i + 1).and_then(|v| v.parse::<f64>().ok());
                let Some(pct) = parsed.filter(|p| p.is_finite() && *p >= 0.0) else {
                    die("--tolerance needs a nonnegative percentage");
                };
                tolerance = pct;
                i += 2;
            }
            "--advisory" => {
                advisory = true;
                i += 1;
            }
            flag if flag.starts_with("--") => {
                die(&format!("unknown flag {flag:?}"));
            }
            path => {
                paths.push(path);
                i += 1;
            }
        }
    }
    let [baseline, candidate] = paths[..] else {
        die("expected exactly two report files: bench-diff BASELINE CANDIDATE");
    };

    let diff = match BenchDiff::load(baseline, candidate) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench-diff: {e}");
            exit(2);
        }
    };
    print!("{}", diff.text(tolerance));
    if let Some(out) = json_out {
        if let Err(e) = std::fs::write(out, diff.to_json(tolerance)) {
            eprintln!("bench-diff: cannot write {out}: {e}");
            exit(2);
        }
        println!("verdict written: {out} ({})", BenchDiff::SCHEMA);
    }
    if !diff.pass(tolerance) && !advisory {
        exit(1);
    }
}

fn usage() {
    println!(
        "bench-diff — compare two mttkrp-bench-v1 reports\n\
         usage: bench-diff BASELINE.json CANDIDATE.json\n\
                [--json OUT]        also write the mttkrp-benchdiff-v1 verdict\n\
                [--tolerance PCT]   gate threshold (default {}%)\n\
                [--advisory]        print the verdict but always exit 0\n\
         exits 1 when any gated metric regressed beyond tolerance,\n\
         2 on malformed input",
        BenchDiff::DEFAULT_TOLERANCE_PCT
    );
}

fn die(msg: &str) -> ! {
    eprintln!("bench-diff: {msg}");
    usage();
    exit(2);
}
